#!/usr/bin/env python3
"""Perf-smoke gate for the BENCH_*.json documents CI produces.

Each document is dispatched on its "name" field to a per-bench checker,
so one invocation can gate the whole perf-smoke artifact set:

  perf_gate.py BENCH_micro_dsp.json BENCH_fleet.json BENCH_stream.json

micro_dsp — fails (exit 1) when a pinned speedup floor is violated:

  * per-kernel SIMD speedups (seed-style scalar loop vs dispatched kernel)
    are enforced only when the bench dispatched a SIMD table
    (simd_isa != 0) — a scalar-only host trivially passes;
  * the 256^2 FDTD 4-thread step speedup is enforced only when the host
    exposes >= 4 hardware threads (hw_threads metric) — a 1-core container
    cannot demonstrate thread scaling.

fleet — gates the sharded fleet engine + telemetry serving layer:

  * aggregates_match must be 1 on every host (the 1-thread and hw-thread
    fleets produced byte-identical aggregate fingerprints — determinism is
    not a perf property, so it is never skipped);
  * ingest thread-scaling and concurrent query throughput floors are
    enforced only when hw_threads >= 4, with a higher scaling bar on
    >= 8-thread hosts (the acceptance target is 4x at 1 -> 8 threads).

stream — gates the clocked SPSC-ring streaming transceiver:

  * stream_deterministic must be 1 on every host (every block size and the
    threaded pipeline delivered byte-identical telemetry — again never
    skipped);
  * the real-time factor (simulated seconds per wall second of the daemon's
    measured run) must be >= 1 when hw_threads >= 4: the streaming reader
    keeps up with a live ADC at fs. Single-core containers are exempt from
    the floor, not from determinism.

runtime — gates the self-healing fleet runtime (DaemonSupervisor):

  * recovery_deterministic must be 1 on every host (the chaos run's final
    TelemetryStore is byte-identical per node to the crash-free run —
    determinism bits are never skipped), as must drops_accounted_exactly
    (pushed == collected + dropped under collector overload);
  * the worst-case recovery latency ceiling and the overload drop-rate
    ceiling are enforced only when hw_threads >= 4 — a 1-core container
    timeshares the daemon, watchdog, and collector threads, so its wall
    timings say nothing about the runtime.

Floors are pinned well below locally measured values (see docs/benchmarks.md)
so scheduler noise on shared CI runners doesn't flake the gate, while a real
regression — a kernel silently falling back to the seed loop, the FDTD band
partition re-serializing, the fleet shards contending on a lock, or the
streaming pipeline dropping below real time — still trips it.

A gated metric that is absent from its document fails with a per-key message
(never a traceback), as does a non-numeric value where a number is expected.

Usage: perf_gate.py BENCH_foo.json [BENCH_bar.json ...]
       perf_gate.py --list-floors
"""

import json
import numbers
import sys

# Kernel speedup floors (measured on AVX2: fir 3.7x, correlate 4.9x,
# dot 3.7x, onepole 2.5x, envelope 2.5x, fdtd_stress 1.6x,
# fdtd_velocity 1.4x, biquad ~1.0x — a serial recurrence, gated only
# against regression below the seed loop).
KERNEL_FLOORS = {
    "kern_dot_speedup": 2.0,
    "kern_fir_speedup": 2.0,
    "kern_correlate_speedup": 2.0,
    "kern_onepole_speedup": 1.5,
    "kern_envelope_speedup": 1.5,
    "kern_fdtd_stress_speedup": 1.2,
    "kern_fdtd_velocity_speedup": 1.1,
    "kern_biquad_speedup": 0.8,
}

FDTD_THREAD_FLOOR = ("fdtd_256_step_speedup_4t", 1.1)

# Fleet ingest scaling floors by host width (measured: near-linear to 4
# workers — the shards share no mutable state — so these leave headroom
# for noisy neighbours on shared runners).
FLEET_SCALING_FLOOR_8T = 4.0
FLEET_SCALING_FLOOR_4T = 2.0
# Concurrent serving floors while the hw-thread ingest is running
# (measured ~300k queries/sec from a single query thread).
FLEET_QUERIES_PER_SEC_FLOOR = 10_000.0
FLEET_INGEST_UNDER_QUERY_FLOOR = 50_000.0

# Streaming real-time factor floor: measured ~3x on a 1-core container in
# Release, so >= 1 on a 4-thread CI runner leaves a wide margin while still
# catching the pipeline falling off the real-time cliff.
STREAM_RTF_FLOOR = 1.0

# Self-healing runtime ceilings (checked only on >= 4-thread hosts).
# Recovery latency measured ~9 ms worst-case on a loaded 1-core container
# (join the dead thread, rebuild the reader, resume the checkpoint, respawn)
# — 500 ms leaves two orders of magnitude for runner noise while still
# catching a restart path that starts re-deriving state from scratch.
RUNTIME_RECOVERY_MS_CEILING = 500.0
# Under the bench's total collector outage the drop-oldest ring must shed
# load instead of blocking the daemon, but the final drain still collects
# the ring's residue — a drop rate of 1.0 would mean the accounting or the
# drain is broken.
RUNTIME_DROP_RATE_CEILING = 0.999


def check_floor(metrics, key, floor, failures, path):
    """Append a per-key failure when `key` is missing, non-numeric, or
    below `floor`. Never raises on malformed documents."""
    if key not in metrics:
        failures.append(
            f"{key}: gated metric missing from {path} "
            f"(expected a number >= {floor})")
        return
    value = metrics[key]
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        failures.append(
            f"{key}: expected a number >= {floor}, got {value!r} in {path}")
    elif value < floor:
        failures.append(f"{key}: {value:.3f} < floor {floor}")


def check_ceiling(metrics, key, ceiling, failures, path):
    """Like check_floor, but the metric must stay at or below `ceiling`."""
    if key not in metrics:
        failures.append(
            f"{key}: gated metric missing from {path} "
            f"(expected a number <= {ceiling})")
        return
    value = metrics[key]
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        failures.append(
            f"{key}: expected a number <= {ceiling}, got {value!r} in {path}")
    elif value > ceiling:
        failures.append(f"{key}: {value:.3f} > ceiling {ceiling}")


def check_flag(metrics, key, failures, path, meaning):
    """A determinism bit: must be present and exactly 1 on every host."""
    if key not in metrics:
        failures.append(
            f"{key}: gated metric missing from {path} (expected 1: {meaning})")
    elif metrics[key] != 1:
        failures.append(f"{key}: {meaning} in {path}")


def gate_micro_dsp(metrics, path, failures):
    simd_isa = metrics.get("simd_isa", 0)
    if simd_isa != 0:
        for key, floor in KERNEL_FLOORS.items():
            check_floor(metrics, key, floor, failures, path)
    else:
        print("perf_gate: scalar-only host (simd_isa=0); "
              "kernel speedup floors skipped")

    hw_threads = metrics.get("hw_threads", 0)
    key, floor = FDTD_THREAD_FLOOR
    if hw_threads >= 4:
        check_floor(metrics, key, floor, failures, path)
    else:
        print(f"perf_gate: only {hw_threads:.0f} hardware threads; "
              f"{key} floor skipped")
    return sorted(KERNEL_FLOORS) + [FDTD_THREAD_FLOOR[0]]


def gate_fleet(metrics, path, failures):
    # Determinism is enforced unconditionally — a single-core host can and
    # must still produce byte-identical 1-thread vs hw-thread aggregates.
    check_flag(metrics, "aggregates_match", failures, path,
               "fleet aggregates not bit-identical across thread counts")

    hw_threads = metrics.get("hw_threads", 0)
    if hw_threads >= 8:
        check_floor(metrics, "ingest_scaling", FLEET_SCALING_FLOOR_8T,
                    failures, path)
    elif hw_threads >= 4:
        check_floor(metrics, "ingest_scaling", FLEET_SCALING_FLOOR_4T,
                    failures, path)
    if hw_threads >= 4:
        check_floor(metrics, "queries_per_sec_concurrent",
                    FLEET_QUERIES_PER_SEC_FLOOR, failures, path)
        check_floor(metrics, "ingest_reads_per_sec_under_query",
                    FLEET_INGEST_UNDER_QUERY_FLOOR, failures, path)
    else:
        print(f"perf_gate: only {hw_threads:.0f} hardware threads; "
              "fleet scaling/serving floors skipped")
    return ["ingest_scaling", "ingest_reads_per_sec_1t",
            "ingest_reads_per_sec_mt", "ingest_reads_per_sec_under_query",
            "queries_per_sec_concurrent", "aggregates_match"]


def gate_stream(metrics, path, failures):
    # Bit-identical telemetry across block sizes and threaded/inline mode is
    # the streaming contract; like the fleet determinism bit it holds on any
    # host.
    check_flag(metrics, "stream_deterministic", failures, path,
               "streamed telemetry not bit-identical across "
               "block sizes / threading modes")

    hw_threads = metrics.get("hw_threads", 0)
    if hw_threads >= 4:
        check_floor(metrics, "real_time_factor", STREAM_RTF_FLOOR,
                    failures, path)
    else:
        print(f"perf_gate: only {hw_threads:.0f} hardware threads; "
              "streaming real_time_factor floor skipped")
    return ["real_time_factor", "rtf_inline_256", "rtf_threaded_256",
            "stream_deterministic", "delivered", "missed"]


def gate_runtime(metrics, path, failures):
    # The two correctness bits hold on any host: byte-identical recovery and
    # exact drop accounting are determinism properties, not perf.
    check_flag(metrics, "recovery_deterministic", failures, path,
               "chaos-run telemetry not byte-identical to the "
               "crash-free run")
    check_flag(metrics, "drops_accounted_exactly", failures, path,
               "overload events not balanced (pushed != collected + dropped)")

    hw_threads = metrics.get("hw_threads", 0)
    if hw_threads >= 4:
        check_ceiling(metrics, "recovery_latency_ms_max",
                      RUNTIME_RECOVERY_MS_CEILING, failures, path)
        check_ceiling(metrics, "overload_drop_rate",
                      RUNTIME_DROP_RATE_CEILING, failures, path)
    else:
        print(f"perf_gate: only {hw_threads:.0f} hardware threads; "
              "runtime recovery-latency/drop-rate ceilings skipped")
    return ["recovery_deterministic", "drops_accounted_exactly",
            "recovery_latency_ms_mean", "recovery_latency_ms_max",
            "restarts", "watchdog_kicks", "overload_drop_rate"]


GATES = {
    "micro_dsp": gate_micro_dsp,
    "fleet": gate_fleet,
    "stream": gate_stream,
    "runtime": gate_runtime,
}


def list_floors() -> int:
    """Print every gate's floors and the condition under which each is
    enforced, then exit 0 — so a CI log or a curious contributor can see
    the bar without reading the source."""
    print("micro_dsp (BENCH_micro_dsp.json):")
    for key in sorted(KERNEL_FLOORS):
        print(f"  {key:32s} >= {KERNEL_FLOORS[key]:<6g} [simd_isa != 0]")
    key, floor = FDTD_THREAD_FLOOR
    print(f"  {key:32s} >= {floor:<6g} [hw_threads >= 4]")
    print("fleet (BENCH_fleet.json):")
    print(f"  {'aggregates_match':32s} == 1      [always]")
    print(f"  {'ingest_scaling':32s} >= {FLEET_SCALING_FLOOR_4T:<6g} "
          "[hw_threads >= 4]")
    print(f"  {'ingest_scaling':32s} >= {FLEET_SCALING_FLOOR_8T:<6g} "
          "[hw_threads >= 8]")
    print(f"  {'queries_per_sec_concurrent':32s} >= "
          f"{FLEET_QUERIES_PER_SEC_FLOOR:<6g} [hw_threads >= 4]")
    print(f"  {'ingest_reads_per_sec_under_query':32s} >= "
          f"{FLEET_INGEST_UNDER_QUERY_FLOOR:<6g} [hw_threads >= 4]")
    print("stream (BENCH_stream.json):")
    print(f"  {'stream_deterministic':32s} == 1      [always]")
    print(f"  {'real_time_factor':32s} >= {STREAM_RTF_FLOOR:<6g} "
          "[hw_threads >= 4]")
    print("runtime (BENCH_runtime.json):")
    print(f"  {'recovery_deterministic':32s} == 1      [always]")
    print(f"  {'drops_accounted_exactly':32s} == 1      [always]")
    print(f"  {'recovery_latency_ms_max':32s} <= "
          f"{RUNTIME_RECOVERY_MS_CEILING:<6g} [hw_threads >= 4]")
    print(f"  {'overload_drop_rate':32s} <= {RUNTIME_DROP_RATE_CEILING:<6g} "
          "[hw_threads >= 4]")
    return 0


def main(paths) -> int:
    failures = []
    report = []  # (doc name, metric key, value) for the PASS summary
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"{path}: unreadable bench document ({e})")
            continue
        metrics = doc.get("metrics", doc)
        name = doc.get("name", "")
        gate = GATES.get(name)
        if gate is None:
            failures.append(f"{path}: no gate registered for bench '{name}'")
            continue
        for key in gate(metrics, path, failures):
            if key in metrics:
                report.append((name, key, metrics[key]))

    if failures:
        print("perf_gate: FAIL")
        for f_ in failures:
            print(f"  {f_}")
        return 1

    print("perf_gate: PASS")
    for name, key, value in report:
        if isinstance(value, numbers.Real) and not isinstance(value, bool):
            print(f"  {name}.{key} = {value:.3f}")
        else:
            print(f"  {name}.{key} = {value!r}")
    return 0


if __name__ == "__main__":
    if "--list-floors" in sys.argv[1:]:
        sys.exit(list_floors())
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))
