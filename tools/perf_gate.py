#!/usr/bin/env python3
"""Perf-smoke gate for BENCH_micro_dsp.json.

Reads the roofline metrics written by bench_micro_dsp and fails (exit 1)
when a pinned speedup floor is violated:

  * per-kernel SIMD speedups (seed-style scalar loop vs dispatched kernel)
    are enforced only when the bench dispatched a SIMD table
    (simd_isa != 0) — a scalar-only host trivially passes;
  * the 256^2 FDTD 4-thread step speedup is enforced only when the host
    exposes >= 4 hardware threads (hw_threads metric) — a 1-core container
    cannot demonstrate thread scaling.

Floors are pinned well below locally measured values (see docs/benchmarks.md)
so scheduler noise on shared CI runners doesn't flake the gate, while a real
regression — a kernel silently falling back to the seed loop, or the FDTD
band partition re-serializing — still trips it.

Usage: perf_gate.py path/to/BENCH_micro_dsp.json
"""

import json
import sys

# Kernel speedup floors (measured on AVX2: fir 3.7x, correlate 4.9x,
# dot 3.7x, onepole 2.5x, envelope 2.5x, fdtd_stress 1.6x,
# fdtd_velocity 1.4x, biquad ~1.0x — a serial recurrence, gated only
# against regression below the seed loop).
KERNEL_FLOORS = {
    "kern_dot_speedup": 2.0,
    "kern_fir_speedup": 2.0,
    "kern_correlate_speedup": 2.0,
    "kern_onepole_speedup": 1.5,
    "kern_envelope_speedup": 1.5,
    "kern_fdtd_stress_speedup": 1.2,
    "kern_fdtd_velocity_speedup": 1.1,
    "kern_biquad_speedup": 0.8,
}

FDTD_THREAD_FLOOR = ("fdtd_256_step_speedup_4t", 1.1)


def main(path: str) -> int:
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", doc)

    failures = []

    simd_isa = metrics.get("simd_isa", 0)
    if simd_isa != 0:
        for key, floor in KERNEL_FLOORS.items():
            value = metrics.get(key)
            if value is None:
                failures.append(f"{key}: missing from {path}")
            elif value < floor:
                failures.append(f"{key}: {value:.3f} < floor {floor}")
    else:
        print("perf_gate: scalar-only host (simd_isa=0); "
              "kernel speedup floors skipped")

    hw_threads = metrics.get("hw_threads", 0)
    key, floor = FDTD_THREAD_FLOOR
    if hw_threads >= 4:
        value = metrics.get(key)
        if value is None:
            failures.append(f"{key}: missing from {path}")
        elif value < floor:
            failures.append(f"{key}: {value:.3f} < floor {floor}")
    else:
        print(f"perf_gate: only {hw_threads:.0f} hardware threads; "
              f"{key} floor skipped")

    if failures:
        print("perf_gate: FAIL")
        for f_ in failures:
            print(f"  {f_}")
        return 1

    print("perf_gate: PASS")
    for key in sorted(KERNEL_FLOORS) + [FDTD_THREAD_FLOOR[0]]:
        if key in metrics:
            print(f"  {key} = {metrics[key]:.3f}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
