// Fig. 15 — uplink BER vs SNR: the EcoCapsule reader's coherent ML FM0
// decoder against the PAB-class hard-decision decoder (Monte Carlo over
// the decision-domain AWGN channel).

#include <cstdio>

#include "core/ber_harness.hpp"

using namespace ecocap;

int main() {
  std::printf("# Fig. 15 — BER vs SNR, FM0 uplink (Monte Carlo)\n");
  std::printf("snr_db,ecocapsule_ml_ber,pab_hard_ber,bits\n");
  for (double snr = 0.0; snr <= 12.01; snr += 1.0) {
    core::BerConfig cfg;
    cfg.snr_db = snr;
    // More bits at high SNR to resolve small BERs.
    cfg.total_bits = (snr >= 8.0) ? 400000 : 100000;
    cfg.seed = 42 + static_cast<std::uint64_t>(snr * 10);

    cfg.decoder = core::UplinkDecoder::kMlFm0;
    const auto ml = core::fm0_ber_monte_carlo(cfg);
    cfg.decoder = core::UplinkDecoder::kHardDecision;
    const auto hard = core::fm0_ber_monte_carlo(cfg);

    std::printf("%.0f,%.3g,%.3g,%zu\n", snr, ml.ber(), hard.ber(), ml.bits);
  }
  std::printf("# paper shape: BER ~0.5 near 2 dB; EcoCapsule floors (~1e-5)\n");
  std::printf("#   by ~8-9 dB; PAB needs ~3 dB more for the same BER\n");
  return 0;
}
