// Fig. 15 — uplink BER vs SNR: the EcoCapsule reader's coherent ML FM0
// decoder against the PAB-class hard-decision decoder (Monte Carlo over
// the decision-domain AWGN channel). Trials run on the parallel engine
// (ECOCAP_THREADS workers); a short sequential rerun of one point records
// the engine's speedup in BENCH_fig15_ber_vs_snr.json.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/ber_harness.hpp"

using namespace ecocap;

int main() {
  bench::BenchJson out("fig15_ber_vs_snr");
  std::vector<double> snrs, ml_bers, hard_bers;
  std::size_t total_trial_bits = 0;

  std::printf("# Fig. 15 — BER vs SNR, FM0 uplink (Monte Carlo)\n");
  std::printf("snr_db,ecocapsule_ml_ber,pab_hard_ber,bits\n");
  for (double snr = 0.0; snr <= 12.01; snr += 1.0) {
    core::BerConfig cfg;
    cfg.snr_db = snr;
    // More bits at high SNR to resolve small BERs.
    cfg.total_bits = (snr >= 8.0) ? 400000 : 100000;
    cfg.seed = 42 + static_cast<std::uint64_t>(snr * 10);

    cfg.decoder = core::UplinkDecoder::kMlFm0;
    const auto ml = core::fm0_ber_monte_carlo(cfg);
    cfg.decoder = core::UplinkDecoder::kHardDecision;
    const auto hard = core::fm0_ber_monte_carlo(cfg);

    std::printf("%.0f,%.3g,%.3g,%zu\n", snr, ml.ber(), hard.ber(), ml.bits);
    snrs.push_back(snr);
    ml_bers.push_back(ml.ber());
    hard_bers.push_back(hard.ber());
    total_trial_bits += ml.bits + hard.bits;
  }
  std::printf("# paper shape: BER ~0.5 near 2 dB; EcoCapsule floors (~1e-5)\n");
  std::printf("#   by ~8-9 dB; PAB needs ~3 dB more for the same BER\n");

  // Engine speedup at one representative point: sequential reference vs the
  // sharded run (identical trial count and statistics).
  {
    core::BerConfig cfg;
    cfg.snr_db = 6.0;
    cfg.total_bits = 200000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto seq = core::fm0_ber_monte_carlo_sequential(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const auto par = core::fm0_ber_monte_carlo(cfg);
    const auto t2 = std::chrono::steady_clock::now();
    const double seq_s = std::chrono::duration<double>(t1 - t0).count();
    const double par_s = std::chrono::duration<double>(t2 - t1).count();
    std::printf("# engine: sequential %.3fs, parallel %.3fs (%.2fx, %u workers)\n",
                seq_s, par_s, par_s > 0.0 ? seq_s / par_s : 0.0,
                core::ThreadPool::default_worker_count());
    out.metric("sequential_seconds", seq_s);
    out.metric("parallel_seconds", par_s);
    out.metric("speedup", par_s > 0.0 ? seq_s / par_s : 0.0);
    (void)seq;
    (void)par;
  }

  out.set_trials(total_trial_bits / 64);  // 64-bit frames = one trial each
  out.metric("ml_ber_at_8db", ml_bers[8]);
  out.metric("hard_ber_at_8db", hard_bers[8]);
  out.series("snr_db", snrs);
  out.series("ecocapsule_ml_ber", ml_bers);
  out.series("pab_hard_ber", hard_bers);
  out.write();
  return 0;
}
