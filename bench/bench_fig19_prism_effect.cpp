// Fig. 19 — downlink SNR vs prism incident angle: the dual-mode ISI model
// (wave/snell + channel/snr_models) over the paper's tested angles.

#include <cstdio>

#include "channel/snr_models.hpp"
#include "wave/snell.hpp"

using namespace ecocap;

int main() {
  const auto model = channel::DownlinkAngleModel::paper_default();
  std::printf("# Fig. 19 — downlink SNR (dB) vs prism incident angle (deg)\n");
  std::printf("angle_deg,snr_db\n");
  for (int deg : {0, 15, 30, 45, 50, 60, 70, 75}) {
    std::printf("%d,%.1f\n", deg,
                model.snr_db(wave::deg_to_rad(static_cast<double>(deg))));
  }
  const double peak = model.snr_db(wave::deg_to_rad(60.0));
  const double at15 = model.snr_db(wave::deg_to_rad(15.0));
  const double at30 = model.snr_db(wave::deg_to_rad(30.0));
  std::printf("# drop vs peak: 15 deg: %.0f%%, 30 deg: %.0f%%\n",
              100.0 * (1.0 - at15 / peak), 100.0 * (1.0 - at30 / peak));
  std::printf("# paper: max ~15 dB around 50-70 deg; -73%% at 15 deg, -30%%\n");
  std::printf("#   at 30 deg; moderately high at 0 deg (P-only, no prism)\n");
  return 0;
}
