// Streaming transceiver bench — the real-time headline for the clocked
// SPSC-ring pipeline: a StreamingReader daemon interrogates continuously
// and the real-time factor (simulated seconds per wall second, measured
// after warmup) says whether the full tx -> channel -> node -> rx -> decode
// chain keeps up with a live ADC at fs. RTF >= 1 is the "could run against
// real concrete" claim, gated in CI on hosts with >= 4 hardware threads.
//
// Also sweeps the block size (the latency/throughput knob) and re-checks
// the determinism contract the test suite enforces: every block size and
// the threaded mode deliver byte-identical telemetry. Emits
// BENCH_stream.json, gated by tools/perf_gate.py.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/link_simulator.hpp"
#include "fleet/telemetry_store.hpp"
#include "stream/streaming_reader.hpp"

using namespace ecocap;

namespace {

double env_or(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}

struct DaemonRun {
  reader::StreamingReaderStats stats;
  std::vector<float> readings;
};

DaemonRun run_daemon(std::size_t block_size, bool threaded,
                     double sim_seconds) {
  reader::StreamingReaderConfig config;
  config.stream.system = core::default_system();
  config.stream.block_size = block_size;
  config.stream.threaded = threaded;
  config.poll_interval_s = 0.25;
  config.warmup_s = 0.5;

  reader::StreamingReader daemon(config);
  DaemonRun run;
  run.stats = daemon.run(sim_seconds);
  std::vector<fleet::TelemetryStore::Reading> raw;
  daemon.telemetry().range(0, fleet::TelemetryStore::Tier::kRaw, 0,
                           0xffffffffu, raw);
  for (const auto& r : raw) run.readings.push_back(r.value);
  return run;
}

bool same_world(const DaemonRun& a, const DaemonRun& b) {
  return a.stats.delivered == b.stats.delivered &&
         a.stats.missed == b.stats.missed &&
         a.stats.frames_scheduled == b.stats.frames_scheduled &&
         a.readings == b.readings;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  // Sweep duration per block size; the headline run is longer so the RTF
  // estimate amortizes the startup charge.
  const double sweep_s = env_or("ECOCAP_BENCH_STREAM_SWEEP_SECONDS", 1.0);
  const double headline_s = env_or("ECOCAP_BENCH_STREAM_SECONDS", 4.0);

  std::printf("# streaming transceiver: real-time factor vs block size\n");
  std::printf("# block_size threaded rtf delivered missed\n");

  bench::BenchJson out("stream");

  const std::size_t blocks[] = {64, 256, 1024, 4096};
  std::vector<double> block_axis, rtf_series;
  std::vector<DaemonRun> runs;
  for (const std::size_t b : blocks) {
    runs.push_back(run_daemon(b, false, sweep_s));
    const auto& r = runs.back();
    block_axis.push_back(static_cast<double>(b));
    rtf_series.push_back(r.stats.real_time_factor);
    std::printf("%zu 0 %.3f %llu %llu\n", b, r.stats.real_time_factor,
                static_cast<unsigned long long>(r.stats.delivered),
                static_cast<unsigned long long>(r.stats.missed));
  }

  const DaemonRun threaded = run_daemon(256, true, sweep_s);
  std::printf("256 1 %.3f %llu %llu\n", threaded.stats.real_time_factor,
              static_cast<unsigned long long>(threaded.stats.delivered),
              static_cast<unsigned long long>(threaded.stats.missed));

  // Determinism contract: every block size and the threaded mode must have
  // delivered the identical telemetry stream.
  bool deterministic = same_world(runs[0], threaded);
  for (const auto& r : runs) deterministic = deterministic && same_world(runs[0], r);

  // Headline: the configuration a deployment would run — threaded when the
  // host has spare cores for the pipeline stages, inline otherwise.
  const bool use_threads = hw >= 4;
  const DaemonRun headline = run_daemon(256, use_threads, headline_s);
  std::printf("# headline: %.3f sim-sec/wall-sec (%s, block 256)\n",
              headline.stats.real_time_factor,
              use_threads ? "threaded" : "inline");
  if (!deterministic) {
    std::printf("# WARNING: telemetry differed across block sizes/threads\n");
  }

  out.set_trials(static_cast<std::size_t>(headline.stats.polls));
  out.metric("hw_threads", static_cast<double>(hw));
  out.metric("real_time_factor", headline.stats.real_time_factor);
  out.metric("rtf_inline_256", runs[1].stats.real_time_factor);
  out.metric("rtf_threaded_256", threaded.stats.real_time_factor);
  out.metric("headline_threaded", use_threads ? 1.0 : 0.0);
  out.metric("stream_deterministic", deterministic ? 1.0 : 0.0);
  out.metric("sim_seconds", headline.stats.sim_seconds);
  out.metric("polls", static_cast<double>(headline.stats.polls));
  out.metric("delivered", static_cast<double>(headline.stats.delivered));
  out.metric("missed", static_cast<double>(headline.stats.missed));
  out.metric("skipped", static_cast<double>(headline.stats.skipped));
  out.series("block_size", block_axis);
  out.series("rtf", rtf_series);
  out.write();
  return deterministic ? 0 : 1;
}
