#pragma once

// Shared BENCH_<name>.json emitter for the bench_* binaries: every figure
// reproduction records its wall time, trial throughput, and the figure's
// summary statistics in a machine-readable file next to the CSV stdout, so
// the repo accumulates a perf trajectory across PRs. Schema documented in
// docs/benchmarks.md; no third-party JSON dependency, just careful quoting.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"

namespace ecocap::bench {

class BenchJson {
 public:
  /// Starts the wall-time clock. `name` becomes BENCH_<name>.json.
  explicit BenchJson(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// Record a scalar summary statistic (BER at a given SNR, throughput...).
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Record a named series (one figure axis or curve).
  void series(const std::string& key, const std::vector<double>& values) {
    series_.emplace_back(key, values);
  }

  /// Total Monte-Carlo trials behind the figure; drives trials_per_sec.
  void set_trials(std::size_t trials) { trials_ = trials; }

  /// Stop the clock and write BENCH_<name>.json into the working directory.
  /// Returns false (and prints a warning) when the file cannot be written;
  /// benches still succeed so CI logs keep the CSV output.
  bool write() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "# bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"name\": \"%s\",\n", escaped(name_).c_str());
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"threads\": %u,\n",
                 core::ThreadPool::default_worker_count());
    std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall);
    std::fprintf(f, "  \"trials\": %zu,\n", trials_);
    std::fprintf(f, "  \"trials_per_sec\": %.3f,\n",
                 wall > 0.0 ? static_cast<double>(trials_) / wall : 0.0);
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": ", i ? "," : "",
                   escaped(metrics_[i].first).c_str());
      print_number(f, metrics_[i].second);
    }
    std::fprintf(f, "%s},\n", metrics_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"series\": {");
    for (std::size_t i = 0; i < series_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": [", i ? "," : "",
                   escaped(series_[i].first).c_str());
      const auto& v = series_[i].second;
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (j) std::fprintf(f, ", ");
        print_number(f, v[j]);
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "%s}\n", series_.empty() ? "" : "\n  ");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s (%.2fs, %zu trials)\n", path.c_str(), wall,
                trials_);
    return true;
  }

 private:
  /// NaN/inf are not JSON; emit null so downstream parsers stay happy.
  static void print_number(std::FILE* f, double v) {
    if (std::isfinite(v)) {
      std::fprintf(f, "%.12g", v);
    } else {
      std::fprintf(f, "null");
    }
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::size_t trials_ = 0;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

}  // namespace ecocap::bench
