#pragma once

// Shared BENCH_<name>.json emitter for the bench_* binaries: every figure
// reproduction records its wall time, trial throughput, and the figure's
// summary statistics in a machine-readable file next to the CSV stdout, so
// the repo accumulates a perf trajectory across PRs. Schema documented in
// docs/benchmarks.md; no third-party JSON dependency, just careful quoting.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "dsp/kernels/kernels.hpp"
#include "dsp/serialize.hpp"

namespace ecocap::bench {

class BenchJson {
 public:
  /// Starts the wall-time clock. `name` becomes BENCH_<name>.json.
  explicit BenchJson(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// Record a scalar summary statistic (BER at a given SNR, throughput...).
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Record a named series (one figure axis or curve).
  void series(const std::string& key, const std::vector<double>& values) {
    series_.emplace_back(key, values);
  }

  /// Total Monte-Carlo trials behind the figure; drives trials_per_sec.
  void set_trials(std::size_t trials) { trials_ = trials; }

  /// Stop the clock and write BENCH_<name>.json into the working directory.
  /// Crash-safe: the document is rendered in memory and lands via
  /// write-temp-then-atomic-rename, so a bench killed mid-write leaves the
  /// previous BENCH file intact instead of a truncated JSON. Returns false
  /// (and prints a warning) when the file cannot be written; benches still
  /// succeed so CI logs keep the CSV output.
  bool write() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string path = "BENCH_" + name_ + ".json";
    std::string out;
    out += "{\n";
    out += "  \"name\": \"" + escaped(name_) + "\",\n";
    out += "  \"schema_version\": 2,\n";
    out += "  \"threads\": " +
           std::to_string(core::ThreadPool::default_worker_count()) + ",\n";
    // Provenance: everything needed to compare perf trajectories across
    // runs — the effective worker count, which SIMD table dispatched, and
    // whether the binary was an optimized build.
    out += "  \"provenance\": {\n";
    out += "    \"ecocap_threads\": " +
           std::to_string(core::ThreadPool::default_worker_count()) + ",\n";
    out += "    \"hw_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
    out += std::string("    \"simd_isa\": \"") +
           dsp::kernels::isa_name(dsp::kernels::active_isa()) + "\",\n";
#ifdef NDEBUG
    out += "    \"build_type\": \"release\"\n";
#else
    out += "    \"build_type\": \"debug\"\n";
#endif
    out += "  },\n";
    out += "  \"wall_seconds\": " + formatted("%.6f", wall) + ",\n";
    out += "  \"trials\": " + std::to_string(trials_) + ",\n";
    out += "  \"trials_per_sec\": " +
           formatted("%.3f",
                     wall > 0.0 ? static_cast<double>(trials_) / wall : 0.0) +
           ",\n";
    out += "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out += (i ? "," : "");
      out += "\n    \"" + escaped(metrics_[i].first) + "\": ";
      out += number(metrics_[i].second);
    }
    out += metrics_.empty() ? "},\n" : "\n  },\n";
    out += "  \"series\": {";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      out += (i ? "," : "");
      out += "\n    \"" + escaped(series_[i].first) + "\": [";
      const auto& v = series_[i].second;
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (j) out += ", ";
        out += number(v[j]);
      }
      out += "]";
    }
    out += series_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    if (!dsp::ser::atomic_write_file(path, out)) {
      std::fprintf(stderr, "# bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("# wrote %s (%.2fs, %zu trials)\n", path.c_str(), wall,
                trials_);
    return true;
  }

 private:
  /// NaN/inf are not JSON; emit null so downstream parsers stay happy.
  static std::string number(double v) {
    return std::isfinite(v) ? formatted("%.12g", v) : "null";
  }

  static std::string formatted(const char* fmt, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::size_t trials_ = 0;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

}  // namespace ecocap::bench
