// Fig. 16 — uplink SNR vs bitrate for EcoCapsule (230 kHz carrier,
// ~20 kHz mechanical passband), PAB (15 kHz carrier) and the wideband
// U2B baseline.

#include <cstdio>
#include <vector>

#include "baseline/pab.hpp"
#include "bench_json.hpp"
#include "channel/snr_models.hpp"
#include "wave/material.hpp"

using namespace ecocap;

int main() {
  bench::BenchJson out("fig16_snr_vs_bitrate");
  std::vector<double> rates, eco_db, pab_db, u2b_db;
  const auto eco =
      channel::UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  const baseline::PabSystem pab;
  const baseline::U2bSystem u2b;
  const auto pab_m = pab.snr_model();
  const auto u2b_m = u2b.snr_model();

  std::printf("# Fig. 16 — uplink SNR (dB) vs bitrate (kbps)\n");
  std::printf("bitrate_kbps,ecocapsule,pab,u2b\n");
  for (double kbps : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 13.0, 14.0,
                      15.0}) {
    std::printf("%.0f,%.1f,%.1f,%.1f\n", kbps, eco.snr_db(kbps * 1000.0),
                pab_m.snr_db(kbps * 1000.0), u2b_m.snr_db(kbps * 1000.0));
    rates.push_back(kbps);
    eco_db.push_back(eco.snr_db(kbps * 1000.0));
    pab_db.push_back(pab_m.snr_db(kbps * 1000.0));
    u2b_db.push_back(u2b_m.snr_db(kbps * 1000.0));
  }
  std::printf("# paper shape: EcoCapsule drops to ~3 dB past 13 kbps; PAB is\n");
  std::printf("#   limited to ~3 kbps; U2B overtakes EcoCapsule above ~9 kbps\n");
  out.set_trials(rates.size());
  out.metric("ecocapsule_snr_at_1kbps", eco_db.front());
  out.metric("ecocapsule_snr_at_13kbps", eco.snr_db(13000.0));
  out.series("bitrate_kbps", rates);
  out.series("ecocapsule_db", eco_db);
  out.series("pab_db", pab_db);
  out.series("u2b_db", u2b_db);
  out.write();
  return 0;
}
