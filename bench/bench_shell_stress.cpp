// §4.1 shell analysis — Eq. 4 pressure differences, maximum building
// heights per shell material, membrane stress and deformation checks
// (Fig. 8(c) analog), and casting survival.

#include <cstdio>

#include "node/shell.hpp"

using namespace ecocap;

int main() {
  std::printf("# §4.1 — stressless shell analysis (Eq. 4)\n");

  const node::Shell resin;
  node::ShellConfig steel_cfg;
  steel_cfg.material = node::ShellMaterial::alloy_steel();
  const node::Shell steel(steel_cfg);

  std::printf("material,dp_max_mpa,h_max_m\n");
  std::printf("SLA-resin,%.1f,%.0f\n",
              resin.config().material.max_pressure_difference / 1e6,
              resin.max_building_height(2300.0));
  std::printf("alloy-steel,%.1f,%.0f\n",
              steel.config().material.max_pressure_difference / 1e6,
              steel.max_building_height(2360.0));
  std::printf("# paper: resin ~195 m (~55 floors); steel ~4985 m\n\n");

  std::printf("height_m,dp_mpa,resin_survives,membrane_stress_mpa,deform_pct\n");
  for (double h : {10.0, 50.0, 100.0, 150.0, 195.0, 200.0, 250.0}) {
    const double dp = resin.pressure_difference(h, 2300.0);
    std::printf("%.0f,%.2f,%d,%.1f,%.2f\n", h, dp / 1e6,
                resin.survives(h, 2300.0) ? 1 : 0,
                resin.membrane_stress(std::max(dp, 0.0)) / 1e6,
                100.0 * resin.deformation_fraction(std::max(dp, 0.0)));
  }

  std::printf("\n# casting survival (fresh pour head)\n");
  std::printf("pour_depth_m,survives\n");
  for (double d : {0.5, 1.5, 3.0, 10.0, 150.0, 200.0}) {
    std::printf("%.1f,%d\n", d, resin.survives_casting(d) ? 1 : 0);
  }
  std::printf("# the CT scan in Fig. 10 verified exactly this property\n");
  return 0;
}
