// Fault sweep — protocol-level resilience vs fault intensity: exchange
// failure rate (the BER analog), delivered-reading throughput per slot, and
// session give-up rate, each with the retry state machine off and on. Every
// intensity point is a TrialRunner Monte-Carlo, so the aggregates are
// bit-identical at any ECOCAP_THREADS. Emits BENCH_fault_sweep.json.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/trial_runner.hpp"
#include "fault/fault.hpp"
#include "node/firmware.hpp"
#include "reader/inventory.hpp"

using namespace ecocap;

namespace {

constexpr std::uint64_t kSeed = 0xfa57;
constexpr std::size_t kTrials = 400;
constexpr int kNodes = 5;

/// Integer-only accumulator: merging integers is associative, so the sweep
/// is trivially bit-identical across thread counts.
struct Acc {
  long inventoried = 0;
  long deployed = 0;
  long reads_ok = 0;
  long slots = 0;
  long backoff_slots = 0;
  long exchange_fails = 0;  // timeouts + crc fails
  long exchanges = 0;       // fails + successes (approximated below)
  long retries = 0;
  long giveups = 0;
};

Acc sweep_point(const fault::FaultPlan& plan, bool retry) {
  const core::TrialRunner runner(core::ThreadPool::shared());
  return runner.run<Acc>(
      kTrials, kSeed,
      [&](std::size_t t, dsp::Rng&, Acc& acc) {
        std::vector<std::unique_ptr<node::Firmware>> firmwares;
        std::vector<reader::InventoriedNode> nodes;
        for (int i = 0; i < kNodes; ++i) {
          node::FirmwareConfig fc;
          fc.node_id = static_cast<std::uint16_t>(0x200 + i);
          firmwares.push_back(std::make_unique<node::Firmware>(
              fc, dsp::trial_seed(kSeed ^ 0x11, t * kNodes +
                                                    static_cast<std::size_t>(i))));
          firmwares.back()->power_on();
          reader::InventoriedNode n;
          n.firmware = firmwares.back().get();
          n.snr_db = 30.0;  // clean link: losses come from the fault plan
          nodes.push_back(n);
        }
        reader::InventoryEngine::Config cfg;
        cfg.q = 3;
        cfg.max_rounds = 4;
        cfg.retry.enabled = retry;
        cfg.sensors_to_read = {
            static_cast<std::uint8_t>(node::SensorId::kStress)};
        reader::InventoryEngine engine(cfg, dsp::trial_seed(kSeed ^ 0x22, t));
        fault::Injector inj(plan, kSeed, t);
        if (inj.active()) engine.set_fault_injector(&inj);
        const reader::InventoryResult r = engine.run(nodes);

        acc.inventoried += static_cast<long>(r.inventoried_ids.size());
        acc.deployed += kNodes;
        acc.reads_ok += r.stats.read_ok;
        acc.slots += r.stats.slots;
        acc.backoff_slots += r.stats.backoff_slots;
        acc.exchange_fails += r.stats.timeouts + r.stats.crc_fails;
        acc.exchanges += r.stats.timeouts + r.stats.crc_fails +
                         r.stats.acked * 2 + r.stats.read_ok;
        acc.retries += r.stats.retries;
        acc.giveups += r.stats.giveups;
      },
      [](Acc& into, const Acc& from) {
        into.inventoried += from.inventoried;
        into.deployed += from.deployed;
        into.reads_ok += from.reads_ok;
        into.slots += from.slots;
        into.backoff_slots += from.backoff_slots;
        into.exchange_fails += from.exchange_fails;
        into.exchanges += from.exchanges;
        into.retries += from.retries;
        into.giveups += from.giveups;
      });
}

double ratio(long num, long den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

int main() {
  bench::BenchJson out("fault_sweep");
  const std::vector<double> intensities{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<double> fail_off, fail_on, tput_off, tput_on, give_off, give_on,
      inv_off, inv_on;

  std::printf("# Fault sweep — %zu trials x %d nodes per point\n", kTrials,
              kNodes);
  std::printf(
      "intensity,mode,inventory_rate,exchange_fail_rate,reads_per_slot,"
      "giveup_rate,retries\n");
  for (const double x : intensities) {
    const fault::FaultPlan plan = fault::FaultPlan::at_intensity(x);
    for (const bool retry : {false, true}) {
      const Acc a = sweep_point(plan, retry);
      const double inv = ratio(a.inventoried, a.deployed);
      const double fail = ratio(a.exchange_fails, a.exchanges);
      const double tput =
          ratio(a.reads_ok, a.slots + a.backoff_slots);
      const double give = ratio(a.giveups, a.deployed);
      std::printf("%.1f,%s,%.4f,%.4f,%.4f,%.4f,%ld\n", x,
                  retry ? "retry" : "baseline", inv, fail, tput, give,
                  a.retries);
      (retry ? inv_on : inv_off).push_back(inv);
      (retry ? fail_on : fail_off).push_back(fail);
      (retry ? tput_on : tput_off).push_back(tput);
      (retry ? give_on : give_off).push_back(give);
    }
  }
  std::printf(
      "# retry recovers the mid-intensity band the baseline loses; both "
      "converge at 0 (no faults) and diverge toward 1 (hostile site)\n");

  out.set_trials(kTrials * intensities.size() * 2);
  out.series("intensity", intensities);
  out.series("inventory_rate_baseline", inv_off);
  out.series("inventory_rate_retry", inv_on);
  out.series("exchange_fail_rate_baseline", fail_off);
  out.series("exchange_fail_rate_retry", fail_on);
  out.series("reads_per_slot_baseline", tput_off);
  out.series("reads_per_slot_retry", tput_on);
  out.series("giveup_rate_baseline", give_off);
  out.series("giveup_rate_retry", give_on);
  out.metric("mid_intensity_recovery_gain",
             inv_on[2] - inv_off[2]);  // at intensity 0.4
  out.write();
  return 0;
}
