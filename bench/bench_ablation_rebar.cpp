// Ablation — §3.5 foreign objects: rebar/void scatterers perturb the
// channel; the paper observes that they rarely break communication and that
// fine-tuning the carrier frequency restores a degraded link. Monte Carlo
// over random rebar fields.

#include <algorithm>
#include <cstdio>

#include "channel/scatterers.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"

using namespace ecocap;
using dsp::Real;

int main() {
  const wave::Material concrete = wave::materials::reference_concrete();
  const wave::Point2 reader{0.0, 0.15};
  const wave::Point2 node{1.6, 0.12};

  std::printf("# Ablation — channel gain vs rebar density, 230 kHz carrier\n");
  std::printf(
      "rebar_count,mean_gain_db,p10_gain_db,mean_tuned_gain_db,"
      "tuning_recovery_db\n");
  for (int count : {0, 4, 8, 16, 32, 64}) {
    const int trials = 60;
    std::vector<Real> gains, tuned;
    dsp::Rng rng(1000 + count);
    for (int t = 0; t < trials; ++t) {
      const auto field =
          channel::ScattererField::random_rebar(count, 2.0, 0.3, concrete, rng);
      gains.push_back(field.path_gain(reader, node, 230.0e3));
      tuned.push_back(field.best_frequency(reader, node, 210.0e3, 250.0e3).gain);
    }
    std::sort(gains.begin(), gains.end());
    Real mean_g = 0.0, mean_t = 0.0;
    for (std::size_t i = 0; i < gains.size(); ++i) {
      mean_g += gains[i];
      mean_t += tuned[i];
    }
    mean_g /= trials;
    mean_t /= trials;
    const Real p10 = gains[trials / 10];
    std::printf("%d,%.2f,%.2f,%.2f,%.2f\n", count,
                dsp::to_db(mean_g * mean_g), dsp::to_db(p10 * p10),
                dsp::to_db(mean_t * mean_t),
                dsp::to_db(mean_t * mean_t) - dsp::to_db(mean_g * mean_g));
  }
  std::printf("# paper §3.5: foreign objects cause fading, not outage, and\n");
  std::printf("#   frequency fine-tuning significantly improves bad channels\n");
  return 0;
}
