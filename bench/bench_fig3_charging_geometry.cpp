// Fig. 3 / §3.2 — charging geometry: piston-beam coverage cone at normal
// incidence, concrete/air reflection coefficient, and the prism operating
// window that replaces exhaustive scanning with S-reflections.

#include <cstdio>

#include "wave/beam.hpp"
#include "wave/boundary.hpp"
#include "wave/prism.hpp"
#include "wave/snell.hpp"

using namespace ecocap;

int main() {
  const wave::Material concrete = wave::materials::reference_concrete();
  const wave::Material pla = wave::materials::pla();
  const wave::Material air = wave::materials::air();

  std::printf("# Fig. 3 / §3.2 — wireless-charging geometry\n");
  const wave::PistonBeam beam{0.040, 230.0e3, concrete.cp};
  std::printf("half_beam_angle_deg,%.2f\n",
              wave::rad_to_deg(beam.half_beam_angle()));
  std::printf("coverage_cone_cm3_15cm_wall,%.1f\n",
              beam.coverage_cone_volume(0.15) * 1e6);
  std::printf("footprint_radius_cm_15cm_wall,%.2f\n",
              beam.footprint_radius(0.15) * 100.0);
  std::printf("# paper: alpha ~ 11 deg, cone ~ 132 cm^3\n\n");

  std::printf("concrete_air_reflection_pct,%.3f\n",
              100.0 * wave::reflection_coefficient(concrete, air));
  std::printf("# paper Eq. 1: R = 99.98%% -> S-reflections fill the wall\n\n");

  std::printf("pla_concrete_energy_transmittance_pct,%.1f\n",
              100.0 * wave::energy_transmittance(pla, concrete));
  const auto ca1 = wave::first_critical_angle(pla, concrete);
  const auto ca2 = wave::second_critical_angle(pla, concrete);
  std::printf("first_critical_angle_deg,%.1f\n", wave::rad_to_deg(*ca1));
  std::printf("second_critical_angle_deg,%.1f\n", wave::rad_to_deg(*ca2));
  std::printf("# paper: ~67%% energy conducted; S-only window [34, 73] deg\n");
  return 0;
}
