// Fig. 21 / §6 and Figs. 26-36 — the long-term footbridge pilot study:
// simulate July 2021 minute-by-minute (weather incl. the tropical-cyclone
// window, pedestrian traffic, structural response), print the daily sensor
// summaries the paper plots, the per-section health dashboard, the anomaly
// windows, and the EcoCapsule cross-check readings.

#include <cstdio>

#include "shm/monitor.hpp"

using namespace ecocap;

int main() {
  shm::MonitoringCampaign::Config cfg;
  cfg.days = 31.0;          // July 2021
  cfg.step_minutes = 1.0;   // paper: health updated once per minute
  cfg.capsule_count = 5;    // the pilot deployed five EcoCapsules
  cfg.capsule_poll_hours = 6.0;
  cfg.seed = 2021;
  shm::MonitoringCampaign campaign(cfg);
  const shm::CampaignResult r = campaign.run();

  std::printf("# Fig. 21(a)/(b) + Figs. 26-36 — daily summaries, July 2021\n");
  std::printf(
      "day,acc_env_mps2,stress_mean_mpa,stress_side_mpa,humidity_pct,"
      "temp_c,pressure_kpa,worst_pao\n");
  const std::size_t per_day = 24 * 60;
  for (int d = 0; d < 31; ++d) {
    const std::size_t a = static_cast<std::size_t>(d) * per_day;
    const std::size_t b = a + per_day;
    const auto acc = r.acceleration.stats(a, b);
    const auto st = r.stress.stats(a, b);
    const auto st2 = r.stress_side.stats(a, b);
    const auto hum = r.humidity.stats(a, b);
    const auto tmp = r.temperature.stats(a, b);
    const auto prs = r.pressure.stats(a, b);
    const auto pao = r.pao.stats(a, b);
    std::printf("%d,%.4f,%.1f,%.1f,%.0f,%.1f,%.2f,%.1f\n", d + 1,
                acc.stddev, st.mean, st2.mean, hum.mean, tmp.mean, prs.mean,
                pao.min);
  }

  std::printf("\n# anomaly windows (rolling-z acceleration detector)\n");
  std::printf("start_day,end_day,peak_z\n");
  for (const auto& a : r.anomalies) {
    std::printf("%.1f,%.1f,%.1f\n", a.start_day + 1.0, a.end_day + 1.0,
                a.peak_zscore);
  }
  std::printf("# paper: excursions during the July 15-23 storm window\n");

  std::printf("\n# Fig. 21(c) — per-section health histogram (minutes)\n");
  std::printf("section,A,B,C,D,E,F\n");
  for (const auto& [section, hist] : r.health_histogram) {
    std::printf("%c", section);
    for (char letter : {'A', 'B', 'C', 'D', 'E', 'F'}) {
      const auto it = hist.find(letter);
      std::printf(",%d", (it != hist.end()) ? it->second : 0);
    }
    std::printf("\n");
  }
  std::printf("# paper: health stayed at B or above all year (COVID-era)\n");

  std::printf("\n# structural limit violations: %d\n", r.limit_violations);

  std::printf("\n# EcoCapsule cross-check readings (%zu collected)\n",
              r.capsule_readings.size());
  std::printf("node_id,sensor_id,value\n");
  const std::size_t show = std::min<std::size_t>(r.capsule_readings.size(), 12);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& x = r.capsule_readings[i];
    std::printf("0x%x,%d,%.3f\n", x.node_id, x.sensor_id, x.value);
  }
  std::printf("# paper: 5 capsules @ <1k USD vs 88 wired sensors @ >10M USD\n");
  return 0;
}
