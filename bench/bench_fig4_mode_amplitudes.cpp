// Fig. 4 — relative amplitudes of the transmitted P and S modes (and the
// leaked surface wave) vs the prism incident angle, PLA into concrete.

#include <cstdio>

#include "wave/snell.hpp"

using namespace ecocap;

int main() {
  const wave::Material pla = wave::materials::pla();
  const wave::Material concrete = wave::materials::reference_concrete();
  const auto ca1 = wave::first_critical_angle(pla, concrete);
  const auto ca2 = wave::second_critical_angle(pla, concrete);

  std::printf("# Fig. 4 — transmitted mode amplitudes vs incident angle\n");
  std::printf("# 1st critical angle: %.1f deg, 2nd: %.1f deg (paper: 34/73)\n",
              wave::rad_to_deg(*ca1), wave::rad_to_deg(*ca2));
  std::printf("angle_deg,p_amplitude,s_amplitude,surface_amplitude\n");
  for (int deg = 0; deg <= 85; deg += 5) {
    const auto a = wave::transmitted_mode_amplitudes(
        pla, concrete, wave::deg_to_rad(static_cast<double>(deg)));
    std::printf("%d,%.3f,%.3f,%.3f\n", deg, a.p, a.s, a.surface);
  }
  return 0;
}
