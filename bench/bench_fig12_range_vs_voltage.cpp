// Fig. 12 — maximum power-up range vs TX voltage for the four concrete
// structures (S1-S4) and the PAB pools.

#include <cstdio>

#include "baseline/pab.hpp"
#include "channel/link_budget.hpp"
#include "channel/structures.hpp"

using namespace ecocap;

int main() {
  const auto structures = channel::structures::figure12_structures();
  std::printf("# Fig. 12 — power-up range (cm) vs TX voltage (V)\n");
  std::printf("voltage_v");
  for (const auto& s : structures) std::printf(",%s", s.name.c_str());
  std::printf("\n");

  for (int v = 10; v <= 250; v += 10) {
    std::printf("%d", v);
    for (const auto& s : structures) {
      const channel::LinkBudget budget(s);
      const auto range = budget.max_powerup_range(static_cast<double>(v));
      if (range) {
        std::printf(",%.0f", *range * 100.0);
      } else {
        std::printf(",");
      }
    }
    std::printf("\n");
  }

  std::printf("# paper anchors: S1 130cm@50V; S2 56cm@50V 235cm@200V;\n");
  std::printf("#   S3 134cm@50V ~500cm@200V ~600cm@250V; S4 60cm@50V 385cm@200V;\n");
  std::printf("#   Pool1 19cm@50V 200cm@200V; Pool2 23cm@84V 650cm@125V\n");
  std::printf("# findings: voltage ^ -> range ^; narrow walls beat the thick\n");
  std::printf("#   column; pool 2 anomaly: waveguided corridor\n");
  return 0;
}
