// Fig. 18 — uplink SNR CDF vs node position (top margin / middle / bottom
// margin of a wall): Monte Carlo over reader placements and launch angles
// with the boundary-reflection ray tracer; margins harvest reflected
// S-waves and see higher SNR than the middle.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "wave/ray_tracer.hpp"
#include "wave/snell.hpp"

using namespace ecocap;
using dsp::Real;

int main() {
  const wave::Material concrete = wave::materials::reference_concrete();
  wave::RayTracer::Config cfg;
  cfg.length = 2.0;
  cfg.thickness = 0.30;
  cfg.rays = 48;
  cfg.fan_half_angle = 0.45;
  const wave::RayTracer tracer(concrete, cfg);

  dsp::Rng rng(7);
  const int trials = 120;
  // Positions across the thickness: top margin, middle, bottom margin.
  struct Band {
    const char* name;
    Real y;
  };
  const std::vector<Band> bands = {
      {"top", 0.27}, {"middle", 0.15}, {"bottom", 0.03}};

  std::vector<std::vector<Real>> snrs(bands.size());
  for (int t = 0; t < trials; ++t) {
    const Real src = rng.uniform(0.0, 0.3);
    const Real launch = wave::deg_to_rad(rng.uniform(40.0, 70.0));
    const Real x = rng.uniform(0.8, 1.4);
    for (std::size_t b = 0; b < bands.size(); ++b) {
      // Coherent combining: near-margin nodes see the incident and
      // boundary-reflected passes superpose (displacement antinode).
      const Real e = tracer.coherent_energy_at(src, launch,
                                               wave::Point2{x, bands[b].y},
                                               0.05);
      // Map captured energy to an SNR against a fixed noise floor chosen so
      // the median lands in the paper's 5-15 dB range.
      const Real snr = dsp::to_db(e / 2.2e-4);
      snrs[b].push_back(snr);
    }
  }

  std::printf("# Fig. 18 — SNR CDF by node position in the wall section\n");
  std::printf("percentile,top_db,middle_db,bottom_db\n");
  for (auto& v : snrs) std::sort(v.begin(), v.end());
  for (int p = 5; p <= 95; p += 5) {
    const std::size_t idx =
        static_cast<std::size_t>(p / 100.0 * (trials - 1));
    std::printf("%d,%.1f,%.1f,%.1f\n", p, snrs[0][idx], snrs[1][idx],
                snrs[2][idx]);
  }
  const std::size_t med = trials / 2;
  std::printf("# medians: top %.1f dB, middle %.1f dB, bottom %.1f dB\n",
              snrs[0][med], snrs[1][med], snrs[2][med]);
  std::printf("# paper: margins (11 / 8 dB) beat the middle (7 dB)\n");
  return 0;
}
