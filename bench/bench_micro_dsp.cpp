// Micro-benchmarks (google-benchmark) for the hot paths that the Monte
// Carlo experiment harnesses lean on: FFT, FIR filtering (direct vs the
// overlap-save FFT path), correlation, zero-phase filtering, FM0 Viterbi
// decode, the envelope detector, the waveform-level concrete channel, and
// threaded FDTD stepping.
//
// Besides the google-benchmark table, main() times the headline
// direct-vs-FFT and 1-vs-N-thread comparisons with a plain chrono loop and
// writes them to BENCH_micro_dsp.json (schema in docs/benchmarks.md), so
// the perf trajectory of this PR's kernels is machine-readable.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.hpp"
#include "channel/concrete_channel.hpp"
#include "core/ber_harness.hpp"
#include "core/link_simulator.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace_pool.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fast_convolve.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "wave/fdtd.hpp"
#include "phy/fm0.hpp"

using namespace ecocap;

static void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dsp::Signal x = dsp::tone(1.0e6, 230.0e3, n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::magnitude_spectrum(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

static void BM_FirFilterScalar(benchmark::State& state) {
  // The seed's per-sample delay-line path (also today's direct fallback).
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  dsp::FirFilter f(h);
  for (auto _ : state) {
    dsp::Signal out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = f.process(x[i]);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirFilterScalar);

static void BM_FirFilter(benchmark::State& state) {
  // Batch path: dispatches to overlap-save FFT convolution at this size.
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  dsp::FirFilter f(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.process(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirFilter);

static void BM_FilterZeroPhase(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, taps);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filter_zero_phase(h, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FilterZeroPhase)->Arg(15)->Arg(129)->Arg(513);

static void BM_CorrelateDirect(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
  for (auto _ : state) {
    // Inline brute-force sliding dot product (the seed path).
    const std::size_t out_len = x.size() - h.size() + 1;
    dsp::Signal out(out_len, 0.0);
    for (std::size_t k = 0; k < out_len; ++k) {
      dsp::Real acc = 0.0;
      for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
      out[k] = acc;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateDirect);

static void BM_CorrelateFft(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::correlate_valid_fft(x, h));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateFft);

static void BM_Fm0Decode(benchmark::State& state) {
  dsp::Rng rng(1);
  const phy::Bits bits = phy::random_bits(256, rng);
  const dsp::Signal x = phy::fm0_encode(bits, 32.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::fm0_decode(x, 32.0, bits.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_Fm0Decode);

static void BM_Envelope(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(2.0e6, 230.0e3, 1 << 16, 1.0);
  dsp::EnvelopeDetector det(2.0e6, 20.0e3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.process(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_Envelope);

static void BM_ConcreteChannelDownlink(benchmark::State& state) {
  channel::ChannelConfig cfg;
  cfg.distance = 0.5;
  const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                    cfg);
  const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 1.0);
  dsp::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.downlink(x, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConcreteChannelDownlink);

static void BM_ConcreteChannelUplink(benchmark::State& state) {
  channel::ChannelConfig cfg;
  cfg.distance = 0.5;
  const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                    cfg);
  const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 0.01);
  dsp::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.uplink(x, 230.0e3, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConcreteChannelUplink);

static void BM_FdtdStep(benchmark::State& state) {
  wave::ElasticFdtd::Config cfg;
  cfg.nx = static_cast<std::size_t>(state.range(0));
  cfg.ny = cfg.nx;
  cfg.parallel = false;
  wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
  sim.add_force(cfg.nx / 2, cfg.ny / 2, 1, 1.0);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.nx * cfg.ny));
}
BENCHMARK(BM_FdtdStep)->Arg(128)->Arg(256);

static void BM_FdtdStepThreads(benchmark::State& state) {
  core::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  wave::ElasticFdtd::Config cfg;
  cfg.nx = static_cast<std::size_t>(state.range(0));
  cfg.ny = cfg.nx;
  cfg.pool = &pool;
  wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
  sim.add_force(cfg.nx / 2, cfg.ny / 2, 1, 1.0);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.nx * cfg.ny));
}
BENCHMARK(BM_FdtdStepThreads)->Args({256, 1})->Args({256, 2})->Args({256, 4});

static void BM_BerTrial(benchmark::State& state) {
  core::BerConfig cfg;
  cfg.snr_db = 8.0;
  cfg.total_bits = 4096;
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(core::fm0_ber_monte_carlo(cfg));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BerTrial);

namespace {

/// Nanoseconds per call, growing the iteration count until the measurement
/// window is long enough to trust.
template <typename F>
double time_ns(F&& f, double min_seconds = 0.05) {
  using clock = std::chrono::steady_clock;
  f();  // warm up caches and any lazy design
  std::size_t iters = 1;
  while (true) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) f();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_seconds) return s * 1e9 / static_cast<double>(iters);
    const double grow = (s > 1e-9) ? min_seconds / s * 1.2 : 8.0;
    iters = std::max(iters + 1, static_cast<std::size_t>(
                                    static_cast<double>(iters) * grow));
  }
}

/// Headline direct-vs-FFT and 1-vs-N-thread comparisons for the JSON
/// trajectory. These are the acceptance numbers: the google-benchmark table
/// above is for humans, this block is for machines.
void record_headline_metrics(ecocap::bench::BenchJson& json) {
  // 129-tap FIR over a 32k buffer: seed per-sample delay line vs the
  // overlap-save FFT batch path.
  {
    const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    dsp::FirFilter scalar_f(h);
    const double direct_ns = time_ns([&] {
      dsp::Signal out(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) out[i] = scalar_f.process(x[i]);
      benchmark::DoNotOptimize(out);
    });
    dsp::FirFilter batch_f(h);
    const double fft_ns = time_ns([&] {
      benchmark::DoNotOptimize(batch_f.process(x));
    });
    json.metric("fir_129tap_32k_direct_ns", direct_ns);
    json.metric("fir_129tap_32k_fft_ns", fft_ns);
    json.metric("fir_129tap_32k_speedup", direct_ns / fft_ns);
  }

  // Zero-phase filtering, same design point.
  {
    const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    const double direct_ns = time_ns([&] {
      benchmark::DoNotOptimize(dsp::convolve_full_direct(x, h));
    });
    const double fft_ns = time_ns([&] {
      benchmark::DoNotOptimize(dsp::filter_zero_phase(h, x));
    });
    json.metric("zero_phase_129tap_32k_direct_ns", direct_ns);
    json.metric("zero_phase_129tap_32k_fft_ns", fft_ns);
    json.metric("zero_phase_129tap_32k_speedup", direct_ns / fft_ns);
  }

  // Valid correlation of a 512-sample template against a 32k capture (the
  // FM0 preamble search shape).
  {
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
    const double direct_ns = time_ns([&] {
      const std::size_t out_len = x.size() - h.size() + 1;
      dsp::Signal out(out_len, 0.0);
      for (std::size_t k = 0; k < out_len; ++k) {
        dsp::Real acc = 0.0;
        for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
        out[k] = acc;
      }
      benchmark::DoNotOptimize(out);
    });
    const double fft_ns = time_ns([&] {
      benchmark::DoNotOptimize(dsp::correlate_valid_fft(x, h));
    });
    json.metric("correlate_512tmpl_32k_direct_ns", direct_ns);
    json.metric("correlate_512tmpl_32k_fft_ns", fft_ns);
    json.metric("correlate_512tmpl_32k_speedup", direct_ns / fft_ns);
  }

  // Waveform-level uplink through the cached-resonator channel.
  {
    channel::ChannelConfig cfg;
    cfg.distance = 0.5;
    const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                      cfg);
    const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 0.01);
    dsp::Rng rng(3);
    json.metric("uplink_65536_ns", time_ns([&] {
                  benchmark::DoNotOptimize(ch.uplink(x, 230.0e3, rng));
                }));
  }

  // End-to-end interrogation through the zero-copy stage pipeline: the
  // workspace stats hook counts heap allocations per uplink_once() trial
  // with pooling off (the allocate-per-checkout "before" behaviour) and on
  // (steady-state reuse), plus the interrogation rate in both modes.
  {
    core::SystemConfig cfg = core::default_system();
    cfg.channel.distance = 0.10;
    cfg.channel.noise_sigma = 1e-4;
    const core::SystemSnapshot snapshot =
        std::make_shared<const core::SystemConfig>(cfg);
    dsp::Rng prng(5);
    const phy::Bits payload = phy::random_bits(32, prng);
    core::WorkspacePool& pool = core::WorkspacePool::shared();

    std::uint64_t trial = 0;
    const auto one_trial = [&] {
      core::LinkSimulator sim(snapshot, dsp::trial_seed(cfg.seed, trial++));
      benchmark::DoNotOptimize(sim.uplink_once(payload));
    };
    const auto allocs_per_trial = [&] {
      // Average the stats over a few trials AFTER a warm-up trial has
      // populated the pool (steady state is what the harnesses run in).
      constexpr std::size_t kTrials = 5;
      one_trial();
      pool.reset_stats();
      for (std::size_t i = 0; i < kTrials; ++i) one_trial();
      const dsp::Workspace::Stats s = pool.total_stats();
      return static_cast<double>(s.heap_allocations) /
             static_cast<double>(kTrials);
    };

    pool.set_pooling(false);
    pool.clear();
    const double allocs_before = allocs_per_trial();
    const double before_ns = time_ns(one_trial, 0.2);

    pool.set_pooling(true);
    pool.clear();
    const double allocs_after = allocs_per_trial();
    const double after_ns = time_ns(one_trial, 0.2);

    json.metric("e2e_interrogate_allocs_per_trial_unpooled", allocs_before);
    json.metric("e2e_interrogate_allocs_per_trial_pooled", allocs_after);
    json.metric("e2e_interrogate_alloc_reduction",
                allocs_before / std::max(allocs_after, 1.0));
    json.metric("e2e_interrogate_unpooled_per_sec", 1e9 / before_ns);
    json.metric("e2e_interrogate_pooled_per_sec", 1e9 / after_ns);
    json.metric("e2e_interrogate_speedup", before_ns / after_ns);
  }

  // FDTD stepping, 256x256, serial vs a 4-worker pool. On a single
  // hardware core the threaded number degrades to ~1x — the JSON records
  // whatever this host can actually deliver.
  {
    const auto fdtd_ns = [](unsigned workers) {
      core::ThreadPool pool(workers);
      wave::ElasticFdtd::Config cfg;
      cfg.nx = 256;
      cfg.ny = 256;
      cfg.pool = &pool;
      wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
      sim.add_force(128, 128, 1, 1.0);
      return time_ns([&] { sim.step(); });
    };
    const double t1 = fdtd_ns(1);
    const double t4 = fdtd_ns(4);
    json.metric("fdtd_256_step_1t_ns", t1);
    json.metric("fdtd_256_step_4t_ns", t4);
    json.metric("fdtd_256_step_speedup_4t", t1 / t4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ecocap::bench::BenchJson json("micro_dsp");
  record_headline_metrics(json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  json.write();
  return 0;
}
