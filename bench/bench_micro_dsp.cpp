// Micro-benchmarks (google-benchmark) for the hot paths that the Monte
// Carlo experiment harnesses lean on: FFT, FIR filtering, FM0 Viterbi
// decode, the envelope detector, and the waveform-level concrete channel.

#include <benchmark/benchmark.h>

#include "channel/concrete_channel.hpp"
#include "core/ber_harness.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "wave/fdtd.hpp"
#include "phy/fm0.hpp"

using namespace ecocap;

static void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dsp::Signal x = dsp::tone(1.0e6, 230.0e3, n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::magnitude_spectrum(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

static void BM_FirFilter(benchmark::State& state) {
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  dsp::FirFilter f(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.process(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirFilter);

static void BM_Fm0Decode(benchmark::State& state) {
  dsp::Rng rng(1);
  const phy::Bits bits = phy::random_bits(256, rng);
  const dsp::Signal x = phy::fm0_encode(bits, 32.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::fm0_decode(x, 32.0, bits.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_Fm0Decode);

static void BM_Envelope(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(2.0e6, 230.0e3, 1 << 16, 1.0);
  dsp::EnvelopeDetector det(2.0e6, 20.0e3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.process(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_Envelope);

static void BM_ConcreteChannelDownlink(benchmark::State& state) {
  channel::ChannelConfig cfg;
  cfg.distance = 0.5;
  const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                    cfg);
  const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 1.0);
  dsp::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.downlink(x, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConcreteChannelDownlink);

static void BM_FdtdStep(benchmark::State& state) {
  wave::ElasticFdtd::Config cfg;
  cfg.nx = static_cast<std::size_t>(state.range(0));
  cfg.ny = cfg.nx;
  wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
  sim.add_force(cfg.nx / 2, cfg.ny / 2, 1, 1.0);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.nx * cfg.ny));
}
BENCHMARK(BM_FdtdStep)->Arg(128)->Arg(256);

static void BM_BerTrial(benchmark::State& state) {
  core::BerConfig cfg;
  cfg.snr_db = 8.0;
  cfg.total_bits = 4096;
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(core::fm0_ber_monte_carlo(cfg));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BerTrial);
