// Micro-benchmarks (google-benchmark) for the hot paths that the Monte
// Carlo experiment harnesses lean on: FFT, FIR filtering (direct vs the
// overlap-save FFT path), correlation, zero-phase filtering, FM0 Viterbi
// decode, the envelope detector, the waveform-level concrete channel, and
// threaded FDTD stepping.
//
// Besides the google-benchmark table, main() times the headline
// direct-vs-FFT and 1-vs-N-thread comparisons with a plain chrono loop and
// writes them to BENCH_micro_dsp.json (schema in docs/benchmarks.md), so
// the perf trajectory of this PR's kernels is machine-readable.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "channel/concrete_channel.hpp"
#include "core/ber_harness.hpp"
#include "core/link_simulator.hpp"
#include "core/thread_pool.hpp"
#include "core/workspace_pool.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fast_convolve.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/kernels/kernels.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "wave/fdtd.hpp"
#include "phy/fm0.hpp"

using namespace ecocap;

static void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dsp::Signal x = dsp::tone(1.0e6, 230.0e3, n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::magnitude_spectrum(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

static void BM_FirFilterScalar(benchmark::State& state) {
  // The seed's per-sample delay-line path (also today's direct fallback).
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  dsp::FirFilter f(h);
  for (auto _ : state) {
    dsp::Signal out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = f.process(x[i]);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirFilterScalar);

static void BM_FirFilter(benchmark::State& state) {
  // Batch path: dispatches to overlap-save FFT convolution at this size.
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  dsp::FirFilter f(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.process(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FirFilter);

static void BM_FilterZeroPhase(benchmark::State& state) {
  const auto taps = static_cast<std::size_t>(state.range(0));
  const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, taps);
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filter_zero_phase(h, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FilterZeroPhase)->Arg(15)->Arg(129)->Arg(513);

static void BM_CorrelateDirect(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
  for (auto _ : state) {
    // Inline brute-force sliding dot product (the seed path).
    const std::size_t out_len = x.size() - h.size() + 1;
    dsp::Signal out(out_len, 0.0);
    for (std::size_t k = 0; k < out_len; ++k) {
      dsp::Real acc = 0.0;
      for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
      out[k] = acc;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateDirect);

static void BM_CorrelateFft(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
  const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::correlate_valid_fft(x, h));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_CorrelateFft);

static void BM_Fm0Decode(benchmark::State& state) {
  dsp::Rng rng(1);
  const phy::Bits bits = phy::random_bits(256, rng);
  const dsp::Signal x = phy::fm0_encode(bits, 32.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::fm0_decode(x, 32.0, bits.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_Fm0Decode);

static void BM_Envelope(benchmark::State& state) {
  const dsp::Signal x = dsp::tone(2.0e6, 230.0e3, 1 << 16, 1.0);
  dsp::EnvelopeDetector det(2.0e6, 20.0e3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.process(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_Envelope);

static void BM_ConcreteChannelDownlink(benchmark::State& state) {
  channel::ChannelConfig cfg;
  cfg.distance = 0.5;
  const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                    cfg);
  const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 1.0);
  dsp::Rng rng(2);
  dsp::Signal y;
  for (auto _ : state) {
    ch.downlink(x, rng, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConcreteChannelDownlink);

static void BM_ConcreteChannelUplink(benchmark::State& state) {
  channel::ChannelConfig cfg;
  cfg.distance = 0.5;
  const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                    cfg);
  const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 0.01);
  dsp::Rng rng(3);
  dsp::Signal y;
  for (auto _ : state) {
    ch.uplink(x, 230.0e3, rng, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConcreteChannelUplink);

static void BM_FdtdStep(benchmark::State& state) {
  wave::ElasticFdtd::Config cfg;
  cfg.nx = static_cast<std::size_t>(state.range(0));
  cfg.ny = cfg.nx;
  cfg.parallel = false;
  wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
  sim.add_force(cfg.nx / 2, cfg.ny / 2, 1, 1.0);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.nx * cfg.ny));
}
BENCHMARK(BM_FdtdStep)->Arg(128)->Arg(256);

static void BM_FdtdStepThreads(benchmark::State& state) {
  core::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  wave::ElasticFdtd::Config cfg;
  cfg.nx = static_cast<std::size_t>(state.range(0));
  cfg.ny = cfg.nx;
  cfg.pool = &pool;
  wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
  sim.add_force(cfg.nx / 2, cfg.ny / 2, 1, 1.0);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.nx * cfg.ny));
}
BENCHMARK(BM_FdtdStepThreads)->Args({256, 1})->Args({256, 2})->Args({256, 4});

static void BM_BerTrial(benchmark::State& state) {
  core::BerConfig cfg;
  cfg.snr_db = 8.0;
  cfg.total_bits = 4096;
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(core::fm0_ber_monte_carlo(cfg));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BerTrial);

namespace {

/// Nanoseconds per call, growing the iteration count until the measurement
/// window is long enough to trust.
template <typename F>
double time_ns(F&& f, double min_seconds = 0.05) {
  using clock = std::chrono::steady_clock;
  f();  // warm up caches and any lazy design
  std::size_t iters = 1;
  while (true) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) f();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_seconds) return s * 1e9 / static_cast<double>(iters);
    const double grow = (s > 1e-9) ? min_seconds / s * 1.2 : 8.0;
    iters = std::max(iters + 1, static_cast<std::size_t>(
                                    static_cast<double>(iters) * grow));
  }
}

/// Per-kernel roofline block: for each primitive in the SIMD kernel layer,
/// the seed-style sequential loop vs the dispatched kernel table, in
/// ns/element, plus the analytic traffic (bytes/element) and arithmetic
/// (flops/element) so the ratio against machine peak is computable offline.
/// Schema in docs/benchmarks.md. `simd_isa` records which table `active()`
/// resolved to (0 scalar, 1 avx2, 2 neon) so CI can gate speedups only on
/// SIMD-capable hosts.
void record_roofline_metrics(ecocap::bench::BenchJson& json) {
  const dsp::kernels::KernelTable& kt = dsp::kernels::active();
  json.metric("simd_isa", static_cast<double>(kt.isa));
  json.metric("hw_threads",
              static_cast<double>(std::thread::hardware_concurrency()));

  const auto per_elem = [&](const char* name, double seed_ns, double simd_ns,
                            double elems, double bytes, double flops) {
    json.metric(std::string("kern_") + name + "_seed_ns_per_elem",
                seed_ns / elems);
    json.metric(std::string("kern_") + name + "_simd_ns_per_elem",
                simd_ns / elems);
    json.metric(std::string("kern_") + name + "_speedup", seed_ns / simd_ns);
    json.metric(std::string("kern_") + name + "_bytes_per_elem", bytes);
    json.metric(std::string("kern_") + name + "_flops_per_elem", flops);
  };

  // Dot product, 4096 points (L1-resident: measures the compute ceiling).
  {
    const dsp::Signal a = dsp::tone(1.0e6, 31.0e3, 4096, 1.0);
    const dsp::Signal b = dsp::tone(1.0e6, 47.0e3, 4096, 1.0);
    const double seed_ns = time_ns([&] {
      dsp::Real acc = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
      benchmark::DoNotOptimize(acc);
    });
    const double simd_ns = time_ns([&] {
      dsp::Real acc = kt.dot(a.data(), b.data(), a.size());
      benchmark::DoNotOptimize(acc);
    });
    per_elem("dot", seed_ns, simd_ns, 4096.0, 16.0, 2.0);
  }

  // FIR direct path: 129 reversed taps slid over 8k samples — the
  // FirFilter batch shape below the FFT-dispatch threshold. One "element"
  // is one multiply-accumulate lane crossing, out_len * taps of them.
  {
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 8192, 1.0);
    const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
    const std::size_t out_len = x.size() - h.size() + 1;
    dsp::Signal out(out_len);
    const double seed_ns = time_ns([&] {
      for (std::size_t k = 0; k < out_len; ++k) {
        dsp::Real acc = 0.0;
        for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
        out[k] = acc;
      }
      benchmark::DoNotOptimize(out);
    });
    const double simd_ns = time_ns([&] {
      kt.correlate_valid(x.data(), x.size(), h.data(), h.size(), out.data());
      benchmark::DoNotOptimize(out);
    });
    const double macs = static_cast<double>(out_len * h.size());
    per_elem("fir", seed_ns, simd_ns, macs, 16.0, 2.0);
  }

  // Correlation at the preamble-search shape (512-tap template, 32k
  // capture), same element definition.
  {
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
    const std::size_t out_len = x.size() - h.size() + 1;
    dsp::Signal out(out_len);
    const double seed_ns = time_ns([&] {
      for (std::size_t k = 0; k < out_len; ++k) {
        dsp::Real acc = 0.0;
        for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
        out[k] = acc;
      }
      benchmark::DoNotOptimize(out);
    });
    const double simd_ns = time_ns([&] {
      kt.correlate_valid(x.data(), x.size(), h.data(), h.size(), out.data());
      benchmark::DoNotOptimize(out);
    });
    const double macs = static_cast<double>(out_len * h.size());
    per_elem("correlate", seed_ns, simd_ns, macs, 16.0, 2.0);
  }

  // Biquad over 64k samples: a serial recurrence, so the "kernel win" is
  // state-in-locals vs the seed's member-state per-sample call, not SIMD.
  {
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 16, 1.0);
    dsp::Signal y(x.size());
    const dsp::kernels::BiquadCoeffs c{0.2, 0.3, 0.1, -0.5, 0.25};
    const double seed_ns = time_ns([&] {
      dsp::Real x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
      volatile dsp::Real* sink = y.data();  // forbid loop fusion with state
      for (std::size_t i = 0; i < x.size(); ++i) {
        const dsp::Real yi =
            c.b0 * x[i] + c.b1 * x1 + c.b2 * x2 - c.a1 * y1 - c.a2 * y2;
        x2 = x1;
        x1 = x[i];
        y2 = y1;
        y1 = yi;
        sink[i] = yi;
      }
      benchmark::DoNotOptimize(y);
    });
    const double simd_ns = time_ns([&] {
      dsp::kernels::BiquadState s;
      kt.biquad(x.data(), y.data(), x.size(), c, s);
      benchmark::DoNotOptimize(y);
    });
    per_elem("biquad", seed_ns, simd_ns, static_cast<double>(x.size()), 16.0,
             9.0);
  }

  // One-pole low-pass over 64k samples: seed per-sample RC recurrence vs
  // the block-scan kernel (4 lanes from the block-entry state).
  {
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 16, 1.0);
    dsp::Signal y(x.size());
    const dsp::Real alpha = 0.125;
    const double seed_ns = time_ns([&] {
      dsp::Real state = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        state += alpha * (x[i] - state);
        y[i] = state;
      }
      benchmark::DoNotOptimize(y);
    });
    const double simd_ns = time_ns([&] {
      dsp::Real state = 0.0;
      kt.onepole(x.data(), y.data(), x.size(), alpha, &state);
      benchmark::DoNotOptimize(y);
    });
    per_elem("onepole", seed_ns, simd_ns, static_cast<double>(x.size()), 16.0,
             9.0);
  }

  // Envelope (rectify + RC) over 64k samples.
  {
    const dsp::Signal x = dsp::tone(2.0e6, 230.0e3, 1 << 16, 1.0);
    dsp::Signal y(x.size());
    const dsp::Real alpha = 0.0609;
    const double seed_ns = time_ns([&] {
      dsp::Real state = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        state += alpha * (std::abs(x[i]) - state);
        y[i] = state;
      }
      benchmark::DoNotOptimize(y);
    });
    const double simd_ns = time_ns([&] {
      dsp::Real state = 0.0;
      kt.envelope(x.data(), y.data(), x.size(), alpha, &state);
      benchmark::DoNotOptimize(y);
    });
    per_elem("envelope", seed_ns, simd_ns, static_cast<double>(x.size()),
             16.0, 10.0);
  }

  // FDTD stencil rows, 1024 columns x 64 rows (the per-band working shape).
  // Seed-style indexed loops (the pre-kernel update_*_rows bodies) vs the
  // kernel row functions.
  {
    const std::size_t nx = 1024, rows = 64;
    const std::size_t n = nx * (rows + 2);
    std::vector<dsp::Real> vx(n, 0.01), vy(n, 0.02), sxx(n, 0.5), syy(n, 0.4),
        sxy(n, 0.3), rho(n, 2400.0), lambda(n, 1.1e10), mu(n, 9.0e9);
    const dsp::Real dt = 1e-7, inv_dx = 500.0;
    const double vel_seed_ns = time_ns([&] {
      for (std::size_t iy = 1; iy <= rows; ++iy) {
        for (std::size_t ix = 1; ix + 1 < nx; ++ix) {
          const std::size_t i = iy * nx + ix;
          const dsp::Real dsxx_dx = (sxx[i] - sxx[i - 1]) * inv_dx;
          const dsp::Real dsxy_dy = (sxy[i] - sxy[i - nx]) * inv_dx;
          const dsp::Real dsxy_dx = (sxy[i + 1] - sxy[i]) * inv_dx;
          const dsp::Real dsyy_dy = (syy[i + nx] - syy[i]) * inv_dx;
          const dsp::Real inv_rho = 1.0 / rho[i];
          vx[i] += dt * inv_rho * (dsxx_dx + dsxy_dy);
          vy[i] += dt * inv_rho * (dsxy_dx + dsyy_dy);
        }
      }
      benchmark::DoNotOptimize(vx);
    });
    const double vel_simd_ns = time_ns([&] {
      for (std::size_t iy = 1; iy <= rows; ++iy) {
        dsp::kernels::FdtdVelocityRowArgs a{};
        a.vx = vx.data() + iy * nx;
        a.vy = vy.data() + iy * nx;
        a.sxx = sxx.data() + iy * nx;
        a.sxy = sxy.data() + iy * nx;
        a.sxy_dn = sxy.data() + (iy - 1) * nx;
        a.syy = syy.data() + iy * nx;
        a.syy_up = syy.data() + (iy + 1) * nx;
        a.rho = rho.data() + iy * nx;
        a.i0 = 1;
        a.i1 = nx - 1;
        a.dt = dt;
        a.inv_dx = inv_dx;
        kt.fdtd_velocity_row(a);
      }
      benchmark::DoNotOptimize(vx);
    });
    const double cells = static_cast<double>(rows * (nx - 2));
    per_elem("fdtd_velocity", vel_seed_ns, vel_simd_ns, cells, 96.0, 17.0);

    const double str_seed_ns = time_ns([&] {
      for (std::size_t iy = 1; iy <= rows; ++iy) {
        for (std::size_t ix = 1; ix + 1 < nx; ++ix) {
          const std::size_t i = iy * nx + ix;
          const dsp::Real dvx_dx = (vx[i + 1] - vx[i]) * inv_dx;
          const dsp::Real dvy_dy = (vy[i] - vy[i - nx]) * inv_dx;
          const dsp::Real l = lambda[i];
          const dsp::Real m = mu[i];
          sxx[i] += dt * ((l + 2.0 * m) * dvx_dx + l * dvy_dy);
          syy[i] += dt * (l * dvx_dx + (l + 2.0 * m) * dvy_dy);
          const dsp::Real dvx_dy = (vx[i + nx] - vx[i]) * inv_dx;
          const dsp::Real dvy_dx = (vy[i] - vy[i - 1]) * inv_dx;
          sxy[i] += dt * m * (dvx_dy + dvy_dx);
        }
      }
      benchmark::DoNotOptimize(sxx);
    });
    const double str_simd_ns = time_ns([&] {
      for (std::size_t iy = 1; iy <= rows; ++iy) {
        dsp::kernels::FdtdStressRowArgs a{};
        a.sxx = sxx.data() + iy * nx;
        a.syy = syy.data() + iy * nx;
        a.sxy = sxy.data() + iy * nx;
        a.vx = vx.data() + iy * nx;
        a.vx_up = vx.data() + (iy + 1) * nx;
        a.vy = vy.data() + iy * nx;
        a.vy_dn = vy.data() + (iy - 1) * nx;
        a.lambda = lambda.data() + iy * nx;
        a.mu = mu.data() + iy * nx;
        a.i0 = 1;
        a.i1 = nx - 1;
        a.dt = dt;
        a.inv_dx = inv_dx;
        kt.fdtd_stress_row(a);
      }
      benchmark::DoNotOptimize(sxx);
    });
    per_elem("fdtd_stress", str_seed_ns, str_simd_ns, cells, 112.0, 20.0);
  }
}

/// Headline direct-vs-FFT and 1-vs-N-thread comparisons for the JSON
/// trajectory. These are the acceptance numbers: the google-benchmark table
/// above is for humans, this block is for machines.
void record_headline_metrics(ecocap::bench::BenchJson& json) {
  // 129-tap FIR over a 32k buffer: seed per-sample delay line vs the
  // overlap-save FFT batch path.
  {
    const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    dsp::FirFilter scalar_f(h);
    const double direct_ns = time_ns([&] {
      dsp::Signal out(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) out[i] = scalar_f.process(x[i]);
      benchmark::DoNotOptimize(out);
    });
    dsp::FirFilter batch_f(h);
    const double fft_ns = time_ns([&] {
      benchmark::DoNotOptimize(batch_f.process(x));
    });
    json.metric("fir_129tap_32k_direct_ns", direct_ns);
    json.metric("fir_129tap_32k_fft_ns", fft_ns);
    json.metric("fir_129tap_32k_speedup", direct_ns / fft_ns);
  }

  // Zero-phase filtering, same design point.
  {
    const dsp::Signal h = dsp::design_lowpass(1.0e6, 50.0e3, 129);
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    const double direct_ns = time_ns([&] {
      benchmark::DoNotOptimize(dsp::convolve_full_direct(x, h));
    });
    const double fft_ns = time_ns([&] {
      benchmark::DoNotOptimize(dsp::filter_zero_phase(h, x));
    });
    json.metric("zero_phase_129tap_32k_direct_ns", direct_ns);
    json.metric("zero_phase_129tap_32k_fft_ns", fft_ns);
    json.metric("zero_phase_129tap_32k_speedup", direct_ns / fft_ns);
  }

  // Valid correlation of a 512-sample template against a 32k capture (the
  // FM0 preamble search shape).
  {
    const dsp::Signal x = dsp::tone(1.0e6, 30.0e3, 1 << 15, 1.0);
    const dsp::Signal h = dsp::tone(1.0e6, 30.0e3, 512, 1.0);
    const double direct_ns = time_ns([&] {
      const std::size_t out_len = x.size() - h.size() + 1;
      dsp::Signal out(out_len, 0.0);
      for (std::size_t k = 0; k < out_len; ++k) {
        dsp::Real acc = 0.0;
        for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
        out[k] = acc;
      }
      benchmark::DoNotOptimize(out);
    });
    const double fft_ns = time_ns([&] {
      benchmark::DoNotOptimize(dsp::correlate_valid_fft(x, h));
    });
    json.metric("correlate_512tmpl_32k_direct_ns", direct_ns);
    json.metric("correlate_512tmpl_32k_fft_ns", fft_ns);
    json.metric("correlate_512tmpl_32k_speedup", direct_ns / fft_ns);
  }

  // Waveform-level uplink through the cached-resonator channel.
  {
    channel::ChannelConfig cfg;
    cfg.distance = 0.5;
    const channel::ConcreteChannel ch(channel::structures::s3_common_wall(),
                                      cfg);
    const dsp::Signal x = dsp::tone(cfg.fs, 230.0e3, 1 << 16, 0.01);
    dsp::Rng rng(3);
    dsp::Signal y;
    json.metric("uplink_65536_ns", time_ns([&] {
                  ch.uplink(x, 230.0e3, rng, y);
                  benchmark::DoNotOptimize(y.data());
                }));
  }

  // End-to-end interrogation through the zero-copy stage pipeline: the
  // workspace stats hook counts heap allocations per uplink_once() trial
  // with pooling off (the allocate-per-checkout "before" behaviour) and on
  // (steady-state reuse), plus the interrogation rate in both modes.
  {
    core::SystemConfig cfg = core::default_system();
    cfg.channel.distance = 0.10;
    cfg.channel.noise_sigma = 1e-4;
    const core::SystemSnapshot snapshot =
        std::make_shared<const core::SystemConfig>(cfg);
    dsp::Rng prng(5);
    const phy::Bits payload = phy::random_bits(32, prng);
    core::WorkspacePool& pool = core::WorkspacePool::shared();

    std::uint64_t trial = 0;
    const auto one_trial = [&] {
      core::LinkSimulator sim(snapshot, dsp::trial_seed(cfg.seed, trial++));
      benchmark::DoNotOptimize(sim.uplink_once(payload));
    };
    const auto allocs_per_trial = [&] {
      // Average the stats over a few trials AFTER a warm-up trial has
      // populated the pool (steady state is what the harnesses run in).
      constexpr std::size_t kTrials = 5;
      one_trial();
      pool.reset_stats();
      for (std::size_t i = 0; i < kTrials; ++i) one_trial();
      const dsp::Workspace::Stats s = pool.total_stats();
      return static_cast<double>(s.heap_allocations) /
             static_cast<double>(kTrials);
    };

    pool.set_pooling(false);
    pool.clear();
    const double allocs_before = allocs_per_trial();
    const double before_ns = time_ns(one_trial, 0.2);

    pool.set_pooling(true);
    pool.clear();
    const double allocs_after = allocs_per_trial();
    const double after_ns = time_ns(one_trial, 0.2);

    json.metric("e2e_interrogate_allocs_per_trial_unpooled", allocs_before);
    json.metric("e2e_interrogate_allocs_per_trial_pooled", allocs_after);
    json.metric("e2e_interrogate_alloc_reduction",
                allocs_before / std::max(allocs_after, 1.0));
    json.metric("e2e_interrogate_unpooled_per_sec", 1e9 / before_ns);
    json.metric("e2e_interrogate_pooled_per_sec", 1e9 / after_ns);
    json.metric("e2e_interrogate_speedup", before_ns / after_ns);
  }

  // FDTD stepping, 256x256, serial vs a 4-worker pool. On a single
  // hardware core the threaded number degrades to ~1x — the JSON records
  // whatever this host can actually deliver.
  {
    const auto fdtd_ns = [](unsigned workers) {
      core::ThreadPool pool(workers);
      wave::ElasticFdtd::Config cfg;
      cfg.nx = 256;
      cfg.ny = 256;
      cfg.pool = &pool;
      wave::ElasticFdtd sim(wave::materials::reference_concrete(), cfg);
      sim.add_force(128, 128, 1, 1.0);
      return time_ns([&] { sim.step(); });
    };
    const double t1 = fdtd_ns(1);
    const double t4 = fdtd_ns(4);
    json.metric("fdtd_256_step_1t_ns", t1);
    json.metric("fdtd_256_step_4t_ns", t4);
    json.metric("fdtd_256_step_speedup_4t", t1 / t4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ecocap::bench::BenchJson json("micro_dsp");
  record_roofline_metrics(json);
  record_headline_metrics(json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  json.write();
  return 0;
}
