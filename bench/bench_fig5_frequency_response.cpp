// Fig. 5 — concrete frequency response: received amplitude (mV) for a
// 100 V drive, swept 20-400 kHz in 10 kHz steps, for the paper's four
// blocks (7 cm NC, 15 cm NC, 15 cm UHPC, 15 cm UHPFRC).

#include <cstdio>
#include <vector>

#include "wave/frequency_response.hpp"

using namespace ecocap;

int main() {
  struct Block {
    const char* name;
    wave::ConcreteFrequencyResponse fr;
  };
  std::vector<Block> blocks;
  blocks.push_back({"NC-7cm",
                    wave::ConcreteFrequencyResponse(
                        wave::materials::normal_concrete(), 0.07)});
  blocks.push_back({"NC-15cm",
                    wave::ConcreteFrequencyResponse(
                        wave::materials::normal_concrete(), 0.15)});
  blocks.push_back({"UHPC-15cm",
                    wave::ConcreteFrequencyResponse(wave::materials::uhpc(),
                                                    0.15)});
  blocks.push_back({"UHPFRC-15cm",
                    wave::ConcreteFrequencyResponse(wave::materials::uhpfrc(),
                                                    0.15)});

  std::printf("# Fig. 5(b) — RX amplitude (mV) vs TX frequency, 100 V drive\n");
  std::printf("freq_khz");
  for (const auto& b : blocks) std::printf(",%s", b.name);
  std::printf("\n");
  for (int f_khz = 20; f_khz <= 400; f_khz += 10) {
    std::printf("%d", f_khz);
    for (const auto& b : blocks) {
      std::printf(",%.0f", b.fr.amplitude_mv(1000.0 * f_khz));
    }
    std::printf("\n");
  }
  std::printf("# resonant frequencies (kHz):");
  for (const auto& b : blocks) {
    std::printf(" %s=%.0f", b.name, b.fr.resonant_frequency() / 1000.0);
  }
  std::printf("\n# paper shape: all peak in 200-250 kHz; UHPC/UHPFRC >> NC\n");
  return 0;
}
