// Fig. 14 — cold-start time vs activation (PZT) voltage, from the Dickson
// multiplier + storage-cap model. Cross-checked against the streaming
// charge simulation.

#include <cstdio>

#include "node/harvester.hpp"

using namespace ecocap;

int main() {
  const node::Harvester h;
  std::printf("# Fig. 14 — cold-start time (ms) vs activation voltage (V)\n");
  std::printf("# minimum activation voltage: %.2f V (paper: 0.5 V)\n",
              h.minimum_activation_voltage());
  std::printf("voltage_v,analytic_ms,simulated_ms\n");
  for (double v = 0.5; v <= 5.01; v += 0.25) {
    const auto t = h.cold_start_time(v);
    if (!t) {
      std::printf("%.2f,,\n", v);
      continue;
    }
    // Streaming cross-check.
    node::Harvester sim;
    double elapsed = 0.0;
    while (!sim.mcu_powered() && elapsed < 0.5) {
      sim.step(2e-5, v);
      elapsed += 2e-5;
    }
    std::printf("%.2f,%.2f,%.2f\n", v, *t * 1e3, elapsed * 1e3);
  }
  std::printf("# paper: ~55 ms at 0.5 V, dropping to ~4.4 ms at >= 2 V\n");
  return 0;
}
