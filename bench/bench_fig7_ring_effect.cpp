// Fig. 7 — the PZT ring effect: a PIE bit-0 transmitted with plain OOK
// keeps ringing into the low-voltage edge; the FSK/off-resonance trick
// lets the concrete suppress the tail. Prints the envelope of both
// schemes over one symbol.

#include <cstdio>

#include "dsp/envelope.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/carrier.hpp"
#include "phy/pie.hpp"
#include "phy/ring_effect.hpp"
#include "dsp/biquad.hpp"

using namespace ecocap;
using dsp::Real;
using dsp::Signal;

namespace {

Signal through_chain(const Signal& baseband, phy::DownlinkScheme scheme,
                     Real fs) {
  phy::CarrierParams cp;
  cp.fs = fs;
  const Signal modulated = phy::modulate_downlink(baseband, cp, scheme);
  phy::RingingPzt pzt(fs, 230.0e3, 217.0);
  Signal acoustic = pzt.drive(modulated);
  // Concrete band resonance suppresses the off-resonant FSK edge.
  dsp::Biquad concrete = dsp::Biquad::bandpass(fs, 230.0e3, 10.0);
  const Real g0 = concrete.magnitude_at(fs, 230.0e3);
  Signal out = concrete.process(acoustic);
  for (Real& v : out) v /= g0;
  dsp::EnvelopeDetector env(fs, 20.0e3);
  return env.process(out);
}

}  // namespace

int main() {
  const Real fs = 2.0e6;
  // One PIE bit-0: 0.5 ms high, 0.5 ms low, padded.
  Signal baseband;
  auto pad = [&](std::size_t n, Real level) {
    baseband.insert(baseband.end(), n, level);
  };
  pad(200, 1.0);   // 0.1 ms lead-in
  pad(1000, 1.0);  // high edge 0.5 ms
  pad(1000, 0.0);  // low edge 0.5 ms
  pad(400, 1.0);   // next symbol starts

  const Signal ook = through_chain(baseband, phy::DownlinkScheme::kOok, fs);
  const Signal fsk =
      through_chain(baseband, phy::DownlinkScheme::kFskOffResonance, fs);

  std::printf("# Fig. 7 — bit-0 envelope: OOK tailing vs FSK suppression\n");
  std::printf("time_ms,ideal,ook_envelope,fsk_envelope\n");
  for (std::size_t i = 0; i < baseband.size(); i += 20) {
    std::printf("%.3f,%.0f,%.4f,%.4f\n", static_cast<double>(i) / fs * 1e3,
                baseband[i], ook[i], fsk[i]);
  }

  // Quantify the tail: residual envelope 0.15-0.35 ms into the low edge.
  const std::size_t low_start = 1200;
  auto tail_level = [&](const Signal& env) {
    Real acc = 0.0;
    int n = 0;
    for (std::size_t i = low_start + 300; i < low_start + 700; ++i) {
      acc += env[i];
      ++n;
    }
    return acc / n;
  };
  const Real high_ref = ook[1000];
  std::printf("# OOK tail (fraction of high edge): %.2f\n",
              tail_level(ook) / high_ref);
  std::printf("# FSK tail (fraction of high edge): %.2f\n",
              tail_level(fsk) / high_ref);
  std::printf("# paper: OOK tail consumes ~0.3 ms; FSK suppressed\n");
  return 0;
}
