// City-scale fleet bench — the headline throughput numbers for the sharded
// fleet engine and its concurrent telemetry serving layer:
//
//   * node-reads/sec ingested: N structures' campaigns run across the
//     ThreadPool shards, every step appending one reading per section into
//     the fleet::TelemetryStore, at 1 worker and at hw-threads workers
//     (ingest_scaling is the headline ratio);
//   * queries/sec served: dashboard-style query threads (latest-health
//     polls, minute-tier range scans, fleet-wide percentile rollups)
//     hammer the store concurrently *while* the hw-thread ingest runs.
//
// The 1-thread and hw-thread fleets must produce byte-identical aggregate
// fingerprints (aggregates_match metric) — the determinism contract the
// test suite enforces at 1/2/8 workers. Emits BENCH_fleet.json, gated in
// CI by tools/perf_gate.py.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/thread_pool.hpp"
#include "fleet/fleet_engine.hpp"
#include "fleet/telemetry_store.hpp"

using namespace ecocap;

namespace {

constexpr std::uint64_t kSeed = 0xf1ee7;

std::size_t env_or(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

fleet::FleetEngine::Config fleet_config(std::size_t structures,
                                        fleet::TelemetryStore* store) {
  fleet::FleetEngine::Config cfg;
  cfg.structures = structures;
  cfg.seed = kSeed;
  cfg.telemetry = store;
  // One simulated day at 5-minute cadence per structure, with two
  // protocol-stack capsule polls (2 capsules each) riding along so the
  // ingest numbers carry real per-structure PHY work, not just the bridge
  // model.
  cfg.campaign.days = 1.0;
  cfg.campaign.step_minutes = 5.0;
  cfg.campaign.capsule_count = 2;
  cfg.campaign.capsule_poll_hours = 12.0;
  cfg.campaign.retry.enabled = true;
  return cfg;
}

fleet::TelemetryStore::Config store_config(std::size_t structures) {
  fleet::TelemetryStore::Config cfg;
  cfg.nodes = structures * fleet::FleetEngine::kNodesPerStructure;
  cfg.raw_capacity = 512;
  cfg.minute_capacity = 512;
  cfg.hour_capacity = 64;
  return cfg;
}

struct IngestRun {
  double wall_seconds = 0.0;
  std::uint64_t readings = 0;
  std::string fingerprint;
  double reads_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(readings) / wall_seconds
               : 0.0;
  }
};

IngestRun run_fleet(std::size_t structures, unsigned workers,
                    fleet::TelemetryStore* store) {
  core::ThreadPool pool(workers);
  fleet::FleetEngine engine(fleet_config(structures, store), pool);
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result = engine.run();
  IngestRun run;
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.readings = result.totals.readings;
  run.fingerprint = result.fingerprint();
  return run;
}

/// Dashboard-style query mix: mostly latest-health polls, a slice of
/// minute-tier range scans, an occasional fleet-wide percentile rollup.
void query_worker(const fleet::TelemetryStore& store,
                  const std::atomic<bool>& stop, std::uint64_t seed,
                  std::atomic<std::uint64_t>& served) {
  dsp::Rng rng(seed);
  std::vector<fleet::TelemetryStore::Reading> window;
  window.reserve(1024);
  std::vector<float> scratch;
  scratch.reserve(store.nodes());
  std::uint64_t local = 0;
  while (!stop.load(std::memory_order_acquire)) {
    for (int i = 0; i < 16; ++i) {
      (void)store.latest(rng.index(store.nodes()));
      ++local;
    }
    window.clear();
    store.range(rng.index(store.nodes()),
                fleet::TelemetryStore::Tier::kMinute, 0, 0xfffffffeu, window);
    ++local;
    store.fleet_percentiles(scratch);
    ++local;
    // Publish in chunks so the counter costs nothing on the hot loop.
    if (local >= 1024) {
      served.fetch_add(local, std::memory_order_relaxed);
      local = 0;
    }
  }
  served.fetch_add(local, std::memory_order_relaxed);
}

}  // namespace

int main() {
  bench::BenchJson out("fleet");
  const std::size_t structures = env_or("ECOCAP_FLEET_STRUCTURES", 512);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned query_threads = std::min(4u, std::max(1u, hw / 2));
  const std::size_t nodes =
      structures * fleet::FleetEngine::kNodesPerStructure;

  std::printf("# Fleet bench — %zu structures, %zu telemetry nodes, "
              "%u hw threads\n",
              structures, nodes, hw);
  std::printf("phase,workers,wall_s,node_reads,reads_per_sec\n");

  // Phase 1: ingest at 1 worker (the scaling baseline).
  auto store1 = std::make_unique<fleet::TelemetryStore>(
      store_config(structures));
  const IngestRun one = run_fleet(structures, 1, store1.get());
  std::printf("ingest,1,%.3f,%llu,%.0f\n", one.wall_seconds,
              static_cast<unsigned long long>(one.readings),
              one.reads_per_sec());

  // Phase 2: ingest at hw threads.
  auto store_n = std::make_unique<fleet::TelemetryStore>(
      store_config(structures));
  const IngestRun many = run_fleet(structures, hw, store_n.get());
  std::printf("ingest,%u,%.3f,%llu,%.0f\n", hw, many.wall_seconds,
              static_cast<unsigned long long>(many.readings),
              many.reads_per_sec());

  const bool match = one.fingerprint == many.fingerprint &&
                     store1->total_appends() == one.readings &&
                     store_n->total_appends() == many.readings;
  if (!match) {
    std::fprintf(stderr,
                 "# FLEET DETERMINISM VIOLATION: 1-thread and %u-thread "
                 "aggregates differ\n",
                 hw);
  }

  // Phase 3: hw-thread ingest with concurrent dashboard queries against
  // the store the previous phase already warmed (so latest/range hits are
  // realistic from the first poll).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> queriers;
  for (unsigned q = 0; q < query_threads; ++q) {
    queriers.emplace_back(query_worker, std::cref(*store_n), std::cref(stop),
                          kSeed ^ (0x9e37 + q), std::ref(served));
  }
  const IngestRun under_load = run_fleet(structures, hw, store_n.get());
  stop.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();
  const double queries_per_sec =
      under_load.wall_seconds > 0.0
          ? static_cast<double>(served.load()) / under_load.wall_seconds
          : 0.0;
  std::printf("ingest+query,%u,%.3f,%llu,%.0f\n", hw,
              under_load.wall_seconds,
              static_cast<unsigned long long>(under_load.readings),
              under_load.reads_per_sec());
  std::printf("# %llu queries served by %u threads during ingest "
              "(%.0f queries/sec)\n",
              static_cast<unsigned long long>(served.load()), query_threads,
              queries_per_sec);

  const double scaling =
      one.reads_per_sec() > 0.0 ? many.reads_per_sec() / one.reads_per_sec()
                                : 0.0;
  out.set_trials(structures * 2 + structures);
  out.metric("fleet_structures", static_cast<double>(structures));
  out.metric("fleet_nodes", static_cast<double>(nodes));
  out.metric("hw_threads", static_cast<double>(hw));
  out.metric("query_threads", static_cast<double>(query_threads));
  out.metric("ingest_reads_per_sec_1t", one.reads_per_sec());
  out.metric("ingest_reads_per_sec_mt", many.reads_per_sec());
  out.metric("ingest_scaling", scaling);
  out.metric("ingest_reads_per_sec_under_query", under_load.reads_per_sec());
  out.metric("queries_per_sec_concurrent", queries_per_sec);
  out.metric("aggregates_match", match ? 1.0 : 0.0);
  out.series("workers", {1.0, static_cast<double>(hw)});
  out.series("reads_per_sec", {one.reads_per_sec(), many.reads_per_sec()});
  out.write();
  return match ? 0 : 1;
}
