// Fig. 24 (Appendix C) — uplink spectrum at the reader: the strong CBW
// self-interference peak at the carrier plus the two backscatter AM
// sidebands at +- BLF with a clean guard band.

#include <cstdio>

#include "dsp/fft.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/bits.hpp"
#include "phy/carrier.hpp"
#include "phy/fm0.hpp"

using namespace ecocap;
using dsp::Real;
using dsp::Signal;

int main() {
  const Real fs = 2.0e6;
  const Real blf = 8000.0;
  dsp::Rng rng(5);

  // Node: FM0 frame at 1 kbps on a BLF subcarrier.
  phy::Fm0Params line;
  line.bitrate = 1000.0;
  const phy::Bits payload = phy::random_bits(48, rng);
  const Signal switching = phy::fm0_encode_frame(payload, line, fs);
  dsp::Oscillator carrier(fs, 230.0e3);
  const Signal incident = carrier.generate(switching.size());
  phy::BackscatterParams bp;
  bp.f_blf = blf;
  Signal rx = phy::backscatter_modulate(incident, switching, fs, bp);

  // Reader-side: add the 10x CBW leakage and noise.
  dsp::Oscillator cw(fs, 230.0e3);
  cw.reset_phase(0.7);
  const Real bs_rms = dsp::rms(rx);
  for (auto& v : rx) v += cw.next(10.0 * bs_rms * 1.41421356);
  dsp::add_awgn(rx, 1e-3, rng);

  // Spectrum 200-260 kHz.
  const std::size_t n = dsp::next_pow2(rx.size());
  const Signal mag = dsp::magnitude_spectrum(rx, n);
  std::printf("# Fig. 24 — uplink spectrum (log power) around the carrier\n");
  std::printf("freq_khz,log10_power\n");
  for (Real f = 210.0e3; f <= 250.0e3; f += 500.0) {
    const Real p = dsp::band_power(rx, fs, f - 250.0, f + 250.0);
    std::printf("%.1f,%.2f\n", f / 1000.0, std::log10(p + 1e-20));
  }

  const Real p_cw = dsp::band_power(rx, fs, 229.6e3, 230.4e3);
  const Real p_lo = dsp::band_power(rx, fs, 230.0e3 - blf - 1500.0,
                                    230.0e3 - blf + 1500.0);
  const Real p_hi = dsp::band_power(rx, fs, 230.0e3 + blf - 1500.0,
                                    230.0e3 + blf + 1500.0);
  const Real p_guard = dsp::band_power(rx, fs, 233.0e3, 236.0e3);
  std::printf("# carrier peak power: %.3g\n", p_cw);
  std::printf("# lower/upper sidebands: %.3g / %.3g\n", p_lo, p_hi);
  std::printf("# guard band: %.3g (%.0f dB below sidebands)\n", p_guard,
              10.0 * std::log10((p_lo + p_hi) / 2.0 / (p_guard + 1e-30)));
  std::printf("# paper: three peaks (CBW + two sidebands), guard band\n");
  std::printf("#   separates the self-interference from the data\n");
  return 0;
}
