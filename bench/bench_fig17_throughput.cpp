// Fig. 17 — best uplink throughput per concrete type (NC / UHPC / UHPFRC,
// 15 cm blocks): goodput-optimal bitrate under the bandwidth-limited SNR
// model with a 64-bit packet criterion.

#include <cstdio>

#include "channel/snr_models.hpp"
#include "wave/material.hpp"

using namespace ecocap;

int main() {
  std::printf("# Fig. 17 — throughput (kbps) by concrete type\n");
  std::printf("concrete,throughput_kbps,best_bitrate_kbps,snr0_db\n");
  for (const auto& m : wave::materials::table1_concretes()) {
    const auto model = channel::UplinkSnrModel::ecocapsule(m);
    const auto best = channel::max_throughput(model);
    std::printf("%s,%.1f,%.1f,%.1f\n", m.name.c_str(),
                best.throughput / 1000.0, best.best_bitrate / 1000.0,
                model.snr0_db);
  }
  std::printf("# paper: all >= 13 kbps; UHPC/UHPFRC ~2 kbps above NC\n");
  return 0;
}
