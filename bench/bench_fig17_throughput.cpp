// Fig. 17 — best uplink throughput per concrete type (NC / UHPC / UHPFRC,
// 15 cm blocks): goodput-optimal bitrate under the bandwidth-limited SNR
// model with a 64-bit packet criterion. Emits BENCH_fig17_throughput.json.

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "channel/snr_models.hpp"
#include "wave/material.hpp"

using namespace ecocap;

int main() {
  bench::BenchJson out("fig17_throughput");
  std::vector<double> throughputs, bitrates;
  std::size_t evaluations = 0;

  std::printf("# Fig. 17 — throughput (kbps) by concrete type\n");
  std::printf("concrete,throughput_kbps,best_bitrate_kbps,snr0_db\n");
  for (const auto& m : wave::materials::table1_concretes()) {
    const auto model = channel::UplinkSnrModel::ecocapsule(m);
    const auto best = channel::max_throughput(model);
    std::printf("%s,%.1f,%.1f,%.1f\n", m.name.c_str(),
                best.throughput / 1000.0, best.best_bitrate / 1000.0,
                model.snr0_db);
    out.metric("throughput_kbps_" + m.name, best.throughput / 1000.0);
    out.metric("best_bitrate_kbps_" + m.name, best.best_bitrate / 1000.0);
    throughputs.push_back(best.throughput / 1000.0);
    bitrates.push_back(best.best_bitrate / 1000.0);
    ++evaluations;
  }
  std::printf("# paper: all >= 13 kbps; UHPC/UHPFRC ~2 kbps above NC\n");

  out.set_trials(evaluations);
  out.series("throughput_kbps", throughputs);
  out.series("best_bitrate_kbps", bitrates);
  out.write();
  return 0;
}
