// §4.1 Helmholtz resonator array — Eq. 5 evaluation, the geometry solver
// for a 230 kHz target, the array gain profile, and the link-budget
// ablation (HRA on vs off).

#include <cstdio>

#include "channel/link_budget.hpp"
#include "channel/structures.hpp"
#include "wave/helmholtz.hpp"

using namespace ecocap;

int main() {
  const double cs = 1941.0;
  const auto paper = wave::HelmholtzResonator::paper_prototype();
  std::printf("# §4.1 — Helmholtz resonator (Eq. 5)\n");
  std::printf("paper_geometry_fr_khz,%.1f\n",
              paper.resonant_frequency(cs) / 1e3);
  std::printf("# Eq. 5 with A_n=0.78mm^2, V_c=2.76mm^3, H_n=0.8mm: ~159 kHz\n");

  const double an230 = wave::HelmholtzResonator::solve_neck_area(
      230.0e3, cs, paper.cavity_volume, paper.neck_length);
  std::printf("neck_area_for_230khz_mm2,%.2f\n", an230 * 1e6);

  wave::HelmholtzResonator tuned = paper;
  tuned.neck_area = an230;
  const wave::HelmholtzArray array(tuned, 7, 0.05);
  std::printf("\nfreq_khz,single_cell_gain,array_gain\n");
  for (int f = 150; f <= 310; f += 10) {
    std::printf("%d,%.2f,%.2f\n", f, tuned.gain(f * 1000.0, cs),
                array.gain(f * 1000.0, cs));
  }

  std::printf("\n# ablation: power-up range with and without the HRA\n");
  std::printf("structure,voltage_v,range_no_hra_cm,range_hra_cm\n");
  for (double v : {100.0, 200.0}) {
    const auto s = channel::structures::s3_common_wall();
    const channel::LinkBudget without(s, 0.5, 1.0);
    const channel::LinkBudget with(s, 0.5, 2.0);
    std::printf("%s,%.0f,%.0f,%.0f\n", s.name.c_str(), v,
                without.max_powerup_range(v).value_or(0.0) * 100.0,
                with.max_powerup_range(v).value_or(0.0) * 100.0);
  }
  std::printf("# the HRA's receive gain buys ~2 m of extra range on S3\n");
  return 0;
}
