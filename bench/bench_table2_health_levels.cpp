// Table 2 (Appendix D) — health level vs pedestrian area occupancy for the
// four regional standards, plus grading spot checks.

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "shm/health.hpp"

using namespace ecocap;

int main() {
  bench::BenchJson out("table2_health_levels");
  std::size_t checks = 0;
  const shm::Region regions[] = {
      shm::Region::kUnitedStates, shm::Region::kHongKong,
      shm::Region::kBangkok, shm::Region::kManila};

  std::printf("# Table 2 — PAO thresholds (m^2/ped) per health level\n");
  std::printf("region,A_above,B_above,C_above,D_above,E_above\n");
  for (const auto r : regions) {
    const auto t = shm::pao_thresholds(r);
    std::printf("%s,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                shm::region_name(r).c_str(), t[0], t[1], t[2], t[3], t[4]);
  }

  std::printf("\n# grading sweep (Hong Kong standard)\n");
  std::printf("pao_m2_per_ped,grade\n");
  std::vector<double> paos, grades;
  for (double pao : {4.0, 3.0, 2.0, 1.2, 0.7, 0.4}) {
    const auto grade = shm::grade_pao(pao, shm::Region::kHongKong);
    std::printf("%.1f,%c\n", pao, shm::health_letter(grade));
    paos.push_back(pao);
    grades.push_back(static_cast<double>(grade));
    ++checks;
  }
  std::printf("# paper: H > 2 healthy; H <= 1 overload/collapse risk\n");
  out.set_trials(checks);
  out.series("pao_m2_per_ped", paos);
  out.series("grade_index", grades);
  out.write();
  return 0;
}
