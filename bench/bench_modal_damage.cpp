// Extension bench — modal damage detection: the SHM motivation behind the
// paper (Champlain Towers: slow stiffness loss before collapse). Sweep the
// stiffness-loss fraction and report the modal-frequency shift the
// acceleration records reveal, plus whether the alarm trips.

#include <cmath>
#include <cstdio>

#include "shm/modal.hpp"

using namespace ecocap;

int main() {
  const double fs = 100.0;       // accelerometer rate
  const double f0 = 2.10;        // footbridge fundamental (Hz)
  const double zeta = 0.02;
  const auto baseline = shm::synthesize_vibration(f0, zeta, fs, 900.0, 11);

  std::printf("# Modal damage detection: stiffness loss -> frequency shift\n");
  std::printf(
      "stiffness_loss_pct,true_f_hz,estimated_f_hz,measured_shift_pct,"
      "alarm\n");
  for (double loss_pct : {0.0, 1.0, 2.0, 4.0, 8.0, 15.0, 25.0}) {
    // f ~ sqrt(k): a stiffness loss of x scales f by sqrt(1 - x).
    const double f_damaged = f0 * std::sqrt(1.0 - loss_pct / 100.0);
    const auto current = shm::synthesize_vibration(
        f_damaged, zeta, fs, 900.0, 17 + static_cast<std::uint64_t>(loss_pct));
    const auto d = shm::assess_damage(baseline, current, fs, 0.5, 10.0);
    std::printf("%.0f,%.3f,%.3f,%.2f,%s\n", loss_pct, f_damaged, d.current_hz,
                100.0 * d.frequency_shift, d.damaged ? "YES" : "no");
  }
  std::printf("# a 4%% stiffness loss (~2%% frequency drop) already trips\n");
  std::printf("#   the default alarm — months before structural failure\n");
  return 0;
}
