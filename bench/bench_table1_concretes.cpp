// Table 1 (Appendix B) — mix proportions and properties of the tested
// concretes, plus the acoustic quantities the library derives from them.

#include <cstdio>

#include "wave/attenuation.hpp"
#include "wave/material.hpp"

using namespace ecocap;

int main() {
  const auto concretes = wave::materials::table1_concretes();
  std::printf("# Table 1 — mix proportions (kg/m^3) and properties\n");
  std::printf(
      "name,cement,silica_fume,fly_ash,quartz,sand,granite,steel_fiber,"
      "water,hrwr,density,fco_mpa,ec_gpa,poisson,strain_pct\n");
  for (const auto& m : concretes) {
    std::printf("%s,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.1f,"
                "%.1f,%.2f,%.3f\n",
                m.name.c_str(), m.mix.cement, m.mix.silica_fume,
                m.mix.fly_ash, m.mix.quartz_powder, m.mix.sand, m.mix.granite,
                m.mix.steel_fiber, m.mix.water, m.mix.hrwr, m.density,
                m.compressive_strength / 1e6, m.youngs_modulus / 1e9,
                m.poisson_ratio, m.peak_strain * 100.0);
  }
  std::printf("\n# derived acoustic quantities at 230 kHz\n");
  std::printf("name,cp_mps,cs_mps,z_p_mrayl,alpha_s_np_per_m\n");
  for (const auto& m : concretes) {
    std::printf("%s,%.0f,%.0f,%.2f,%.2f\n", m.name.c_str(), m.cp, m.cs,
                m.impedance(wave::WaveMode::kPrimary) / 1e6,
                wave::attenuation_coefficient(m, wave::WaveMode::kSecondary,
                                              230.0e3));
  }
  return 0;
}
