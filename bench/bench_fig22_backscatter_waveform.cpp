// Fig. 22 — received and demodulated backscatter signal: a full waveform
// round trip through the concrete channel; prints the demodulated baseband
// (CBW lead-in, then the alternating backscatter square wave) and verifies
// the frame decodes.

#include <cmath>
#include <cstdio>

#include "core/link_simulator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/carrier.hpp"
#include "phy/fm0.hpp"
#include "reader/receiver.hpp"

using namespace ecocap;
using dsp::Real;
using dsp::Signal;

int main() {
  core::SystemConfig cfg = core::default_system();
  cfg.channel.distance = 0.15;
  cfg.channel.noise_sigma = 1e-4;
  cfg.capsule.firmware.uplink.bitrate = 1000.0;  // 0.5 ms half-symbols
  core::LinkSimulator sim(cfg);

  dsp::Rng rng(3);
  const phy::Bits payload = phy::random_bits(16, rng);
  const auto result = sim.uplink_once(payload);

  std::printf("# Fig. 22 — backscatter round trip at 1 kbps\n");
  std::printf("node_powered,%d\n", result.node_powered ? 1 : 0);
  std::printf("uplink_decoded,%d\n", result.uplink_decoded ? 1 : 0);
  std::printf("payload_match,%d\n",
              (result.uplink_payload == payload) ? 1 : 0);
  // NaN-until-valid: an undecoded round carries no SNR measurement.
  if (std::isnan(result.uplink_snr_db)) {
    std::printf("uplink_snr_db,invalid\n");
  } else {
    std::printf("uplink_snr_db,%.1f\n", result.uplink_snr_db);
  }
  std::printf("carrier_estimate_hz,%.0f\n", result.carrier_estimate);

  // Reproduce the figure itself: synthesize the same uplink (4 ms of bare
  // CBW, then the backscatter square wave) and print the receiver's
  // demodulated envelope, decimated to one point per 0.1 ms.
  const Real fs = cfg.channel.fs;
  phy::Fm0Params line;
  line.bitrate = 1000.0;
  const Signal switching =
      phy::fm0_encode_frame(phy::Bits{1, 0, 1, 0, 1, 1, 0, 0}, line, fs);
  const auto lead = static_cast<std::size_t>(0.004 * fs);  // 4 ms of CBW
  dsp::Oscillator osc(fs, 230.0e3);
  const Signal carrier = osc.generate(lead + switching.size() + 4000);
  Signal padded(lead, 1.0);  // reflective idle... switch closed: absorptive
  for (auto& v : padded) v = -1.0;
  padded.insert(padded.end(), switching.begin(), switching.end());
  phy::BackscatterParams bp;
  bp.f_blf = 0.0;  // the §3.4 experiment toggles the switch directly
  Signal rx = phy::backscatter_modulate(carrier, padded, fs, bp);
  dsp::add_awgn(rx, 2e-3, rng);

  dsp::EnvelopeDetector env(fs, 10.0e3);
  const Signal e = env.process(rx);
  std::printf("\n# demodulated envelope (V-normalized), dt = 0.1 ms\n");
  std::printf("time_ms,envelope\n");
  const auto step = static_cast<std::size_t>(1e-4 * fs);
  for (std::size_t i = 0; i < e.size(); i += step) {
    std::printf("%.1f,%.3f\n", static_cast<double>(i) / fs * 1e3, e[i]);
  }
  std::printf("# paper: CBW lead-in, then the 0.5 ms two-level square wave\n");
  std::printf("#   from the impedance switch; the reader decodes it\n");
  return 0;
}
