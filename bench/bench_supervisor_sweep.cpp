// Supervisor sweep — fixed-rate vs adaptively supervised polling campaigns
// across fault intensities. Five capsules sit at staggered depths in a
// common wall, so the deeper ones are SNR-starved at the fast rung-0
// bitrate; the link supervisor walks them down the Fig. 16 fallback ladder
// (slower bitrate -> more decision SNR), quarantines hopeless links, and
// enforces the per-round slot deadline. Every point is a TrialRunner
// Monte-Carlo with integer accumulators, so the aggregates are
// bit-identical at any ECOCAP_THREADS. Emits BENCH_supervisor_sweep.json.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "channel/snr_models.hpp"
#include "core/inventory_session.hpp"
#include "core/trial_runner.hpp"
#include "fault/fault.hpp"
#include "wave/material.hpp"

using namespace ecocap;

namespace {

constexpr std::uint64_t kSeed = 0x5afe;
constexpr std::size_t kTrials = 96;
constexpr int kNodes = 5;
constexpr int kPolls = 40;

/// Integer-only accumulator: merging integers is associative, so the sweep
/// is trivially bit-identical across thread counts.
struct Acc {
  long delivered = 0;        // node-polls whose readings arrived fresh
  long expected = 0;         // node-polls attempted (quarantine skips count)
  long staleness_polls = 0;  // sum over node-polls of reading age in polls
  long quarantines = 0;
  long fallbacks = 0;
  long skipped_polls = 0;
  long deadline_trips = 0;
  long slots = 0;  // arbitration + backoff slots burned
};

core::InventorySession::Config session_config(const fault::FaultPlan& plan,
                                              bool supervised,
                                              std::uint64_t seed) {
  core::InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.tx_voltage = 200.0;
  // Rung-0 operation at 16 kb/s: the nearest capsule is marginal, the deep
  // ones are starved until the ladder buys their SNR back.
  cfg.snr_at_contact_db = 8.0;
  cfg.uplink.bitrate = 16000.0;
  cfg.inventory.q = 3;
  cfg.inventory.retry.enabled = true;
  cfg.fault = plan;
  cfg.seed = seed;
  if (supervised) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.ladder = reader::SupervisorConfig::fig16_ladder(
        channel::UplinkSnrModel::ecocapsule(wave::materials::normal_concrete()),
        {16000.0, 8000.0, 4000.0, 2000.0});
    cfg.supervisor.ewma_alpha = 0.6;
    cfg.supervisor.degrade_below = 0.55;
    cfg.supervisor.probe_after = 16;
    cfg.supervisor.round_slot_budget = 96;
  }
  return cfg;
}

Acc sweep_point(const fault::FaultPlan& plan, bool supervised) {
  const core::TrialRunner runner(core::ThreadPool::shared());
  return runner.run<Acc>(
      kTrials, kSeed,
      [&](std::size_t t, dsp::Rng&, Acc& acc) {
        core::InventorySession session(
            session_config(plan, supervised, dsp::trial_seed(kSeed, t)));
        for (int i = 0; i < kNodes; ++i) {
          core::DeployedNode n;
          n.node_id = static_cast<std::uint16_t>(0x300 + i);
          n.distance = 0.5 + 0.5 * static_cast<double>(i);
          session.deploy(n);
        }
        const std::vector<std::uint8_t> sensors{
            static_cast<std::uint8_t>(node::SensorId::kStress)};
        std::vector<int> last_delivered(kNodes, -1);
        for (int p = 0; p < kPolls; ++p) {
          const reader::InventoryResult r = session.collect(sensors);
          acc.slots += r.stats.slots + r.stats.backoff_slots;
          acc.deadline_trips += r.stats.deadline_trips;
          for (int i = 0; i < kNodes; ++i) {
            const auto id = static_cast<std::uint16_t>(0x300 + i);
            const bool fresh =
                std::find(r.inventoried_ids.begin(), r.inventoried_ids.end(),
                          id) != r.inventoried_ids.end();
            ++acc.expected;
            if (fresh) {
              ++acc.delivered;
              last_delivered[static_cast<std::size_t>(i)] = p;
            }
            // Reading age in polls: 0 when fresh; p+1 when never delivered.
            acc.staleness_polls +=
                p - last_delivered[static_cast<std::size_t>(i)];
          }
        }
        if (const auto* sup = session.supervisor()) {
          const reader::SupervisorTotals totals = sup->totals();
          acc.quarantines += totals.quarantines;
          acc.fallbacks += totals.fallbacks;
          acc.skipped_polls += totals.skipped_polls;
        }
      },
      [](Acc& into, const Acc& from) {
        into.delivered += from.delivered;
        into.expected += from.expected;
        into.staleness_polls += from.staleness_polls;
        into.quarantines += from.quarantines;
        into.fallbacks += from.fallbacks;
        into.skipped_polls += from.skipped_polls;
        into.deadline_trips += from.deadline_trips;
        into.slots += from.slots;
      });
}

double ratio(long num, long den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

int main() {
  bench::BenchJson out("supervisor_sweep");
  const std::vector<double> intensities{0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<double> del_fixed, del_sup, stale_fixed, stale_sup, quar_sup,
      fall_sup, skip_sup, trips_sup;

  std::printf("# Supervisor sweep — %zu trials x %d nodes x %d polls/point\n",
              kTrials, kNodes, kPolls);
  std::printf(
      "intensity,mode,delivered_pct,mean_staleness_polls,quarantines,"
      "fallbacks,skipped_polls,deadline_trips\n");
  for (const double x : intensities) {
    const fault::FaultPlan plan = fault::FaultPlan::at_intensity(x);
    for (const bool supervised : {false, true}) {
      const Acc a = sweep_point(plan, supervised);
      const double delivered = 100.0 * ratio(a.delivered, a.expected);
      const double staleness = ratio(a.staleness_polls, a.expected);
      std::printf("%.2f,%s,%.2f,%.3f,%ld,%ld,%ld,%ld\n", x,
                  supervised ? "supervised" : "fixed", delivered, staleness,
                  a.quarantines, a.fallbacks, a.skipped_polls,
                  a.deadline_trips);
      (supervised ? del_sup : del_fixed).push_back(delivered);
      (supervised ? stale_sup : stale_fixed).push_back(staleness);
      if (supervised) {
        quar_sup.push_back(static_cast<double>(a.quarantines));
        fall_sup.push_back(static_cast<double>(a.fallbacks));
        skip_sup.push_back(static_cast<double>(a.skipped_polls));
        trips_sup.push_back(static_cast<double>(a.deadline_trips));
      }
    }
  }
  std::printf(
      "# the ladder recovers the depth-starved capsules a fixed 16 kb/s "
      "link loses; quarantine bounds the slot cost of hostile sites\n");

  out.set_trials(kTrials * intensities.size() * 2);
  out.series("intensity", intensities);
  out.series("delivered_pct_fixed", del_fixed);
  out.series("delivered_pct_supervised", del_sup);
  out.series("mean_staleness_fixed", stale_fixed);
  out.series("mean_staleness_supervised", stale_sup);
  out.series("quarantines_supervised", quar_sup);
  out.series("fallbacks_supervised", fall_sup);
  out.series("skipped_polls_supervised", skip_sup);
  out.series("deadline_trips_supervised", trips_sup);
  out.metric("clean_site_recovery_gain_pct", del_sup[0] - del_fixed[0]);
  out.write();
  return 0;
}
