// Substrate validation — the 2-D elastodynamic FDTD solver against the
// analytic wave layer: measured P/S velocities per Table-1 concrete,
// free-surface energy retention, and the numerical Helmholtz (div/curl)
// mode split behind the Appendix-A equations.

#include <cmath>
#include <cstdio>
#include <vector>

#include "wave/fdtd.hpp"

using namespace ecocap;
using dsp::Real;

namespace {

std::vector<Real> ricker(Real f0, Real dt, std::size_t n) {
  std::vector<Real> w(n);
  const Real t0 = 1.5 / f0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = static_cast<Real>(i) * dt - t0;
    const Real a = 3.14159265358979 * f0 * t;
    w[i] = (1.0 - 2.0 * a * a) * std::exp(-a * a);
  }
  return w;
}

Real first_arrival(const std::vector<Real>& rec, Real dt, Real frac) {
  Real peak = 0.0;
  for (Real v : rec) peak = std::max(peak, v);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    if (rec[i] > frac * peak) return static_cast<Real>(i) * dt;
  }
  return -1.0;
}

struct Measured {
  Real cp;
  Real cs;
};

Measured measure_velocities(const wave::Material& m) {
  wave::ElasticFdtd::Config cfg;
  cfg.nx = 320;
  cfg.ny = 320;
  cfg.dx = 2.0e-3;
  wave::ElasticFdtd sim(m, cfg);
  const auto src = ricker(90.0e3, sim.dt(), 200);
  const std::size_t sx = 60, sy = 60;
  const std::size_t ry = 280, rx = 280;
  const Real dist_y = static_cast<Real>(ry - sy) * cfg.dx;
  const Real dist_x = static_cast<Real>(rx - sx) * cfg.dx;

  std::vector<Real> p_rec, s_rec;
  const auto steps =
      static_cast<std::size_t>(1.8 * dist_x / m.cs / sim.dt());
  for (std::size_t t = 0; t < steps; ++t) {
    if (t < src.size()) sim.add_force(sx, sy, 1, src[t]);
    sim.step();
    p_rec.push_back(sim.velocity_magnitude(sx, ry));  // along force: P
    s_rec.push_back(sim.velocity_magnitude(rx, sy));  // transverse: S
  }
  Measured out{};
  out.cp = dist_y / first_arrival(p_rec, sim.dt(), 0.2);
  out.cs = dist_x / first_arrival(s_rec, sim.dt(), 0.4);
  return out;
}

}  // namespace

int main() {
  std::printf("# FDTD substrate validation (Appendix A, Eqs. 6-10)\n");
  std::printf("concrete,analytic_cp,fdtd_cp,err_pct,analytic_cs,fdtd_cs,"
              "err_pct\n");
  for (const auto& m : wave::materials::table1_concretes()) {
    const Measured v = measure_velocities(m);
    std::printf("%s,%.0f,%.0f,%.1f,%.0f,%.0f,%.1f\n", m.name.c_str(), m.cp,
                v.cp, 100.0 * std::abs(v.cp - m.cp) / m.cp, m.cs, v.cs,
                100.0 * std::abs(v.cs - m.cs) / m.cs);
  }
  std::printf("# the staggered-grid solver recovers the body-wave speeds of\n");
  std::printf("#   every mix from the Lame parameters alone\n");
  return 0;
}
