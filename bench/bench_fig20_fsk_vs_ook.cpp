// Fig. 20 — downlink SNR vs bitrate: the FSK/off-resonance anti-ring
// scheme against plain OOK. Full waveform chain: PIE baseband -> carrier
// modulation -> ringing TX PZT -> concrete band resonance -> envelope
// detection; SNR is the fidelity of the demodulated baseband against the
// ideal PIE levels.

#include <cstdio>

#include "dsp/biquad.hpp"
#include "dsp/envelope.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/bits.hpp"
#include "phy/carrier.hpp"
#include "phy/pie.hpp"
#include "phy/ring_effect.hpp"

using namespace ecocap;
using dsp::Real;
using dsp::Signal;

namespace {

Real downlink_snr(Real bitrate, phy::DownlinkScheme scheme, Real fs,
                  dsp::Rng& rng) {
  phy::PieParams pie;
  pie.tari = 1.0 / bitrate;  // a data-0 per bit period
  const phy::Bits payload = phy::random_bits(48, rng);
  const Signal baseband = phy::pie_encode(payload, pie, fs);

  phy::CarrierParams cp;
  cp.fs = fs;
  const Signal modulated = phy::modulate_downlink(baseband, cp, scheme);
  phy::RingingPzt pzt(fs, 230.0e3, 217.0);
  Signal acoustic = pzt.drive(modulated);

  dsp::Biquad concrete = dsp::Biquad::bandpass(fs, 230.0e3, 10.0);
  const Real g0 = concrete.magnitude_at(fs, 230.0e3);
  Signal received = concrete.process(acoustic);
  for (Real& v : received) v /= g0;
  dsp::add_awgn(received, 0.01, rng);

  dsp::EnvelopeDetector det(fs, 4.0 * bitrate);
  Signal env = det.process(received);

  // Evaluate the envelope at decision points: the central 60% of every
  // baseband run (what the node's slicer thresholds). Transition smear is
  // common to both schemes; what separates them is the ring tail filling
  // the low intervals (OOK) vs the off-resonance residue (FSK).
  const std::size_t skip = static_cast<std::size_t>(2.5 * pie.tari * fs);
  Signal ref, obs;
  std::size_t run_start = skip;
  auto flush_run = [&](std::size_t end) {
    const std::size_t len = end - run_start;
    if (len < 8) return;
    const std::size_t lo = run_start + len / 5;
    const std::size_t hi_i = end - len / 5;
    for (std::size_t i = lo; i < hi_i; ++i) {
      ref.push_back(baseband[i]);
      obs.push_back(env[i]);
    }
  };
  for (std::size_t i = skip + 1; i < baseband.size(); ++i) {
    if ((baseband[i] > 0.5) != (baseband[i - 1] > 0.5)) {
      flush_run(i);
      run_start = i;
    }
  }
  flush_run(baseband.size());

  // Normalize against the mean high-level envelope.
  Real hi = 0.0;
  int hi_n = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] > 0.5) {
      hi += obs[i];
      ++hi_n;
    }
  }
  if (hi_n == 0) return 0.0;
  hi /= hi_n;
  for (Real& v : obs) v /= hi;
  return dsp::measure_snr_db(ref, obs);
}

}  // namespace

int main() {
  const Real fs = 2.0e6;
  dsp::Rng rng(13);
  std::printf("# Fig. 20 — downlink SNR (dB) vs bitrate: FSK vs OOK\n");
  std::printf("bitrate_kbps,fsk_db,ook_db,ratio\n");
  for (double kbps : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    const Real fsk = downlink_snr(kbps * 1000.0,
                                  phy::DownlinkScheme::kFskOffResonance, fs,
                                  rng);
    const Real ook =
        downlink_snr(kbps * 1000.0, phy::DownlinkScheme::kOok, fs, rng);
    std::printf("%.0f,%.1f,%.1f,%.1fx\n", kbps, fsk, ook,
                dsp::from_db(fsk - ook));
  }
  std::printf("# paper: FSK improves SNR ~3-5x over OOK (off-resonance\n");
  std::printf("#   damping suppresses the ring tail)\n");
  return 0;
}
