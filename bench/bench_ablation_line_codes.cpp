// Ablation — uplink line codes: the paper's FM0 against Miller-modulated
// subcarriers (M = 2/4/8, the Gen2 family it follows). Monte Carlo BER on
// the decision-domain AWGN channel: Miller trades switching bandwidth for
// robustness.

#include <cstdio>

#include "core/ber_harness.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/miller.hpp"

using namespace ecocap;
using dsp::Real;

namespace {

Real miller_ber(Real snr_db, int m, std::size_t total_bits,
                std::uint64_t seed) {
  dsp::Rng rng(seed);
  phy::MillerParams p;
  p.bitrate = 1.0;
  p.m = m;
  const Real fs = 32.0 * m >= 64.0 ? 32.0 * m : 64.0;
  const Real spb = fs;  // samples per bit at bitrate 1
  const Real snr_lin = dsp::from_db(snr_db);
  const Real sigma = std::sqrt(spb / (2.0 * snr_lin));
  std::size_t bits = 0, errors = 0;
  while (bits < total_bits) {
    const phy::Bits tx = phy::random_bits(64, rng);
    dsp::Signal x = phy::miller_encode(tx, p, fs);
    dsp::add_awgn(x, sigma, rng);
    const phy::Bits rx = phy::miller_decode(x, p, fs, tx.size());
    errors += phy::hamming_distance(tx, rx);
    bits += tx.size();
  }
  return static_cast<Real>(errors) / static_cast<Real>(bits);
}

}  // namespace

int main() {
  std::printf("# Ablation — BER vs SNR: FM0 vs Miller-2/4/8\n");
  std::printf("snr_db,fm0,miller2,miller4,miller8\n");
  for (double snr = 0.0; snr <= 10.01; snr += 2.0) {
    core::BerConfig cfg;
    cfg.snr_db = snr;
    cfg.total_bits = 60000;
    cfg.seed = 31 + static_cast<std::uint64_t>(snr);
    const Real fm0 = core::fm0_ber_monte_carlo(cfg).ber();
    std::printf("%.0f,%.3g,%.3g,%.3g,%.3g\n", snr, fm0,
                miller_ber(snr, 2, 30000, 101 + static_cast<std::uint64_t>(snr)),
                miller_ber(snr, 4, 30000, 202 + static_cast<std::uint64_t>(snr)),
                miller_ber(snr, 8, 30000, 303 + static_cast<std::uint64_t>(snr)));
  }
  std::printf("# takeaway: the coherent subcarrier integration makes the\n");
  std::printf("#   codes comparable on AWGN; Miller wins under narrowband\n");
  std::printf("#   interference at the cost of M x switching bandwidth\n");
  return 0;
}
