// Ablation — §3.4 TDMA slotted ALOHA: inventory efficiency vs the slot
// exponent Q for different node populations. Too few slots collide; too
// many waste air time. SHM tolerates the latency either way ("degradation
// takes days rather than seconds"). The per-(n, Q) trial average runs on
// the parallel trial engine with counter-derived seeds, so the numbers are
// bit-identical at any ECOCAP_THREADS.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/trial_runner.hpp"
#include "reader/inventory.hpp"

using namespace ecocap;

namespace {

struct TdmaStats {
  long rounds = 0;
  long slots = 0;
  long collisions = 0;
  long empty = 0;
  long inventoried = 0;
};

/// One independent inventory pass: n fresh nodes, one engine, one run.
TdmaStats run_pass(int n, std::uint8_t q, dsp::Rng& rng) {
  std::vector<std::unique_ptr<node::Firmware>> fw;
  std::vector<reader::InventoriedNode> nodes;
  for (int i = 0; i < n; ++i) {
    node::FirmwareConfig fc;
    fc.node_id = static_cast<std::uint16_t>(i + 1);
    fw.push_back(std::make_unique<node::Firmware>(fc, rng.engine()()));
    fw.back()->power_on();
    reader::InventoriedNode in;
    in.firmware = fw.back().get();
    in.snr_db = 25.0;
    nodes.push_back(in);
  }
  reader::InventoryEngine::Config cfg;
  cfg.q = q;
  cfg.max_rounds = 40;
  reader::InventoryEngine engine(cfg, rng.engine()());
  const auto r = engine.run(nodes);
  TdmaStats s;
  s.rounds = r.stats.rounds;
  s.slots = r.stats.slots;
  s.collisions = r.stats.collisions;
  s.empty = r.stats.empty_slots;
  s.inventoried = static_cast<long>(r.inventoried_ids.size());
  return s;
}

}  // namespace

int main() {
  bench::BenchJson out("ablation_tdma");
  const core::TrialRunner runner(core::ThreadPool::shared(),
                                 /*block_size=*/2);
  std::size_t total_trials = 0;
  std::vector<double> series_n, series_q, series_inventoried;

  std::printf("# Ablation — slotted-ALOHA inventory vs Q (2^Q slots/round)\n");
  std::printf("nodes,q,rounds,slots,collisions,empty,inventoried\n");
  for (int n : {4, 10, 20}) {
    for (std::uint8_t q = 0; q <= 6; ++q) {
      const int trials = 10;
      const std::uint64_t seed =
          0x7d3a000u + static_cast<std::uint64_t>(n) * 64 + q;
      const TdmaStats sum = runner.run<TdmaStats>(
          trials, seed,
          [&](std::size_t, dsp::Rng& rng, TdmaStats& acc) {
            const TdmaStats s = run_pass(n, q, rng);
            acc.rounds += s.rounds;
            acc.slots += s.slots;
            acc.collisions += s.collisions;
            acc.empty += s.empty;
            acc.inventoried += s.inventoried;
          },
          [](TdmaStats& into, const TdmaStats& from) {
            into.rounds += from.rounds;
            into.slots += from.slots;
            into.collisions += from.collisions;
            into.empty += from.empty;
            into.inventoried += from.inventoried;
          });
      total_trials += trials;
      std::printf("%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f\n", n, q,
                  static_cast<double>(sum.rounds) / trials,
                  static_cast<double>(sum.slots) / trials,
                  static_cast<double>(sum.collisions) / trials,
                  static_cast<double>(sum.empty) / trials,
                  static_cast<double>(sum.inventoried) / trials);
      series_n.push_back(n);
      series_q.push_back(q);
      series_inventoried.push_back(static_cast<double>(sum.inventoried) /
                                   trials);
    }
  }
  std::printf("# sweet spot: 2^Q ~ node count (classic slotted-ALOHA);\n");
  std::printf("#   collisions dominate below it, empty slots above it\n");

  out.set_trials(total_trials);
  out.series("nodes", series_n);
  out.series("q", series_q);
  out.series("inventoried", series_inventoried);
  out.write();
  return 0;
}
