// Ablation — §3.4 TDMA slotted ALOHA: inventory efficiency vs the slot
// exponent Q for different node populations. Too few slots collide; too
// many waste air time. SHM tolerates the latency either way ("degradation
// takes days rather than seconds").

#include <cstdio>
#include <memory>
#include <vector>

#include "reader/inventory.hpp"

using namespace ecocap;

int main() {
  std::printf("# Ablation — slotted-ALOHA inventory vs Q (2^Q slots/round)\n");
  std::printf("nodes,q,rounds,slots,collisions,empty,inventoried\n");
  for (int n : {4, 10, 20}) {
    for (std::uint8_t q = 0; q <= 6; ++q) {
      // Average over a few seeds.
      int rounds = 0, slots = 0, collisions = 0, empty = 0, ok = 0;
      const int trials = 10;
      for (int t = 0; t < trials; ++t) {
        std::vector<std::unique_ptr<node::Firmware>> fw;
        std::vector<reader::InventoriedNode> nodes;
        for (int i = 0; i < n; ++i) {
          node::FirmwareConfig fc;
          fc.node_id = static_cast<std::uint16_t>(i + 1);
          fw.push_back(std::make_unique<node::Firmware>(
              fc, static_cast<std::uint64_t>(t * 100 + i)));
          fw.back()->power_on();
          reader::InventoriedNode in;
          in.firmware = fw.back().get();
          in.snr_db = 25.0;
          nodes.push_back(in);
        }
        reader::InventoryEngine::Config cfg;
        cfg.q = q;
        cfg.max_rounds = 40;
        reader::InventoryEngine engine(cfg, static_cast<std::uint64_t>(t));
        const auto r = engine.run(nodes);
        rounds += r.stats.rounds;
        slots += r.stats.slots;
        collisions += r.stats.collisions;
        empty += r.stats.empty_slots;
        ok += static_cast<int>(r.inventoried_ids.size());
      }
      std::printf("%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f\n", n, q,
                  static_cast<double>(rounds) / trials,
                  static_cast<double>(slots) / trials,
                  static_cast<double>(collisions) / trials,
                  static_cast<double>(empty) / trials,
                  static_cast<double>(ok) / trials);
    }
  }
  std::printf("# sweet spot: 2^Q ~ node count (classic slotted-ALOHA);\n");
  std::printf("#   collisions dominate below it, empty slots above it\n");
  return 0;
}
