// Self-healing runtime bench — the robustness headline for the supervised
// fleet: a DaemonSupervisor drives a small fleet through a scripted chaos
// plan (daemon crashes before and after checkpoints, a hung pipeline the
// watchdog must reclaim, a throttled collector) and the bench reports
//
//   recovery_deterministic  — 1.0 iff the chaos run's final TelemetryStore
//                             is byte-identical per node to a crash-free
//                             run of the same fleet (the ISSUE acceptance
//                             bit; gated unconditionally in CI),
//   recovery_latency_ms_*   — wall time from watchdog/crash detection to
//                             the restarted daemon's thread running again,
//   overload_drop_rate      — fraction of events shed by the drop-oldest
//                             ring while the collector is paused for the
//                             whole campaign (~every event beyond the ring
//                             capacity; memory stays bounded by the ring),
//   drops_accounted_exactly — 1.0 iff pushed == collected + dropped.
//
// Emits BENCH_runtime.json, gated by tools/perf_gate.py.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/link_simulator.hpp"
#include "dsp/serialize.hpp"
#include "fleet/telemetry_store.hpp"
#include "runtime/daemon_supervisor.hpp"
#include "stream/streaming_reader.hpp"

using namespace ecocap;

namespace {

double env_or(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}

runtime::RuntimeConfig fleet_config(std::size_t daemons, std::uint64_t polls) {
  runtime::RuntimeConfig config;
  for (std::size_t i = 0; i < daemons; ++i) {
    reader::StreamingReaderConfig d;
    d.stream.system = core::default_system();
    d.stream.system.seed += 1000 * (i + 1);
    d.stream.system.capsule.firmware.node_id =
        static_cast<std::uint16_t>(42 + i);
    d.stream.block_size = 256;
    d.poll_interval_s = 0.05;
    d.warmup_s = 0.5;
    config.daemons.push_back(std::move(d));
  }
  config.polls_per_daemon = polls;
  config.checkpoint_every_polls = 4;
  config.event_ring_capacity = 64;
  config.heartbeat_timeout_ms = 1500.0;
  config.watchdog_interval_ms = 5.0;
  return config;
}

std::string node_bytes(const fleet::TelemetryStore& store, std::size_t node) {
  dsp::ser::Writer w("bench-store-dump v1");
  store.save_node(node, w);
  return w.payload();
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const auto polls =
      static_cast<std::uint64_t>(env_or("ECOCAP_BENCH_RUNTIME_POLLS", 12.0));
  constexpr std::size_t kDaemons = 2;

  std::printf("# self-healing runtime: chaos recovery + overload shedding\n");

  bench::BenchJson out("runtime");

  // --- Crash-free golden run -------------------------------------------
  auto golden_config = fleet_config(kDaemons, polls);
  runtime::DaemonSupervisor golden(golden_config);
  const auto golden_stats = golden.run();
  std::printf("# golden: %llu polls/daemon, %.2fs wall\n",
              static_cast<unsigned long long>(polls),
              golden_stats.wall_seconds);

  // --- Scripted chaos run ----------------------------------------------
  // The ISSUE acceptance plan: >= 3 crashes (hitting both the
  // resume-from-checkpoint and restart-from-scratch paths), >= 1 stall the
  // watchdog must detect, plus a throttled collector stressing the rings.
  auto chaos_config = fleet_config(kDaemons, polls);
  using Chaos = runtime::ChaosEvent;
  chaos_config.script = {
      {0, 3, Chaos::Kind::kCrash, 1},
      {0, 7, Chaos::Kind::kCrash, 1},
      {1, 5, Chaos::Kind::kCrash, 1},
      {1, 9, Chaos::Kind::kStall, 2},
      {0, 2, Chaos::Kind::kThrottle, 100},
  };
  runtime::DaemonSupervisor chaos(chaos_config);
  const auto chaos_stats = chaos.run();

  bool deterministic = true;
  double latency_total = 0.0, latency_max = 0.0;
  std::uint64_t restarts = 0, crashes = 0, kicks = 0;
  std::vector<double> restart_series, latency_series;
  for (std::size_t i = 0; i < kDaemons; ++i) {
    const auto& d = chaos_stats.daemons[i];
    deterministic = deterministic &&
                    node_bytes(chaos.telemetry(), i) ==
                        node_bytes(golden.telemetry(), i) &&
                    d.reader.delivered == golden_stats.daemons[i].reader.delivered;
    latency_total += d.recovery_latency_ms_total;
    if (d.recovery_latency_ms_max > latency_max)
      latency_max = d.recovery_latency_ms_max;
    restarts += d.restarts;
    crashes += d.crashes;
    kicks += d.watchdog_kicks;
    restart_series.push_back(static_cast<double>(d.restarts));
    latency_series.push_back(d.recovery_latency_ms_max);
    std::printf("# daemon %zu: %llu restarts, %.2f ms worst recovery\n", i,
                static_cast<unsigned long long>(d.restarts),
                d.recovery_latency_ms_max);
  }
  const double latency_mean =
      restarts > 0 ? latency_total / static_cast<double>(restarts) : 0.0;
  std::printf("# chaos: deterministic=%d restarts=%llu crashes=%llu "
              "kicks=%llu latency mean/max %.2f/%.2f ms\n",
              deterministic ? 1 : 0,
              static_cast<unsigned long long>(restarts),
              static_cast<unsigned long long>(crashes),
              static_cast<unsigned long long>(kicks), latency_mean,
              latency_max);

  // --- Overload shedding run -------------------------------------------
  // Collector paused for the whole campaign at a tiny drop-oldest ring:
  // memory stays bounded at the ring capacity and the drop accounting must
  // balance to the event.
  auto overload_config = fleet_config(1, polls);
  overload_config.event_ring_capacity = 2;
  overload_config.event_policy = core::Overflow::kDropOldest;
  overload_config.script = {{0, 0, Chaos::Kind::kThrottle, 600000}};
  runtime::DaemonSupervisor overload(overload_config);
  const auto overload_stats = overload.run();
  const auto& od = overload_stats.daemons[0];
  const bool drops_exact =
      od.events_pushed == overload_stats.events_collected + od.events_dropped;
  const double drop_rate =
      od.events_pushed > 0
          ? static_cast<double>(od.events_dropped) /
                static_cast<double>(od.events_pushed)
          : 0.0;
  std::printf("# overload: pushed=%llu collected=%llu dropped=%llu "
              "(rate %.3f, exact=%d)\n",
              static_cast<unsigned long long>(od.events_pushed),
              static_cast<unsigned long long>(overload_stats.events_collected),
              static_cast<unsigned long long>(od.events_dropped), drop_rate,
              drops_exact ? 1 : 0);

  out.set_trials(static_cast<std::size_t>(kDaemons * polls));
  out.metric("hw_threads", static_cast<double>(hw));
  out.metric("recovery_deterministic", deterministic ? 1.0 : 0.0);
  out.metric("recovery_latency_ms_mean", latency_mean);
  out.metric("recovery_latency_ms_max", latency_max);
  out.metric("restarts", static_cast<double>(restarts));
  out.metric("crashes_injected", static_cast<double>(crashes));
  out.metric("watchdog_kicks", static_cast<double>(kicks));
  out.metric("overload_drop_rate", drop_rate);
  out.metric("drops_accounted_exactly", drops_exact ? 1.0 : 0.0);
  out.metric("golden_wall_seconds", golden_stats.wall_seconds);
  out.metric("chaos_wall_seconds", chaos_stats.wall_seconds);
  out.metric("events_collected",
             static_cast<double>(chaos_stats.events_collected));
  out.series("daemon_restarts", restart_series);
  out.series("daemon_recovery_latency_ms_max", latency_series);
  out.write();
  return deterministic && drops_exact ? 0 : 1;
}
