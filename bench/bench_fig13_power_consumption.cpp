// Fig. 13 — node power consumption (uW) vs uplink bitrate, plus the
// standby point at bitrate 0 and the per-rail breakdown.

#include <cstdio>

#include "node/power_model.hpp"

using namespace ecocap;

int main() {
  const node::PowerModel pm;
  std::printf("# Fig. 13 — EcoCapsule power (uW) vs bitrate (kbps)\n");
  std::printf("bitrate_kbps,total_uw,mcu_uw,receiver_uw,switch_uw,sensors_uw\n");

  const auto standby = pm.standby();
  std::printf("0 (standby),%.1f,%.1f,%.1f,%.1f,%.1f\n", standby.total() * 1e6,
              standby.mcu * 1e6, standby.receiver * 1e6,
              standby.switch_drv * 1e6, standby.sensors * 1e6);
  for (double kbps : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) {
    const auto p = pm.active(kbps * 1000.0, 4000.0);
    std::printf("%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n", kbps, p.total() * 1e6,
                p.mcu * 1e6, p.receiver * 1e6, p.switch_drv * 1e6,
                p.sensors * 1e6);
  }
  std::printf("# paper: 80.1 uW standby; ~360 uW active, flat in bitrate\n");
  std::printf("# sleep mode: %.2f uW (MSP430 LPM4: 0.9 uW)\n",
              pm.sleep().total() * 1e6);
  return 0;
}
