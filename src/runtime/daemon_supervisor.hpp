#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/spsc_ring.hpp"
#include "fleet/telemetry_store.hpp"
#include "stream/streaming_reader.hpp"

namespace ecocap::runtime {

/// One poll outcome flowing daemon -> collector over the per-daemon event
/// ring. Small and trivially movable: an evicted event under kDropOldest
/// costs one move, never an allocation.
struct PollEvent {
  std::uint32_t daemon = 0;
  std::uint64_t poll = 0;
  bool delivered = false;
  std::uint32_t t_sec = 0;
  float value = 0.0f;
};

/// A scripted runtime fault — the precise form of chaos (the probabilistic
/// form rides `fault::RuntimeFaultPlan`). `at_poll` is the daemon's
/// cumulative poll index at which the event fires, so a scripted crash hits
/// the same simulated instant no matter how wall time unfolds; each event
/// fires exactly once (a restarted daemon does not replay it).
struct ChaosEvent {
  enum class Kind {
    kCrash,     ///< daemon thread throws; watchdog must restart it
    kStall,     ///< daemon hangs for `arg` heartbeat-timeout units
    kThrottle,  ///< collector pauses for `arg` milliseconds (slow consumer)
  };
  std::size_t daemon = 0;
  std::uint64_t at_poll = 0;
  Kind kind = Kind::kCrash;
  std::uint64_t arg = 1;
};

/// Graceful-degradation ladder under sustained event-ring overload. Rungs
/// escalate after `trip_polls` consecutive polls that dropped events and
/// relax after `cool_polls` clean polls:
///   0 normal -> 1 shed (publish every other event) -> 2 coarsen (double
///   the pipeline block size) -> 3 quarantine (publish nothing, probe back).
/// Rung 2 changes the per-block fault draws (see
/// StreamPipeline::set_block_size), so the ladder defaults to off and MUST
/// stay off during determinism-checked chaos runs.
struct DegradeConfig {
  bool enabled = false;
  int trip_polls = 4;
  int cool_polls = 16;
  std::size_t coarsen_factor = 2;
};

struct RuntimeConfig {
  /// One reader config per daemon (seeds/node ids prepared by the caller).
  /// The supervisor overrides `shared_store`/`store_node`: daemon i writes
  /// node i of the supervisor's store.
  std::vector<reader::StreamingReaderConfig> daemons;
  /// Shared fleet store; `nodes` is forced to daemons.size() when smaller.
  fleet::TelemetryStore::Config telemetry;
  /// Campaign length: every daemon must complete this many polls.
  std::uint64_t polls_per_daemon = 0;
  /// Checkpoint cadence in polls (0 = only the implicit restart-from-
  /// scratch recovery). Checkpoints are kept in memory and — when
  /// `checkpoint_dir` is set — mirrored to `<dir>/daemon_<i>.ckpt` via the
  /// crash-safe atomic_write_file.
  std::uint64_t checkpoint_every_polls = 8;
  std::string checkpoint_dir;
  /// Daemon -> collector event rings: capacity and overflow policy.
  std::size_t event_ring_capacity = 64;
  core::Overflow event_policy = core::Overflow::kDropOldest;
  /// Watchdog cadence and the heartbeat age that declares a daemon hung.
  double watchdog_interval_ms = 2.0;
  double heartbeat_timeout_ms = 250.0;
  /// Probabilistic chaos: per-poll draws from a supervisor-owned
  /// fault::Injector per daemon (seeded from `chaos_seed` + daemon index;
  /// independent of every pipeline draw stream). For byte-identity checks
  /// use `script` instead — probabilistic chaos is deterministic in its
  /// draw sequence but its interleaving with restarts is not replayed.
  fault::RuntimeFaultPlan chaos;
  std::uint64_t chaos_seed = 0;
  /// Scripted chaos (precise, exactly-once; see ChaosEvent).
  std::vector<ChaosEvent> script;
  DegradeConfig degrade;
  /// Collector-side observer, invoked on the collector thread for every
  /// drained event (demo/monitoring hook; keep it cheap).
  std::function<void(const PollEvent&)> on_event;
};

/// Per-daemon runtime outcome (reader stats + supervision counters).
struct DaemonRuntimeStats {
  reader::StreamingReaderStats reader;
  std::uint64_t polls_done = 0;
  std::uint64_t restarts = 0;          ///< successful recoveries
  std::uint64_t crashes = 0;           ///< exceptions that killed the thread
  std::uint64_t stalls = 0;            ///< injected pipeline stalls
  std::uint64_t watchdog_kicks = 0;    ///< hung detections (stale heartbeat)
  std::uint64_t checkpoints = 0;
  std::uint64_t resumed_from_checkpoint = 0;
  std::uint64_t restarted_from_scratch = 0;
  std::uint64_t events_pushed = 0;     ///< ring pushes attempted
  std::uint64_t events_shed = 0;       ///< suppressed by the degrade ladder
  std::uint64_t events_dropped = 0;    ///< lost to ring overflow (exact)
  double recovery_latency_ms_total = 0.0;
  double recovery_latency_ms_max = 0.0;
  int degrade_rung_max = 0;
};

struct RuntimeStats {
  std::vector<DaemonRuntimeStats> daemons;
  std::uint64_t events_collected = 0;  ///< drained by the collector
  std::uint64_t throttles = 0;         ///< collector slow-consumer episodes
  double wall_seconds = 0.0;

  std::uint64_t total_restarts() const {
    std::uint64_t n = 0;
    for (const auto& d : daemons) n += d.restarts;
    return n;
  }
  std::uint64_t total_events_pushed() const {
    std::uint64_t n = 0;
    for (const auto& d : daemons) n += d.events_pushed;
    return n;
  }
  std::uint64_t total_events_dropped() const {
    std::uint64_t n = 0;
    for (const auto& d : daemons) n += d.events_dropped;
    return n;
  }
};

/// Self-healing fleet runtime: owns N StreamingReader daemons (one thread
/// and one clock domain each, writing disjoint nodes of one shared
/// TelemetryStore), a watchdog, and a telemetry collector, and keeps the
/// fleet alive through injected failure.
///
///  * **Health**: every daemon heartbeats after each poll; the watchdog
///    declares a daemon hung when its heartbeat goes stale (a stalled
///    pipeline also racks up StreamClock deadline misses, surfaced in the
///    reader stats) and aborts it for restart. Daemon threads are
///    exception-isolated: a throw marks the daemon crashed, never takes the
///    process down.
///  * **Recovery**: daemons checkpoint on poll boundaries (bit-exact
///    StreamingReader::checkpoint). The watchdog restarts a dead daemon
///    from its latest checkpoint — rewinding its store node to the
///    checkpointed contents — or from scratch (reset_node) when none
///    exists; either way the replayed polls are bit-identical, so the final
///    store is byte-identical to a crash-free run. Writer handoff rides
///    TelemetryStore::claim_writer, guaranteeing the replacement is the
///    node's only writer.
///  * **Backpressure**: poll events flow over bounded SpscRings under an
///    explicit Overflow policy; drops are counted exactly (push() returns
///    the eviction count) and fed back into the checkpointed reader stats.
///    Under sustained overload the optional degradation ladder sheds,
///    coarsens, then quarantines (DegradeConfig).
///  * **Chaos**: scripted ChaosEvents fire at exact poll indices;
///    probabilistic chaos draws per-poll from seeded fault::Injectors.
///
/// Thread-safety: construct, call run() once, read the returned stats.
/// inject_crash/inject_stall may be called from any thread while run() is
/// live (the demo's kill switch).
class DaemonSupervisor {
 public:
  explicit DaemonSupervisor(RuntimeConfig config);
  ~DaemonSupervisor();

  DaemonSupervisor(const DaemonSupervisor&) = delete;
  DaemonSupervisor& operator=(const DaemonSupervisor&) = delete;

  /// Run the campaign to completion: spawn daemons + watchdog + collector,
  /// supervise until every daemon finished its polls, flush telemetry,
  /// join everything. Callable once.
  RuntimeStats run();

  /// The shared store (node i = daemon i). Valid for the supervisor's
  /// lifetime; readable concurrently with run().
  fleet::TelemetryStore& telemetry() { return store_; }

  /// Ask daemon `daemon` to crash at its next poll boundary (thread-safe;
  /// the watchdog then recovers it — the example's kill switch).
  void inject_crash(std::size_t daemon);
  /// Ask daemon `daemon` to stall for `units` heartbeat timeouts.
  void inject_stall(std::size_t daemon, std::uint64_t units);

 private:
  using Clock = std::chrono::steady_clock;

  enum class State : int { kIdle, kRunning, kCrashed, kDone };

  struct Daemon {
    Daemon(std::size_t ring_capacity) : events(ring_capacity) {}

    reader::StreamingReaderConfig config;
    std::unique_ptr<reader::StreamingReader> reader;
    std::thread thread;
    core::SpscRing<PollEvent> events;

    // Watchdog-visible health (written by the daemon thread).
    std::atomic<std::uint64_t> heartbeat_ns{0};
    std::atomic<State> state{State::kIdle};
    std::atomic<bool> abort{false};           // watchdog -> daemon
    std::atomic<bool> crash_request{false};   // inject_crash
    std::atomic<std::uint64_t> stall_request{0};

    // Latest checkpoint payload (daemon writes, watchdog reads after the
    // thread is joined; the mutex also orders mid-run readers out).
    std::mutex checkpoint_mu;
    std::string checkpoint;

    // Daemon-thread-private (handed to the restart thread via join()).
    fault::Injector chaos;
    std::vector<ChaosEvent> script;  // this daemon's events, by at_poll
    std::size_t next_script = 0;
    bool last_delivered = false;     // set by the reader's poll hook
    int rung = 0;
    int dirty_polls = 0;   // consecutive polls that dropped events
    int clean_polls = 0;
    std::size_t base_block = 0;
    DaemonRuntimeStats stats;

    // Watchdog-thread-private hung-detection backoff: on an oversubscribed
    // host a single healthy poll can outlast heartbeat_timeout_ms, and a
    // fixed timeout then livelocks — every incarnation is kicked mid-replay
    // before reaching a new checkpoint. Each restart that recovered no new
    // polls doubles the effective timeout (capped); each one that
    // progressed decays it, so real hangs are still caught at a bounded
    // multiple of the configured timeout.
    std::uint64_t last_restart_polls = 0;
    int kick_backoff = 0;
  };

  void daemon_main(std::size_t i);
  void watchdog_main();
  void collector_main();
  /// Claim the writer slot and build (or rebuild) daemon i's reader
  /// against the shared store.
  void build_reader(Daemon& d, std::size_t i);
  /// Reset the daemon's supervision state and launch its thread. The
  /// reader must be fully built (and resumed, on a restart) first.
  void launch(Daemon& d, std::size_t i);
  /// One poll plus its chaos/degradation bookkeeping. Throws to crash.
  void poll_step(Daemon& d, std::size_t i);
  void apply_chaos(Daemon& d, std::size_t i);
  void maybe_checkpoint(Daemon& d, std::size_t i, bool force);
  void restart(Daemon& d, std::size_t i);
  void degrade_account(Daemon& d, std::size_t dropped);
  bool shed_this_event(Daemon& d);

  RuntimeConfig config_;
  fleet::TelemetryStore store_;
  std::vector<std::unique_ptr<Daemon>> daemons_;
  std::thread watchdog_;
  std::thread collector_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::int64_t> throttle_until_ns_{0};
  std::atomic<std::uint64_t> events_collected_{0};
  std::atomic<std::uint64_t> throttles_{0};
  bool ran_ = false;
};

}  // namespace ecocap::runtime
