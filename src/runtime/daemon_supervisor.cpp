#include "runtime/daemon_supervisor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dsp/serialize.hpp"

namespace ecocap::runtime {

namespace {

/// Seed salt of the supervisor-owned chaos injectors (one per daemon),
/// disjoint from every pipeline draw-stream salt so runtime chaos never
/// perturbs a signal, node, or link realization.
constexpr std::uint64_t kChaosSalt = 0x7a40;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fleet::TelemetryStore::Config store_config(const RuntimeConfig& config) {
  auto c = config.telemetry;
  c.nodes = std::max(c.nodes, config.daemons.size());
  return c;
}

/// Writer id of daemon i (0 is a valid id; i+1 just reads better in logs).
std::uint32_t writer_id(std::size_t i) {
  return static_cast<std::uint32_t>(i + 1);
}

}  // namespace

DaemonSupervisor::DaemonSupervisor(RuntimeConfig config)
    : config_(std::move(config)), store_(store_config(config_)) {
  if (config_.daemons.empty()) {
    throw std::invalid_argument("DaemonSupervisor: no daemons configured");
  }
  if (config_.polls_per_daemon == 0) {
    throw std::invalid_argument(
        "DaemonSupervisor: polls_per_daemon must be > 0");
  }
  if (config_.event_ring_capacity == 0) {
    throw std::invalid_argument(
        "DaemonSupervisor: event_ring_capacity must be > 0");
  }
  daemons_.reserve(config_.daemons.size());
  for (std::size_t i = 0; i < config_.daemons.size(); ++i) {
    auto d = std::make_unique<Daemon>(config_.event_ring_capacity);
    d->config = config_.daemons[i];
    d->config.shared_store = &store_;
    d->config.store_node = i;
    d->base_block = d->config.stream.block_size;
    fault::FaultPlan chaos_plan;
    chaos_plan.runtime = config_.chaos;
    d->chaos = fault::Injector(chaos_plan, config_.chaos_seed, kChaosSalt + i);
    for (const auto& ev : config_.script) {
      if (ev.daemon == i) d->script.push_back(ev);
    }
    std::stable_sort(d->script.begin(), d->script.end(),
                     [](const ChaosEvent& a, const ChaosEvent& b) {
                       return a.at_poll < b.at_poll;
                     });
    daemons_.push_back(std::move(d));
  }
}

DaemonSupervisor::~DaemonSupervisor() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& d : daemons_) {
    d->abort.store(true, std::memory_order_release);
    d->events.close();
  }
  for (auto& d : daemons_) {
    if (d->thread.joinable()) d->thread.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
  if (collector_.joinable()) collector_.join();
}

void DaemonSupervisor::inject_crash(std::size_t daemon) {
  daemons_.at(daemon)->crash_request.store(true, std::memory_order_release);
}

void DaemonSupervisor::inject_stall(std::size_t daemon, std::uint64_t units) {
  daemons_.at(daemon)->stall_request.store(units, std::memory_order_release);
}

void DaemonSupervisor::build_reader(Daemon& d, std::size_t i) {
  if (!store_.claim_writer(i, writer_id(i))) {
    throw std::runtime_error(
        "DaemonSupervisor: telemetry node already claimed by another writer");
  }
  d.reader = std::make_unique<reader::StreamingReader>(d.config);
  d.reader->set_poll_hook([&d](std::uint64_t, bool delivered) {
    d.last_delivered = delivered;
  });
}

void DaemonSupervisor::launch(Daemon& d, std::size_t i) {
  // A (re)started daemon re-enters the ladder at the bottom rung with the
  // nominal block cadence (the fresh reader already has it).
  d.rung = 0;
  d.dirty_polls = 0;
  d.clean_polls = 0;
  d.heartbeat_ns.store(now_ns(), std::memory_order_release);
  d.state.store(State::kRunning, std::memory_order_release);
  d.thread = std::thread([this, i] { daemon_main(i); });
}

void DaemonSupervisor::daemon_main(std::size_t i) {
  Daemon& d = *daemons_[i];
  try {
    while (!shutdown_.load(std::memory_order_acquire) &&
           !d.abort.load(std::memory_order_acquire)) {
      if (d.reader->polls_done() >= config_.polls_per_daemon) break;
      poll_step(d, i);
    }
  } catch (...) {
    // Exception isolation: a crashed daemon never takes the process down;
    // it flags itself and the watchdog recovers it.
    ++d.stats.crashes;
    d.state.store(State::kCrashed, std::memory_order_release);
    return;
  }
  const bool done = d.reader->polls_done() >= config_.polls_per_daemon;
  d.state.store(done ? State::kDone : State::kCrashed,
                std::memory_order_release);
}

void DaemonSupervisor::apply_chaos(Daemon& d, std::size_t i) {
  const std::uint64_t poll = d.reader->polls_done();  // poll about to run
  bool crash = d.crash_request.exchange(false, std::memory_order_acq_rel);
  std::uint64_t stall_units =
      d.stall_request.exchange(0, std::memory_order_acq_rel);
  double throttle_ms = 0.0;

  // Scripted events fire exactly once: the cursor survives restarts (it
  // lives in the Daemon record, not the reader), so a replayed poll does
  // not re-fire the crash that killed it.
  while (d.next_script < d.script.size() &&
         d.script[d.next_script].at_poll <= poll) {
    const ChaosEvent& ev = d.script[d.next_script++];
    switch (ev.kind) {
      case ChaosEvent::Kind::kCrash:
        crash = true;
        break;
      case ChaosEvent::Kind::kStall:
        stall_units += ev.arg;
        break;
      case ChaosEvent::Kind::kThrottle:
        throttle_ms += static_cast<double>(ev.arg);
        break;
    }
  }

  // Probabilistic chaos: a fixed set of draws per poll from the daemon's
  // seeded injector. The injector is supervisor-owned and does NOT rewind
  // on restart — it models the environment, so replayed polls face fresh
  // (still seeded-deterministic) weather.
  if (d.chaos.active()) {
    if (d.chaos.runtime_crash()) crash = true;
    const int stall_polls = d.chaos.runtime_stall_polls();
    if (stall_polls > 0) stall_units += static_cast<std::uint64_t>(stall_polls);
    if (d.chaos.runtime_throttled()) {
      throttle_ms += config_.heartbeat_timeout_ms;
    }
  }

  if (throttle_ms > 0.0) {
    const std::int64_t until =
        now_ns() + static_cast<std::int64_t>(throttle_ms * 1e6);
    std::int64_t cur = throttle_until_ns_.load(std::memory_order_relaxed);
    while (cur < until && !throttle_until_ns_.compare_exchange_weak(
                              cur, until, std::memory_order_acq_rel)) {
    }
    throttles_.fetch_add(1, std::memory_order_relaxed);
  }

  if (stall_units > 0) {
    // Simulated hung pipeline: the thread naps without heartbeating for
    // `units` x 2 heartbeat timeouts — long enough that the watchdog is
    // guaranteed to notice — but stays abort-checkable so the watchdog can
    // reclaim it instead of leaking a stuck thread.
    ++d.stats.stalls;
    const double total_ms = static_cast<double>(stall_units) * 2.0 *
                            config_.heartbeat_timeout_ms;
    const auto deadline =
        Clock::now() + std::chrono::duration<double, std::milli>(total_ms);
    while (Clock::now() < deadline &&
           !d.abort.load(std::memory_order_acquire) &&
           !shutdown_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  if (crash) {
    throw std::runtime_error("chaos: injected crash of daemon " +
                             std::to_string(i));
  }
}

void DaemonSupervisor::maybe_checkpoint(Daemon& d, std::size_t i,
                                        bool force) {
  if (!force) {
    const std::uint64_t every = config_.checkpoint_every_polls;
    if (every == 0 || d.reader->polls_done() % every != 0) return;
  }
  std::string payload = d.reader->checkpoint();
  if (!config_.checkpoint_dir.empty()) {
    dsp::ser::atomic_write_file(
        config_.checkpoint_dir + "/daemon_" + std::to_string(i) + ".ckpt",
        payload);
  }
  {
    const std::lock_guard<std::mutex> lock(d.checkpoint_mu);
    d.checkpoint = std::move(payload);
  }
  ++d.stats.checkpoints;
}

bool DaemonSupervisor::shed_this_event(Daemon& d) {
  if (!config_.degrade.enabled || d.rung == 0) return false;
  if (d.rung >= 3) return true;  // quarantined: publish nothing, probe later
  return d.reader->polls_done() % 2 == 1;  // shed every other event
}

void DaemonSupervisor::degrade_account(Daemon& d, std::size_t dropped) {
  if (!config_.degrade.enabled) return;
  if (dropped > 0) {
    ++d.dirty_polls;
    d.clean_polls = 0;
  } else {
    ++d.clean_polls;
    d.dirty_polls = 0;
  }
  if (d.dirty_polls >= config_.degrade.trip_polls && d.rung < 3) {
    ++d.rung;
    d.dirty_polls = 0;
    d.stats.degrade_rung_max = std::max(d.stats.degrade_rung_max, d.rung);
    if (d.rung == 2) {
      d.reader->pipeline().set_block_size(d.base_block *
                                          config_.degrade.coarsen_factor);
    }
  } else if (d.clean_polls >= config_.degrade.cool_polls && d.rung > 0) {
    if (d.rung == 2) d.reader->pipeline().set_block_size(d.base_block);
    --d.rung;
    d.clean_polls = 0;
  }
}

void DaemonSupervisor::poll_step(Daemon& d, std::size_t i) {
  apply_chaos(d, i);  // throws on injected crash
  if (d.abort.load(std::memory_order_acquire) ||
      shutdown_.load(std::memory_order_acquire)) {
    return;  // reclaimed mid-stall; the main loop decides crashed/done
  }

  d.reader->run_polls(1);
  const std::uint64_t done = d.reader->polls_done();
  d.stats.polls_done = done;
  d.heartbeat_ns.store(now_ns(), std::memory_order_release);

  PollEvent ev;
  ev.daemon = static_cast<std::uint32_t>(i);
  ev.poll = done - 1;
  ev.delivered = d.last_delivered;
  if (const auto latest = store_.latest(i)) {
    ev.t_sec = latest->t_sec;
    ev.value = latest->value;
  }
  if (shed_this_event(d)) {
    ++d.stats.events_shed;
    degrade_account(d, 0);
  } else {
    ++d.stats.events_pushed;
    std::size_t dropped = 0;
    if (config_.event_policy == core::Overflow::kBlock) {
      while (!d.events.try_push(ev)) {
        if (d.events.closed() || d.abort.load(std::memory_order_acquire) ||
            shutdown_.load(std::memory_order_acquire)) {
          dropped = 1;  // shutdown teardown: the event is lost, account it
          break;
        }
        std::this_thread::yield();
      }
    } else {
      dropped = d.events.push(std::move(ev), config_.event_policy);
    }
    if (dropped > 0) {
      d.stats.events_dropped += dropped;
      d.reader->add_events_dropped(dropped);
    }
    degrade_account(d, dropped);
  }

  maybe_checkpoint(d, i, false);
}

void DaemonSupervisor::restart(Daemon& d, std::size_t i) {
  const auto t0 = Clock::now();
  if (d.thread.joinable()) d.thread.join();

  // Hung-detection backoff (see the Daemon field comment): the dead
  // incarnation's poll counter is safely readable after the join. No new
  // polls since the last restart means the timeout was too tight for this
  // host's current load — give the next incarnation twice the allowance.
  const std::uint64_t progressed = d.reader->polls_done();
  if (progressed > d.last_restart_polls) {
    d.kick_backoff = std::max(0, d.kick_backoff - 1);
  } else if (d.kick_backoff < 6) {
    ++d.kick_backoff;
  }
  d.last_restart_polls = progressed;

  d.abort.store(false, std::memory_order_release);
  d.crash_request.store(false, std::memory_order_release);
  d.stall_request.store(0, std::memory_order_release);

  std::string ckpt;
  {
    const std::lock_guard<std::mutex> lock(d.checkpoint_mu);
    ckpt = d.checkpoint;
  }
  // The crashed incarnation held the writer claim with this daemon's id;
  // re-claiming with the same id is the supervised restart handoff.
  build_reader(d, i);
  if (!ckpt.empty()) {
    // Rewind: the reader resumes its carried state AND its store node's
    // contents from the checkpoint, then replays the lost polls
    // bit-identically.
    d.reader->resume(ckpt);
    ++d.stats.resumed_from_checkpoint;
  } else {
    // No checkpoint yet: start the campaign over from a wiped node — the
    // replayed prefix is bit-identical too, it is just longer.
    store_.reset_node(i);
    ++d.stats.restarted_from_scratch;
  }
  d.stats.polls_done = d.reader->polls_done();
  launch(d, i);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  d.stats.recovery_latency_ms_total += ms;
  d.stats.recovery_latency_ms_max =
      std::max(d.stats.recovery_latency_ms_max, ms);
  ++d.stats.restarts;
}

void DaemonSupervisor::watchdog_main() {
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    bool all_done = true;
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      Daemon& d = *daemons_[i];
      const State state = d.state.load(std::memory_order_acquire);
      if (state == State::kDone) continue;
      all_done = false;
      if (state == State::kCrashed) {
        restart(d, i);
        continue;
      }
      if (state == State::kRunning &&
          !d.abort.load(std::memory_order_acquire)) {
        const double age_ms =
            static_cast<double>(now_ns() -
                                d.heartbeat_ns.load(
                                    std::memory_order_acquire)) /
            1e6;
        const double allowed_ms =
            config_.heartbeat_timeout_ms *
            static_cast<double>(std::uint64_t{1} << d.kick_backoff);
        if (age_ms > allowed_ms) {
          // Hung (stalled pipeline / stuck poll): reclaim and restart.
          ++d.stats.watchdog_kicks;
          d.abort.store(true, std::memory_order_release);
        }
      }
    }
    if (all_done) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        config_.watchdog_interval_ms));
  }
}

void DaemonSupervisor::collector_main() {
  for (;;) {
    const bool stopping = shutdown_.load(std::memory_order_acquire);
    if (!stopping &&
        now_ns() < throttle_until_ns_.load(std::memory_order_acquire)) {
      // Throttled slow consumer: stop draining; the daemon-side rings fill
      // and exercise the overflow policy.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    std::size_t drained = 0;
    for (auto& dp : daemons_) {
      PollEvent ev;
      while (dp->events.try_pop(ev)) {
        ++drained;
        events_collected_.fetch_add(1, std::memory_order_relaxed);
        if (config_.on_event) config_.on_event(ev);
      }
    }
    if (stopping && drained == 0) return;  // final sweep found nothing
    if (drained == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

RuntimeStats DaemonSupervisor::run() {
  if (ran_) {
    throw std::logic_error("DaemonSupervisor::run is single-shot");
  }
  ran_ = true;
  const auto t0 = Clock::now();

  for (std::size_t i = 0; i < daemons_.size(); ++i) {
    build_reader(*daemons_[i], i);
    launch(*daemons_[i], i);
  }
  collector_ = std::thread([this] { collector_main(); });
  watchdog_ = std::thread([this] { watchdog_main(); });

  watchdog_.join();  // returns once every daemon reached kDone
  for (auto& d : daemons_) {
    if (d->thread.joinable()) d->thread.join();
  }
  shutdown_.store(true, std::memory_order_release);
  collector_.join();

  RuntimeStats stats;
  stats.daemons.reserve(daemons_.size());
  for (std::size_t i = 0; i < daemons_.size(); ++i) {
    Daemon& d = *daemons_[i];
    // Campaign end: close the open telemetry buckets exactly once per
    // node — the same single flush an uninterrupted run performs, so
    // recovery stays byte-identical.
    d.reader->flush_telemetry();
    store_.release_writer(i, writer_id(i));
    d.stats.reader = d.reader->stats();
    d.stats.polls_done = d.reader->polls_done();
    stats.daemons.push_back(d.stats);
  }
  stats.events_collected = events_collected_.load(std::memory_order_relaxed);
  stats.throttles = throttles_.load(std::memory_order_relaxed);
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return stats;
}

}  // namespace ecocap::runtime
