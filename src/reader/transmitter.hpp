#pragma once

#include <span>

#include "dsp/workspace.hpp"
#include "phy/carrier.hpp"
#include "phy/pie.hpp"
#include "phy/protocol.hpp"
#include "phy/ring_effect.hpp"
#include "wave/prism.hpp"

namespace ecocap::reader {

using dsp::Real;
using dsp::Signal;

/// The reader's transmit chain (paper §5.1): PIE baseband -> carrier
/// modulation (FSK over the resonant/off-resonant pair, or plain OOK for
/// the Fig. 20 baseline) -> power amplifier -> 40 mm transmitting PZT disc
/// (whose mechanical resonance produces the ring effect) -> wave prism.
struct TransmitterConfig {
  phy::CarrierParams carrier;
  phy::PieParams pie;
  phy::DownlinkScheme scheme = phy::DownlinkScheme::kFskOffResonance;
  Real tx_voltage = 100.0;     // drive peak volts (the experiments' knob)
  Real max_voltage = 250.0;    // amplifier ceiling (Ciprian HVA limit)
  Real pzt_resonance = 230.0e3;
  Real pzt_q = 217.0;          // gives the ~0.3 ms ring tail of Fig. 7
  Real prism_angle_deg = 60.0; // default prism (0 = direct contact)
};

class Transmitter {
 public:
  explicit Transmitter(TransmitterConfig config = {});

  /// Continuous body wave of `duration` seconds (normalized acoustic
  /// amplitude 1.0 at the structure interface for tx_voltage volts) into a
  /// caller-provided buffer: the drive is generated in `out` and run
  /// through the PZT in place (no intermediate buffer).
  void continuous_wave(Real duration, Signal& out);

  /// Encode and transmit a protocol command into a caller-provided buffer
  /// (the acoustic output including the PZT ring behaviour); the PIE
  /// baseband scratch lives in a workspace lease.
  void transmit_command(const phy::Command& cmd, dsp::Workspace& ws,
                        Signal& out);

  /// Transmit raw PIE payload bits (diagnostics and PHY experiments) into
  /// a caller-provided buffer.
  void transmit_bits(const phy::Bits& payload, dsp::Workspace& ws,
                     Signal& out);

  /// The electrical modulated waveform before the PZT (for tests), into a
  /// caller-provided buffer.
  void modulated_baseband(const phy::Bits& payload, dsp::Workspace& ws,
                          Signal& out) const;

  const TransmitterConfig& config() const { return config_; }
  void set_tx_voltage(Real volts);
  void set_scheme(phy::DownlinkScheme scheme) { config_.scheme = scheme; }

 private:
  TransmitterConfig config_;
  phy::RingingPzt pzt_;
};

}  // namespace ecocap::reader
