#include "reader/inventory.hpp"

#include <algorithm>

namespace ecocap::reader {

InventoryEngine::InventoryEngine(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

bool InventoryEngine::frame_survives(const InventoriedNode& n,
                                     std::size_t bits) {
  const double ber =
      channel::fm0_ber(n.snr_db, config_.ber_penalty_db);
  // Independent bit flips: the frame survives when no bit flips (flipped
  // frames either fail CRC or, for bare RN16s, break the handshake).
  const double p_ok = std::pow(1.0 - ber, static_cast<double>(bits));
  return rng_.chance(p_ok);
}

InventoryResult InventoryEngine::run(std::vector<InventoriedNode>& nodes) {
  InventoryResult result;
  std::vector<bool> done(nodes.size(), false);

  for (int round = 0; round < config_.max_rounds; ++round) {
    if (std::all_of(done.begin(), done.end(), [](bool d) { return d; })) break;
    ++result.stats.rounds;

    // Query starts the round on every node that still needs inventorying;
    // already-read nodes are told to sit out (modelled by skipping them —
    // the Gen2 analog is the inventoried-flag/session mechanism).
    const int slots = 1 << config_.q;
    std::vector<std::optional<node::UplinkFrame>> pending(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (done[i]) continue;
      pending[i] = nodes[i].firmware->handle_command(
          phy::Command{phy::QueryCommand{config_.q}}, nodes[i].environment);
    }

    for (int slot = 0; slot < slots; ++slot) {
      ++result.stats.slots;
      if (slot > 0) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (done[i]) continue;
          pending[i] = nodes[i].firmware->handle_command(
              phy::Command{phy::QueryRepCommand{}}, nodes[i].environment);
        }
      }

      // Who answered this slot?
      std::vector<std::size_t> responders;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!done[i] && pending[i].has_value()) responders.push_back(i);
      }
      for (auto& p : pending) p.reset();

      if (responders.empty()) {
        ++result.stats.empty_slots;
        continue;
      }
      if (responders.size() > 1) {
        // Colliding FM0 frames are mutually unintelligible; every collided
        // node stays un-acked and retries next round (fresh Query).
        ++result.stats.collisions;
        continue;
      }

      ++result.stats.singleton_slots;
      const std::size_t idx = responders.front();
      InventoriedNode& n = nodes[idx];

      // RN16 must survive the uplink for the ACK to echo it correctly.
      if (!frame_survives(n, phy::rn16_response_bits())) continue;
      const std::uint16_t rn16 = n.firmware->current_rn16();
      const auto id_frame = n.firmware->handle_command(
          phy::Command{phy::AckCommand{rn16}}, n.environment);
      if (!id_frame || !frame_survives(n, phy::id_response_bits())) continue;
      const auto id = phy::parse_id_response(id_frame->payload);
      if (!id) continue;
      ++result.stats.acked;
      result.inventoried_ids.push_back(id->node_id);

      for (std::uint8_t sensor : config_.sensors_to_read) {
        const auto data_frame = n.firmware->handle_command(
            phy::Command{phy::ReadCommand{rn16, sensor}}, n.environment);
        if (!data_frame) continue;
        if (!frame_survives(n, phy::data_response_bits())) {
          ++result.stats.read_failed;
          continue;
        }
        const auto data = phy::parse_data_response(data_frame->payload);
        if (!data) {
          ++result.stats.read_failed;
          continue;
        }
        ++result.stats.read_ok;
        result.readings.push_back(SensorReading{
            id->node_id, data->sensor_id, phy::from_milli(data->milli_value)});
      }
      done[idx] = true;
    }
  }
  return result;
}

std::vector<std::uint16_t> InventoryEngine::assign_blfs(
    std::vector<InventoriedNode>& nodes, double base_blf, double step) {
  std::vector<std::uint16_t> assigned;
  double blf = base_blf;
  for (auto& n : nodes) {
    // Re-inventory each node alone (administrative channel), then SetBlf.
    std::vector<InventoriedNode> single{n};
    InventoryEngine solo(Config{0, 2, {}, config_.ber_penalty_db},
                         rng_.engine()());
    const InventoryResult r = solo.run(single);
    if (r.inventoried_ids.empty()) continue;
    const std::uint16_t rn16 = n.firmware->current_rn16();
    n.firmware->handle_command(
        phy::Command{phy::SetBlfCommand{
            rn16, static_cast<std::uint16_t>(blf / 100.0)}},
        n.environment);
    if (n.firmware->config().blf == blf) {
      assigned.push_back(n.firmware->config().node_id);
    }
    blf += step;
  }
  return assigned;
}

}  // namespace ecocap::reader
