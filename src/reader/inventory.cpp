#include "reader/inventory.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecocap::reader {

void RetryPolicy::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("RetryPolicy: max_retries must be >= 0");
  }
  if (backoff_base_slots <= 0) {
    throw std::invalid_argument(
        "RetryPolicy: backoff_base_slots must be > 0");
  }
  if (backoff_max_slots < backoff_base_slots) {
    throw std::invalid_argument(
        "RetryPolicy: backoff_max_slots must be >= backoff_base_slots");
  }
  if (giveup_budget < 0) {
    throw std::invalid_argument("RetryPolicy: giveup_budget must be >= 0");
  }
  if (!(slot_timeout_s > 0.0)) {
    throw std::invalid_argument("RetryPolicy: slot_timeout_s must be > 0");
  }
}

InventoryEngine::InventoryEngine(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.retry.validate();
  if (config_.slot_budget < 0) {
    throw std::invalid_argument(
        "InventoryEngine: slot_budget must be >= 0 (0 = unlimited)");
  }
}

bool InventoryEngine::frame_survives(const InventoriedNode& n,
                                     std::size_t bits) {
  const double ber =
      channel::fm0_ber(n.snr_db, config_.ber_penalty_db);
  // Independent bit flips: the frame survives when no bit flips (flipped
  // frames either fail CRC or, for bare RN16s, break the handshake).
  const double p_ok = std::pow(1.0 - ber, static_cast<double>(bits));
  return rng_.chance(p_ok);
}

bool InventoryEngine::exchange_with_retry(const InventoriedNode& n,
                                          std::size_t bits,
                                          InventoryStats& stats) {
  const RetryPolicy& policy = config_.retry;
  // Legacy fast path: exactly one frame_survives draw, no extra state.
  // (An attached injector with an empty plan also lands here in effect —
  // its protocol hooks consume zero draws — but branching early keeps the
  // draw sequence trivially identical to the pre-fault-layer engine.)
  if (!policy.enabled && fault_ == nullptr) return frame_survives(n, bits);

  int backoff = policy.backoff_base_slots;
  for (int attempt = 0;; ++attempt) {
    // Classify this attempt: a lost reply reads as a reader-side timeout
    // (the slot_timeout_s wait elapses with no FM0 preamble); a corrupted
    // one as a CRC / handshake failure. Injector faults stack on top of
    // the SNR-derived bit-error survival draw.
    const bool lost = fault_ != nullptr && fault_->reply_lost();
    bool corrupted = false;
    if (!lost) {
      corrupted = (fault_ != nullptr && fault_->reply_corrupted()) ||
                  !frame_survives(n, bits);
    }
    if (!lost && !corrupted) return true;
    if (lost) {
      ++stats.timeouts;
    } else {
      ++stats.crc_fails;
    }
    // Give-up transitions: policy off, per-exchange retries exhausted, the
    // session-wide budget spent, or the next backoff would blow the slot
    // watchdog (the deadline trip is charged by the round loop).
    if (!policy.enabled || attempt >= policy.max_retries ||
        retry_budget_ <= 0 ||
        (config_.slot_budget > 0 &&
         stats.slots + stats.backoff_slots + backoff > config_.slot_budget)) {
      return false;
    }
    // Retry transition: wait out the backoff window, then re-query.
    --retry_budget_;
    ++stats.retries;
    stats.backoff_slots += backoff;
    backoff = std::min(backoff * 2, policy.backoff_max_slots);
  }
}

InventoryResult InventoryEngine::run(std::vector<InventoriedNode>& nodes) {
  InventoryResult result;
  std::vector<bool> done(nodes.size(), false);
  retry_budget_ = config_.retry.giveup_budget;
  bool deadline_hit = false;
  const auto budget_spent = [&] {
    return config_.slot_budget > 0 &&
           result.stats.slots + result.stats.backoff_slots >=
               config_.slot_budget;
  };

  for (int round = 0; round < config_.max_rounds && !deadline_hit; ++round) {
    if (std::all_of(done.begin(), done.end(), [](bool d) { return d; })) break;
    ++result.stats.rounds;

    // Query starts the round on every node that still needs inventorying;
    // already-read nodes are told to sit out (modelled by skipping them —
    // the Gen2 analog is the inventoried-flag/session mechanism).
    const int slots = 1 << config_.q;
    std::vector<std::optional<node::UplinkFrame>> pending(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (done[i]) continue;
      pending[i] = nodes[i].firmware->handle_command(
          phy::Command{phy::QueryCommand{config_.q}}, nodes[i].environment);
    }

    for (int slot = 0; slot < slots; ++slot) {
      if (budget_spent()) {
        // Watchdog: the round's slot deadline is gone; cut the session
        // short and let the un-read nodes count as give-ups.
        deadline_hit = true;
        break;
      }
      ++result.stats.slots;
      if (slot > 0) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (done[i]) continue;
          pending[i] = nodes[i].firmware->handle_command(
              phy::Command{phy::QueryRepCommand{}}, nodes[i].environment);
        }
      }

      // Who answered this slot?
      std::vector<std::size_t> responders;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!done[i] && pending[i].has_value()) responders.push_back(i);
      }
      for (auto& p : pending) p.reset();

      if (responders.empty()) {
        ++result.stats.empty_slots;
        continue;
      }
      if (responders.size() > 1) {
        // Colliding FM0 frames are mutually unintelligible; every collided
        // node stays un-acked and retries next round (fresh Query).
        ++result.stats.collisions;
        continue;
      }

      ++result.stats.singleton_slots;
      const std::size_t idx = responders.front();
      InventoriedNode& n = nodes[idx];

      // RN16 must survive the uplink for the ACK to echo it correctly.
      if (!exchange_with_retry(n, phy::rn16_response_bits(), result.stats)) {
        continue;
      }
      const std::uint16_t rn16 = n.firmware->current_rn16();
      const auto id_frame = n.firmware->handle_command(
          phy::Command{phy::AckCommand{rn16}}, n.environment);
      if (!id_frame ||
          !exchange_with_retry(n, phy::id_response_bits(), result.stats)) {
        continue;
      }
      const auto id = phy::parse_id_response(id_frame->payload);
      if (!id) continue;
      ++result.stats.acked;
      result.inventoried_ids.push_back(id->node_id);

      for (std::uint8_t sensor : config_.sensors_to_read) {
        const auto data_frame = n.firmware->handle_command(
            phy::Command{phy::ReadCommand{rn16, sensor}}, n.environment);
        if (!data_frame) continue;
        if (!exchange_with_retry(n, phy::data_response_bits(), result.stats)) {
          ++result.stats.read_failed;
          continue;
        }
        const auto data = phy::parse_data_response(data_frame->payload);
        if (!data) {
          ++result.stats.read_failed;
          continue;
        }
        ++result.stats.read_ok;
        result.readings.push_back(SensorReading{
            id->node_id, data->sensor_id, phy::from_milli(data->milli_value)});
      }
      done[idx] = true;
    }
  }
  if (deadline_hit) ++result.stats.deadline_trips;
  result.stats.giveups =
      static_cast<int>(std::count(done.begin(), done.end(), false));
  return result;
}

std::vector<std::uint16_t> InventoryEngine::assign_blfs(
    std::vector<InventoriedNode>& nodes, double base_blf, double step) {
  std::vector<std::uint16_t> assigned;
  double blf = base_blf;
  for (auto& n : nodes) {
    // Re-inventory each node alone (administrative channel), then SetBlf.
    std::vector<InventoriedNode> single{n};
    Config solo_cfg;
    solo_cfg.q = 0;
    solo_cfg.max_rounds = 2;
    solo_cfg.ber_penalty_db = config_.ber_penalty_db;
    InventoryEngine solo(solo_cfg, rng_.engine()());
    const InventoryResult r = solo.run(single);
    if (r.inventoried_ids.empty()) continue;
    const std::uint16_t rn16 = n.firmware->current_rn16();
    n.firmware->handle_command(
        phy::Command{phy::SetBlfCommand{
            rn16, static_cast<std::uint16_t>(blf / 100.0)}},
        n.environment);
    if (n.firmware->config().blf == blf) {
      assigned.push_back(n.firmware->config().node_id);
    }
    blf += step;
  }
  return assigned;
}

}  // namespace ecocap::reader
