#include "reader/transmitter.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/oscillator.hpp"

namespace ecocap::reader {

Transmitter::Transmitter(TransmitterConfig config)
    : config_(config),
      pzt_(config.carrier.fs, config.pzt_resonance, config.pzt_q) {}

void Transmitter::set_tx_voltage(Real volts) {
  if (volts < 0.0 || volts > config_.max_voltage) {
    throw std::invalid_argument("Transmitter: voltage beyond amplifier range");
  }
  config_.tx_voltage = volts;
}

void Transmitter::continuous_wave(Real duration, Signal& out) {
  const auto n = static_cast<std::size_t>(duration * config_.carrier.fs);
  dsp::Oscillator osc(config_.carrier.fs, config_.carrier.f_resonant);
  osc.generate(n, 1.0, out);
  pzt_.drive_inplace(out);
}

void Transmitter::modulated_baseband(const phy::Bits& payload,
                                     dsp::Workspace& ws, Signal& out) const {
  auto baseband = ws.real(0);
  phy::pie_encode(payload, config_.pie, config_.carrier.fs, {}, *baseband);
  phy::modulate_downlink(*baseband, config_.carrier, config_.scheme, out);
}

void Transmitter::transmit_bits(const phy::Bits& payload, dsp::Workspace& ws,
                                Signal& out) {
  modulated_baseband(payload, ws, out);
  pzt_.drive_inplace(out);
}

void Transmitter::transmit_command(const phy::Command& cmd,
                                   dsp::Workspace& ws, Signal& out) {
  transmit_bits(phy::encode_command(cmd), ws, out);
}

}  // namespace ecocap::reader
