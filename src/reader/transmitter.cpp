#include "reader/transmitter.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/oscillator.hpp"

namespace ecocap::reader {

Transmitter::Transmitter(TransmitterConfig config)
    : config_(config),
      pzt_(config.carrier.fs, config.pzt_resonance, config.pzt_q) {}

void Transmitter::set_tx_voltage(Real volts) {
  if (volts < 0.0 || volts > config_.max_voltage) {
    throw std::invalid_argument("Transmitter: voltage beyond amplifier range");
  }
  config_.tx_voltage = volts;
}

Signal Transmitter::continuous_wave(Real duration) {
  const auto n = static_cast<std::size_t>(duration * config_.carrier.fs);
  dsp::Oscillator osc(config_.carrier.fs, config_.carrier.f_resonant);
  Signal drive = osc.generate(n, 1.0);
  return pzt_.drive(drive);
}

Signal Transmitter::modulated_baseband(const phy::Bits& payload) const {
  const Signal baseband =
      phy::pie_encode(payload, config_.pie, config_.carrier.fs);
  return phy::modulate_downlink(baseband, config_.carrier, config_.scheme);
}

Signal Transmitter::transmit_bits(const phy::Bits& payload) {
  return pzt_.drive(modulated_baseband(payload));
}

Signal Transmitter::transmit_command(const phy::Command& cmd) {
  return transmit_bits(phy::encode_command(cmd));
}

}  // namespace ecocap::reader
