#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "channel/snr_models.hpp"
#include "dsp/serialize.hpp"
#include "dsp/types.hpp"

namespace ecocap::reader {

using dsp::Real;

class Receiver;
struct InventoryStats;

/// One rung of the bitrate/BLF fallback ladder, ordered fastest first.
///
/// `snr_delta_db` is the decision-domain SNR gain of running this rung
/// instead of rung 0: slowing the bitrate buys energy per bit
/// (10 log10(b0/b) — the ML decoder integrates longer per symbol) plus
/// whatever fraction of the backscatter spectrum moves back inside the
/// mechanical channel's passband (the Fig. 16 knee). Rung 0 always has
/// delta 0 by construction.
struct LadderStep {
  Real bitrate = 4000.0;   // b/s
  Real blf = 4000.0;       // backscatter link frequency, Hz
  Real snr_delta_db = 0.0; // gain over rung 0 at the decoder's decision point
};

/// Aggregate supervisor activity over a campaign (sum over nodes).
struct SupervisorTotals {
  int fallbacks = 0;            // ladder steps down
  int probes = 0;               // ladder steps up attempted
  int failed_probes = 0;        // probes immediately revoked by a miss
  int quarantines = 0;          // quarantine entries
  int reintegrations = 0;       // quarantine exits (successful probe)
  int reintegration_probes = 0; // quarantine probes attempted
  int skipped_polls = 0;        // node-polls suppressed while quarantined
};

/// Per-node adaptive link state (public so campaigns can snapshot it).
struct NodeLinkState {
  int ladder_index = 0;        // current rung (0 = fastest)
  Real ewma_success = 1.0;     // EWMA of per-poll delivery
  Real ewma_snr_db = 0.0;      // EWMA of decode SNR (valid once has_snr)
  bool has_snr = false;
  int consecutive_ok = 0;      // delivery streak (drives upward probes)
  int consecutive_miss = 0;    // miss streak at the ladder floor
  bool probing = false;        // last action was an upward probe
  int probe_streak_needed = 0; // successes required before the next probe
  bool quarantined = false;
  int quarantine_wait = 0;     // polls to sit out before the next probe
  int reintegration_backoff = 0;  // current probe interval (polls)
  // Lifetime counters (mirrors SupervisorTotals, per node).
  int fallbacks = 0;
  int probes = 0;
  int failed_probes = 0;
  int quarantines = 0;
  int reintegrations = 0;
  int reintegration_probes = 0;
  int skipped_polls = 0;
};

/// Configuration of the adaptive link supervisor. Disabled by default so
/// every existing harness keeps its exact draw sequence; `validate()` is
/// called by LinkSupervisor's constructor and rejects degenerate settings
/// (empty ladder, non-monotonic bitrates, zero/negative timing) with
/// std::invalid_argument naming the field.
struct SupervisorConfig {
  bool enabled = false;

  /// Fallback ladder, fastest rung first, bitrates strictly decreasing.
  std::vector<LadderStep> ladder = default_ladder();

  /// EWMA weight of the newest per-poll outcome (0 < alpha <= 1).
  Real ewma_alpha = 0.5;
  /// Step one rung down when the delivery EWMA falls below this...
  Real degrade_below = 0.5;
  /// ...and only probe back up while it sits above this.
  Real recover_above = 0.9;
  /// Decode-SNR floor: a delivered-but-marginal link (EWMA of decode SNR
  /// below this) also steps down, before losses even start.
  Real degrade_snr_db = 3.0;

  /// Delivery streak required before probing one rung up. Each failed
  /// probe doubles the requirement for that node (capped) so a node near
  /// its rate ceiling stops oscillating.
  int probe_after = 8;
  int probe_after_max = 64;

  /// Consecutive missed polls at the ladder floor before quarantine.
  int quarantine_after = 3;
  /// Reintegration probe cadence while quarantined: first probe after
  /// `reintegration_base_polls` skipped polls, doubling per failed probe up
  /// to `reintegration_max_polls`.
  int reintegration_base_polls = 2;
  int reintegration_max_polls = 32;

  /// Per-polling-round watchdog: total slot budget (arbitration + backoff
  /// idle slots) the inventory engine may spend in one round before the
  /// round is cut short (0 = unlimited). Keeps one dead node from stalling
  /// a whole round's deadline.
  int round_slot_budget = 96;

  /// Throws std::invalid_argument on the first bad field.
  void validate() const;

  /// Three-rung ladder below the Fig. 16 knee: 4 -> 2 -> 1 kb/s at the
  /// default 4 kHz BLF, deltas from the energy-per-bit term alone.
  static std::vector<LadderStep> default_ladder();

  /// Build a ladder from explicit bitrates (fastest first) with
  /// `snr_delta_db` derived from `model` (paper Fig. 16): in-band capture
  /// difference plus the 10 log10(b0/b) energy-per-bit gain.
  static std::vector<LadderStep> fig16_ladder(
      const channel::UplinkSnrModel& model, const std::vector<Real>& bitrates,
      Real blf = 4000.0);
};

/// Adaptive link supervision above the inventory engine (paper §3.4 pilot:
/// months on a real footbridge, where link quality drifts with weather,
/// loading, and concrete aging). Maintains a per-node link-quality estimate
/// (EWMA of delivery and decode SNR), walks the bitrate/BLF fallback ladder
/// down under degradation and probes back up after sustained success, and
/// quarantines persistently failing nodes with exponentially backed-off
/// reintegration probes so they stop burning the round's slot budget.
///
/// Fully deterministic: transitions depend only on the observation sequence
/// (no RNG), so supervised campaigns stay bit-identical across thread
/// counts, and `save`/`load` round-trips the whole state for crash-safe
/// campaign checkpoints.
class LinkSupervisor {
 public:
  /// Validates `config` (throws std::invalid_argument).
  explicit LinkSupervisor(SupervisorConfig config);

  const SupervisorConfig& config() const { return config_; }

  /// Register a node (idempotent); new nodes start on rung 0, healthy.
  void track(std::uint16_t node_id);

  /// Gate a node's participation in the coming poll. Healthy nodes are
  /// always admitted. Quarantined nodes sit out `quarantine_wait` polls
  /// (counted as skipped) and are then admitted once as a reintegration
  /// probe. Call exactly once per node per poll.
  bool admit(std::uint16_t node_id);

  /// Current rung for a node.
  const LadderStep& step_for(std::uint16_t node_id) const;

  /// Decision-SNR adjustment of the node's current rung over rung 0 (dB);
  /// what a protocol-level engine adds to its modelled link SNR.
  Real snr_delta_db(std::uint16_t node_id) const;

  /// Retune a waveform-level receiver to the node's current rung.
  void apply(Receiver& rx, std::uint16_t node_id) const;

  /// Report one poll's outcome for an admitted node: whether its readings
  /// were delivered and (when delivered) the decode SNR observed.
  void observe(std::uint16_t node_id, bool delivered, Real snr_db);

  /// Fold a round's InventoryStats into the session-level exchange-success
  /// EWMA (timeouts + CRC fails vs completed exchanges).
  void observe_round(const InventoryStats& stats);

  /// Session-level exchange success EWMA in [0, 1] (1 until observed).
  Real round_quality() const { return round_quality_; }

  const NodeLinkState& state(std::uint16_t node_id) const;
  const std::map<std::uint16_t, NodeLinkState>& states() const {
    return states_;
  }
  SupervisorTotals totals() const;

  /// Checkpoint the full supervisor state (every tracked node).
  void save(dsp::ser::Writer& w) const;
  /// Restore; the tracked-node set is rebuilt from the checkpoint.
  void load(dsp::ser::Reader& r);

 private:
  NodeLinkState& mutable_state(std::uint16_t node_id);

  SupervisorConfig config_;
  std::map<std::uint16_t, NodeLinkState> states_;
  Real round_quality_ = 1.0;
};

}  // namespace ecocap::reader
