#include "reader/link_supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "reader/inventory.hpp"
#include "reader/receiver.hpp"

namespace ecocap::reader {

namespace {

[[noreturn]] void bad_field(const std::string& what) {
  throw std::invalid_argument("SupervisorConfig: " + what);
}

}  // namespace

void SupervisorConfig::validate() const {
  if (ladder.empty()) bad_field("ladder must not be empty");
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].bitrate <= 0.0) bad_field("ladder bitrate must be > 0");
    if (ladder[i].blf <= 0.0) bad_field("ladder blf must be > 0");
    if (i > 0 && ladder[i].bitrate >= ladder[i - 1].bitrate) {
      bad_field("ladder bitrates must be strictly decreasing");
    }
  }
  if (ladder.front().snr_delta_db != 0.0) {
    bad_field("ladder rung 0 must have snr_delta_db == 0");
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    bad_field("ewma_alpha must be in (0, 1]");
  }
  if (degrade_below < 0.0 || degrade_below >= 1.0) {
    bad_field("degrade_below must be in [0, 1)");
  }
  if (recover_above <= 0.0 || recover_above > 1.0) {
    bad_field("recover_above must be in (0, 1]");
  }
  if (degrade_below >= recover_above) {
    bad_field("degrade_below must be < recover_above");
  }
  if (probe_after < 1) bad_field("probe_after must be >= 1");
  if (probe_after_max < probe_after) {
    bad_field("probe_after_max must be >= probe_after");
  }
  if (quarantine_after < 1) bad_field("quarantine_after must be >= 1");
  if (reintegration_base_polls < 1) {
    bad_field("reintegration_base_polls must be >= 1");
  }
  if (reintegration_max_polls < reintegration_base_polls) {
    bad_field("reintegration_max_polls must be >= reintegration_base_polls");
  }
  if (round_slot_budget < 0) bad_field("round_slot_budget must be >= 0");
}

std::vector<LadderStep> SupervisorConfig::default_ladder() {
  // Below the Fig. 16 knee the passband capture is flat, so the gain per
  // halving is the pure 3 dB energy-per-bit term.
  return {LadderStep{4000.0, 4000.0, 0.0}, LadderStep{2000.0, 4000.0, 3.01},
          LadderStep{1000.0, 4000.0, 6.02}};
}

std::vector<LadderStep> SupervisorConfig::fig16_ladder(
    const channel::UplinkSnrModel& model, const std::vector<Real>& bitrates,
    Real blf) {
  if (bitrates.empty()) bad_field("fig16_ladder needs at least one bitrate");
  std::vector<LadderStep> ladder;
  ladder.reserve(bitrates.size());
  const Real b0 = bitrates.front();
  const Real band0 = model.snr_db(b0);
  for (Real b : bitrates) {
    LadderStep step;
    step.bitrate = b;
    step.blf = blf;
    step.snr_delta_db =
        b == b0 ? 0.0
                : 10.0 * std::log10(b0 / b) + (model.snr_db(b) - band0);
    ladder.push_back(step);
  }
  return ladder;
}

LinkSupervisor::LinkSupervisor(SupervisorConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void LinkSupervisor::track(std::uint16_t node_id) {
  auto [it, inserted] = states_.try_emplace(node_id);
  if (inserted) {
    it->second.probe_streak_needed = config_.probe_after;
  }
}

NodeLinkState& LinkSupervisor::mutable_state(std::uint16_t node_id) {
  track(node_id);
  return states_.find(node_id)->second;
}

const NodeLinkState& LinkSupervisor::state(std::uint16_t node_id) const {
  const auto it = states_.find(node_id);
  if (it == states_.end()) {
    throw std::out_of_range("LinkSupervisor: unknown node");
  }
  return it->second;
}

bool LinkSupervisor::admit(std::uint16_t node_id) {
  NodeLinkState& s = mutable_state(node_id);
  if (!s.quarantined) return true;
  if (s.quarantine_wait > 0) {
    --s.quarantine_wait;
    ++s.skipped_polls;
    return false;
  }
  ++s.reintegration_probes;
  return true;  // one probe poll; observe() decides what happens next
}

const LadderStep& LinkSupervisor::step_for(std::uint16_t node_id) const {
  const NodeLinkState& s = state(node_id);
  return config_.ladder[static_cast<std::size_t>(s.ladder_index)];
}

Real LinkSupervisor::snr_delta_db(std::uint16_t node_id) const {
  return step_for(node_id).snr_delta_db;
}

void LinkSupervisor::apply(Receiver& rx, std::uint16_t node_id) const {
  const LadderStep& step = step_for(node_id);
  rx.set_bitrate(step.bitrate);
  rx.set_blf(step.blf);
}

void LinkSupervisor::observe(std::uint16_t node_id, bool delivered,
                             Real snr_db) {
  NodeLinkState& s = mutable_state(node_id);
  const int floor = static_cast<int>(config_.ladder.size()) - 1;

  if (s.quarantined) {
    // This observation resolves a reintegration probe.
    if (delivered) {
      s.quarantined = false;
      s.reintegration_backoff = 0;
      s.quarantine_wait = 0;
      s.consecutive_ok = 1;
      s.consecutive_miss = 0;
      s.ewma_success = 1.0;  // fresh start: one success, judged from here
      ++s.reintegrations;
    } else {
      s.reintegration_backoff = std::min(s.reintegration_backoff * 2,
                                         config_.reintegration_max_polls);
      s.quarantine_wait = s.reintegration_backoff;
    }
    return;
  }

  s.ewma_success = (1.0 - config_.ewma_alpha) * s.ewma_success +
                   config_.ewma_alpha * (delivered ? 1.0 : 0.0);
  if (delivered && std::isfinite(snr_db)) {
    s.ewma_snr_db = s.has_snr ? (1.0 - config_.ewma_alpha) * s.ewma_snr_db +
                                    config_.ewma_alpha * snr_db
                              : snr_db;
    s.has_snr = true;
  }

  if (delivered) {
    ++s.consecutive_ok;
    s.consecutive_miss = 0;
    s.probing = false;  // probe confirmed: the faster rung holds

    // A delivered-but-marginal link degrades preemptively.
    if (s.has_snr && s.ewma_snr_db < config_.degrade_snr_db &&
        s.ladder_index < floor) {
      ++s.ladder_index;
      ++s.fallbacks;
      s.consecutive_ok = 0;
      s.has_snr = false;  // SNR statistics restart at the new rung
      return;
    }

    // Sustained success on a healthy link: probe one rung up.
    if (s.ladder_index > 0 && s.ewma_success >= config_.recover_above &&
        s.consecutive_ok >= s.probe_streak_needed) {
      --s.ladder_index;
      ++s.probes;
      s.probing = true;
      s.consecutive_ok = 0;
      s.has_snr = false;
    }
    return;
  }

  // Missed poll.
  ++s.consecutive_miss;
  s.consecutive_ok = 0;
  if (s.probing) {
    // The upward probe failed: revoke it immediately and back the probe
    // cadence off so the node stops oscillating at its rate ceiling.
    s.probing = false;
    ++s.ladder_index;
    ++s.failed_probes;
    s.probe_streak_needed =
        std::min(s.probe_streak_needed * 2, config_.probe_after_max);
    return;
  }
  if (s.ewma_success < config_.degrade_below && s.ladder_index < floor) {
    ++s.ladder_index;
    ++s.fallbacks;
    s.has_snr = false;
    return;
  }
  if (s.ladder_index >= floor &&
      s.consecutive_miss >= config_.quarantine_after) {
    s.quarantined = true;
    s.reintegration_backoff = config_.reintegration_base_polls;
    s.quarantine_wait = s.reintegration_backoff;
    s.consecutive_miss = 0;
    ++s.quarantines;
  }
}

void LinkSupervisor::observe_round(const InventoryStats& stats) {
  const int fails = stats.timeouts + stats.crc_fails;
  const int oks = stats.acked * 2 + stats.read_ok;
  const int total = fails + oks;
  if (total <= 0) return;
  const Real success = static_cast<Real>(oks) / static_cast<Real>(total);
  round_quality_ = (1.0 - config_.ewma_alpha) * round_quality_ +
                   config_.ewma_alpha * success;
}

SupervisorTotals LinkSupervisor::totals() const {
  SupervisorTotals t;
  for (const auto& [id, s] : states_) {
    (void)id;
    t.fallbacks += s.fallbacks;
    t.probes += s.probes;
    t.failed_probes += s.failed_probes;
    t.quarantines += s.quarantines;
    t.reintegrations += s.reintegrations;
    t.reintegration_probes += s.reintegration_probes;
    t.skipped_polls += s.skipped_polls;
  }
  return t;
}

void LinkSupervisor::save(dsp::ser::Writer& w) const {
  w.real("sup.round_quality", round_quality_);
  w.u64("sup.nodes", states_.size());
  for (const auto& [id, s] : states_) {
    w.u64("sup.node", id);
    w.i64("sup.ladder_index", s.ladder_index);
    w.real("sup.ewma_success", s.ewma_success);
    w.real("sup.ewma_snr_db", s.ewma_snr_db);
    w.u64("sup.has_snr", s.has_snr ? 1 : 0);
    w.i64("sup.consecutive_ok", s.consecutive_ok);
    w.i64("sup.consecutive_miss", s.consecutive_miss);
    w.u64("sup.probing", s.probing ? 1 : 0);
    w.i64("sup.probe_streak_needed", s.probe_streak_needed);
    w.u64("sup.quarantined", s.quarantined ? 1 : 0);
    w.i64("sup.quarantine_wait", s.quarantine_wait);
    w.i64("sup.reintegration_backoff", s.reintegration_backoff);
    w.i64("sup.fallbacks", s.fallbacks);
    w.i64("sup.probes", s.probes);
    w.i64("sup.failed_probes", s.failed_probes);
    w.i64("sup.quarantines", s.quarantines);
    w.i64("sup.reintegrations", s.reintegrations);
    w.i64("sup.reintegration_probes", s.reintegration_probes);
    w.i64("sup.skipped_polls", s.skipped_polls);
  }
}

void LinkSupervisor::load(dsp::ser::Reader& r) {
  round_quality_ = r.real("sup.round_quality");
  const std::uint64_t n = r.u64("sup.nodes");
  states_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::uint16_t>(r.u64("sup.node"));
    NodeLinkState s;
    s.ladder_index = static_cast<int>(r.i64("sup.ladder_index"));
    if (s.ladder_index < 0 ||
        s.ladder_index >= static_cast<int>(config_.ladder.size())) {
      throw std::runtime_error("checkpoint: ladder index out of range");
    }
    s.ewma_success = r.real("sup.ewma_success");
    s.ewma_snr_db = r.real("sup.ewma_snr_db");
    s.has_snr = r.u64("sup.has_snr") != 0;
    s.consecutive_ok = static_cast<int>(r.i64("sup.consecutive_ok"));
    s.consecutive_miss = static_cast<int>(r.i64("sup.consecutive_miss"));
    s.probing = r.u64("sup.probing") != 0;
    s.probe_streak_needed = static_cast<int>(r.i64("sup.probe_streak_needed"));
    s.quarantined = r.u64("sup.quarantined") != 0;
    s.quarantine_wait = static_cast<int>(r.i64("sup.quarantine_wait"));
    s.reintegration_backoff =
        static_cast<int>(r.i64("sup.reintegration_backoff"));
    s.fallbacks = static_cast<int>(r.i64("sup.fallbacks"));
    s.probes = static_cast<int>(r.i64("sup.probes"));
    s.failed_probes = static_cast<int>(r.i64("sup.failed_probes"));
    s.quarantines = static_cast<int>(r.i64("sup.quarantines"));
    s.reintegrations = static_cast<int>(r.i64("sup.reintegrations"));
    s.reintegration_probes =
        static_cast<int>(r.i64("sup.reintegration_probes"));
    s.skipped_polls = static_cast<int>(r.i64("sup.skipped_polls"));
    states_[id] = s;
  }
}

}  // namespace ecocap::reader
