#pragma once

#include <map>
#include <vector>

#include "channel/snr_models.hpp"
#include "dsp/rng.hpp"
#include "fault/fault.hpp"
#include "node/firmware.hpp"
#include "phy/protocol.hpp"

namespace ecocap::reader {

/// A node as seen by the protocol-level inventory engine: its firmware plus
/// the link quality to the reader (which decides whether its frames decode)
/// and the local environment its sensors report.
struct InventoriedNode {
  node::Firmware* firmware = nullptr;
  double snr_db = 15.0;
  node::ConcreteEnvironment environment;
};

/// One collected sensor reading.
struct SensorReading {
  std::uint16_t node_id = 0;
  std::uint8_t sensor_id = 0;
  double value = 0.0;
};

struct InventoryStats {
  int rounds = 0;
  int slots = 0;
  int empty_slots = 0;
  int collisions = 0;
  int singleton_slots = 0;
  int acked = 0;
  int read_ok = 0;
  int read_failed = 0;  // CRC failures from bit errors
  // Recovery-path counters. retries/timeouts/crc_fails/backoff_slots stay
  // zero when both the retry policy and the fault injector are absent (the
  // legacy draw path skips the classifier entirely); giveups counts nodes
  // left un-inventoried at session end regardless of policy.
  int retries = 0;        // re-queries issued after a failed exchange
  int timeouts = 0;       // exchanges where no reply arrived in time
  int crc_fails = 0;      // exchanges whose reply failed CRC / bit check
  int giveups = 0;        // nodes abandoned un-inventoried at session end
  int backoff_slots = 0;  // idle slots spent in exponential backoff
  int deadline_trips = 0; // sessions cut short by the slot-budget watchdog
};

struct InventoryResult {
  std::vector<SensorReading> readings;
  std::vector<std::uint16_t> inventoried_ids;
  InventoryStats stats;
};

/// Reader-side recovery policy for lost/corrupted replies. Disabled by
/// default: the engine then runs the exact legacy control flow (one
/// `frame_survives` draw per exchange, failures wait for the next round),
/// which keeps fault-free harness outputs bit-identical.
struct RetryPolicy {
  bool enabled = false;
  /// Re-queries attempted per exchange (RN16 / Ack / Read) before the slot
  /// is surrendered back to round-level arbitration.
  int max_retries = 3;
  /// Exponential backoff between re-queries, measured in idle slots the
  /// reader waits before re-addressing the node: base, 2x, 4x... capped.
  int backoff_base_slots = 1;
  int backoff_max_slots = 8;
  /// Session-wide retry budget; once spent, failing exchanges are given up
  /// immediately (the give-up path of the state machine).
  int giveup_budget = 64;
  /// Reader-side wait before an exchange is declared timed out. The
  /// protocol-level engine has no waveform clock, so this is a modelled
  /// constant (documented in docs/protocol.md) surfaced for the record.
  double slot_timeout_s = 0.02;

  /// Reject degenerate settings (zero/negative backoff, negative budgets)
  /// with std::invalid_argument naming the field. InventoryEngine calls
  /// this at construction so a misconfigured policy fails loudly instead
  /// of silently spinning or never retrying.
  void validate() const;
};

/// TDMA slotted-ALOHA inventory (paper §3.4: "TDMA as used in RFID Gen 2").
/// The engine runs Query/QueryRep rounds; each powered node picks a random
/// slot; singleton slots are ACKed and their sensors read. Collisions and
/// bit errors (from each node's SNR through the FM0 BER model) are retried
/// in later rounds. SHM tolerates the resulting latency — degradation takes
/// days, not seconds (§3.4). With a RetryPolicy enabled the engine also
/// recovers within a slot: timed-out or CRC-failed exchanges are re-queried
/// under bounded exponential backoff against a session give-up budget.
class InventoryEngine {
 public:
  struct Config {
    std::uint8_t q = 2;        // 2^q slots per round
    int max_rounds = 8;
    std::vector<std::uint8_t> sensors_to_read;  // sensor ids per node
    double ber_penalty_db = 0.0;
    RetryPolicy retry;
    /// Watchdog deadline for the whole session, measured in slots consumed
    /// (arbitration slots + retry-backoff idle slots). 0 = unlimited. When
    /// the budget runs out the session ends early and the remaining nodes
    /// count as give-ups — one dead node can never stall a polling round
    /// past its deadline.
    int slot_budget = 0;
  };

  /// Validates the config (see RetryPolicy::validate; also rejects a
  /// negative slot_budget). Throws std::invalid_argument.
  InventoryEngine(Config config, std::uint64_t seed);

  /// Attach a per-session fault injector (not owned; may be null). The
  /// injector's protocol-level hooks decide lost and corrupted replies on
  /// top of the SNR-derived bit-error model.
  void set_fault_injector(fault::Injector* injector) { fault_ = injector; }

  /// Run a full inventory over the given nodes.
  InventoryResult run(std::vector<InventoriedNode>& nodes);

  /// Assign staggered BLFs to already-inventoried nodes (SetBlf command).
  /// Returns the ids that acknowledged the assignment (protocol level).
  std::vector<std::uint16_t> assign_blfs(std::vector<InventoriedNode>& nodes,
                                         double base_blf, double step);

 private:
  /// Corrupt a frame according to the node's SNR; returns true when the
  /// frame survives (all bits intact or CRC catches nothing).
  bool frame_survives(const InventoriedNode& n, std::size_t bits);

  /// One protocol exchange (reply of `bits` bits) with the retry state
  /// machine wrapped around it: timeout/CRC classification, bounded
  /// exponential backoff, session give-up budget. With the policy disabled
  /// this is exactly one `frame_survives` draw.
  bool exchange_with_retry(const InventoriedNode& n, std::size_t bits,
                           InventoryStats& stats);

  Config config_;
  dsp::Rng rng_;
  fault::Injector* fault_ = nullptr;
  int retry_budget_ = 0;
};

}  // namespace ecocap::reader
