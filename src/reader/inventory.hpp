#pragma once

#include <map>
#include <vector>

#include "channel/snr_models.hpp"
#include "dsp/rng.hpp"
#include "node/firmware.hpp"
#include "phy/protocol.hpp"

namespace ecocap::reader {

/// A node as seen by the protocol-level inventory engine: its firmware plus
/// the link quality to the reader (which decides whether its frames decode)
/// and the local environment its sensors report.
struct InventoriedNode {
  node::Firmware* firmware = nullptr;
  double snr_db = 15.0;
  node::ConcreteEnvironment environment;
};

/// One collected sensor reading.
struct SensorReading {
  std::uint16_t node_id = 0;
  std::uint8_t sensor_id = 0;
  double value = 0.0;
};

struct InventoryStats {
  int rounds = 0;
  int slots = 0;
  int empty_slots = 0;
  int collisions = 0;
  int singleton_slots = 0;
  int acked = 0;
  int read_ok = 0;
  int read_failed = 0;  // CRC failures from bit errors
};

struct InventoryResult {
  std::vector<SensorReading> readings;
  std::vector<std::uint16_t> inventoried_ids;
  InventoryStats stats;
};

/// TDMA slotted-ALOHA inventory (paper §3.4: "TDMA as used in RFID Gen 2").
/// The engine runs Query/QueryRep rounds; each powered node picks a random
/// slot; singleton slots are ACKed and their sensors read. Collisions and
/// bit errors (from each node's SNR through the FM0 BER model) are retried
/// in later rounds. SHM tolerates the resulting latency — degradation takes
/// days, not seconds (§3.4).
class InventoryEngine {
 public:
  struct Config {
    std::uint8_t q = 2;        // 2^q slots per round
    int max_rounds = 8;
    std::vector<std::uint8_t> sensors_to_read;  // sensor ids per node
    double ber_penalty_db = 0.0;
  };

  InventoryEngine(Config config, std::uint64_t seed);

  /// Run a full inventory over the given nodes.
  InventoryResult run(std::vector<InventoriedNode>& nodes);

  /// Assign staggered BLFs to already-inventoried nodes (SetBlf command).
  /// Returns the ids that acknowledged the assignment (protocol level).
  std::vector<std::uint16_t> assign_blfs(std::vector<InventoriedNode>& nodes,
                                         double base_blf, double step);

 private:
  /// Corrupt a frame according to the node's SNR; returns true when the
  /// frame survives (all bits intact or CRC catches nothing).
  bool frame_survives(const InventoriedNode& n, std::size_t bits);

  Config config_;
  dsp::Rng rng_;
};

}  // namespace ecocap::reader
