#pragma once

#include <limits>
#include <optional>
#include <span>

#include "dsp/types.hpp"
#include "dsp/workspace.hpp"
#include "phy/fm0.hpp"

namespace ecocap::reader {

using dsp::Real;
using dsp::Signal;

/// The reader's receive chain (paper §5.1): the bare receiving PZT samples
/// the wall (1 MS/s oscilloscope in the prototype; here `fs`), and the
/// decoder performs carrier estimation, digital downconversion,
/// self-interference rejection, optional BLF subcarrier demodulation, and
/// maximum-likelihood FM0 decoding — the MATLAB pipeline, in C++.
struct ReceiverConfig {
  Real fs = 2.0e6;
  Real carrier_search_lo = 150.0e3;  // Hz band for carrier estimation
  Real carrier_search_hi = 300.0e3;
  Real blf = 4000.0;      // expected backscatter link frequency (0 = none)
  phy::Fm0Params uplink;  // expected line coding
  Real min_preamble_corr = 0.45;
  std::size_t lowpass_taps = 129;
};

/// Decoded uplink frame plus quality metrics.
struct UplinkDecode {
  phy::Bits payload;
  bool valid = false;
  Real carrier_estimate = 0.0;   // Hz
  Real preamble_correlation = 0.0;
  /// Decision-domain SNR estimate; NaN until a frame is validly decoded
  /// and scored (a truncated frame is rejected, never scored as 0 dB).
  Real snr_db = std::numeric_limits<Real>::quiet_NaN();
  /// Arrival time of the frame preamble within the capture (seconds). With
  /// a delay-preserving channel this carries the round-trip time of flight
  /// used for node ranging.
  Real frame_start_s = 0.0;
};

class Receiver {
 public:
  explicit Receiver(ReceiverConfig config = {});

  /// Full pipeline on a captured waveform; decodes `payload_bits` data bits
  /// that follow the FM0 preamble.
  UplinkDecode decode(std::span<const Real> rx, std::size_t payload_bits) const;

  /// Workspace-backed decode: every intermediate stage buffer (complex
  /// baseband, decimated rails, aligned real baseband, per-phase demod) is
  /// leased from `ws` instead of heap-allocated per call. Bit-identical to
  /// the plain overload.
  UplinkDecode decode(std::span<const Real> rx, std::size_t payload_bits,
                      dsp::Workspace& ws) const;

  /// The demodulated bipolar baseband before FM0 slicing (diagnostics,
  /// Fig. 22 reproduction).
  Signal demodulated_baseband(std::span<const Real> rx) const;

  const ReceiverConfig& config() const { return config_; }
  void set_blf(Real blf) { config_.blf = blf; }
  void set_bitrate(Real bitrate) { config_.uplink.bitrate = bitrate; }

 private:
  /// Mix to complex baseband at the estimated carrier and low-pass, into a
  /// caller-provided buffer. The mixer scratch is leased from `ws`.
  void to_baseband(std::span<const Real> rx, Real carrier,
                   dsp::Workspace& ws, dsp::ComplexSignal& out) const;
  /// Project the complex baseband onto its principal phase axis.
  void phase_align(const dsp::ComplexSignal& z, Signal& out) const;

  ReceiverConfig config_;
};

}  // namespace ecocap::reader
