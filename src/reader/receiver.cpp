#include "reader/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "dsp/biquad.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fast_convolve.hpp"
#include "dsp/fft.hpp"
#include "dsp/filter_cache.hpp"
#include "dsp/fir.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/carrier.hpp"

namespace ecocap::reader {

Receiver::Receiver(ReceiverConfig config) : config_(config) {}

void Receiver::to_baseband(std::span<const Real> rx, Real carrier,
                           dsp::Workspace& ws, dsp::ComplexSignal& out) const {
  auto z = ws.cplx(0);
  dsp::mix_down(rx, config_.fs, carrier, *z);
  // Low-pass both rails: wide enough for the subcarrier + data sidebands.
  // The design is cached process-wide (every decode used to redesign the
  // identical windowed sinc) and the complex baseband is filtered in one
  // pass instead of splitting into separate re/im buffers and back.
  const Real cutoff =
      std::max(2.5 * config_.uplink.bitrate + config_.blf, 8.0e3);
  const std::shared_ptr<const Signal> h = dsp::FilterCache::shared().lowpass(
      config_.fs, cutoff, config_.lowpass_taps);
  dsp::filter_zero_phase(*h, *z, out);
}

void Receiver::phase_align(const dsp::ComplexSignal& z, Signal& out) const {
  // The self-interference shows up as a (large) DC offset in the complex
  // baseband; remove the mean first, then project onto the principal phase
  // axis (0.5 * arg of the sum of squares).
  dsp::Complex mean(0.0, 0.0);
  for (const auto& v : z) mean += v;
  mean /= static_cast<Real>(std::max<std::size_t>(z.size(), 1));

  dsp::Complex sq(0.0, 0.0);
  for (const auto& v : z) {
    const dsp::Complex d = v - mean;
    sq += d * d;
  }
  const Real theta = 0.5 * std::arg(sq);
  const dsp::Complex rot = std::polar<Real>(1.0, -theta);
  out.resize(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    out[i] = ((z[i] - mean) * rot).real();
  }
}

namespace {

/// DC-block the complex baseband: the CBW self-interference lands within a
/// few Hz of the estimated carrier (never exactly at it), so after mixing it
/// is a slowly rotating, very large phasor. The BLF guard band (Appendix C)
/// exists precisely so this can be filtered: subtract a one-pole low-pass
/// track of each rail.
void dc_block(dsp::ComplexSignal& z, Real fs, Real cutoff,
              dsp::Workspace& ws) {
  dsp::OnePoleLowpass re_lp(fs, cutoff);
  dsp::OnePoleLowpass im_lp(fs, cutoff);
  // Prime the trackers with the initial mean so the transient is short.
  dsp::Complex mean(0.0, 0.0);
  const std::size_t warm = std::min<std::size_t>(z.size(), 256);
  for (std::size_t i = 0; i < warm; ++i) mean += z[i];
  if (warm > 0) mean /= static_cast<Real>(warm);
  // Settle the trackers for ~5 time constants of the one-pole (tau = fs /
  // (2 pi fc) samples) before the first real sample, whatever the cutoff; a
  // fixed count under-settles low cutoffs and leaves a DC residue on the
  // first symbols. Feeding a constant for `settle` steps from a zero state
  // has the closed form state = mean * (1 - (1-alpha)^settle), which
  // replaces the old up-to-65536-iteration warm-up loop.
  const Real tau_samples = fs / (dsp::kTwoPi * std::max(cutoff, 1e-6));
  const Real settle = std::min<Real>(5.0 * tau_samples + 1.0, 65536.0);
  const Real settled =
      1.0 - std::pow(1.0 - re_lp.alpha(), std::floor(settle));
  re_lp.set_state(mean.real() * settled);
  im_lp.set_state(mean.imag() * settled);
  // Deinterleave the rails into workspace buffers so the tracker runs as
  // two batch one-pole kernel passes instead of per-sample calls.
  auto re = ws.real(z.size());
  auto im = ws.real(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    (*re)[i] = z[i].real();
    (*im)[i] = z[i].imag();
  }
  re_lp.process(*re, *re);  // in-place: kernel reads each block first
  im_lp.process(*im, *im);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = dsp::Complex(z[i].real() - (*re)[i], z[i].imag() - (*im)[i]);
  }
}

/// Decimation factor bringing the baseband down to a rate that still holds
/// >= 8 samples per subcarrier period and >= 16 per data bit.
std::size_t pick_decimation(Real fs, Real blf, Real bitrate) {
  Real fs2 = std::max({8.0 * blf, 16.0 * bitrate, 8.0e3});
  const auto m = static_cast<std::size_t>(std::max(1.0, std::floor(fs / fs2)));
  return m;
}

/// Decision-domain SNR of a decoded FM0 frame: integrate each half-bit of
/// the demodulated baseband, fit the bipolar amplitude, and compare the
/// residual scatter against it. Returns nullopt when the frame extends past
/// the demod buffer — a truncated frame has no meaningful SNR, and the old
/// 0.0 dB sentinel was indistinguishable from a genuine 0 dB measurement.
std::optional<Real> decision_snr_db(std::span<const Real> demod,
                                    std::size_t frame_start,
                                    const phy::Bits& all_bits, Real spb) {
  // Expected half-bit levels from the FM0 state machine.
  std::vector<Real> expected;
  Real level = 1.0;
  for (auto bit : all_bits) {
    level = -level;
    expected.push_back(level);
    if ((bit & 1u) == 0u) level = -level;
    expected.push_back(level);
  }
  std::vector<Real> sums;
  sums.reserve(expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const auto lo = frame_start + static_cast<std::size_t>(
                                      std::llround(spb * 0.5 * static_cast<Real>(k)));
    const auto hi = frame_start + static_cast<std::size_t>(std::llround(
                                      spb * 0.5 * static_cast<Real>(k + 1)));
    if (hi > demod.size()) return std::nullopt;
    Real acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += demod[i];
    sums.push_back(acc / std::max<Real>(static_cast<Real>(hi - lo), 1.0));
  }
  // Least-squares bipolar amplitude and residual variance.
  Real num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < sums.size(); ++k) {
    num += sums[k] * expected[k];
    den += expected[k] * expected[k];
  }
  const Real a = (den > 0.0) ? num / den : 0.0;
  Real var = 0.0;
  for (std::size_t k = 0; k < sums.size(); ++k) {
    const Real r = sums[k] - a * expected[k];
    var += r * r;
  }
  var /= std::max<Real>(static_cast<Real>(sums.size()), 1.0);
  if (var <= 0.0) return 60.0;
  return dsp::to_db(a * a / var);
}

}  // namespace

Signal Receiver::demodulated_baseband(std::span<const Real> rx) const {
  const Real carrier = dsp::estimate_tone_frequency(
      rx, config_.fs, config_.carrier_search_lo, config_.carrier_search_hi);
  dsp::Workspace ws;
  auto z = ws.cplx(0);
  to_baseband(rx, carrier, ws, *z);
  Signal out;
  phase_align(*z, out);
  return out;
}

UplinkDecode Receiver::decode(std::span<const Real> rx,
                              std::size_t payload_bits) const {
  dsp::Workspace ws;
  return decode(rx, payload_bits, ws);
}

UplinkDecode Receiver::decode(std::span<const Real> rx,
                              std::size_t payload_bits,
                              dsp::Workspace& ws) const {
  UplinkDecode best;
  if (rx.empty()) return best;

  best.carrier_estimate = dsp::estimate_tone_frequency(
      rx, config_.fs, config_.carrier_search_lo, config_.carrier_search_hi);
  auto z = ws.cplx(0);
  to_baseband(rx, best.carrier_estimate, ws, *z);

  // Decimate the filtered complex baseband, then phase-align.
  const std::size_t m =
      pick_decimation(config_.fs, config_.blf, config_.uplink.bitrate);
  auto zd = ws.cplx(0);
  zd->reserve(z->size() / m + 1);
  for (std::size_t i = 0; i < z->size(); i += m) zd->push_back((*z)[i]);
  z.release();  // the full-rate baseband is no longer needed
  const Real fs2 = config_.fs / static_cast<Real>(m);
  // Carve out the residual self-interference near DC; the data sits at
  // +-BLF (or, without a subcarrier, around the DC-free FM0 band).
  const Real dc_cutoff = (config_.blf > 0.0)
                             ? std::max(300.0, 0.1 * config_.blf)
                             : std::max(50.0, 0.05 * config_.uplink.bitrate);
  dc_block(*zd, fs2, dc_cutoff, ws);
  auto r = ws.real(0);
  phase_align(*zd, *r);
  zd.release();

  // With a BLF subcarrier the switching waveform is fm0 XOR square; search
  // the subcarrier phase at the decimated rate.
  std::size_t period2 = 1;
  int phase_steps = 1;
  if (config_.blf > 0.0) {
    period2 = static_cast<std::size_t>(std::max(2.0, fs2 / config_.blf));
    phase_steps = static_cast<int>(std::min<std::size_t>(period2, 16));
  }

  auto demod_lease = ws.real(0);
  for (int p = 0; p < phase_steps; ++p) {
    // Without a subcarrier there is a single phase and the demodulated
    // baseband IS the aligned baseband; with one, the subcarrier square is
    // synthesized inline (same fmod arithmetic as blf_square) and multiplied
    // into the reused demod buffer.
    std::span<const Real> demod(*r);
    if (config_.blf > 0.0) {
      const std::size_t offset = period2 * static_cast<std::size_t>(p) /
                                 static_cast<std::size_t>(phase_steps);
      const Real period = fs2 / config_.blf;
      demod_lease->resize(r->size());
      for (std::size_t i = 0; i < r->size(); ++i) {
        const Real t =
            std::fmod(static_cast<Real>(i + offset), period) / period;
        (*demod_lease)[i] = (*r)[i] * ((t < 0.5) ? 1.0 : -1.0);
      }
      demod = std::span<const Real>(*demod_lease);
    }
    const phy::Fm0FrameDecode fd =
        phy::fm0_decode_frame(demod, config_.uplink, fs2, payload_bits,
                              config_.min_preamble_corr, ws);
    if (fd.preamble_correlation > best.preamble_correlation) {
      best.preamble_correlation = fd.preamble_correlation;
      if (!fd.payload.empty()) {
        phy::Bits all = phy::fm0_preamble(config_.uplink);
        all.insert(all.end(), fd.payload.begin(), fd.payload.end());
        const std::optional<Real> snr = decision_snr_db(
            demod, fd.frame_start, all, fs2 / config_.uplink.bitrate);
        // A frame that runs past the capture has no scoreable decision
        // statistics: reject it rather than reporting a fake 0 dB.
        if (snr) {
          best.payload = fd.payload;
          best.valid = true;
          best.frame_start_s = static_cast<Real>(fd.frame_start) / fs2;
          best.snr_db = *snr;
        }
      }
    }
  }
  return best;
}

}  // namespace ecocap::reader
