#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/serialize.hpp"

namespace ecocap::fault {

namespace {
/// Salt separating the injector's stream from the channel/node/protocol
/// streams derived from the same base seed.
constexpr std::uint64_t kFaultSalt = 0xfa017ec7a1a5ull;
}  // namespace

FaultPlan FaultPlan::at_intensity(Real intensity) {
  const Real x = std::clamp(intensity, 0.0, 1.0);
  FaultPlan p;
  if (x <= 0.0) return p;  // exactly the empty plan
  p.channel.burst_prob = 0.5 * x;
  p.channel.burst_sigma = 0.02 + 0.10 * x;
  p.channel.burst_fraction = 0.15;
  p.channel.dropout_prob = 0.3 * x;
  p.channel.dropout_fraction = 0.25;
  p.channel.clock_drift_ppm = 200.0 * x;
  p.channel.spike_rate_hz = 2000.0 * x;
  p.channel.spike_amplitude = 0.5 * x;
  p.node.brownout_prob = 0.15 * x;
  p.node.cap_leak_amps = 20.0e-6 * x;
  p.node.bit_flip_prob = 0.3 * x;
  p.reader.adc_clip_level = 0.0;  // clip is opt-in; it needs calibration
  return p;
}

FaultPlan FaultPlan::seismic_shaking(Real pga) {
  const Real g = std::clamp(pga, 0.0, 2.0);
  FaultPlan p;
  if (g <= 0.0) return p;  // exactly the empty plan
  // Ground motion rattles everything at once: rebar scatter turns
  // impulsive, the PA coupling drops in and out, and racked capsules see
  // supply dips. Scaled so PGA 1 m/s^2 is a rough site and 2 is severe.
  p.channel.spike_rate_hz = 4000.0 * g;
  p.channel.spike_amplitude = 0.4 * g;
  p.channel.dropout_prob = std::min<Real>(0.25 * g, 0.6);
  p.channel.dropout_fraction = 0.3;
  p.node.brownout_prob = std::min<Real>(0.10 * g, 0.4);
  return p;
}

FaultPlan FaultPlan::max_of(const FaultPlan& a, const FaultPlan& b) {
  FaultPlan p;
  p.channel.burst_prob = std::max(a.channel.burst_prob, b.channel.burst_prob);
  p.channel.burst_sigma = std::max(a.channel.burst_sigma, b.channel.burst_sigma);
  p.channel.burst_fraction =
      std::max(a.channel.burst_fraction, b.channel.burst_fraction);
  p.channel.dropout_prob =
      std::max(a.channel.dropout_prob, b.channel.dropout_prob);
  p.channel.dropout_fraction =
      std::max(a.channel.dropout_fraction, b.channel.dropout_fraction);
  p.channel.clock_drift_ppm =
      std::max(a.channel.clock_drift_ppm, b.channel.clock_drift_ppm);
  p.channel.spike_rate_hz =
      std::max(a.channel.spike_rate_hz, b.channel.spike_rate_hz);
  p.channel.spike_amplitude =
      std::max(a.channel.spike_amplitude, b.channel.spike_amplitude);
  p.node.brownout_prob = std::max(a.node.brownout_prob, b.node.brownout_prob);
  p.node.cap_leak_amps = std::max(a.node.cap_leak_amps, b.node.cap_leak_amps);
  p.node.bit_flip_prob = std::max(a.node.bit_flip_prob, b.node.bit_flip_prob);
  p.reader.adc_clip_level =
      std::max(a.reader.adc_clip_level, b.reader.adc_clip_level);
  p.runtime.crash_prob = std::max(a.runtime.crash_prob, b.runtime.crash_prob);
  p.runtime.stall_prob = std::max(a.runtime.stall_prob, b.runtime.stall_prob);
  p.runtime.stall_polls_min =
      std::max(a.runtime.stall_polls_min, b.runtime.stall_polls_min);
  p.runtime.stall_polls_max =
      std::max(a.runtime.stall_polls_max, b.runtime.stall_polls_max);
  p.runtime.throttle_prob =
      std::max(a.runtime.throttle_prob, b.runtime.throttle_prob);
  return p;
}

void save_plan(dsp::ser::Writer& w, const FaultPlan& p) {
  w.real("fp.burst_prob", p.channel.burst_prob);
  w.real("fp.burst_sigma", p.channel.burst_sigma);
  w.real("fp.burst_fraction", p.channel.burst_fraction);
  w.real("fp.dropout_prob", p.channel.dropout_prob);
  w.real("fp.dropout_fraction", p.channel.dropout_fraction);
  w.real("fp.clock_drift_ppm", p.channel.clock_drift_ppm);
  w.real("fp.spike_rate_hz", p.channel.spike_rate_hz);
  w.real("fp.spike_amplitude", p.channel.spike_amplitude);
  w.real("fp.brownout_prob", p.node.brownout_prob);
  w.real("fp.cap_leak_amps", p.node.cap_leak_amps);
  w.real("fp.bit_flip_prob", p.node.bit_flip_prob);
  w.real("fp.adc_clip_level", p.reader.adc_clip_level);
  w.real("fp.crash_prob", p.runtime.crash_prob);
  w.real("fp.stall_prob", p.runtime.stall_prob);
  w.i64("fp.stall_polls_min", p.runtime.stall_polls_min);
  w.i64("fp.stall_polls_max", p.runtime.stall_polls_max);
  w.real("fp.throttle_prob", p.runtime.throttle_prob);
}

FaultPlan load_plan(dsp::ser::Reader& r) {
  FaultPlan p;
  p.channel.burst_prob = r.real("fp.burst_prob");
  p.channel.burst_sigma = r.real("fp.burst_sigma");
  p.channel.burst_fraction = r.real("fp.burst_fraction");
  p.channel.dropout_prob = r.real("fp.dropout_prob");
  p.channel.dropout_fraction = r.real("fp.dropout_fraction");
  p.channel.clock_drift_ppm = r.real("fp.clock_drift_ppm");
  p.channel.spike_rate_hz = r.real("fp.spike_rate_hz");
  p.channel.spike_amplitude = r.real("fp.spike_amplitude");
  p.node.brownout_prob = r.real("fp.brownout_prob");
  p.node.cap_leak_amps = r.real("fp.cap_leak_amps");
  p.node.bit_flip_prob = r.real("fp.bit_flip_prob");
  p.reader.adc_clip_level = r.real("fp.adc_clip_level");
  p.runtime.crash_prob = r.real("fp.crash_prob");
  p.runtime.stall_prob = r.real("fp.stall_prob");
  p.runtime.stall_polls_min = static_cast<int>(r.i64("fp.stall_polls_min"));
  p.runtime.stall_polls_max = static_cast<int>(r.i64("fp.stall_polls_max"));
  p.runtime.throttle_prob = r.real("fp.throttle_prob");
  return p;
}

Injector::Injector(const FaultPlan& plan, std::uint64_t base_seed,
                   std::uint64_t trial)
    : plan_(plan),
      rng_(dsp::trial_seed(base_seed ^ kFaultSalt, trial)) {}

void Injector::corrupt_waveform(Signal& x, Real fs) {
  const ChannelFaultPlan& c = plan_.channel;
  if (c.empty() || x.empty() || fs <= 0.0) return;

  // Burst noise window.
  if (c.burst_prob > 0.0 && rng_.chance(c.burst_prob)) {
    ++counters_.bursts;
    const auto len = static_cast<std::size_t>(
        std::max<Real>(1.0, c.burst_fraction * static_cast<Real>(x.size())));
    const std::size_t start =
        x.size() > len ? rng_.index(x.size() - len + 1) : 0;
    const std::size_t end = std::min(x.size(), start + len);
    for (std::size_t i = start; i < end; ++i) {
      x[i] += rng_.gaussian(c.burst_sigma);
    }
  }

  // Carrier dropout window.
  if (c.dropout_prob > 0.0 && rng_.chance(c.dropout_prob)) {
    ++counters_.dropouts;
    const auto len = static_cast<std::size_t>(
        std::max<Real>(1.0, c.dropout_fraction * static_cast<Real>(x.size())));
    const std::size_t start =
        x.size() > len ? rng_.index(x.size() - len + 1) : 0;
    const std::size_t end = std::min(x.size(), start + len);
    std::fill(x.begin() + static_cast<std::ptrdiff_t>(start),
              x.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
  }

  // Impulsive rebar-scatter spikes: Poisson count over the waveform span.
  if (c.spike_rate_hz > 0.0 && c.spike_amplitude > 0.0) {
    const Real span_s = static_cast<Real>(x.size()) / fs;
    const int n = rng_.poisson(c.spike_rate_hz * span_s);
    for (int k = 0; k < n; ++k) {
      const std::size_t i = rng_.index(x.size());
      x[i] += rng_.chance(0.5) ? c.spike_amplitude : -c.spike_amplitude;
      ++counters_.spikes;
    }
  }
}

Real Injector::clock_drift_factor() {
  if (plan_.channel.clock_drift_ppm <= 0.0) return 1.0;
  if (drift_factor_ == 0.0) {
    const Real ppm = plan_.channel.clock_drift_ppm;
    drift_factor_ = 1.0 + rng_.uniform(-ppm, ppm) * 1.0e-6;
  }
  return drift_factor_;
}

bool Injector::brownout_aborts_frame() {
  if (plan_.node.brownout_prob <= 0.0) return false;
  const bool hit = rng_.chance(plan_.node.brownout_prob);
  if (hit) ++counters_.brownouts;
  return hit;
}

Real Injector::brownout_cut() {
  // Uniform in (0.05, 0.95): the frame always loses a meaningful tail but
  // some preamble energy still leaves the node.
  return rng_.uniform(0.05, 0.95);
}

void Injector::corrupt_frame_bits(phy::Bits& payload) {
  if (plan_.node.bit_flip_prob <= 0.0 || payload.empty()) return;
  if (!rng_.chance(plan_.node.bit_flip_prob)) return;
  const std::size_t i = rng_.index(payload.size());
  payload[i] ^= 1u;
  ++counters_.bit_flips;
}

void Injector::clip_adc(Signal& x) {
  const Real level = plan_.reader.adc_clip_level;
  if (level <= 0.0) return;
  for (Real& v : x) {
    if (v > level) {
      v = level;
      ++counters_.clipped_samples;
    } else if (v < -level) {
      v = -level;
      ++counters_.clipped_samples;
    }
  }
}

bool Injector::reply_lost() {
  // Dropout windows and mid-frame brownouts both read as a lost reply at
  // the protocol level; combine their probabilities as independent events.
  const Real p = 1.0 - (1.0 - std::clamp(plan_.channel.dropout_prob, 0.0, 1.0)) *
                           (1.0 - std::clamp(plan_.node.brownout_prob, 0.0, 1.0));
  if (p <= 0.0) return false;
  const bool hit = rng_.chance(p);
  if (hit) ++counters_.replies_lost;
  return hit;
}

bool Injector::reply_corrupted() {
  const Real p = plan_.node.bit_flip_prob;
  if (p <= 0.0) return false;
  const bool hit = rng_.chance(p);
  if (hit) ++counters_.replies_corrupted;
  return hit;
}

bool Injector::runtime_crash() {
  if (plan_.runtime.crash_prob <= 0.0) return false;
  const bool hit = rng_.chance(plan_.runtime.crash_prob);
  if (hit) ++counters_.crashes_injected;
  return hit;
}

int Injector::runtime_stall_polls() {
  const RuntimeFaultPlan& rt = plan_.runtime;
  if (rt.stall_prob <= 0.0) return 0;
  if (!rng_.chance(rt.stall_prob)) return 0;
  ++counters_.stalls_injected;
  const int lo = std::max(1, rt.stall_polls_min);
  const int hi = std::max(lo, rt.stall_polls_max);
  return lo + static_cast<int>(rng_.index(static_cast<std::size_t>(hi - lo + 1)));
}

bool Injector::runtime_throttled() {
  if (plan_.runtime.throttle_prob <= 0.0) return false;
  const bool hit = rng_.chance(plan_.runtime.throttle_prob);
  if (hit) ++counters_.throttles_injected;
  return hit;
}

void Injector::save(dsp::ser::Writer& w) const {
  w.rng("inj.rng", rng_);
  w.real("inj.drift", drift_factor_);
  w.i64("inj.bursts", counters_.bursts);
  w.i64("inj.dropouts", counters_.dropouts);
  w.i64("inj.spikes", counters_.spikes);
  w.i64("inj.brownouts", counters_.brownouts);
  w.i64("inj.bit_flips", counters_.bit_flips);
  w.i64("inj.clipped", counters_.clipped_samples);
  w.i64("inj.replies_lost", counters_.replies_lost);
  w.i64("inj.replies_corrupted", counters_.replies_corrupted);
  w.i64("inj.crashes", counters_.crashes_injected);
  w.i64("inj.stalls", counters_.stalls_injected);
  w.i64("inj.throttles", counters_.throttles_injected);
}

void Injector::load(dsp::ser::Reader& r) {
  r.rng("inj.rng", rng_);
  drift_factor_ = r.real("inj.drift");
  counters_.bursts = static_cast<int>(r.i64("inj.bursts"));
  counters_.dropouts = static_cast<int>(r.i64("inj.dropouts"));
  counters_.spikes = static_cast<int>(r.i64("inj.spikes"));
  counters_.brownouts = static_cast<int>(r.i64("inj.brownouts"));
  counters_.bit_flips = static_cast<int>(r.i64("inj.bit_flips"));
  counters_.clipped_samples = static_cast<int>(r.i64("inj.clipped"));
  counters_.replies_lost = static_cast<int>(r.i64("inj.replies_lost"));
  counters_.replies_corrupted =
      static_cast<int>(r.i64("inj.replies_corrupted"));
  counters_.crashes_injected = static_cast<int>(r.i64("inj.crashes"));
  counters_.stalls_injected = static_cast<int>(r.i64("inj.stalls"));
  counters_.throttles_injected = static_cast<int>(r.i64("inj.throttles"));
}

}  // namespace ecocap::fault
