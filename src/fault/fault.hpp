#pragma once

#include <cstdint>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "phy/bits.hpp"

namespace ecocap::dsp::ser {
class Writer;
class Reader;
}  // namespace ecocap::dsp::ser

namespace ecocap::fault {

using dsp::Real;
using dsp::Signal;

/// Deterministic, seed-driven fault injection for the reader <-> capsule
/// pipeline (paper §5: the evaluation lives where things go wrong — cold
/// start brownouts, collision slots, self-interference, rebar scatter).
///
/// A FaultPlan is pure configuration; an Injector binds a plan to a
/// (base seed, trial index) pair and draws every fault decision from its
/// OWN splitmix64-derived stream. Two consequences:
///  * an empty plan is perfectly inert — no hook consumes a single RNG
///    draw, so the fault-free pipeline stays bit-identical to a build
///    without the fault layer at any ECOCAP_THREADS;
///  * fault realizations depend only on (plan, seed, trial), never on
///    which worker runs the trial, so faulted Monte-Carlo aggregates are
///    bit-reproducible across thread counts too.

/// Channel-layer impairments, applied to the propagated waveform.
struct ChannelFaultPlan {
  /// Probability that a leg (downlink or uplink pass) carries a burst-noise
  /// window: `burst_fraction` of the waveform gets `burst_sigma` of extra
  /// AWGN on top of the channel's own floor (machinery impact, §5 site
  /// noise).
  Real burst_prob = 0.0;
  Real burst_sigma = 0.05;
  Real burst_fraction = 0.15;
  /// Probability of a carrier dropout window: a contiguous
  /// `dropout_fraction` of the waveform is zeroed (reader PA brown-out /
  /// transducer decoupling).
  Real dropout_prob = 0.0;
  Real dropout_fraction = 0.2;
  /// Node clock drift: the capsule's RC timebase mis-runs by a uniform
  /// factor in [-ppm, +ppm], skewing its BLF and bitrate against the
  /// reader's nominal expectation.
  Real clock_drift_ppm = 0.0;
  /// Impulsive spikes from rebar scatter (§3.5): a Poisson process of
  /// `spike_rate_hz` isolated samples of amplitude `spike_amplitude`.
  Real spike_rate_hz = 0.0;
  Real spike_amplitude = 0.0;

  bool empty() const {
    return burst_prob <= 0.0 && dropout_prob <= 0.0 &&
           clock_drift_ppm <= 0.0 && spike_rate_hz <= 0.0;
  }
};

/// Node-layer impairments.
struct NodeFaultPlan {
  /// Probability that the node browns out mid-frame while backscattering:
  /// the emission truncates at a uniform position and the MCU loses state
  /// (the cold-start regime of Fig. 14 hitting during an interrogation).
  Real brownout_prob = 0.0;
  /// Extra storage-cap leakage, as a constant parasitic load current (A)
  /// on top of the MCU draw — ages the Fig. 14 charge curve.
  Real cap_leak_amps = 0.0;
  /// Probability that a scheduled uplink frame suffers a single bit flip
  /// in node memory before transmission. The flip lands anywhere in the
  /// encoded payload (which already carries its CRC), so the reader's CRC
  /// check catches it — the CRC-fail re-query path.
  Real bit_flip_prob = 0.0;

  bool empty() const {
    return brownout_prob <= 0.0 && cap_leak_amps <= 0.0 &&
           bit_flip_prob <= 0.0;
  }
};

/// Reader-layer impairments.
struct ReaderFaultPlan {
  /// ADC full-scale clip level: samples beyond +-level saturate (0 = off).
  /// Models the §3.4 regime where the 10x self-interference rides the
  /// backscatter into the converter's rails.
  Real adc_clip_level = 0.0;

  bool empty() const { return adc_clip_level <= 0.0; }
};

/// Runtime-layer (process-level) chaos: faults that hit the *daemon*, not
/// the waveform. One draw per hook per poll, so a chaos run is exactly as
/// replayable as a signal-fault run — the DaemonSupervisor's per-daemon
/// injector realizes the same crash/stall schedule on every replay of
/// (plan, seed, daemon index).
struct RuntimeFaultPlan {
  /// Probability (per poll) that the daemon "crashes": its thread throws
  /// after the poll completes, and the supervisor must restart it from its
  /// last checkpoint.
  Real crash_prob = 0.0;
  /// Probability (per poll) that the pipeline stalls — the daemon goes
  /// silent (no heartbeat, no progress) for a drawn number of polls, which
  /// is what the watchdog's hung-daemon detection has to catch.
  Real stall_prob = 0.0;
  int stall_polls_min = 1;
  int stall_polls_max = 3;
  /// Probability (per poll) that the telemetry consumer is throttled —
  /// the collector stops draining the daemon's event ring for one poll, so
  /// sustained overload exercises the ring's overflow policy.
  Real throttle_prob = 0.0;

  bool empty() const {
    return crash_prob <= 0.0 && stall_prob <= 0.0 && throttle_prob <= 0.0;
  }
};

struct FaultPlan {
  ChannelFaultPlan channel;
  NodeFaultPlan node;
  ReaderFaultPlan reader;
  RuntimeFaultPlan runtime;

  bool empty() const {
    return channel.empty() && node.empty() && reader.empty() &&
           runtime.empty();
  }

  /// Canonical single-knob plan for sweeps: every impairment scales
  /// linearly with `intensity` in [0, 1]. intensity 0 is the empty plan;
  /// 1 is a hostile site (bursty noise, frequent dropouts, leaky caps).
  static FaultPlan at_intensity(Real intensity);

  /// Seismic-shaking plan (the scenario layer's ground-motion event kind):
  /// during shaking the structure rings with impulsive rebar scatter, the
  /// reader PA sees transient decoupling dropouts, and racked capsules
  /// brown out more often. `pga` is the instantaneous peak ground
  /// acceleration in m/s^2 (typical scenario range 0..~1); 0 is the empty
  /// plan.
  static FaultPlan seismic_shaking(Real pga);

  /// Field-wise maximum of two plans — the composition rule for
  /// overlapping scenario fault windows, where the harsher impairment of
  /// each kind wins. max_of(p, empty) == p.
  static FaultPlan max_of(const FaultPlan& a, const FaultPlan& b);
};

/// Checkpoint round trip of a plan's full field set. A checkpoint that
/// carries the live plan can rebuild injectors with the exact fault
/// configuration a mid-run `set_fault_plan` swapped in.
void save_plan(dsp::ser::Writer& w, const FaultPlan& p);
FaultPlan load_plan(dsp::ser::Reader& r);

/// Per-trial fault source. Cheap to construct; all hooks are no-ops (zero
/// draws) when the plan is empty.
class Injector {
 public:
  /// Inert injector (empty plan).
  Injector() : Injector(FaultPlan{}, 0, 0) {}

  /// Bind `plan` to trial `trial` of an experiment seeded `base_seed`.
  /// The internal stream is salted so it never collides with the
  /// channel/node/protocol streams derived from the same base seed.
  Injector(const FaultPlan& plan, std::uint64_t base_seed,
           std::uint64_t trial = 0);

  bool active() const { return !plan_.empty(); }
  const FaultPlan& plan() const { return plan_; }

  /// Realized fault counts, for stats surfacing and tests.
  struct Counters {
    int bursts = 0;
    int dropouts = 0;
    int spikes = 0;
    int brownouts = 0;
    int bit_flips = 0;
    int clipped_samples = 0;
    int replies_lost = 0;
    int replies_corrupted = 0;
    int crashes_injected = 0;
    int stalls_injected = 0;
    int throttles_injected = 0;
  };
  const Counters& counters() const { return counters_; }

  // --- channel layer (waveform domain) ------------------------------------
  /// Apply burst noise / dropout windows / rebar spikes to a propagated
  /// waveform in place. Used on both downlink and uplink legs.
  void corrupt_waveform(Signal& x, Real fs);

  /// Per-trial multiplicative timebase drift factor for the node's BLF and
  /// bitrate (1.0 when drift is not configured). Drawn once per injector so
  /// one trial's node is consistently fast or slow.
  Real clock_drift_factor();

  // --- node layer ---------------------------------------------------------
  /// True when this uplink frame browns out mid-transmission; when so,
  /// `brownout_cut` returns the surviving fraction in (0, 1).
  bool brownout_aborts_frame();
  Real brownout_cut();

  /// Parasitic storage-cap load (A); constant per plan, no draw.
  Real cap_leak_amps() const { return plan_.node.cap_leak_amps; }

  /// Flip one bit of an encoded frame payload with the configured
  /// probability (in node memory, after the CRC was computed — so the
  /// reader's CRC check fails).
  void corrupt_frame_bits(phy::Bits& payload);

  // --- reader layer -------------------------------------------------------
  /// Saturate samples at the configured ADC full-scale level.
  void clip_adc(Signal& x);

  // --- protocol-level counterparts ----------------------------------------
  /// The SNR-model inventory engine has no waveforms; dropout/brownout
  /// collapse into "the reader timed out waiting for the reply" and bit
  /// flips into "the reply failed CRC". One draw each per exchange attempt.
  bool reply_lost();
  bool reply_corrupted();

  // --- runtime layer (process-level chaos) --------------------------------
  /// One draw per poll: should the daemon crash after this poll? The
  /// supervisor's chaos harness turns a hit into a thrown exception inside
  /// the daemon thread.
  bool runtime_crash();

  /// One (or two) draws per poll: 0 when the pipeline does not stall this
  /// poll, otherwise the drawn stall length in polls.
  int runtime_stall_polls();

  /// One draw per poll: is the telemetry consumer throttled this poll?
  bool runtime_throttled();

  /// Bit-exact round trip of the injector's *state* (RNG stream position,
  /// lazily drawn drift factor, realized-fault counters). The plan is
  /// config and must be re-established by the owner before load.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  FaultPlan plan_;
  dsp::Rng rng_;
  Real drift_factor_ = 0.0;  // lazily drawn; 0 marks "not yet drawn"
  Counters counters_;
};

}  // namespace ecocap::fault
