#include "stream/streaming_reader.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "dsp/serialize.hpp"
#include "phy/protocol.hpp"

namespace ecocap::reader {

namespace {

constexpr std::string_view kCheckpointHeader =
    "ecocap-streaming-reader-checkpoint v1";

fleet::TelemetryStore::Config telemetry_config(
    const StreamingReaderConfig& config) {
  auto c = config.telemetry;
  if (c.nodes == 0) c.nodes = 1;  // the single streamed node
  return c;
}

}  // namespace

StreamingReader::StreamingReader(StreamingReaderConfig config)
    : config_(std::move(config)),
      pipeline_(config_.stream),
      // The same firmware seed derivation the batch EcoCapsule gets, so a
      // streamed node draws the same RN16 sequence as its batch twin.
      firmware_(config_.stream.system.capsule.firmware,
                config_.stream.system.seed ^ 0x9e3779b9),
      supervisor_(config_.supervisor),
      telemetry_(telemetry_config(config_)) {
  if (config_.shared_store &&
      config_.store_node >= config_.shared_store->nodes()) {
    throw std::invalid_argument(
        "StreamingReader: store_node out of range of shared_store");
  }
}

void StreamingReader::apply_due_faults() {
  const dsp::Real now =
      static_cast<dsp::Real>(pipeline_.position()) / pipeline_.fs();
  while (next_fault_ < config_.fault_events.size() &&
         config_.fault_events[next_fault_].at_s <= now) {
    pipeline_.set_fault_plan(config_.fault_events[next_fault_].plan);
    ++next_fault_;
    ++stats_.fault_events_applied;
  }
}

void StreamingReader::absorb_node_events() {
  for (const auto& ev : pipeline_.drain_node_events()) {
    if (!ev.emitted) ++stats_.frames_dropped_unpowered;
    if (ev.browned_out) {
      // Mid-frame brownout: the MCU loses its protocol state and reboots
      // into standby on the next downlink — same as the batch path.
      ++stats_.brownouts;
      firmware_.power_off();
    }
  }
}

std::optional<phy::Bits> StreamingReader::exchange(const phy::Command& cmd,
                                                   dsp::Real* snr_db) {
  auto reply = firmware_.handle_command(cmd, environment_);
  if (!reply) return std::nullopt;
  node::UplinkFrame frame = std::move(*reply);
  const std::uint16_t node_id = config_.stream.system.capsule.firmware.node_id;

  // The supervisor's current rung overrides the negotiated line parameters
  // (the firmware honours the reader's SetBlf-style control).
  if (config_.supervisor.enabled) {
    const LadderStep& rung = supervisor_.step_for(node_id);
    frame.bitrate = rung.bitrate;
    frame.blf = rung.blf;
  }
  const dsp::Real nominal_bitrate = frame.bitrate;
  const dsp::Real nominal_blf = frame.blf;

  // Node-layer faults perturb the emission only: flipped bits in node
  // memory, a drifted RC timebase. The reader still decodes against the
  // nominal parameters it negotiated.
  dsp::Real tx_bitrate = frame.bitrate;
  dsp::Real tx_blf = frame.blf;
  auto& node_injector = pipeline_.node_injector();
  if (node_injector.active()) {
    node_injector.corrupt_frame_bits(frame.payload);
    const dsp::Real drift = node_injector.clock_drift_factor();
    tx_bitrate *= drift;
    tx_blf *= drift;
  }

  phy::Fm0Params line = config_.stream.system.capsule.firmware.uplink;
  line.bitrate = tx_bitrate;
  dsp::Signal switching;
  phy::fm0_encode_frame(frame.payload, line, pipeline_.fs(), switching);

  // The capture spans the emission plus the batch path's 4-bit tail.
  const std::uint64_t start = pipeline_.position();
  const dsp::Real frame_time =
      (static_cast<dsp::Real>(frame.payload.size()) +
       static_cast<dsp::Real>(phy::fm0_preamble(line).size()) + 4.0) /
      tx_bitrate;
  const auto win_len =
      static_cast<std::uint64_t>(frame_time * pipeline_.fs());
  stream::CaptureWindow window;
  window.node_id = node_id;
  window.start = start;
  window.end = start + win_len;
  window.payload_bits = frame.payload.size();
  window.bitrate = nominal_bitrate;
  window.blf = nominal_blf;

  stream::ScheduledEmission emission;
  emission.node_id = node_id;
  emission.start = start;
  emission.switching = std::move(switching);
  emission.blf = tx_blf;

  pipeline_.schedule_emission(std::move(emission));
  pipeline_.schedule_capture(window);
  ++stats_.frames_scheduled;

  std::vector<stream::DecodedUplink> decodes;
  pipeline_.advance_to(window.end, &decodes);
  absorb_node_events();
  for (auto& d : decodes) {
    if (d.window_start == start && d.decode.valid) {
      if (snr_db) *snr_db = d.decode.snr_db;
      return std::move(d.decode.payload);
    }
  }
  return std::nullopt;
}

void StreamingReader::ensure_started() {
  // The supervisor only participates when enabled, mirroring the batch
  // InventorySession (its quarantine machinery must not skip polls of an
  // unsupervised daemon). track() is idempotent, and after a resume the
  // loaded state wins.
  if (config_.supervisor.enabled) {
    supervisor_.track(config_.stream.system.capsule.firmware.node_id);
  }
  if (config_.deadline_factor > 0.0) {
    pipeline_.clock().arm_deadline(config_.deadline_factor,
                                   config_.deadline_grace_s);
  }
  if (warmed_up_) return;
  const auto warmup =
      static_cast<std::uint64_t>(config_.warmup_s * pipeline_.fs());
  pipeline_.advance_to(pipeline_.position() + warmup);
  absorb_node_events();
  warmed_up_ = true;
  // The RTF headline measures the steady interrogation loop, not the
  // one-off cold start.
  pipeline_.restart_clock();
}

void StreamingReader::poll_once(std::uint64_t poll_end) {
  const dsp::Real fs = pipeline_.fs();
  const std::uint16_t node_id = config_.stream.system.capsule.firmware.node_id;
  const bool supervised = config_.supervisor.enabled;

  ++stats_.polls;
  const std::uint64_t poll_no = poll_index_++;
  apply_due_faults();

  bool delivered = false;
  if (supervised && !supervisor_.admit(node_id)) {
    ++stats_.skipped;
  } else {
    // Sync the firmware's power domain with the harvester before the
    // exchange, as the batch capsule does on every receive.
    if (pipeline_.node_powered()) {
      firmware_.power_on();
    } else {
      firmware_.power_off();
    }

    dsp::Real snr_db = std::numeric_limits<dsp::Real>::quiet_NaN();
    const auto rn16_bits =
        exchange(phy::Command{phy::QueryCommand{0}}, &snr_db);
    if (rn16_bits && rn16_bits->size() == phy::rn16_response_bits()) {
      if (const auto rn16 = phy::parse_rn16_response(*rn16_bits)) {
        const auto id_bits =
            exchange(phy::Command{phy::AckCommand{rn16->rn16}}, &snr_db);
        if (id_bits && phy::parse_id_response(*id_bits)) {
          const auto data_bits = exchange(
              phy::Command{phy::ReadCommand{
                  rn16->rn16, static_cast<std::uint8_t>(config_.sensor)}},
              &snr_db);
          if (data_bits) {
            if (const auto data = phy::parse_data_response(*data_bits)) {
              delivered = true;
              const auto t_sec = static_cast<std::uint32_t>(
                  static_cast<dsp::Real>(pipeline_.position()) / fs);
              telemetry().append(
                  store_node(), t_sec,
                  static_cast<float>(phy::from_milli(data->milli_value)));
            }
          }
        }
      }
    }
    if (supervised) supervisor_.observe(node_id, delivered, snr_db);
    if (delivered) {
      ++stats_.delivered;
    } else {
      ++stats_.missed;
    }
  }
  if (pipeline_.position() < poll_end) {
    pipeline_.advance_to(poll_end);
    absorb_node_events();
  }
  pipeline_.clock().check_deadline();
  if (hook_) hook_(poll_no, delivered);
}

StreamingReaderStats StreamingReader::run(dsp::Real sim_seconds) {
  ensure_started();
  const dsp::Real fs = pipeline_.fs();
  const auto poll_samples = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.poll_interval_s * fs));
  const std::uint64_t end =
      pipeline_.position() + static_cast<std::uint64_t>(sim_seconds * fs);
  while (pipeline_.position() < end) {
    poll_once(std::min<std::uint64_t>(end, pipeline_.position() + poll_samples));
  }
  flush_telemetry();
  return stats();
}

StreamingReaderStats StreamingReader::run_polls(std::uint64_t polls) {
  ensure_started();
  const auto poll_samples = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.poll_interval_s * pipeline_.fs()));
  for (std::uint64_t i = 0; i < polls; ++i) {
    poll_once(pipeline_.position() + poll_samples);
  }
  return stats();
}

void StreamingReader::flush_telemetry() { telemetry().flush(store_node()); }

StreamingReaderStats StreamingReader::stats() const {
  StreamingReaderStats s = stats_;
  s.supervisor = supervisor_.totals();
  s.sim_seconds = pipeline_.clock().sim_seconds();
  s.wall_seconds = pipeline_.clock().wall_seconds();
  s.real_time_factor = pipeline_.clock().real_time_factor();
  s.deadline_misses = pipeline_.clock().deadline_misses();
  return s;
}

std::string StreamingReader::checkpoint() const {
  dsp::ser::Writer w(kCheckpointHeader);
  // Config fingerprint: a checkpoint only resumes into a reader built from
  // the same deterministic universe.
  w.u64("sr.seed", config_.stream.system.seed);
  w.u64("sr.node_id", config_.stream.system.capsule.firmware.node_id);
  w.real("sr.fs", config_.stream.system.channel.fs);
  w.real("sr.poll_interval", config_.poll_interval_s);
  // Daemon cursors + cumulative counters.
  w.u64("sr.next_fault", next_fault_);
  w.u64("sr.poll_index", poll_index_);
  w.u64("sr.warmed_up", warmed_up_ ? 1 : 0);
  w.u64("sr.polls", stats_.polls);
  w.u64("sr.delivered", stats_.delivered);
  w.u64("sr.missed", stats_.missed);
  w.u64("sr.skipped", stats_.skipped);
  w.u64("sr.frames_scheduled", stats_.frames_scheduled);
  w.u64("sr.frames_dropped_unpowered", stats_.frames_dropped_unpowered);
  w.u64("sr.brownouts", stats_.brownouts);
  w.u64("sr.fault_events_applied", stats_.fault_events_applied);
  w.u64("sr.events_dropped", stats_.events_dropped);
  pipeline_.save(w);
  firmware_.save(w);
  supervisor_.save(w);
  const fleet::TelemetryStore& store =
      config_.shared_store ? *config_.shared_store : telemetry_;
  store.save_node(config_.shared_store ? config_.store_node : 0, w);
  return w.payload();
}

void StreamingReader::resume(const std::string& payload) {
  dsp::ser::Reader r(payload, kCheckpointHeader);
  if (r.u64("sr.seed") != config_.stream.system.seed ||
      r.u64("sr.node_id") != config_.stream.system.capsule.firmware.node_id) {
    throw std::runtime_error(
        "checkpoint: seed/node fingerprint mismatch (wrong daemon?)");
  }
  if (r.real("sr.fs") != config_.stream.system.channel.fs ||
      r.real("sr.poll_interval") != config_.poll_interval_s) {
    throw std::runtime_error(
        "checkpoint: rate fingerprint mismatch (config drifted?)");
  }
  next_fault_ = static_cast<std::size_t>(r.u64("sr.next_fault"));
  poll_index_ = r.u64("sr.poll_index");
  warmed_up_ = r.u64("sr.warmed_up") != 0;
  stats_ = StreamingReaderStats{};
  stats_.polls = r.u64("sr.polls");
  stats_.delivered = r.u64("sr.delivered");
  stats_.missed = r.u64("sr.missed");
  stats_.skipped = r.u64("sr.skipped");
  stats_.frames_scheduled = r.u64("sr.frames_scheduled");
  stats_.frames_dropped_unpowered = r.u64("sr.frames_dropped_unpowered");
  stats_.brownouts = r.u64("sr.brownouts");
  stats_.fault_events_applied = r.u64("sr.fault_events_applied");
  stats_.events_dropped = r.u64("sr.events_dropped");
  pipeline_.load(r);
  firmware_.load(r);
  supervisor_.load(r);
  telemetry().load_node(store_node(), r);
}

}  // namespace ecocap::reader
