#include "stream/streaming_reader.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "phy/protocol.hpp"

namespace ecocap::reader {

namespace {

fleet::TelemetryStore::Config telemetry_config(
    const StreamingReaderConfig& config) {
  auto c = config.telemetry;
  if (c.nodes == 0) c.nodes = 1;  // the single streamed node
  return c;
}

}  // namespace

StreamingReader::StreamingReader(StreamingReaderConfig config)
    : config_(std::move(config)),
      pipeline_(config_.stream),
      // The same firmware seed derivation the batch EcoCapsule gets, so a
      // streamed node draws the same RN16 sequence as its batch twin.
      firmware_(config_.stream.system.capsule.firmware,
                config_.stream.system.seed ^ 0x9e3779b9),
      supervisor_(config_.supervisor),
      telemetry_(telemetry_config(config_)) {}

void StreamingReader::apply_due_faults(StreamingReaderStats& stats) {
  const dsp::Real now =
      static_cast<dsp::Real>(pipeline_.position()) / pipeline_.fs();
  while (next_fault_ < config_.fault_events.size() &&
         config_.fault_events[next_fault_].at_s <= now) {
    pipeline_.set_fault_plan(config_.fault_events[next_fault_].plan);
    ++next_fault_;
    ++stats.fault_events_applied;
  }
}

void StreamingReader::absorb_node_events(StreamingReaderStats& stats) {
  for (const auto& ev : pipeline_.drain_node_events()) {
    if (!ev.emitted) ++stats.frames_dropped_unpowered;
    if (ev.browned_out) {
      // Mid-frame brownout: the MCU loses its protocol state and reboots
      // into standby on the next downlink — same as the batch path.
      ++stats.brownouts;
      firmware_.power_off();
    }
  }
}

std::optional<phy::Bits> StreamingReader::exchange(
    const phy::Command& cmd, StreamingReaderStats& stats, dsp::Real* snr_db) {
  auto reply = firmware_.handle_command(cmd, environment_);
  if (!reply) return std::nullopt;
  node::UplinkFrame frame = std::move(*reply);
  const std::uint16_t node_id = config_.stream.system.capsule.firmware.node_id;

  // The supervisor's current rung overrides the negotiated line parameters
  // (the firmware honours the reader's SetBlf-style control).
  if (config_.supervisor.enabled) {
    const LadderStep& rung = supervisor_.step_for(node_id);
    frame.bitrate = rung.bitrate;
    frame.blf = rung.blf;
  }
  const dsp::Real nominal_bitrate = frame.bitrate;
  const dsp::Real nominal_blf = frame.blf;

  // Node-layer faults perturb the emission only: flipped bits in node
  // memory, a drifted RC timebase. The reader still decodes against the
  // nominal parameters it negotiated.
  dsp::Real tx_bitrate = frame.bitrate;
  dsp::Real tx_blf = frame.blf;
  auto& node_injector = pipeline_.node_injector();
  if (node_injector.active()) {
    node_injector.corrupt_frame_bits(frame.payload);
    const dsp::Real drift = node_injector.clock_drift_factor();
    tx_bitrate *= drift;
    tx_blf *= drift;
  }

  phy::Fm0Params line = config_.stream.system.capsule.firmware.uplink;
  line.bitrate = tx_bitrate;
  dsp::Signal switching;
  phy::fm0_encode_frame(frame.payload, line, pipeline_.fs(), switching);

  // The capture spans the emission plus the batch path's 4-bit tail.
  const std::uint64_t start = pipeline_.position();
  const dsp::Real frame_time =
      (static_cast<dsp::Real>(frame.payload.size()) +
       static_cast<dsp::Real>(phy::fm0_preamble(line).size()) + 4.0) /
      tx_bitrate;
  const auto win_len =
      static_cast<std::uint64_t>(frame_time * pipeline_.fs());
  stream::CaptureWindow window;
  window.node_id = node_id;
  window.start = start;
  window.end = start + win_len;
  window.payload_bits = frame.payload.size();
  window.bitrate = nominal_bitrate;
  window.blf = nominal_blf;

  stream::ScheduledEmission emission;
  emission.node_id = node_id;
  emission.start = start;
  emission.switching = std::move(switching);
  emission.blf = tx_blf;

  pipeline_.schedule_emission(std::move(emission));
  pipeline_.schedule_capture(window);
  ++stats.frames_scheduled;

  std::vector<stream::DecodedUplink> decodes;
  pipeline_.advance_to(window.end, &decodes);
  absorb_node_events(stats);
  for (auto& d : decodes) {
    if (d.window_start == start && d.decode.valid) {
      if (snr_db) *snr_db = d.decode.snr_db;
      return std::move(d.decode.payload);
    }
  }
  return std::nullopt;
}

StreamingReaderStats StreamingReader::run(dsp::Real sim_seconds) {
  StreamingReaderStats stats;
  const dsp::Real fs = pipeline_.fs();
  const std::uint16_t node_id = config_.stream.system.capsule.firmware.node_id;
  // The supervisor only participates when enabled, mirroring the batch
  // InventorySession (its quarantine machinery must not skip polls of an
  // unsupervised daemon).
  const bool supervised = config_.supervisor.enabled;
  if (supervised) supervisor_.track(node_id);

  if (!warmed_up_) {
    const auto warmup =
        static_cast<std::uint64_t>(config_.warmup_s * fs);
    pipeline_.advance_to(pipeline_.position() + warmup);
    absorb_node_events(stats);
    warmed_up_ = true;
    // The RTF headline measures the steady interrogation loop, not the
    // one-off cold start.
    pipeline_.restart_clock();
  }

  const auto poll_samples = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.poll_interval_s * fs));
  const std::uint64_t end =
      pipeline_.position() + static_cast<std::uint64_t>(sim_seconds * fs);

  while (pipeline_.position() < end) {
    const std::uint64_t poll_end =
        std::min<std::uint64_t>(end, pipeline_.position() + poll_samples);
    ++stats.polls;
    const std::uint64_t poll_no = poll_index_++;
    apply_due_faults(stats);

    bool delivered = false;
    if (supervised && !supervisor_.admit(node_id)) {
      ++stats.skipped;
    } else {
      // Sync the firmware's power domain with the harvester before the
      // exchange, as the batch capsule does on every receive.
      if (pipeline_.node_powered()) {
        firmware_.power_on();
      } else {
        firmware_.power_off();
      }

      dsp::Real snr_db = std::numeric_limits<dsp::Real>::quiet_NaN();
      const auto rn16_bits =
          exchange(phy::Command{phy::QueryCommand{0}}, stats, &snr_db);
      if (rn16_bits && rn16_bits->size() == phy::rn16_response_bits()) {
        if (const auto rn16 = phy::parse_rn16_response(*rn16_bits)) {
          const auto id_bits = exchange(
              phy::Command{phy::AckCommand{rn16->rn16}}, stats, &snr_db);
          if (id_bits && phy::parse_id_response(*id_bits)) {
            const auto data_bits = exchange(
                phy::Command{phy::ReadCommand{
                    rn16->rn16, static_cast<std::uint8_t>(config_.sensor)}},
                stats, &snr_db);
            if (data_bits) {
              if (const auto data = phy::parse_data_response(*data_bits)) {
                delivered = true;
                const auto t_sec = static_cast<std::uint32_t>(
                    static_cast<dsp::Real>(pipeline_.position()) / fs);
                telemetry_.append(
                    0, t_sec,
                    static_cast<float>(phy::from_milli(data->milli_value)));
              }
            }
          }
        }
      }
      if (supervised) supervisor_.observe(node_id, delivered, snr_db);
      if (delivered) {
        ++stats.delivered;
      } else {
        ++stats.missed;
      }
    }
    if (pipeline_.position() < poll_end) {
      pipeline_.advance_to(poll_end);
      absorb_node_events(stats);
    }
    if (hook_) hook_(poll_no, delivered);
  }

  telemetry_.flush(0);
  stats.supervisor = supervisor_.totals();
  stats.sim_seconds = pipeline_.clock().sim_seconds();
  stats.wall_seconds = pipeline_.clock().wall_seconds();
  stats.real_time_factor = pipeline_.clock().real_time_factor();
  return stats;
}

}  // namespace ecocap::reader
