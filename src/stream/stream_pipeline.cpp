#include "stream/stream_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "dsp/rng.hpp"
#include "dsp/serialize.hpp"

namespace ecocap::stream {

namespace {

// Seed salts for the per-stage draw streams, derived from the system seed
// with the same splitmix64 mix the trial engine uses. The fault injectors
// additionally fold in a per-swap epoch so a new plan starts a fresh stream.
constexpr std::uint64_t kDownlinkNoise = 0x7a11;
constexpr std::uint64_t kUplinkNoise = 0x7a12;
constexpr std::uint64_t kInjectorBase = 0x7a20;

NodeStage::Config node_config(const core::SystemConfig& system) {
  NodeStage::Config c;
  c.harvester = system.capsule.harvester;
  c.power = system.capsule.power;
  c.backscatter = system.capsule.backscatter;
  c.hra_gain = system.capsule.hra_gain;
  c.fs = system.channel.fs;
  return c;
}

}  // namespace

Real StreamPipeline::derive_si_amplitude(
    const channel::ConcreteChannel& channel, const core::SystemConfig& system,
    Real volts_scale) {
  // Engineering estimate of the propagated backscatter RMS during a frame:
  // a unit carrier (RMS 1/sqrt(2)) calibrated to node volts, reflected at
  // the mid backscatter gain, attenuated once more on the way back. The
  // batch path measures this RMS from the finished emission; a live reader
  // fixes it up front from its known drive level. Tests that need exact
  // batch parity pass an explicit amplitude instead.
  const auto& bp = system.capsule.backscatter;
  const Real mid = 0.5 * (bp.reflective_gain + bp.absorptive_gain);
  const Real rms = volts_scale * channel.path_gain() * mid *
                   channel.path_gain() / std::sqrt(2.0);
  return channel.uplink_si_amplitude(rms);
}

StreamPipeline::StreamPipeline(StreamConfig config)
    : config_(std::move(config)),
      snapshot_(std::make_shared<const core::SystemConfig>(config_.system)),
      channel_(std::shared_ptr<const channel::Structure>(
                   snapshot_, &snapshot_->structure),
               std::shared_ptr<const channel::ChannelConfig>(
                   snapshot_, &snapshot_->channel)),
      volts_scale_(snapshot_->transmitter.tx_voltage /
                   snapshot_->structure.coupling_voltage * 0.5),
      si_amplitude_(config_.si_amplitude >= 0.0
                        ? config_.si_amplitude
                        : derive_si_amplitude(channel_, *snapshot_,
                                              volts_scale_)),
      clock_(snapshot_->channel.fs, config_.block_size),
      tx_(snapshot_->transmitter),
      dl_(channel_, volts_scale_,
          dsp::trial_seed(snapshot_->seed, kDownlinkNoise)),
      node_(node_config(*snapshot_)),
      ul_(channel_, snapshot_->transmitter.carrier.f_resonant, si_amplitude_,
          dsp::trial_seed(snapshot_->seed, kUplinkNoise)),
      rx_(snapshot_->receiver) {
  if (config_.block_size == 0 || config_.ring_blocks == 0) {
    throw std::invalid_argument(
        "StreamPipeline: block_size and ring_blocks must be > 0");
  }
  set_fault_plan(snapshot_->fault);
}

void StreamPipeline::set_fault_plan(const fault::FaultPlan& plan) {
  const std::uint64_t seed = snapshot_->seed;
  const std::uint64_t epoch = fault_epoch_++;
  dl_.set_injector(
      fault::Injector(plan, seed, kInjectorBase + 4 * epoch + 0));
  node_.set_injector(
      fault::Injector(plan, seed, kInjectorBase + 4 * epoch + 1));
  ul_.set_injector(
      fault::Injector(plan, seed, kInjectorBase + 4 * epoch + 2));
  node_.set_extra_load_amps(node_.injector().cap_leak_amps());
  active_plan_ = plan;
}

void StreamPipeline::set_block_size(std::size_t block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("StreamPipeline: block_size must be > 0");
  }
  config_.block_size = block_size;
}

void StreamPipeline::save(dsp::ser::Writer& w) const {
  w.u64("sp.pos", pos_);
  w.u64("sp.fault_epoch", fault_epoch_);
  w.u64("sp.clock_samples", clock_.samples());
  w.u64("sp.clock_blocks", clock_.blocks());
  fault::save_plan(w, active_plan_);
  tx_.save(w);
  dl_.save(w);
  node_.save(w);
  ul_.save(w);
  rx_.save(w);
}

void StreamPipeline::load(dsp::ser::Reader& r) {
  pos_ = r.u64("sp.pos");
  const std::uint64_t epoch = r.u64("sp.fault_epoch");
  const std::uint64_t clock_samples = r.u64("sp.clock_samples");
  const std::uint64_t clock_blocks = r.u64("sp.clock_blocks");
  const fault::FaultPlan plan = fault::load_plan(r);
  // Rebuild the injectors against the checkpointed plan (their seeding is
  // irrelevant — the stage loads below restore the exact RNG stream
  // positions), then restore the epoch counter so the next mid-run swap
  // derives the same fresh streams an uninterrupted run would.
  set_fault_plan(plan);
  fault_epoch_ = epoch;
  clock_.resume_at(clock_samples, clock_blocks);
  tx_.load(r);
  dl_.load(r);
  node_.load(r);
  ul_.load(r);
  rx_.load(r);
}

void StreamPipeline::schedule_emission(ScheduledEmission e) {
  node_.schedule(std::move(e));
}

void StreamPipeline::schedule_capture(CaptureWindow w) { rx_.schedule(w); }

void StreamPipeline::advance_to(std::uint64_t until,
                                std::vector<DecodedUplink>* decodes) {
  if (until > pos_) {
    if (config_.threaded) {
      run_threaded(until);
    } else {
      run_inline(until);
    }
  }
  if (decodes) {
    auto drained = rx_.drain_decodes();
    decodes->insert(decodes->end(), std::make_move_iterator(drained.begin()),
                    std::make_move_iterator(drained.end()));
  }
}

void StreamPipeline::run_inline(std::uint64_t until) {
  while (pos_ < until) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(config_.block_size, until - pos_));
    tx_.fill_block(n, block_);
    dl_.push_block(block_);
    node_.push_block(block_);
    ul_.push_block(block_);
    rx_.push_block(block_);
    pos_ += n;
    clock_.advance(n);
  }
}

void StreamPipeline::run_threaded(std::uint64_t until) {
  // One segment: a fixed number of blocks flows through four SPSC rings
  // coupling five concurrent stages (tx runs on the caller). Each stage's
  // carried state is touched only by its own thread, block order is
  // preserved by the rings, and every stage is a deterministic function of
  // its input stream — so the output is bit-identical to the inline mode
  // regardless of thread scheduling. A recycle ring returns spent blocks
  // to the producer, so a segment's steady state moves buffers without
  // allocating.
  //
  // Teardown contract: a stage that throws poisons every ring (close()),
  // which breaks all five spin loops — no thread is left spinning on a
  // ring whose peer died. The first exception is rethrown on the caller
  // after all threads joined; the pipeline's carried state is then
  // inconsistent mid-segment, so the owner must discard or resume it from
  // a checkpoint, never keep advancing.
  const std::uint64_t total = until - pos_;
  const std::uint64_t nblocks =
      (total + config_.block_size - 1) / config_.block_size;

  core::SpscRing<Block> to_dl(config_.ring_blocks);
  core::SpscRing<Block> to_node(config_.ring_blocks);
  core::SpscRing<Block> to_ul(config_.ring_blocks);
  core::SpscRing<Block> to_rx(config_.ring_blocks);
  core::SpscRing<Block> recycle(config_.ring_blocks);
  while (recycle.try_push(Block{})) {
  }

  std::mutex error_mu;
  std::exception_ptr error;
  auto abort_all = [&](std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = e;
    }
    to_dl.close();
    to_node.close();
    to_ul.close();
    to_rx.close();
    recycle.close();
  };

  auto pump = [nblocks, &abort_all](core::SpscRing<Block>& in,
                                    core::SpscRing<Block>& out, auto&& fn) {
    try {
      for (std::uint64_t b = 0; b < nblocks; ++b) {
        Block blk;
        while (!in.try_pop(blk)) {
          if (in.closed() && in.empty()) return;  // peer died; drain and exit
          std::this_thread::yield();
        }
        fn(blk);
        while (!out.try_push(std::move(blk))) {
          if (out.closed()) return;
          std::this_thread::yield();
        }
      }
    } catch (...) {
      abort_all(std::current_exception());
    }
  };

  std::thread t_dl([&] {
    pump(to_dl, to_node, [this](Block& b) { dl_.push_block(b.samples); });
  });
  std::thread t_node([&] {
    pump(to_node, to_ul, [this](Block& b) { node_.push_block(b.samples); });
  });
  std::thread t_ul([&] {
    pump(to_ul, to_rx, [this](Block& b) { ul_.push_block(b.samples); });
  });
  std::thread t_rx([&] {
    pump(to_rx, recycle, [this](Block& b) { rx_.push_block(b.samples); });
  });

  try {
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      Block blk;
      bool aborted = false;
      while (!recycle.try_pop(blk)) {
        if (recycle.closed() && recycle.empty()) {
          aborted = true;
          break;
        }
        std::this_thread::yield();
      }
      if (aborted) break;
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(config_.block_size, until - pos_));
      tx_.fill_block(n, blk.samples);
      blk.seq = b;
      bool pushed = false;
      while (!(pushed = to_dl.try_push(std::move(blk)))) {
        if (to_dl.closed()) break;
        std::this_thread::yield();
      }
      if (!pushed) break;
      pos_ += n;
      clock_.advance(n);
    }
  } catch (...) {
    abort_all(std::current_exception());
  }

  t_dl.join();
  t_node.join();
  t_ul.join();
  t_rx.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace ecocap::stream
