#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "channel/concrete_channel.hpp"
#include "dsp/types.hpp"
#include "dsp/workspace.hpp"
#include "fault/fault.hpp"
#include "node/harvester.hpp"
#include "node/power_model.hpp"
#include "phy/carrier.hpp"
#include "phy/ring_effect.hpp"
#include "reader/receiver.hpp"
#include "reader/transmitter.hpp"

namespace ecocap::stream {

using dsp::Real;
using dsp::Signal;

/// One hop of the streaming pipeline: a numbered block of samples. Blocks
/// move between stages by value (the Signal's heap buffer moves with them),
/// so a fixed set of blocks circulates through the rings allocation-free
/// once warm.
struct Block {
  std::uint64_t seq = 0;
  Signal samples;
};

/// An uplink emission scheduled on the node's absolute sample timeline:
/// from sample `start` the backscatter switch follows `switching` (a
/// bipolar FM0 waveform, XORed with the BLF subcarrier); before, between
/// and after emissions the switch rests in the absorptive state.
struct ScheduledEmission {
  std::uint16_t node_id = 0;
  std::uint64_t start = 0;
  Signal switching;
  Real blf = 4000.0;
};

/// A capture the rx stage reassembles from the live stream and decodes once
/// the final sample has arrived. [start, end) in absolute samples.
struct CaptureWindow {
  std::uint16_t node_id = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::size_t payload_bits = 0;
  Real bitrate = 1000.0;
  Real blf = 4000.0;
};

/// A completed capture's decode, tagged with its origin.
struct DecodedUplink {
  std::uint16_t node_id = 0;
  std::uint64_t window_start = 0;
  reader::UplinkDecode decode;
};

/// What happened when a scheduled emission's start sample arrived at the
/// node: was the MCU powered, did the frame brown out mid-emission, and
/// the storage-cap voltage at that instant.
struct NodeFrameEvent {
  std::uint16_t node_id = 0;
  std::uint64_t start = 0;
  bool emitted = false;
  bool browned_out = false;
  Real cap_voltage = 0.0;
};

/// Continuous-wave transmit stage: the batch Transmitter's oscillator +
/// ringing PZT, with phase and ring state carried across blocks — the
/// carrier is genuinely continuous instead of restarting at phase 0 every
/// `continuous_wave` call.
class TxStage {
 public:
  explicit TxStage(const reader::TransmitterConfig& config);

  /// Produce the next `n` samples of carrier into `out` (resized).
  void fill_block(std::size_t n, Signal& out);

  /// Bit-exact carried-state round trip (oscillator phase + PZT ring tail).
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  dsp::Oscillator osc_;
  phy::RingingPzt pzt_;
};

/// Downlink stage: the channel's streaming downlink, the volts calibration
/// the batch `LinkSimulator::faulted_downlink` applies, and the channel-layer
/// fault injector. Faults are drawn per block on the live stream (a burst
/// lands where the stream is *now*), unlike the batch path's per-leg draws.
class DownlinkStage {
 public:
  DownlinkStage(const channel::ConcreteChannel& channel, Real volts_scale,
                std::uint64_t noise_seed);

  void push_block(Signal& x);
  void set_injector(fault::Injector injector);
  fault::Injector& injector() { return injector_; }

  /// Carried channel-stream state + injector state. The injector must be
  /// rebuilt with the live plan (set_injector) before load.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  channel::ConcreteChannel::DownlinkStream stream_;
  Real volts_scale_;
  Real fs_;
  fault::Injector injector_;
};

/// Node stage: harvests the incident stream on an absolute 1 ms grid
/// (partial-chunk peak and fill carried across blocks, so power gating is
/// block-size invariant) and replaces each block in place with the node's
/// backscatter reflection — scheduled emissions where active, the
/// absorptive rest state everywhere else. Power is evaluated exactly at an
/// emission's start sample; an unpowered node drops the frame, and the
/// node-layer injector may brown a frame out (the switching truncates and
/// the reflection falls back to rest — the stream keeps flowing, unlike the
/// batch path which shortens the buffer).
class NodeStage {
 public:
  struct Config {
    node::HarvesterConfig harvester;
    node::PowerModel power;
    phy::BackscatterParams backscatter;  // f_blf comes per emission
    Real hra_gain = 2.0;
    Real fs = 2.0e6;
  };

  explicit NodeStage(const Config& config);

  /// Emissions must be scheduled in ascending, non-overlapping order, at
  /// or after the current position.
  void schedule(ScheduledEmission e);

  void push_block(Signal& x);

  bool powered() const { return harvester_.mcu_powered(); }
  Real cap_voltage() const { return harvester_.cap_voltage(); }
  std::uint64_t position() const { return pos_; }

  void set_injector(fault::Injector injector);
  fault::Injector& injector() { return injector_; }
  /// Parasitic cap load (A) on top of the MCU draw (the cap-leak fault).
  void set_extra_load_amps(Real amps) { extra_load_ = amps; }

  /// Take the frame events recorded since the last drain. Only call while
  /// the pipeline is idle (between segments).
  std::vector<NodeFrameEvent> drain_events();

  /// Carried-state round trip at a quiescent point: the emission queue must
  /// be empty and the events drained (throws otherwise); a stale
  /// already-finished active emission is equivalent to none and is not
  /// serialized.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  void harvest_segment(const Real* x, std::size_t n);
  void begin_emission(std::uint64_t abs);

  Config config_;
  node::Harvester harvester_;
  Real standby_load_;  // MCU standby draw / LDO rail, amps
  Real extra_load_ = 0.0;
  std::size_t chunk_;  // 1 ms of samples, the harvester step
  Real chunk_peak_ = 0.0;
  std::size_t chunk_fill_ = 0;
  std::deque<ScheduledEmission> queue_;
  struct ActiveEmission {
    ScheduledEmission e;
    std::uint64_t switch_len = 0;  // may be brownout-truncated
  };
  std::optional<ActiveEmission> active_;
  fault::Injector injector_;
  std::vector<NodeFrameEvent> events_;
  std::uint64_t pos_ = 0;
};

/// Uplink stage: the channel's streaming uplink (fixed SI amplitude — a
/// live reader knows its own CBW drive level) plus the channel-layer
/// injector and the reader ADC clipper.
class UplinkStage {
 public:
  UplinkStage(const channel::ConcreteChannel& channel, Real carrier_frequency,
              Real si_amplitude, std::uint64_t noise_seed);

  void push_block(Signal& x);
  void set_injector(fault::Injector injector);
  fault::Injector& injector() { return injector_; }

  /// Carried channel-stream state + injector state (see DownlinkStage).
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  channel::ConcreteChannel::UplinkStream stream_;
  Real fs_;
  fault::Injector injector_;
};

/// Receive stage: a streaming frame detector. Capture windows scheduled on
/// the absolute timeline are reassembled block by block (partial frames
/// carry across blocks); when a window's last sample arrives it is decoded
/// with the full batch Receiver against the window's negotiated line
/// parameters, and the result queues for the next drain.
class RxStage {
 public:
  explicit RxStage(const reader::ReceiverConfig& config);

  /// Windows must be scheduled before their first sample arrives.
  void schedule(CaptureWindow w);

  void push_block(const Signal& x);

  /// Take the decodes completed since the last drain. Only call while the
  /// pipeline is idle (between segments).
  std::vector<DecodedUplink> drain_decodes();

  /// Observer of the raw at-reader stream (tests tap it to prove the
  /// stream is identical across block sizes and threading modes). Called
  /// once per block with the absolute position of its first sample.
  using Tap = std::function<void(std::uint64_t pos, const Signal& block)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  std::uint64_t position() const { return pos_; }

  /// Decode-workspace accounting: when the stage is quiescent,
  /// `returns == checkouts` proves no decode leaked a pooled buffer (the
  /// chaos soak's leak check).
  const dsp::Workspace::Stats& workspace_stats() const { return ws_.stats(); }

  /// Round trip at a quiescent point: every scheduled window must have
  /// decoded and every decode drained (throws otherwise), so only the
  /// stream position is state.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  reader::Receiver receiver_;
  dsp::Workspace ws_;
  struct Pending {
    CaptureWindow w;
    Signal buf;
  };
  std::deque<Pending> pending_;
  std::vector<DecodedUplink> decodes_;
  Tap tap_;
  std::uint64_t pos_ = 0;
};

}  // namespace ecocap::stream
