#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/spsc_ring.hpp"
#include "core/stream_clock.hpp"
#include "stream/stream_stages.hpp"

namespace ecocap::stream {

/// Configuration of a streaming transceiver over one reader <-> node link.
/// Reuses the batch `core::SystemConfig` vocabulary so a scenario runs in
/// either mode from the same description.
struct StreamConfig {
  core::SystemConfig system;
  /// Nominal samples per block — the latency/throughput knob. Any value
  /// yields bit-identical decodes (every stage is a carried-state
  /// per-sample recurrence); smaller blocks bound latency, larger ones
  /// amortize per-block overhead.
  std::size_t block_size = 256;
  /// Ring capacity between stages, in blocks (threaded mode).
  std::size_t ring_blocks = 8;
  /// When true, each advance segment runs the five stages on five threads
  /// (tx on the caller) coupled by SPSC rings; decodes are bit-identical
  /// to the inline mode because the rings preserve block order and each
  /// stage's state is private to its thread.
  bool threaded = false;
  /// Reader-side self-interference amplitude. Negative (the default)
  /// derives an estimate from the link budget: the propagated RMS of a
  /// steady CW reflection at the mid backscatter gain.
  Real si_amplitude = -1.0;
};

/// The clocked tx -> channel -> node -> rx sample-streaming pipeline.
/// Owns the five stages, their carried state, and the stream clock; the
/// control plane (a daemon, a test) schedules emissions and capture
/// windows on the absolute sample timeline and then advances the stream.
///
/// Concurrency contract: `advance_to` runs the data plane (possibly on
/// worker threads); every other method is control plane and must only be
/// called while no advance is in flight.
class StreamPipeline {
 public:
  explicit StreamPipeline(StreamConfig config);

  /// Schedule a node emission and/or a reader capture window. Both must
  /// lie at or after the current position.
  void schedule_emission(ScheduledEmission e);
  void schedule_capture(CaptureWindow w);

  /// Swap the live fault plan: rebuilds the per-stage injectors (fresh
  /// draw streams salted by an epoch counter) and the node's parasitic
  /// leak load. Takes effect from the next advanced sample.
  void set_fault_plan(const fault::FaultPlan& plan);

  /// Advance the stream to the absolute sample `until`. Decodes completed
  /// during the segment are appended to `*decodes` when given, otherwise
  /// they stay queued for `take_decodes`.
  void advance_to(std::uint64_t until,
                  std::vector<DecodedUplink>* decodes = nullptr);

  std::vector<DecodedUplink> take_decodes() { return rx_.drain_decodes(); }
  std::vector<NodeFrameEvent> drain_node_events() {
    return node_.drain_events();
  }

  std::uint64_t position() const { return pos_; }
  Real fs() const { return config_.system.channel.fs; }
  Real sim_seconds() const { return clock_.sim_seconds(); }
  const core::StreamClock& clock() const { return clock_; }
  /// Mutable clock access for deadline arming/checking (control plane).
  core::StreamClock& clock() { return clock_; }
  /// Re-zero the clock (e.g. when a daemon finishes warming up and starts
  /// the measured run).
  void restart_clock() { clock_.restart(); }

  bool node_powered() const { return node_.powered(); }
  Real node_cap_voltage() const { return node_.cap_voltage(); }
  /// The node-side injector: the daemon perturbs frames (bit flips, clock
  /// drift) with the same draws the batch path uses.
  fault::Injector& node_injector() { return node_.injector(); }

  Real si_amplitude() const { return si_amplitude_; }
  Real volts_scale() const { return volts_scale_; }
  const core::SystemConfig& system() const { return config_.system; }
  const StreamConfig& config() const { return config_; }

  /// Observer of the at-reader stream (see RxStage::set_tap).
  void set_rx_tap(RxStage::Tap tap) { rx_.set_tap(std::move(tap)); }

  /// Decode-workspace checkout/return balance (leak detection).
  const dsp::Workspace::Stats& rx_workspace_stats() const {
    return rx_.workspace_stats();
  }

  /// Change the block cadence from the next advance on. Decodes are
  /// block-size invariant, but per-block fault *draws* are not — the
  /// degradation ladder's coarsening step trades bit-replayability of the
  /// fault realization for throughput, which is why the ladder is off
  /// during determinism-checked chaos runs.
  void set_block_size(std::size_t block_size);

  /// Bit-exact carried-state round trip at a quiescent point: no advance
  /// in flight, no scheduled emission/capture pending, decodes and node
  /// events drained (stage save throws otherwise). Covers every stage's
  /// carried state, the live fault plan + injector streams, the stream
  /// position, and the deterministic clock counters — everything a
  /// restarted daemon needs to continue bit-identically. Wall-clock
  /// telemetry is deliberately excluded.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  void run_inline(std::uint64_t until);
  void run_threaded(std::uint64_t until);
  static Real derive_si_amplitude(const channel::ConcreteChannel& channel,
                                  const core::SystemConfig& system,
                                  Real volts_scale);

  StreamConfig config_;
  std::shared_ptr<const core::SystemConfig> snapshot_;
  channel::ConcreteChannel channel_;
  Real volts_scale_;
  Real si_amplitude_;
  core::StreamClock clock_;
  TxStage tx_;
  DownlinkStage dl_;
  NodeStage node_;
  UplinkStage ul_;
  RxStage rx_;
  Signal block_;  // inline-mode working buffer
  std::uint64_t pos_ = 0;
  std::uint64_t fault_epoch_ = 0;
  fault::FaultPlan active_plan_;  // the plan the current injectors realize
};

}  // namespace ecocap::stream
