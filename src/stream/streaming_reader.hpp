#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/telemetry_store.hpp"
#include "node/firmware.hpp"
#include "node/sensors.hpp"
#include "reader/link_supervisor.hpp"
#include "stream/stream_pipeline.hpp"

namespace ecocap::reader {

/// A fault plan that goes live at a simulated instant — the "pour water on
/// the wall mid-run" knob of the streaming daemon.
struct StreamFaultEvent {
  dsp::Real at_s = 0.0;
  fault::FaultPlan plan;
};

struct StreamingReaderConfig {
  stream::StreamConfig stream;
  /// Polling cadence of the interrogation loop, seconds of stream time.
  dsp::Real poll_interval_s = 0.25;
  /// Charge-only lead-in before the first poll (the node cold-starts from
  /// the CBW). Excluded from the real-time-factor measurement.
  dsp::Real warmup_s = 0.5;
  node::SensorId sensor = node::SensorId::kTemperature;
  SupervisorConfig supervisor;
  fleet::TelemetryStore::Config telemetry;
  /// Applied in order at the first poll boundary at or after `at_s`.
  std::vector<StreamFaultEvent> fault_events;
  /// When set, readings go to `shared_store` node `store_node` instead of
  /// the reader's own store — the fleet-runtime mode, where one
  /// `TelemetryStore` serves N daemons (one node each, single writer per
  /// node). The store must outlive the reader.
  fleet::TelemetryStore* shared_store = nullptr;
  std::size_t store_node = 0;
  /// Wall-clock budget per simulated second for the watchdog's deadline
  /// accounting (`StreamClock::arm_deadline`); <= 0 leaves it off. Health
  /// telemetry only — never feeds checkpoints or decode paths.
  dsp::Real deadline_factor = 0.0;
  dsp::Real deadline_grace_s = 0.25;
};

/// Aggregate outcome of a daemon run. Counters are *cumulative* across run
/// calls (and across checkpoint/resume — they are part of the checkpoint),
/// so a supervisor restarting a daemon mid-campaign reads totals identical
/// to an uninterrupted run. The wall-clock fields (wall_seconds,
/// real_time_factor, deadline_misses) restart with the process.
struct StreamingReaderStats {
  std::uint64_t polls = 0;
  std::uint64_t delivered = 0;  // full Query -> Ack -> Read rounds ingested
  std::uint64_t missed = 0;
  std::uint64_t skipped = 0;    // polls the supervisor suppressed
  std::uint64_t frames_scheduled = 0;
  std::uint64_t frames_dropped_unpowered = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t fault_events_applied = 0;
  /// Telemetry events lost to ring overflow under the drop-oldest /
  /// drop-newest backpressure policies (the runtime collector accounts
  /// them here, exactly — one count per evicted or discarded event).
  std::uint64_t events_dropped = 0;
  SupervisorTotals supervisor;
  dsp::Real sim_seconds = 0.0;
  dsp::Real wall_seconds = 0.0;
  /// Simulated seconds per wall second over the measured (post-warmup)
  /// run — the streaming headline metric; >= 1 means the daemon keeps up
  /// with a live ADC at fs.
  dsp::Real real_time_factor = 0.0;
  /// Poll deadlines missed against the armed wall budget (see
  /// StreamingReaderConfig::deadline_factor). Wall-clock health telemetry.
  std::uint64_t deadline_misses = 0;
};

/// Long-running streaming interrogation daemon: drives the StreamPipeline
/// continuously, runs the Gen2-style Query -> Ack -> Read exchange against
/// the node firmware every poll, reassembles and decodes the uplink frames
/// from the live at-reader stream, feeds delivered readings into a
/// `fleet::TelemetryStore`, and lets the `LinkSupervisor` react online
/// while `fault::Injector` plans perturb the stream mid-run.
///
/// Scope note: the data plane — carrier, backscatter reflection, channel,
/// capture, decode — is fully waveform-streaming; the command downlinks
/// ride the protocol-level `Firmware::handle_command` path (the same one
/// the SNR-model inventory engine uses). Each uplink leg is decoded from
/// the reassembled stream exactly as the batch LinkSimulator decodes its
/// captured buffer.
class StreamingReader {
 public:
  explicit StreamingReader(StreamingReaderConfig config);

  /// Run `sim_seconds` of stream time past the warmup and return the
  /// (cumulative) stats. Callable repeatedly; state (node charge,
  /// supervisor, telemetry) carries across calls and the warmup only runs
  /// once. Flushes the open telemetry buckets at the end — the standalone
  /// campaign-style entry point.
  StreamingReaderStats run(dsp::Real sim_seconds);

  /// Run exactly `polls` interrogation polls (the supervisor's quantum:
  /// heartbeats and checkpoints land on poll boundaries). Does NOT flush
  /// telemetry buckets — bucket closure must not depend on where restarts
  /// chop the run, or recovery would not be byte-identical. Call
  /// `flush_telemetry()` once at campaign end instead.
  StreamingReaderStats run_polls(std::uint64_t polls);

  /// Close the open minute/hour buckets of this reader's telemetry node.
  void flush_telemetry();

  /// Serialize the daemon's complete resumable state at a poll boundary:
  /// pipeline carried state (stages, injectors, live plan, position),
  /// firmware, link supervisor, cumulative stats, fault-event cursor, and
  /// the telemetry node's full contents. Bit-exact: a reader resumed from
  /// this payload replays the remaining polls byte-identically to one that
  /// never stopped.
  std::string checkpoint() const;

  /// Restore from a `checkpoint()` payload. The reader must be freshly
  /// constructed with the *same* config (seed, node id, rates are
  /// fingerprint-checked; throws std::runtime_error on mismatch or a
  /// corrupt payload).
  void resume(const std::string& payload);

  /// Called after every poll with the poll index and whether the reading
  /// was delivered (example/demo hook).
  using PollHook = std::function<void(std::uint64_t poll, bool delivered)>;
  void set_poll_hook(PollHook hook) { hook_ = std::move(hook); }

  /// Cumulative stats so far (same snapshot run/run_polls return).
  StreamingReaderStats stats() const;

  /// Fold telemetry-ring drops into the cumulative (checkpointed) stats —
  /// the runtime collector calls this with each drain's exact eviction
  /// count.
  void add_events_dropped(std::uint64_t n) { stats_.events_dropped += n; }

  /// The store readings land in: the shared fleet store when configured,
  /// otherwise the reader's own.
  fleet::TelemetryStore& telemetry() {
    return config_.shared_store ? *config_.shared_store : telemetry_;
  }
  /// The node index this reader writes within `telemetry()`.
  std::size_t store_node() const {
    return config_.shared_store ? config_.store_node : 0;
  }
  std::uint64_t polls_done() const { return poll_index_; }
  LinkSupervisor& supervisor() { return supervisor_; }
  stream::StreamPipeline& pipeline() { return pipeline_; }
  const StreamingReaderConfig& config() const { return config_; }

 private:
  /// One command -> uplink-frame exchange: schedule the emission and its
  /// capture window, advance the stream past the window, decode. Returns
  /// the decoded payload bits when valid.
  std::optional<phy::Bits> exchange(const phy::Command& cmd,
                                    dsp::Real* snr_db);
  void apply_due_faults();
  void absorb_node_events();
  /// Warmup + supervisor tracking, once per process lifetime.
  void ensure_started();
  /// One interrogation poll ending at absolute sample `poll_end`.
  void poll_once(std::uint64_t poll_end);

  StreamingReaderConfig config_;
  stream::StreamPipeline pipeline_;
  node::Firmware firmware_;
  LinkSupervisor supervisor_;
  fleet::TelemetryStore telemetry_;
  node::ConcreteEnvironment environment_;
  PollHook hook_;
  StreamingReaderStats stats_;
  std::size_t next_fault_ = 0;
  std::uint64_t poll_index_ = 0;
  bool warmed_up_ = false;
};

}  // namespace ecocap::reader
