#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fleet/telemetry_store.hpp"
#include "node/firmware.hpp"
#include "node/sensors.hpp"
#include "reader/link_supervisor.hpp"
#include "stream/stream_pipeline.hpp"

namespace ecocap::reader {

/// A fault plan that goes live at a simulated instant — the "pour water on
/// the wall mid-run" knob of the streaming daemon.
struct StreamFaultEvent {
  dsp::Real at_s = 0.0;
  fault::FaultPlan plan;
};

struct StreamingReaderConfig {
  stream::StreamConfig stream;
  /// Polling cadence of the interrogation loop, seconds of stream time.
  dsp::Real poll_interval_s = 0.25;
  /// Charge-only lead-in before the first poll (the node cold-starts from
  /// the CBW). Excluded from the real-time-factor measurement.
  dsp::Real warmup_s = 0.5;
  node::SensorId sensor = node::SensorId::kTemperature;
  SupervisorConfig supervisor;
  fleet::TelemetryStore::Config telemetry;
  /// Applied in order at the first poll boundary at or after `at_s`.
  std::vector<StreamFaultEvent> fault_events;
};

/// Aggregate outcome of a daemon run.
struct StreamingReaderStats {
  std::uint64_t polls = 0;
  std::uint64_t delivered = 0;  // full Query -> Ack -> Read rounds ingested
  std::uint64_t missed = 0;
  std::uint64_t skipped = 0;    // polls the supervisor suppressed
  std::uint64_t frames_scheduled = 0;
  std::uint64_t frames_dropped_unpowered = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t fault_events_applied = 0;
  SupervisorTotals supervisor;
  dsp::Real sim_seconds = 0.0;
  dsp::Real wall_seconds = 0.0;
  /// Simulated seconds per wall second over the measured (post-warmup)
  /// run — the streaming headline metric; >= 1 means the daemon keeps up
  /// with a live ADC at fs.
  dsp::Real real_time_factor = 0.0;
};

/// Long-running streaming interrogation daemon: drives the StreamPipeline
/// continuously, runs the Gen2-style Query -> Ack -> Read exchange against
/// the node firmware every poll, reassembles and decodes the uplink frames
/// from the live at-reader stream, feeds delivered readings into a
/// `fleet::TelemetryStore`, and lets the `LinkSupervisor` react online
/// while `fault::Injector` plans perturb the stream mid-run.
///
/// Scope note: the data plane — carrier, backscatter reflection, channel,
/// capture, decode — is fully waveform-streaming; the command downlinks
/// ride the protocol-level `Firmware::handle_command` path (the same one
/// the SNR-model inventory engine uses). Each uplink leg is decoded from
/// the reassembled stream exactly as the batch LinkSimulator decodes its
/// captured buffer.
class StreamingReader {
 public:
  explicit StreamingReader(StreamingReaderConfig config);

  /// Run `sim_seconds` of stream time past the warmup and return the
  /// aggregate stats. Callable repeatedly; state (node charge, supervisor,
  /// telemetry) carries across calls and the warmup only runs once.
  StreamingReaderStats run(dsp::Real sim_seconds);

  /// Called after every poll with the poll index and whether the reading
  /// was delivered (example/demo hook).
  using PollHook = std::function<void(std::uint64_t poll, bool delivered)>;
  void set_poll_hook(PollHook hook) { hook_ = std::move(hook); }

  fleet::TelemetryStore& telemetry() { return telemetry_; }
  LinkSupervisor& supervisor() { return supervisor_; }
  stream::StreamPipeline& pipeline() { return pipeline_; }
  const StreamingReaderConfig& config() const { return config_; }

 private:
  /// One command -> uplink-frame exchange: schedule the emission and its
  /// capture window, advance the stream past the window, decode. Returns
  /// the decoded payload bits when valid.
  std::optional<phy::Bits> exchange(const phy::Command& cmd,
                                    StreamingReaderStats& stats,
                                    dsp::Real* snr_db);
  void apply_due_faults(StreamingReaderStats& stats);
  void absorb_node_events(StreamingReaderStats& stats);

  StreamingReaderConfig config_;
  stream::StreamPipeline pipeline_;
  node::Firmware firmware_;
  LinkSupervisor supervisor_;
  fleet::TelemetryStore telemetry_;
  node::ConcreteEnvironment environment_;
  PollHook hook_;
  std::size_t next_fault_ = 0;
  std::uint64_t poll_index_ = 0;
  bool warmed_up_ = false;
};

}  // namespace ecocap::reader
