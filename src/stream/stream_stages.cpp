#include "stream/stream_stages.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "dsp/serialize.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::stream {

// ---------------------------------------------------------------- TxStage

TxStage::TxStage(const reader::TransmitterConfig& config)
    : osc_(config.carrier.fs, config.carrier.f_resonant),
      pzt_(config.carrier.fs, config.pzt_resonance, config.pzt_q) {}

void TxStage::fill_block(std::size_t n, Signal& out) {
  // Same two per-sample recurrences the batch Transmitter::continuous_wave
  // runs, but on carried state: the oscillator phase and PZT ring tail
  // continue across blocks instead of restarting every call.
  osc_.generate(n, 1.0, out);
  pzt_.drive_inplace(out);
}

void TxStage::save(dsp::ser::Writer& w) const {
  w.real("tx.phase", osc_.phase());
  pzt_.save(w);
}

void TxStage::load(dsp::ser::Reader& r) {
  osc_.reset_phase(r.real("tx.phase"));
  pzt_.load(r);
}

// ----------------------------------------------------------- DownlinkStage

DownlinkStage::DownlinkStage(const channel::ConcreteChannel& channel,
                             Real volts_scale, std::uint64_t noise_seed)
    : stream_(channel, noise_seed),
      volts_scale_(volts_scale),
      fs_(channel.config().fs) {}

void DownlinkStage::push_block(Signal& x) {
  stream_.push_block(x);
  dsp::scale(x, volts_scale_);
  injector_.corrupt_waveform(x, fs_);
}

void DownlinkStage::set_injector(fault::Injector injector) {
  injector_ = std::move(injector);
}

void DownlinkStage::save(dsp::ser::Writer& w) const {
  stream_.save(w);
  injector_.save(w);
}

void DownlinkStage::load(dsp::ser::Reader& r) {
  stream_.load(r);
  injector_.load(r);
}

// --------------------------------------------------------------- NodeStage

NodeStage::NodeStage(const Config& config)
    : config_(config),
      harvester_(config.harvester),
      standby_load_(config.power.standby().total() /
                    config.harvester.ldo_output),
      chunk_(static_cast<std::size_t>(config.fs / 1000.0)) {
  if (config.fs <= 0.0 || chunk_ == 0) {
    throw std::invalid_argument("NodeStage: fs must give a >= 1 sample chunk");
  }
}

void NodeStage::schedule(ScheduledEmission e) {
  if (e.start < pos_) {
    throw std::invalid_argument("NodeStage: emission scheduled in the past");
  }
  if (!queue_.empty() && e.start < queue_.back().start) {
    throw std::invalid_argument("NodeStage: emissions must be ascending");
  }
  queue_.push_back(std::move(e));
}

void NodeStage::set_injector(fault::Injector injector) {
  injector_ = std::move(injector);
}

std::vector<NodeFrameEvent> NodeStage::drain_events() {
  std::vector<NodeFrameEvent> out;
  out.swap(events_);
  return out;
}

void NodeStage::save(dsp::ser::Writer& w) const {
  if (!queue_.empty() || !events_.empty()) {
    throw std::runtime_error(
        "checkpoint: NodeStage not quiescent (pending emissions or events)");
  }
  if (active_ && pos_ < active_->e.start + active_->switch_len) {
    throw std::runtime_error("checkpoint: NodeStage mid-emission");
  }
  // A stale active_ (its switching already fully consumed) would be reset
  // without any RNG draw at the next push_block, so "no active emission"
  // serializes the equivalent state.
  w.u64("ns.pos", pos_);
  w.real("ns.chunk_peak", chunk_peak_);
  w.u64("ns.chunk_fill", chunk_fill_);
  harvester_.save(w);
  injector_.save(w);
}

void NodeStage::load(dsp::ser::Reader& r) {
  pos_ = r.u64("ns.pos");
  chunk_peak_ = r.real("ns.chunk_peak");
  chunk_fill_ = static_cast<std::size_t>(r.u64("ns.chunk_fill"));
  harvester_.load(r);
  injector_.load(r);
  queue_.clear();
  active_.reset();
  events_.clear();
}

void NodeStage::harvest_segment(const Real* x, std::size_t n) {
  // The batch EcoCapsule steps the harvester once per 1 ms chunk of each
  // receive() call. The stream has no call boundaries, so the chunk grid is
  // anchored to the absolute sample index — any block split sees the same
  // chunk boundaries and therefore the same harvester trajectory.
  for (std::size_t i = 0; i < n; ++i) {
    const Real a = std::abs(x[i]);
    if (a > chunk_peak_) chunk_peak_ = a;
    if (++chunk_fill_ == chunk_) {
      const Real amp = chunk_peak_ * config_.hra_gain;
      const Real load =
          (harvester_.mcu_powered() ? standby_load_ : 0.0) + extra_load_;
      harvester_.step(static_cast<Real>(chunk_fill_) / config_.fs, amp, load);
      chunk_peak_ = 0.0;
      chunk_fill_ = 0;
    }
  }
}

void NodeStage::begin_emission(std::uint64_t abs) {
  ScheduledEmission e = std::move(queue_.front());
  queue_.pop_front();
  NodeFrameEvent ev;
  ev.node_id = e.node_id;
  ev.start = abs;
  ev.cap_voltage = harvester_.cap_voltage();
  if (harvester_.mcu_powered()) {
    ev.emitted = true;
    std::uint64_t len = e.switching.size();
    if (injector_.brownout_aborts_frame()) {
      // Mid-frame brownout: the switch stops partway and the reflection
      // falls back to the rest state for the remainder — on a live stream
      // the waveform keeps flowing, it does not shorten as in batch mode.
      ev.browned_out = true;
      len = static_cast<std::uint64_t>(
          injector_.brownout_cut() * static_cast<Real>(e.switching.size()));
    }
    active_ = ActiveEmission{std::move(e), len};
  }
  events_.push_back(ev);
}

void NodeStage::push_block(Signal& x) {
  const std::size_t n = x.size();
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t abs = pos_ + i;
    if (active_ && abs >= active_->e.start + active_->switch_len) {
      active_.reset();
    }
    if (!active_ && !queue_.empty() && queue_.front().start <= abs) {
      begin_emission(abs);
    }
    // Segment until the next state change: the block end, the end of the
    // active emission's switching, or the start of the next scheduled one.
    std::uint64_t seg_end = pos_ + n;
    if (active_) {
      seg_end = std::min(seg_end, active_->e.start + active_->switch_len);
    } else if (!queue_.empty()) {
      seg_end = std::min(seg_end, queue_.front().start);
    }
    const auto len = static_cast<std::size_t>(seg_end - abs);
    // Harvest reads the raw incident samples, then the reflection replaces
    // them in place. Power decisions happen in absolute order because the
    // segment walk never crosses an emission start.
    harvest_segment(x.data() + i, len);
    phy::BackscatterParams bp = config_.backscatter;
    std::span<const Real> switching;
    std::uint64_t offset = 0;
    if (active_) {
      bp.f_blf = active_->e.blf;
      switching = std::span<const Real>(active_->e.switching.data(),
                                        active_->switch_len);
      offset = abs - active_->e.start;
    }
    const std::span<Real> seg(x.data() + i, len);
    phy::backscatter_modulate(seg, switching, offset, config_.fs, bp, seg);
    i += len;
  }
  pos_ += n;
}

// ------------------------------------------------------------- UplinkStage

UplinkStage::UplinkStage(const channel::ConcreteChannel& channel,
                         Real carrier_frequency, Real si_amplitude,
                         std::uint64_t noise_seed)
    : stream_(channel, carrier_frequency, si_amplitude, noise_seed),
      fs_(channel.config().fs) {}

void UplinkStage::push_block(Signal& x) {
  stream_.push_block(x);
  injector_.corrupt_waveform(x, fs_);
  injector_.clip_adc(x);
}

void UplinkStage::set_injector(fault::Injector injector) {
  injector_ = std::move(injector);
}

void UplinkStage::save(dsp::ser::Writer& w) const {
  stream_.save(w);
  injector_.save(w);
}

void UplinkStage::load(dsp::ser::Reader& r) {
  stream_.load(r);
  injector_.load(r);
}

// ----------------------------------------------------------------- RxStage

RxStage::RxStage(const reader::ReceiverConfig& config) : receiver_(config) {}

void RxStage::schedule(CaptureWindow w) {
  if (w.start < pos_ || w.end <= w.start) {
    throw std::invalid_argument("RxStage: invalid capture window");
  }
  Pending p;
  p.w = w;
  p.buf.assign(w.end - w.start, 0.0);
  pending_.push_back(std::move(p));
}

void RxStage::push_block(const Signal& x) {
  if (tap_) tap_(pos_, x);
  const std::uint64_t lo = pos_;
  const std::uint64_t hi = pos_ + x.size();
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = *it;
    const std::uint64_t a = std::max(lo, p.w.start);
    const std::uint64_t b = std::min(hi, p.w.end);
    if (a < b) {
      std::copy(x.begin() + static_cast<std::ptrdiff_t>(a - lo),
                x.begin() + static_cast<std::ptrdiff_t>(b - lo),
                p.buf.begin() + static_cast<std::ptrdiff_t>(a - p.w.start));
    }
    if (hi >= p.w.end) {
      // Final sample arrived: decode against the window's negotiated line
      // parameters — the same retune + batch decode the LinkSimulator runs.
      receiver_.set_blf(p.w.blf);
      receiver_.set_bitrate(p.w.bitrate);
      DecodedUplink d;
      d.node_id = p.w.node_id;
      d.window_start = p.w.start;
      d.decode = receiver_.decode(p.buf, p.w.payload_bits, ws_);
      decodes_.push_back(std::move(d));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  pos_ = hi;
}

std::vector<DecodedUplink> RxStage::drain_decodes() {
  std::vector<DecodedUplink> out;
  out.swap(decodes_);
  return out;
}

void RxStage::save(dsp::ser::Writer& w) const {
  if (!pending_.empty() || !decodes_.empty()) {
    throw std::runtime_error(
        "checkpoint: RxStage not quiescent (open capture or undrained "
        "decodes)");
  }
  w.u64("rx.pos", pos_);
}

void RxStage::load(dsp::ser::Reader& r) {
  pos_ = r.u64("rx.pos");
  pending_.clear();
  decodes_.clear();
}

}  // namespace ecocap::stream
