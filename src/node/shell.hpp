#pragma once

#include <string>

#include "dsp/types.hpp"

namespace ecocap::node {

using dsp::Real;

/// Structural model of the EcoCapsule's spherical stressless shell
/// (paper §4.1, Eq. 4, Fig. 8). The shell equalizes the surrounding
/// concrete pressure; the pressure difference across the wall is
///
///   dP = rho * g * h - P_air                                  (Eq. 4)
///
/// and the shell survives while dP <= dP_max of its material/thickness.
struct ShellMaterial {
  std::string name;
  Real tensile_strength = 0.0;  // Pa
  Real youngs_modulus = 0.0;    // Pa
  /// Maximum tolerable pressure difference for the 2 mm, 4.5 cm-diameter
  /// shell at <= 5% deformation (the paper's Solidworks FEA result).
  Real max_pressure_difference = 0.0;  // Pa

  /// SLA printing resin: 65 MPa tensile, 2.2 GPa modulus, dP_max = 4.3 MPa.
  static ShellMaterial sla_resin();
  /// Alloy steel: dP_max = 115.2 MPa (for super-tall deployments).
  static ShellMaterial alloy_steel();
};

struct ShellConfig {
  ShellMaterial material = ShellMaterial::sla_resin();
  Real diameter = 0.045;       // m (ping-pong size)
  Real wall_thickness = 0.002; // m
  Real max_deformation = 0.05; // fraction
};

inline constexpr Real kStandardAtmosphere = 101325.0;  // Pa
inline constexpr Real kGravity = 9.81;                 // m/s^2

class Shell {
 public:
  explicit Shell(ShellConfig config = {});

  /// Pressure difference across the shell at depth `height` below the top
  /// of a building of concrete density rho (Eq. 4).
  Real pressure_difference(Real height, Real concrete_density = 2300.0) const;

  /// Maximum building height this shell survives (paper: ~195 m for resin,
  /// ~4985 m for alloy steel).
  Real max_building_height(Real concrete_density = 2300.0) const;

  /// True when the shell survives at the given height.
  bool survives(Real height, Real concrete_density = 2300.0) const;

  /// Analytic thin-shell estimate of the membrane stress at pressure
  /// difference dP: sigma = dP * r / (2 t). Used to cross-check dP_max
  /// against the material's tensile strength.
  Real membrane_stress(Real pressure_difference) const;

  /// Peak radial deformation fraction at dP (linear-elastic thin shell):
  /// dr/r = sigma (1 - nu) / E with nu ~ 0.35 for the resin.
  Real deformation_fraction(Real pressure_difference,
                            Real poisson = 0.35) const;

  /// Casting survival check: fresh self-compacting concrete exerts a
  /// hydrostatic head of the pour depth; survives when the resulting dP is
  /// within limits (what the CT scan verified on the real blocks).
  bool survives_casting(Real pour_depth,
                        Real fresh_density = 2400.0) const;

  const ShellConfig& config() const { return config_; }

 private:
  ShellConfig config_;
};

}  // namespace ecocap::node
