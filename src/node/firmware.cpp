#include "node/firmware.hpp"

#include <stdexcept>
#include <utility>

namespace ecocap::node {

Firmware::Firmware(FirmwareConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed ^ (static_cast<std::uint64_t>(config.node_id) << 32)) {
  sensors_ = default_sensor_suite();
}

void Firmware::attach_sensor(std::unique_ptr<Sensor> sensor) {
  sensors_.push_back(std::move(sensor));
}

void Firmware::clear_sensors() { sensors_.clear(); }

void Firmware::power_on() {
  if (state_ == McuState::kOff) state_ = McuState::kStandby;
}

void Firmware::power_off() {
  state_ = McuState::kOff;
  slot_ = 0;
  rn16_ = 0;
}

std::uint16_t Firmware::fresh_rn16() {
  return static_cast<std::uint16_t>(rng_.index(0x10000));
}

std::vector<UplinkFrame> Firmware::process_downlink(
    const std::vector<bool>& levels, double fs,
    const ConcreteEnvironment& env) {
  std::vector<UplinkFrame> out;
  if (state_ == McuState::kOff) return out;
  std::size_t cursor = 0;
  while (cursor + 1 < levels.size()) {
    const auto frame =
        phy::pie_decode_stream(levels, fs, config_.downlink, cursor);
    if (!frame) break;
    cursor = frame->end_index;
    const auto cmd = phy::parse_command(frame->payload);
    if (!cmd) continue;  // CRC failure: Gen2 nodes stay silent
    if (auto reply = handle_command(*cmd, env)) {
      out.push_back(std::move(*reply));
    }
  }
  return out;
}

std::optional<UplinkFrame> Firmware::handle_command(
    const phy::Command& cmd, const ConcreteEnvironment& env) {
  if (state_ == McuState::kOff) return std::nullopt;
  if (const auto* sel = std::get_if<phy::SelectCommand>(&cmd)) {
    return on_select(*sel);
  }
  if (const auto* q = std::get_if<phy::QueryCommand>(&cmd)) {
    return on_query(*q);
  }
  if (std::get_if<phy::QueryRepCommand>(&cmd)) {
    return on_query_rep();
  }
  if (const auto* a = std::get_if<phy::AckCommand>(&cmd)) {
    return on_ack(*a);
  }
  if (const auto* r = std::get_if<phy::ReadCommand>(&cmd)) {
    return on_read(*r, env);
  }
  if (const auto* s = std::get_if<phy::SetBlfCommand>(&cmd)) {
    return on_set_blf(*s);
  }
  return std::nullopt;
}

std::optional<UplinkFrame> Firmware::on_select(const phy::SelectCommand& s) {
  // Gen2-style Select: match the node id against pattern on the masked
  // bits; mask 0 re-selects every node. Select never elicits a reply.
  selected_ = (config_.node_id & s.mask) == (s.pattern & s.mask);
  state_ = McuState::kStandby;  // aborts any round in progress
  return std::nullopt;
}

std::optional<UplinkFrame> Firmware::on_query(const phy::QueryCommand& q) {
  // De-selected nodes sit the round out entirely.
  if (!selected_) {
    state_ = McuState::kStandby;
    return std::nullopt;
  }
  // New inventory round: draw a random slot in [0, 2^q).
  const int slots = 1 << q.q;
  slot_ = static_cast<int>(rng_.index(static_cast<std::uint64_t>(slots)));
  if (slot_ == 0) {
    rn16_ = fresh_rn16();
    state_ = McuState::kReplied;
    return make_frame(phy::Rn16Response{rn16_});
  }
  state_ = McuState::kArbitrate;
  return std::nullopt;
}

std::optional<UplinkFrame> Firmware::on_query_rep() {
  if (state_ != McuState::kArbitrate) return std::nullopt;
  if (--slot_ <= 0) {
    rn16_ = fresh_rn16();
    state_ = McuState::kReplied;
    return make_frame(phy::Rn16Response{rn16_});
  }
  return std::nullopt;
}

std::optional<UplinkFrame> Firmware::on_ack(const phy::AckCommand& a) {
  // kAcked also answers: a reader that lost the id reply re-Acks the same
  // RN16 (the retry path), and the node must not fall silent.
  if ((state_ != McuState::kReplied && state_ != McuState::kAcked) ||
      a.rn16 != rn16_) {
    return std::nullopt;
  }
  state_ = McuState::kAcked;
  // Reply with the capsule id (the Gen2 EPC analog).
  return make_frame(phy::Response{phy::IdResponse{config_.node_id}});
}

std::optional<UplinkFrame> Firmware::on_read(const phy::ReadCommand& r,
                                             const ConcreteEnvironment& env) {
  if (state_ != McuState::kAcked || r.rn16 != rn16_) return std::nullopt;
  for (const auto& s : sensors_) {
    if (static_cast<std::uint8_t>(s->id()) == r.sensor_id) {
      const double v = s->sample(env, rng_);
      phy::DataResponse d;
      d.sensor_id = r.sensor_id;
      d.milli_value = phy::to_milli(v);
      return make_frame(phy::Response{d});
    }
  }
  return std::nullopt;  // unknown sensor: stay silent
}

std::optional<UplinkFrame> Firmware::on_set_blf(const phy::SetBlfCommand& s) {
  if (state_ != McuState::kAcked || s.rn16 != rn16_) return std::nullopt;
  config_.blf = static_cast<double>(s.blf_centihz) * 100.0;
  return std::nullopt;
}

UplinkFrame Firmware::make_frame(const phy::Response& resp) const {
  UplinkFrame f;
  f.payload = phy::encode_response(resp);
  f.bitrate = config_.uplink.bitrate;
  f.blf = config_.blf;
  return f;
}

void Firmware::save(dsp::ser::Writer& w) const {
  w.u64("fw.node_id", config_.node_id);
  w.rng("fw.rng", rng_);
  w.i64("fw.state", static_cast<std::int64_t>(state_));
  w.u64("fw.rn16", rn16_);
  w.i64("fw.slot", slot_);
  w.u64("fw.selected", selected_ ? 1 : 0);
  w.real("fw.blf", config_.blf);
  w.real("fw.bitrate", config_.uplink.bitrate);
}

void Firmware::load(dsp::ser::Reader& r) {
  const std::uint64_t id = r.u64("fw.node_id");
  if (id != config_.node_id) {
    throw std::runtime_error("checkpoint: firmware node id mismatch");
  }
  r.rng("fw.rng", rng_);
  const std::int64_t state = r.i64("fw.state");
  if (state < static_cast<std::int64_t>(McuState::kOff) ||
      state > static_cast<std::int64_t>(McuState::kAcked)) {
    throw std::runtime_error("checkpoint: bad MCU state");
  }
  state_ = static_cast<McuState>(state);
  rn16_ = static_cast<std::uint16_t>(r.u64("fw.rn16"));
  slot_ = static_cast<int>(r.i64("fw.slot"));
  selected_ = r.u64("fw.selected") != 0;
  config_.blf = r.real("fw.blf");
  config_.uplink.bitrate = r.real("fw.bitrate");
}

}  // namespace ecocap::node
