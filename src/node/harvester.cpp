#include "node/harvester.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/serialize.hpp"

namespace ecocap::node {

Harvester::Harvester(HarvesterConfig config) : config_(config) {
  if (config_.stages <= 0 || config_.storage_cap <= 0.0 ||
      config_.source_resistance <= 0.0) {
    throw std::invalid_argument("Harvester: invalid config");
  }
}

Real Harvester::open_circuit_voltage(Real vin_peak) const {
  const Real per_stage = std::max<Real>(vin_peak - config_.diode_drop, 0.0);
  return 2.0 * static_cast<Real>(config_.stages) * per_stage;
}

std::optional<Real> Harvester::cold_start_time(Real vin_peak) const {
  const Real voc = open_circuit_voltage(vin_peak);
  if (voc <= config_.mcu_start_voltage) return std::nullopt;
  // RC charge from 0 toward voc; threshold crossing of an exponential.
  const Real rc = config_.source_resistance * config_.storage_cap;
  return rc * std::log(voc / (voc - config_.mcu_start_voltage));
}

Real Harvester::minimum_activation_voltage() const {
  // Invert open_circuit_voltage(v) == mcu_start_voltage.
  return config_.mcu_start_voltage /
             (2.0 * static_cast<Real>(config_.stages)) +
         config_.diode_drop;
}

Real Harvester::step(Real dt, Real vin_peak, Real load_current) {
  if (dt <= 0.0) throw std::invalid_argument("Harvester::step: dt <= 0");
  const Real voc = open_circuit_voltage(vin_peak);
  const Real rc = config_.source_resistance * config_.storage_cap;
  // Exact RC relaxation toward voc, then the load discharge.
  v_cap_ = voc + (v_cap_ - voc) * std::exp(-dt / rc);
  v_cap_ -= load_current * dt / config_.storage_cap;
  v_cap_ = std::max<Real>(v_cap_, 0.0);

  if (!powered_ && v_cap_ >= config_.mcu_start_voltage) powered_ = true;
  if (powered_ && v_cap_ < config_.ldo_output + config_.ldo_dropout) {
    powered_ = false;  // brown-out
  }
  return v_cap_;
}

void Harvester::reset() {
  v_cap_ = 0.0;
  powered_ = false;
}

void Harvester::save(dsp::ser::Writer& w) const {
  w.real("hv.v_cap", v_cap_);
  w.u64("hv.powered", powered_ ? 1 : 0);
}

void Harvester::load(dsp::ser::Reader& r) {
  v_cap_ = r.real("hv.v_cap");
  powered_ = r.u64("hv.powered") != 0;
}

}  // namespace ecocap::node
