#pragma once

#include <optional>

#include "dsp/types.hpp"

namespace ecocap::dsp::ser {
class Writer;
class Reader;
}  // namespace ecocap::dsp::ser

namespace ecocap::node {

using dsp::Real;

/// Behavioural model of the EcoCapsule energy harvester (paper §4.2): a
/// four-stage Dickson voltage multiplier rectifying the PZT's AC output into
/// a storage capacitor, followed by a 1.8 V LDO (LP5900SD-1.8). The cold
/// start (Fig. 14) is the RC charge of the storage capacitor up to the MCU
/// activation threshold.
struct HarvesterConfig {
  int stages = 4;              // multiplier stages
  Real diode_drop = 0.2;       // V per Schottky diode
  Real storage_cap = 47e-6;    // F
  Real source_resistance = 653.0;  // ohm, PZT + multiplier output impedance
  Real mcu_start_voltage = 2.0;    // V on the storage cap that boots the MCU
  Real ldo_output = 1.8;           // V regulated rail
  Real ldo_dropout = 0.1;          // V minimum headroom above the rail
};

class Harvester {
 public:
  explicit Harvester(HarvesterConfig config = {});

  /// Open-circuit DC voltage produced from a sinusoidal PZT amplitude
  /// `vin_peak`: 2 * stages * (vin - diode_drop), clamped at 0.
  Real open_circuit_voltage(Real vin_peak) const;

  /// Cold-start time (s) from an empty capacitor at constant input
  /// amplitude; nullopt when the input can never reach the MCU start
  /// threshold (the paper's 500 mV activation floor).
  std::optional<Real> cold_start_time(Real vin_peak) const;

  /// Minimum PZT amplitude that can ever boot the MCU.
  Real minimum_activation_voltage() const;

  /// --- streaming simulation (used by the end-to-end link) ---

  /// Advance the storage-cap state by dt seconds with the given input
  /// amplitude and load current draw (A). Returns the new cap voltage.
  Real step(Real dt, Real vin_peak, Real load_current = 0.0);

  /// Storage capacitor voltage.
  Real cap_voltage() const { return v_cap_; }

  /// True once the cap passed the MCU start threshold (sticky until the cap
  /// droops below the LDO dropout floor).
  bool mcu_powered() const { return powered_; }

  void reset();

  /// Bit-exact storage-cap state round trip.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

  const HarvesterConfig& config() const { return config_; }

 private:
  HarvesterConfig config_;
  Real v_cap_ = 0.0;
  bool powered_ = false;
};

}  // namespace ecocap::node
