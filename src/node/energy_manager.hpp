#pragma once

#include <optional>

#include "node/harvester.hpp"
#include "node/power_model.hpp"

namespace ecocap::node {

/// Harvest-aware duty cycling (§5.2 economics): an EcoCapsule harvests
/// continuously from the CBW but transmitting costs ~4.5x standby, so a
/// node deep in the wall may only afford intermittent responses. The
/// energy manager answers: at this harvested input, what fraction of the
/// time can the node be active, and how long must it recharge between
/// transmissions?
class EnergyManager {
 public:
  /// @param conversion_efficiency fraction of the matched-source power the
  ///        multiplier + LDO actually deliver to the rail; microwatt-scale
  ///        Dickson harvesters sit around a few percent.
  EnergyManager(HarvesterConfig harvester = {}, PowerModel power = {},
                Real conversion_efficiency = 0.05);

  /// Continuous harvested power (W) at a PZT input amplitude `vin_peak`:
  /// the matched-source power Voc^2 / (4 R) times the conversion
  /// efficiency, gated on the LDO headroom.
  Real harvest_power(Real vin_peak) const;

  /// Maximum sustainable duty cycle of active transmission at the given
  /// input amplitude and uplink bitrate: balance
  ///   harvest = duty * P_active + (1 - duty) * P_standby.
  /// Clamped to [0, 1]; 0 when even standby cannot be sustained.
  Real sustainable_duty(Real vin_peak, Real bitrate, Real blf = 4000.0) const;

  /// Can the node run continuously at this input?
  bool continuous_operation(Real vin_peak, Real bitrate) const;

  /// Recharge time needed between transmissions: after a burst of
  /// `tx_seconds` active at `bitrate`, how long must the node sit in
  /// standby for the storage cap to recover the spent charge? nullopt when
  /// the input cannot even cover standby (the node will eventually brown
  /// out).
  std::optional<Real> recharge_time(Real vin_peak, Real tx_seconds,
                                    Real bitrate) const;

  /// Minimum input amplitude for indefinite standby (the "keep listening"
  /// threshold, distinct from the Fig. 14 cold-start threshold).
  Real standby_threshold_voltage() const;

 private:
  HarvesterConfig harvester_;
  PowerModel power_;
  Real efficiency_;
};

}  // namespace ecocap::node
