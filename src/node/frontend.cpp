#include "node/frontend.hpp"

namespace ecocap::node {

AnalogFrontend::AnalogFrontend(Real fs, Real envelope_cutoff)
    : detector_(fs, envelope_cutoff), slicer_(0.55, 0.45, 0.999995) {}

std::vector<bool> AnalogFrontend::demodulate(std::span<const Real> acoustic) {
  std::vector<bool> out;
  demodulate(acoustic, out);
  return out;
}

void AnalogFrontend::demodulate(std::span<const Real> acoustic,
                                std::vector<bool>& out) {
  out.resize(acoustic.size());
  for (std::size_t i = 0; i < acoustic.size(); ++i) {
    out[i] = slicer_.process(detector_.process(acoustic[i]));
  }
}

Signal AnalogFrontend::envelope(std::span<const Real> acoustic) {
  Signal out(acoustic.size());
  for (std::size_t i = 0; i < acoustic.size(); ++i) {
    out[i] = detector_.process(acoustic[i]);
  }
  return out;
}

void AnalogFrontend::reset() {
  detector_.reset();
  slicer_.reset();
}

}  // namespace ecocap::node
