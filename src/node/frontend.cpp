#include "node/frontend.hpp"

namespace ecocap::node {

AnalogFrontend::AnalogFrontend(Real fs, Real envelope_cutoff)
    : detector_(fs, envelope_cutoff), slicer_(0.55, 0.45, 0.999995) {}

std::vector<bool> AnalogFrontend::demodulate(std::span<const Real> acoustic) {
  std::vector<bool> out;
  demodulate(acoustic, out);
  return out;
}

void AnalogFrontend::demodulate(std::span<const Real> acoustic,
                                std::vector<bool>& out) {
  // Batch the envelope through the SIMD kernel table; only the slicer's
  // inherently sequential hysteresis stays sample-by-sample.
  detector_.process(acoustic, env_);
  out.resize(acoustic.size());
  for (std::size_t i = 0; i < acoustic.size(); ++i) {
    out[i] = slicer_.process(env_[i]);
  }
}

Signal AnalogFrontend::envelope(std::span<const Real> acoustic) {
  return detector_.process(acoustic);
}

void AnalogFrontend::reset() {
  detector_.reset();
  slicer_.reset();
}

}  // namespace ecocap::node
