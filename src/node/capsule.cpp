#include "node/capsule.hpp"

#include <algorithm>

#include "dsp/signal_ops.hpp"

namespace ecocap::node {

EcoCapsule::EcoCapsule(CapsuleConfig config, double fs, std::uint64_t seed)
    : config_(config),
      fs_(fs),
      shell_(config.shell),
      hra_(wave::HelmholtzResonator::paper_prototype(), config.hra_cells),
      harvester_(config.harvester),
      frontend_(fs),
      firmware_(config.firmware, seed) {}

CapsuleRxResult EcoCapsule::receive(std::span<const dsp::Real> acoustic,
                                    const ConcreteEnvironment& env) {
  CapsuleRxResult result;
  if (acoustic.empty()) return result;

  // 1. Harvest: the HRA amplifies the arriving vibration before the PZT;
  //    charge the storage cap in coarse time steps using the local peak
  //    amplitude as the rectifier input.
  const std::size_t chunk = static_cast<std::size_t>(fs_ / 1000.0);  // 1 ms
  const PowerBreakdown draw = config_.power.standby();
  const double rail = config_.harvester.ldo_output;
  for (std::size_t i = 0; i < acoustic.size(); i += chunk) {
    const std::size_t n = std::min(chunk, acoustic.size() - i);
    const double amp =
        dsp::peak(acoustic.subspan(i, n)) * config_.hra_gain;
    const double load =
        (harvester_.mcu_powered() ? draw.total() / rail : 0.0) +
        extra_load_amps_;
    harvester_.step(static_cast<double>(n) / fs_, amp, load);
  }
  result.cap_voltage = harvester_.cap_voltage();
  result.powered = harvester_.mcu_powered();
  if (result.powered) {
    firmware_.power_on();
  } else {
    firmware_.power_off();
    return result;
  }

  // 2. Demodulate and run the protocol. The level buffer is a member so
  //    repeated interrogations reuse its capacity.
  frontend_.demodulate(acoustic, levels_);
  result.frames = firmware_.process_downlink(levels_, fs_, env);
  return result;
}

void EcoCapsule::backscatter(const UplinkFrame& frame,
                             std::span<const dsp::Real> incident_carrier,
                             dsp::Workspace& ws, dsp::Signal& out) {
  phy::Fm0Params line = config_.firmware.uplink;
  line.bitrate = frame.bitrate;
  auto switching = ws.real(0);
  phy::fm0_encode_frame(frame.payload, line, fs_, *switching);
  phy::BackscatterParams bp = config_.backscatter;
  bp.f_blf = frame.blf;
  phy::backscatter_modulate(incident_carrier, *switching, fs_, bp, out);
}

}  // namespace ecocap::node
