#pragma once

#include "dsp/types.hpp"

namespace ecocap::node {

using dsp::Real;

/// Power accounting for the EcoCapsule electronics (paper §5.2, Fig. 13,
/// measured with TI EnergyTrace). The MSP430G2553 draws 414 uW active and
/// 0.9 uW asleep; standby (LPM3 + envelope receiver armed) totals 80.1 uW;
/// a transmitting node sits near 360 uW nearly independent of bitrate
/// (the impedance switch is quasi-static and its toggle energy is tiny).
struct PowerBreakdown {
  Real mcu = 0.0;        // W
  Real receiver = 0.0;   // W (level shifter + comparator)
  Real switch_drv = 0.0; // W (impedance switch driver)
  Real sensors = 0.0;    // W (quiescent sensor rail)

  Real total() const { return mcu + receiver + switch_drv + sensors; }
};

struct PowerModel {
  Real mcu_active = 280.0e-6;   // W, MSP430 running the protocol loop
  Real mcu_sleep = 0.9e-6;      // W, LPM4
  Real mcu_standby = 52.0e-6;   // W, LPM3 + timer capture armed
  Real receiver = 28.1e-6;      // W, always on while powered
  Real switch_driver = 36.0e-6; // W while backscattering
  Real sensor_rail = 16.0e-6;   // W while a sensor is powered
  Real toggle_energy = 0.6e-9;  // J per impedance-switch transition

  /// Standby: waiting to receive/decode downlink (bitrate 0 in Fig. 13).
  PowerBreakdown standby() const;

  /// Active transmit at the given uplink bitrate (FM0: <= 2 transitions
  /// per bit plus the BLF subcarrier toggles when enabled).
  PowerBreakdown active(Real bitrate, Real blf = 0.0) const;

  /// Deep sleep (between interrogation sessions).
  PowerBreakdown sleep() const;
};

}  // namespace ecocap::node
