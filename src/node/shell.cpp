#include "node/shell.hpp"

#include <stdexcept>

namespace ecocap::node {

ShellMaterial ShellMaterial::sla_resin() {
  ShellMaterial m;
  m.name = "SLA-resin";
  m.tensile_strength = 65.0e6;
  m.youngs_modulus = 2.2e9;
  m.max_pressure_difference = 4.3e6;  // paper's FEA result
  return m;
}

ShellMaterial ShellMaterial::alloy_steel() {
  ShellMaterial m;
  m.name = "alloy-steel";
  m.tensile_strength = 550.0e6;
  m.youngs_modulus = 200.0e9;
  m.max_pressure_difference = 115.2e6;  // paper's FEA result
  return m;
}

Shell::Shell(ShellConfig config) : config_(config) {
  if (config_.diameter <= 0.0 || config_.wall_thickness <= 0.0) {
    throw std::invalid_argument("Shell: invalid geometry");
  }
}

Real Shell::pressure_difference(Real height, Real concrete_density) const {
  if (height < 0.0) throw std::invalid_argument("Shell: negative height");
  return concrete_density * kGravity * height - kStandardAtmosphere;
}

Real Shell::max_building_height(Real concrete_density) const {
  return (config_.material.max_pressure_difference + kStandardAtmosphere) /
         (concrete_density * kGravity);
}

bool Shell::survives(Real height, Real concrete_density) const {
  return pressure_difference(height, concrete_density) <=
         config_.material.max_pressure_difference;
}

Real Shell::membrane_stress(Real pressure_difference) const {
  const Real r = config_.diameter / 2.0;
  return pressure_difference * r / (2.0 * config_.wall_thickness);
}

Real Shell::deformation_fraction(Real pressure_difference,
                                 Real poisson) const {
  const Real sigma = membrane_stress(pressure_difference);
  return sigma * (1.0 - poisson) / config_.material.youngs_modulus;
}

bool Shell::survives_casting(Real pour_depth, Real fresh_density) const {
  const Real dp = fresh_density * kGravity * pour_depth;
  return dp <= config_.material.max_pressure_difference;
}

}  // namespace ecocap::node
