#include "node/sensors.hpp"

#include <algorithm>
#include <cmath>

namespace ecocap::node {

namespace {

/// Quantize to a step size (ADC / digital word resolution).
Real quantize(Real v, Real step) { return std::round(v / step) * step; }

}  // namespace

Real Aht10Temperature::sample(const ConcreteEnvironment& env,
                              dsp::Rng& rng) const {
  const Real clamped = std::clamp<Real>(env.temperature_c, -40.0, 85.0);
  const Real noisy = clamped + rng.gaussian(0.1);  // +-0.3 C @ 3 sigma
  // 20-bit word over the -50..150 C span -> ~0.0002 C steps; the datasheet
  // resolution is 0.01 C after conversion.
  return quantize(noisy, 0.01);
}

Real Aht10Humidity::sample(const ConcreteEnvironment& env,
                           dsp::Rng& rng) const {
  const Real clamped = std::clamp<Real>(env.relative_humidity, 0.0, 100.0);
  const Real noisy = clamped + rng.gaussian(0.7);  // +-2 % @ 3 sigma
  return std::clamp<Real>(quantize(noisy, 0.024), 0.0, 100.0);
}

Real BridgeStrainGauge::sample(const ConcreteEnvironment& env,
                               dsp::Rng& rng) const {
  const Real strain = axis_x_ ? env.strain_x : env.strain_y;
  const Real microstrain = strain * 1.0e6;
  // Full bridge, gauge factor 2, 1.8 V excitation into a 10-bit ADC over a
  // +-2000 ue range -> ~3.9 ue per LSB; thermal noise ~1 ue rms.
  const Real noisy = microstrain + rng.gaussian(1.0);
  const Real clamped = std::clamp<Real>(noisy, -2000.0, 2000.0);
  return quantize(clamped, 4000.0 / 1024.0);
}

Real Accelerometer::sample(const ConcreteEnvironment& env,
                           dsp::Rng& rng) const {
  const Real noisy = env.acceleration + rng.gaussian(0.002);
  return quantize(std::clamp<Real>(noisy, -19.6, 19.6), 19.6 * 2.0 / 4096.0);
}

Real StressSensor::sample(const ConcreteEnvironment& env,
                          dsp::Rng& rng) const {
  const Real noisy = env.stress_mpa + rng.gaussian(0.05);
  return quantize(noisy, 0.01);
}

std::vector<std::unique_ptr<Sensor>> default_sensor_suite() {
  std::vector<std::unique_ptr<Sensor>> s;
  s.push_back(std::make_unique<Aht10Temperature>());
  s.push_back(std::make_unique<Aht10Humidity>());
  s.push_back(std::make_unique<BridgeStrainGauge>(true));
  s.push_back(std::make_unique<BridgeStrainGauge>(false));
  s.push_back(std::make_unique<Accelerometer>());
  s.push_back(std::make_unique<StressSensor>());
  return s;
}

}  // namespace ecocap::node
