#include "node/energy_manager.hpp"

#include <algorithm>
#include <cmath>

namespace ecocap::node {

EnergyManager::EnergyManager(HarvesterConfig harvester, PowerModel power,
                             Real conversion_efficiency)
    : harvester_(harvester),
      power_(power),
      efficiency_(conversion_efficiency) {}

Real EnergyManager::harvest_power(Real vin_peak) const {
  const Real per_stage = std::max<Real>(vin_peak - harvester_.diode_drop, 0.0);
  const Real voc = 2.0 * static_cast<Real>(harvester_.stages) * per_stage;
  if (voc <= harvester_.ldo_output + harvester_.ldo_dropout) return 0.0;
  // Matched-source power derated by the conversion efficiency.
  return efficiency_ * voc * voc / (4.0 * harvester_.source_resistance);
}

Real EnergyManager::sustainable_duty(Real vin_peak, Real bitrate,
                                     Real blf) const {
  const Real h = harvest_power(vin_peak);
  const Real p_active = power_.active(bitrate, blf).total();
  const Real p_standby = power_.standby().total();
  if (h <= p_standby) return 0.0;
  if (h >= p_active) return 1.0;
  return (h - p_standby) / (p_active - p_standby);
}

bool EnergyManager::continuous_operation(Real vin_peak, Real bitrate) const {
  return harvest_power(vin_peak) >= power_.active(bitrate).total();
}

std::optional<Real> EnergyManager::recharge_time(Real vin_peak,
                                                 Real tx_seconds,
                                                 Real bitrate) const {
  const Real h = harvest_power(vin_peak);
  const Real p_standby = power_.standby().total();
  if (h <= p_standby) return std::nullopt;
  const Real p_active = power_.active(bitrate).total();
  const Real deficit = std::max<Real>(p_active - h, 0.0) * tx_seconds;
  return deficit / (h - p_standby);
}

Real EnergyManager::standby_threshold_voltage() const {
  // Invert harvest_power(v) == P_standby.
  const Real p_standby = power_.standby().total();
  const Real voc_needed = std::sqrt(
      4.0 * harvester_.source_resistance * p_standby / efficiency_);
  const Real floor_voc = harvester_.ldo_output + harvester_.ldo_dropout;
  const Real voc = std::max(voc_needed, floor_voc);
  return voc / (2.0 * static_cast<Real>(harvester_.stages)) +
         harvester_.diode_drop;
}

}  // namespace ecocap::node
