#pragma once

#include <memory>

#include "dsp/workspace.hpp"
#include "node/firmware.hpp"
#include "node/frontend.hpp"
#include "node/harvester.hpp"
#include "node/power_model.hpp"
#include "node/shell.hpp"
#include "phy/carrier.hpp"
#include "wave/helmholtz.hpp"

namespace ecocap::node {

/// Full EcoCapsule assembly (paper §4, Fig. 8): the stressless shell, the
/// Helmholtz resonator array in front of the 10 mm PZT, the battery-free
/// motherboard (harvester + MCU + frontend) and the firmware image.
struct CapsuleConfig {
  FirmwareConfig firmware;
  HarvesterConfig harvester;
  ShellConfig shell;
  PowerModel power;
  phy::BackscatterParams backscatter;
  /// HRA receive gain at the carrier frequency (ablation knob).
  double hra_gain = 2.0;
  int hra_cells = 7;
};

/// Result of a full interrogation round at the waveform level.
struct CapsuleRxResult {
  bool powered = false;
  std::vector<UplinkFrame> frames;   // scheduled uplink transmissions
  double cap_voltage = 0.0;
};

class EcoCapsule {
 public:
  /// @param fs acoustic simulation sample rate
  EcoCapsule(CapsuleConfig config, double fs, std::uint64_t seed);

  /// Process an incoming acoustic waveform at the capsule's PZT: harvest
  /// (amplitude -> storage cap), demodulate, run the firmware, and return
  /// any scheduled uplink frames. The environment is the local concrete
  /// state for sensor reads.
  CapsuleRxResult receive(std::span<const dsp::Real> acoustic,
                          const ConcreteEnvironment& env);

  /// Produce the backscatter emission for an uplink frame given the
  /// incident carrier at the node (the switch modulates the reflection),
  /// into a caller-provided buffer; the FM0 switching waveform
  /// lives in a workspace lease instead of a fresh heap allocation.
  /// `out` must not alias `incident_carrier`.
  void backscatter(const UplinkFrame& frame,
                   std::span<const dsp::Real> incident_carrier,
                   dsp::Workspace& ws, dsp::Signal& out);

  /// Constant parasitic load (A) on the storage cap, on top of the MCU
  /// draw — the fault layer's aged/leaky-cap model. Drains even while the
  /// MCU is off (a leak does not wait for boot). Zero by default.
  void set_extra_load_amps(double amps) { extra_load_amps_ = amps; }
  double extra_load_amps() const { return extra_load_amps_; }

  /// Direct access for tests and experiments.
  Firmware& firmware() { return firmware_; }
  Harvester& harvester() { return harvester_; }
  const Shell& shell() const { return shell_; }
  const wave::HelmholtzArray& hra() const { return hra_; }
  const CapsuleConfig& config() const { return config_; }
  double fs() const { return fs_; }

 private:
  CapsuleConfig config_;
  double fs_;
  Shell shell_;
  wave::HelmholtzArray hra_;
  Harvester harvester_;
  AnalogFrontend frontend_;
  Firmware firmware_;
  double extra_load_amps_ = 0.0;
  /// Demodulated level buffer reused across receive() calls.
  std::vector<bool> levels_;
};

}  // namespace ecocap::node
