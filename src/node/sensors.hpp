#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace ecocap::node {

using dsp::Real;

/// Physical conditions inside the concrete at the capsule's location. The
/// SHM application layer drives this; the sensor models read from it.
struct ConcreteEnvironment {
  Real temperature_c = 25.0;       // internal temperature
  Real relative_humidity = 80.0;   // internal relative humidity, %
  Real strain_x = 0.0;             // dimensionless strain (x direction)
  Real strain_y = 0.0;             // dimensionless strain (y direction)
  Real acceleration = 0.0;         // m/s^2 (structure vibration)
  Real stress_mpa = 0.0;           // local stress, MPa
};

/// Sensor ids on the extensible peripheral interface (paper §4.2 tests
/// temperature, humidity and strain; the pilot study also reports
/// acceleration and stress from inside).
enum class SensorId : std::uint8_t {
  kTemperature = 1,  // AHT10
  kHumidity = 2,     // AHT10
  kStrainX = 3,      // BFH1K-3EB full bridge
  kStrainY = 4,
  kAcceleration = 5,
  kStress = 6,
};

/// A sensor attached to the capsule's peripheral interface. Models quantize
/// and add noise the way the real parts do.
class Sensor {
 public:
  virtual ~Sensor() = default;
  virtual SensorId id() const = 0;
  virtual std::string name() const = 0;
  /// One sample of the physical quantity, with device noise/quantization.
  virtual Real sample(const ConcreteEnvironment& env, dsp::Rng& rng) const = 0;
  /// Measurement unit, for reports.
  virtual std::string unit() const = 0;
};

/// AHT10 integrated temperature + humidity sensor (I2C, 20-bit raw words).
/// Temperature: -40..85 C, +-0.3 C accuracy. Humidity: 0..100 %, +-2 %.
class Aht10Temperature : public Sensor {
 public:
  SensorId id() const override { return SensorId::kTemperature; }
  std::string name() const override { return "AHT10-temperature"; }
  std::string unit() const override { return "degC"; }
  Real sample(const ConcreteEnvironment& env, dsp::Rng& rng) const override;
};

class Aht10Humidity : public Sensor {
 public:
  SensorId id() const override { return SensorId::kHumidity; }
  std::string name() const override { return "AHT10-humidity"; }
  std::string unit() const override { return "%RH"; }
  Real sample(const ConcreteEnvironment& env, dsp::Rng& rng) const override;
};

/// BFH1K-3EB full-bridge foil strain gauge glued to the shell back,
/// measuring two-directional internal strain through a 10-bit ADC.
/// Reports microstrain.
class BridgeStrainGauge : public Sensor {
 public:
  /// @param axis_x true: x direction, false: y direction
  explicit BridgeStrainGauge(bool axis_x) : axis_x_(axis_x) {}
  SensorId id() const override {
    return axis_x_ ? SensorId::kStrainX : SensorId::kStrainY;
  }
  std::string name() const override {
    return axis_x_ ? "BFH1K-strain-x" : "BFH1K-strain-y";
  }
  std::string unit() const override { return "ue"; }
  Real sample(const ConcreteEnvironment& env, dsp::Rng& rng) const override;

 private:
  bool axis_x_;
};

/// MEMS accelerometer on the peripheral rail (pilot study, Fig. 21).
class Accelerometer : public Sensor {
 public:
  SensorId id() const override { return SensorId::kAcceleration; }
  std::string name() const override { return "accelerometer"; }
  std::string unit() const override { return "m/s^2"; }
  Real sample(const ConcreteEnvironment& env, dsp::Rng& rng) const override;
};

/// Derived stress reading: strain * elastic modulus of the surrounding
/// concrete, reported in MPa (what Fig. 21(b) plots).
class StressSensor : public Sensor {
 public:
  SensorId id() const override { return SensorId::kStress; }
  std::string name() const override { return "stress"; }
  std::string unit() const override { return "MPa"; }
  Real sample(const ConcreteEnvironment& env, dsp::Rng& rng) const override;
};

/// The standard sensor suite soldered onto the prototype motherboard.
std::vector<std::unique_ptr<Sensor>> default_sensor_suite();

}  // namespace ecocap::node
