#include "node/power_model.hpp"

namespace ecocap::node {

PowerBreakdown PowerModel::standby() const {
  PowerBreakdown p;
  p.mcu = mcu_standby;
  p.receiver = receiver;
  return p;
}

PowerBreakdown PowerModel::active(Real bitrate, Real blf) const {
  PowerBreakdown p;
  p.mcu = mcu_active;
  p.receiver = receiver;
  // FM0 has at most 2 transitions per bit; the subcarrier adds 2 per cycle.
  const Real transitions_per_s = 2.0 * bitrate + (blf > 0.0 ? 2.0 * blf : 0.0);
  p.switch_drv = switch_driver + toggle_energy * transitions_per_s;
  p.sensors = sensor_rail;
  return p;
}

PowerBreakdown PowerModel::sleep() const {
  PowerBreakdown p;
  p.mcu = mcu_sleep;
  return p;
}

}  // namespace ecocap::node
