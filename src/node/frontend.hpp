#pragma once

#include <span>
#include <vector>

#include "dsp/envelope.hpp"
#include "dsp/types.hpp"

namespace ecocap::node {

using dsp::Real;
using dsp::Signal;

/// The node's passive analog receive chain (paper §4.2): the voltage
/// multiplier doubles as an envelope detector, and the TXB0302 level
/// shifter binarizes the demodulated baseband for the MCU's timer-capture
/// pin. Everything here runs from harvested power.
class AnalogFrontend {
 public:
  /// @param fs sample rate of the acoustic input
  /// @param envelope_cutoff RC corner of the detector; must sit between the
  ///        PIE symbol rate and the carrier (default suits 1 ms taris under
  ///        a 230 kHz carrier)
  explicit AnalogFrontend(Real fs, Real envelope_cutoff = 20.0e3);

  /// Demodulate an acoustic waveform at the PZT into the binarized
  /// baseband the MCU sees.
  std::vector<bool> demodulate(std::span<const Real> acoustic);

  /// Demodulate into a caller-provided buffer (resized to match), so a
  /// capsule can reuse one level buffer across receive() calls.
  void demodulate(std::span<const Real> acoustic, std::vector<bool>& out);

  /// The analog envelope itself (for harvesting and diagnostics).
  Signal envelope(std::span<const Real> acoustic);

  void reset();

 private:
  dsp::EnvelopeDetector detector_;
  dsp::HysteresisSlicer slicer_;
  Signal env_;  // scratch for the batch envelope pass inside demodulate()
};

}  // namespace ecocap::node
