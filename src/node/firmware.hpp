#pragma once

#include <optional>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/serialize.hpp"
#include "node/sensors.hpp"
#include "phy/fm0.hpp"
#include "phy/pie.hpp"
#include "phy/protocol.hpp"

namespace ecocap::node {

/// MCU operating states (§4.2 / §5.2).
enum class McuState {
  kOff,       // below activation; harvesting only
  kStandby,   // powered, waiting for downlink (80.1 uW)
  kArbitrate, // inventory round running, slot counter > 0
  kReplied,   // sent RN16, waiting for ACK
  kAcked,     // acknowledged: serves Read/SetBlf
};

/// Static configuration of a node's firmware image.
struct FirmwareConfig {
  std::uint16_t node_id = 0;      // used to seed the RN16 generator
  phy::Fm0Params uplink;          // bitrate etc.
  double blf = 4000.0;            // backscatter link frequency (Hz)
  phy::PieParams downlink;        // expected downlink timing
};

/// One uplink transmission the firmware schedules in response to downlink
/// commands: payload bits plus how they must be line-coded.
struct UplinkFrame {
  phy::Bits payload;
  double bitrate = 1000.0;
  double blf = 4000.0;
};

/// The EcoCapsule firmware: a cycle-agnostic reimplementation of the
/// MSP430G2553 program. It consumes the binarized downlink baseband
/// (timer-capture edges), runs the Gen2-style slotted inventory state
/// machine, samples sensors over the modelled ADC/I2C, and emits FM0
/// frames for the backscatter switch.
class Firmware {
 public:
  Firmware(FirmwareConfig config, std::uint64_t seed);

  /// Feed a contiguous chunk of demodulated baseband; returns the frames
  /// the node backscatters in order. `fs` is the baseband sample rate.
  /// The environment is sampled at Read time.
  std::vector<UplinkFrame> process_downlink(const std::vector<bool>& levels,
                                            double fs,
                                            const ConcreteEnvironment& env);

  /// Handle one parsed command directly (the protocol-level entry point;
  /// process_downlink uses it after PIE decoding).
  std::optional<UplinkFrame> handle_command(const phy::Command& cmd,
                                            const ConcreteEnvironment& env);

  McuState state() const { return state_; }
  std::uint16_t current_rn16() const { return rn16_; }
  int slot_counter() const { return slot_; }
  /// Whether this node participates in inventory rounds (Select flag).
  bool selected() const { return selected_; }
  const FirmwareConfig& config() const { return config_; }

  /// Attach a sensor (takes ownership). The default suite is attached by
  /// default; tests may start from an empty set.
  void attach_sensor(std::unique_ptr<Sensor> sensor);
  void clear_sensors();

  /// Power events from the harvester.
  void power_on();   // cold start finished -> standby
  void power_off();  // brown-out -> off, state lost

  /// Checkpoint the mutable MCU state: RNG stream, protocol state machine,
  /// RN16, slot counter, Select flag, and the SetBlf-adjusted link settings.
  /// Sensors are stateless models and are not serialized.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  std::optional<UplinkFrame> on_select(const phy::SelectCommand& s);
  std::optional<UplinkFrame> on_query(const phy::QueryCommand& q);
  std::optional<UplinkFrame> on_query_rep();
  std::optional<UplinkFrame> on_ack(const phy::AckCommand& a);
  std::optional<UplinkFrame> on_read(const phy::ReadCommand& r,
                                     const ConcreteEnvironment& env);
  std::optional<UplinkFrame> on_set_blf(const phy::SetBlfCommand& s);
  UplinkFrame make_frame(const phy::Response& resp) const;
  std::uint16_t fresh_rn16();

  FirmwareConfig config_;
  dsp::Rng rng_;
  McuState state_ = McuState::kOff;
  std::uint16_t rn16_ = 0;
  int slot_ = 0;
  bool selected_ = true;  // Select with mask 0 (the default) matches all
  std::vector<std::unique_ptr<Sensor>> sensors_;
};

}  // namespace ecocap::node
