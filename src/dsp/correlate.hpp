#pragma once

#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Full cross-correlation of x against template h:
/// out[k] = sum_i x[k+i] * h[i], k in [0, x.size()-h.size()].
/// (Valid-mode correlation; empty result if h is longer than x.)
Signal correlate_valid(std::span<const Real> x, std::span<const Real> h);

/// Index of the maximum of valid-mode correlation — used for preamble
/// alignment in the reader's FM0 decoder.
std::size_t best_alignment(std::span<const Real> x, std::span<const Real> h);

/// Normalized correlation coefficient between two equal-length buffers,
/// in [-1, 1]. Zero-energy inputs return 0.
Real correlation_coefficient(std::span<const Real> a, std::span<const Real> b);

/// Digital downconversion: multiply the real passband signal by a complex
/// exponential at -f0 and low-pass the result. The caller low-passes; this
/// routine only mixes.
ComplexSignal mix_down(std::span<const Real> x, Real fs, Real f0);

/// Mix into a caller-provided buffer (resized to match).
void mix_down(std::span<const Real> x, Real fs, Real f0, ComplexSignal& out);

/// Magnitude of a complex baseband signal.
Signal complex_magnitude(const ComplexSignal& x);

}  // namespace ecocap::dsp
