#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace ecocap::dsp {

/// Windowed-sinc low-pass FIR design.
/// @param fs sample rate (Hz)
/// @param cutoff -6 dB cutoff (Hz)
/// @param taps number of coefficients (made odd internally for symmetry)
Signal design_lowpass(Real fs, Real cutoff, std::size_t taps,
                      WindowKind window = WindowKind::kHamming);

/// Windowed-sinc high-pass FIR (spectral inversion of the low-pass).
Signal design_highpass(Real fs, Real cutoff, std::size_t taps,
                       WindowKind window = WindowKind::kHamming);

/// Band-pass FIR between f_lo and f_hi (Hz).
Signal design_bandpass(Real fs, Real f_lo, Real f_hi, std::size_t taps,
                       WindowKind window = WindowKind::kHamming);

/// Band-stop (notch) FIR rejecting [f_lo, f_hi]. Used by the reader to carve
/// the continuous-body-wave self-interference out of the uplink band.
Signal design_bandstop(Real fs, Real f_lo, Real f_hi, std::size_t taps,
                       WindowKind window = WindowKind::kHamming);

/// Streaming FIR filter with internal state; one instance per channel.
class FirFilter {
 public:
  explicit FirFilter(Signal coefficients);

  /// Filter a single sample.
  Real process(Real x);

  /// Filter a whole buffer (stateful across calls).
  Signal process(std::span<const Real> x);

  /// Clear delay-line state.
  void reset();

  std::size_t tap_count() const { return coeff_.size(); }
  const Signal& coefficients() const { return coeff_; }

 private:
  Signal coeff_;
  Signal coeff_rev_;  // reversed taps: batch output = correlate(in, coeff_rev_)
  Signal delay_;
  Signal scratch_;    // [history | batch] workspace for the direct path
  std::size_t pos_ = 0;
};

/// Zero-phase convenience: filter a finite buffer and compensate the FIR
/// group delay (taps-1)/2 so the output aligns with the input in time.
Signal filter_zero_phase(const Signal& coefficients, std::span<const Real> x);

}  // namespace ecocap::dsp
