#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "dsp/biquad.hpp"
#include "dsp/fir.hpp"
#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace ecocap::dsp {

/// Process-wide cache of designed filters. Windowed-sinc FIR design costs
/// O(taps) transcendentals per call and the Monte-Carlo harnesses redesign
/// the *same* filter for every trial (the receiver's baseband low-pass, the
/// channel's resonance biquad); this cache makes the design a one-time cost
/// per unique parameter set. Reads take a shared lock, so `TrialRunner`
/// legs hammering the same key scale without serializing; the first miss
/// for a key designs under the exclusive lock.
///
/// Keys compare the design parameters bit-exactly (doubles via their bit
/// patterns) — two calls get the same entry iff they would have designed
/// the identical filter.
class FilterCache {
 public:
  /// FIR design families the cache can hold.
  enum class FirKind : std::uint8_t {
    kLowpass,
    kHighpass,
    kBandpass,
    kBandstop
  };

  /// A designed band-pass biquad plus its center-frequency magnitude (the
  /// normalization ConcreteChannel::apply_resonance divides by). The stored
  /// prototype has zero state; copy it to filter.
  struct ResonatorDesign {
    Biquad prototype;
    Real peak_gain = 0.0;
  };

  /// The process-wide instance shared by the receiver and channel layers.
  static FilterCache& shared();

  /// Cached equivalents of the dsp design functions. The returned pointer
  /// stays valid for the life of the process (entries are never evicted).
  std::shared_ptr<const Signal> lowpass(Real fs, Real cutoff, std::size_t taps,
                                        WindowKind window = WindowKind::kHamming);
  std::shared_ptr<const Signal> highpass(Real fs, Real cutoff, std::size_t taps,
                                         WindowKind window = WindowKind::kHamming);
  std::shared_ptr<const Signal> bandpass(Real fs, Real f_lo, Real f_hi,
                                         std::size_t taps,
                                         WindowKind window = WindowKind::kHamming);
  std::shared_ptr<const Signal> bandstop(Real fs, Real f_lo, Real f_hi,
                                         std::size_t taps,
                                         WindowKind window = WindowKind::kHamming);

  /// Cached constant-peak band-pass biquad with its precomputed
  /// center-frequency gain.
  std::shared_ptr<const ResonatorDesign> bandpass_resonator(Real fs, Real f0,
                                                            Real q);

  /// Number of cached designs (FIR + biquad), for tests.
  std::size_t size() const;

  /// Drop every entry. Outstanding shared_ptrs stay valid.
  void clear();

 private:
  struct FirKey {
    std::uint8_t kind;
    std::uint8_t window;
    std::uint64_t fs_bits;
    std::uint64_t f_lo_bits;
    std::uint64_t f_hi_bits;
    std::uint64_t taps;
    bool operator==(const FirKey&) const = default;
  };
  struct BiquadKey {
    std::uint64_t fs_bits;
    std::uint64_t f0_bits;
    std::uint64_t q_bits;
    bool operator==(const BiquadKey&) const = default;
  };
  struct FirKeyHash {
    std::size_t operator()(const FirKey& k) const;
  };
  struct BiquadKeyHash {
    std::size_t operator()(const BiquadKey& k) const;
  };

  std::shared_ptr<const Signal> fir(FirKind kind, Real fs, Real f_lo, Real f_hi,
                                    std::size_t taps, WindowKind window);

  mutable std::shared_mutex mutex_;
  std::unordered_map<FirKey, std::shared_ptr<const Signal>, FirKeyHash> fir_;
  std::unordered_map<BiquadKey, std::shared_ptr<const ResonatorDesign>,
                     BiquadKeyHash>
      biquads_;
};

}  // namespace ecocap::dsp
