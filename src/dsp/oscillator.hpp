#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Phase-continuous sinusoidal oscillator. Used by the reader transmitter to
/// synthesize the continuous body wave (CBW) and to hop between the resonant
/// and off-resonant FSK frequencies without phase discontinuities (a phase
/// jump would itself excite the PZT ring).
class Oscillator {
 public:
  /// @param fs sample rate in Hz
  /// @param frequency initial frequency in Hz
  Oscillator(Real fs, Real frequency);

  /// Change frequency; phase stays continuous.
  void set_frequency(Real frequency);

  Real frequency() const { return frequency_; }

  /// Produce the next sample of amplitude `amplitude`.
  Real next(Real amplitude = 1.0);

  /// Produce `n` samples into a new buffer.
  Signal generate(std::size_t n, Real amplitude = 1.0);

  /// Produce `n` samples into a caller-provided buffer (resized to n).
  void generate(std::size_t n, Real amplitude, Signal& out);

  /// Current phase in radians, wrapped to [0, 2*pi).
  Real phase() const { return phase_; }

  void reset_phase(Real phase = 0.0) { phase_ = phase; }

 private:
  Real fs_;
  Real frequency_;
  Real phase_ = 0.0;
  Real step_;
};

/// Convenience: a single tone of `n` samples at frequency f (Hz), fs (Hz).
Signal tone(Real fs, Real f, std::size_t n, Real amplitude = 1.0,
            Real phase0 = 0.0);

/// Linear chirp from f0 to f1 across n samples, used by the frequency-sweep
/// characterization experiments (Fig. 5).
Signal chirp(Real fs, Real f0, Real f1, std::size_t n, Real amplitude = 1.0);

}  // namespace ecocap::dsp
