#include "dsp/signal_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecocap::dsp {

Real mean(std::span<const Real> x) {
  if (x.empty()) return 0.0;
  Real sum = 0.0;
  for (Real v : x) sum += v;
  return sum / static_cast<Real>(x.size());
}

Real power(std::span<const Real> x) {
  if (x.empty()) return 0.0;
  Real sum = 0.0;
  for (Real v : x) sum += v * v;
  return sum / static_cast<Real>(x.size());
}

Real rms(std::span<const Real> x) { return std::sqrt(power(x)); }

Real peak(std::span<const Real> x) {
  Real p = 0.0;
  for (Real v : x) p = std::max(p, std::abs(v));
  return p;
}

Real energy(std::span<const Real> x) {
  Real sum = 0.0;
  for (Real v : x) sum += v * v;
  return sum;
}

Real to_db(Real power_ratio) {
  if (power_ratio <= 0.0) return -300.0;
  return 10.0 * std::log10(power_ratio);
}

Real from_db(Real db) { return std::pow(10.0, db / 10.0); }

void normalize_peak(Signal& x, Real target) {
  const Real p = peak(x);
  if (p <= 0.0) return;
  const Real g = target / p;
  for (Real& v : x) v *= g;
}

Signal add(std::span<const Real> a, std::span<const Real> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dsp::add: size mismatch");
  }
  Signal out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Signal multiply(std::span<const Real> a, std::span<const Real> b) {
  Signal out;
  multiply(a, b, out);
  return out;
}

void multiply(std::span<const Real> a, std::span<const Real> b, Signal& out) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dsp::multiply: size mismatch");
  }
  // Aliased (in-place) calls already have out.size() == a.size(), so the
  // resize never reallocates under the input spans.
  out.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void scale(Signal& x, Real gain) {
  for (Real& v : x) v *= gain;
}

void add_awgn(Signal& x, Real sigma, Rng& rng) {
  for (Real& v : x) v += rng.gaussian(sigma);
}

Real add_awgn_snr(Signal& x, Real snr_db, Rng& rng) {
  const Real p = power(x);
  if (p <= 0.0) return 0.0;
  const Real noise_power = p / from_db(snr_db);
  const Real sigma = std::sqrt(noise_power);
  add_awgn(x, sigma, rng);
  return sigma;
}

Real measure_snr_db(std::span<const Real> reference,
                    std::span<const Real> observed) {
  if (reference.size() != observed.size()) {
    throw std::invalid_argument("dsp::measure_snr_db: size mismatch");
  }
  Real sig = 0.0;
  Real noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    sig += reference[i] * reference[i];
    const Real d = observed[i] - reference[i];
    noise += d * d;
  }
  if (noise <= 0.0) return 300.0;
  return to_db(sig / noise);
}

Signal concat(std::span<const Real> a, std::span<const Real> b) {
  Signal out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Signal slice(std::span<const Real> x, std::size_t start, std::size_t count) {
  Signal out(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = start + i;
    if (j < x.size()) out[i] = x[j];
  }
  return out;
}

}  // namespace ecocap::dsp
