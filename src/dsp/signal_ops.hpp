#pragma once

#include <span>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Mean of a waveform (0 for empty input).
Real mean(std::span<const Real> x);

/// Mean square power of a waveform (0 for empty input).
Real power(std::span<const Real> x);

/// Root-mean-square amplitude.
Real rms(std::span<const Real> x);

/// Largest absolute sample value.
Real peak(std::span<const Real> x);

/// Total energy (sum of squares).
Real energy(std::span<const Real> x);

/// Linear power ratio -> decibels. Clamps to -300 dB for non-positive input.
Real to_db(Real power_ratio);

/// Decibels -> linear power ratio.
Real from_db(Real db);

/// Scale x in place so that its peak absolute value equals `target`.
/// A silent buffer is left untouched.
void normalize_peak(Signal& x, Real target = 1.0);

/// Element-wise sum of two equally sized signals.
Signal add(std::span<const Real> a, std::span<const Real> b);

/// Element-wise product (e.g. mixing against a local oscillator).
Signal multiply(std::span<const Real> a, std::span<const Real> b);

/// Element-wise product into a caller-provided buffer (resized to match).
/// `out` may alias `a` or `b` for an in-place product.
void multiply(std::span<const Real> a, std::span<const Real> b, Signal& out);

/// Multiply every sample by `gain`.
void scale(Signal& x, Real gain);

/// Add white Gaussian noise with standard deviation `sigma` in place.
void add_awgn(Signal& x, Real sigma, Rng& rng);

/// Add white Gaussian noise such that the resulting SNR (relative to the
/// current signal power) equals `snr_db`. Returns the noise sigma used.
Real add_awgn_snr(Signal& x, Real snr_db, Rng& rng);

/// Measured SNR in dB from a known clean reference and the noisy observation:
/// 10*log10(P_ref / P_(obs-ref)). Inputs must be the same length.
Real measure_snr_db(std::span<const Real> reference,
                    std::span<const Real> observed);

/// Concatenate b after a.
Signal concat(std::span<const Real> a, std::span<const Real> b);

/// Extract samples [start, start+count), zero-padding past the end.
Signal slice(std::span<const Real> x, std::size_t start, std::size_t count);

}  // namespace ecocap::dsp
