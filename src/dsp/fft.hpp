#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// In-place iterative radix-2 FFT. Size must be a power of two.
void fft_inplace(ComplexSignal& x, bool inverse = false);

/// FFT of a real buffer, zero-padded to the next power of two
/// (or to `min_size` if larger).
ComplexSignal fft_real(std::span<const Real> x, std::size_t min_size = 0);

/// One-sided magnitude spectrum of a real signal: bins 0..N/2.
Signal magnitude_spectrum(std::span<const Real> x, std::size_t min_size = 0);

/// Frequency (Hz) of one-sided spectrum bin k for an N-point FFT at rate fs.
Real bin_frequency(std::size_t k, std::size_t fft_size, Real fs);

/// Index of the largest magnitude bin within [f_lo, f_hi] of a one-sided
/// spectrum computed with `fft_size` points at sample rate fs.
std::size_t peak_bin_in_band(std::span<const Real> spectrum,
                             std::size_t fft_size, Real fs, Real f_lo,
                             Real f_hi);

/// Estimate the dominant tone frequency of a real signal within [f_lo, f_hi]
/// using an FFT peak refined by parabolic interpolation. This is the reader's
/// carrier-frequency estimator.
Real estimate_tone_frequency(std::span<const Real> x, Real fs, Real f_lo,
                             Real f_hi);

/// Band power: sum of |X(f)|^2 over [f_lo, f_hi] divided by FFT length, for a
/// real input signal. Used for SNR-in-band measurements and the Fig. 24
/// spectrum analysis.
Real band_power(std::span<const Real> x, Real fs, Real f_lo, Real f_hi);

}  // namespace ecocap::dsp
