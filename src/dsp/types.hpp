#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ecocap::dsp {

/// Sample type used throughout the DSP substrate. Double precision keeps
/// Monte-Carlo BER sweeps numerically honest at the cost of memory we can
/// afford offline.
using Real = double;

/// A sampled waveform. The sample rate is carried alongside by the caller;
/// functions that need it take an explicit `fs` argument so a buffer can be
/// re-interpreted (e.g. after decimation) without copying.
using Signal = std::vector<Real>;

/// Complex sample, used by the FFT and the digital downconverter.
using Complex = std::complex<Real>;

/// A complex baseband waveform.
using ComplexSignal = std::vector<Complex>;

inline constexpr Real kPi = 3.14159265358979323846;
inline constexpr Real kTwoPi = 2.0 * kPi;

}  // namespace ecocap::dsp
