#include "dsp/filter_cache.hpp"

#include <bit>
#include <mutex>

namespace ecocap::dsp {

namespace {

std::uint64_t bits(Real v) { return std::bit_cast<std::uint64_t>(v); }

std::size_t mix(std::size_t seed, std::uint64_t v) {
  // splitmix64-style avalanche, folded into the running seed.
  v += 0x9e3779b97f4a7c15ull + seed;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(v ^ (v >> 31));
}

}  // namespace

std::size_t FilterCache::FirKeyHash::operator()(const FirKey& k) const {
  std::size_t h = mix(0, (static_cast<std::uint64_t>(k.kind) << 8) | k.window);
  h = mix(h, k.fs_bits);
  h = mix(h, k.f_lo_bits);
  h = mix(h, k.f_hi_bits);
  h = mix(h, k.taps);
  return h;
}

std::size_t FilterCache::BiquadKeyHash::operator()(const BiquadKey& k) const {
  std::size_t h = mix(1, k.fs_bits);
  h = mix(h, k.f0_bits);
  h = mix(h, k.q_bits);
  return h;
}

FilterCache& FilterCache::shared() {
  static FilterCache cache;
  return cache;
}

std::shared_ptr<const Signal> FilterCache::fir(FirKind kind, Real fs, Real f_lo,
                                               Real f_hi, std::size_t taps,
                                               WindowKind window) {
  const FirKey key{static_cast<std::uint8_t>(kind),
                   static_cast<std::uint8_t>(window),
                   bits(fs),
                   bits(f_lo),
                   bits(f_hi),
                   static_cast<std::uint64_t>(taps)};
  {
    std::shared_lock lock(mutex_);
    if (auto it = fir_.find(key); it != fir_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  if (auto it = fir_.find(key); it != fir_.end()) return it->second;
  Signal h;
  switch (kind) {
    case FirKind::kLowpass:
      h = design_lowpass(fs, f_lo, taps, window);
      break;
    case FirKind::kHighpass:
      h = design_highpass(fs, f_lo, taps, window);
      break;
    case FirKind::kBandpass:
      h = design_bandpass(fs, f_lo, f_hi, taps, window);
      break;
    case FirKind::kBandstop:
      h = design_bandstop(fs, f_lo, f_hi, taps, window);
      break;
  }
  auto entry = std::make_shared<const Signal>(std::move(h));
  fir_.emplace(key, entry);
  return entry;
}

std::shared_ptr<const Signal> FilterCache::lowpass(Real fs, Real cutoff,
                                                   std::size_t taps,
                                                   WindowKind window) {
  return fir(FirKind::kLowpass, fs, cutoff, 0.0, taps, window);
}

std::shared_ptr<const Signal> FilterCache::highpass(Real fs, Real cutoff,
                                                    std::size_t taps,
                                                    WindowKind window) {
  return fir(FirKind::kHighpass, fs, cutoff, 0.0, taps, window);
}

std::shared_ptr<const Signal> FilterCache::bandpass(Real fs, Real f_lo,
                                                    Real f_hi, std::size_t taps,
                                                    WindowKind window) {
  return fir(FirKind::kBandpass, fs, f_lo, f_hi, taps, window);
}

std::shared_ptr<const Signal> FilterCache::bandstop(Real fs, Real f_lo,
                                                    Real f_hi, std::size_t taps,
                                                    WindowKind window) {
  return fir(FirKind::kBandstop, fs, f_lo, f_hi, taps, window);
}

std::shared_ptr<const FilterCache::ResonatorDesign>
FilterCache::bandpass_resonator(Real fs, Real f0, Real q) {
  const BiquadKey key{bits(fs), bits(f0), bits(q)};
  {
    std::shared_lock lock(mutex_);
    if (auto it = biquads_.find(key); it != biquads_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  if (auto it = biquads_.find(key); it != biquads_.end()) return it->second;
  Biquad bp = Biquad::bandpass(fs, f0, q);
  auto entry = std::make_shared<const ResonatorDesign>(
      ResonatorDesign{bp, bp.magnitude_at(fs, f0)});
  biquads_.emplace(key, entry);
  return entry;
}

std::size_t FilterCache::size() const {
  std::shared_lock lock(mutex_);
  return fir_.size() + biquads_.size();
}

void FilterCache::clear() {
  std::unique_lock lock(mutex_);
  fir_.clear();
  biquads_.clear();
}

}  // namespace ecocap::dsp
