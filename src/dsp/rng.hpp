#pragma once

#include <cstdint>
#include <random>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Deterministic random source for all stochastic models (noise, traffic,
/// slot selection). Every experiment seeds its own Rng so runs are exactly
/// reproducible; nothing in the library touches global random state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard-normal variate.
  Real gaussian() { return normal_(engine_); }

  /// Normal variate with the given standard deviation.
  Real gaussian(Real sigma) { return sigma * normal_(engine_); }

  /// Uniform in [0, 1).
  Real uniform() { return uniform_(engine_); }

  /// Uniform in [lo, hi).
  Real uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(Real p) { return uniform() < p; }

  /// Poisson variate with the given mean.
  int poisson(Real mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Access to the underlying engine for standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<Real> normal_{0.0, 1.0};
  std::uniform_real_distribution<Real> uniform_{0.0, 1.0};
};

}  // namespace ecocap::dsp
