#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <random>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// SplitMix64 finalizer: a bijective avalanche mix over 64-bit words. Used
/// to derive well-separated seeds from (base seed, counter) pairs without
/// any sequential state, so seed derivation itself is parallel-safe.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Counter-derived seed for trial `trial_index` of an experiment seeded with
/// `base_seed`. Two mixing rounds keep nearby (seed, index) pairs far apart
/// in seed space; the result depends only on the pair, never on execution
/// order, which is what makes sharded Monte-Carlo sweeps bit-identical
/// regardless of thread count.
constexpr std::uint64_t trial_seed(std::uint64_t base_seed,
                                   std::uint64_t trial_index) {
  return splitmix64(splitmix64(base_seed) ^
                    splitmix64(trial_index + 0x5851f42d4c957f2dULL));
}

/// Deterministic random source for all stochastic models (noise, traffic,
/// slot selection). Every experiment seeds its own Rng so runs are exactly
/// reproducible; nothing in the library touches global random state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard-normal variate.
  Real gaussian() { return normal_(engine_); }

  /// Normal variate with the given standard deviation.
  Real gaussian(Real sigma) { return sigma * normal_(engine_); }

  /// Uniform in [0, 1).
  Real uniform() { return uniform_(engine_); }

  /// Uniform in [lo, hi).
  Real uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(Real p) { return uniform() < p; }

  /// Poisson variate with the given mean.
  int poisson(Real mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Access to the underlying engine for standard distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Stream the full generator state (engine state vector plus the normal
  /// distribution's cached spare variate) for checkpointing. A loaded Rng
  /// continues the exact draw sequence of the saved one.
  void save(std::ostream& os) const {
    os << engine_ << ' ' << normal_ << ' ' << uniform_;
  }
  void load(std::istream& is) { is >> engine_ >> normal_ >> uniform_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<Real> normal_{0.0, 1.0};
  std::uniform_real_distribution<Real> uniform_{0.0, 1.0};
};

/// Fresh per-trial Rng for Monte-Carlo sweeps: trial `trial_index` of an
/// experiment seeded with `base_seed` always gets the same stream, so a
/// sweep can be sharded across any number of workers and still reproduce
/// the single-threaded run bit for bit.
inline Rng trial_rng(std::uint64_t base_seed, std::uint64_t trial_index) {
  return Rng(trial_seed(base_seed, trial_index));
}

}  // namespace ecocap::dsp
