#pragma once

#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Goertzel single-bin DFT: cheap per-tone power measurement. This mirrors
/// what an MCU-class receiver can afford, and is used by the node-side FSK
/// discrimination tests and by narrowband SNR probes.
///
/// Returns the squared magnitude of the DFT bin nearest `f` over the block.
Real goertzel_power(std::span<const Real> x, Real fs, Real f);

/// Streaming Goertzel over fixed-length blocks.
class Goertzel {
 public:
  Goertzel(Real fs, Real f, std::size_t block_size);

  /// Push one sample; returns true when a block completed (power() is fresh).
  bool push(Real sample);

  /// Squared magnitude of the last completed block.
  Real power() const { return power_; }

  std::size_t block_size() const { return block_size_; }

 private:
  Real coeff_;
  std::size_t block_size_;
  std::size_t count_ = 0;
  Real s1_ = 0.0, s2_ = 0.0;
  Real power_ = 0.0;
};

}  // namespace ecocap::dsp
