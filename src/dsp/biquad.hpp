#pragma once

#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp::ser {
class Writer;
class Reader;
}  // namespace ecocap::dsp::ser

namespace ecocap::dsp {

/// Second-order IIR section (direct form I), designed with the RBJ audio-EQ
/// cookbook formulas. Biquads model the *analog* parts of the system — the
/// PZT mechanical resonance and the envelope-detector RC — where a long FIR
/// would be the wrong physical abstraction.
class Biquad {
 public:
  /// Raw coefficients (already normalized by a0).
  Biquad(Real b0, Real b1, Real b2, Real a1, Real a2);

  /// Resonant low-pass with quality factor q at frequency f0.
  static Biquad lowpass(Real fs, Real f0, Real q);

  /// Resonant high-pass.
  static Biquad highpass(Real fs, Real f0, Real q);

  /// Constant-peak band-pass centered on f0.
  static Biquad bandpass(Real fs, Real f0, Real q);

  /// Notch rejecting f0.
  static Biquad notch(Real fs, Real f0, Real q);

  Real process(Real x);
  Signal process(std::span<const Real> x);
  /// Filter into a caller-provided buffer (resized to match). `out` may be
  /// the buffer `x` views for an in-place pass — direct form I reads each
  /// sample before writing it.
  void process(std::span<const Real> x, Signal& out);
  void reset();

  /// Magnitude response at frequency f (Hz) for sample rate fs.
  Real magnitude_at(Real fs, Real f) const;

  /// Bit-exact filter-state round trip (coefficients are config, not state).
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  Real b0_, b1_, b2_, a1_, a2_;
  Real x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Single-pole RC low-pass, the behavioural model of the envelope detector's
/// smoothing capacitor on the EcoCapsule motherboard.
class OnePoleLowpass {
 public:
  /// @param fs sample rate, @param cutoff -3 dB corner in Hz
  OnePoleLowpass(Real fs, Real cutoff);

  Real process(Real x);
  Signal process(std::span<const Real> x);
  /// Canonical batch form: filter into a caller-provided buffer (resized to
  /// match) with no per-call allocation once `out` has capacity. `out` may
  /// be the buffer `x` views for an in-place pass — the kernel reads each
  /// block before writing it. Runs the block-scan kernel, which differs in
  /// rounding from the per-sample recurrence within documented tolerance.
  void process(std::span<const Real> x, Signal& out);
  void reset() { state_ = 0.0; }

  Real alpha() const { return alpha_; }
  Real state() const { return state_; }
  void set_state(Real s) { state_ = s; }

 private:
  Real alpha_;
  Real state_ = 0.0;
};

}  // namespace ecocap::dsp
