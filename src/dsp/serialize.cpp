#include "dsp/serialize.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ecocap::dsp::ser {

namespace {

[[noreturn]] void fail(std::string_view key, std::string_view what) {
  throw std::runtime_error("checkpoint: " + std::string(what) + " at key '" +
                           std::string(key) + "'");
}

}  // namespace

std::string format_real(Real v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
  return buf;
}

Real parse_real(std::string_view token) {
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("checkpoint: bad real token '" + s + "'");
  }
  return v;
}

Writer::Writer(std::string_view header) {
  out_.append(header);
  out_.push_back('\n');
}

void Writer::kv(std::string_view key, std::string_view value) {
  out_.append(key);
  out_.push_back(' ');
  out_.append(value);
  out_.push_back('\n');
}

void Writer::u64(std::string_view key, std::uint64_t v) {
  kv(key, std::to_string(v));
}

void Writer::i64(std::string_view key, std::int64_t v) {
  kv(key, std::to_string(v));
}

void Writer::real(std::string_view key, Real v) { kv(key, format_real(v)); }

void Writer::real_vec(std::string_view key, const std::vector<Real>& v) {
  std::string line = std::to_string(v.size());
  for (Real x : v) {
    line.push_back(' ');
    line.append(format_real(x));
  }
  kv(key, line);
}

void Writer::u64_vec(std::string_view key, const std::vector<std::uint64_t>& v) {
  std::string line = std::to_string(v.size());
  for (std::uint64_t x : v) {
    line.push_back(' ');
    line.append(std::to_string(x));
  }
  kv(key, line);
}

void Writer::rng(std::string_view key, const Rng& r) {
  std::ostringstream os;
  r.save(os);
  kv(key, os.str());
}

Reader::Reader(std::string content, std::string_view expected_header)
    : content_(std::move(content)) {
  const std::string header = next_line("<header>");
  if (header != expected_header) {
    throw std::runtime_error("checkpoint: header mismatch (got '" + header +
                             "', want '" + std::string(expected_header) + "')");
  }
}

std::string Reader::next_line(std::string_view key) {
  if (pos_ >= content_.size()) fail(key, "unexpected end of file");
  const std::size_t nl = content_.find('\n', pos_);
  if (nl == std::string::npos) fail(key, "truncated line");
  std::string line = content_.substr(pos_, nl - pos_);
  pos_ = nl + 1;
  return line;
}

std::string Reader::kv(std::string_view key) {
  const std::string line = next_line(key);
  const std::size_t sp = line.find(' ');
  const std::string got = line.substr(0, sp);
  if (got != key) fail(key, "key mismatch (got '" + got + "')");
  return sp == std::string::npos ? std::string() : line.substr(sp + 1);
}

std::uint64_t Reader::u64(std::string_view key) {
  const std::string v = kv(key);
  char* end = nullptr;
  errno = 0;
  const std::uint64_t x = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
    fail(key, "bad unsigned integer '" + v + "'");
  }
  return x;
}

std::int64_t Reader::i64(std::string_view key) {
  const std::string v = kv(key);
  char* end = nullptr;
  errno = 0;
  const std::int64_t x = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
    fail(key, "bad integer '" + v + "'");
  }
  return x;
}

Real Reader::real(std::string_view key) { return parse_real(kv(key)); }

std::vector<Real> Reader::real_vec(std::string_view key) {
  std::istringstream is(kv(key));
  std::size_t n = 0;
  if (!(is >> n)) fail(key, "bad vector length");
  std::vector<Real> v;
  v.reserve(n);
  std::string tok;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> tok)) fail(key, "short vector");
    v.push_back(parse_real(tok));
  }
  return v;
}

std::vector<std::uint64_t> Reader::u64_vec(std::string_view key) {
  std::istringstream is(kv(key));
  std::size_t n = 0;
  if (!(is >> n)) fail(key, "bad vector length");
  std::vector<std::uint64_t> v;
  v.reserve(n);
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> x)) fail(key, "short vector");
    v.push_back(x);
  }
  return v;
}

void Reader::rng(std::string_view key, Rng& r) {
  std::istringstream is(kv(key));
  r.load(is);
  if (is.fail()) fail(key, "bad rng state");
}

namespace {

#ifndef _WIN32
/// fsync the directory containing `path`, so a just-completed rename in it
/// is durable across power loss (POSIX persists the rename only once the
/// directory's own metadata reaches disk).
bool sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = content.empty() ||
            std::fwrite(content.data(), 1, content.size(), f) == content.size();
  ok = (std::fflush(f) == 0) && ok;
#ifndef _WIN32
  // Force the temp file's *data* to disk before the rename makes it
  // reachable — otherwise power loss can leave `path` pointing at a
  // zero-length or torn file even though the rename itself survived.
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
#ifndef _WIN32
  // And the rename: the directory entry must hit disk too. The data is
  // already safe, so a failure here still leaves a readable file — but we
  // report it, because the durability contract was not met.
  if (!sync_parent_dir(path)) return false;
#endif
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return content;
}

}  // namespace ecocap::dsp::ser
