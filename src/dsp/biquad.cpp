#include "dsp/biquad.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "dsp/kernels/kernels.hpp"
#include "dsp/serialize.hpp"

namespace ecocap::dsp {

Biquad::Biquad(Real b0, Real b1, Real b2, Real a1, Real a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

namespace {
struct RbjPrelude {
  Real w0, cw, sw, alpha;
};
RbjPrelude rbj(Real fs, Real f0, Real q) {
  if (fs <= 0.0 || f0 <= 0.0 || f0 >= fs / 2.0 || q <= 0.0) {
    throw std::invalid_argument("Biquad: invalid design parameters");
  }
  RbjPrelude p{};
  p.w0 = kTwoPi * f0 / fs;
  p.cw = std::cos(p.w0);
  p.sw = std::sin(p.w0);
  p.alpha = p.sw / (2.0 * q);
  return p;
}
}  // namespace

Biquad Biquad::lowpass(Real fs, Real f0, Real q) {
  const auto p = rbj(fs, f0, q);
  const Real a0 = 1.0 + p.alpha;
  return Biquad(((1.0 - p.cw) / 2.0) / a0, (1.0 - p.cw) / a0,
                ((1.0 - p.cw) / 2.0) / a0, (-2.0 * p.cw) / a0,
                (1.0 - p.alpha) / a0);
}

Biquad Biquad::highpass(Real fs, Real f0, Real q) {
  const auto p = rbj(fs, f0, q);
  const Real a0 = 1.0 + p.alpha;
  return Biquad(((1.0 + p.cw) / 2.0) / a0, (-(1.0 + p.cw)) / a0,
                ((1.0 + p.cw) / 2.0) / a0, (-2.0 * p.cw) / a0,
                (1.0 - p.alpha) / a0);
}

Biquad Biquad::bandpass(Real fs, Real f0, Real q) {
  const auto p = rbj(fs, f0, q);
  const Real a0 = 1.0 + p.alpha;
  return Biquad(p.alpha / a0, 0.0, -p.alpha / a0, (-2.0 * p.cw) / a0,
                (1.0 - p.alpha) / a0);
}

Biquad Biquad::notch(Real fs, Real f0, Real q) {
  const auto p = rbj(fs, f0, q);
  const Real a0 = 1.0 + p.alpha;
  return Biquad(1.0 / a0, (-2.0 * p.cw) / a0, 1.0 / a0, (-2.0 * p.cw) / a0,
                (1.0 - p.alpha) / a0);
}

Real Biquad::process(Real x) {
  const Real y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

Signal Biquad::process(std::span<const Real> x) {
  Signal out;
  process(x, out);
  return out;
}

void Biquad::process(std::span<const Real> x, Signal& out) {
  // In-place callers pass out.size() == x.size(), so the resize never
  // reallocates under the input span.
  out.resize(x.size());
  const kernels::BiquadCoeffs c{b0_, b1_, b2_, a1_, a2_};
  kernels::BiquadState s{x1_, x2_, y1_, y2_};
  kernels::active().biquad(x.data(), out.data(), x.size(), c, s);
  x1_ = s.x1;
  x2_ = s.x2;
  y1_ = s.y1;
  y2_ = s.y2;
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

Real Biquad::magnitude_at(Real fs, Real f) const {
  const Real w = kTwoPi * f / fs;
  const std::complex<Real> z = std::polar<Real>(1.0, -w);
  const std::complex<Real> z2 = z * z;
  const std::complex<Real> num = b0_ + b1_ * z + b2_ * z2;
  const std::complex<Real> den =
      std::complex<Real>(1.0, 0.0) + a1_ * z + a2_ * z2;
  return std::abs(num / den);
}

OnePoleLowpass::OnePoleLowpass(Real fs, Real cutoff) {
  if (fs <= 0.0 || cutoff <= 0.0 || cutoff >= fs / 2.0) {
    throw std::invalid_argument("OnePoleLowpass: invalid cutoff");
  }
  // Exact impulse-invariant mapping of an RC pole.
  alpha_ = 1.0 - std::exp(-kTwoPi * cutoff / fs);
}

Real OnePoleLowpass::process(Real x) {
  state_ += alpha_ * (x - state_);
  return state_;
}

Signal OnePoleLowpass::process(std::span<const Real> x) {
  Signal out;
  process(x, out);
  return out;
}

void OnePoleLowpass::process(std::span<const Real> x, Signal& out) {
  out.resize(x.size());
  kernels::active().onepole(x.data(), out.data(), x.size(), alpha_, &state_);
}

void Biquad::save(ser::Writer& w) const {
  w.real("bq.x1", x1_);
  w.real("bq.x2", x2_);
  w.real("bq.y1", y1_);
  w.real("bq.y2", y2_);
}

void Biquad::load(ser::Reader& r) {
  x1_ = r.real("bq.x1");
  x2_ = r.real("bq.x2");
  y1_ = r.real("bq.y1");
  y2_ = r.real("bq.y2");
}

}  // namespace ecocap::dsp
