#include "dsp/envelope.hpp"

#include <cmath>

#include "dsp/kernels/kernels.hpp"

namespace ecocap::dsp {

EnvelopeDetector::EnvelopeDetector(Real fs, Real cutoff) : lp_(fs, cutoff) {}

Real EnvelopeDetector::process(Real x) { return lp_.process(std::abs(x)); }

Signal EnvelopeDetector::process(std::span<const Real> x) {
  Signal out;
  process(x, out);
  return out;
}

void EnvelopeDetector::process(std::span<const Real> x, Signal& out) {
  out.resize(x.size());
  Real state = lp_.state();
  kernels::active().envelope(x.data(), out.data(), x.size(), lp_.alpha(),
                             &state);
  lp_.set_state(state);
}

HysteresisSlicer::HysteresisSlicer(Real high, Real low, Real peak_decay)
    : high_(high), low_(low), decay_(peak_decay) {}

bool HysteresisSlicer::process(Real x) {
  const Real a = std::abs(x);
  tracked_peak_ = std::max(a, tracked_peak_ * decay_);
  if (tracked_peak_ <= 0.0) {
    state_ = false;
    return state_;
  }
  const Real ratio = a / tracked_peak_;
  if (!state_ && ratio >= high_) state_ = true;
  if (state_ && ratio <= low_) state_ = false;
  return state_;
}

std::vector<bool> HysteresisSlicer::process(std::span<const Real> x) {
  std::vector<bool> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

void HysteresisSlicer::reset() {
  tracked_peak_ = 0.0;
  state_ = false;
}

}  // namespace ecocap::dsp
