// Runtime dispatch for the SIMD kernel layer. One table per ISA is linked
// in (per-TU -m flags, see CMakeLists.txt); this unit picks the active one
// once at first use from CPUID, with ECOCAP_SIMD as the override knob. No
// SIMD instruction can execute before the CPU check: the per-ISA functions
// live in their own translation units and are only reached through the
// table pointers resolved here.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dsp/kernels/kernels_detail.hpp"

namespace ecocap::dsp::kernels {

namespace detail {
namespace {

const KernelTable kScalarTable = {
    Isa::kScalar,        scalar::dot,
    scalar::correlate_valid, scalar::biquad,
    scalar::onepole,     scalar::envelope,
    scalar::fdtd_velocity_row, scalar::fdtd_stress_row,
};

#if defined(ECOCAP_KERNELS_AVX2)
const KernelTable kAvx2Table = {
    Isa::kAvx2,        avx2::dot,
    avx2::correlate_valid, avx2::biquad,
    avx2::onepole,     avx2::envelope,
    avx2::fdtd_velocity_row, avx2::fdtd_stress_row,
};
#endif

#if defined(ECOCAP_KERNELS_NEON) && defined(__aarch64__)
const KernelTable kNeonTable = {
    Isa::kNeon,        neon::dot,
    neon::correlate_valid,
    // A biquad is a serial recurrence; the canonical scalar loop IS the
    // NEON implementation.
    scalar::biquad,
    neon::onepole,     neon::envelope,
    neon::fdtd_velocity_row, neon::fdtd_stress_row,
};
#endif

/// Best table this build + CPU combination can run.
Isa best_isa() {
#if defined(ECOCAP_KERNELS_AVX2)
  if (available(Isa::kAvx2)) return Isa::kAvx2;
#endif
#if defined(ECOCAP_KERNELS_NEON) && defined(__aarch64__)
  if (available(Isa::kNeon)) return Isa::kNeon;
#endif
  return Isa::kScalar;
}

/// Resolve the startup table: ECOCAP_SIMD when set and valid, else the best
/// available ISA. Unavailable or unrecognized requests fall back to scalar
/// with a stderr note so a pinned CI value stays portable across runners.
const KernelTable* resolve_active() {
  if (const char* env = std::getenv("ECOCAP_SIMD")) {
    Isa want;
    if (!isa_from_name(env, want)) {
      std::fprintf(stderr,
                   "ecocap: unrecognized ECOCAP_SIMD=\"%s\" "
                   "(scalar|avx2|neon|auto); using scalar kernels\n",
                   env);
      return &kScalarTable;
    }
    if (!available(want)) {
      std::fprintf(stderr,
                   "ecocap: ECOCAP_SIMD=%s unavailable on this build/CPU; "
                   "using scalar kernels\n",
                   isa_name(want));
      return &kScalarTable;
    }
    return &table(want);
  }
  return &table(best_isa());
}

}  // namespace
}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

const KernelTable& scalar_table() { return detail::kScalarTable; }

bool available(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(ECOCAP_KERNELS_AVX2) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(ECOCAP_KERNELS_NEON) && defined(__aarch64__)
      return true;  // AdvSIMD is architecturally mandatory on AArch64
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& table(Isa isa) {
  switch (isa) {
#if defined(ECOCAP_KERNELS_AVX2)
    case Isa::kAvx2:
      if (available(Isa::kAvx2)) return detail::kAvx2Table;
      break;
#endif
#if defined(ECOCAP_KERNELS_NEON) && defined(__aarch64__)
    case Isa::kNeon:
      if (available(Isa::kNeon)) return detail::kNeonTable;
      break;
#endif
    default:
      break;
  }
  return detail::kScalarTable;
}

const KernelTable& active() {
  // Magic-static init is thread-safe; the decision is made exactly once.
  static const KernelTable* resolved = detail::resolve_active();
  return *resolved;
}

Isa active_isa() { return active().isa; }

bool isa_from_name(const char* name, Isa& out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(name, "neon") == 0) {
    out = Isa::kNeon;
    return true;
  }
  if (std::strcmp(name, "auto") == 0) {
    out = detail::best_isa();
    return true;
  }
  return false;
}

void biquad_cascade(const Real* x, Real* y, std::size_t n,
                    const BiquadCoeffs* coeffs, BiquadState* states,
                    std::size_t sections) {
  if (sections == 0 || n == 0) return;
  const KernelTable& k = active();
  k.biquad(x, y, n, coeffs[0], states[0]);
  for (std::size_t s = 1; s < sections; ++s) {
    k.biquad(y, y, n, coeffs[s], states[s]);
  }
}

}  // namespace ecocap::dsp::kernels
