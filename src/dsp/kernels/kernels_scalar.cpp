// Canonical scalar kernel table. Every loop here *defines* the arithmetic
// the SIMD tables must reproduce bit-for-bit (see kernels.hpp): the striped
// reduction order, the block-scan one-pole lanes, and the stencil
// expression order are all written out explicitly rather than left to the
// vectorizer, so "what the scalar fallback computes" is a specification,
// not an accident of optimization flags. The TU is compiled with
// -ffp-contract=off; the loops are plain enough that the autovectorizer
// may still use SIMD *encodings*, which is fine — IEEE semantics per lane
// are unchanged, only fused multiply-adds could break identity.

#include <cmath>

#include "dsp/kernels/kernels_detail.hpp"

namespace ecocap::dsp::kernels::detail::scalar {

Real dot(const Real* a, const Real* b, std::size_t n) {
  Real s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  Real s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i + 0] * b[i + 0];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
    s4 += a[i + 4] * b[i + 4];
    s5 += a[i + 5] * b[i + 5];
    s6 += a[i + 6] * b[i + 6];
    s7 += a[i + 7] * b[i + 7];
  }
  const Real t0 = s0 + s4;
  const Real t1 = s1 + s5;
  const Real t2 = s2 + s6;
  const Real t3 = s3 + s7;
  Real r = (t0 + t1) + (t2 + t3);
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

void correlate_valid(const Real* x, std::size_t nx, const Real* h,
                     std::size_t nh, Real* out) {
  const std::size_t out_len = nx - nh + 1;
  for (std::size_t k = 0; k < out_len; ++k) out[k] = dot(x + k, h, nh);
}

void biquad(const Real* x, Real* y, std::size_t n, const BiquadCoeffs& c,
            BiquadState& s) {
  // Exact seed direct-form-I expression; state lives in locals so the
  // output store cannot alias it back to memory every sample.
  Real x1 = s.x1, x2 = s.x2, y1 = s.y1, y2 = s.y2;
  for (std::size_t i = 0; i < n; ++i) {
    const Real xi = x[i];
    const Real yi = c.b0 * xi + c.b1 * x1 + c.b2 * x2 - c.a1 * y1 - c.a2 * y2;
    x2 = x1;
    x1 = xi;
    y2 = y1;
    y1 = yi;
    y[i] = yi;
  }
  s.x1 = x1;
  s.x2 = x2;
  s.y1 = y1;
  s.y2 = y2;
}

namespace {

/// Shared block-scan core for the one-pole recurrence
/// y[i] = p*y[i-1] + alpha*u[i], p = 1 - alpha. Blocks of four samples are
/// expressed directly in terms of the block-entry state:
///   c_k = (w0*u_k + w1*u_{k-1}) + (w2*u_{k-2} + w3*u_{k-3}),  u_{<0} = 0
///   y_k = c_k + p^{k+1} * y_prev
/// with w_k = p^k * alpha. The lane expressions (and the power products
/// p2 = p*p, p3 = p2*p, p4 = p2*p2, w_k likewise) are what the SIMD tables
/// replicate verbatim. `Rect` maps each input sample (identity for the
/// low-pass, fabs for the envelope detector).
template <typename Rect>
inline void onepole_scan(const Real* x, Real* y, std::size_t n, Real alpha,
                         Real* state, Rect rect) {
  const Real p = 1.0 - alpha;
  const Real p2 = p * p;
  const Real p3 = p2 * p;
  const Real p4 = p2 * p2;
  const Real w0 = alpha;
  const Real w1 = p * alpha;
  const Real w2 = p2 * alpha;
  const Real w3 = p3 * alpha;
  Real yp = *state;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Real u0 = rect(x[i + 0]);
    const Real u1 = rect(x[i + 1]);
    const Real u2 = rect(x[i + 2]);
    const Real u3 = rect(x[i + 3]);
    const Real c0 = (w0 * u0 + w1 * 0.0) + (w2 * 0.0 + w3 * 0.0);
    const Real c1 = (w0 * u1 + w1 * u0) + (w2 * 0.0 + w3 * 0.0);
    const Real c2 = (w0 * u2 + w1 * u1) + (w2 * u0 + w3 * 0.0);
    const Real c3 = (w0 * u3 + w1 * u2) + (w2 * u1 + w3 * u0);
    const Real y0 = c0 + p * yp;
    const Real y1 = c1 + p2 * yp;
    const Real y2 = c2 + p3 * yp;
    const Real y3 = c3 + p4 * yp;
    y[i + 0] = y0;
    y[i + 1] = y1;
    y[i + 2] = y2;
    y[i + 3] = y3;
    yp = y3;
  }
  for (; i < n; ++i) {
    yp = (w0 * rect(x[i])) + (p * yp);
    y[i] = yp;
  }
  *state = yp;
}

}  // namespace

void onepole(const Real* x, Real* y, std::size_t n, Real alpha, Real* state) {
  onepole_scan(x, y, n, alpha, state, [](Real v) { return v; });
}

void envelope(const Real* x, Real* y, std::size_t n, Real alpha, Real* state) {
  onepole_scan(x, y, n, alpha, state, [](Real v) { return std::fabs(v); });
}

void fdtd_velocity_row(const FdtdVelocityRowArgs& a) {
  // Expression order matches the seed ElasticFdtd::update_velocity_rows
  // exactly — the SIMD tables mirror it, so the fields are bit-identical
  // regardless of which table steps the grid.
  if (a.fx != nullptr) {
    for (std::size_t i = a.i0; i < a.i1; ++i) {
      const Real dsxx_dx = (a.sxx[i] - a.sxx[i - 1]) * a.inv_dx;
      const Real dsxy_dy = (a.sxy[i] - a.sxy_dn[i]) * a.inv_dx;
      const Real dsxy_dx = (a.sxy[i + 1] - a.sxy[i]) * a.inv_dx;
      const Real dsyy_dy = (a.syy_up[i] - a.syy[i]) * a.inv_dx;
      const Real inv_rho = 1.0 / a.rho[i];
      a.vx[i] += a.dt * inv_rho * (dsxx_dx + dsxy_dy + a.fx[i]);
      a.vy[i] += a.dt * inv_rho * (dsxy_dx + dsyy_dy + a.fy[i]);
      a.fx[i] = 0.0;
      a.fy[i] = 0.0;
    }
  } else {
    for (std::size_t i = a.i0; i < a.i1; ++i) {
      const Real dsxx_dx = (a.sxx[i] - a.sxx[i - 1]) * a.inv_dx;
      const Real dsxy_dy = (a.sxy[i] - a.sxy_dn[i]) * a.inv_dx;
      const Real dsxy_dx = (a.sxy[i + 1] - a.sxy[i]) * a.inv_dx;
      const Real dsyy_dy = (a.syy_up[i] - a.syy[i]) * a.inv_dx;
      const Real inv_rho = 1.0 / a.rho[i];
      a.vx[i] += a.dt * inv_rho * (dsxx_dx + dsxy_dy);
      a.vy[i] += a.dt * inv_rho * (dsxy_dx + dsyy_dy);
    }
  }
}

void fdtd_stress_row(const FdtdStressRowArgs& a) {
  for (std::size_t i = a.i0; i < a.i1; ++i) {
    const Real dvx_dx = (a.vx[i + 1] - a.vx[i]) * a.inv_dx;
    const Real dvy_dy = (a.vy[i] - a.vy_dn[i]) * a.inv_dx;
    const Real l = a.lambda[i];
    const Real m = a.mu[i];
    a.sxx[i] += a.dt * ((l + 2.0 * m) * dvx_dx + l * dvy_dy);
    a.syy[i] += a.dt * (l * dvx_dx + (l + 2.0 * m) * dvy_dy);
    const Real dvx_dy = (a.vx_up[i] - a.vx[i]) * a.inv_dx;
    const Real dvy_dx = (a.vy[i] - a.vy[i - 1]) * a.inv_dx;
    a.sxy[i] += a.dt * m * (dvx_dy + dvy_dx);
  }
}

}  // namespace ecocap::dsp::kernels::detail::scalar
