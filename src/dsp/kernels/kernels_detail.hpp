#pragma once

// Internal declarations shared between the kernel dispatch unit and the
// per-ISA translation units. Not part of the public kernels.hpp API.
//
// Each ISA's functions live in their own TU so only that TU is compiled
// with the matching -m flags; the dispatcher never calls into a table whose
// ISA the CPU lacks, so no illegal instruction can execute before the CPUID
// check. All kernel TUs are built with -ffp-contract=off so no compiler may
// fuse a multiply-add and break the cross-table bit-identity contract.

#include "dsp/kernels/kernels.hpp"

namespace ecocap::dsp::kernels::detail {

namespace scalar {
Real dot(const Real* a, const Real* b, std::size_t n);
void correlate_valid(const Real* x, std::size_t nx, const Real* h,
                     std::size_t nh, Real* out);
void biquad(const Real* x, Real* y, std::size_t n, const BiquadCoeffs& c,
            BiquadState& s);
void onepole(const Real* x, Real* y, std::size_t n, Real alpha, Real* state);
void envelope(const Real* x, Real* y, std::size_t n, Real alpha, Real* state);
void fdtd_velocity_row(const FdtdVelocityRowArgs& a);
void fdtd_stress_row(const FdtdStressRowArgs& a);
}  // namespace scalar

#if defined(__x86_64__) || defined(__i386__)
namespace avx2 {
Real dot(const Real* a, const Real* b, std::size_t n);
void correlate_valid(const Real* x, std::size_t nx, const Real* h,
                     std::size_t nh, Real* out);
void biquad(const Real* x, Real* y, std::size_t n, const BiquadCoeffs& c,
            BiquadState& s);
void onepole(const Real* x, Real* y, std::size_t n, Real alpha, Real* state);
void envelope(const Real* x, Real* y, std::size_t n, Real alpha, Real* state);
void fdtd_velocity_row(const FdtdVelocityRowArgs& a);
void fdtd_stress_row(const FdtdStressRowArgs& a);
}  // namespace avx2
#endif

#if defined(__aarch64__)
namespace neon {
Real dot(const Real* a, const Real* b, std::size_t n);
void correlate_valid(const Real* x, std::size_t nx, const Real* h,
                     std::size_t nh, Real* out);
void onepole(const Real* x, Real* y, std::size_t n, Real alpha, Real* state);
void envelope(const Real* x, Real* y, std::size_t n, Real alpha, Real* state);
void fdtd_velocity_row(const FdtdVelocityRowArgs& a);
void fdtd_stress_row(const FdtdStressRowArgs& a);
}  // namespace neon
#endif

}  // namespace ecocap::dsp::kernels::detail
