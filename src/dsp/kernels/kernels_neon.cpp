// NEON kernel table (2-wide double, AArch64). Mirrors the canonical scalar
// table's arithmetic exactly: the striped dot keeps residue pairs in four
// accumulators, the one-pole block-scan replays the scalar lane expressions
// two lanes at a time, and the FDTD stencils are per-lane transcriptions.
// Only vmulq/vaddq/vsubq/vdivq are used — never vfmaq — and the TU is
// compiled with -ffp-contract=off, so no multiply-add can be fused.

#if defined(__aarch64__)

#include <arm_neon.h>
#include <cmath>

#include "dsp/kernels/kernels_detail.hpp"

namespace ecocap::dsp::kernels::detail::neon {

Real dot(const Real* a, const Real* b, std::size_t n) {
  float64x2_t s01 = vdupq_n_f64(0.0);  // s0, s1
  float64x2_t s23 = vdupq_n_f64(0.0);  // s2, s3
  float64x2_t s45 = vdupq_n_f64(0.0);  // s4, s5
  float64x2_t s67 = vdupq_n_f64(0.0);  // s6, s7
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s01 = vaddq_f64(s01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    s23 = vaddq_f64(s23, vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
    s45 = vaddq_f64(s45, vmulq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4)));
    s67 = vaddq_f64(s67, vmulq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6)));
  }
  // t[k] = s[k] + s[k+4]; r = (t0 + t1) + (t2 + t3).
  const float64x2_t t01 = vaddq_f64(s01, s45);
  const float64x2_t t23 = vaddq_f64(s23, s67);
  Real r = (vgetq_lane_f64(t01, 0) + vgetq_lane_f64(t01, 1)) +
           (vgetq_lane_f64(t23, 0) + vgetq_lane_f64(t23, 1));
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

void correlate_valid(const Real* x, std::size_t nx, const Real* h,
                     std::size_t nh, Real* out) {
  const std::size_t out_len = nx - nh + 1;
  for (std::size_t k = 0; k < out_len; ++k) out[k] = dot(x + k, h, nh);
}

namespace {

template <bool kRectify>
inline void onepole_scan_neon(const Real* x, Real* y, std::size_t n,
                              Real alpha, Real* state) {
  const Real p = 1.0 - alpha;
  const Real p2 = p * p;
  const Real p3 = p2 * p;
  const Real p4 = p2 * p2;
  const Real w0 = alpha;
  const Real w1 = p * alpha;
  const Real w2 = p2 * alpha;
  const Real w3 = p3 * alpha;
  const float64x2_t p12 = {p, p2};
  const float64x2_t p34 = {p3, p4};
  const float64x2_t w0v = vdupq_n_f64(w0);
  const float64x2_t w1v = vdupq_n_f64(w1);
  const float64x2_t w2v = vdupq_n_f64(w2);
  const float64x2_t w3v = vdupq_n_f64(w3);
  const float64x2_t zero = vdupq_n_f64(0.0);
  Real yp = *state;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float64x2_t u01 = vld1q_f64(x + i);      // u0, u1
    float64x2_t u23 = vld1q_f64(x + i + 2);  // u2, u3
    if (kRectify) {
      u01 = vabsq_f64(u01);
      u23 = vabsq_f64(u23);
    }
    // Lane pairs of the shifted sequences (zero fill below index 0).
    const float64x2_t s1a = vextq_f64(zero, u01, 1);  // 0,  u0
    const float64x2_t s1b = vextq_f64(u01, u23, 1);   // u1, u2
    const float64x2_t s2a = zero;                     // 0,  0
    const float64x2_t s2b = u01;                      // u0, u1
    const float64x2_t s3a = zero;                     // 0,  0
    const float64x2_t s3b = vextq_f64(zero, u01, 1);  // 0,  u0
    const float64x2_t c01 =
        vaddq_f64(vaddq_f64(vmulq_f64(w0v, u01), vmulq_f64(w1v, s1a)),
                  vaddq_f64(vmulq_f64(w2v, s2a), vmulq_f64(w3v, s3a)));
    const float64x2_t c23 =
        vaddq_f64(vaddq_f64(vmulq_f64(w0v, u23), vmulq_f64(w1v, s1b)),
                  vaddq_f64(vmulq_f64(w2v, s2b), vmulq_f64(w3v, s3b)));
    const float64x2_t ypv = vdupq_n_f64(yp);
    const float64x2_t y01 = vaddq_f64(c01, vmulq_f64(p12, ypv));
    const float64x2_t y23 = vaddq_f64(c23, vmulq_f64(p34, ypv));
    vst1q_f64(y + i, y01);
    vst1q_f64(y + i + 2, y23);
    yp = vgetq_lane_f64(y23, 1);
  }
  for (; i < n; ++i) {
    const Real u = kRectify ? std::fabs(x[i]) : x[i];
    yp = (w0 * u) + (p * yp);
    y[i] = yp;
  }
  *state = yp;
}

}  // namespace

void onepole(const Real* x, Real* y, std::size_t n, Real alpha, Real* state) {
  onepole_scan_neon<false>(x, y, n, alpha, state);
}

void envelope(const Real* x, Real* y, std::size_t n, Real alpha, Real* state) {
  onepole_scan_neon<true>(x, y, n, alpha, state);
}

void fdtd_velocity_row(const FdtdVelocityRowArgs& a) {
  const float64x2_t inv_dx = vdupq_n_f64(a.inv_dx);
  const float64x2_t dt = vdupq_n_f64(a.dt);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::size_t i = a.i0;
  for (; i + 2 <= a.i1; i += 2) {
    const float64x2_t sxx = vld1q_f64(a.sxx + i);
    const float64x2_t dsxx_dx =
        vmulq_f64(vsubq_f64(sxx, vld1q_f64(a.sxx + i - 1)), inv_dx);
    const float64x2_t sxy = vld1q_f64(a.sxy + i);
    const float64x2_t dsxy_dy =
        vmulq_f64(vsubq_f64(sxy, vld1q_f64(a.sxy_dn + i)), inv_dx);
    const float64x2_t dsxy_dx =
        vmulq_f64(vsubq_f64(vld1q_f64(a.sxy + i + 1), sxy), inv_dx);
    const float64x2_t syy = vld1q_f64(a.syy + i);
    const float64x2_t dsyy_dy =
        vmulq_f64(vsubq_f64(vld1q_f64(a.syy_up + i), syy), inv_dx);
    const float64x2_t inv_rho = vdivq_f64(one, vld1q_f64(a.rho + i));
    const float64x2_t scale = vmulq_f64(dt, inv_rho);
    float64x2_t fx_sum = vaddq_f64(dsxx_dx, dsxy_dy);
    float64x2_t fy_sum = vaddq_f64(dsxy_dx, dsyy_dy);
    if (a.fx != nullptr) {
      fx_sum = vaddq_f64(fx_sum, vld1q_f64(a.fx + i));
      fy_sum = vaddq_f64(fy_sum, vld1q_f64(a.fy + i));
      vst1q_f64(a.fx + i, zero);
      vst1q_f64(a.fy + i, zero);
    }
    vst1q_f64(a.vx + i,
              vaddq_f64(vld1q_f64(a.vx + i), vmulq_f64(scale, fx_sum)));
    vst1q_f64(a.vy + i,
              vaddq_f64(vld1q_f64(a.vy + i), vmulq_f64(scale, fy_sum)));
  }
  if (i < a.i1) {
    FdtdVelocityRowArgs tail = a;
    tail.i0 = i;
    scalar::fdtd_velocity_row(tail);
  }
}

void fdtd_stress_row(const FdtdStressRowArgs& a) {
  const float64x2_t inv_dx = vdupq_n_f64(a.inv_dx);
  const float64x2_t dt = vdupq_n_f64(a.dt);
  const float64x2_t two = vdupq_n_f64(2.0);
  std::size_t i = a.i0;
  for (; i + 2 <= a.i1; i += 2) {
    const float64x2_t vx = vld1q_f64(a.vx + i);
    const float64x2_t dvx_dx =
        vmulq_f64(vsubq_f64(vld1q_f64(a.vx + i + 1), vx), inv_dx);
    const float64x2_t vy = vld1q_f64(a.vy + i);
    const float64x2_t dvy_dy =
        vmulq_f64(vsubq_f64(vy, vld1q_f64(a.vy_dn + i)), inv_dx);
    const float64x2_t l = vld1q_f64(a.lambda + i);
    const float64x2_t m = vld1q_f64(a.mu + i);
    const float64x2_t l2m = vaddq_f64(l, vmulq_f64(two, m));
    vst1q_f64(a.sxx + i,
              vaddq_f64(vld1q_f64(a.sxx + i),
                        vmulq_f64(dt, vaddq_f64(vmulq_f64(l2m, dvx_dx),
                                                vmulq_f64(l, dvy_dy)))));
    vst1q_f64(a.syy + i,
              vaddq_f64(vld1q_f64(a.syy + i),
                        vmulq_f64(dt, vaddq_f64(vmulq_f64(l, dvx_dx),
                                                vmulq_f64(l2m, dvy_dy)))));
    const float64x2_t dvx_dy =
        vmulq_f64(vsubq_f64(vld1q_f64(a.vx_up + i), vx), inv_dx);
    const float64x2_t dvy_dx =
        vmulq_f64(vsubq_f64(vy, vld1q_f64(a.vy + i - 1)), inv_dx);
    vst1q_f64(a.sxy + i,
              vaddq_f64(vld1q_f64(a.sxy + i),
                        vmulq_f64(vmulq_f64(dt, m),
                                  vaddq_f64(dvx_dy, dvy_dx))));
  }
  if (i < a.i1) {
    FdtdStressRowArgs tail = a;
    tail.i0 = i;
    scalar::fdtd_stress_row(tail);
  }
}

}  // namespace ecocap::dsp::kernels::detail::neon

#endif  // defined(__aarch64__)
