// AVX2 kernel table (4-wide double). Every loop reproduces the canonical
// scalar table's arithmetic bit-for-bit: the striped dot keeps residues
// 0..3 in one accumulator vector and 4..7 in a second, the one-pole
// block-scan maps each scalar lane expression onto one vector lane, and the
// FDTD stencils are straight per-lane transcriptions. Only separate
// _mm256_mul_pd/_mm256_add_pd are used — never an FMA intrinsic — and the
// TU is compiled with -ffp-contract=off, so the compiler cannot fuse one in
// behind our back.

#include <cmath>
#include <immintrin.h>

#include "dsp/kernels/kernels_detail.hpp"

namespace ecocap::dsp::kernels::detail::avx2 {

namespace {

/// Combine the two striped accumulators exactly as the scalar table does:
/// t[k] = s[k] + s[k+4], then (t0 + t1) + (t2 + t3).
inline Real stripe_combine(__m256d lo, __m256d hi) {
  const __m256d t = _mm256_add_pd(lo, hi);
  alignas(32) Real tmp[4];
  _mm256_store_pd(tmp, t);
  return (tmp[0] + tmp[1]) + (tmp[2] + tmp[3]);
}

}  // namespace

Real dot(const Real* a, const Real* b, std::size_t n) {
  __m256d lo = _mm256_setzero_pd();  // s0..s3
  __m256d hi = _mm256_setzero_pd();  // s4..s7
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lo = _mm256_add_pd(
        lo, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4)));
  }
  Real r = stripe_combine(lo, hi);
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

void correlate_valid(const Real* x, std::size_t nx, const Real* h,
                     std::size_t nh, Real* out) {
  // Each lag is an independent striped dot, so out[k] matches the scalar
  // table exactly; the window data stays hot in L1/L2 across lags.
  const std::size_t out_len = nx - nh + 1;
  for (std::size_t k = 0; k < out_len; ++k) out[k] = dot(x + k, h, nh);
}

void biquad(const Real* x, Real* y, std::size_t n, const BiquadCoeffs& c,
            BiquadState& s) {
  // A direct-form-I recurrence has a loop-carried dependency on every
  // sample; there is nothing for 4-wide SIMD to do. Use the canonical
  // scalar loop (state in locals), which is the bit-identity reference.
  scalar::biquad(x, y, n, c, s);
}

namespace {

/// Vectorized block-scan core shared by onepole and envelope. One vector
/// lane computes one scalar lane expression of kernels_scalar.cpp:
///   c = (w0*u + w1*u<<1) + (w2*u<<2 + w3*u<<3),  y = c + [p,p2,p3,p4]*yp
/// where u<<k is u shifted toward higher lanes with zero fill, reproducing
/// the u_{<0} = 0 terms.
template <bool kRectify>
inline void onepole_scan_avx2(const Real* x, Real* y, std::size_t n,
                              Real alpha, Real* state) {
  const Real p = 1.0 - alpha;
  const Real p2 = p * p;
  const Real p3 = p2 * p;
  const Real p4 = p2 * p2;
  const Real w0 = alpha;
  const Real w1 = p * alpha;
  const Real w2 = p2 * alpha;
  const Real w3 = p3 * alpha;
  const __m256d pv = _mm256_setr_pd(p, p2, p3, p4);
  const __m256d w0v = _mm256_set1_pd(w0);
  const __m256d w1v = _mm256_set1_pd(w1);
  const __m256d w2v = _mm256_set1_pd(w2);
  const __m256d w3v = _mm256_set1_pd(w3);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  Real yp = *state;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d u = _mm256_loadu_pd(x + i);
    if (kRectify) u = _mm256_and_pd(u, abs_mask);
    // u shifted toward higher lanes: [0,u0,u1,u2], [0,0,u0,u1], [0,0,0,u0].
    const __m256d u1 = _mm256_blend_pd(
        _mm256_permute4x64_pd(u, _MM_SHUFFLE(2, 1, 0, 0)), zero, 0x1);
    const __m256d u2 = _mm256_blend_pd(
        _mm256_permute4x64_pd(u, _MM_SHUFFLE(1, 0, 0, 0)), zero, 0x3);
    const __m256d u3 = _mm256_blend_pd(
        _mm256_permute4x64_pd(u, _MM_SHUFFLE(0, 0, 0, 0)), zero, 0x7);
    const __m256d c =
        _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(w0v, u), _mm256_mul_pd(w1v, u1)),
                      _mm256_add_pd(_mm256_mul_pd(w2v, u2), _mm256_mul_pd(w3v, u3)));
    const __m256d yv =
        _mm256_add_pd(c, _mm256_mul_pd(pv, _mm256_set1_pd(yp)));
    _mm256_storeu_pd(y + i, yv);
    alignas(32) Real lanes[4];
    _mm256_store_pd(lanes, yv);
    yp = lanes[3];
  }
  for (; i < n; ++i) {
    const Real u = kRectify ? std::fabs(x[i]) : x[i];
    yp = (w0 * u) + (p * yp);
    y[i] = yp;
  }
  *state = yp;
}

}  // namespace

void onepole(const Real* x, Real* y, std::size_t n, Real alpha, Real* state) {
  onepole_scan_avx2<false>(x, y, n, alpha, state);
}

void envelope(const Real* x, Real* y, std::size_t n, Real alpha, Real* state) {
  onepole_scan_avx2<true>(x, y, n, alpha, state);
}

void fdtd_velocity_row(const FdtdVelocityRowArgs& a) {
  const __m256d inv_dx = _mm256_set1_pd(a.inv_dx);
  const __m256d dt = _mm256_set1_pd(a.dt);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = a.i0;
  for (; i + 4 <= a.i1; i += 4) {
    const __m256d sxx = _mm256_loadu_pd(a.sxx + i);
    const __m256d dsxx_dx = _mm256_mul_pd(
        _mm256_sub_pd(sxx, _mm256_loadu_pd(a.sxx + i - 1)), inv_dx);
    const __m256d sxy = _mm256_loadu_pd(a.sxy + i);
    const __m256d dsxy_dy = _mm256_mul_pd(
        _mm256_sub_pd(sxy, _mm256_loadu_pd(a.sxy_dn + i)), inv_dx);
    const __m256d dsxy_dx = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a.sxy + i + 1), sxy), inv_dx);
    const __m256d syy = _mm256_loadu_pd(a.syy + i);
    const __m256d dsyy_dy = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a.syy_up + i), syy), inv_dx);
    const __m256d inv_rho =
        _mm256_div_pd(one, _mm256_loadu_pd(a.rho + i));
    const __m256d scale = _mm256_mul_pd(dt, inv_rho);
    __m256d fx_sum = _mm256_add_pd(dsxx_dx, dsxy_dy);
    __m256d fy_sum = _mm256_add_pd(dsxy_dx, dsyy_dy);
    if (a.fx != nullptr) {
      fx_sum = _mm256_add_pd(fx_sum, _mm256_loadu_pd(a.fx + i));
      fy_sum = _mm256_add_pd(fy_sum, _mm256_loadu_pd(a.fy + i));
      _mm256_storeu_pd(a.fx + i, zero);
      _mm256_storeu_pd(a.fy + i, zero);
    }
    _mm256_storeu_pd(a.vx + i, _mm256_add_pd(_mm256_loadu_pd(a.vx + i),
                                             _mm256_mul_pd(scale, fx_sum)));
    _mm256_storeu_pd(a.vy + i, _mm256_add_pd(_mm256_loadu_pd(a.vy + i),
                                             _mm256_mul_pd(scale, fy_sum)));
  }
  if (i < a.i1) {
    FdtdVelocityRowArgs tail = a;
    tail.i0 = i;
    scalar::fdtd_velocity_row(tail);
  }
}

void fdtd_stress_row(const FdtdStressRowArgs& a) {
  const __m256d inv_dx = _mm256_set1_pd(a.inv_dx);
  const __m256d dt = _mm256_set1_pd(a.dt);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t i = a.i0;
  for (; i + 4 <= a.i1; i += 4) {
    const __m256d vx = _mm256_loadu_pd(a.vx + i);
    const __m256d dvx_dx = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a.vx + i + 1), vx), inv_dx);
    const __m256d vy = _mm256_loadu_pd(a.vy + i);
    const __m256d dvy_dy = _mm256_mul_pd(
        _mm256_sub_pd(vy, _mm256_loadu_pd(a.vy_dn + i)), inv_dx);
    const __m256d l = _mm256_loadu_pd(a.lambda + i);
    const __m256d m = _mm256_loadu_pd(a.mu + i);
    const __m256d l2m = _mm256_add_pd(l, _mm256_mul_pd(two, m));
    _mm256_storeu_pd(
        a.sxx + i,
        _mm256_add_pd(_mm256_loadu_pd(a.sxx + i),
                      _mm256_mul_pd(dt, _mm256_add_pd(
                                            _mm256_mul_pd(l2m, dvx_dx),
                                            _mm256_mul_pd(l, dvy_dy)))));
    _mm256_storeu_pd(
        a.syy + i,
        _mm256_add_pd(_mm256_loadu_pd(a.syy + i),
                      _mm256_mul_pd(dt, _mm256_add_pd(
                                            _mm256_mul_pd(l, dvx_dx),
                                            _mm256_mul_pd(l2m, dvy_dy)))));
    const __m256d dvx_dy = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a.vx_up + i), vx), inv_dx);
    const __m256d dvy_dx = _mm256_mul_pd(
        _mm256_sub_pd(vy, _mm256_loadu_pd(a.vy + i - 1)), inv_dx);
    _mm256_storeu_pd(
        a.sxy + i,
        _mm256_add_pd(_mm256_loadu_pd(a.sxy + i),
                      _mm256_mul_pd(_mm256_mul_pd(dt, m),
                                    _mm256_add_pd(dvx_dy, dvy_dx))));
  }
  if (i < a.i1) {
    FdtdStressRowArgs tail = a;
    tail.i0 = i;
    scalar::fdtd_stress_row(tail);
  }
}

}  // namespace ecocap::dsp::kernels::detail::avx2
