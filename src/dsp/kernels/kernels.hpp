#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace ecocap::dsp::kernels {

/// Runtime-dispatched SIMD kernel layer for the DSP/FDTD hot loops.
///
/// Every Monte-Carlo interrogation spends its time in a handful of inner
/// loops: FIR dot products, valid-mode template correlation, the resonator
/// biquad, the envelope detector's rectify+RC pass, and the elastic FDTD
/// stencil updates. This layer provides one implementation table per
/// instruction set (AVX2 on x86-64, NEON on AArch64, and a canonical
/// pragma-vectorizable scalar fallback) and selects one at startup from
/// CPUID, overridable with the ECOCAP_SIMD environment variable.
///
/// ## Determinism contract
///
/// Results must not depend on which table ran, so golden vectors stay valid
/// on any host:
///
///  * **Elementwise maps** (the FDTD velocity/stress stencils, rectify) are
///    computed with exactly the scalar expression's operation order and no
///    FMA contraction — bit-identical across tables by construction.
///  * **Reductions** (dot, correlate) use a *canonical striped order*: eight
///    interleaved partial sums over index residues mod 8, combined as
///    t[k] = s[k] + s[k+4] then ((t0 + t1) + (t2 + t3)), with the remainder
///    added sequentially. The scalar table implements the identical order,
///    so scalar and SIMD agree bit-for-bit. This order differs from a naive
///    sequential sum; callers that migrate to it accept a one-time, golden-
///    regenerated drift and validate against a sequential reference under
///    the documented tolerance (see docs/benchmarks.md, "tolerance mode").
///  * **Recurrences**: the biquad keeps the exact direct-form-I update of
///    the seed implementation (bit-identical). The one-pole low-pass and
///    the envelope detector use a canonical *block-scan* form (blocks of 4
///    with precomputed decay powers) whose lane arithmetic is replicated
///    exactly by the scalar table — again bit-identical across tables, and
///    toleranced against the sequential RC recurrence.
///
/// ## Dispatch
///
/// `active()` resolves once (thread-safe) to the best table the CPU
/// supports. `ECOCAP_SIMD=scalar|avx2|neon|auto` overrides; requesting an
/// unavailable ISA falls back to scalar with a stderr note rather than
/// crashing, so a pinned CI value is portable across runners.

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Human-readable table name ("scalar", "avx2", "neon").
const char* isa_name(Isa isa);

/// RBJ biquad coefficients, already normalized by a0.
struct BiquadCoeffs {
  Real b0, b1, b2, a1, a2;
};

/// Direct-form-I delay state. Layout matches the seed Biquad members.
struct BiquadState {
  Real x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
};

/// One row of the staggered-grid velocity update (Virieux P-SV). All
/// pointers address the row base (ix = 0); the kernel touches columns
/// [i0, i1) only. `fx`/`fy` are the pending body-force rows: when non-null
/// the kernel adds them to the stress gradients and zeroes the consumed
/// entries (folding the per-step force clear into this pass); when null the
/// force term is omitted entirely, which is bit-identical because the
/// velocity fields never hold negative zero (they start at +0 and IEEE-754
/// round-to-nearest addition cannot produce -0 from +0 operands).
struct FdtdVelocityRowArgs {
  Real* vx;
  Real* vy;
  const Real* sxx;     // row iy
  const Real* sxy;     // row iy
  const Real* sxy_dn;  // row iy-1
  const Real* syy;     // row iy
  const Real* syy_up;  // row iy+1
  const Real* rho;     // row iy
  Real* fx;            // row iy, nullable
  Real* fy;            // row iy, nullable
  std::size_t i0, i1;  // column range [i0, i1)
  Real dt;
  Real inv_dx;
};

/// One row of the stress update. Same row-base pointer convention.
struct FdtdStressRowArgs {
  Real* sxx;
  Real* syy;
  Real* sxy;
  const Real* vx;      // row iy
  const Real* vx_up;   // row iy+1
  const Real* vy;      // row iy
  const Real* vy_dn;   // row iy-1
  const Real* lambda;  // row iy
  const Real* mu;      // row iy
  std::size_t i0, i1;
  Real dt;
  Real inv_dx;
};

/// One implementation of every hot primitive. Function pointers so the
/// dispatch decision is one load; each pointed-to loop is branch-free over
/// the data.
struct KernelTable {
  Isa isa;

  /// Canonical striped dot product sum(a[i]*b[i]), i in [0, n).
  Real (*dot)(const Real* a, const Real* b, std::size_t n);

  /// Valid-mode correlation out[k] = dot(x + k, h, nh) for
  /// k in [0, nx - nh]; requires nx >= nh >= 1.
  void (*correlate_valid)(const Real* x, std::size_t nx, const Real* h,
                          std::size_t nh, Real* out);

  /// Direct-form-I biquad over a buffer; `y` may equal `x` (each sample is
  /// read before it is written). Bit-identical to the seed per-sample path.
  void (*biquad)(const Real* x, Real* y, std::size_t n,
                 const BiquadCoeffs& c, BiquadState& s);

  /// One-pole RC low-pass y[i] = p*y[i-1] + alpha*u[i] in canonical
  /// block-scan form; `state` holds y[-1] and receives y[n-1].
  void (*onepole)(const Real* x, Real* y, std::size_t n, Real alpha,
                  Real* state);

  /// Envelope magnitude: the one-pole scan over |x[i]| (full-wave rectify
  /// fused into the load). Same state convention as onepole.
  void (*envelope)(const Real* x, Real* y, std::size_t n, Real alpha,
                   Real* state);

  /// FDTD stencil rows (pure elementwise maps — bit-identical everywhere).
  void (*fdtd_velocity_row)(const FdtdVelocityRowArgs& a);
  void (*fdtd_stress_row)(const FdtdStressRowArgs& a);
};

/// The canonical scalar table (always available).
const KernelTable& scalar_table();

/// True when `isa`'s table exists in this build *and* the CPU can run it.
bool available(Isa isa);

/// Table for a specific ISA; falls back to scalar when unavailable.
const KernelTable& table(Isa isa);

/// The startup-dispatched table: ECOCAP_SIMD override when set, else the
/// best available ISA. Resolved once; stable for the process lifetime.
const KernelTable& active();

/// ISA of `active()`.
Isa active_isa();

/// Parse an ECOCAP_SIMD value ("scalar", "avx2", "neon", "auto"). Returns
/// true and writes `out` on a recognized name ("auto" reports the best
/// available ISA); false on anything else.
bool isa_from_name(const char* name, Isa& out);

/// Convenience: run a cascade of biquad sections over a buffer through the
/// active table. Section 0 reads `x` into `y`; later sections run in place
/// on `y`.
void biquad_cascade(const Real* x, Real* y, std::size_t n,
                    const BiquadCoeffs* coeffs, BiquadState* states,
                    std::size_t sections);

}  // namespace ecocap::dsp::kernels
