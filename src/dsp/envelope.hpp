#pragma once

#include <span>

#include "dsp/biquad.hpp"
#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Diode-rectifier + RC envelope detector, the behavioural model of the
/// voltage-multiplier front end an EcoCapsule reuses for demodulation (§4.2).
/// Full-wave rectification followed by a one-pole RC low-pass.
class EnvelopeDetector {
 public:
  /// @param fs sample rate (Hz)
  /// @param cutoff RC corner, chosen well below the carrier but above the
  ///        baseband symbol rate.
  EnvelopeDetector(Real fs, Real cutoff);

  Real process(Real x);
  Signal process(std::span<const Real> x);
  /// Canonical batch form: rectify+smooth into a caller-provided buffer
  /// (resized to match) with no per-call allocation once `out` has capacity.
  /// Dispatches to the fused envelope kernel of the active SIMD table.
  void process(std::span<const Real> x, Signal& out);
  void reset() { lp_.reset(); }

 private:
  OnePoleLowpass lp_;
};

/// Binarize an envelope with hysteresis, modeling the level-shifter
/// (TXB0302) that squares up the demodulated baseband on the node.
/// Thresholds are fractions of the running peak.
class HysteresisSlicer {
 public:
  /// @param high rising threshold as a fraction of the tracked peak
  /// @param low falling threshold as a fraction of the tracked peak
  /// @param peak_decay per-sample decay of the tracked peak (slow AGC)
  HysteresisSlicer(Real high = 0.6, Real low = 0.4, Real peak_decay = 0.99999);

  bool process(Real x);
  std::vector<bool> process(std::span<const Real> x);
  void reset();

 private:
  Real high_, low_, decay_;
  Real tracked_peak_ = 0.0;
  bool state_ = false;
};

}  // namespace ecocap::dsp
