#include "dsp/fast_convolve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "dsp/fft.hpp"

namespace ecocap::dsp {

namespace {

/// FFT length for overlap-save: big enough that the useful block
/// (L - M + 1) amortizes the transform, but no bigger than a single
/// transform covering the whole output.
std::size_t pick_fft_size(std::size_t m, std::size_t out_len) {
  const std::size_t single = next_pow2(std::max<std::size_t>(out_len, 2));
  std::size_t blocked = next_pow2(std::max<std::size_t>(8 * m, 256));
  return std::min(single, blocked);
}

/// Rough op-count of the overlap-save path: one complex FFT pair per two
/// real blocks plus the kernel transform and the spectral multiplies.
double fft_cost_estimate(std::size_t n, std::size_t m) {
  const std::size_t out_len = n + m - 1;
  const std::size_t fft_len = pick_fft_size(m, out_len);
  const std::size_t step = fft_len - m + 1;
  const double blocks =
      std::ceil(static_cast<double>(out_len) / static_cast<double>(step));
  const double lg = std::log2(static_cast<double>(fft_len));
  const double per_fft = 5.0 * static_cast<double>(fft_len) * lg;
  // (blocks/2) forward + (blocks/2) inverse + 1 kernel FFT, plus the
  // element-wise spectral products.
  return (blocks + 1.0) * per_fft + blocks * 4.0 * static_cast<double>(fft_len);
}

/// Shared overlap-save core for a complex input block stream. `load` fills
/// the scratch with input samples (zero-padded outside the signal), `store`
/// receives the useful tail of each inverse transform.
ComplexSignal kernel_spectrum(std::span<const Real> h, std::size_t fft_len) {
  return fft_real(h, fft_len);
}

}  // namespace

long fft_conv_min_taps_override() {
  const char* env = std::getenv("ECOCAP_FFT_CONV_MIN_TAPS");
  if (!env || !*env) return -1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v < 0) return -1;
  return v;
}

bool use_fft_convolution(std::size_t n, std::size_t m) {
  if (n == 0 || m == 0) return false;
  if (const long forced = fft_conv_min_taps_override(); forced >= 0) {
    return m >= static_cast<std::size_t>(forced);
  }
  // Tiny kernels never win: the transform bookkeeping dominates.
  if (m <= 16 || n < 64) return false;
  const double direct_ops = 2.0 * static_cast<double>(n) * static_cast<double>(m);
  return fft_cost_estimate(n, m) < direct_ops;
}

Signal convolve_full_direct(std::span<const Real> x, std::span<const Real> h) {
  if (x.empty() || h.empty()) return {};
  Signal out(x.size() + h.size() - 1, 0.0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::size_t j_lo = (k >= x.size() - 1) ? k - (x.size() - 1) : 0;
    const std::size_t j_hi = std::min(k, h.size() - 1);
    Real acc = 0.0;
    for (std::size_t j = j_lo; j <= j_hi; ++j) acc += h[j] * x[k - j];
    out[k] = acc;
  }
  return out;
}

Signal convolve_full_fft(std::span<const Real> x, std::span<const Real> h) {
  if (x.empty() || h.empty()) return {};
  const std::size_t n = x.size();
  const std::size_t m = h.size();
  const std::size_t out_len = n + m - 1;
  const std::size_t fft_len = pick_fft_size(m, out_len);
  const std::size_t step = fft_len - m + 1;
  const ComplexSignal spec_h = kernel_spectrum(h, fft_len);

  // xpad(k): x with M-1 leading (virtual) zeros and trailing zeros.
  const auto xpad = [&](std::ptrdiff_t k) -> Real {
    return (k >= 0 && k < static_cast<std::ptrdiff_t>(n)) ? x[static_cast<std::size_t>(k)]
                                                          : 0.0;
  };

  Signal out(out_len, 0.0);
  ComplexSignal buf(fft_len);
  const std::size_t blocks = (out_len + step - 1) / step;
  // Two real blocks per transform: block 2p in the real part, 2p+1 in the
  // imaginary part. conv(a + i·b, h) = conv(a, h) + i·conv(b, h) for real h,
  // so the inverse transform separates without any spectral unpacking.
  for (std::size_t p = 0; p < blocks; p += 2) {
    const std::ptrdiff_t start_a = static_cast<std::ptrdiff_t>(p * step) -
                                   static_cast<std::ptrdiff_t>(m - 1);
    const bool have_b = (p + 1) < blocks;
    const std::ptrdiff_t start_b = static_cast<std::ptrdiff_t>((p + 1) * step) -
                                   static_cast<std::ptrdiff_t>(m - 1);
    for (std::size_t i = 0; i < fft_len; ++i) {
      const Real a = xpad(start_a + static_cast<std::ptrdiff_t>(i));
      const Real b = have_b ? xpad(start_b + static_cast<std::ptrdiff_t>(i)) : 0.0;
      buf[i] = Complex(a, b);
    }
    fft_inplace(buf);
    for (std::size_t i = 0; i < fft_len; ++i) buf[i] *= spec_h[i];
    fft_inplace(buf, /*inverse=*/true);
    const std::size_t base_a = p * step;
    for (std::size_t t = 0; t < step && base_a + t < out_len; ++t) {
      out[base_a + t] = buf[m - 1 + t].real();
    }
    if (have_b) {
      const std::size_t base_b = (p + 1) * step;
      for (std::size_t t = 0; t < step && base_b + t < out_len; ++t) {
        out[base_b + t] = buf[m - 1 + t].imag();
      }
    }
  }
  return out;
}

Signal convolve_full(std::span<const Real> x, std::span<const Real> h) {
  if (x.empty() || h.empty()) return {};
  return use_fft_convolution(x.size(), h.size()) ? convolve_full_fft(x, h)
                                                 : convolve_full_direct(x, h);
}

ComplexSignal convolve_full_direct(std::span<const Complex> x,
                                   std::span<const Real> h) {
  if (x.empty() || h.empty()) return {};
  ComplexSignal out(x.size() + h.size() - 1, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::size_t j_lo = (k >= x.size() - 1) ? k - (x.size() - 1) : 0;
    const std::size_t j_hi = std::min(k, h.size() - 1);
    Real acc_re = 0.0, acc_im = 0.0;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      acc_re += h[j] * x[k - j].real();
      acc_im += h[j] * x[k - j].imag();
    }
    out[k] = Complex(acc_re, acc_im);
  }
  return out;
}

ComplexSignal convolve_full_fft(std::span<const Complex> x,
                                std::span<const Real> h) {
  if (x.empty() || h.empty()) return {};
  const std::size_t n = x.size();
  const std::size_t m = h.size();
  const std::size_t out_len = n + m - 1;
  const std::size_t fft_len = pick_fft_size(m, out_len);
  const std::size_t step = fft_len - m + 1;
  const ComplexSignal spec_h = kernel_spectrum(h, fft_len);

  ComplexSignal out(out_len, Complex(0.0, 0.0));
  ComplexSignal buf(fft_len);
  const std::size_t blocks = (out_len + step - 1) / step;
  for (std::size_t p = 0; p < blocks; ++p) {
    const std::ptrdiff_t start = static_cast<std::ptrdiff_t>(p * step) -
                                 static_cast<std::ptrdiff_t>(m - 1);
    for (std::size_t i = 0; i < fft_len; ++i) {
      const std::ptrdiff_t k = start + static_cast<std::ptrdiff_t>(i);
      buf[i] = (k >= 0 && k < static_cast<std::ptrdiff_t>(n))
                   ? x[static_cast<std::size_t>(k)]
                   : Complex(0.0, 0.0);
    }
    fft_inplace(buf);
    for (std::size_t i = 0; i < fft_len; ++i) buf[i] *= spec_h[i];
    fft_inplace(buf, /*inverse=*/true);
    const std::size_t base = p * step;
    for (std::size_t t = 0; t < step && base + t < out_len; ++t) {
      out[base + t] = buf[m - 1 + t];
    }
  }
  return out;
}

ComplexSignal convolve_full(std::span<const Complex> x,
                            std::span<const Real> h) {
  if (x.empty() || h.empty()) return {};
  return use_fft_convolution(x.size(), h.size()) ? convolve_full_fft(x, h)
                                                 : convolve_full_direct(x, h);
}

Signal correlate_valid_fft(std::span<const Real> x, std::span<const Real> h) {
  if (h.empty() || x.size() < h.size()) return {};
  Signal hr(h.rbegin(), h.rend());
  const Signal full = convolve_full_fft(x, hr);
  const std::size_t out_len = x.size() - h.size() + 1;
  return Signal(full.begin() + static_cast<std::ptrdiff_t>(h.size() - 1),
                full.begin() + static_cast<std::ptrdiff_t>(h.size() - 1 + out_len));
}

ComplexSignal filter_zero_phase(std::span<const Real> coefficients,
                                std::span<const Complex> x) {
  ComplexSignal out;
  filter_zero_phase(coefficients, x, out);
  return out;
}

void filter_zero_phase(std::span<const Real> coefficients,
                       std::span<const Complex> x, ComplexSignal& out) {
  if (coefficients.empty() || x.empty()) {
    out.assign(x.size(), Complex(0.0, 0.0));
    return;
  }
  const std::size_t delay = (coefficients.size() - 1) / 2;
  const ComplexSignal full = convolve_full(x, coefficients);
  out.assign(full.begin() + static_cast<std::ptrdiff_t>(delay),
             full.begin() + static_cast<std::ptrdiff_t>(delay + x.size()));
}

}  // namespace ecocap::dsp
