#include "dsp/workspace.hpp"

#include <algorithm>

namespace ecocap::dsp {

template <typename Buffer>
Buffer Workspace::take(std::vector<Buffer>& free_list, std::size_t n) {
  ++stats_.checkouts;
  if (!pooling_ || free_list.empty()) {
    // A fresh buffer has no capacity to reuse: it allocates as soon as the
    // caller fills it, so every miss counts as one heap allocation.
    ++stats_.heap_allocations;
    Buffer fresh;
    fresh.assign(n, typename Buffer::value_type{});
    return fresh;
  }
  // Best fit: smallest capacity that already holds n; otherwise grow the
  // largest block so repeated checkouts converge on one big buffer per
  // concurrent lease instead of churning many small ones.
  std::size_t best = free_list.size();
  std::size_t largest = 0;
  for (std::size_t i = 0; i < free_list.size(); ++i) {
    const std::size_t cap = free_list[i].capacity();
    if (cap >= n && (best == free_list.size() ||
                     cap < free_list[best].capacity())) {
      best = i;
    }
    if (free_list[i].capacity() >= free_list[largest].capacity()) largest = i;
  }
  const std::size_t pick = (best != free_list.size()) ? best : largest;
  if (free_list[pick].capacity() < n) ++stats_.heap_allocations;
  Buffer buf = std::move(free_list[pick]);
  free_list[pick] = std::move(free_list.back());
  free_list.pop_back();
  // assign() writes the same zeros a fresh Buffer(n, 0) would hold, so a
  // pooled checkout is bit-identical to an allocation and stale samples
  // from the previous tenant can never leak.
  buf.assign(n, typename Buffer::value_type{});
  return buf;
}

Workspace::RealLease Workspace::real(std::size_t n) {
  return RealLease(this, take(free_real_, n));
}

Workspace::ComplexLease Workspace::cplx(std::size_t n) {
  return ComplexLease(this, take(free_cplx_, n));
}

void Workspace::give(Signal&& buf) {
  ++stats_.returns;
  if (pooling_) free_real_.push_back(std::move(buf));
}

void Workspace::give(ComplexSignal&& buf) {
  ++stats_.returns;
  if (pooling_) free_cplx_.push_back(std::move(buf));
}

void Workspace::clear() {
  free_real_.clear();
  free_cplx_.clear();
}

}  // namespace ecocap::dsp
