#pragma once

#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Anti-aliased decimation by an integer factor: low-pass at 0.8 * new
/// Nyquist with a windowed-sinc FIR, then keep every `factor`-th sample.
/// Factor 1 returns a copy.
Signal decimate(std::span<const Real> x, Real fs, std::size_t factor,
                std::size_t taps = 127);

/// Moving-average smoother (box filter) with the given odd window length,
/// zero-phase. Handy for envelope post-processing and SHM series smoothing.
Signal moving_average(std::span<const Real> x, std::size_t window);

}  // namespace ecocap::dsp
