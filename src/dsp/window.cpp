#include "dsp/window.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::dsp {

Signal make_window(WindowKind kind, std::size_t n) {
  Signal w(n, 1.0);
  if (n <= 1) return w;
  const Real denom = static_cast<Real>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Real x = static_cast<Real>(i) / denom;
    switch (kind) {
      case WindowKind::kRect:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) +
               0.08 * std::cos(2.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

void apply_window(Signal& x, const Signal& window) {
  if (x.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= window[i];
}

}  // namespace ecocap::dsp
