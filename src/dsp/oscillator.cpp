#include "dsp/oscillator.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::dsp {

Oscillator::Oscillator(Real fs, Real frequency)
    : fs_(fs), frequency_(frequency), step_(kTwoPi * frequency / fs) {
  if (fs <= 0.0) throw std::invalid_argument("Oscillator: fs must be > 0");
}

void Oscillator::set_frequency(Real frequency) {
  frequency_ = frequency;
  step_ = kTwoPi * frequency / fs_;
}

Real Oscillator::next(Real amplitude) {
  const Real v = amplitude * std::sin(phase_);
  phase_ += step_;
  if (phase_ >= kTwoPi) phase_ -= kTwoPi;
  if (phase_ < 0.0) phase_ += kTwoPi;
  return v;
}

Signal Oscillator::generate(std::size_t n, Real amplitude) {
  Signal out;
  generate(n, amplitude, out);
  return out;
}

void Oscillator::generate(std::size_t n, Real amplitude, Signal& out) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = next(amplitude);
}

Signal tone(Real fs, Real f, std::size_t n, Real amplitude, Real phase0) {
  Signal out(n);
  const Real step = kTwoPi * f / fs;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(phase0 + step * static_cast<Real>(i));
  }
  return out;
}

Signal chirp(Real fs, Real f0, Real f1, std::size_t n, Real amplitude) {
  Signal out(n);
  if (n == 0) return out;
  const Real duration = static_cast<Real>(n) / fs;
  const Real k = (f1 - f0) / duration;  // Hz per second
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = static_cast<Real>(i) / fs;
    const Real phase = kTwoPi * (f0 * t + 0.5 * k * t * t);
    out[i] = amplitude * std::sin(phase);
  }
  return out;
}

}  // namespace ecocap::dsp
