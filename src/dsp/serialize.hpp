#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace ecocap::dsp::ser {

/// Line-oriented, human-inspectable checkpoint serialization.
///
/// Every record is one `key value...` line. Reals are written as C99
/// hexfloats ("%a"), so a save/load round trip reproduces the exact bit
/// pattern — the property the crash-safe campaign checkpoints need for
/// resume runs to stay bit-identical to uninterrupted ones. RNG engines and
/// distributions round-trip through their standard stream operators, which
/// preserve the mt19937_64 state vector and the normal distribution's
/// cached spare variate.
///
/// The Reader is strict and sequential: records must be consumed in the
/// order they were written, and any key mismatch, truncation, or parse
/// failure throws std::runtime_error naming the offending key — a corrupt
/// or version-skewed checkpoint is rejected instead of silently misread.

/// Bit-exact textual encoding of a Real (hexfloat; nan/inf pass through).
std::string format_real(Real v);

/// Parse a format_real token back; throws std::runtime_error on garbage.
Real parse_real(std::string_view token);

class Writer {
 public:
  /// `header` becomes the first line; the Reader checks it verbatim
  /// (format + version tag, e.g. "ecocap-campaign-checkpoint v1").
  explicit Writer(std::string_view header);

  /// Raw record: `key value`; `value` may contain spaces but no newlines.
  void kv(std::string_view key, std::string_view value);

  void u64(std::string_view key, std::uint64_t v);
  void i64(std::string_view key, std::int64_t v);
  void real(std::string_view key, Real v);
  void str(std::string_view key, std::string_view v) { kv(key, v); }

  /// `key n v0 v1 ... v{n-1}` on a single line.
  void real_vec(std::string_view key, const std::vector<Real>& v);

  /// `key n v0 v1 ... v{n-1}` of decimal u64 on a single line (packed
  /// telemetry words, fault-plan cursors).
  void u64_vec(std::string_view key, const std::vector<std::uint64_t>& v);

  /// Full generator state (engine + distribution caches) on one line.
  void rng(std::string_view key, const Rng& r);

  /// The accumulated payload (header + records).
  const std::string& payload() const { return out_; }

 private:
  std::string out_;
};

class Reader {
 public:
  /// Throws std::runtime_error when the first line differs from
  /// `expected_header` (wrong file, wrong version).
  Reader(std::string content, std::string_view expected_header);

  /// Next record's value; throws when the next line's key differs.
  std::string kv(std::string_view key);

  std::uint64_t u64(std::string_view key);
  std::int64_t i64(std::string_view key);
  Real real(std::string_view key);
  std::string str(std::string_view key) { return kv(key); }
  std::vector<Real> real_vec(std::string_view key);
  std::vector<std::uint64_t> u64_vec(std::string_view key);
  void rng(std::string_view key, Rng& r);

  /// True when every line has been consumed.
  bool exhausted() const { return pos_ >= content_.size(); }

 private:
  std::string next_line(std::string_view key);

  std::string content_;
  std::size_t pos_ = 0;
};

/// Crash-safe file replacement: write `content` to `path + ".tmp"`, flush,
/// fsync the temp file, atomically rename over `path`, then fsync the
/// parent directory so the rename itself is durable. An interrupted writer
/// can leave a stale .tmp behind but never a truncated `path`, and a
/// completed call survives power loss, not just process death. Returns
/// false (after cleaning up the temp file) when any step fails — including
/// an unwritable path or a failed fsync.
bool atomic_write_file(const std::string& path, std::string_view content);

/// Whole-file slurp; nullopt when the file does not exist or is unreadable.
std::optional<std::string> read_file(const std::string& path);

}  // namespace ecocap::dsp::ser
