#include "dsp/decimate.hpp"

#include <stdexcept>

#include "dsp/fir.hpp"

namespace ecocap::dsp {

Signal decimate(std::span<const Real> x, Real fs, std::size_t factor,
                std::size_t taps) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be > 0");
  if (factor == 1) return Signal(x.begin(), x.end());
  const Real new_nyquist = fs / (2.0 * static_cast<Real>(factor));
  const Signal h = design_lowpass(fs, 0.8 * new_nyquist, taps);
  const Signal filtered = filter_zero_phase(h, x);
  Signal out;
  out.reserve(filtered.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) {
    out.push_back(filtered[i]);
  }
  return out;
}

Signal moving_average(std::span<const Real> x, std::size_t window) {
  if (window == 0) throw std::invalid_argument("moving_average: empty window");
  if (window % 2 == 0) ++window;
  const std::size_t half = window / 2;
  Signal out(x.size(), 0.0);
  // Prefix sums for O(n).
  std::vector<Real> prefix(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i];
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(x.size() - 1, i + half);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<Real>(hi - lo + 1);
  }
  return out;
}

}  // namespace ecocap::dsp
