#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Arena of reusable waveform buffers for the zero-copy stage pipeline.
///
/// Every stage of the tx -> channel -> node -> rx chain used to return a
/// freshly allocated Signal; after the FFT kernels made the math cheap the
/// heap churn dominated the Monte-Carlo harnesses. A Workspace keeps the
/// buffers those stages write into and hands them out again on the next
/// checkout, so a steady-state interrogation allocates nothing.
///
/// Semantics:
///  * `real(n)` / `cplx(n)` return an RAII lease over a buffer of exactly
///    `n` elements, zero-filled — bit-identical to a fresh `Signal(n, 0.0)`,
///    so pooled and unpooled paths produce the same samples and no stale
///    tail can leak between checkouts. `real(0)` yields an empty buffer
///    whose spare capacity is still reused (for push_back-style encoders).
///  * A lease returns its buffer to the workspace on destruction (or
///    `release()`); any number of leases can be live at once.
///  * A Workspace is single-threaded: it and its leases must stay on the
///    owning thread (use core::WorkspacePool for one workspace per worker).
///  * `set_pooling(false)` turns reuse off — every checkout allocates and
///    returned buffers are dropped. This is the "before" mode the
///    allocation-counting benchmark compares against.
///
/// Stats are the counting hook for bench_micro_dsp's e2e_interrogate
/// metrics: `checkouts` counts buffers requested, `heap_allocations`
/// counts checkouts the free lists could not satisfy from capacity.
class Workspace {
 public:
  struct Stats {
    std::size_t checkouts = 0;
    std::size_t heap_allocations = 0;
    /// Buffers handed back by lease destruction/release. When no leases
    /// are live, `returns == checkouts` — the fault-path tests assert this
    /// balance to prove aborted interrogations leak nothing.
    std::size_t returns = 0;
  };

  template <typename Buffer>
  class Lease {
   public:
    Lease() = default;
    Lease(Workspace* ws, Buffer&& buf) : ws_(ws), buf_(std::move(buf)) {}
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : ws_(std::exchange(other.ws_, nullptr)), buf_(std::move(other.buf_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        ws_ = std::exchange(other.ws_, nullptr);
        buf_ = std::move(other.buf_);
      }
      return *this;
    }
    ~Lease() { release(); }

    Buffer& operator*() { return buf_; }
    const Buffer& operator*() const { return buf_; }
    Buffer* operator->() { return &buf_; }
    const Buffer* operator->() const { return &buf_; }
    Buffer& get() { return buf_; }
    const Buffer& get() const { return buf_; }

    /// Hand the buffer back before the scope ends.
    void release() {
      if (ws_ != nullptr) {
        ws_->give(std::move(buf_));
        ws_ = nullptr;
      }
      buf_ = Buffer();
    }

   private:
    Workspace* ws_ = nullptr;
    Buffer buf_;
  };

  using RealLease = Lease<Signal>;
  using ComplexLease = Lease<ComplexSignal>;

  /// Check out a zero-filled real buffer of length n.
  RealLease real(std::size_t n);

  /// Check out a zero-filled complex buffer of length n.
  ComplexLease cplx(std::size_t n);

  void set_pooling(bool enabled) { pooling_ = enabled; }
  bool pooling() const { return pooling_; }

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Drop every pooled buffer (leases currently out are unaffected).
  void clear();

  /// Pooled buffers currently available for checkout.
  std::size_t pooled_buffers() const {
    return free_real_.size() + free_cplx_.size();
  }

 private:
  template <typename Buffer>
  friend class Lease;

  void give(Signal&& buf);
  void give(ComplexSignal&& buf);

  /// Pick the free buffer whose capacity fits n best (smallest capacity
  /// >= n, else the largest available so growth reuses the biggest block).
  template <typename Buffer>
  Buffer take(std::vector<Buffer>& free_list, std::size_t n);

  std::vector<Signal> free_real_;
  std::vector<ComplexSignal> free_cplx_;
  Stats stats_;
  bool pooling_ = true;
};

}  // namespace ecocap::dsp
