#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Fast-convolution kernel layer. Every waveform-length hot path (FIR
/// filtering, zero-phase filtering, template correlation, the receiver's
/// complex-baseband low-pass) routes through these primitives, which pick
/// between the direct O(N·M) form and overlap-save FFT convolution from a
/// cost model over (signal length, tap count).
///
/// The FFT path packs two real overlap-save blocks into one complex FFT
/// (block A in the real part, block B in the imaginary part); because the
/// kernel is real, Y = H·X separates back into the two block outputs as the
/// real and imaginary parts of the inverse transform, so real signals cost
/// one forward + one inverse FFT per *two* blocks.

/// Tap-count threshold override from the ECOCAP_FFT_CONV_MIN_TAPS
/// environment variable: when set to a non-negative integer, the dispatcher
/// uses the FFT path iff the kernel has at least that many taps (0 forces
/// FFT always, a huge value forces direct always). Returns -1 when unset or
/// unparsable, which selects the built-in cost model.
long fft_conv_min_taps_override();

/// Cost-model dispatch: true when the overlap-save FFT path is estimated
/// cheaper than the direct form for an x-length-n signal and m-tap kernel.
bool use_fft_convolution(std::size_t n, std::size_t m);

/// Full linear convolution y[k] = sum_j h[j]·x[k-j], k in [0, n+m-1).
/// Empty x or h yields an empty result. Dispatches direct vs FFT.
Signal convolve_full(std::span<const Real> x, std::span<const Real> h);

/// Direct-form full convolution (reference path; always exact).
Signal convolve_full_direct(std::span<const Real> x, std::span<const Real> h);

/// Overlap-save FFT full convolution (packed real blocks).
Signal convolve_full_fft(std::span<const Real> x, std::span<const Real> h);

/// Full convolution of a complex signal with a real kernel — the receiver's
/// baseband low-pass filters both rails in one pass. Dispatches direct/FFT.
ComplexSignal convolve_full(std::span<const Complex> x,
                            std::span<const Real> h);
ComplexSignal convolve_full_direct(std::span<const Complex> x,
                                   std::span<const Real> h);
ComplexSignal convolve_full_fft(std::span<const Complex> x,
                                std::span<const Real> h);

/// Valid-mode correlation out[k] = sum_i x[k+i]·h[i] via the FFT path
/// (convolution with the reversed template). Same contract as
/// correlate_valid: empty result when h is empty or longer than x.
Signal correlate_valid_fft(std::span<const Real> x, std::span<const Real> h);

/// Zero-phase filter of a complex signal with a real (odd-length) FIR:
/// full convolution sliced by the group delay (taps-1)/2, so the output
/// aligns with the input in time. One pass over both rails.
ComplexSignal filter_zero_phase(std::span<const Real> coefficients,
                                std::span<const Complex> x);

/// Zero-phase filter into a caller-provided buffer (resized to x.size()).
/// `out` must not alias `x`.
void filter_zero_phase(std::span<const Real> coefficients,
                       std::span<const Complex> x, ComplexSignal& out);

}  // namespace ecocap::dsp
