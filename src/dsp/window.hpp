#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace ecocap::dsp {

/// Window functions used for FIR design and spectral estimation.
enum class WindowKind { kRect, kHann, kHamming, kBlackman };

/// Generate an n-point window of the given kind (symmetric form).
Signal make_window(WindowKind kind, std::size_t n);

/// Apply a window to a buffer in place. Sizes must match.
void apply_window(Signal& x, const Signal& window);

}  // namespace ecocap::dsp
