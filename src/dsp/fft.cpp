#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace ecocap::dsp {

namespace {

/// Forward twiddles for every butterfly stage, cached per size and laid out
/// stage-contiguously as interleaved (cos, sin) pairs: the stage with
/// half-width H starts at offset 2*(H-1) and holds exp(-i pi k / H) for
/// k < H. The table kills the serial `w *= wlen` recurrence in the butterfly
/// (a complex multiply on the critical path of every butterfly, accumulating
/// rounding error to boot) while keeping the inner-loop reads sequential.
/// thread_local keeps parallel Monte-Carlo legs lock-free; the handful of
/// distinct sizes per run makes the memory cost trivial.
const Real* twiddle_table(std::size_t n) {
  thread_local std::unordered_map<std::size_t, Signal> tables;
  Signal& t = tables[n];
  if (t.empty()) {
    t.resize(2 * (n - 1));
    for (std::size_t half = 1; half < n; half <<= 1) {
      for (std::size_t k = 0; k < half; ++k) {
        const Real ang = -kPi * static_cast<Real>(k) / static_cast<Real>(half);
        t[2 * (half - 1 + k)] = std::cos(ang);
        t[2 * (half - 1 + k) + 1] = std::sin(ang);
      }
    }
  }
  return t.data();
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(ComplexSignal& x, bool inverse) {
  const std::size_t n = x.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  if (n == 1) return;
  const Real* tw = twiddle_table(n);
  // Butterflies on raw interleaved doubles: std::complex arithmetic drags
  // in the IEEE `__muldc3` NaN-fixup checks and (with GCC) a stack
  // round-trip per butterfly; spelled out as real ops the loop stays in
  // registers. std::complex<Real> is layout-guaranteed {re, im}.
  Real* d = reinterpret_cast<Real*>(x.data());
  const Real wi_sign = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const Real* stage = tw + 2 * (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      Real* lo = d + 2 * i;
      Real* hi = lo + 2 * half;
      for (std::size_t k = 0; k < half; ++k) {
        const Real wr = stage[2 * k];
        const Real wi = wi_sign * stage[2 * k + 1];
        const Real xr = hi[2 * k], xi = hi[2 * k + 1];
        const Real vr = xr * wr - xi * wi;
        const Real vi = xr * wi + xi * wr;
        const Real ur = lo[2 * k], ui = lo[2 * k + 1];
        lo[2 * k] = ur + vr;
        lo[2 * k + 1] = ui + vi;
        hi[2 * k] = ur - vr;
        hi[2 * k + 1] = ui - vi;
      }
    }
  }
  if (inverse) {
    const Real s = 1.0 / static_cast<Real>(n);
    for (std::size_t i = 0; i < 2 * n; ++i) d[i] *= s;
  }
}

ComplexSignal fft_real(std::span<const Real> x, std::size_t min_size) {
  const std::size_t n = next_pow2(std::max(x.size(), std::max<std::size_t>(min_size, 1)));
  ComplexSignal buf(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = Complex(x[i], 0.0);
  fft_inplace(buf);
  return buf;
}

Signal magnitude_spectrum(std::span<const Real> x, std::size_t min_size) {
  const ComplexSignal spec = fft_real(x, min_size);
  const std::size_t half = spec.size() / 2 + 1;
  Signal mag(half);
  for (std::size_t i = 0; i < half; ++i) mag[i] = std::abs(spec[i]);
  return mag;
}

Real bin_frequency(std::size_t k, std::size_t fft_size, Real fs) {
  return fs * static_cast<Real>(k) / static_cast<Real>(fft_size);
}

std::size_t peak_bin_in_band(std::span<const Real> spectrum,
                             std::size_t fft_size, Real fs, Real f_lo,
                             Real f_hi) {
  std::size_t best = 0;
  Real best_mag = -1.0;
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    const Real f = bin_frequency(k, fft_size, fs);
    if (f < f_lo || f > f_hi) continue;
    if (spectrum[k] > best_mag) {
      best_mag = spectrum[k];
      best = k;
    }
  }
  return best;
}

Real estimate_tone_frequency(std::span<const Real> x, Real fs, Real f_lo,
                             Real f_hi) {
  if (x.empty()) return 0.0;
  const std::size_t n = next_pow2(std::max<std::size_t>(x.size(), 1024));
  const Signal mag = magnitude_spectrum(x, n);
  const std::size_t k = peak_bin_in_band(mag, n, fs, f_lo, f_hi);
  if (k == 0 || k + 1 >= mag.size()) return bin_frequency(k, n, fs);
  // Parabolic interpolation around the peak bin.
  const Real a = mag[k - 1];
  const Real b = mag[k];
  const Real c = mag[k + 1];
  const Real denom = a - 2.0 * b + c;
  Real delta = 0.0;
  if (std::abs(denom) > 1e-30) delta = 0.5 * (a - c) / denom;
  if (delta > 0.5) delta = 0.5;
  if (delta < -0.5) delta = -0.5;
  return bin_frequency(k, n, fs) + delta * fs / static_cast<Real>(n);
}

Real band_power(std::span<const Real> x, Real fs, Real f_lo, Real f_hi) {
  if (x.empty()) return 0.0;
  const std::size_t n = next_pow2(std::max<std::size_t>(x.size(), 1024));
  const ComplexSignal spec = fft_real(x, n);
  const std::size_t half = n / 2;
  Real sum = 0.0;
  for (std::size_t k = 0; k <= half; ++k) {
    const Real f = bin_frequency(k, n, fs);
    if (f < f_lo || f > f_hi) continue;
    const Real m2 = std::norm(spec[k]);
    // One-sided: double interior bins to account for negative frequencies.
    const bool interior = (k != 0 && k != half);
    sum += (interior ? 2.0 : 1.0) * m2;
  }
  // Parseval: total power = sum |X|^2 / N^2 when averaged per sample of the
  // padded frame; normalize by the original length so tone power is stable.
  return sum / (static_cast<Real>(n) * static_cast<Real>(x.size()));
}

}  // namespace ecocap::dsp
