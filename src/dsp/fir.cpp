#include "dsp/fir.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fast_convolve.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ecocap::dsp {

namespace {

Real sinc(Real x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

std::size_t make_odd(std::size_t taps) { return (taps % 2 == 0) ? taps + 1 : taps; }

void normalize_dc(Signal& h) {
  Real sum = 0.0;
  for (Real v : h) sum += v;
  if (sum != 0.0) {
    for (Real& v : h) v /= sum;
  }
}

}  // namespace

Signal design_lowpass(Real fs, Real cutoff, std::size_t taps,
                      WindowKind window) {
  if (fs <= 0.0 || cutoff <= 0.0 || cutoff >= fs / 2.0) {
    throw std::invalid_argument("design_lowpass: cutoff out of range");
  }
  const std::size_t n = make_odd(taps);
  const Real fc = cutoff / fs;  // normalized
  Signal h(n);
  const Signal w = make_window(window, n);
  const Real m = static_cast<Real>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real k = static_cast<Real>(i) - m;
    h[i] = 2.0 * fc * sinc(2.0 * fc * k) * w[i];
  }
  normalize_dc(h);
  return h;
}

Signal design_highpass(Real fs, Real cutoff, std::size_t taps,
                       WindowKind window) {
  Signal h = design_lowpass(fs, cutoff, taps, window);
  // Spectral inversion: delta at center minus the low-pass.
  for (Real& v : h) v = -v;
  h[(h.size() - 1) / 2] += 1.0;
  return h;
}

Signal design_bandpass(Real fs, Real f_lo, Real f_hi, std::size_t taps,
                       WindowKind window) {
  if (f_lo <= 0.0 || f_hi <= f_lo || f_hi >= fs / 2.0) {
    throw std::invalid_argument("design_bandpass: band out of range");
  }
  const std::size_t n = make_odd(taps);
  Signal lo = design_lowpass(fs, f_hi, n, window);
  Signal lo2 = design_lowpass(fs, f_lo, n, window);
  Signal h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = lo[i] - lo2[i];
  return h;
}

Signal design_bandstop(Real fs, Real f_lo, Real f_hi, std::size_t taps,
                       WindowKind window) {
  Signal h = design_bandpass(fs, f_lo, f_hi, taps, window);
  for (Real& v : h) v = -v;
  h[(h.size() - 1) / 2] += 1.0;
  return h;
}

FirFilter::FirFilter(Signal coefficients)
    : coeff_(std::move(coefficients)),
      coeff_rev_(coeff_.rbegin(), coeff_.rend()),
      delay_(coeff_.size(), 0.0) {
  if (coeff_.empty()) {
    throw std::invalid_argument("FirFilter: empty coefficients");
  }
}

Real FirFilter::process(Real x) {
  delay_[pos_] = x;
  Real acc = 0.0;
  std::size_t j = pos_;
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    acc += coeff_[i] * delay_[j];
    j = (j == 0) ? delay_.size() - 1 : j - 1;
  }
  pos_ = (pos_ + 1) % delay_.size();
  return acc;
}

Signal FirFilter::process(std::span<const Real> x) {
  if (x.empty()) return {};
  const std::size_t m = coeff_.size();
  // Either path pads the batch with the last m-1 streaming inputs (held in
  // the circular delay line, oldest first) so the batch result matches
  // feeding the samples one at a time.
  scratch_.resize(m - 1 + x.size());
  for (std::size_t k = 0; k < m - 1; ++k) {
    scratch_[k] = delay_[(pos_ + 1 + k) % m];
  }
  std::copy(x.begin(), x.end(),
            scratch_.begin() + static_cast<std::ptrdiff_t>(m - 1));
  Signal out;
  if (x.size() >= m && use_fft_convolution(x.size(), m)) {
    const Signal full = convolve_full_fft(scratch_, coeff_);
    out.assign(full.begin() + static_cast<std::ptrdiff_t>(m - 1),
               full.begin() + static_cast<std::ptrdiff_t>(m - 1 + x.size()));
  } else {
    // Direct path: with the taps reversed, each output sample is a sliding
    // dot product — exactly valid-mode correlation, dispatched to the
    // active SIMD kernel table.
    out.resize(x.size());
    kernels::active().correlate_valid(scratch_.data(), scratch_.size(),
                                      coeff_rev_.data(), m, out.data());
  }
  // Rebuild the delay line: the last m inputs in chronological order, with
  // the next write slot at index 0 (so delay_[m-1] is the newest sample).
  for (std::size_t k = 0; k < m; ++k) {
    delay_[k] = scratch_[scratch_.size() - m + k];
  }
  pos_ = 0;
  return out;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), 0.0);
  pos_ = 0;
}

Signal filter_zero_phase(const Signal& coefficients, std::span<const Real> x) {
  if (coefficients.empty()) {
    throw std::invalid_argument("filter_zero_phase: empty coefficients");
  }
  if (x.empty()) return {};
  // The zero-phase output is the full linear convolution shifted by the
  // group delay — one convolution pass (direct or FFT per the dispatcher)
  // instead of streaming through a delay line plus a zero-fed tail drain.
  const std::size_t delay = (coefficients.size() - 1) / 2;
  const Signal full = convolve_full(x, coefficients);
  return Signal(full.begin() + static_cast<std::ptrdiff_t>(delay),
                full.begin() + static_cast<std::ptrdiff_t>(delay + x.size()));
}

}  // namespace ecocap::dsp
