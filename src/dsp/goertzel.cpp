#include "dsp/goertzel.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::dsp {

Real goertzel_power(std::span<const Real> x, Real fs, Real f) {
  if (x.empty()) return 0.0;
  const Real w = kTwoPi * f / fs;
  const Real coeff = 2.0 * std::cos(w);
  Real s1 = 0.0, s2 = 0.0;
  for (Real v : x) {
    const Real s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  return s1 * s1 + s2 * s2 - coeff * s1 * s2;
}

Goertzel::Goertzel(Real fs, Real f, std::size_t block_size)
    : coeff_(2.0 * std::cos(kTwoPi * f / fs)), block_size_(block_size) {
  if (block_size == 0) throw std::invalid_argument("Goertzel: empty block");
}

bool Goertzel::push(Real sample) {
  const Real s0 = sample + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  if (++count_ == block_size_) {
    power_ = s1_ * s1_ + s2_ * s2_ - coeff_ * s1_ * s2_;
    s1_ = s2_ = 0.0;
    count_ = 0;
    return true;
  }
  return false;
}

}  // namespace ecocap::dsp
