#include "dsp/correlate.hpp"

#include <cmath>

#include "dsp/fast_convolve.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ecocap::dsp {

Signal correlate_valid(std::span<const Real> x, std::span<const Real> h) {
  if (h.empty() || x.size() < h.size()) return {};
  if (use_fft_convolution(x.size(), h.size())) {
    return correlate_valid_fft(x, h);
  }
  const std::size_t out_len = x.size() - h.size() + 1;
  Signal out(out_len, 0.0);
  kernels::active().correlate_valid(x.data(), x.size(), h.data(), h.size(),
                                    out.data());
  return out;
}

std::size_t best_alignment(std::span<const Real> x, std::span<const Real> h) {
  const Signal c = correlate_valid(x, h);
  std::size_t best = 0;
  Real best_v = -1e300;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i] > best_v) {
      best_v = c[i];
      best = i;
    }
  }
  return best;
}

Real correlation_coefficient(std::span<const Real> a,
                             std::span<const Real> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  Real sa = 0.0, sb = 0.0, sab = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i] * a[i];
    sb += b[i] * b[i];
    sab += a[i] * b[i];
  }
  if (sa <= 0.0 || sb <= 0.0) return 0.0;
  return sab / std::sqrt(sa * sb);
}

ComplexSignal mix_down(std::span<const Real> x, Real fs, Real f0) {
  ComplexSignal out;
  mix_down(x, fs, f0, out);
  return out;
}

void mix_down(std::span<const Real> x, Real fs, Real f0, ComplexSignal& out) {
  out.resize(x.size());
  const Real step = kTwoPi * f0 / fs;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real ph = step * static_cast<Real>(i);
    out[i] = x[i] * Complex(std::cos(ph), -std::sin(ph));
  }
}

Signal complex_magnitude(const ComplexSignal& x) {
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

}  // namespace ecocap::dsp
