#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsp/rng.hpp"

namespace ecocap::phy {

/// A bit vector with one byte per bit (values 0/1). Chosen over
/// std::vector<bool> so spans and spans-of-subranges work.
using Bits = std::vector<std::uint8_t>;

/// MSB-first expansion of bytes to bits.
Bits bits_from_bytes(std::span<const std::uint8_t> bytes);

/// MSB-first packing of bits to bytes. Trailing partial byte is zero-padded.
std::vector<std::uint8_t> bytes_from_bits(std::span<const std::uint8_t> bits);

/// n uniformly random bits.
Bits random_bits(std::size_t n, dsp::Rng& rng);

/// Append an unsigned value MSB-first using `width` bits.
void append_uint(Bits& bits, std::uint32_t value, int width);

/// Read an unsigned value MSB-first starting at `offset` (no bounds checks
/// beyond an exception when the range does not fit).
std::uint32_t read_uint(std::span<const std::uint8_t> bits, std::size_t offset,
                        int width);

/// "1011..." debug rendering.
std::string to_string(std::span<const std::uint8_t> bits);

/// Hamming distance between equal-length bit vectors.
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

}  // namespace ecocap::phy
