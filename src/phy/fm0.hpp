#pragma once

#include <span>

#include "dsp/types.hpp"
#include "dsp/workspace.hpp"
#include "phy/bits.hpp"

namespace ecocap::phy {

using dsp::Real;
using dsp::Signal;

/// FM0 (bi-phase space) line code used for the uplink (paper §3.4, as in
/// EPC Gen2). The level inverts at every symbol boundary; a data-0 inverts
/// again at mid-symbol. Decoding therefore depends on the *presence of a
/// transition*, not the absolute duration — the robustness property the
/// paper cites for in-concrete channels.
struct Fm0Params {
  Real bitrate = 1000.0;     // b/s
  int preamble_pairs = 6;    // preamble = alternating 1-bits ("1010..")
};

/// The fixed preamble bit pattern prepended to every uplink frame; the
/// reader correlates against its waveform for alignment.
Bits fm0_preamble(const Fm0Params& params);

/// Encode bits into a bipolar (+1/-1) baseband at sample rate fs, starting
/// from level `start_level` (+1 or -1). The preamble is NOT added here.
Signal fm0_encode(std::span<const std::uint8_t> bits, Real fs, Real bitrate,
                  Real start_level = 1.0);

/// Encode into a caller-provided buffer (replaced, capacity reused).
void fm0_encode(std::span<const std::uint8_t> bits, Real fs, Real bitrate,
                Real start_level, Signal& out);

/// Encode preamble + payload into one frame waveform.
Signal fm0_encode_frame(const Bits& payload, const Fm0Params& params, Real fs);

/// Frame encode into a caller-provided buffer (replaced, capacity reused).
void fm0_encode_frame(const Bits& payload, const Fm0Params& params, Real fs,
                      Signal& out);

/// Maximum-likelihood FM0 decoder over soft bipolar samples. Implements a
/// 2-state Viterbi (state = level entering the symbol): for each symbol and
/// candidate (state, bit) the branch metric is the correlation of the
/// received window with the ideal half-level template. This is the decoder
/// the paper's MATLAB post-processing implements.
/// @param samples_per_bit fs / bitrate (need not be an integer multiple of 2
///        but at least 2 samples per half-bit are required)
Bits fm0_decode(std::span<const Real> x, Real samples_per_bit,
                std::size_t bit_count);

/// Locate the preamble waveform in `x` by matched-filter correlation and
/// decode `payload_bits` payload bits following it. Returns decoded bits
/// (empty when the preamble is not found with at least `min_corr`
/// normalized correlation).
struct Fm0FrameDecode {
  Bits payload;
  std::size_t frame_start = 0;  // sample index of the preamble start
  Real preamble_correlation = 0.0;
};
Fm0FrameDecode fm0_decode_frame(std::span<const Real> x,
                                const Fm0Params& params, Real fs,
                                std::size_t payload_bits,
                                Real min_corr = 0.5);

/// Workspace-backed frame decode: the preamble template comes from a pooled
/// buffer and the aligned segment is compared in place (a subspan of x), so
/// the per-call scratch of the receiver's subcarrier phase sweep is reused.
Fm0FrameDecode fm0_decode_frame(std::span<const Real> x,
                                const Fm0Params& params, Real fs,
                                std::size_t payload_bits, Real min_corr,
                                dsp::Workspace& ws);

}  // namespace ecocap::phy
