#pragma once

#include <span>

#include "dsp/types.hpp"
#include "phy/bits.hpp"

namespace ecocap::phy {

using dsp::Real;
using dsp::Signal;

/// Miller-modulated subcarrier line code (EPC Gen2's robust alternative to
/// FM0; the paper's protocol follows Gen2, which offers M = 2/4/8). Miller
/// baseband rules: a data-1 inverts phase mid-symbol; the phase also inverts
/// at the boundary between two consecutive data-0s. The baseband is then
/// multiplied by a square subcarrier of M cycles per symbol, which moves the
/// spectrum away from the carrier — more self-interference headroom at the
/// cost of M times the switching bandwidth.
struct MillerParams {
  Real bitrate = 1000.0;
  int m = 4;               // subcarrier cycles per symbol (2, 4 or 8)
  int preamble_bits = 10;  // leading data-1s (subcarrier pilot) + "010111"
};

/// Encode bits into the bipolar Miller waveform at sample rate fs.
Signal miller_encode(std::span<const std::uint8_t> bits, const MillerParams& p,
                     Real fs);

/// Maximum-likelihood Miller decoder over soft bipolar samples: a 2-state
/// (baseband phase) Viterbi whose branch templates include the subcarrier.
/// Assumes symbol alignment (frame sync is handled by the caller, as with
/// FM0).
Bits miller_decode(std::span<const Real> x, const MillerParams& p, Real fs,
                   std::size_t bit_count);

}  // namespace ecocap::phy
