#pragma once

#include <optional>

#include "dsp/types.hpp"
#include "phy/bits.hpp"

namespace ecocap::phy {

using dsp::Real;
using dsp::Signal;

/// Pulse-interval-encoding timing (paper §3.3, Fig. 6; EPC Gen2 downlink).
/// A data-0 is a short high interval followed by a low pulse; a data-1 is a
/// long high interval followed by the same low pulse. The defaults give a
/// 50% minimum power duty cycle for all-zeros streams, the property the
/// paper highlights for battery-free harvesting.
struct PieParams {
  Real tari = 1.0e-3;      // s, duration of a data-0 symbol (high + low)
  Real pw_fraction = 0.5;  // low pulse as a fraction of tari
  Real one_length = 2.0;   // data-1 total length in taris

  Real pw() const { return tari * pw_fraction; }
  Real zero_high() const { return tari - pw(); }
  Real one_high() const { return tari * one_length - pw(); }

  /// Fraction of time the carrier is high for an infinite stream with
  /// probability `p1` of a data-1 (energy delivery analytics, §3.3).
  Real power_duty(Real p1) const;
};

/// The preamble the reader sends before PIE data so a node can self-calibrate
/// its 0/1 pivot: delimiter (a long low announcing the frame), data-0, then
/// R=>T cal (a high interval of length data0+data1). Mirrors the Gen2
/// frame-sync structure; because acoustic taris run in the millisecond range
/// the delimiter scales with the symbol timing (3 pw) instead of Gen2's
/// fixed 12.5 us, so it stays distinguishable from ordinary low pulses.
struct PiePreamble {
  /// Delimiter low duration in seconds; <= 0 selects the automatic
  /// 3 * pw scaling.
  Real delimiter = 0.0;
};

/// Encode a PIE frame into a baseband level waveform (values 0/1) at sample
/// rate fs. The frame is: delimiter low, data-0, RTcal, then the payload
/// symbols, ending high (carrier returns to CW for harvesting).
Signal pie_encode(const Bits& payload, const PieParams& params, Real fs,
                  const PiePreamble& preamble = {});

/// Encode into a caller-provided buffer (replaced, capacity reused).
void pie_encode(const Bits& payload, const PieParams& params, Real fs,
                const PiePreamble& preamble, Signal& out);

/// Result of decoding a PIE frame from binarized levels.
struct PieDecodeResult {
  Bits payload;
  Real rtcal = 0.0;      // measured R=>T cal interval (s)
  Real pivot = 0.0;      // decision threshold used (s)
  std::size_t end_index = 0;  // sample index just past the frame
};

/// Decode a PIE frame from a binarized baseband (what the node's envelope
/// detector + level shifter produce). Detects the delimiter, measures RTcal,
/// and slices falling-edge intervals against the pivot = RTcal/2 — exactly
/// the timer-interrupt algorithm the MSP430 firmware runs (§4.2).
/// `expected_bits` bounds the payload length (frames are fixed-format).
std::optional<PieDecodeResult> pie_decode(const std::vector<bool>& levels,
                                          Real fs, std::size_t expected_bits,
                                          const PieParams& params = {});

/// Decode a whole PIE frame without knowing its length: symbols are sliced
/// until the trailing CW (a high interval much longer than a data-1) is
/// reached. This is how the node firmware consumes variable-length commands.
/// `search_from` skips samples already consumed by earlier frames.
std::optional<PieDecodeResult> pie_decode_stream(
    const std::vector<bool>& levels, Real fs, const PieParams& params = {},
    std::size_t search_from = 0);

}  // namespace ecocap::phy
