#include "phy/crc.hpp"

namespace ecocap::phy {

std::uint8_t crc5(std::span<const std::uint8_t> bits) {
  std::uint8_t reg = 0x09;  // Gen2 preset
  for (auto bit : bits) {
    const std::uint8_t in = static_cast<std::uint8_t>((bit & 1u) ^ ((reg >> 4) & 1u));
    reg = static_cast<std::uint8_t>((reg << 1) & 0x1F);
    if (in) reg ^= 0x09;
  }
  return reg;
}

std::uint16_t crc16(std::span<const std::uint8_t> bits) {
  std::uint16_t reg = 0xFFFF;
  for (auto bit : bits) {
    const std::uint16_t in = static_cast<std::uint16_t>((bit & 1u) ^ ((reg >> 15) & 1u));
    reg = static_cast<std::uint16_t>(reg << 1);
    if (in) reg ^= 0x1021;
  }
  return static_cast<std::uint16_t>(reg ^ 0xFFFF);
}

void append_crc5(Bits& bits) {
  const std::uint8_t c = crc5(bits);
  append_uint(bits, c, 5);
}

bool check_crc5(std::span<const std::uint8_t> bits_with_crc) {
  if (bits_with_crc.size() < 5) return false;
  const std::size_t n = bits_with_crc.size() - 5;
  return crc5(bits_with_crc.subspan(0, n)) == read_uint(bits_with_crc, n, 5);
}

void append_crc16(Bits& bits) {
  const std::uint16_t c = crc16(bits);
  append_uint(bits, c, 16);
}

bool check_crc16(std::span<const std::uint8_t> bits_with_crc) {
  if (bits_with_crc.size() < 16) return false;
  const std::size_t n = bits_with_crc.size() - 16;
  const std::uint16_t expected = crc16(bits_with_crc.subspan(0, n));
  const std::uint32_t stored = read_uint(bits_with_crc, n, 16);
  return stored == expected;
}

}  // namespace ecocap::phy
