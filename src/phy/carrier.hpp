#pragma once

#include <cstdint>
#include <span>

#include "dsp/oscillator.hpp"
#include "dsp/types.hpp"

namespace ecocap::phy {

using dsp::Real;
using dsp::Signal;

/// Downlink carrier modulation scheme (paper §3.3).
enum class DownlinkScheme {
  /// Traditional on/off keying: the PZT drive is gated by the baseband.
  /// Suffers the ring effect — the disc keeps radiating into low intervals.
  kOok,
  /// The paper's anti-ring trick: the PZT never stops; low intervals are
  /// transmitted at an off-resonant frequency that the concrete suppresses
  /// ("FSK in, OOK out").
  kFskOffResonance,
};

/// Parameters of the downlink carrier synthesis.
struct CarrierParams {
  Real fs = 2.0e6;            // sample rate
  Real f_resonant = 230.0e3;  // concrete/PZT resonant carrier (high edge)
  Real f_off = 180.0e3;       // off-resonant carrier (low edge, FSK only)
  Real amplitude = 1.0;       // drive amplitude (volts, arbitrary units)
};

/// Modulate a PIE baseband (levels 0/1) onto the carrier.
/// OOK: carrier * level. FSK: phase-continuous hop between f_resonant
/// (level 1) and f_off (level 0) at constant amplitude.
Signal modulate_downlink(std::span<const Real> baseband,
                         const CarrierParams& params, DownlinkScheme scheme);

/// Modulate into a caller-provided buffer (resized to match).
void modulate_downlink(std::span<const Real> baseband,
                       const CarrierParams& params, DownlinkScheme scheme,
                       Signal& out);

/// Uplink backscatter modulation at the node. The impedance switch changes
/// the PZT between absorptive and reflective states; the reflected wave is
/// the incident carrier scaled by the modulation state (paper §2, Fig. 2).
struct BackscatterParams {
  /// Reflection amplitude in the reflective state (switch open).
  Real reflective_gain = 1.0;
  /// Residual reflection in the absorptive state (structural scattering of
  /// the shell never reaches zero).
  Real absorptive_gain = 0.25;
  /// Square subcarrier (backscatter link frequency) in Hz; 0 disables the
  /// BLF shift. With a subcarrier the data sidebands move +-f_blf away from
  /// the carrier, opening the guard band of Fig. 24 / Appendix C.
  Real f_blf = 0.0;
};

/// Apply the switching waveform to the incident carrier samples.
/// `switching` is the bipolar (+1/-1) line-coded waveform (e.g. FM0);
/// with a subcarrier the effective state is switching XOR square(f_blf).
Signal backscatter_modulate(std::span<const Real> incident_carrier,
                            std::span<const Real> switching, Real fs,
                            const BackscatterParams& params);

/// Modulate into a caller-provided buffer (resized to match); the BLF
/// subcarrier is synthesized inline, so no square-wave buffer is allocated.
/// `out` must not alias the inputs.
void backscatter_modulate(std::span<const Real> incident_carrier,
                          std::span<const Real> switching, Real fs,
                          const BackscatterParams& params, Signal& out);

/// Streaming form: modulate a block whose first sample sits
/// `switching_offset` samples after the switching waveform's origin, so a
/// frame can be reflected block by block with the BLF subcarrier phase
/// carried implicitly by the absolute index. Samples past the end of
/// `switching` rest in the absorptive state exactly as the batch form, so
/// an empty `switching` span models the idle (rest-state) reflection.
/// `out.size()` must equal `incident_carrier.size()`; `out` may alias
/// `incident_carrier` (the transform is elementwise).
void backscatter_modulate(std::span<const Real> incident_carrier,
                          std::span<const Real> switching,
                          std::uint64_t switching_offset, Real fs,
                          const BackscatterParams& params,
                          std::span<Real> out);

/// The bipolar square subcarrier itself (for receiver-side demodulation).
Signal blf_square(Real fs, Real f_blf, std::size_t n, std::size_t phase = 0);

/// Square subcarrier into a caller-provided buffer (resized to n).
void blf_square(Real fs, Real f_blf, std::size_t n, std::size_t phase,
                Signal& out);

}  // namespace ecocap::phy
