#include "phy/protocol.hpp"

#include <cmath>

namespace ecocap::phy {

Bits encode_command(const Command& cmd) {
  Bits bits;
  if (const auto* q = std::get_if<QueryCommand>(&cmd)) {
    append_uint(bits, static_cast<std::uint32_t>(CommandCode::kQuery), 4);
    append_uint(bits, q->q, 4);
    append_crc5(bits);
  } else if (std::get_if<QueryRepCommand>(&cmd)) {
    append_uint(bits, static_cast<std::uint32_t>(CommandCode::kQueryRep), 4);
    append_crc5(bits);
  } else if (const auto* a = std::get_if<AckCommand>(&cmd)) {
    append_uint(bits, static_cast<std::uint32_t>(CommandCode::kAck), 4);
    append_uint(bits, a->rn16, 16);
    append_crc16(bits);
  } else if (const auto* r = std::get_if<ReadCommand>(&cmd)) {
    append_uint(bits, static_cast<std::uint32_t>(CommandCode::kRead), 4);
    append_uint(bits, r->rn16, 16);
    append_uint(bits, r->sensor_id, 8);
    append_crc16(bits);
  } else if (const auto* s = std::get_if<SetBlfCommand>(&cmd)) {
    append_uint(bits, static_cast<std::uint32_t>(CommandCode::kSetBlf), 4);
    append_uint(bits, s->rn16, 16);
    append_uint(bits, s->blf_centihz, 16);
    append_crc16(bits);
  } else if (const auto* sel = std::get_if<SelectCommand>(&cmd)) {
    append_uint(bits, static_cast<std::uint32_t>(CommandCode::kSelect), 4);
    append_uint(bits, sel->pattern, 16);
    append_uint(bits, sel->mask, 16);
    append_crc16(bits);
  }
  return bits;
}

std::optional<Command> parse_command(std::span<const std::uint8_t> bits) {
  if (bits.size() < 9) return std::nullopt;
  const auto code = static_cast<CommandCode>(read_uint(bits, 0, 4));
  switch (code) {
    case CommandCode::kQuery: {
      if (bits.size() != 13 || !check_crc5(bits)) return std::nullopt;
      QueryCommand q;
      q.q = static_cast<std::uint8_t>(read_uint(bits, 4, 4));
      return Command{q};
    }
    case CommandCode::kQueryRep: {
      if (bits.size() != 9 || !check_crc5(bits)) return std::nullopt;
      return Command{QueryRepCommand{}};
    }
    case CommandCode::kAck: {
      if (bits.size() != 36 || !check_crc16(bits)) return std::nullopt;
      AckCommand a;
      a.rn16 = static_cast<std::uint16_t>(read_uint(bits, 4, 16));
      return Command{a};
    }
    case CommandCode::kRead: {
      if (bits.size() != 44 || !check_crc16(bits)) return std::nullopt;
      ReadCommand r;
      r.rn16 = static_cast<std::uint16_t>(read_uint(bits, 4, 16));
      r.sensor_id = static_cast<std::uint8_t>(read_uint(bits, 20, 8));
      return Command{r};
    }
    case CommandCode::kSetBlf: {
      if (bits.size() != 52 || !check_crc16(bits)) return std::nullopt;
      SetBlfCommand s;
      s.rn16 = static_cast<std::uint16_t>(read_uint(bits, 4, 16));
      s.blf_centihz = static_cast<std::uint16_t>(read_uint(bits, 20, 16));
      return Command{s};
    }
    case CommandCode::kSelect: {
      if (bits.size() != 52 || !check_crc16(bits)) return std::nullopt;
      SelectCommand s;
      s.pattern = static_cast<std::uint16_t>(read_uint(bits, 4, 16));
      s.mask = static_cast<std::uint16_t>(read_uint(bits, 20, 16));
      return Command{s};
    }
  }
  return std::nullopt;
}

/// Downlink frame lengths by command code (bits incl. CRC); used by the
/// node to know how many symbols to expect — not exposed publicly because
/// the node decodes the whole PIE symbol stream instead.

Bits encode_response(const Response& resp) {
  Bits bits;
  if (const auto* r = std::get_if<Rn16Response>(&resp)) {
    append_uint(bits, r->rn16, 16);
  } else if (const auto* id = std::get_if<IdResponse>(&resp)) {
    append_uint(bits, id->node_id, 16);
    append_crc16(bits);
  } else if (const auto* d = std::get_if<DataResponse>(&resp)) {
    append_uint(bits, d->sensor_id, 8);
    append_uint(bits, static_cast<std::uint32_t>(d->milli_value), 32);
    append_crc16(bits);
  }
  return bits;
}

std::size_t rn16_response_bits() { return 16; }
std::size_t id_response_bits() { return 16 + 16; }
std::size_t data_response_bits() { return 8 + 32 + 16; }

std::optional<Rn16Response> parse_rn16_response(
    std::span<const std::uint8_t> bits) {
  if (bits.size() != 16) return std::nullopt;
  Rn16Response r;
  r.rn16 = static_cast<std::uint16_t>(read_uint(bits, 0, 16));
  return r;
}

std::optional<IdResponse> parse_id_response(
    std::span<const std::uint8_t> bits) {
  if (bits.size() != id_response_bits() || !check_crc16(bits)) {
    return std::nullopt;
  }
  IdResponse r;
  r.node_id = static_cast<std::uint16_t>(read_uint(bits, 0, 16));
  return r;
}

std::optional<DataResponse> parse_data_response(
    std::span<const std::uint8_t> bits) {
  if (bits.size() != data_response_bits() || !check_crc16(bits)) {
    return std::nullopt;
  }
  DataResponse d;
  d.sensor_id = static_cast<std::uint8_t>(read_uint(bits, 0, 8));
  d.milli_value = static_cast<std::int32_t>(read_uint(bits, 8, 32));
  return d;
}

std::int32_t to_milli(double value) {
  return static_cast<std::int32_t>(std::llround(value * 1000.0));
}

double from_milli(std::int32_t milli) {
  return static_cast<double>(milli) / 1000.0;
}

}  // namespace ecocap::phy
