#include "phy/ring_effect.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/serialize.hpp"

namespace ecocap::phy {

namespace {
constexpr Real kPi = 3.14159265358979323846;

Real pole_radius(Real fs, Real f0, Real q) {
  const Real tau = q / (kPi * f0);
  return std::exp(-1.0 / (tau * fs));
}
}  // namespace

RingingPzt::RingingPzt(Real fs, Real resonance, Real q, Real direct_mix,
                       Real loaded_q)
    : fs_(fs), resonance_(resonance), q_(q), loaded_q_(loaded_q),
      mix_(direct_mix) {
  if (q <= 0.0 || loaded_q <= 0.0) {
    throw std::invalid_argument("RingingPzt: Q must be > 0");
  }
  if (direct_mix < 0.0 || direct_mix > 1.0) {
    throw std::invalid_argument("RingingPzt: direct_mix out of [0, 1]");
  }
  if (resonance <= 0.0 || resonance >= fs / 2.0) {
    throw std::invalid_argument("RingingPzt: resonance out of range");
  }
  rho_free_ = pole_radius(fs, resonance, q);
  rho_loaded_ = pole_radius(fs, resonance, loaded_q);
  const Real w0 = 2.0 * kPi * resonance / fs;
  rot_ = std::polar<Real>(1.0, w0);
  // Steady state under drive (loaded pole): |s| ~ A / (2 (1 - rho_loaded));
  // normalize the storage contribution back to the drive amplitude.
  out_gain_ = 2.0 * (1.0 - rho_loaded_);
  // Drive-presence detector time constants: fast enough to see an OOK gap
  // within ~10 us, slow enough to ride over carrier zero crossings.
  env_decay_ = std::exp(-1.0 / (5.0e-6 * fs));
  peak_decay_ = std::exp(-1.0 / (5.0e-3 * fs));
}

Signal RingingPzt::drive(std::span<const Real> excitation) {
  Signal out(excitation.size());
  for (std::size_t i = 0; i < excitation.size(); ++i) {
    out[i] = process(excitation[i]);
  }
  return out;
}

void RingingPzt::drive_inplace(std::span<Real> excitation) {
  for (Real& v : excitation) v = process(v);
}

Real RingingPzt::process(Real x) {
  const Real a = std::abs(x);
  env_ = std::max(a, env_ * env_decay_);
  peak_ = std::max(env_, peak_ * peak_decay_);
  const bool driven = (peak_ > 1e-12) && (env_ > 0.25 * peak_);
  const Real rho = driven ? rho_loaded_ : rho_free_;
  s_ = s_ * (rho * rot_) + std::complex<Real>(x, 0.0);
  const Real resonant = out_gain_ * s_.real();
  return (1.0 - mix_) * x + mix_ * resonant;
}

void RingingPzt::reset() {
  s_ = {0.0, 0.0};
  env_ = 0.0;
  peak_ = 0.0;
}

Real RingingPzt::ring_time_constant() const { return q_ / (kPi * resonance_); }

Real RingingPzt::ring_decay_time(Real fraction) const {
  if (fraction <= 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("ring_decay_time: fraction out of (0,1)");
  }
  return ring_time_constant() * std::log(1.0 / fraction);
}

Real ook_tail_duration(Real resonance, Real q, Real threshold) {
  const Real tau = q / (kPi * resonance);
  return tau * std::log(1.0 / threshold);
}

void RingingPzt::save(dsp::ser::Writer& w) const {
  w.real("pzt.s_re", s_.real());
  w.real("pzt.s_im", s_.imag());
  w.real("pzt.env", env_);
  w.real("pzt.peak", peak_);
}

void RingingPzt::load(dsp::ser::Reader& r) {
  const Real re = r.real("pzt.s_re");
  const Real im = r.real("pzt.s_im");
  s_ = {re, im};
  env_ = r.real("pzt.env");
  peak_ = r.real("pzt.peak");
}

}  // namespace ecocap::phy
