#include "phy/pie.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::phy {

Real PieParams::power_duty(Real p1) const {
  const Real t0 = tari;
  const Real t1 = tari * one_length;
  const Real high0 = zero_high();
  const Real high1 = one_high();
  const Real mean_high = (1.0 - p1) * high0 + p1 * high1;
  const Real mean_total = (1.0 - p1) * t0 + p1 * t1;
  return mean_high / mean_total;
}

namespace {

void append_level(Signal& out, Real fs, Real duration, Real level) {
  const auto n = static_cast<std::size_t>(std::llround(duration * fs));
  out.insert(out.end(), n, level);
}

/// Run-length view of a binary level sequence with debouncing: runs shorter
/// than `min_run` samples are merged into their predecessor (models the
/// comparator's immunity to sub-pulse glitches).
struct Run {
  bool level;
  std::size_t start;
  std::size_t length;
};

std::vector<Run> to_runs(const std::vector<bool>& levels,
                         std::size_t min_run) {
  std::vector<Run> runs;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (!runs.empty() && runs.back().level == levels[i]) {
      ++runs.back().length;
    } else {
      runs.push_back(Run{levels[i], i, 1});
    }
  }
  // Debounce: absorb short runs.
  std::vector<Run> clean;
  for (const Run& r : runs) {
    if (!clean.empty() && (r.length < min_run || clean.back().level == r.level)) {
      clean.back().length += r.length;
    } else {
      clean.push_back(r);
    }
  }
  return clean;
}

}  // namespace

Signal pie_encode(const Bits& payload, const PieParams& params, Real fs,
                  const PiePreamble& preamble) {
  Signal out;
  pie_encode(payload, params, fs, preamble, out);
  return out;
}

void pie_encode(const Bits& payload, const PieParams& params, Real fs,
                const PiePreamble& preamble, Signal& out) {
  if (fs <= 0.0) throw std::invalid_argument("pie_encode: fs must be > 0");
  out.clear();
  // Leading CW so the node can charge and the delimiter is a clean 1->0.
  append_level(out, fs, 2.0 * params.tari, 1.0);
  const Real delimiter =
      (preamble.delimiter > 0.0) ? preamble.delimiter : 3.0 * params.pw();
  append_level(out, fs, delimiter, 0.0);
  // data-0 reference symbol.
  append_level(out, fs, params.zero_high(), 1.0);
  append_level(out, fs, params.pw(), 0.0);
  // R=>T cal: one high interval of (data0 + data1) - pw, then pw low.
  append_level(out, fs, params.tari * (1.0 + params.one_length) - params.pw(),
               1.0);
  append_level(out, fs, params.pw(), 0.0);
  for (auto bit : payload) {
    const Real high = (bit & 1u) ? params.one_high() : params.zero_high();
    append_level(out, fs, high, 1.0);
    append_level(out, fs, params.pw(), 0.0);
  }
  // Return to CW for harvesting; long enough that the stream decoder sees
  // an unambiguous end-of-frame (comfortably above the RTcal high interval,
  // the longest in-frame high).
  append_level(out, fs, (1.5 + params.one_length) * params.tari, 1.0);
}

std::optional<PieDecodeResult> pie_decode(const std::vector<bool>& levels,
                                          Real fs, std::size_t expected_bits,
                                          const PieParams& params) {
  const auto min_run = static_cast<std::size_t>(params.pw() * fs * 0.25);
  const std::vector<Run> runs = to_runs(levels, std::max<std::size_t>(min_run, 1));

  // 1. Locate the delimiter: a low run much longer than a pw (>= 3 pw works
  //    for the Gen2 62.5 us delimiter against pw >= 0.5 tari when tari is
  //    sub-millisecond; we use a relative rule: longest low run before any
  //    symbol activity whose length >= 2.5 * pw).
  const Real pw_samples = params.pw() * fs;
  std::size_t delim_idx = runs.size();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].level &&
        static_cast<Real>(runs[i].length) >= 2.5 * pw_samples) {
      delim_idx = i;
      break;
    }
  }
  // The delimiter may be shorter than 2.5 pw for large tari; fall back to
  // the first low run preceded by a high run.
  if (delim_idx == runs.size()) {
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (!runs[i].level && runs[i - 1].level) {
        delim_idx = i;
        break;
      }
    }
  }
  if (delim_idx == runs.size() || delim_idx + 4 >= runs.size()) {
    return std::nullopt;
  }

  // 2. Symbols are (high, low) run pairs after the delimiter. The interval
  //    between consecutive rising edges is the symbol length — the quantity
  //    the MSP430 measures with its timer capture unit.
  std::vector<Real> symbol_lengths;
  std::vector<std::size_t> symbol_ends;
  std::size_t i = delim_idx + 1;  // first high run of data-0
  while (i + 1 < runs.size() && symbol_lengths.size() < expected_bits + 2) {
    if (!runs[i].level) return std::nullopt;  // malformed: expected high
    const std::size_t len = runs[i].length + runs[i + 1].length;
    if (runs[i + 1].level) return std::nullopt;
    symbol_lengths.push_back(static_cast<Real>(len) / fs);
    symbol_ends.push_back(runs[i + 1].start + runs[i + 1].length);
    i += 2;
  }
  if (symbol_lengths.size() < expected_bits + 2) return std::nullopt;

  // 3. First symbol = data-0 (tari), second = RTcal. pivot = RTcal / 2.
  PieDecodeResult result;
  result.rtcal = symbol_lengths[1];
  result.pivot = result.rtcal / 2.0;
  if (result.rtcal <= symbol_lengths[0]) return std::nullopt;

  for (std::size_t k = 0; k < expected_bits; ++k) {
    const Real len = symbol_lengths[2 + k];
    result.payload.push_back(len > result.pivot ? 1 : 0);
  }
  result.end_index = symbol_ends[1 + expected_bits];
  return result;
}

std::optional<PieDecodeResult> pie_decode_stream(
    const std::vector<bool>& levels, Real fs, const PieParams& params,
    std::size_t search_from) {
  const auto min_run = static_cast<std::size_t>(params.pw() * fs * 0.25);
  std::vector<bool> view(levels.begin() + static_cast<std::ptrdiff_t>(
                             std::min(search_from, levels.size())),
                         levels.end());
  const std::vector<Run> runs = to_runs(view, std::max<std::size_t>(min_run, 1));

  const Real pw_samples = params.pw() * fs;
  std::size_t delim_idx = runs.size();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (!runs[i].level && runs[i - 1].level &&
        static_cast<Real>(runs[i].length) >= 2.0 * pw_samples) {
      delim_idx = i;
      break;
    }
  }
  if (delim_idx == runs.size() || delim_idx + 4 >= runs.size()) {
    return std::nullopt;
  }

  // Symbols end when a high run exceeds the trailing-CW threshold. The
  // longest legitimate in-frame high is the RTcal interval
  // (1 + one_length) * tari - pw; leave a quarter-tari of margin above it
  // for channel smearing.
  const Real cw_threshold =
      ((1.0 + params.one_length) * params.tari - params.pw() +
       0.25 * params.tari) *
      fs;
  std::vector<Real> symbol_lengths;
  std::size_t end_in_view = 0;
  std::size_t i = delim_idx + 1;
  while (i < runs.size()) {
    if (!runs[i].level) return std::nullopt;
    if (static_cast<Real>(runs[i].length) > cw_threshold) break;  // done
    if (i + 1 >= runs.size()) break;  // truncated frame
    if (runs[i + 1].level) return std::nullopt;
    symbol_lengths.push_back(
        static_cast<Real>(runs[i].length + runs[i + 1].length) / fs);
    end_in_view = runs[i + 1].start + runs[i + 1].length;
    i += 2;
  }
  if (symbol_lengths.size() < 3) return std::nullopt;  // data0 + rtcal + >=1

  PieDecodeResult result;
  result.rtcal = symbol_lengths[1];
  result.pivot = result.rtcal / 2.0;
  if (result.rtcal <= symbol_lengths[0]) return std::nullopt;
  for (std::size_t k = 2; k < symbol_lengths.size(); ++k) {
    result.payload.push_back(symbol_lengths[k] > result.pivot ? 1 : 0);
  }
  result.end_index = std::min(search_from, levels.size()) + end_in_view;
  return result;
}

}  // namespace ecocap::phy
