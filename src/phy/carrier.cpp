#include "phy/carrier.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::phy {

Signal modulate_downlink(std::span<const Real> baseband,
                         const CarrierParams& params, DownlinkScheme scheme) {
  if (params.fs <= 0.0) {
    throw std::invalid_argument("modulate_downlink: bad sample rate");
  }
  dsp::Oscillator osc(params.fs, params.f_resonant);
  Signal out(baseband.size());
  switch (scheme) {
    case DownlinkScheme::kOok:
      for (std::size_t i = 0; i < baseband.size(); ++i) {
        // Gate the drive; the oscillator keeps running so the phase stays
        // continuous across gaps (as a gated signal generator does).
        const Real c = osc.next(params.amplitude);
        out[i] = (baseband[i] > 0.5) ? c : 0.0;
      }
      break;
    case DownlinkScheme::kFskOffResonance:
      for (std::size_t i = 0; i < baseband.size(); ++i) {
        const Real f =
            (baseband[i] > 0.5) ? params.f_resonant : params.f_off;
        if (f != osc.frequency()) osc.set_frequency(f);
        out[i] = osc.next(params.amplitude);
      }
      break;
  }
  return out;
}

Signal backscatter_modulate(std::span<const Real> incident_carrier,
                            std::span<const Real> switching, Real fs,
                            const BackscatterParams& params) {
  if (switching.size() > incident_carrier.size()) {
    throw std::invalid_argument("backscatter_modulate: switching too long");
  }
  const Signal sq = (params.f_blf > 0.0)
                        ? blf_square(fs, params.f_blf, incident_carrier.size())
                        : Signal();
  Signal out(incident_carrier.size());
  const Real mid = 0.5 * (params.reflective_gain + params.absorptive_gain);
  const Real half = 0.5 * (params.reflective_gain - params.absorptive_gain);
  for (std::size_t i = 0; i < incident_carrier.size(); ++i) {
    // Before/after the data burst the switch rests in the absorptive state
    // (harvest as much as possible, paper §2).
    Real state = (i < switching.size()) ? switching[i] : -1.0;
    if (!sq.empty() && i < switching.size()) {
      state *= sq[i];  // bipolar XOR = product
    }
    const Real gain = mid + half * state;
    out[i] = incident_carrier[i] * gain;
  }
  return out;
}

Signal blf_square(Real fs, Real f_blf, std::size_t n, std::size_t phase) {
  if (f_blf <= 0.0 || fs <= 0.0) {
    throw std::invalid_argument("blf_square: frequencies must be > 0");
  }
  Signal out(n);
  const Real period = fs / f_blf;
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = std::fmod(static_cast<Real>(i + phase), period) / period;
    out[i] = (t < 0.5) ? 1.0 : -1.0;
  }
  return out;
}

}  // namespace ecocap::phy
