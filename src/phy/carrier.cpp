#include "phy/carrier.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::phy {

Signal modulate_downlink(std::span<const Real> baseband,
                         const CarrierParams& params, DownlinkScheme scheme) {
  Signal out;
  modulate_downlink(baseband, params, scheme, out);
  return out;
}

void modulate_downlink(std::span<const Real> baseband,
                       const CarrierParams& params, DownlinkScheme scheme,
                       Signal& out) {
  if (params.fs <= 0.0) {
    throw std::invalid_argument("modulate_downlink: bad sample rate");
  }
  dsp::Oscillator osc(params.fs, params.f_resonant);
  out.resize(baseband.size());
  switch (scheme) {
    case DownlinkScheme::kOok:
      for (std::size_t i = 0; i < baseband.size(); ++i) {
        // Gate the drive; the oscillator keeps running so the phase stays
        // continuous across gaps (as a gated signal generator does).
        const Real c = osc.next(params.amplitude);
        out[i] = (baseband[i] > 0.5) ? c : 0.0;
      }
      break;
    case DownlinkScheme::kFskOffResonance:
      for (std::size_t i = 0; i < baseband.size(); ++i) {
        const Real f =
            (baseband[i] > 0.5) ? params.f_resonant : params.f_off;
        if (f != osc.frequency()) osc.set_frequency(f);
        out[i] = osc.next(params.amplitude);
      }
      break;
  }
}

Signal backscatter_modulate(std::span<const Real> incident_carrier,
                            std::span<const Real> switching, Real fs,
                            const BackscatterParams& params) {
  Signal out;
  backscatter_modulate(incident_carrier, switching, fs, params, out);
  return out;
}

void backscatter_modulate(std::span<const Real> incident_carrier,
                          std::span<const Real> switching, Real fs,
                          const BackscatterParams& params, Signal& out) {
  if (switching.size() > incident_carrier.size()) {
    throw std::invalid_argument("backscatter_modulate: switching too long");
  }
  const bool use_blf = params.f_blf > 0.0;
  if (use_blf && fs <= 0.0) {
    throw std::invalid_argument("backscatter_modulate: fs must be > 0");
  }
  out.resize(incident_carrier.size());
  backscatter_modulate(incident_carrier, switching, 0, fs, params,
                       std::span<Real>(out));
}

void backscatter_modulate(std::span<const Real> incident_carrier,
                          std::span<const Real> switching,
                          std::uint64_t switching_offset, Real fs,
                          const BackscatterParams& params,
                          std::span<Real> out) {
  if (out.size() != incident_carrier.size()) {
    throw std::invalid_argument("backscatter_modulate: out size mismatch");
  }
  const bool use_blf = params.f_blf > 0.0;
  if (use_blf && fs <= 0.0) {
    throw std::invalid_argument("backscatter_modulate: fs must be > 0");
  }
  // The subcarrier samples are computed inline (same fmod arithmetic as
  // blf_square at phase 0) instead of materializing a square-wave buffer.
  const Real period = use_blf ? fs / params.f_blf : 1.0;
  const Real mid = 0.5 * (params.reflective_gain + params.absorptive_gain);
  const Real half = 0.5 * (params.reflective_gain - params.absorptive_gain);
  for (std::size_t i = 0; i < incident_carrier.size(); ++i) {
    const std::uint64_t idx = switching_offset + i;
    // Before/after the data burst the switch rests in the absorptive state
    // (harvest as much as possible, paper §2).
    Real state = (idx < switching.size()) ? switching[idx] : -1.0;
    if (use_blf && idx < switching.size()) {
      const Real t = std::fmod(static_cast<Real>(idx), period) / period;
      state *= (t < 0.5) ? 1.0 : -1.0;  // bipolar XOR = product
    }
    const Real gain = mid + half * state;
    out[i] = incident_carrier[i] * gain;
  }
}

Signal blf_square(Real fs, Real f_blf, std::size_t n, std::size_t phase) {
  Signal out;
  blf_square(fs, f_blf, n, phase, out);
  return out;
}

void blf_square(Real fs, Real f_blf, std::size_t n, std::size_t phase,
                Signal& out) {
  if (f_blf <= 0.0 || fs <= 0.0) {
    throw std::invalid_argument("blf_square: frequencies must be > 0");
  }
  out.resize(n);
  const Real period = fs / f_blf;
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = std::fmod(static_cast<Real>(i + phase), period) / period;
    out[i] = (t < 0.5) ? 1.0 : -1.0;
  }
}

}  // namespace ecocap::phy
