#include "phy/miller.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ecocap::phy {

namespace {

/// Baseband phase trajectory for one symbol given the entering phase and
/// whether the previous bit was a 0: returns (first-half level,
/// second-half level, exit phase). Gen2 Miller: data-1 inverts mid-symbol;
/// the boundary between two data-0s inverts the phase.
struct SymbolShape {
  Real first;
  Real second;
  Real exit_level;
};

SymbolShape miller_symbol(Real enter_level, std::uint8_t bit,
                          bool prev_was_zero) {
  Real level = enter_level;
  if (prev_was_zero && bit == 0) level = -level;  // 0->0 boundary inversion
  SymbolShape s{};
  s.first = level;
  s.second = (bit & 1u) ? -level : level;  // data-1: mid-symbol inversion
  s.exit_level = s.second;
  return s;
}

}  // namespace

Signal miller_encode(std::span<const std::uint8_t> bits, const MillerParams& p,
                     Real fs) {
  if (p.m != 2 && p.m != 4 && p.m != 8) {
    throw std::invalid_argument("miller_encode: M must be 2, 4 or 8");
  }
  const Real spb = fs / p.bitrate;
  if (spb < 4.0 * p.m) {
    throw std::invalid_argument("miller_encode: need >= 4M samples per bit");
  }
  Signal out;
  out.reserve(static_cast<std::size_t>(spb * static_cast<Real>(bits.size())) + 8);
  Real level = 1.0;
  bool prev_zero = false;
  std::size_t produced = 0;
  const Real sub_period = spb / static_cast<Real>(p.m);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    const SymbolShape s = miller_symbol(level, bits[k], prev_zero);
    const auto sym_start = static_cast<std::size_t>(
        std::llround(spb * static_cast<Real>(k)));
    const auto sym_mid = static_cast<std::size_t>(
        std::llround(spb * (static_cast<Real>(k) + 0.5)));
    const auto sym_end = static_cast<std::size_t>(
        std::llround(spb * static_cast<Real>(k + 1)));
    for (; produced < sym_end; ++produced) {
      const Real base = (produced < sym_mid) ? s.first : s.second;
      // Square subcarrier phase measured from the symbol start.
      const Real t = static_cast<Real>(produced - sym_start);
      const Real phase = std::fmod(t, sub_period) / sub_period;
      const Real sub = (phase < 0.5) ? 1.0 : -1.0;
      out.push_back(base * sub);
    }
    level = s.exit_level;
    prev_zero = (bits[k] & 1u) == 0u;
  }
  return out;
}

Bits miller_decode(std::span<const Real> x, const MillerParams& p, Real fs,
                   std::size_t bit_count) {
  const Real spb = fs / p.bitrate;
  const Real sub_period = spb / static_cast<Real>(p.m);

  // Viterbi over (phase level, prev-was-zero): 4 states.
  struct Path {
    Real metric = -1e300;
    std::vector<std::uint8_t> bits;
  };
  // state index: (level>0 ? 1 : 0) * 2 + (prev_zero ? 1 : 0)
  std::array<Path, 4> paths;
  paths[2].metric = 0.0;  // level +1, prev not zero (encoder start)
  paths[0].metric = 0.0;  // allow inverted capture

  for (std::size_t k = 0; k < bit_count; ++k) {
    const auto sym_start = static_cast<std::size_t>(
        std::llround(spb * static_cast<Real>(k)));
    const auto sym_mid = static_cast<std::size_t>(
        std::llround(spb * (static_cast<Real>(k) + 0.5)));
    const auto sym_end = static_cast<std::size_t>(
        std::llround(spb * static_cast<Real>(k + 1)));

    // Subcarrier-correlated half-symbol statistics.
    Real first = 0.0, second = 0.0;
    for (std::size_t i = sym_start; i < sym_end && i < x.size(); ++i) {
      const Real t = static_cast<Real>(i - sym_start);
      const Real phase = std::fmod(t, sub_period) / sub_period;
      const Real sub = (phase < 0.5) ? 1.0 : -1.0;
      if (i < sym_mid) {
        first += x[i] * sub;
      } else {
        second += x[i] * sub;
      }
    }

    std::array<Path, 4> next;
    for (int st = 0; st < 4; ++st) {
      if (paths[static_cast<std::size_t>(st)].metric <= -1e299) continue;
      const Real level = (st & 2) ? 1.0 : -1.0;
      const bool prev_zero = (st & 1) != 0;
      for (int b = 0; b < 2; ++b) {
        const SymbolShape s =
            miller_symbol(level, static_cast<std::uint8_t>(b), prev_zero);
        const Real metric = paths[static_cast<std::size_t>(st)].metric +
                            s.first * first + s.second * second;
        const int ns = ((s.exit_level > 0.0) ? 2 : 0) | (b == 0 ? 1 : 0);
        if (metric > next[static_cast<std::size_t>(ns)].metric) {
          next[static_cast<std::size_t>(ns)].metric = metric;
          next[static_cast<std::size_t>(ns)].bits =
              paths[static_cast<std::size_t>(st)].bits;
          next[static_cast<std::size_t>(ns)].bits.push_back(
              static_cast<std::uint8_t>(b));
        }
      }
    }
    paths = std::move(next);
  }

  int best = 0;
  for (int st = 1; st < 4; ++st) {
    if (paths[static_cast<std::size_t>(st)].metric >
        paths[static_cast<std::size_t>(best)].metric) {
      best = st;
    }
  }
  return paths[static_cast<std::size_t>(best)].bits;
}

}  // namespace ecocap::phy
