#include "phy/bits.hpp"

#include <stdexcept>

namespace ecocap::phy {

Bits bits_from_bytes(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> bytes_from_bits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1u) {
      bytes[i / 8] |= static_cast<std::uint8_t>(1u << (7 - (i % 8)));
    }
  }
  return bytes;
}

Bits random_bits(std::size_t n, dsp::Rng& rng) {
  Bits bits(n);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  return bits;
}

void append_uint(Bits& bits, std::uint32_t value, int width) {
  if (width < 0 || width > 32) {
    throw std::invalid_argument("append_uint: width out of [0, 32]");
  }
  for (int i = width - 1; i >= 0; --i) {
    bits.push_back(static_cast<std::uint8_t>((value >> i) & 1u));
  }
}

std::uint32_t read_uint(std::span<const std::uint8_t> bits, std::size_t offset,
                        int width) {
  if (width < 0 || width > 32 || offset + static_cast<std::size_t>(width) > bits.size()) {
    throw std::out_of_range("read_uint: range does not fit");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint32_t>(bits[offset + static_cast<std::size_t>(i)] & 1u);
  }
  return v;
}

std::string to_string(std::span<const std::uint8_t> bits) {
  std::string s;
  s.reserve(bits.size());
  for (auto b : bits) s.push_back((b & 1u) ? '1' : '0');
  return s;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: size mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & 1u) != (b[i] & 1u)) ++d;
  }
  return d;
}

}  // namespace ecocap::phy
