#pragma once

#include <cstdint>
#include <span>

#include "phy/bits.hpp"

namespace ecocap::phy {

/// CRC-5 as used by the EPC Gen2 air protocol (poly x^5+x^3+1 = 0x09,
/// preset 0x09), computed over a bit stream MSB-first.
std::uint8_t crc5(std::span<const std::uint8_t> bits);

/// CRC-16/CCITT as used by Gen2 (poly 0x1021, preset 0xFFFF, final XOR
/// 0xFFFF), computed over a bit stream MSB-first.
std::uint16_t crc16(std::span<const std::uint8_t> bits);

/// Append crc5 of the current contents (5 bits, MSB-first). Mirrors
/// append_crc16 so short query-class frames get the same treatment as the
/// long ones instead of every call site hand-rolling the trailer.
void append_crc5(Bits& bits);

/// True when the trailing 5 bits are a valid CRC-5 of the preceding bits.
bool check_crc5(std::span<const std::uint8_t> bits_with_crc);

/// Append crc16 of the current contents (16 bits, MSB-first).
void append_crc16(Bits& bits);

/// True when the trailing 16 bits are a valid CRC-16 of the preceding bits.
bool check_crc16(std::span<const std::uint8_t> bits_with_crc);

}  // namespace ecocap::phy
