#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "phy/bits.hpp"
#include "phy/crc.hpp"

namespace ecocap::phy {

/// Simplified EPC-Gen2-style air protocol (paper §5.1: "we design the
/// downlink packet structure following the EPC UHF Gen2 protocol", §3.4:
/// TDMA slotted access as in RFID Gen 2). Frames are bit-exact encodable /
/// parseable; CRC-protected where Gen2 protects them.

/// 4-bit command codes.
enum class CommandCode : std::uint8_t {
  kQuery = 0x1,     // start an inventory round: Q (slot-count exponent)
  kQueryRep = 0x2,  // advance to the next slot
  kAck = 0x3,       // acknowledge an RN16
  kRead = 0x4,      // read a sensor value from the acked node
  kSetBlf = 0x5,    // assign a backscatter link frequency to the acked node
  kSelect = 0x6,    // pre-select nodes by id mask (Gen2 Select analog)
};

struct QueryCommand {
  std::uint8_t q = 2;  // slots = 2^q
};
struct QueryRepCommand {};
struct AckCommand {
  std::uint16_t rn16 = 0;
};
struct ReadCommand {
  std::uint16_t rn16 = 0;
  std::uint8_t sensor_id = 0;
};
struct SetBlfCommand {
  std::uint16_t rn16 = 0;
  std::uint16_t blf_centihz = 0;  // BLF in units of 100 Hz
};
/// Gen2-style Select: only nodes whose id matches `pattern` on the bits set
/// in `mask` participate in the following inventory rounds. mask = 0
/// re-selects everyone.
struct SelectCommand {
  std::uint16_t pattern = 0;
  std::uint16_t mask = 0;
};

using Command = std::variant<QueryCommand, QueryRepCommand, AckCommand,
                             ReadCommand, SetBlfCommand, SelectCommand>;

/// Encode a command into downlink payload bits (header + fields + CRC:
/// CRC-5 for the short Query/QueryRep, CRC-16 for the rest, mirroring
/// Gen2's split).
Bits encode_command(const Command& cmd);

/// Parse a downlink payload. Returns nullopt on bad header/CRC.
std::optional<Command> parse_command(std::span<const std::uint8_t> bits);

/// Node uplink responses.
struct Rn16Response {
  std::uint16_t rn16 = 0;
};
/// Sent after a matching ACK (the Gen2 "EPC" reply): the capsule's id.
struct IdResponse {
  std::uint16_t node_id = 0;
};
struct DataResponse {
  std::uint8_t sensor_id = 0;
  /// Fixed-point value: round(value * 1000), two's complement.
  std::int32_t milli_value = 0;
};

using Response = std::variant<Rn16Response, IdResponse, DataResponse>;

/// Uplink frame payloads (the FM0 preamble is added at the line-code
/// layer). RN16 responses are bare (as in Gen2); data responses carry a
/// 2-bit type header, sensor id, value and CRC-16.
Bits encode_response(const Response& resp);

/// Bit length of each response type as sent (needed by the reader to know
/// how many payload bits to decode).
std::size_t rn16_response_bits();
std::size_t id_response_bits();
std::size_t data_response_bits();

/// Parse an RN16 response (16 bare bits).
std::optional<Rn16Response> parse_rn16_response(
    std::span<const std::uint8_t> bits);

/// Parse an id response (16 bits + CRC-16).
std::optional<IdResponse> parse_id_response(
    std::span<const std::uint8_t> bits);

/// Parse a data response; checks CRC-16.
std::optional<DataResponse> parse_data_response(
    std::span<const std::uint8_t> bits);

/// Convert a physical value to/from the 32-bit fixed-point wire format.
std::int32_t to_milli(double value);
double from_milli(std::int32_t milli);

}  // namespace ecocap::phy
