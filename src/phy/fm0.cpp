#include "phy/fm0.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "dsp/correlate.hpp"

namespace ecocap::phy {

Bits fm0_preamble(const Fm0Params& params) {
  Bits p;
  p.reserve(static_cast<std::size_t>(params.preamble_pairs) * 2);
  for (int i = 0; i < params.preamble_pairs; ++i) {
    p.push_back(1);
    p.push_back(0);
  }
  return p;
}

Signal fm0_encode(std::span<const std::uint8_t> bits, Real fs, Real bitrate,
                  Real start_level) {
  Signal out;
  fm0_encode(bits, fs, bitrate, start_level, out);
  return out;
}

void fm0_encode(std::span<const std::uint8_t> bits, Real fs, Real bitrate,
                Real start_level, Signal& out) {
  if (fs <= 0.0 || bitrate <= 0.0 || fs < 4.0 * bitrate) {
    throw std::invalid_argument("fm0_encode: need fs >= 4 * bitrate");
  }
  const Real spb = fs / bitrate;
  out.clear();
  out.reserve(static_cast<std::size_t>(spb * static_cast<Real>(bits.size())) + 8);
  Real level = (start_level >= 0.0) ? 1.0 : -1.0;
  std::size_t produced = 0;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    // Level inverts entering every symbol.
    level = -level;
    const auto sym_end = static_cast<std::size_t>(
        std::llround(spb * static_cast<Real>(k + 1)));
    const auto sym_mid = static_cast<std::size_t>(
        std::llround(spb * (static_cast<Real>(k) + 0.5)));
    for (; produced < sym_mid; ++produced) out.push_back(level);
    if ((bits[k] & 1u) == 0u) level = -level;  // data-0: mid transition
    for (; produced < sym_end; ++produced) out.push_back(level);
  }
}

Signal fm0_encode_frame(const Bits& payload, const Fm0Params& params,
                        Real fs) {
  Signal out;
  fm0_encode_frame(payload, params, fs, out);
  return out;
}

void fm0_encode_frame(const Bits& payload, const Fm0Params& params, Real fs,
                      Signal& out) {
  Bits all = fm0_preamble(params);
  all.insert(all.end(), payload.begin(), payload.end());
  fm0_encode(all, fs, params.bitrate, 1.0, out);
}

Bits fm0_decode(std::span<const Real> x, Real samples_per_bit,
                std::size_t bit_count) {
  if (samples_per_bit < 4.0) {
    throw std::invalid_argument("fm0_decode: need >= 4 samples per bit");
  }
  // Viterbi over 2 states: the level at the *end* of the previous symbol.
  // Branch (state s, bit b): first half level = -s; second half level is
  // -s for b=1 (no mid transition) and +s for b=0.
  struct PathState {
    Real metric;
    std::vector<std::uint8_t> bits;
  };
  std::array<PathState, 2> paths;  // index 0: level -1, index 1: level +1
  paths[0] = {0.0, {}};
  paths[1] = {0.0, {}};
  // The encoder starts from +1 (fm0_encode start_level default); we leave
  // both start states open and let the metrics decide.

  for (std::size_t k = 0; k < bit_count; ++k) {
    const auto lo = static_cast<std::size_t>(
        std::llround(samples_per_bit * static_cast<Real>(k)));
    const auto mid = static_cast<std::size_t>(
        std::llround(samples_per_bit * (static_cast<Real>(k) + 0.5)));
    const auto hi = static_cast<std::size_t>(
        std::llround(samples_per_bit * static_cast<Real>(k + 1)));
    Real first = 0.0, second = 0.0;
    for (std::size_t i = lo; i < mid && i < x.size(); ++i) first += x[i];
    for (std::size_t i = mid; i < hi && i < x.size(); ++i) second += x[i];

    std::array<PathState, 2> next;
    std::array<bool, 2> filled{false, false};
    for (int s_idx = 0; s_idx < 2; ++s_idx) {
      const Real s = (s_idx == 0) ? -1.0 : 1.0;
      for (int b = 0; b < 2; ++b) {
        const Real half1 = -s;
        const Real half2 = (b == 1) ? -s : s;
        const Real metric =
            paths[static_cast<std::size_t>(s_idx)].metric + half1 * first + half2 * second;
        const int end_idx = (half2 > 0.0) ? 1 : 0;
        if (!filled[static_cast<std::size_t>(end_idx)] ||
            metric > next[static_cast<std::size_t>(end_idx)].metric) {
          next[static_cast<std::size_t>(end_idx)].metric = metric;
          next[static_cast<std::size_t>(end_idx)].bits =
              paths[static_cast<std::size_t>(s_idx)].bits;
          next[static_cast<std::size_t>(end_idx)].bits.push_back(
              static_cast<std::uint8_t>(b));
          filled[static_cast<std::size_t>(end_idx)] = true;
        }
      }
    }
    paths = std::move(next);
  }
  return (paths[0].metric > paths[1].metric) ? paths[0].bits : paths[1].bits;
}

namespace {

/// Shared frame-decode body; the template waveform is caller-owned (fresh
/// or pooled), so both entry points align and slice identically.
Fm0FrameDecode decode_frame_with_template(std::span<const Real> x,
                                          const Fm0Params& params, Real fs,
                                          std::size_t payload_bits,
                                          Real min_corr,
                                          std::span<const Real> tmpl,
                                          std::size_t preamble_bits) {
  Fm0FrameDecode out;
  if (x.size() < tmpl.size()) return out;

  // FM0 information lives in the transitions, so an inverted waveform is an
  // equally valid frame: align on |correlation|.
  const Signal c = dsp::correlate_valid(x, tmpl);
  std::size_t start = 0;
  Real best_abs = -1.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (std::abs(c[i]) > best_abs) {
      best_abs = std::abs(c[i]);
      start = i;
    }
  }
  // The aligned segment is scored in place as a view of x — no copy.
  const Real corr =
      dsp::correlation_coefficient(x.subspan(start, tmpl.size()), tmpl);
  out.frame_start = start;
  out.preamble_correlation = std::abs(corr);
  if (std::abs(corr) < min_corr) return out;

  const Real spb = fs / params.bitrate;
  const std::size_t payload_start =
      start + static_cast<std::size_t>(
                  std::llround(spb * static_cast<Real>(preamble_bits)));
  if (payload_start >= x.size()) return out;
  const std::span<const Real> rest = x.subspan(payload_start);
  out.payload = fm0_decode(rest, spb, payload_bits);
  return out;
}

}  // namespace

Fm0FrameDecode fm0_decode_frame(std::span<const Real> x,
                                const Fm0Params& params, Real fs,
                                std::size_t payload_bits, Real min_corr) {
  const Bits pre = fm0_preamble(params);
  const Signal tmpl = fm0_encode(pre, fs, params.bitrate);
  return decode_frame_with_template(x, params, fs, payload_bits, min_corr,
                                    tmpl, pre.size());
}

Fm0FrameDecode fm0_decode_frame(std::span<const Real> x,
                                const Fm0Params& params, Real fs,
                                std::size_t payload_bits, Real min_corr,
                                dsp::Workspace& ws) {
  const Bits pre = fm0_preamble(params);
  auto tmpl = ws.real(0);
  fm0_encode(pre, fs, params.bitrate, 1.0, *tmpl);
  return decode_frame_with_template(x, params, fs, payload_bits, min_corr,
                                    *tmpl, pre.size());
}

}  // namespace ecocap::phy
