#pragma once

#include <complex>
#include <span>

#include "dsp/types.hpp"

namespace ecocap::dsp::ser {
class Writer;
class Reader;
}  // namespace ecocap::dsp::ser

namespace ecocap::phy {

using dsp::Real;
using dsp::Signal;

/// Behavioural model of a PZT disc as a driven mechanical resonator
/// (paper §3.3 "Ring Effect", Fig. 7), with the drive-dependent damping
/// that makes the paper's FSK trick work:
///
///  * while the amplifier drives the disc (at ANY frequency), its low
///    source impedance electrically loads the piezo — the resonance is
///    heavily damped (loaded Q), so frequency hops cause only a short
///    transient;
///  * when the drive stops (an OOK low edge), the disc is left open and
///    its stored mechanical energy rings down at the high unloaded Q —
///    the ~0.3 ms tail of Fig. 7(a) that smears PIE symbols.
///
/// Implemented as a broadband direct path plus a complex one-pole resonant
/// storage branch whose pole radius switches between the loaded and
/// unloaded decay rates based on a drive-presence detector.
class RingingPzt {
 public:
  /// @param fs sample rate (Hz)
  /// @param resonance disc resonant frequency (Hz), 230 kHz in the paper
  /// @param q unloaded (free-ringing) quality factor; Q ~ 217 gives the
  ///        paper's ~0.3 ms decay tail at 230 kHz (tau = Q / (pi f0)).
  /// @param direct_mix fraction of the output taken from the storage
  ///        branch; the rest is broadband drive-through. 0.5 makes the
  ///        post-transition tail start at half the steady amplitude,
  ///        matching the Fig. 7(a) trace.
  /// @param loaded_q quality factor while the amplifier drives the disc
  ///        (electrical damping); transients at FSK hops die in ~tens of us.
  RingingPzt(Real fs, Real resonance = 230.0e3, Real q = 217.0,
             Real direct_mix = 0.5, Real loaded_q = 18.0);

  /// Drive with an electrical waveform; returns the acoustic output,
  /// normalized so that a steady resonant tone passes at unity gain.
  Signal drive(std::span<const Real> excitation);

  /// Drive a waveform through the disc in place (zero-copy stage form:
  /// the electrical buffer becomes the acoustic one).
  void drive_inplace(std::span<Real> excitation);

  Real process(Real x);
  void reset();

  Real resonance() const { return resonance_; }
  Real quality_factor() const { return q_; }
  Real loaded_quality_factor() const { return loaded_q_; }

  /// Free ring-down time constant tau = Q / (pi f0), seconds.
  Real ring_time_constant() const;

  /// Time for the free ring to decay below `fraction` of its initial
  /// amplitude.
  Real ring_decay_time(Real fraction = 0.05) const;

  /// Bit-exact resonator-state round trip (pole/gain terms are config).
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  Real fs_;
  Real resonance_;
  Real q_;
  Real loaded_q_;
  Real mix_;
  Real rho_free_;
  Real rho_loaded_;
  std::complex<Real> rot_;   // per-sample phase rotation e^{j w0 / fs}
  std::complex<Real> s_{0.0, 0.0};  // resonator state
  Real out_gain_;            // normalization at the loaded pole radius
  Real env_ = 0.0;           // fast drive-presence envelope
  Real peak_ = 0.0;          // slow amplitude reference
  Real env_decay_;
  Real peak_decay_;
};

/// Duration of visible tailing when an OOK transmitter stops driving:
/// amplitude fraction `threshold` is crossed after tau * ln(1/threshold).
Real ook_tail_duration(Real resonance, Real q, Real threshold = 0.1);

}  // namespace ecocap::phy
