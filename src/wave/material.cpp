#include "wave/material.hpp"

#include <stdexcept>

namespace ecocap::wave {

Real MixProportions::total() const {
  return cement + silica_fume + fly_ash + quartz_powder + sand + granite +
         steel_fiber + water + hrwr;
}

Real Material::impedance(WaveMode mode) const {
  return density * velocity(mode);
}

Real Material::velocity(WaveMode mode) const {
  switch (mode) {
    case WaveMode::kPrimary:
      return cp;
    case WaveMode::kSecondary:
      return cs;
  }
  throw std::logic_error("Material::velocity: bad mode");
}

LameParameters Material::lame_from_velocities() const {
  LameParameters p{};
  p.mu = density * cs * cs;
  p.lambda = density * cp * cp - 2.0 * p.mu;
  return p;
}

namespace materials {

// Concrete wave velocities are the *measured dynamic* values, not the ones
// derived from the static elastic constants of Table 1: in-situ ultrasonic
// velocities are dominated by aggregates and microcracking, and the paper
// notes that "the small difference in sound velocity in different concrete"
// lets one PLA prism serve all mixes (§3.2). NC carries the reference [41]
// values (3338 / 1941 m/s); the ultra-high-performance mixes run slightly
// faster. The static constants remain available for structural mechanics.

Material reference_concrete() {
  Material m;
  m.name = "reference-concrete";
  m.density = 2300.0;
  m.cp = 3338.0;  // [41] in the paper
  m.cs = 1941.0;
  m.youngs_modulus = 0.0;  // measured velocities, not derived
  m.poisson_ratio = 0.24;
  m.compressive_strength = 54.1e6;
  // Attenuation at 230 kHz: S attenuates less than P (paper §3.1, [39]).
  m.alpha_p_ref = 1.35;  // Np/m
  m.alpha_s_ref = 0.85;  // Np/m
  return m;
}

Material normal_concrete() {
  Material m;
  m.name = "NC";
  m.mix.cement = 300.0;
  m.mix.fly_ash = 200.0;
  m.mix.sand = 796.0;
  m.mix.granite = 829.0;
  m.mix.water = 175.0;
  m.mix.hrwr = 9.0;
  m.density = m.mix.total();  // 2309 kg/m^3
  m.youngs_modulus = 27.8e9;
  m.poisson_ratio = 0.18;
  m.compressive_strength = 54.1e6;
  m.peak_strain = 0.00263;
  m.alpha_p_ref = 1.35;
  m.alpha_s_ref = 0.85;
  m.cp = 3338.0;  // measured dynamic velocities ([41], see note above)
  m.cs = 1941.0;
  return m;
}

Material uhpc() {
  Material m;
  m.name = "UHPC";
  m.mix.cement = 830.0;
  m.mix.silica_fume = 207.0;
  m.mix.quartz_powder = 207.0;
  m.mix.sand = 913.0;
  m.mix.water = 164.0;
  m.mix.hrwr = 27.0;
  m.density = m.mix.total();  // 2348 kg/m^3
  m.youngs_modulus = 52.5e9;
  m.poisson_ratio = 0.21;
  m.compressive_strength = 195.3e6;
  m.peak_strain = 0.00447;
  // Denser microstructure, fewer scatterers -> lower loss (Fig. 5 finding).
  m.alpha_p_ref = 0.80;
  m.alpha_s_ref = 0.50;
  m.cp = 3600.0;  // denser matrix: slightly faster than NC
  m.cs = 2050.0;
  return m;
}

Material uhpfrc() {
  Material m;
  m.name = "UHPFRC";
  m.mix.cement = 807.0;
  m.mix.silica_fume = 202.0;
  m.mix.quartz_powder = 202.0;
  m.mix.sand = 888.0;
  m.mix.steel_fiber = 471.0;
  m.mix.water = 158.0;
  m.mix.hrwr = 29.0;
  m.density = m.mix.total();  // 2757 kg/m^3
  m.youngs_modulus = 52.7e9;
  m.poisson_ratio = 0.21;
  m.compressive_strength = 215.0e6;
  m.peak_strain = 0.00447;
  m.alpha_p_ref = 0.78;
  m.alpha_s_ref = 0.48;
  m.cp = 3650.0;  // steel fibers stiffen the matrix further
  m.cs = 2080.0;
  return m;
}

Material pla() {
  Material m;
  m.name = "PLA";
  m.density = 1250.0;  // ~half of concrete (paper §3.2)
  m.cp = 1865.0;       // calibrated: arcsin(1865/3338) ~ 34 deg (DESIGN.md)
  m.cs = 1000.0;
  m.alpha_p_ref = 8.0;  // polymers are lossy; prism path is short
  m.alpha_s_ref = 10.0;
  return m;
}

Material air() {
  Material m;
  m.name = "air";
  m.density = 1.21;
  m.cp = 343.0;
  m.cs = 0.0;
  return m;
}

Material water() {
  Material m;
  m.name = "water";
  m.density = 1000.0;
  m.cp = 1480.0;
  m.cs = 0.0;
  // Sea/pool water absorption at tens of kHz is tiny; spreading dominates.
  m.alpha_p_ref = 0.02;
  return m;
}

Material steel() {
  Material m;
  m.name = "steel";
  m.density = 7850.0;
  m.cp = 5900.0;
  m.cs = 3200.0;
  m.youngs_modulus = 200.0e9;
  m.poisson_ratio = 0.30;
  m.alpha_p_ref = 0.02;
  m.alpha_s_ref = 0.02;
  return m;
}

Material sla_resin() {
  Material m;
  m.name = "SLA-resin";
  m.density = 1150.0;
  m.cp = 2500.0;
  m.cs = 1100.0;
  m.youngs_modulus = 2.2e9;
  m.poisson_ratio = 0.35;
  return m;
}

std::vector<Material> table1_concretes() {
  return {normal_concrete(), uhpc(), uhpfrc()};
}

}  // namespace materials

}  // namespace ecocap::wave
