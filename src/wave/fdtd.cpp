#include "wave/fdtd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ecocap::wave {

ElasticFdtd::ElasticFdtd(const Material& medium, Config config)
    : config_(config) {
  if (config_.nx < 8 || config_.ny < 8 || config_.dx <= 0.0) {
    throw std::invalid_argument("ElasticFdtd: invalid grid");
  }
  const std::size_t n = config_.nx * config_.ny;
  const LameParameters lame = medium.lame_from_velocities();
  rho_.assign(n, medium.density);
  lambda_.assign(n, lame.lambda);
  mu_.assign(n, lame.mu);
  vx_.assign(n, 0.0);
  vy_.assign(n, 0.0);
  sxx_.assign(n, 0.0);
  syy_.assign(n, 0.0);
  sxy_.assign(n, 0.0);
  pending_fx_.assign(n, 0.0);
  pending_fy_.assign(n, 0.0);
  max_cp_ = medium.cp;

  dt_ = (config_.dt > 0.0) ? config_.dt : cfl_dt();
  if (dt_ > cfl_dt() * 1.0001) {
    throw std::invalid_argument("ElasticFdtd: dt violates the CFL limit");
  }

  // Sponge profile: quadratic ramp from the inner edge of the absorbing
  // band to the boundary. Rows 0 and ny-1 are the free surface (see the
  // Config::sponge_cells contract) — the sponge pass never visits them, so
  // no coefficients are computed there.
  sponge_.assign(n, 1.0);
  if (config_.sponge_cells > 0) {
    const auto sc = static_cast<Real>(config_.sponge_cells);
    for (std::size_t iy = 1; iy + 1 < config_.ny; ++iy) {
      for (std::size_t ix = 0; ix < config_.nx; ++ix) {
        const Real dx_edge = static_cast<Real>(
            std::min({ix, iy, config_.nx - 1 - ix, config_.ny - 1 - iy}));
        if (dx_edge < sc) {
          const Real u = (sc - dx_edge) / sc;
          sponge_[idx(ix, iy)] = 1.0 - config_.sponge_strength * u * u;
        }
      }
    }
  }
}

Real ElasticFdtd::cfl_dt() const {
  // 2-D staggered-grid stability: dt <= dx / (sqrt(2) c_p,max).
  return 0.9 * config_.dx / (std::sqrt(2.0) * max_cp_);
}

void ElasticFdtd::fill_region(std::size_t x0, std::size_t y0, std::size_t x1,
                              std::size_t y1, const Material& medium) {
  const LameParameters lame = medium.lame_from_velocities();
  max_cp_ = std::max(max_cp_, medium.cp);
  if (dt_ > cfl_dt() * 1.0001) {
    throw std::invalid_argument(
        "ElasticFdtd: region material breaks the CFL limit");
  }
  for (std::size_t iy = y0; iy <= y1 && iy < config_.ny; ++iy) {
    for (std::size_t ix = x0; ix <= x1 && ix < config_.nx; ++ix) {
      rho_[idx(ix, iy)] = medium.density;
      lambda_[idx(ix, iy)] = lame.lambda;
      mu_[idx(ix, iy)] = lame.mu;
    }
  }
}

void ElasticFdtd::add_force(std::size_t ix, std::size_t iy, int direction,
                            Real amplitude) {
  if (ix >= config_.nx || iy >= config_.ny) {
    throw std::out_of_range("ElasticFdtd::add_force: point off grid");
  }
  if (direction == 0) {
    pending_fx_[idx(ix, iy)] += amplitude;
  } else {
    pending_fy_[idx(ix, iy)] += amplitude;
  }
  forces_pending_ = true;
}

namespace {

/// Column-tile width for cache blocking. A velocity or stress row touches
/// ~9 double arrays, so 2048 columns keep one tile's working set (~150 KB
/// per row pair) inside a typical 0.5-1 MB L2 slice while the tile walks
/// down its row band; grids up to nx ~ 2048 use a single tile and the loop
/// degenerates to plain rows.
constexpr std::size_t kColTile = 2048;

}  // namespace

void ElasticFdtd::update_velocity_rows(std::size_t y0, std::size_t y1) {
  const std::size_t nx = config_.nx;
  const Real inv_dx = 1.0 / config_.dx;
  const auto& kern = *dsp::kernels::active().fdtd_velocity_row;
  const bool consume = forces_pending_;
  for (std::size_t x0 = 1; x0 + 1 < nx; x0 += kColTile) {
    const std::size_t x1 = std::min(x0 + kColTile, nx - 1);
    for (std::size_t iy = y0; iy < y1; ++iy) {
      const std::size_t row = idx(0, iy);
      dsp::kernels::FdtdVelocityRowArgs a{};
      a.vx = vx_.data() + row;
      a.vy = vy_.data() + row;
      a.sxx = sxx_.data() + row;
      a.sxy = sxy_.data() + row;
      a.sxy_dn = sxy_.data() + idx(0, iy - 1);
      a.syy = syy_.data() + row;
      a.syy_up = syy_.data() + idx(0, iy + 1);
      a.rho = rho_.data() + row;
      a.fx = consume ? pending_fx_.data() + row : nullptr;
      a.fy = consume ? pending_fy_.data() + row : nullptr;
      a.i0 = x0;
      a.i1 = x1;
      a.dt = dt_;
      a.inv_dx = inv_dx;
      kern(a);
    }
  }
}

void ElasticFdtd::update_stress_rows(std::size_t y0, std::size_t y1) {
  const std::size_t nx = config_.nx;
  const Real inv_dx = 1.0 / config_.dx;
  const auto& kern = *dsp::kernels::active().fdtd_stress_row;
  for (std::size_t x0 = 1; x0 + 1 < nx; x0 += kColTile) {
    const std::size_t x1 = std::min(x0 + kColTile, nx - 1);
    for (std::size_t iy = y0; iy < y1; ++iy) {
      const std::size_t row = idx(0, iy);
      dsp::kernels::FdtdStressRowArgs a{};
      a.sxx = sxx_.data() + row;
      a.syy = syy_.data() + row;
      a.sxy = sxy_.data() + row;
      a.vx = vx_.data() + row;
      a.vx_up = vx_.data() + idx(0, iy + 1);
      a.vy = vy_.data() + row;
      a.vy_dn = vy_.data() + idx(0, iy - 1);
      a.lambda = lambda_.data() + row;
      a.mu = mu_.data() + row;
      a.i0 = x0;
      a.i1 = x1;
      a.dt = dt_;
      a.inv_dx = inv_dx;
      kern(a);
    }
  }
}

void ElasticFdtd::apply_sponge_rows(std::size_t y0, std::size_t y1) {
  for (std::size_t i = idx(0, y0); i < idx(0, y1); ++i) {
    const Real g = sponge_[i];
    if (g < 1.0) {
      vx_[i] *= g;
      vy_[i] *= g;
      sxx_[i] *= g;
      syy_[i] *= g;
      sxy_[i] *= g;
    }
  }
}

template <typename Fn>
void ElasticFdtd::for_row_bands(const Fn& fn) {
  const std::size_t rows = config_.ny - 2;  // interior rows [1, ny-1)
  core::ThreadPool* pool = nullptr;
  if (config_.parallel) {
    pool = config_.pool ? config_.pool : &core::ThreadPool::shared();
  }
  // Each pass reads one field set and writes the other, so rows within a
  // pass are independent; parallel_for's join is the halo barrier between
  // the velocity and stress passes. Small grids stay serial — the pool
  // fan-out costs more than the arithmetic it would split.
  const bool go_parallel = pool && pool->size() > 1 &&
                           rows >= 2 * pool->size() &&
                           rows * config_.nx >= 8192;
  if (!go_parallel) {
    fn(1, config_.ny - 1);
    return;
  }
  // Coarse bands: two per worker. The SIMD row kernels make each row cheap
  // enough that finer bands spend more time in the claim counter than in
  // the stencil; two per worker still lets the dynamic scheduler absorb a
  // preempted thread. The band boundaries depend only on the worker count,
  // so the same band covers the same rows every step (persistent partition
  // — each worker's bands tend to stay hot in its cache) and the split
  // never affects results (every cell update within a pass is independent).
  const std::size_t bands =
      std::min<std::size_t>(rows, static_cast<std::size_t>(pool->size()) * 2);
  pool->parallel_for(bands, [&](std::size_t b) {
    const std::size_t y0 = 1 + b * rows / bands;
    const std::size_t y1 = 1 + (b + 1) * rows / bands;
    fn(y0, y1);
  });
}

void ElasticFdtd::step() {
  // 1. Update velocities from stress gradients (+ pending body forces).
  //    When forces are pending, the velocity kernels consume and zero the
  //    pending entries they read, folding the old per-step full-grid
  //    std::fill clears into the pass itself. The kernels only visit
  //    interior cells, so any force placed on the one-cell border (which
  //    the seed silently dropped via the full clear) is cleared here to
  //    keep that behaviour.
  for_row_bands([this](std::size_t y0, std::size_t y1) {
    update_velocity_rows(y0, y1);
  });
  if (forces_pending_) {
    const std::size_t nx = config_.nx;
    const std::size_t ny = config_.ny;
    auto clear_cell = [&](std::size_t i) {
      pending_fx_[i] = 0.0;
      pending_fy_[i] = 0.0;
    };
    for (std::size_t ix = 0; ix < nx; ++ix) {
      clear_cell(idx(ix, 0));
      clear_cell(idx(ix, ny - 1));
    }
    for (std::size_t iy = 1; iy + 1 < ny; ++iy) {
      clear_cell(idx(0, iy));
      clear_cell(idx(nx - 1, iy));
    }
    forces_pending_ = false;
  }

  // 2. Update stresses from velocity gradients.
  for_row_bands([this](std::size_t y0, std::size_t y1) {
    update_stress_rows(y0, y1);
  });

  // 3. Free surfaces at the grid edges: the one-cell border keeps zero
  //    stress (never updated), which reflects nearly all energy — the
  //    concrete/air boundary of Eq. 1. The optional sponge absorbs instead.
  if (config_.sponge_cells > 0) {
    for_row_bands([this](std::size_t y0, std::size_t y1) {
      apply_sponge_rows(y0, y1);
    });
  }

  ++steps_done_;
}

void ElasticFdtd::run(std::size_t steps, std::size_t src_x, std::size_t src_y,
                      const std::vector<Real>& source_amplitudes,
                      int direction) {
  for (std::size_t t = 0; t < steps; ++t) {
    if (t < source_amplitudes.size()) {
      add_force(src_x, src_y, direction, source_amplitudes[t]);
    }
    step();
  }
}

Real ElasticFdtd::velocity_magnitude(std::size_t ix, std::size_t iy) const {
  const std::size_t i = idx(ix, iy);
  return std::hypot(vx_[i], vy_[i]);
}

Real ElasticFdtd::total_energy() const {
  Real e = 0.0;
  for (std::size_t i = 0; i < vx_.size(); ++i) {
    // Kinetic part plus an elastic proxy (exact strain energy needs the
    // compliance tensor; this tracks conservation well enough for tests).
    e += 0.5 * rho_[i] * (vx_[i] * vx_[i] + vy_[i] * vy_[i]);
    const Real m = std::max(mu_[i], 1e-9);
    const Real l2m = std::max(lambda_[i] + 2.0 * mu_[i], 1e-9);
    e += 0.5 * (sxx_[i] * sxx_[i] + syy_[i] * syy_[i]) / l2m +
         0.5 * sxy_[i] * sxy_[i] / m;
  }
  return e;
}

Real ElasticFdtd::divergence(std::size_t ix, std::size_t iy) const {
  if (ix == 0 || iy == 0 || ix + 1 >= config_.nx || iy + 1 >= config_.ny) {
    return 0.0;
  }
  const Real inv_dx = 1.0 / config_.dx;
  return (vx_[idx(ix + 1, iy)] - vx_[idx(ix - 1, iy)] +
          vy_[idx(ix, iy + 1)] - vy_[idx(ix, iy - 1)]) *
         0.5 * inv_dx;
}

Real ElasticFdtd::curl(std::size_t ix, std::size_t iy) const {
  if (ix == 0 || iy == 0 || ix + 1 >= config_.nx || iy + 1 >= config_.ny) {
    return 0.0;
  }
  const Real inv_dx = 1.0 / config_.dx;
  return (vy_[idx(ix + 1, iy)] - vy_[idx(ix - 1, iy)] -
          (vx_[idx(ix, iy + 1)] - vx_[idx(ix, iy - 1)])) *
         0.5 * inv_dx;
}

ElasticFdtd::ModeEnergies ElasticFdtd::mode_energies(std::size_t x0,
                                                     std::size_t y0,
                                                     std::size_t x1,
                                                     std::size_t y1) const {
  ModeEnergies e;
  for (std::size_t iy = y0; iy <= y1 && iy < config_.ny; ++iy) {
    for (std::size_t ix = x0; ix <= x1 && ix < config_.nx; ++ix) {
      const Real d = divergence(ix, iy);
      const Real c = curl(ix, iy);
      e.p += d * d;
      e.s += c * c;
    }
  }
  return e;
}

}  // namespace ecocap::wave
