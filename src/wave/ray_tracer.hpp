#pragma once

#include <cstddef>
#include <vector>

#include "wave/attenuation.hpp"
#include "wave/material.hpp"

namespace ecocap::wave {

/// A point in the 2-D cross-section of a structure. x runs along the
/// structure (m), y across its thickness (m).
struct Point2 {
  Real x = 0.0;
  Real y = 0.0;
};

/// One multipath arrival at a receiver: the ray reached the capture disc
/// after `delay` seconds with relative amplitude `amplitude` (signed: odd
/// numbers of boundary reflections flip polarity).
struct Tap {
  Real delay = 0.0;
  Real amplitude = 0.0;
  int bounces = 0;
};

/// Geometric ray tracer for body waves inside a rectangular cross-section
/// (a wall/slab seen side-on). Rays are launched from a surface point at the
/// prism's refracted angle, bounce off the concrete/air boundaries with
/// near-total reflection (Eq. 1: R = 99.98%), and accumulate attenuation and
/// spreading along the path. This produces
///   * the multipath tap-delay line the channel simulator convolves with,
///   * the interior energy map behind the Fig. 3(d)/Fig. 18 findings
///     (margins collect reflected energy; narrow sections act as waveguides).
class RayTracer {
 public:
  struct Config {
    Real length = 2.0;       // m along the structure
    Real thickness = 0.15;   // m across
    Real frequency = 230e3;  // Hz, for the attenuation model
    WaveMode mode = WaveMode::kSecondary;
    Real boundary_reflectance = 0.9998;  // amplitude per bounce
    int rays = 64;            // rays in the launch fan
    Real fan_half_angle = 0.12;  // rad around the central launch angle
    int max_bounces = 400;
    Real amplitude_floor = 1e-4;  // stop tracing below this
    Spreading spreading = Spreading::kCylindrical;
  };

  RayTracer(Material medium, Config config);

  /// Trace from a source on the y=0 surface at `source_x`, launching into
  /// the bulk at `launch_angle` radians from the surface normal, and collect
  /// taps at `receiver` within `capture_radius`.
  std::vector<Tap> trace(Real source_x, Real launch_angle, Point2 receiver,
                         Real capture_radius = 0.02) const;

  /// Total captured energy (sum of tap amplitude^2) at a receiver point.
  Real energy_at(Real source_x, Real launch_angle, Point2 receiver,
                 Real capture_radius = 0.02) const;

  /// Captured energy with coherent combining: taps arriving within
  /// `coherence_window` seconds of each other superpose in amplitude before
  /// squaring. Near a free boundary the incident and reflected passes
  /// arrive almost together and add constructively (displacement antinode),
  /// which is why margin-deployed nodes harvest more (Fig. 18).
  Real coherent_energy_at(Real source_x, Real launch_angle, Point2 receiver,
                          Real capture_radius = 0.02,
                          Real coherence_window = 25.0e-6) const;

  /// Energy map over an nx-by-ny grid of interior points; row-major,
  /// index = iy * nx + ix; grid spans (0,0)..(length,thickness).
  std::vector<Real> energy_map(Real source_x, Real launch_angle,
                               std::size_t nx, std::size_t ny,
                               Real capture_radius = 0.02) const;

  const Config& config() const { return config_; }
  const Material& medium() const { return medium_; }

 private:
  Material medium_;
  Config config_;
};

}  // namespace ecocap::wave
