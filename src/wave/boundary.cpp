#include "wave/boundary.hpp"

#include <cmath>

namespace ecocap::wave {

Real reflection_coefficient(const Material& from, const Material& into,
                            WaveMode mode) {
  // A fluid cannot carry an S-wave: treat its impedance for that mode as 0,
  // which yields total reflection — physically, the S-wave cannot cross.
  const Real z1 = from.impedance(mode);
  const Real z2 = into.impedance(mode);
  if (z1 + z2 <= 0.0) return 1.0;
  return (z1 - z2) / (z1 + z2);
}

Real transmission_coefficient(const Material& from, const Material& into,
                              WaveMode mode) {
  return 1.0 - std::abs(reflection_coefficient(from, into, mode));
}

Real energy_reflectance(const Material& from, const Material& into,
                        WaveMode mode) {
  const Real r = reflection_coefficient(from, into, mode);
  return r * r;
}

Real energy_transmittance(const Material& from, const Material& into,
                          WaveMode mode) {
  return 1.0 - energy_reflectance(from, into, mode);
}

}  // namespace ecocap::wave
