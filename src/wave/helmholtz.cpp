#include "wave/helmholtz.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecocap::wave {

namespace {
constexpr Real kPi = 3.14159265358979323846;
}

Real HelmholtzResonator::resonant_frequency(Real cs) const {
  if (neck_area <= 0.0 || neck_length <= 0.0 || cavity_volume <= 0.0 ||
      cs <= 0.0) {
    throw std::invalid_argument("HelmholtzResonator: invalid geometry");
  }
  return cs / (2.0 * kPi) *
         std::sqrt(3.0 * neck_area / (4.0 * cavity_volume * neck_length));
}

Real HelmholtzResonator::gain(Real f, Real cs, Real q, Real peak_gain) const {
  const Real f0 = resonant_frequency(cs);
  const Real r = f / f0;
  const Real denom =
      std::sqrt((1.0 - r * r) * (1.0 - r * r) + (r / q) * (r / q));
  // |H| of a 2nd-order resonator is q at resonance; rescale so the peak is
  // `peak_gain` and the low-frequency asymptote is 1.
  const Real raw = (denom <= 0.0) ? q : 1.0 / denom;
  const Real scaled = 1.0 + (peak_gain - 1.0) * (raw - 1.0) / (q - 1.0);
  return std::max<Real>(scaled, 0.0);
}

Real HelmholtzResonator::solve_neck_area(Real target_f, Real cs,
                                         Real cavity_volume,
                                         Real neck_length) {
  if (target_f <= 0.0 || cs <= 0.0) {
    throw std::invalid_argument("solve_neck_area: invalid inputs");
  }
  // Invert Eq. 5: A_n = (2 pi f / cs)^2 * 4 V_c H_n / 3.
  const Real k = 2.0 * kPi * target_f / cs;
  return k * k * 4.0 * cavity_volume * neck_length / 3.0;
}

HelmholtzResonator HelmholtzResonator::paper_prototype() {
  return HelmholtzResonator{0.78e-6, 0.8e-3, 2.76e-9};
}

HelmholtzArray::HelmholtzArray(HelmholtzResonator base, int cells,
                               Real detune_fraction) {
  if (cells <= 0) throw std::invalid_argument("HelmholtzArray: no cells");
  cells_.reserve(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    HelmholtzResonator cell = base;
    if (cells > 1) {
      const Real x = -1.0 + 2.0 * static_cast<Real>(i) / (cells - 1);
      cell.cavity_volume = base.cavity_volume * (1.0 + detune_fraction * x);
    }
    cells_.push_back(cell);
  }
}

Real HelmholtzArray::gain(Real f, Real cs) const {
  Real sum = 0.0;
  for (const auto& c : cells_) sum += c.gain(f, cs);
  return sum / static_cast<Real>(cells_.size());
}

}  // namespace ecocap::wave
