#pragma once

#include <vector>

#include "wave/material.hpp"

namespace ecocap::wave {

/// A single Helmholtz resonator cell of the EcoCapsule's resonator array
/// (paper §4.1, Fig. 8(d)). The cell is a neck + cavity machined into the
/// shell in front of the receiving PZT; media "springiness" in the cavity
/// amplifies vibration near the resonant frequency (Eq. 5):
///
///   f_r = (C_s / 2 pi) * sqrt(3 A_n / (4 V_c H_n))
struct HelmholtzResonator {
  Real neck_area;     // A_n, m^2
  Real neck_length;   // H_n, m
  Real cavity_volume; // V_c, m^3

  /// Undamped resonant frequency (Eq. 5) for S-waves of speed cs (m/s).
  Real resonant_frequency(Real cs) const;

  /// Amplitude gain of the resonator at frequency f: a second-order
  /// resonance of quality factor q, normalized to `peak_gain` at f_r and to
  /// ~1 far from resonance.
  Real gain(Real f, Real cs, Real q = 8.0, Real peak_gain = 3.0) const;

  /// Solve for the neck area that places the resonance at `target_f` with
  /// the given cavity volume / neck length and medium speed. Documents the
  /// geometry actually needed for the 230 kHz carrier (see DESIGN.md).
  static Real solve_neck_area(Real target_f, Real cs, Real cavity_volume,
                              Real neck_length);

  /// The paper's printed prototype geometry (A_n = 0.78 mm^2,
  /// V_c = 2.76 mm^3, H_n = 0.8 mm).
  static HelmholtzResonator paper_prototype();
};

/// The array of resonator cells in front of the receiving PZT. Cells are
/// slightly detuned so the aggregate gain covers the whole carrier band.
class HelmholtzArray {
 public:
  /// @param base base cell geometry
  /// @param cells number of cells
  /// @param detune_fraction per-cell geometric detuning (+-)
  HelmholtzArray(HelmholtzResonator base, int cells, Real detune_fraction = 0.03);

  /// Average amplitude gain over all cells at frequency f.
  Real gain(Real f, Real cs) const;

  int cell_count() const { return static_cast<int>(cells_.size()); }
  const std::vector<HelmholtzResonator>& cells() const { return cells_; }

 private:
  std::vector<HelmholtzResonator> cells_;
};

}  // namespace ecocap::wave
