#pragma once

#include <cstddef>
#include <vector>

#include "wave/material.hpp"

namespace ecocap::core {
class ThreadPool;
}  // namespace ecocap::core

namespace ecocap::wave {

/// 2-D elastodynamic finite-difference time-domain solver (P-SV waves,
/// velocity-stress formulation on a staggered grid, Virieux 1986). This is
/// the numerical ground truth for the analytic wave layer: the Appendix-A
/// momentum equation (Eq. 6) discretized directly, with the P and S
/// velocities of Eqs. 8/10 emerging from the material's Lamé parameters
/// rather than being assumed.
///
/// Used by the validation bench and tests to confirm:
///  * body-wave speeds in every Table-1 concrete,
///  * near-total reflection at the concrete/air free surface (Eq. 1),
///  * P->S mode conversion at oblique interfaces (the prism physics).
class ElasticFdtd {
 public:
  struct Config {
    std::size_t nx = 300;   // grid cells in x
    std::size_t ny = 300;   // grid cells in y
    Real dx = 2.0e-3;       // m per cell
    /// Time step; <= 0 selects the CFL limit with a 0.9 safety factor.
    Real dt = 0.0;
    /// Thickness (cells) of the absorbing sponge on each edge; 0 = free
    /// surfaces everywhere (the concrete/air boundary).
    ///
    /// Boundary contract: the one-cell outer border is the free surface —
    /// its stresses stay zero (never updated) and its velocities are never
    /// stepped, so rows 0 and ny-1 and columns 0 and nx-1 hold no energy to
    /// damp and the sponge never applies there. The sponge ramp therefore
    /// covers only the *interior* cells of the absorbing band; its
    /// coefficients are computed for exactly the cells it touches.
    std::size_t sponge_cells = 0;
    Real sponge_strength = 0.015;  // per-step damping at the outer edge
    /// Split each update pass into row bands across a core::ThreadPool.
    /// Every cell update is independent within a pass, so the fields are
    /// bit-identical at any worker count. false forces serial stepping.
    bool parallel = true;
    /// Pool used when `parallel`; nullptr selects ThreadPool::shared()
    /// (worker count from ECOCAP_THREADS / hardware_concurrency). Grids too
    /// small to amortize the fan-out run serially either way.
    core::ThreadPool* pool = nullptr;
  };

  /// Homogeneous medium.
  ElasticFdtd(const Material& medium, Config config);

  /// CFL-stable time step for this grid/medium.
  Real cfl_dt() const;
  Real dt() const { return dt_; }
  Real dx() const { return config_.dx; }
  std::size_t nx() const { return config_.nx; }
  std::size_t ny() const { return config_.ny; }

  /// Override the material in a rectangular region (layered media,
  /// inclusions). Call before stepping.
  void fill_region(std::size_t x0, std::size_t y0, std::size_t x1,
                   std::size_t y1, const Material& medium);

  /// Add a body-force impulse at a grid point for the *next* step.
  /// direction: 0 = x (shear-exciting when lateral), 1 = y.
  void add_force(std::size_t ix, std::size_t iy, int direction,
                 Real amplitude);

  /// Advance one time step.
  void step();

  /// Advance n steps, applying `source(t_index)` as a y-force at the given
  /// point each step (tone bursts etc.).
  void run(std::size_t steps, std::size_t src_x, std::size_t src_y,
           const std::vector<Real>& source_amplitudes, int direction = 1);

  /// Particle-velocity magnitude at a grid point.
  Real velocity_magnitude(std::size_t ix, std::size_t iy) const;
  Real vx(std::size_t ix, std::size_t iy) const { return vx_[idx(ix, iy)]; }
  Real vy(std::size_t ix, std::size_t iy) const { return vy_[idx(ix, iy)]; }

  /// Total kinetic + strain energy on the grid (conservation checks).
  Real total_energy() const;

  /// Divergence / curl of the velocity field at a point: P motion is
  /// irrotational (div), S motion is solenoidal (curl) — the Appendix-A
  /// Helmholtz split used to separate the modes numerically.
  Real divergence(std::size_t ix, std::size_t iy) const;
  Real curl(std::size_t ix, std::size_t iy) const;

  /// Sum of div^2 (P energy proxy) and curl^2 (S energy proxy) over a
  /// rectangular region.
  struct ModeEnergies {
    Real p = 0.0;
    Real s = 0.0;
  };
  ModeEnergies mode_energies(std::size_t x0, std::size_t y0, std::size_t x1,
                             std::size_t y1) const;

  std::size_t step_count() const { return steps_done_; }

 private:
  std::size_t idx(std::size_t ix, std::size_t iy) const {
    return iy * config_.nx + ix;
  }
  void update_velocity_rows(std::size_t y0, std::size_t y1);
  void update_stress_rows(std::size_t y0, std::size_t y1);
  void apply_sponge_rows(std::size_t y0, std::size_t y1);
  /// Run fn over interior row bands [y0, y1), in parallel when the grid is
  /// big enough to amortize the pool fan-out.
  template <typename Fn>
  void for_row_bands(const Fn& fn);

  Config config_;
  Real dt_ = 0.0;
  Real max_cp_ = 0.0;
  std::size_t steps_done_ = 0;
  // Material maps.
  std::vector<Real> rho_, lambda_, mu_;
  // Fields (staggered in space; stored on the same index grid).
  std::vector<Real> vx_, vy_, sxx_, syy_, sxy_;
  std::vector<Real> pending_fx_, pending_fy_;
  /// True between add_force() and the next velocity pass. When clear, the
  /// velocity kernels skip the force arrays entirely — no per-step
  /// full-grid clears of pending_fx_/pending_fy_ (the kernels zero the
  /// entries they consume when the flag is set).
  bool forces_pending_ = false;
  std::vector<Real> sponge_;
};

}  // namespace ecocap::wave
