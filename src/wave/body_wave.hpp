#pragma once

#include "dsp/types.hpp"

namespace ecocap::wave {

using dsp::Real;

/// Body-wave modes inside a solid (paper §3.1, Appendix A). Liquids carry
/// only P-waves; solids carry both, which is the root of the intra-symbol
/// interference problem the wave prism solves.
enum class WaveMode {
  kPrimary,    // P-wave: longitudinal push-pull, faster, attenuates sooner
  kSecondary,  // S-wave: transverse shear, ~40% slower, travels further
};

/// Lamé parameters of an isotropic elastic solid.
struct LameParameters {
  Real lambda;  // Pa
  Real mu;      // Pa (shear modulus)
};

/// Lamé parameters from Young's modulus E (Pa) and Poisson's ratio nu.
LameParameters lame_from_youngs(Real youngs_modulus, Real poisson_ratio);

/// P-wave velocity (Appendix A Eq. 8): sqrt((lambda + 2 mu) / rho).
Real p_wave_velocity(const LameParameters& lame, Real density);

/// S-wave velocity (Appendix A Eq. 10): sqrt(mu / rho).
Real s_wave_velocity(const LameParameters& lame, Real density);

/// P-wave velocity directly from engineering constants.
Real p_wave_velocity(Real youngs_modulus, Real poisson_ratio, Real density);

/// S-wave velocity directly from engineering constants.
Real s_wave_velocity(Real youngs_modulus, Real poisson_ratio, Real density);

}  // namespace ecocap::wave
