#pragma once

#include <optional>

#include "wave/boundary.hpp"
#include "wave/snell.hpp"

namespace ecocap::wave {

/// The polymer wave prism placed between the transmitting PZT and the
/// concrete surface (paper §3.2, Fig. 3). It injects the PZT's P-wave at a
/// configurable incident angle; between the two critical angles only the
/// mode-converted S-wave survives inside the concrete, which removes the
/// dual-mode intra-symbol interference.
class WavePrism {
 public:
  /// @param prism prism material (default PLA)
  /// @param concrete target medium
  /// @param incident_angle_rad inclined-plane angle in radians
  WavePrism(Material prism, Material concrete, Real incident_angle_rad);

  Real incident_angle() const { return incident_angle_; }
  const Material& prism_material() const { return prism_; }
  const Material& concrete() const { return concrete_; }

  /// Snell outcome for the configured angle.
  Refraction refraction() const;

  /// Relative amplitudes of the modes conducted into the concrete at the
  /// configured angle, including the prism/concrete interface energy loss
  /// (Eq. 1: ~67% of the P-wave energy crosses a PLA/concrete boundary).
  ModeAmplitudes conducted_amplitudes() const;

  /// True when only the S-wave survives (incident angle within
  /// [first critical, second critical)).
  bool s_only() const;

  /// Fraction of the PZT's energy conducted through the prism/concrete
  /// interface (1 - R^2 at normal incidence as the paper approximates).
  Real interface_energy_transmittance() const;

  /// First/second critical angles for this material pair, radians.
  std::optional<Real> first_critical() const;
  std::optional<Real> second_critical() const;

  /// The paper's default operating point: 60 degrees with a PLA prism.
  static WavePrism default_for(const Material& concrete);

 private:
  Material prism_;
  Material concrete_;
  Real incident_angle_;
};

}  // namespace ecocap::wave
