#include "wave/prism.hpp"

#include <cmath>
#include <utility>

namespace ecocap::wave {

WavePrism::WavePrism(Material prism, Material concrete,
                     Real incident_angle_rad)
    : prism_(std::move(prism)),
      concrete_(std::move(concrete)),
      incident_angle_(incident_angle_rad) {}

Refraction WavePrism::refraction() const {
  return refract(prism_, concrete_, incident_angle_);
}

ModeAmplitudes WavePrism::conducted_amplitudes() const {
  ModeAmplitudes a =
      transmitted_mode_amplitudes(prism_, concrete_, incident_angle_);
  const Real t = interface_energy_transmittance();
  // Amplitude scales with sqrt of transmitted energy fraction.
  const Real ta = std::sqrt(t);
  a.p *= ta;
  a.s *= ta;
  a.surface *= ta;
  return a;
}

bool WavePrism::s_only() const {
  const auto ca1 = first_critical();
  const auto ca2 = second_critical();
  if (!ca1) return false;
  const Real hi = ca2.value_or(1.5707963267948966);
  return incident_angle_ >= *ca1 && incident_angle_ < hi;
}

Real WavePrism::interface_energy_transmittance() const {
  return energy_transmittance(prism_, concrete_);
}

std::optional<Real> WavePrism::first_critical() const {
  return first_critical_angle(prism_, concrete_);
}

std::optional<Real> WavePrism::second_critical() const {
  return second_critical_angle(prism_, concrete_);
}

WavePrism WavePrism::default_for(const Material& concrete) {
  return WavePrism(materials::pla(), concrete, deg_to_rad(60.0));
}

}  // namespace ecocap::wave
