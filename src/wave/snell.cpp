#include "wave/snell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecocap::wave {

namespace {

constexpr Real kPi = 3.14159265358979323846;
// Grazing incidence is excluded: the prism geometry cannot reach it.
constexpr Real kMaxIncidence = 0.5 * kPi;

std::optional<Real> refract_angle(Real c_in, Real c_out, Real theta_i) {
  if (c_out <= 0.0) return std::nullopt;  // mode does not exist in target
  const Real s = std::sin(theta_i) * c_out / c_in;
  if (s > 1.0) return std::nullopt;  // beyond critical angle: evanescent
  return std::asin(s);
}

}  // namespace

Refraction refract(const Material& from, const Material& into,
                   Real incident_angle) {
  if (incident_angle < 0.0 || incident_angle > kMaxIncidence) {
    throw std::invalid_argument("refract: incident angle out of [0, pi/2]");
  }
  Refraction r;
  r.theta_p = refract_angle(from.cp, into.cp, incident_angle);
  r.theta_s = refract_angle(from.cp, into.cs, incident_angle);
  return r;
}

std::optional<Real> first_critical_angle(const Material& from,
                                         const Material& into) {
  if (into.cp <= 0.0 || from.cp >= into.cp) return std::nullopt;
  return std::asin(from.cp / into.cp);
}

std::optional<Real> second_critical_angle(const Material& from,
                                          const Material& into) {
  if (into.cs <= 0.0 || from.cp >= into.cs) return std::nullopt;
  return std::asin(from.cp / into.cs);
}

ModeAmplitudes transmitted_mode_amplitudes(const Material& from,
                                           const Material& into,
                                           Real incident_angle) {
  ModeAmplitudes out;
  const auto ca1 = first_critical_angle(from, into);
  const auto ca2 = second_critical_angle(from, into);
  // Without critical angles (e.g. fast prism into slow medium) the P-wave
  // simply refracts and no meaningful mode windowing occurs.
  const Real theta1 = ca1.value_or(kMaxIncidence);
  const Real theta2 = ca2.value_or(kMaxIncidence);

  // P mode: full at normal incidence, smoothly extinguished at the first
  // critical angle (raised-cosine in angle — matches the monotone decay of
  // Fig. 4 and the Zoeppritz trend for a slow-on-fast interface).
  if (incident_angle < theta1) {
    out.p = std::cos(0.5 * kPi * incident_angle / theta1);
  }

  // Mode-converted S: zero at normal incidence (no shear traction), rises
  // through the dual-mode region, plateaus across the S-only window
  // [theta1, theta2], and extinguishes at the second critical angle — the
  // flat-top profile of Fig. 4 (and the reason Fig. 19's SNR stays at its
  // maximum from ~50 to ~70 degrees).
  if (incident_angle < theta2 && into.cs > 0.0) {
    const Real rise_end = theta1 + 0.10 * (theta2 - theta1);
    const Real fall_start = theta2 - 0.15 * (theta2 - theta1);
    auto smoothstep = [](Real t) {
      t = std::clamp<Real>(t, 0.0, 1.0);
      return t * t * (3.0 - 2.0 * t);
    };
    Real g;
    if (incident_angle < rise_end) {
      g = smoothstep(incident_angle / rise_end);
    } else if (incident_angle < fall_start) {
      g = 1.0;
    } else {
      g = 1.0 - smoothstep((incident_angle - fall_start) /
                           (theta2 - fall_start));
    }
    out.s = 0.9 * g;
  }

  // Surface wave leakage: negligible below the second critical angle, then
  // takes over (Rayleigh excitation) — Fig. 4's trailing curve.
  if (incident_angle >= theta2) {
    const Real over = (incident_angle - theta2) / (kMaxIncidence - theta2);
    out.surface = 0.7 * std::sin(0.5 * kPi * std::min<Real>(over * 2.0, 1.0));
  }
  return out;
}

Real deg_to_rad(Real degrees) { return degrees * kPi / 180.0; }
Real rad_to_deg(Real radians) { return radians * 180.0 / kPi; }

}  // namespace ecocap::wave
