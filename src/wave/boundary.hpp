#pragma once

#include "wave/material.hpp"

namespace ecocap::wave {

/// Amplitude reflection coefficient at normal incidence between two media
/// (paper Eq. 1): R = (Z1 - Z2) / (Z1 + Z2), where Z is acoustic impedance.
/// The sign convention follows the paper: reflection seen from inside
/// medium `from` against medium `into`.
Real reflection_coefficient(const Material& from, const Material& into,
                            WaveMode mode = WaveMode::kPrimary);

/// Amplitude transmission coefficient at normal incidence: T = 1 - |R| is
/// the paper's usage ("67% energy conducted"); we expose both the pressure
/// transmission 2*Z2/(Z1+Z2) and the simplified energy fraction.
Real transmission_coefficient(const Material& from, const Material& into,
                              WaveMode mode = WaveMode::kPrimary);

/// Fraction of incident *energy* reflected at normal incidence: R^2 expressed
/// via impedances — ((Z2-Z1)/(Z2+Z1))^2.
Real energy_reflectance(const Material& from, const Material& into,
                        WaveMode mode = WaveMode::kPrimary);

/// Fraction of incident energy transmitted: 1 - energy_reflectance.
Real energy_transmittance(const Material& from, const Material& into,
                          WaveMode mode = WaveMode::kPrimary);

}  // namespace ecocap::wave
