#include "wave/attenuation.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::wave {

namespace {
/// Scattering knee: below this the loss grows linearly with f (absorption),
/// above it quartically steeper scattering kicks in. 260 kHz places the knee
/// just above the carrier band, reproducing the sharp Fig. 5 roll-off.
constexpr Real kScatteringKnee = 260.0e3;  // Hz
}  // namespace

Real attenuation_coefficient(const Material& m, WaveMode mode,
                             Real frequency) {
  if (frequency <= 0.0) {
    throw std::invalid_argument("attenuation_coefficient: f must be > 0");
  }
  const Real alpha_ref =
      (mode == WaveMode::kPrimary) ? m.alpha_p_ref : m.alpha_s_ref;
  const Real fr = frequency / kAttenuationRefFrequency;
  if (frequency <= kScatteringKnee) {
    return alpha_ref * fr;  // absorption regime: ~linear in f
  }
  // Rayleigh scattering regime: continue the linear law to the knee, then
  // grow with the 4th power of frequency (lambda^-4) beyond it.
  const Real knee_ratio = kScatteringKnee / kAttenuationRefFrequency;
  const Real excess = frequency / kScatteringKnee;
  return alpha_ref * knee_ratio * std::pow(excess, 4.0);
}

Real attenuation_factor(const Material& m, WaveMode mode, Real frequency,
                        Real distance) {
  if (distance < 0.0) {
    throw std::invalid_argument("attenuation_factor: negative distance");
  }
  return std::exp(-attenuation_coefficient(m, mode, frequency) * distance);
}

Real spreading_factor(Spreading spreading, Real r, Real r0,
                      Real waveguide_leak_np_per_m) {
  if (r <= r0) return 1.0;
  switch (spreading) {
    case Spreading::kSpherical:
      return r0 / r;
    case Spreading::kCylindrical:
      return std::sqrt(r0 / r);
    case Spreading::kWaveguide:
      return std::exp(-waveguide_leak_np_per_m * (r - r0));
  }
  throw std::logic_error("spreading_factor: bad enum");
}

}  // namespace ecocap::wave
