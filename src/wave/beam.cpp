#include "wave/beam.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::wave {

namespace {
constexpr Real kPi = 3.14159265358979323846;
}

Real PistonBeam::half_beam_angle() const {
  if (diameter <= 0.0 || frequency <= 0.0 || velocity <= 0.0) {
    throw std::invalid_argument("PistonBeam: invalid parameters");
  }
  const Real s = 0.514 * velocity / (frequency * diameter);
  if (s >= 1.0) return 0.5 * kPi;  // beam fills the half-space
  return std::asin(s);
}

Real PistonBeam::coverage_cone_volume(Real depth) const {
  const Real r = footprint_radius(depth);
  return kPi * r * r * depth / 3.0;
}

Real PistonBeam::footprint_radius(Real depth) const {
  return depth * std::tan(half_beam_angle());
}

Real PistonBeam::near_field_length() const {
  return diameter * diameter * frequency / (4.0 * velocity);
}

PistonBeam make_beam(Real diameter, Real frequency, const Material& medium,
                     WaveMode mode) {
  return PistonBeam{diameter, frequency, medium.velocity(mode)};
}

}  // namespace ecocap::wave
