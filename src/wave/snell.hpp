#pragma once

#include <optional>

#include "wave/material.hpp"

namespace ecocap::wave {

/// Result of refracting a P-wave from a prism into a solid (paper Eq. 2/3).
struct Refraction {
  /// Refracted P-wave angle in radians; empty past the first critical angle.
  std::optional<Real> theta_p;
  /// Refracted (mode-converted) S-wave angle; empty past the second critical
  /// angle.
  std::optional<Real> theta_s;
};

/// Snell refraction of an incident P-wave (velocity = from.cp) crossing into
/// `into` at `incident_angle` radians.
Refraction refract(const Material& from, const Material& into,
                   Real incident_angle);

/// First critical angle: incidence beyond which the refracted P-wave no
/// longer exists in `into` (arcsin(c_from_p / c_into_p)); empty if the P-wave
/// never becomes evanescent (c_from >= c_into).
std::optional<Real> first_critical_angle(const Material& from,
                                         const Material& into);

/// Second critical angle: incidence beyond which the refracted S-wave no
/// longer exists either (arcsin(c_from_p / c_into_s)).
std::optional<Real> second_critical_angle(const Material& from,
                                          const Material& into);

/// Relative amplitudes of the two transmitted body-wave modes as a function
/// of incident angle — the model behind Fig. 4. P starts at full strength at
/// normal incidence and vanishes at the first critical angle; the
/// mode-converted S grows from zero, dominates between the critical angles,
/// and vanishes at the second. Amplitudes are normalized to the P amplitude
/// at normal incidence.
struct ModeAmplitudes {
  Real p = 0.0;
  Real s = 0.0;
  /// Leaked surface-wave amplitude (grows past the second critical angle as
  /// the body waves become evanescent; shown dashed in Fig. 4).
  Real surface = 0.0;
};

ModeAmplitudes transmitted_mode_amplitudes(const Material& from,
                                           const Material& into,
                                           Real incident_angle);

/// Degrees <-> radians helpers used across the experiment harnesses.
Real deg_to_rad(Real degrees);
Real rad_to_deg(Real radians);

}  // namespace ecocap::wave
