#pragma once

#include "wave/material.hpp"

namespace ecocap::wave {

/// Geometry of the acoustic beam of a circular piston PZT (paper §3.2).
/// A disc transducer vibrating in the push-pull pattern radiates a cone of
/// P-waves whose half-beam angle is alpha = arcsin(0.514 * c / (f * D)).
struct PistonBeam {
  Real diameter;   // m
  Real frequency;  // Hz
  Real velocity;   // m/s in the medium

  /// Half-beam angle in radians.
  Real half_beam_angle() const;

  /// Volume (m^3) of the coverage cone for a wall of thickness `depth` (m):
  /// a cone of apex at the PZT and base radius depth * tan(alpha). The paper
  /// quotes 132 cm^3 for D = 40 mm, f = 230 kHz, 15 cm concrete.
  Real coverage_cone_volume(Real depth) const;

  /// Radius of the insonified disc at the far side of a wall of thickness
  /// `depth`.
  Real footprint_radius(Real depth) const;

  /// Near-field (Fresnel) length N = D^2 f / (4 c); beyond it the beam
  /// diverges at the half-beam angle.
  Real near_field_length() const;
};

/// Convenience constructor from a medium.
PistonBeam make_beam(Real diameter, Real frequency, const Material& medium,
                     WaveMode mode = WaveMode::kPrimary);

}  // namespace ecocap::wave
