#include "wave/frequency_response.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ecocap::wave {

namespace {

/// Second-order resonator magnitude (normalized to 1 at resonance).
Real resonator_gain(Real f, Real f0, Real q) {
  const Real r = f / f0;
  const Real denom =
      std::sqrt((1.0 - r * r) * (1.0 - r * r) + (r / q) * (r / q));
  const Real at_res = q;  // |H| at f = f0 equals Q for this normalization
  if (denom <= 0.0) return 1.0;
  return (1.0 / denom) / at_res;
}

/// Coupling efficiency grows with compressive strength: tighter molecular
/// packing conducts elastic waves better (paper's Fig. 5 explanation). A
/// sqrt law keeps UHPC/UHPFRC ~2x NC in amplitude as measured.
Real coupling_gain(const Material& m) {
  constexpr Real kRefStrength = 54.1e6;  // NC
  if (m.compressive_strength <= 0.0) return 1.0;
  return std::sqrt(m.compressive_strength / kRefStrength);
}

}  // namespace

ConcreteFrequencyResponse::ConcreteFrequencyResponse(Material material,
                                                     Real thickness,
                                                     Real pzt_resonance,
                                                     Real pzt_q)
    : material_(std::move(material)),
      thickness_(thickness),
      pzt_resonance_(pzt_resonance),
      pzt_q_(pzt_q) {
  if (thickness <= 0.0) {
    throw std::invalid_argument("ConcreteFrequencyResponse: bad thickness");
  }
}

Real ConcreteFrequencyResponse::gain(Real frequency) const {
  if (frequency <= 0.0) return 0.0;
  // TX and RX transducers are identical discs: resonance applies twice.
  const Real pzt = resonator_gain(frequency, pzt_resonance_, pzt_q_);
  const Real path = attenuation_factor(material_, WaveMode::kSecondary,
                                       frequency, thickness_);
  return pzt * pzt * path * coupling_gain(material_);
}

Real ConcreteFrequencyResponse::amplitude_mv(Real frequency,
                                             Real drive_volts) const {
  // Electromechanical conversion scale calibrated so that a 100 V drive into
  // 15 cm NC yields a ~2 V peak at resonance, matching Fig. 5(b).
  constexpr Real kConversionMvPerVolt = 24.0;
  return kConversionMvPerVolt * drive_volts * gain(frequency);
}

Real ConcreteFrequencyResponse::resonant_frequency(Real f_lo,
                                                   Real f_hi) const {
  Real best_f = f_lo;
  Real best_g = -1.0;
  const int steps = 1000;
  for (int i = 0; i <= steps; ++i) {
    const Real f = f_lo + (f_hi - f_lo) * static_cast<Real>(i) / steps;
    const Real g = gain(f);
    if (g > best_g) {
      best_g = g;
      best_f = f;
    }
  }
  return best_f;
}

}  // namespace ecocap::wave
