#include "wave/ray_tracer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ecocap::wave {

namespace {

/// Distance from segment a->b to point p, and the arc-length position along
/// the segment of the closest approach.
struct ClosestApproach {
  Real distance;
  Real along;  // in [0, |b-a|]
};

ClosestApproach closest_approach(Point2 a, Point2 b, Point2 p) {
  const Real dx = b.x - a.x;
  const Real dy = b.y - a.y;
  const Real len2 = dx * dx + dy * dy;
  if (len2 <= 0.0) {
    const Real ddx = p.x - a.x;
    const Real ddy = p.y - a.y;
    return {std::sqrt(ddx * ddx + ddy * ddy), 0.0};
  }
  Real t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp<Real>(t, 0.0, 1.0);
  const Real cx = a.x + t * dx;
  const Real cy = a.y + t * dy;
  const Real ddx = p.x - cx;
  const Real ddy = p.y - cy;
  return {std::sqrt(ddx * ddx + ddy * ddy), t * std::sqrt(len2)};
}

}  // namespace

RayTracer::RayTracer(Material medium, Config config)
    : medium_(std::move(medium)), config_(config) {
  if (config_.length <= 0.0 || config_.thickness <= 0.0) {
    throw std::invalid_argument("RayTracer: invalid domain");
  }
  if (config_.rays <= 0) {
    throw std::invalid_argument("RayTracer: need at least one ray");
  }
  if (medium_.velocity(config_.mode) <= 0.0) {
    throw std::invalid_argument("RayTracer: medium does not carry this mode");
  }
}

std::vector<Tap> RayTracer::trace(Real source_x, Real launch_angle,
                                  Point2 receiver,
                                  Real capture_radius) const {
  std::vector<Tap> taps;
  const Real c = medium_.velocity(config_.mode);
  const Real alpha =
      attenuation_coefficient(medium_, config_.mode, config_.frequency);

  for (int ri = 0; ri < config_.rays; ++ri) {
    // Fan of rays around the central launch angle; amplitude is weighted by
    // a raised-cosine beam profile.
    Real offset = 0.0;
    Real weight = 1.0;
    if (config_.rays > 1) {
      const Real u =
          -1.0 + 2.0 * static_cast<Real>(ri) / (config_.rays - 1);
      offset = u * config_.fan_half_angle;
      weight = 0.5 * (1.0 + std::cos(u * 3.14159265358979323846 / 2.0));
    }
    const Real angle = launch_angle + offset;

    // Direction from the surface normal (y axis) tilted toward +x.
    Real dir_x = std::sin(angle);
    Real dir_y = std::cos(angle);
    Point2 pos{source_x, 0.0};
    Real amplitude = weight / std::sqrt(static_cast<Real>(config_.rays));
    Real path = 0.0;
    int bounces = 0;

    while (bounces <= config_.max_bounces &&
           std::abs(amplitude) > config_.amplitude_floor) {
      // Find the nearest boundary along the current direction.
      Real t_hit = 1e30;
      int wall = -1;  // 0: y=0, 1: y=T, 2: x=0, 3: x=L
      if (dir_y > 1e-12) {
        const Real t = (config_.thickness - pos.y) / dir_y;
        if (t < t_hit) { t_hit = t; wall = 1; }
      } else if (dir_y < -1e-12) {
        const Real t = (0.0 - pos.y) / dir_y;
        if (t < t_hit) { t_hit = t; wall = 0; }
      }
      if (dir_x > 1e-12) {
        const Real t = (config_.length - pos.x) / dir_x;
        if (t < t_hit) { t_hit = t; wall = 3; }
      } else if (dir_x < -1e-12) {
        const Real t = (0.0 - pos.x) / dir_x;
        if (t < t_hit) { t_hit = t; wall = 2; }
      }
      if (wall < 0 || t_hit >= 1e29) break;  // degenerate direction

      const Point2 next{pos.x + dir_x * t_hit, pos.y + dir_y * t_hit};

      // Capture check against this segment.
      const auto ca = closest_approach(pos, next, receiver);
      if (ca.distance <= capture_radius) {
        const Real hit_path = path + ca.along;
        const Real geom = spreading_factor(config_.spreading,
                                           std::max<Real>(hit_path, 1e-6));
        const Real att = std::exp(-alpha * hit_path);
        taps.push_back(Tap{hit_path / c, amplitude * geom * att, bounces});
      }

      // Advance to the wall and reflect. The concrete/air boundary is a
      // free surface: a displacement antinode, so the reflected wave keeps
      // the sign of the incident displacement (what a PZT embedded nearby
      // senses constructively — the Fig. 18 margin advantage).
      path += t_hit;
      pos = next;
      amplitude *= config_.boundary_reflectance;
      ++bounces;
      if (wall == 0 || wall == 1) {
        dir_y = -dir_y;
      } else {
        dir_x = -dir_x;
      }
    }
  }

  std::sort(taps.begin(), taps.end(),
            [](const Tap& a, const Tap& b) { return a.delay < b.delay; });
  return taps;
}

Real RayTracer::energy_at(Real source_x, Real launch_angle, Point2 receiver,
                          Real capture_radius) const {
  Real e = 0.0;
  for (const Tap& t : trace(source_x, launch_angle, receiver, capture_radius)) {
    e += t.amplitude * t.amplitude;
  }
  return e;
}

Real RayTracer::coherent_energy_at(Real source_x, Real launch_angle,
                                   Point2 receiver, Real capture_radius,
                                   Real coherence_window) const {
  const std::vector<Tap> taps =
      trace(source_x, launch_angle, receiver, capture_radius);
  Real energy = 0.0;
  std::size_t i = 0;
  while (i < taps.size()) {
    Real amp = 0.0;
    const Real window_start = taps[i].delay;
    while (i < taps.size() && taps[i].delay - window_start < coherence_window) {
      amp += taps[i].amplitude;
      ++i;
    }
    energy += amp * amp;
  }
  return energy;
}

std::vector<Real> RayTracer::energy_map(Real source_x, Real launch_angle,
                                        std::size_t nx, std::size_t ny,
                                        Real capture_radius) const {
  std::vector<Real> map(nx * ny, 0.0);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Point2 p{
          config_.length * (static_cast<Real>(ix) + 0.5) / static_cast<Real>(nx),
          config_.thickness * (static_cast<Real>(iy) + 0.5) / static_cast<Real>(ny)};
      map[iy * nx + ix] = energy_at(source_x, launch_angle, p, capture_radius);
    }
  }
  return map;
}

}  // namespace ecocap::wave
