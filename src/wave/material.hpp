#pragma once

#include <string>
#include <vector>

#include "wave/body_wave.hpp"

namespace ecocap::wave {

/// Concrete mix proportions in kg per m^3 (Table 1 of the paper, Appendix B).
struct MixProportions {
  Real cement = 0.0;
  Real silica_fume = 0.0;
  Real fly_ash = 0.0;
  Real quartz_powder = 0.0;
  Real sand = 0.0;
  Real granite = 0.0;
  Real steel_fiber = 0.0;
  Real water = 0.0;
  Real hrwr = 0.0;  // high-range water reducer

  /// Sum of all constituents = fresh density estimate (kg/m^3).
  Real total() const;
};

/// An acoustic propagation medium. Solids carry P and S waves; fluids carry
/// only P (cs == 0). Velocities can either be supplied (measured) or derived
/// from elastic constants via the Appendix-A relations.
struct Material {
  std::string name;
  Real density = 0.0;        // kg/m^3
  Real cp = 0.0;             // P-wave velocity, m/s
  Real cs = 0.0;             // S-wave velocity, m/s (0 for fluids)
  Real youngs_modulus = 0.0; // Pa (0 if not applicable/known)
  Real poisson_ratio = 0.0;
  Real compressive_strength = 0.0;  // Pa (concretes only)
  Real peak_strain = 0.0;           // strain at f_co (concretes only)
  /// Base amplitude attenuation at the reference frequency (Np/m) for each
  /// mode; frequency scaling handled by wave::attenuation_coefficient.
  Real alpha_p_ref = 0.0;
  Real alpha_s_ref = 0.0;
  MixProportions mix;  // zero for non-concretes

  bool is_fluid() const { return cs <= 0.0; }

  /// Specific acoustic impedance Z = rho * c for the given mode (kg/m^2 s).
  Real impedance(WaveMode mode = WaveMode::kPrimary) const;

  /// Velocity of the given mode (m/s).
  Real velocity(WaveMode mode) const;

  /// Lamé parameters implied by the stored velocities and density.
  LameParameters lame_from_velocities() const;
};

/// Reference frequency for the attenuation model (the carrier band center).
inline constexpr Real kAttenuationRefFrequency = 230.0e3;  // Hz

/// Material catalog. Concrete velocities for the Table-1 mixes are derived
/// from their elastic constants; `reference_concrete()` instead carries the
/// measured velocities (Cp = 3338 m/s, Cs = 1941 m/s) the paper quotes from
/// [41] and is what the Snell / critical-angle experiments use.
namespace materials {

/// The paper's quoted measured concrete (Cp 3338, Cs 1941 m/s).
Material reference_concrete();

/// Normal concrete, Table 1 column "NC" (f_co = 54.1 MPa).
Material normal_concrete();

/// Ultra-high-performance concrete, Table 1 "UHPC" (f_co = 195.3 MPa).
Material uhpc();

/// Ultra-high-performance fiber-reinforced concrete, Table 1 "UHPSSC/UHPFRC"
/// (f_co = 215.0 MPa, the strongest standard-cured concrete on record).
Material uhpfrc();

/// Polylactic-acid prism material. Longitudinal velocity calibrated to
/// 1865 m/s so the first/second critical angles into reference concrete land
/// on the paper's 34 deg / 73 deg (see DESIGN.md calibration note).
Material pla();

/// Air at standard conditions (Z = 4.15e2 kg/m^2 s, paper §3.2).
Material air();

/// Fresh water (for the PAB underwater baseline).
Material water();

/// Structural steel (rebar, shells).
Material steel();

/// SLA printing resin used for the EcoCapsule shell (65 MPa tensile,
/// 2.2 GPa Young's modulus, §4.1).
Material sla_resin();

/// All concretes of Table 1 in paper order.
std::vector<Material> table1_concretes();

}  // namespace materials

}  // namespace ecocap::wave
