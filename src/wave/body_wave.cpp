#include "wave/body_wave.hpp"

#include <cmath>
#include <stdexcept>

namespace ecocap::wave {

LameParameters lame_from_youngs(Real youngs_modulus, Real poisson_ratio) {
  if (youngs_modulus <= 0.0) {
    throw std::invalid_argument("lame_from_youngs: E must be > 0");
  }
  if (poisson_ratio <= -1.0 || poisson_ratio >= 0.5) {
    throw std::invalid_argument("lame_from_youngs: nu out of (-1, 0.5)");
  }
  LameParameters p{};
  p.lambda = youngs_modulus * poisson_ratio /
             ((1.0 + poisson_ratio) * (1.0 - 2.0 * poisson_ratio));
  p.mu = youngs_modulus / (2.0 * (1.0 + poisson_ratio));
  return p;
}

Real p_wave_velocity(const LameParameters& lame, Real density) {
  if (density <= 0.0) {
    throw std::invalid_argument("p_wave_velocity: density must be > 0");
  }
  return std::sqrt((lame.lambda + 2.0 * lame.mu) / density);
}

Real s_wave_velocity(const LameParameters& lame, Real density) {
  if (density <= 0.0) {
    throw std::invalid_argument("s_wave_velocity: density must be > 0");
  }
  return std::sqrt(lame.mu / density);
}

Real p_wave_velocity(Real youngs_modulus, Real poisson_ratio, Real density) {
  return p_wave_velocity(lame_from_youngs(youngs_modulus, poisson_ratio),
                         density);
}

Real s_wave_velocity(Real youngs_modulus, Real poisson_ratio, Real density) {
  return s_wave_velocity(lame_from_youngs(youngs_modulus, poisson_ratio),
                         density);
}

}  // namespace ecocap::wave
