#pragma once

#include "wave/material.hpp"

namespace ecocap::wave {

/// How wavefront energy spreads with distance from the source. Narrow
/// structures act as waveguides (the Fig. 12 finding: walls outperform the
/// thick column because internal reflections confine the energy).
enum class Spreading {
  kSpherical,    // free 3-D bulk: amplitude ~ 1/r
  kCylindrical,  // plate-guided: amplitude ~ 1/sqrt(r)
  kWaveguide,    // strongly confined corridor: amplitude ~ const * leak decay
};

/// Frequency-dependent amplitude attenuation coefficient (Np/m).
/// Model: alpha(f) = alpha_ref * (f/f_ref)^n with n = 1 below the scattering
/// knee and n = 2 above it (Rayleigh scattering off aggregates). The knee for
/// concrete sits where the wavelength approaches the aggregate size, right
/// above the paper's 200-250 kHz carrier band — this is what makes the
/// Fig. 5 responses collapse past ~250 kHz.
Real attenuation_coefficient(const Material& m, WaveMode mode, Real frequency);

/// Amplitude decay factor exp(-alpha * distance) for a given path length.
Real attenuation_factor(const Material& m, WaveMode mode, Real frequency,
                        Real distance);

/// Geometric amplitude spreading factor at distance r (m) given a reference
/// distance r0 (the transducer radius scale). Clamped to 1 within r0.
Real spreading_factor(Spreading spreading, Real r, Real r0 = 0.02,
                      Real waveguide_leak_np_per_m = 0.05);

}  // namespace ecocap::wave
