#pragma once

#include "wave/attenuation.hpp"
#include "wave/material.hpp"

namespace ecocap::wave {

/// Model of the transducer-to-transducer frequency response of a concrete
/// block (paper §3.3, Fig. 5): a 100 V sinusoid is driven into one face
/// through a 45-degree prism and the received amplitude is measured on the
/// opposite face while sweeping 20-400 kHz.
///
/// The response is the product of three physical factors:
///  * the transmitting/receiving PZT electromechanical resonance (disc
///    thickness mode at ~230 kHz, quality factor Q),
///  * material coupling (denser, higher-strength concrete conducts elastic
///    waves better — the Fig. 5 finding that UHPC/UHPFRC dwarf NC),
///  * path attenuation exp(-alpha(f) * thickness) with the scattering knee
///    just above the carrier band causing the steep high-side roll-off.
class ConcreteFrequencyResponse {
 public:
  /// @param material concrete under test
  /// @param thickness propagation path length (m)
  /// @param pzt_resonance transducer resonant frequency (Hz)
  /// @param pzt_q transducer quality factor
  ConcreteFrequencyResponse(Material material, Real thickness,
                            Real pzt_resonance = 230.0e3, Real pzt_q = 5.0);

  /// Received amplitude (mV) when driving at `frequency` with `drive_volts`
  /// peak voltage (the paper uses 100 V).
  Real amplitude_mv(Real frequency, Real drive_volts = 100.0) const;

  /// Dimensionless channel gain |H(f)| (amplitude out / amplitude in at the
  /// mechanical interface). Used by the channel simulator as the spectral
  /// shaping of the concrete path.
  Real gain(Real frequency) const;

  /// Frequency of the maximum response over [f_lo, f_hi] by dense scan.
  Real resonant_frequency(Real f_lo = 20.0e3, Real f_hi = 400.0e3) const;

  const Material& material() const { return material_; }
  Real thickness() const { return thickness_; }
  Real pzt_resonance() const { return pzt_resonance_; }

 private:
  Material material_;
  Real thickness_;
  Real pzt_resonance_;
  Real pzt_q_;
};

}  // namespace ecocap::wave
