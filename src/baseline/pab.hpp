#pragma once

#include "channel/link_budget.hpp"
#include "channel/snr_models.hpp"
#include "channel/structures.hpp"

namespace ecocap::baseline {

using dsp::Real;

/// The PAB underwater piezo-acoustic backscatter baseline (Jang & Adib,
/// SIGCOMM'19), which the paper compares against in Figs. 12, 15 and 16.
/// PAB operates at 15 kHz in water — a single-mode (P-only) medium — with a
/// narrowband transducer and an envelope-threshold decoder.
struct PabSystem {
  Real carrier = 15.0e3;  // Hz
  /// Decoder implementation penalty vs the coherent ML FM0 reader: the
  /// Fig. 15 curves show PAB needing ~3 dB more SNR for the same BER.
  Real decoder_penalty_db = 3.0;

  /// Uplink SNR vs bitrate model (knee ~2.6 kHz; Fig. 16's 3 kbps limit).
  channel::UplinkSnrModel snr_model() const {
    return channel::UplinkSnrModel::pab();
  }

  /// The two pools PAB was evaluated in (Fig. 12 comparison curves).
  static channel::Structure pool1() { return channel::structures::pab_pool1(); }
  static channel::Structure pool2() { return channel::structures::pab_pool2(); }

  /// Power-up link budget in a pool.
  channel::LinkBudget link_budget(const channel::Structure& pool) const {
    return channel::LinkBudget(pool, /*activation_voltage=*/0.5,
                               /*hra_gain=*/1.0);
  }

  /// BER at a given SNR through the PAB decode chain.
  Real ber(Real snr_db) const {
    return channel::fm0_ber(snr_db, decoder_penalty_db);
  }
};

/// The U2B ultra-wideband underwater backscatter baseline (Ghaffarivardavagh
/// et al., SIGCOMM'20): piezoelectric metamaterials give a much wider
/// usable band at slightly lower peak SNR, overtaking EcoCapsule above
/// ~9 kbps in Fig. 16.
struct U2bSystem {
  channel::UplinkSnrModel snr_model() const {
    return channel::UplinkSnrModel::u2b();
  }
};

}  // namespace ecocap::baseline
