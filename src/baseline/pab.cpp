#include "baseline/pab.hpp"

// Header-only definitions; this translation unit anchors the library.
namespace ecocap::baseline {}
