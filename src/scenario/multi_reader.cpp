#include "scenario/multi_reader.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>

#include "channel/structures.hpp"
#include "core/inventory_session.hpp"
#include "dsp/serialize.hpp"

namespace ecocap::scenario {

namespace {

constexpr int kSchemes = 3;  // 0 uncoordinated, 1 tdma, 2 lbt
constexpr int kContentionWindow = 8;
const std::array<const char*, kSchemes> kSchemeNames{"uncoordinated", "tdma",
                                                     "lbt"};

struct Progress {
  std::uint64_t slot = 0;  // global cursor in [0, kSchemes * passes]
  std::array<std::int64_t, kSchemes> delivered{};
  std::array<std::int64_t, kSchemes> read_ok{};
  std::array<std::int64_t, kSchemes> transmissions{};
  std::array<std::int64_t, kSchemes> collisions{};
};

void save_progress(dsp::ser::Writer& w, const Progress& p) {
  w.u64("multi.slot", p.slot);
  for (int s = 0; s < kSchemes; ++s) {
    w.i64("multi.delivered", p.delivered[static_cast<std::size_t>(s)]);
    w.i64("multi.read_ok", p.read_ok[static_cast<std::size_t>(s)]);
    w.i64("multi.transmissions", p.transmissions[static_cast<std::size_t>(s)]);
    w.i64("multi.collisions", p.collisions[static_cast<std::size_t>(s)]);
  }
}

void load_progress(dsp::ser::Reader& r, Progress& p) {
  p.slot = r.u64("multi.slot");
  for (int s = 0; s < kSchemes; ++s) {
    p.delivered[static_cast<std::size_t>(s)] = r.i64("multi.delivered");
    p.read_ok[static_cast<std::size_t>(s)] = r.i64("multi.read_ok");
    p.transmissions[static_cast<std::size_t>(s)] = r.i64("multi.transmissions");
    p.collisions[static_cast<std::size_t>(s)] = r.i64("multi.collisions");
  }
}

}  // namespace

MultiReaderRunner::MultiReaderRunner(const ScenarioScript& script,
                                     const RunControl& control)
    : script_(script), control_(control) {}

ScenarioOutcome MultiReaderRunner::run(bool from_checkpoint) {
  const auto passes = static_cast<std::uint64_t>(std::max(script_.passes, 1));
  const std::uint64_t total_slots = kSchemes * passes;

  // Builds the victim reader's session for one scheme: scheme k is trial k
  // of the script seed, so schemes are independent, order-insensitive
  // trials.
  const auto make_session = [&](int scheme) {
    core::InventorySession::Config cfg;
    cfg.structure = channel::structures::s3_common_wall();
    cfg.tx_voltage = 200.0;
    cfg.snr_at_contact_db = script_.snr_at_contact_db;
    cfg.inventory.q = 3;
    cfg.inventory.retry.enabled = script_.retry;
    cfg.seed = dsp::trial_seed(script_.seed, 0x900 + scheme);
    core::InventorySession session(cfg);
    for (int i = 0; i < script_.capsules; ++i) {
      core::DeployedNode n;
      n.node_id = static_cast<std::uint16_t>(0x300 + i);
      n.distance = 0.4 + 0.5 * static_cast<Real>(i);
      session.deploy(n);
    }
    return session;
  };

  Progress p;
  // The LBT coordinator: one shared backoff stream all readers draw from,
  // in reader order — a pure function of (seed, draw index), serialized in
  // the checkpoint so resumed slots continue the exact stream.
  dsp::Rng coordinator(dsp::trial_seed(script_.seed, 0xc0de));
  std::optional<core::InventorySession> session;

  if (from_checkpoint) {
    const auto content = dsp::ser::read_file(control_.checkpoint_path);
    if (!content) {
      throw std::runtime_error("scenario resume: cannot read " +
                               control_.checkpoint_path);
    }
    dsp::ser::Reader r(*content, kScenarioCheckpointHeader);
    if (r.str("scenario.name") != script_.name ||
        r.u64("scenario.seed") != script_.seed ||
        r.str("scenario.mode") != "multi_reader" ||
        r.u64("scenario.passes") != passes) {
      throw std::runtime_error(
          "scenario resume: checkpoint was written by a different script");
    }
    load_progress(r, p);
    r.rng("multi.coordinator", coordinator);
    if (r.u64("multi.has_session") != 0) {
      // Mid-scheme kill: rebuild the scheme's session and restore its
      // stream state. At a scheme boundary there is no session record and
      // the loop constructs a fresh one, exactly as an unkilled run would.
      session.emplace(make_session(static_cast<int>(p.slot / passes)));
      session->load(r);
    }
  }

  const auto write_checkpoint = [&]() {
    if (control_.checkpoint_path.empty()) return;
    dsp::ser::Writer w(kScenarioCheckpointHeader);
    w.str("scenario.name", script_.name);
    w.u64("scenario.seed", script_.seed);
    w.str("scenario.mode", "multi_reader");
    w.u64("scenario.passes", passes);
    save_progress(w, p);
    w.rng("multi.coordinator", coordinator);
    w.u64("multi.has_session", session ? 1 : 0);
    if (session) session->save(w);
    if (!dsp::ser::atomic_write_file(control_.checkpoint_path, w.payload())) {
      throw std::runtime_error("scenario checkpoint: cannot write " +
                               control_.checkpoint_path);
    }
  };

  const std::vector<std::uint8_t> sensor_ids{
      static_cast<std::uint8_t>(node::SensorId::kAcceleration),
      static_cast<std::uint8_t>(node::SensorId::kStress)};
  const int readers = std::max(script_.readers, 2);

  ScenarioOutcome out;
  out.name = script_.name;
  out.mode = Mode::kMultiReader;

  while (p.slot < total_slots) {
    const auto scheme = static_cast<int>(p.slot / passes);
    const std::uint64_t slot = p.slot % passes;
    if (slot == 0 && !session) session.emplace(make_session(scheme));

    bool transmit = false;
    bool interfered = false;
    switch (scheme) {
      case 0:  // uncoordinated: everyone keys up every slot
        transmit = true;
        interfered = true;
        break;
      case 1:  // tdma: round-robin slot ownership, the victim owns slot 0
        transmit = (slot % static_cast<std::uint64_t>(readers) == 0);
        interfered = false;
        break;
      default: {  // lbt: shared backoff draws, strict minimum wins clean
        std::uint64_t mine = 0, best_other = kContentionWindow;
        for (int rd = 0; rd < readers; ++rd) {
          const std::uint64_t draw = coordinator.index(kContentionWindow);
          if (rd == 0) mine = draw;
          else best_other = std::min(best_other, draw);
        }
        transmit = mine <= best_other;
        interfered = (mine == best_other);  // tie: both key up, collide
        break;
      }
    }

    if (transmit) {
      core::InventorySession::InterferenceSpec spec;
      spec.active = interfered;
      spec.separation_m = script_.reader_separation_m;
      spec.carrier_offset_hz = script_.carrier_offset_hz;
      session->set_interference(spec);
      const reader::InventoryResult res = session->collect(sensor_ids);
      const auto s = static_cast<std::size_t>(scheme);
      p.transmissions[s]++;
      if (interfered) p.collisions[s]++;
      p.delivered[s] +=
          static_cast<std::int64_t>(res.inventoried_ids.size());
      p.read_ok[s] += res.stats.read_ok;
    }

    ++p.slot;
    if (p.slot % passes == 0) session.reset();  // scheme finished
    write_checkpoint();
    if (control_.stop_after_units > 0 && p.slot >= control_.stop_after_units &&
        p.slot < total_slots) {
      out.completed = false;  // simulated crash mid-campaign
      return out;
    }
  }

  const Real denom = static_cast<Real>(script_.capsules) *
                     static_cast<Real>(passes);
  for (int s = 0; s < kSchemes; ++s) {
    const auto i = static_cast<std::size_t>(s);
    const Real delivery =
        denom > 0.0 ? static_cast<Real>(p.delivered[i]) / denom : 0.0;
    out.trace.push_back(delivery);
    const std::string prefix = kSchemeNames[i];
    out.scalars["delivery_" + prefix] = delivery;
    out.scalars["read_ok_" + prefix] = static_cast<Real>(p.read_ok[i]);
    out.scalars["transmissions_" + prefix] =
        static_cast<Real>(p.transmissions[i]);
    out.scalars["collisions_" + prefix] = static_cast<Real>(p.collisions[i]);
  }
  out.scalars["readers"] = static_cast<Real>(readers);
  out.scalars["passes"] = static_cast<Real>(passes);
  return out;
}

}  // namespace ecocap::scenario
