#include "scenario/mobile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/structures.hpp"
#include "core/inventory_session.hpp"
#include "dsp/serialize.hpp"

namespace ecocap::scenario {

namespace {

channel::Structure structure_by_name(const std::string& name) {
  if (name == "s1") return channel::structures::s1_slab();
  if (name == "s2") return channel::structures::s2_column();
  if (name == "s3") return channel::structures::s3_common_wall();
  if (name == "s4") return channel::structures::s4_protective_wall();
  throw std::runtime_error("mobile scenario: unknown structure " + name);
}

/// One delivered reading in the checkpoint replay log (rebuilds the
/// telemetry store on resume).
struct LoggedReading {
  std::uint64_t store_node = 0;
  std::uint32_t t_sec = 0;
  Real value = 0.0;
};

struct Progress {
  std::size_t next_stop = 0;
  std::uint32_t clock_sec = 0;  // route clock at the next stop's arrival
  // Accumulated route totals.
  std::int64_t delivered = 0;
  std::int64_t read_ok = 0;
  std::int64_t giveups = 0;
  std::int64_t reachable = 0;
  std::vector<Real> trace;  // per-stop [reachable, delivered, read_ok]
  std::vector<LoggedReading> log;
};

void save_progress(dsp::ser::Writer& w, const Progress& p) {
  w.u64("mobile.next_stop", p.next_stop);
  w.u64("mobile.clock_sec", p.clock_sec);
  w.i64("mobile.delivered", p.delivered);
  w.i64("mobile.read_ok", p.read_ok);
  w.i64("mobile.giveups", p.giveups);
  w.i64("mobile.reachable", p.reachable);
  w.real_vec("mobile.trace", p.trace);
  w.u64("mobile.log", p.log.size());
  for (const auto& lr : p.log) {
    w.u64("log.node", lr.store_node);
    w.u64("log.t_sec", lr.t_sec);
    w.real("log.value", lr.value);
  }
}

void load_progress(dsp::ser::Reader& r, Progress& p) {
  p.next_stop = r.u64("mobile.next_stop");
  p.clock_sec = static_cast<std::uint32_t>(r.u64("mobile.clock_sec"));
  p.delivered = r.i64("mobile.delivered");
  p.read_ok = r.i64("mobile.read_ok");
  p.giveups = r.i64("mobile.giveups");
  p.reachable = r.i64("mobile.reachable");
  p.trace = r.real_vec("mobile.trace");
  const std::uint64_t n = r.u64("mobile.log");
  p.log.clear();
  p.log.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LoggedReading lr;
    lr.store_node = r.u64("log.node");
    lr.t_sec = static_cast<std::uint32_t>(r.u64("log.t_sec"));
    lr.value = r.real("log.value");
    p.log.push_back(lr);
  }
}

constexpr Real kTravelSeconds = 60.0;  // between consecutive stops

}  // namespace

MobileRunner::MobileRunner(const ScenarioScript& script,
                           const RunControl& control)
    : script_(script), control_(control) {}

ScenarioOutcome MobileRunner::run(bool from_checkpoint) {
  Progress p;
  if (from_checkpoint) {
    const auto content = dsp::ser::read_file(control_.checkpoint_path);
    if (!content) {
      throw std::runtime_error("scenario resume: cannot read " +
                               control_.checkpoint_path);
    }
    dsp::ser::Reader r(*content, kScenarioCheckpointHeader);
    if (r.str("scenario.name") != script_.name ||
        r.u64("scenario.seed") != script_.seed ||
        r.str("scenario.mode") != "mobile" ||
        r.u64("scenario.stops") != script_.route.size()) {
      throw std::runtime_error(
          "scenario resume: checkpoint was written by a different script");
    }
    load_progress(r, p);
  }

  const auto write_checkpoint = [&]() {
    if (control_.checkpoint_path.empty()) return;
    dsp::ser::Writer w(kScenarioCheckpointHeader);
    w.str("scenario.name", script_.name);
    w.u64("scenario.seed", script_.seed);
    w.str("scenario.mode", "mobile");
    w.u64("scenario.stops", script_.route.size());
    save_progress(w, p);
    if (!dsp::ser::atomic_write_file(control_.checkpoint_path, w.payload())) {
      throw std::runtime_error("scenario checkpoint: cannot write " +
                               control_.checkpoint_path);
    }
  };

  // Telemetry store sized for the whole route; resumed runs replay the
  // delivered-readings log so store-derived aggregates stay byte-identical.
  std::size_t total_nodes = 0;
  for (const auto& stop : script_.route) {
    total_nodes += static_cast<std::size_t>(std::max(stop.nodes, 0));
  }
  fleet::TelemetryStore::Config store_cfg;
  store_cfg.nodes = total_nodes;
  fleet::TelemetryStore store(store_cfg);
  for (const auto& lr : p.log) {
    store.append(static_cast<std::size_t>(lr.store_node), lr.t_sec,
                 static_cast<float>(lr.value));
  }

  ScenarioOutcome out;
  out.name = script_.name;
  out.mode = Mode::kMobile;

  const std::vector<std::uint8_t> sensor_ids{
      static_cast<std::uint8_t>(node::SensorId::kAcceleration),
      static_cast<std::uint8_t>(node::SensorId::kStress)};

  for (std::size_t i = p.next_stop; i < script_.route.size(); ++i) {
    const RouteStop& stop = script_.route[i];

    core::InventorySession::Config cfg;
    cfg.structure = structure_by_name(stop.structure);
    cfg.tx_voltage = stop.tx_voltage;
    cfg.snr_at_contact_db = stop.snr_at_contact_db;
    cfg.inventory.q = 3;
    cfg.inventory.retry.enabled = script_.retry;
    // Stop i is trial i of the route seed: independent of every other stop.
    cfg.seed = dsp::trial_seed(script_.seed, i);
    core::InventorySession session(cfg);

    std::size_t store_base = 0;
    for (std::size_t j = 0; j < i; ++j) {
      store_base += static_cast<std::size_t>(std::max(script_.route[j].nodes, 0));
    }
    int reachable = 0;
    for (int n = 0; n < stop.nodes; ++n) {
      core::DeployedNode dn;
      dn.node_id = static_cast<std::uint16_t>(0x200 + n);
      dn.distance = stop.first_m + stop.spacing_m * static_cast<Real>(n);
      session.deploy(dn);
      if (session.node_reachable(dn.distance)) ++reachable;
    }

    // Dwell-time scheduling: the van affords floor(dwell / pass time)
    // passes at this stop, at least one.
    const int passes = std::max(
        1, static_cast<int>(stop.dwell_minutes * 60.0 / script_.pass_seconds));

    std::int64_t stop_delivered = 0, stop_read_ok = 0;
    for (int pass = 0; pass < passes; ++pass) {
      const auto t_sec = static_cast<std::uint32_t>(
          p.clock_sec +
          static_cast<std::uint32_t>(static_cast<Real>(pass) *
                                     script_.pass_seconds));
      const reader::InventoryResult res = session.collect(sensor_ids);
      stop_read_ok += res.stats.read_ok;
      p.giveups += res.stats.giveups;
      stop_delivered += static_cast<std::int64_t>(res.inventoried_ids.size());
      for (const auto& reading : res.readings) {
        const auto node_index =
            static_cast<std::size_t>(reading.node_id - 0x200);
        if (node_index >= static_cast<std::size_t>(stop.nodes)) continue;
        LoggedReading lr;
        lr.store_node = store_base + node_index;
        lr.t_sec = t_sec;
        lr.value = reading.value;
        store.append(static_cast<std::size_t>(lr.store_node), lr.t_sec,
                     static_cast<float>(lr.value));
        p.log.push_back(lr);
      }
    }
    p.delivered += stop_delivered;
    p.read_ok += stop_read_ok;
    p.reachable += reachable;
    p.trace.push_back(static_cast<Real>(reachable));
    p.trace.push_back(static_cast<Real>(stop_delivered));
    p.trace.push_back(static_cast<Real>(stop_read_ok));

    p.clock_sec += static_cast<std::uint32_t>(
        stop.dwell_minutes * 60.0 + kTravelSeconds);
    p.next_stop = i + 1;
    write_checkpoint();

    if (control_.stop_after_units > 0 &&
        p.next_stop >= control_.stop_after_units &&
        p.next_stop < script_.route.size()) {
      out.completed = false;  // simulated crash mid-route
      return out;
    }
  }

  for (std::size_t n = 0; n < store.nodes(); ++n) store.flush(n);
  std::vector<float> scratch;
  const auto health = store.fleet_percentiles(scratch);

  out.trace = p.trace;
  out.scalars["stops"] = static_cast<Real>(script_.route.size());
  out.scalars["reachable_nodes"] = static_cast<Real>(p.reachable);
  out.scalars["delivered"] = static_cast<Real>(p.delivered);
  out.scalars["read_ok"] = static_cast<Real>(p.read_ok);
  out.scalars["giveups"] = static_cast<Real>(p.giveups);
  out.scalars["store_appends"] = static_cast<Real>(store.total_appends());
  out.scalars["store_nodes_reporting"] =
      static_cast<Real>(health.nodes_reporting);
  out.scalars["store_p50"] = static_cast<Real>(health.p50);
  out.scalars["store_p95"] = static_cast<Real>(health.p95);
  return out;
}

}  // namespace ecocap::scenario
