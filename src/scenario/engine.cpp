#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>

#include "scenario/mobile.hpp"
#include "scenario/multi_reader.hpp"
#include "shm/modal.hpp"
#include "shm/monitor.hpp"

namespace ecocap::scenario {

Real stiffness_at(const ScenarioScript& s, Real t_days) {
  Real k = 1.0;
  for (const auto& e : s.seismic) {
    if (e.stiffness_loss <= 0.0 || t_days < e.at_day) continue;
    // The loss accrues linearly over the shaking window (cracks opening as
    // the motion cycles the structure) and is permanent afterwards.
    const Real dur = e.duration_hours / 24.0;
    const Real frac =
        dur > 0.0 ? std::min((t_days - e.at_day) / dur, 1.0) : 1.0;
    k *= 1.0 - e.stiffness_loss * frac;
  }
  for (const auto& c : s.cracks) {
    if (c.rate_per_day <= 0.0) continue;
    const Real exposure = std::clamp(t_days - c.at_day, 0.0, c.duration_days);
    if (exposure > 0.0) {
      // Continuous compounding of the per-day loss rate.
      k *= std::exp(exposure * std::log(1.0 - c.rate_per_day));
    }
  }
  return k;
}

Real occupancy_factor_at(const ScenarioScript& s, Real t_days) {
  Real factor = 1.0;
  for (const auto& e : s.surges) {
    const Real end = e.at_day + e.duration_hours / 24.0;
    if (t_days >= e.at_day && t_days < end) factor *= e.factor;
  }
  return factor;
}

Real ground_accel_at(const ScenarioScript& s, Real t_days) {
  Real g = 0.0;
  for (const auto& e : s.seismic) {
    if (e.pga <= 0.0 || e.duration_hours <= 0.0) continue;
    const Real dur = e.duration_hours / 24.0;
    const Real x = (t_days - e.at_day) / dur;
    if (x >= 0.0 && x < 1.0) {
      // Mainshock-plus-coda envelope: strongest at onset, decayed to ~5%
      // of the peak by the end of the window.
      g += e.pga * std::exp(-3.0 * x);
    }
  }
  return g;
}

fault::FaultPlan poll_fault_at(const ScenarioScript& s, Real t_days) {
  Real worst = 0.0;
  for (const auto& f : s.faults) {
    const Real end = f.at_day + f.duration_hours / 24.0;
    if (t_days >= f.at_day && t_days < end) {
      worst = std::max(worst, f.intensity);
    }
  }
  fault::FaultPlan plan;
  if (worst > 0.0) plan = fault::FaultPlan::at_intensity(worst);
  const Real g = ground_accel_at(s, t_days);
  if (g > 0.0) {
    plan = fault::FaultPlan::max_of(plan, fault::FaultPlan::seismic_shaking(g));
  }
  return plan;
}

char structural_grade(Real stiffness_factor) {
  const Real loss = 1.0 - stiffness_factor;
  if (loss < 0.02) return 'A';
  if (loss < 0.05) return 'B';
  if (loss < 0.10) return 'C';
  if (loss < 0.20) return 'D';
  if (loss < 0.35) return 'E';
  return 'F';
}

char worse_grade(char a, char b) { return a > b ? a : b; }

ScenarioEngine::ScenarioEngine(ScenarioScript script, RunControl control)
    : script_(std::move(script)), control_(std::move(control)) {}

ScenarioOutcome ScenarioEngine::run() {
  switch (script_.mode) {
    case Mode::kStructural: return run_structural(false);
    case Mode::kMobile: return MobileRunner(script_, control_).run(false);
    case Mode::kMultiReader:
      return MultiReaderRunner(script_, control_).run(false);
  }
  return {};
}

ScenarioOutcome ScenarioEngine::resume() {
  switch (script_.mode) {
    case Mode::kStructural: return run_structural(true);
    case Mode::kMobile: return MobileRunner(script_, control_).run(true);
    case Mode::kMultiReader:
      return MultiReaderRunner(script_, control_).run(true);
  }
  return {};
}

ScenarioOutcome ScenarioEngine::run_structural(bool from_checkpoint) {
  shm::MonitoringCampaign::Config cfg;
  cfg.days = script_.days;
  cfg.step_minutes = script_.step_minutes;
  cfg.seed = script_.seed;
  cfg.capsule_poll_hours = script_.poll_hours;
  cfg.capsule_count = script_.capsules;
  cfg.capsule_snr_at_contact_db = script_.snr_at_contact_db;
  cfg.bridge.region = script_.region;
  cfg.bridge.pedestrians.peak_rate = script_.peak_rate;
  cfg.bridge.pedestrians.social_distancing = script_.social_distancing;
  cfg.retry.enabled = script_.retry;
  cfg.supervisor.enabled = script_.supervised;
  // Scenarios are days long, not a month: a 24 h rolling baseline keeps the
  // anomaly detector responsive at scenario scale.
  cfg.baseline_window =
      static_cast<std::size_t>(24.0 * 60.0 / script_.step_minutes);
  // Scripted weather: scenarios own their storm calendar, so the model's
  // default July cyclone is replaced wholesale.
  cfg.weather.storms.clear();
  for (const auto& st : script_.storms) {
    cfg.weather.storms.push_back(
        shm::StormEvent{st.at_day, st.at_day + st.duration_days, st.peak_wind});
  }
  cfg.checkpoint_path = control_.checkpoint_path;
  cfg.checkpoint_hours = control_.checkpoint_hours;
  cfg.stop_after_steps = control_.stop_after_units;

  // The hook captures the script by value and derives everything from
  // t_days — the purity contract MonitoringCampaign::ModulationHook needs.
  const ScenarioScript script = script_;
  const bool overrides_fault = !script.faults.empty() || !script.seismic.empty();
  cfg.modulate = [script, overrides_fault](Real t_days) {
    shm::MonitoringCampaign::StepModifiers m;
    m.load.stiffness_factor = stiffness_at(script, t_days);
    m.load.occupancy_factor = occupancy_factor_at(script, t_days);
    m.load.ground_accel = ground_accel_at(script, t_days);
    if (overrides_fault) {
      // Always set the plan (possibly empty) so a window that just closed
      // actually releases the session back to fault-free polls.
      m.override_poll_fault = true;
      m.poll_fault = poll_fault_at(script, t_days);
    }
    return m;
  };

  shm::MonitoringCampaign campaign(cfg);
  const shm::CampaignResult res =
      from_checkpoint ? campaign.resume() : campaign.run();

  ScenarioOutcome out;
  out.name = script_.name;
  out.mode = Mode::kStructural;
  out.completed = res.completed;
  if (!res.completed) return out;  // killed mid-run; resume() finishes it

  // Hourly combined health timeline, post-hoc from the checkpointed PAO
  // series + the pure stiffness function — no hook-accumulated state, so a
  // resumed run reconstructs it bit-identically.
  const auto per_hour =
      static_cast<std::size_t>(60.0 / script_.step_minutes);
  for (std::size_t k = 0; k < res.pao.size(); k += std::max<std::size_t>(per_hour, 1)) {
    const Real t_days =
        static_cast<Real>(k) * script_.step_minutes / (24.0 * 60.0);
    const char pao_grade =
        shm::health_letter(shm::grade_pao(res.pao.at(k), script_.region));
    const char struct_grade = structural_grade(stiffness_at(script_, t_days));
    const char combined = worse_grade(pao_grade, struct_grade);
    out.trace.push_back(static_cast<Real>(combined - 'A'));
    if (out.grade_path.empty() || out.grade_path.back() != combined) {
      out.grade_path.push_back(combined);
    }
  }

  // Modal cross-check: synthesize the structure's vibration before and
  // after the scenario (f ~ sqrt(k)) and run the damage assessor over it.
  const Real k_final = stiffness_at(script_, script_.days);
  constexpr Real kBaseHz = 2.0, kFs = 50.0, kSeconds = 120.0;
  const auto baseline = shm::synthesize_vibration(
      kBaseHz, 0.02, kFs, kSeconds, dsp::trial_seed(script_.seed, 101));
  const auto current = shm::synthesize_vibration(
      kBaseHz * std::sqrt(k_final), 0.02, kFs, kSeconds,
      dsp::trial_seed(script_.seed, 102));
  const shm::DamageIndicator damage =
      shm::assess_damage(baseline, current, kFs, 0.5, 5.0);

  out.scalars["final_stiffness"] = k_final;
  out.scalars["modal_frequency_shift"] = damage.frequency_shift;
  out.scalars["modal_stiffness_change"] = damage.stiffness_change;
  out.scalars["modal_damaged"] = damage.damaged ? 1.0 : 0.0;
  out.scalars["limit_violations"] = static_cast<Real>(res.limit_violations);
  out.scalars["anomaly_windows"] = static_cast<Real>(res.anomalies.size());
  out.scalars["min_pao"] = res.pao.stats().min;
  out.scalars["capsule_read_ok"] =
      static_cast<Real>(res.inventory_totals.read_ok);
  out.scalars["capsule_giveups"] =
      static_cast<Real>(res.inventory_totals.giveups);
  out.scalars["capsule_retries"] =
      static_cast<Real>(res.inventory_totals.retries);
  out.scalars["capsule_timeouts"] =
      static_cast<Real>(res.inventory_totals.timeouts);
  out.scalars["grade_levels"] = static_cast<Real>(out.grade_path.size());
  return out;
}

}  // namespace ecocap::scenario
