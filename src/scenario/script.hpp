#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/types.hpp"
#include "shm/health.hpp"

namespace ecocap::scenario {

using dsp::Real;

/// Which runner a script drives (see engine.hpp).
enum class Mode { kStructural, kMobile, kMultiReader };

/// A ground-motion event: shaking for `duration_hours` starting at
/// `at_day`, with peak ground acceleration `pga` (m/s^2) decaying
/// exponentially over the window, plus a permanent stiffness loss
/// (fraction of k) the structure keeps after the event.
struct SeismicEvent {
  Real at_day = 0.0;
  Real duration_hours = 1.0;
  Real pga = 0.5;
  Real stiffness_loss = 0.0;
};

/// A progressive crack-growth window: from `at_day` the structure loses
/// stiffness at `rate_per_day` (compounded continuously) for
/// `duration_days` — the slow corrosion/cracking pathway the paper's
/// monitoring exists to catch before it becomes a Champlain Towers.
struct CrackEvent {
  Real at_day = 0.0;
  Real duration_days = 1.0;
  Real rate_per_day = 0.02;
};

/// A pedestrian-load surge (concert letting out, an evacuation): the
/// arrival rate multiplies by `factor` for `duration_hours`.
struct SurgeEvent {
  Real at_day = 0.0;
  Real duration_hours = 2.0;
  Real factor = 5.0;
};

/// A scripted storm window, replacing the weather model's default storm
/// calendar so short scenarios control their own weather.
struct StormWindow {
  Real at_day = 0.0;
  Real duration_days = 1.0;
  Real peak_wind = 24.0;
};

/// A site-impairment window: during it the capsule polls run under
/// fault::FaultPlan::at_intensity(intensity).
struct FaultWindow {
  Real at_day = 0.0;
  Real duration_hours = 6.0;
  Real intensity = 0.5;
};

/// One stop of a mobile reader's drive-by route (mode mobile). Each stop
/// is an independent structure with its own capsule string, link budget
/// (tx voltage + contact SNR) and dwell time; the number of inventory
/// passes the reader affords there is dwell_minutes * 60 / pass_seconds.
struct RouteStop {
  std::string structure = "s3";  // s1 | s2 | s3 | s4
  int nodes = 4;
  Real spacing_m = 0.6;       // capsule pitch along the structure
  Real first_m = 0.4;         // first capsule's depth
  Real dwell_minutes = 2.0;
  Real tx_voltage = 200.0;
  Real snr_at_contact_db = 24.0;
};

/// A deterministic, declarative scenario: global knobs plus a typed event
/// timeline, parsed from the line-oriented `.scn` format (see
/// docs/scenarios.md). Everything a run needs is in here — two parses of
/// the same text always drive bit-identical runs.
struct ScenarioScript {
  std::string name;
  Mode mode = Mode::kStructural;

  // -- shared knobs ---------------------------------------------------------
  Real days = 2.0;             // structural campaign length
  Real step_minutes = 5.0;
  std::uint64_t seed = 2021;
  Real poll_hours = 3.0;       // capsule interrogation cadence
  int capsules = 5;
  bool supervised = false;
  bool retry = false;
  shm::Region region = shm::Region::kHongKong;
  Real peak_rate = 40.0;       // pedestrians/minute at the commute peak
  Real social_distancing = 0.6;
  Real snr_at_contact_db = 24.0;

  // -- multi-reader knobs ---------------------------------------------------
  int readers = 2;             // co-located readers sharing the structure
  int passes = 40;             // inventory slots compared per scheme
  Real reader_separation_m = 6.0;
  Real carrier_offset_hz = 2000.0;
  Real pass_seconds = 2.0;     // mobile: seconds one inventory pass costs

  // -- event timeline -------------------------------------------------------
  std::vector<SeismicEvent> seismic;
  std::vector<CrackEvent> cracks;
  std::vector<SurgeEvent> surges;
  std::vector<StormWindow> storms;
  std::vector<FaultWindow> faults;
  std::vector<RouteStop> route;  // mobile mode

  /// Parse the `.scn` text. Throws std::runtime_error naming the offending
  /// line on any unknown directive, unknown key, or malformed value.
  static ScenarioScript parse(const std::string& text);

  /// Read and parse a script file. Throws std::runtime_error when the file
  /// cannot be read or fails to parse.
  static ScenarioScript load(const std::string& path);
};

}  // namespace ecocap::scenario
