#pragma once

#include "fleet/telemetry_store.hpp"
#include "scenario/engine.hpp"

namespace ecocap::scenario {

/// Drive-by inventory (mode mobile): a reader van visits each route stop in
/// order, powers the stop's capsule string under that stop's own link
/// budget (tx voltage + contact SNR through the structure's range law), and
/// runs as many inventory passes as the dwell time affords. Delivered
/// readings stream into a fleet::TelemetryStore keyed by (stop, capsule),
/// the same ingest path the city-scale fleet engine uses.
///
/// Determinism: stop i's session is seeded trial_seed(script.seed, i), so
/// stops are independent trials — their outcomes depend only on the script,
/// never on execution history. Checkpoints are written after every stop and
/// carry the delivered-readings replay log, so a killed-and-resumed route
/// rebuilds the telemetry store (and every aggregate) byte-identically.
class MobileRunner {
 public:
  MobileRunner(const ScenarioScript& script, const RunControl& control);

  ScenarioOutcome run(bool from_checkpoint);

 private:
  const ScenarioScript& script_;
  const RunControl& control_;
};

}  // namespace ecocap::scenario
