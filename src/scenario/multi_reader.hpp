#pragma once

#include "scenario/engine.hpp"

namespace ecocap::scenario {

/// Co-located reader coordination (mode multi_reader): `readers` readers
/// share one wall, their carriers mutually interfering through the
/// structure (channel::ReaderInterference). The runner scores the victim
/// reader's capsule delivery over the same `passes` inventory slots under
/// three schemes, run back to back:
///
///  * uncoordinated — everyone transmits every slot; the victim's nodes
///    decode against the neighbour's carrier (SINR), which usually buries
///    the deep ones;
///  * tdma — slots are owned round-robin; the victim transmits clean in
///    its 1/readers share of slots and sits out the rest;
///  * lbt — listen-before-talk: every reader draws a backoff per slot from
///    a shared seeded coordinator stream, the strict minimum wins the slot
///    clean, ties collide (both transmit, interference on).
///
/// Delivery is read_ok / (capsules * passes), so schemes are compared over
/// identical wall-clock. Checkpoints land after every slot and carry the
/// scheme/slot cursor, per-scheme counters, coordinator RNG, and the live
/// session state, so a kill anywhere resumes byte-identically.
class MultiReaderRunner {
 public:
  MultiReaderRunner(const ScenarioScript& script, const RunControl& control);

  ScenarioOutcome run(bool from_checkpoint);

 private:
  const ScenarioScript& script_;
  const RunControl& control_;
};

}  // namespace ecocap::scenario
