#pragma once

#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "scenario/script.hpp"

namespace ecocap::scenario {

/// Aggregate outcome of one scenario run: a named scalar map plus a flat
/// timeline trace, both suitable for FNV-hashed golden pinning. Every field
/// is a pure function of the script, so two runs of the same script — at
/// any ECOCAP_THREADS, killed and resumed or not — produce bit-identical
/// outcomes.
struct ScenarioOutcome {
  std::string name;
  Mode mode = Mode::kStructural;
  /// False when the run stopped early at RunControl::stop_after_units (the
  /// simulated-crash hook); resume() finishes it.
  bool completed = true;
  /// Mode-specific aggregates (delivery ratios, stiffness, violations...).
  std::map<std::string, Real> scalars;
  /// Mode-specific timeline: structural = hourly combined health grade
  /// (0=A..5=F); mobile = per-stop [reachable, delivered, read_ok];
  /// multi-reader = per-scheme delivery ratio.
  std::vector<Real> trace;
  /// Structural mode: the distinct combined grades in first-seen order
  /// (e.g. "ABCD" for a progressive-damage scenario). Empty otherwise.
  std::string grade_path;
};

/// Crash-safety controls, orthogonal to the script (the script defines the
/// simulated world; this defines how the process runs it).
struct RunControl {
  /// Empty disables checkpointing. Structural mode checkpoints every
  /// `checkpoint_hours` of simulated time; mobile checkpoints after every
  /// route stop; multi-reader after every inventory slot.
  std::string checkpoint_path;
  Real checkpoint_hours = 6.0;
  /// Simulated crash: stop (with a final checkpoint) after this many units
  /// of progress — structural steps, mobile stops, or multi-reader slots.
  /// 0 runs to completion.
  std::size_t stop_after_units = 0;
};

/// Header every scenario checkpoint file starts with.
inline constexpr const char* kScenarioCheckpointHeader =
    "ecocap-scenario-checkpoint v1";

// -- pure timeline functions ------------------------------------------------
// These are THE scenario semantics: the runners evaluate them fresh from
// t_days every step, which is what makes killed-and-resumed runs replay the
// exact modifier sequence of uninterrupted ones.

/// Remaining stiffness fraction k/k0 at `t_days`: the product of every
/// seismic event's ramped permanent loss and every crack window's
/// continuously compounded growth. 1.0 before any event.
Real stiffness_at(const ScenarioScript& s, Real t_days);

/// Pedestrian arrival-rate multiplier: product of the factors of every
/// active surge window. 1.0 outside them.
Real occupancy_factor_at(const ScenarioScript& s, Real t_days);

/// Ground acceleration (m/s^2): sum over active seismic events of
/// pga * exp(-3 x), x the elapsed fraction of the shaking window.
Real ground_accel_at(const ScenarioScript& s, Real t_days);

/// Fault plan in force for a capsule poll at `t_days`: the field-wise max
/// of the worst active fault window's at_intensity plan and the seismic
/// shaking plan at the current ground acceleration. Empty outside windows.
fault::FaultPlan poll_fault_at(const ScenarioScript& s, Real t_days);

/// Structural letter grade from remaining stiffness: loss < 2% is A, < 5%
/// B, < 10% C, < 20% D, < 35% E, worse F — the modal-monitoring analogue
/// of the paper's Table 2 serviceability ladder.
char structural_grade(Real stiffness_factor);

/// Worse (later-alphabet) of two letter grades.
char worse_grade(char a, char b);

/// Deterministic scenario runner: dispatches on the script's mode.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioScript script, RunControl control = {});

  /// Run the scenario from the start.
  ScenarioOutcome run();

  /// Restore the checkpoint at RunControl::checkpoint_path and finish the
  /// run. Throws std::runtime_error when the file is missing, corrupt, or
  /// was written by a different script.
  ScenarioOutcome resume();

  const ScenarioScript& script() const { return script_; }

 private:
  ScenarioOutcome run_structural(bool from_checkpoint);

  ScenarioScript script_;
  RunControl control_;
};

}  // namespace ecocap::scenario
