#include "scenario/script.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ecocap::scenario {

namespace {

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("scenario script line " + std::to_string(line_no) +
                           ": " + what);
}

/// `k=v` pairs after an event keyword, e.g. "at_day=1.0 pga=0.8".
std::map<std::string, std::string> parse_kv(std::istringstream& rest,
                                            int line_no) {
  std::map<std::string, std::string> kv;
  std::string tok;
  while (rest >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
      fail(line_no, "expected key=value, got '" + tok + "'");
    }
    kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

Real to_real(const std::string& v, int line_no) {
  try {
    std::size_t used = 0;
    const Real r = std::stod(v, &used);
    if (used != v.size()) fail(line_no, "trailing junk in number '" + v + "'");
    return r;
  } catch (const std::invalid_argument&) {
    fail(line_no, "bad number '" + v + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, "number out of range '" + v + "'");
  }
}

int to_int(const std::string& v, int line_no) {
  const Real r = to_real(v, line_no);
  const int i = static_cast<int>(r);
  if (static_cast<Real>(i) != r) fail(line_no, "expected integer, got " + v);
  return i;
}

bool to_bool(const std::string& v, int line_no) {
  if (v == "true" || v == "1" || v == "on") return true;
  if (v == "false" || v == "0" || v == "off") return false;
  fail(line_no, "expected boolean, got '" + v + "'");
}

shm::Region to_region(const std::string& v, int line_no) {
  if (v == "us") return shm::Region::kUnitedStates;
  if (v == "hk" || v == "hongkong") return shm::Region::kHongKong;
  if (v == "bangkok") return shm::Region::kBangkok;
  if (v == "manila") return shm::Region::kManila;
  fail(line_no, "unknown region '" + v + "' (us|hk|bangkok|manila)");
}

/// Pull a value out of `kv`, erasing it so leftovers can be rejected.
template <typename F>
auto take(std::map<std::string, std::string>& kv, const std::string& key,
          int line_no, F convert, decltype(convert("", 0)) fallback)
    -> decltype(convert("", 0)) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const auto value = convert(it->second, line_no);
  kv.erase(it);
  return value;
}

void reject_leftovers(const std::map<std::string, std::string>& kv,
                      const std::string& event, int line_no) {
  if (kv.empty()) return;
  fail(line_no, "unknown key '" + kv.begin()->first + "' for event '" + event +
                    "'");
}

}  // namespace

ScenarioScript ScenarioScript::parse(const std::string& text) {
  ScenarioScript s;
  bool named = false;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  const auto real_of = [](const std::string& v, int n) { return to_real(v, n); };
  const auto int_of = [](const std::string& v, int n) { return to_int(v, n); };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line

    if (word == "scenario") {
      if (!(ls >> s.name)) fail(line_no, "scenario needs a name");
      named = true;
    } else if (word == "mode") {
      std::string m;
      if (!(ls >> m)) fail(line_no, "mode needs a value");
      if (m == "structural") s.mode = Mode::kStructural;
      else if (m == "mobile") s.mode = Mode::kMobile;
      else if (m == "multi_reader") s.mode = Mode::kMultiReader;
      else fail(line_no, "unknown mode '" + m + "'");
    } else if (word == "event") {
      std::string kind;
      if (!(ls >> kind)) fail(line_no, "event needs a kind");
      auto kv = parse_kv(ls, line_no);
      if (kind == "seismic") {
        SeismicEvent e;
        e.at_day = take(kv, "at_day", line_no, real_of, e.at_day);
        e.duration_hours =
            take(kv, "duration_hours", line_no, real_of, e.duration_hours);
        e.pga = take(kv, "pga", line_no, real_of, e.pga);
        e.stiffness_loss =
            take(kv, "stiffness_loss", line_no, real_of, e.stiffness_loss);
        s.seismic.push_back(e);
      } else if (kind == "crack") {
        CrackEvent e;
        e.at_day = take(kv, "at_day", line_no, real_of, e.at_day);
        e.duration_days =
            take(kv, "duration_days", line_no, real_of, e.duration_days);
        e.rate_per_day =
            take(kv, "rate_per_day", line_no, real_of, e.rate_per_day);
        s.cracks.push_back(e);
      } else if (kind == "surge") {
        SurgeEvent e;
        e.at_day = take(kv, "at_day", line_no, real_of, e.at_day);
        e.duration_hours =
            take(kv, "duration_hours", line_no, real_of, e.duration_hours);
        e.factor = take(kv, "factor", line_no, real_of, e.factor);
        s.surges.push_back(e);
      } else if (kind == "storm") {
        StormWindow e;
        e.at_day = take(kv, "at_day", line_no, real_of, e.at_day);
        e.duration_days =
            take(kv, "duration_days", line_no, real_of, e.duration_days);
        e.peak_wind = take(kv, "peak_wind", line_no, real_of, e.peak_wind);
        s.storms.push_back(e);
      } else if (kind == "faults") {
        FaultWindow e;
        e.at_day = take(kv, "at_day", line_no, real_of, e.at_day);
        e.duration_hours =
            take(kv, "duration_hours", line_no, real_of, e.duration_hours);
        e.intensity = take(kv, "intensity", line_no, real_of, e.intensity);
        s.faults.push_back(e);
      } else if (kind == "stop") {
        RouteStop e;
        const auto it = kv.find("structure");
        if (it != kv.end()) {
          e.structure = it->second;
          kv.erase(it);
        }
        if (e.structure != "s1" && e.structure != "s2" &&
            e.structure != "s3" && e.structure != "s4") {
          fail(line_no, "unknown structure '" + e.structure + "'");
        }
        e.nodes = take(kv, "nodes", line_no, int_of, e.nodes);
        e.spacing_m = take(kv, "spacing_m", line_no, real_of, e.spacing_m);
        e.first_m = take(kv, "first_m", line_no, real_of, e.first_m);
        e.dwell_minutes =
            take(kv, "dwell_minutes", line_no, real_of, e.dwell_minutes);
        e.tx_voltage = take(kv, "tx_voltage", line_no, real_of, e.tx_voltage);
        e.snr_at_contact_db =
            take(kv, "snr_at_contact_db", line_no, real_of, e.snr_at_contact_db);
        s.route.push_back(e);
      } else {
        fail(line_no, "unknown event kind '" + kind + "'");
      }
      reject_leftovers(kv, kind, line_no);
    } else {
      // Global scalar directive: `key value`.
      std::string value;
      if (!(ls >> value)) fail(line_no, "'" + word + "' needs a value");
      std::string extra;
      if (ls >> extra) fail(line_no, "trailing junk '" + extra + "'");
      if (word == "days") s.days = to_real(value, line_no);
      else if (word == "step_minutes") s.step_minutes = to_real(value, line_no);
      else if (word == "seed")
        s.seed = static_cast<std::uint64_t>(to_real(value, line_no));
      else if (word == "poll_hours") s.poll_hours = to_real(value, line_no);
      else if (word == "capsules") s.capsules = to_int(value, line_no);
      else if (word == "supervised") s.supervised = to_bool(value, line_no);
      else if (word == "retry") s.retry = to_bool(value, line_no);
      else if (word == "region") s.region = to_region(value, line_no);
      else if (word == "peak_rate") s.peak_rate = to_real(value, line_no);
      else if (word == "social_distancing")
        s.social_distancing = to_real(value, line_no);
      else if (word == "snr_at_contact_db")
        s.snr_at_contact_db = to_real(value, line_no);
      else if (word == "readers") s.readers = to_int(value, line_no);
      else if (word == "passes") s.passes = to_int(value, line_no);
      else if (word == "reader_separation_m")
        s.reader_separation_m = to_real(value, line_no);
      else if (word == "carrier_offset_hz")
        s.carrier_offset_hz = to_real(value, line_no);
      else if (word == "pass_seconds") s.pass_seconds = to_real(value, line_no);
      else fail(line_no, "unknown directive '" + word + "'");
    }
  }
  if (!named) throw std::runtime_error("scenario script: missing 'scenario <name>'");
  if (s.mode == Mode::kMobile && s.route.empty()) {
    throw std::runtime_error("scenario script '" + s.name +
                             "': mobile mode needs at least one 'event stop'");
  }
  if (s.readers < 2 && s.mode == Mode::kMultiReader) {
    throw std::runtime_error("scenario script '" + s.name +
                             "': multi_reader mode needs readers >= 2");
  }
  return s;
}

ScenarioScript ScenarioScript::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario script: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace ecocap::scenario
