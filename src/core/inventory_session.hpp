#pragma once

#include <memory>
#include <vector>

#include "channel/link_budget.hpp"
#include "reader/inventory.hpp"

namespace ecocap::core {

using dsp::Real;

/// A capsule deployed at a position inside a structure.
struct DeployedNode {
  std::uint16_t node_id = 0;
  Real distance = 0.5;  // m from the reader along the structure
  node::ConcreteEnvironment environment;
};

/// Protocol-level multi-node session over a structure: per-node SNR derives
/// from the structure's range law (the backscatter round-trip attenuates
/// twice), then the TDMA inventory engine collects readings. This is the
/// layer the SHM application drives on every monitoring pass.
class InventorySession {
 public:
  struct Config {
    channel::Structure structure;
    Real tx_voltage = 200.0;
    Real snr_at_contact_db = 24.0;  // uplink SNR with the node at the reader
    reader::InventoryEngine::Config inventory;
    phy::Fm0Params uplink;
    /// Fault plan applied per monitoring pass (protocol-level hooks). The
    /// empty default attaches no injector, preserving the legacy draw path.
    fault::FaultPlan fault;
    std::uint64_t seed = 1;
  };

  explicit InventorySession(Config config);

  /// Add a node at a position; creates its firmware instance.
  void deploy(const DeployedNode& node);

  /// Uplink SNR for a node at `distance`: contact SNR minus the round-trip
  /// exponential attenuation of the structure.
  Real snr_for_distance(Real distance) const;

  /// True when a node at `distance` can be powered at the configured TX
  /// voltage (link-budget check).
  bool node_reachable(Real distance) const;

  /// Run one full inventory pass and collect the sensor readings.
  reader::InventoryResult collect(
      const std::vector<std::uint8_t>& sensor_ids);

  /// Update a node's local environment (the SHM layer calls this as the
  /// structure's state evolves).
  void set_environment(std::uint16_t node_id,
                       const node::ConcreteEnvironment& env);

  std::size_t node_count() const { return nodes_.size(); }
  const Config& config() const { return config_; }

 private:
  Config config_;
  /// Built once from the (immutable) structure; node_reachable used to
  /// construct a fresh LinkBudget per call inside the collect loop.
  channel::LinkBudget budget_;
  dsp::Rng rng_;
  struct Slot {
    DeployedNode info;
    std::unique_ptr<node::Firmware> firmware;
  };
  std::vector<Slot> nodes_;
  /// Monotone pass counter: pass k binds its injector to trial k of the
  /// session seed, so each monitoring pass sees fresh fault realizations
  /// that are still fully reproducible.
  std::uint64_t pass_ = 0;
};

}  // namespace ecocap::core
