#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "channel/link_budget.hpp"
#include "channel/snr_models.hpp"
#include "reader/inventory.hpp"
#include "reader/link_supervisor.hpp"

namespace ecocap::core {

using dsp::Real;

/// A capsule deployed at a position inside a structure.
struct DeployedNode {
  std::uint16_t node_id = 0;
  Real distance = 0.5;  // m from the reader along the structure
  node::ConcreteEnvironment environment;
};

/// Protocol-level multi-node session over a structure: per-node SNR derives
/// from the structure's range law (the backscatter round-trip attenuates
/// twice), then the TDMA inventory engine collects readings. This is the
/// layer the SHM application drives on every monitoring pass.
///
/// With `Config::supervisor.enabled` the session runs each pass through a
/// reader::LinkSupervisor: quarantined nodes sit the pass out, the
/// remaining nodes' link SNR reflects their current fallback-ladder rung
/// (slower bitrate -> more decision SNR), the engine runs under the
/// supervisor's round slot budget, and each node's delivery outcome feeds
/// back into its link-quality estimate. Disabled (the default), the pass
/// is bit-identical to the pre-supervisor session.
class InventorySession {
 public:
  struct Config {
    channel::Structure structure;
    Real tx_voltage = 200.0;
    Real snr_at_contact_db = 24.0;  // uplink SNR with the node at the reader
    reader::InventoryEngine::Config inventory;
    phy::Fm0Params uplink;
    /// Fault plan applied per monitoring pass (protocol-level hooks). The
    /// empty default attaches no injector, preserving the legacy draw path.
    fault::FaultPlan fault;
    /// Adaptive link supervision (off by default). Validated at session
    /// construction when enabled.
    reader::SupervisorConfig supervisor;
    std::uint64_t seed = 1;
  };

  /// Validates the inventory retry policy and (when enabled) the
  /// supervisor config; throws std::invalid_argument on bad fields.
  explicit InventorySession(Config config);

  /// Add a node at a position; creates its firmware instance.
  void deploy(const DeployedNode& node);

  /// Uplink SNR for a node at `distance`: contact SNR minus the round-trip
  /// exponential attenuation of the structure. This is the rung-0 SNR; the
  /// supervisor's ladder delta is added on top per node.
  Real snr_for_distance(Real distance) const;

  /// True when a node at `distance` can be powered at the configured TX
  /// voltage (link-budget check).
  bool node_reachable(Real distance) const;

  /// Run one full inventory pass and collect the sensor readings.
  reader::InventoryResult collect(
      const std::vector<std::uint8_t>& sensor_ids);

  /// Replace the session's fault plan (scenario fault windows). Takes
  /// effect from the next pass; the pass counter keeps running, so the
  /// injector stream for pass k is the same whether the plan changed or
  /// not. Setting the same plan is a no-op.
  void set_fault_plan(const fault::FaultPlan& plan) { config_.fault = plan; }

  /// A co-located reader whose carrier leaks into this session's receive
  /// chain. Inactive (the default) leaves collect() bit-identical to the
  /// interference-free session; active, every node's decision SNR becomes
  /// the SINR against the neighbour's carrier. Not part of the checkpoint
  /// state — the scenario layer re-applies it deterministically per pass.
  struct InterferenceSpec {
    bool active = false;
    channel::ReaderInterference model;
    Real separation_m = 3.0;     // victim-to-interferer distance (m)
    Real carrier_offset_hz = 0.0;
  };
  void set_interference(const InterferenceSpec& spec) { interference_ = spec; }

  /// Update a node's local environment (the SHM layer calls this as the
  /// structure's state evolves).
  void set_environment(std::uint16_t node_id,
                       const node::ConcreteEnvironment& env);

  std::size_t node_count() const { return nodes_.size(); }
  const Config& config() const { return config_; }

  /// The supervisor, when enabled (nullptr otherwise).
  const reader::LinkSupervisor* supervisor() const {
    return supervisor_ ? &*supervisor_ : nullptr;
  }

  /// Checkpoint the session's mutable state: engine-seed RNG, pass
  /// counter, every deployed node's firmware, and the supervisor. The
  /// loading session must have the same nodes deployed in the same order.
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  Config config_;
  /// Built once from the (immutable) structure; node_reachable used to
  /// construct a fresh LinkBudget per call inside the collect loop.
  channel::LinkBudget budget_;
  dsp::Rng rng_;
  struct Slot {
    DeployedNode info;
    std::unique_ptr<node::Firmware> firmware;
  };
  std::vector<Slot> nodes_;
  std::optional<reader::LinkSupervisor> supervisor_;
  InterferenceSpec interference_;
  /// Monotone pass counter: pass k binds its injector to trial k of the
  /// session seed, so each monitoring pass sees fresh fault realizations
  /// that are still fully reproducible.
  std::uint64_t pass_ = 0;
};

}  // namespace ecocap::core
