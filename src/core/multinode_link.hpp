#pragma once

#include <memory>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/thread_pool.hpp"

namespace ecocap::core {

/// Waveform-level multi-node interrogation: several capsules share one
/// structure; every downlink is a broadcast, and every slot's backscatter
/// is the *sum* of the responding nodes' emissions at the reader — so
/// collisions, capture effects and per-node path loss all happen in the
/// signal domain rather than by protocol-level fiat. This is the
/// full-stack version of §3.4's TDMA argument.
class MultiNodeLink {
 public:
  struct NodePlacement {
    std::uint16_t node_id = 0;
    Real distance = 0.5;  // m from the reader
    node::ConcreteEnvironment environment;
  };

  struct Config {
    reader::TransmitterConfig transmitter;
    reader::ReceiverConfig receiver;
    node::CapsuleConfig capsule;   // template; node_id overridden per node
    channel::Structure structure;
    channel::ChannelConfig channel;  // distance overridden per node
    std::uint8_t q = 1;              // slots per Query round
    int max_rounds = 6;
    std::uint64_t seed = 1;
  };

  explicit MultiNodeLink(Config config);

  /// Cast a capsule into the structure.
  void deploy(const NodePlacement& placement);

  /// Result of a full waveform-level inventory.
  struct Result {
    std::vector<std::uint16_t> inventoried_ids;
    int slots = 0;
    int collisions = 0;   // slots where >1 node answered
    int empty_slots = 0;
    int decode_failures = 0;  // singleton slots the receiver still lost
    /// Collided slots whose superposed waveform still produced a "valid"
    /// RN16 decode at the receiver. These are classified as collision
    /// losses (the arbitration retries), not successes.
    int collision_false_decodes = 0;
  };

  /// Charge every node, then run Query/QueryRep/Ack rounds entirely at the
  /// waveform level until every powered node is identified (or rounds run
  /// out).
  Result run_inventory();

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Deployed {
    NodePlacement placement;
    std::unique_ptr<node::EcoCapsule> capsule;
    std::unique_ptr<channel::ConcreteChannel> channel;
    /// Per-node channel-noise stream, counter-derived from the session seed
    /// and the deployment index so the per-node legs of a TDMA round can run
    /// on any worker and still reproduce bit-identically.
    std::unique_ptr<dsp::Rng> noise_rng;
    bool identified = false;
  };

  /// Broadcast a command; collect each node's scheduled reply frame.
  std::vector<std::pair<Deployed*, node::UplinkFrame>> broadcast(
      const phy::Command& cmd);

  /// Sum the responders' backscatter at the reader and try to decode
  /// `reply_bits`.
  reader::UplinkDecode receive_slot(
      const std::vector<std::pair<Deployed*, node::UplinkFrame>>& responders,
      std::size_t reply_bits);

  Config config_;
  /// Immutable snapshot of the structure shared by every deployed node's
  /// channel (instead of one copy per node).
  std::shared_ptr<const channel::Structure> structure_;
  reader::Transmitter transmitter_;
  reader::Receiver receiver_;
  std::vector<Deployed> nodes_;
};

}  // namespace ecocap::core
