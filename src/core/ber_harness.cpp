#include "core/ber_harness.hpp"

#include <cmath>

#include "core/trial_runner.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/bits.hpp"

namespace ecocap::core {

phy::Bits fm0_hard_decode(std::span<const Real> x, Real samples_per_bit,
                          std::size_t bit_count) {
  phy::Bits out;
  out.reserve(bit_count);
  for (std::size_t k = 0; k < bit_count; ++k) {
    const auto lo = static_cast<std::size_t>(
        std::llround(samples_per_bit * static_cast<Real>(k)));
    const auto mid = static_cast<std::size_t>(
        std::llround(samples_per_bit * (static_cast<Real>(k) + 0.5)));
    const auto hi = static_cast<std::size_t>(
        std::llround(samples_per_bit * static_cast<Real>(k + 1)));
    Real first = 0.0, second = 0.0;
    for (std::size_t i = lo; i < mid && i < x.size(); ++i) first += x[i];
    for (std::size_t i = mid; i < hi && i < x.size(); ++i) second += x[i];
    // Mid-symbol transition (halves with opposite sign) -> data-0.
    out.push_back((first > 0.0) == (second > 0.0) ? 1 : 0);
  }
  return out;
}

namespace {

/// Per-sample AWGN sigma for the configured decision-domain SNR.
/// config.snr_db is the *decision-domain* SNR (the Fig. 15 axis): an
/// antipodal per-bit SNR, so BER_ML ~ Q(sqrt(2 snr)). The per-bit decision
/// integrates samples_per_bit samples, so the per-sample noise variance is
/// sigma^2 = P * samples_per_bit / (2 * snr).
Real awgn_sigma(const BerConfig& config) {
  const Real snr_lin = dsp::from_db(config.snr_db);
  return std::sqrt(config.samples_per_bit / (2.0 * snr_lin));  // P = 1
}

/// One frame: encode random bits, add noise, decode, count errors.
void run_frame(const BerConfig& config, Real sigma, dsp::Rng& rng,
               BerResult& acc) {
  const Real fs = config.samples_per_bit;  // normalize bitrate to 1
  const phy::Bits tx = phy::random_bits(config.frame_bits, rng);
  dsp::Signal wave = phy::fm0_encode(tx, fs, 1.0);
  dsp::add_awgn(wave, sigma, rng);

  const phy::Bits rx =
      (config.decoder == UplinkDecoder::kMlFm0)
          ? phy::fm0_decode(wave, config.samples_per_bit, tx.size())
          : fm0_hard_decode(wave, config.samples_per_bit, tx.size());
  acc.errors += phy::hamming_distance(tx, rx);
  acc.bits += tx.size();
}

}  // namespace

BerResult fm0_ber_monte_carlo(const BerConfig& config, ThreadPool& pool) {
  const Real sigma = awgn_sigma(config);
  const std::size_t frame_bits = std::max<std::size_t>(config.frame_bits, 1);
  const std::size_t frames =
      (config.total_bits + frame_bits - 1) / frame_bits;
  const TrialRunner runner(pool);
  return runner.run<BerResult>(
      frames, config.seed,
      [&](std::size_t, dsp::Rng& rng, BerResult& acc) {
        run_frame(config, sigma, rng, acc);
      },
      [](BerResult& into, const BerResult& from) {
        into.bits += from.bits;
        into.errors += from.errors;
      });
}

BerResult fm0_ber_monte_carlo(const BerConfig& config) {
  return fm0_ber_monte_carlo(config, ThreadPool::shared());
}

BerResult fm0_ber_monte_carlo_sequential(const BerConfig& config) {
  dsp::Rng rng(config.seed);
  BerResult result;
  const Real sigma = awgn_sigma(config);
  while (result.bits < config.total_bits) {
    run_frame(config, sigma, rng, result);
  }
  return result;
}

}  // namespace ecocap::core
