#include "core/multinode_link.hpp"

#include <algorithm>
#include <utility>

#include "dsp/signal_ops.hpp"

namespace ecocap::core {

MultiNodeLink::MultiNodeLink(Config config)
    : config_(std::move(config)),
      rng_(config_.seed),
      transmitter_(config_.transmitter),
      receiver_(config_.receiver) {}

void MultiNodeLink::deploy(const NodePlacement& placement) {
  Deployed d;
  d.placement = placement;
  node::CapsuleConfig cc = config_.capsule;
  cc.firmware.node_id = placement.node_id;
  d.capsule = std::make_unique<node::EcoCapsule>(
      cc, config_.channel.fs, config_.seed ^ placement.node_id);
  channel::ChannelConfig ch = config_.channel;
  ch.distance = placement.distance;
  d.channel =
      std::make_unique<channel::ConcreteChannel>(config_.structure, ch);
  nodes_.push_back(std::move(d));
}

std::vector<std::pair<MultiNodeLink::Deployed*, node::UplinkFrame>>
MultiNodeLink::broadcast(const phy::Command& cmd) {
  std::vector<std::pair<Deployed*, node::UplinkFrame>> responders;
  const dsp::Signal tx = transmitter_.transmit_command(cmd);
  const Real volts_scale = config_.transmitter.tx_voltage /
                           config_.structure.coupling_voltage * 0.5;
  for (auto& n : nodes_) {
    dsp::Signal at_node = n.channel->downlink(tx, rng_);
    dsp::scale(at_node, volts_scale);
    const auto rx = n.capsule->receive(at_node, n.placement.environment);
    if (!rx.powered) continue;
    for (const auto& frame : rx.frames) {
      responders.emplace_back(&n, frame);
    }
  }
  return responders;
}

reader::UplinkDecode MultiNodeLink::receive_slot(
    const std::vector<std::pair<Deployed*, node::UplinkFrame>>& responders,
    std::size_t reply_bits) {
  reader::UplinkDecode none;
  if (responders.empty()) return none;

  const Real volts_scale = config_.transmitter.tx_voltage /
                           config_.structure.coupling_voltage * 0.5;
  // The slot's CBW must cover the longest frame.
  Real frame_time = 0.0;
  for (const auto& [n, frame] : responders) {
    const Real t =
        (static_cast<Real>(frame.payload.size()) +
         static_cast<Real>(
             phy::fm0_preamble(config_.capsule.firmware.uplink).size()) +
         4.0) /
        frame.bitrate;
    frame_time = std::max(frame_time, t);
  }
  const dsp::Signal cw = transmitter_.continuous_wave(frame_time);

  dsp::Signal at_reader;
  Real blf = config_.capsule.firmware.blf;
  Real bitrate = config_.capsule.firmware.uplink.bitrate;
  for (const auto& [n, frame] : responders) {
    dsp::Signal carrier_at_node = n->channel->downlink(cw, rng_);
    dsp::scale(carrier_at_node, volts_scale);
    const dsp::Signal emission =
        n->capsule->backscatter(frame, carrier_at_node);
    dsp::Signal contribution = n->channel->uplink(
        emission, config_.transmitter.carrier.f_resonant, rng_);
    if (at_reader.empty()) {
      at_reader = std::move(contribution);
    } else {
      const std::size_t m = std::min(at_reader.size(), contribution.size());
      for (std::size_t i = 0; i < m; ++i) at_reader[i] += contribution[i];
    }
    blf = frame.blf;
    bitrate = frame.bitrate;
  }
  receiver_.set_blf(blf);
  receiver_.set_bitrate(bitrate);
  return receiver_.decode(at_reader, reply_bits);
}

MultiNodeLink::Result MultiNodeLink::run_inventory() {
  Result result;

  // 1. Charge everyone with CBW until powered (or clearly unreachable).
  const Real volts_scale = config_.transmitter.tx_voltage /
                           config_.structure.coupling_voltage * 0.5;
  const node::ConcreteEnvironment quiet_env;
  for (auto& n : nodes_) {
    for (int i = 0; i < 25 && !n.capsule->harvester().mcu_powered(); ++i) {
      const dsp::Signal cw = transmitter_.continuous_wave(0.020);
      dsp::Signal at_node = n.channel->downlink(cw, rng_);
      dsp::scale(at_node, volts_scale);
      n.capsule->receive(at_node, n.placement.environment);
      (void)quiet_env;
    }
  }

  // 2. Inventory rounds at the waveform level.
  for (int round = 0; round < config_.max_rounds; ++round) {
    const bool all_done = std::all_of(
        nodes_.begin(), nodes_.end(),
        [](const Deployed& n) { return n.identified; });
    if (all_done) break;

    auto slot_replies =
        broadcast(phy::Command{phy::QueryCommand{config_.q}});
    const int slots = 1 << config_.q;
    for (int slot = 0; slot < slots; ++slot) {
      if (slot > 0) {
        slot_replies = broadcast(phy::Command{phy::QueryRepCommand{}});
      }
      // Already-identified nodes still answer the air protocol; drop their
      // frames (the Gen2 analog is the inventoried-flag session state).
      std::erase_if(slot_replies,
                    [](const auto& p) { return p.first->identified; });
      ++result.slots;
      if (slot_replies.empty()) {
        ++result.empty_slots;
        continue;
      }
      if (slot_replies.size() > 1) {
        ++result.collisions;
        continue;  // superposed frames: don't even try (validated in tests)
      }

      // Singleton: decode the RN16 off the summed (single) waveform.
      const auto dec =
          receive_slot(slot_replies, phy::rn16_response_bits());
      if (!dec.valid) {
        ++result.decode_failures;
        continue;
      }
      const auto rn16 = phy::parse_rn16_response(dec.payload);
      if (!rn16) {
        ++result.decode_failures;
        continue;
      }

      // Ack -> Id, still at the waveform level.
      Deployed* node = slot_replies.front().first;
      auto ack_replies =
          broadcast(phy::Command{phy::AckCommand{rn16->rn16}});
      std::erase_if(ack_replies,
                    [](const auto& p) { return p.first->identified; });
      if (ack_replies.size() != 1) continue;  // wrong node matched
      const auto id_dec = receive_slot(ack_replies, phy::id_response_bits());
      if (!id_dec.valid) {
        ++result.decode_failures;
        continue;
      }
      const auto id = phy::parse_id_response(id_dec.payload);
      if (!id) {
        ++result.decode_failures;
        continue;
      }
      node->identified = true;
      result.inventoried_ids.push_back(id->node_id);
    }
  }
  return result;
}

}  // namespace ecocap::core
