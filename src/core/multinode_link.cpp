#include "core/multinode_link.hpp"

#include <algorithm>
#include <utility>

#include "core/workspace_pool.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::core {

MultiNodeLink::MultiNodeLink(Config config)
    : config_(std::move(config)),
      structure_(std::make_shared<const channel::Structure>(config_.structure)),
      transmitter_(config_.transmitter),
      receiver_(config_.receiver) {}

void MultiNodeLink::deploy(const NodePlacement& placement) {
  Deployed d;
  d.placement = placement;
  node::CapsuleConfig cc = config_.capsule;
  cc.firmware.node_id = placement.node_id;
  d.capsule = std::make_unique<node::EcoCapsule>(
      cc, config_.channel.fs, config_.seed ^ placement.node_id);
  auto ch = std::make_shared<channel::ChannelConfig>(config_.channel);
  ch->distance = placement.distance;
  d.channel =
      std::make_unique<channel::ConcreteChannel>(structure_, std::move(ch));
  d.noise_rng = std::make_unique<dsp::Rng>(
      dsp::trial_seed(config_.seed, nodes_.size()));
  nodes_.push_back(std::move(d));
}

std::vector<std::pair<MultiNodeLink::Deployed*, node::UplinkFrame>>
MultiNodeLink::broadcast(const phy::Command& cmd) {
  // The command waveform is one broadcast: generate it once, then run each
  // node's downlink + capsule leg on the pool. Per-node state (channel,
  // capsule, noise stream) is private to its slot, so the fan-out is
  // lock-free and bit-identical at any thread count; responders are
  // assembled in deployment order afterwards.
  dsp::Workspace& ws = WorkspacePool::shared().local();
  auto tx = ws.real(0);
  transmitter_.transmit_command(cmd, ws, *tx);
  const Real volts_scale = config_.transmitter.tx_voltage /
                           config_.structure.coupling_voltage * 0.5;
  std::vector<std::vector<node::UplinkFrame>> frames(nodes_.size());
  ThreadPool::shared().parallel_for(nodes_.size(), [&](std::size_t i) {
    Deployed& n = nodes_[i];
    // Each worker leases from its own thread-local workspace; the broadcast
    // waveform lease above stays valid (and read-only) for the fan-out.
    dsp::Workspace& wws = WorkspacePool::shared().local();
    auto at_node = wws.real(0);
    n.channel->downlink(*tx, *n.noise_rng, *at_node);
    dsp::scale(*at_node, volts_scale);
    const auto rx = n.capsule->receive(*at_node, n.placement.environment);
    if (rx.powered) frames[i] = rx.frames;
  });

  std::vector<std::pair<Deployed*, node::UplinkFrame>> responders;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& frame : frames[i]) {
      responders.emplace_back(&nodes_[i], frame);
    }
  }
  return responders;
}

reader::UplinkDecode MultiNodeLink::receive_slot(
    const std::vector<std::pair<Deployed*, node::UplinkFrame>>& responders,
    std::size_t reply_bits) {
  reader::UplinkDecode none;
  if (responders.empty()) return none;

  const Real volts_scale = config_.transmitter.tx_voltage /
                           config_.structure.coupling_voltage * 0.5;
  // The slot's CBW must cover the longest frame.
  Real frame_time = 0.0;
  for (const auto& [n, frame] : responders) {
    const Real t =
        (static_cast<Real>(frame.payload.size()) +
         static_cast<Real>(
             phy::fm0_preamble(config_.capsule.firmware.uplink).size()) +
         4.0) /
        frame.bitrate;
    frame_time = std::max(frame_time, t);
  }
  dsp::Workspace& ws = WorkspacePool::shared().local();
  auto cw = ws.real(0);
  transmitter_.continuous_wave(frame_time, *cw);

  // Each responder's backscatter leg is independent; compute the per-node
  // contributions in parallel, then superpose them in responder order so
  // the floating-point sum is reproducible. The contributions cross thread
  // boundaries, so they stay plain Signals rather than workspace leases.
  std::vector<dsp::Signal> contributions(responders.size());
  ThreadPool::shared().parallel_for(responders.size(), [&](std::size_t i) {
    Deployed* n = responders[i].first;
    const node::UplinkFrame& frame = responders[i].second;
    dsp::Workspace& wws = WorkspacePool::shared().local();
    auto carrier_at_node = wws.real(0);
    auto emission = wws.real(0);
    n->channel->downlink(*cw, *n->noise_rng, *carrier_at_node);
    dsp::scale(*carrier_at_node, volts_scale);
    n->capsule->backscatter(frame, *carrier_at_node, wws, *emission);
    n->channel->uplink(*emission, config_.transmitter.carrier.f_resonant,
                       *n->noise_rng, contributions[i]);
  });

  // Superpose over the longest contribution. Truncating to the first
  // frame's length (the old behavior) silently dropped the tail of any
  // longer colliding frame, which left the shorter frame nearly clean —
  // the reader would then "decode" a collided slot as a success.
  std::size_t longest = 0;
  for (const dsp::Signal& c : contributions) {
    longest = std::max(longest, c.size());
  }
  dsp::Signal at_reader(longest, 0.0);
  Real blf = config_.capsule.firmware.blf;
  Real bitrate = config_.capsule.firmware.uplink.bitrate;
  for (std::size_t i = 0; i < responders.size(); ++i) {
    const dsp::Signal& contribution = contributions[i];
    for (std::size_t j = 0; j < contribution.size(); ++j) {
      at_reader[j] += contribution[j];
    }
    blf = responders[i].second.blf;
    bitrate = responders[i].second.bitrate;
  }
  receiver_.set_blf(blf);
  receiver_.set_bitrate(bitrate);
  return receiver_.decode(at_reader, reply_bits, ws);
}

MultiNodeLink::Result MultiNodeLink::run_inventory() {
  Result result;

  // 1. Charge everyone with CBW until powered (or clearly unreachable).
  // The charge blocks are one broadcast stream (generated once, stateful
  // PZT and all); each node consumes them independently on the pool.
  const Real volts_scale = config_.transmitter.tx_voltage /
                           config_.structure.coupling_voltage * 0.5;
  std::vector<dsp::Signal> charge_blocks;
  charge_blocks.reserve(25);
  for (int i = 0; i < 25; ++i) {
    dsp::Signal cw;
    transmitter_.continuous_wave(0.020, cw);
    charge_blocks.push_back(std::move(cw));
  }
  ThreadPool::shared().parallel_for(nodes_.size(), [&](std::size_t idx) {
    Deployed& n = nodes_[idx];
    dsp::Workspace& wws = WorkspacePool::shared().local();
    auto at_node = wws.real(0);
    for (const dsp::Signal& cw : charge_blocks) {
      if (n.capsule->harvester().mcu_powered()) break;
      n.channel->downlink(cw, *n.noise_rng, *at_node);
      dsp::scale(*at_node, volts_scale);
      n.capsule->receive(*at_node, n.placement.environment);
    }
  });

  // 2. Inventory rounds at the waveform level.
  for (int round = 0; round < config_.max_rounds; ++round) {
    const bool all_done = std::all_of(
        nodes_.begin(), nodes_.end(),
        [](const Deployed& n) { return n.identified; });
    if (all_done) break;

    auto slot_replies =
        broadcast(phy::Command{phy::QueryCommand{config_.q}});
    const int slots = 1 << config_.q;
    for (int slot = 0; slot < slots; ++slot) {
      if (slot > 0) {
        slot_replies = broadcast(phy::Command{phy::QueryRepCommand{}});
      }
      // Already-identified nodes still answer the air protocol; drop their
      // frames (the Gen2 analog is the inventoried-flag session state).
      std::erase_if(slot_replies,
                    [](const auto& p) { return p.first->identified; });
      ++result.slots;
      if (slot_replies.empty()) {
        ++result.empty_slots;
        continue;
      }
      if (slot_replies.size() > 1) {
        // A real reader cannot know a priori that the slot collided: it
        // runs its decoder on the superposition anyway. A bare RN16 carries
        // no CRC, so a garbled superposition can still produce a "valid"
        // decode — that must be scored as a collision loss, never as a
        // singleton success (the frame it resembles was not cleanly
        // received, and acking it would desync the arbitration).
        ++result.collisions;
        const auto dec = receive_slot(slot_replies, phy::rn16_response_bits());
        if (dec.valid) ++result.collision_false_decodes;
        continue;
      }

      // Singleton: decode the RN16 off the summed (single) waveform.
      const auto dec =
          receive_slot(slot_replies, phy::rn16_response_bits());
      if (!dec.valid) {
        ++result.decode_failures;
        continue;
      }
      const auto rn16 = phy::parse_rn16_response(dec.payload);
      if (!rn16) {
        ++result.decode_failures;
        continue;
      }

      // Ack -> Id, still at the waveform level.
      Deployed* node = slot_replies.front().first;
      auto ack_replies =
          broadcast(phy::Command{phy::AckCommand{rn16->rn16}});
      std::erase_if(ack_replies,
                    [](const auto& p) { return p.first->identified; });
      if (ack_replies.size() != 1) continue;  // wrong node matched
      const auto id_dec = receive_slot(ack_replies, phy::id_response_bits());
      if (!id_dec.valid) {
        ++result.decode_failures;
        continue;
      }
      const auto id = phy::parse_id_response(id_dec.payload);
      if (!id) {
        ++result.decode_failures;
        continue;
      }
      node->identified = true;
      result.inventoried_ids.push_back(id->node_id);
    }
  }
  return result;
}

}  // namespace ecocap::core
