#include "core/link_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/trial_runner.hpp"
#include "core/workspace_pool.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::core {

namespace {
// Null-check that must fire before the member-init list dereferences the
// snapshot (transmitter_ is built from config_->transmitter).
const SystemConfig& require(const SystemSnapshot& s) {
  if (!s) throw std::invalid_argument("LinkSimulator: null snapshot");
  return *s;
}
}  // namespace

SystemConfig default_system() {
  SystemConfig c;
  c.structure = channel::structures::test_block(
      wave::materials::normal_concrete());
  c.channel.distance = 0.20;
  c.channel.fs = 2.0e6;
  c.channel.prism_angle_deg = 60.0;
  c.transmitter.carrier.fs = c.channel.fs;
  c.transmitter.tx_voltage = 100.0;
  c.receiver.fs = c.channel.fs;
  c.receiver.blf = 4000.0;
  c.receiver.uplink.bitrate = 1000.0;
  c.capsule.firmware.node_id = 0x0001;
  c.capsule.firmware.uplink.bitrate = 1000.0;
  c.capsule.firmware.blf = 4000.0;
  return c;
}

LinkSimulator::LinkSimulator(SystemConfig config)
    : LinkSimulator(std::make_shared<const SystemConfig>(std::move(config))) {}

LinkSimulator::LinkSimulator(SystemSnapshot snapshot)
    : LinkSimulator(snapshot, require(snapshot).seed) {}

LinkSimulator::LinkSimulator(SystemSnapshot snapshot, std::uint64_t seed)
    : config_(std::move(snapshot)),
      seed_(seed),
      rng_(seed),
      transmitter_(require(config_).transmitter),
      receiver_(config_->receiver),
      // Aliasing shared_ptrs: the channel shares the snapshot's structure
      // and channel config instead of copying them (the scatterer list is
      // the heavyweight member this avoids duplicating per trial).
      channel_(std::shared_ptr<const channel::Structure>(config_,
                                                         &config_->structure),
               std::shared_ptr<const channel::ChannelConfig>(
                   config_, &config_->channel)),
      capsule_(config_->capsule, config_->channel.fs, seed ^ 0x9e3779b9),
      injector_(config_->fault, seed) {
  // Node-layer static faults that live outside the exchange flow.
  capsule_.set_extra_load_amps(injector_.cap_leak_amps());
}

void LinkSimulator::faulted_downlink(const dsp::Signal& tx,
                                     dsp::Signal& at_node) {
  channel_.downlink(tx, rng_, at_node);
  dsp::scale(at_node, config_->transmitter.tx_voltage /
                          config_->structure.coupling_voltage * 0.5);
  injector_.corrupt_waveform(at_node, config_->channel.fs);
}

void LinkSimulator::faulted_uplink(const dsp::Signal& emission,
                                   dsp::Signal& at_reader) {
  channel_.uplink(emission, config_->transmitter.carrier.f_resonant, rng_,
                  at_reader);
  injector_.corrupt_waveform(at_reader, config_->channel.fs);
  injector_.clip_adc(at_reader);
}

bool LinkSimulator::power_up() {
  // Stream CBW in 20 ms blocks until the MCU boots or 500 ms elapse.
  const node::ConcreteEnvironment env;
  dsp::Workspace& ws = WorkspacePool::shared().local();
  auto cw = ws.real(0);
  auto at_node = ws.real(0);
  for (int i = 0; i < 25; ++i) {
    transmitter_.continuous_wave(0.020, *cw);
    // Scaled by the reader drive voltage: the transmitter emits normalized
    // amplitude; the channel calibration maps volts to node voltage.
    faulted_downlink(*cw, *at_node);
    const auto r = capsule_.receive(*at_node, env);
    if (r.powered) return true;
  }
  return false;
}

InterrogationResult LinkSimulator::charge(Real duration) {
  InterrogationResult result;
  const node::ConcreteEnvironment env;
  dsp::Workspace& ws = WorkspacePool::shared().local();
  auto cw = ws.real(0);
  auto at_node = ws.real(0);
  transmitter_.continuous_wave(duration, *cw);
  faulted_downlink(*cw, *at_node);
  const auto r = capsule_.receive(*at_node, env);
  result.node_powered = r.powered;
  result.cap_voltage = r.cap_voltage;
  return result;
}

InterrogationResult LinkSimulator::interrogate(
    node::SensorId sensor, const node::ConcreteEnvironment& env) {
  InterrogationResult result;
  if (!power_up()) return result;
  result.node_powered = true;
  result.cap_voltage = capsule_.harvester().cap_voltage();

  dsp::Workspace& ws = WorkspacePool::shared().local();

  // Stage buffers shared by every exchange of the protocol round.
  auto tx = ws.real(0);
  auto at_node = ws.real(0);
  auto emission = ws.real(0);
  auto at_reader = ws.real(0);

  auto exchange = [&](const phy::Command& cmd,
                      std::size_t reply_bits) -> std::optional<phy::Bits> {
    // 1. Downlink the command.
    transmitter_.transmit_command(cmd, ws, *tx);
    faulted_downlink(*tx, *at_node);
    const auto rx = capsule_.receive(*at_node, env);
    if (!rx.powered) return std::nullopt;
    if (!rx.frames.empty()) result.command_decoded = true;
    if (rx.frames.empty()) return phy::Bits{};  // command ok, no reply due

    // 2. The node backscatters its frame off a fresh CBW. Node-layer
    // faults perturb only the emission: flipped bits in node memory, a
    // drifted RC timebase. The reader still locks to the nominal line
    // parameters it negotiated, so drift degrades the decode.
    const node::UplinkFrame& nominal = rx.frames.front();
    node::UplinkFrame perturbed;
    const node::UplinkFrame* frame = &nominal;
    if (injector_.active()) {
      perturbed = nominal;
      injector_.corrupt_frame_bits(perturbed.payload);
      const Real drift = injector_.clock_drift_factor();
      perturbed.bitrate *= drift;
      perturbed.blf *= drift;
      frame = &perturbed;
    }
    const Real frame_time =
        (static_cast<Real>(frame->payload.size()) +
         static_cast<Real>(phy::fm0_preamble(config_->capsule.firmware.uplink)
                               .size()) + 4.0) /
        frame->bitrate;
    transmitter_.continuous_wave(frame_time, *tx);
    faulted_downlink(*tx, *at_node);
    capsule_.backscatter(*frame, *at_node, ws, *emission);
    if (injector_.brownout_aborts_frame()) {
      // Mid-frame brownout: the emission truncates and the MCU loses its
      // protocol state (it reboots into standby on the next downlink).
      emission->resize(static_cast<std::size_t>(
          injector_.brownout_cut() * static_cast<Real>(emission->size())));
      capsule_.firmware().power_off();
    }
    faulted_uplink(*emission, *at_reader);

    // 3. Decode against the nominal line parameters.
    receiver_.set_blf(nominal.blf);
    receiver_.set_bitrate(nominal.bitrate);
    const reader::UplinkDecode dec =
        receiver_.decode(*at_reader, reply_bits, ws);
    result.carrier_estimate = dec.carrier_estimate;
    if (!dec.valid) return std::nullopt;
    result.uplink_snr_db = dec.snr_db;  // only valid decodes carry an SNR
    return dec.payload;
  };

  // Query with Q=0: the node replies in the immediate slot.
  const auto rn16_bits = exchange(phy::Command{phy::QueryCommand{0}},
                                  phy::rn16_response_bits());
  if (!rn16_bits || rn16_bits->size() != phy::rn16_response_bits()) {
    return result;
  }
  const auto rn16 = phy::parse_rn16_response(*rn16_bits);
  if (!rn16) return result;
  result.uplink_decoded = true;
  result.uplink_payload = *rn16_bits;

  // Ack -> Id response.
  const auto id_bits = exchange(phy::Command{phy::AckCommand{rn16->rn16}},
                                phy::id_response_bits());
  if (!id_bits || !phy::parse_id_response(*id_bits)) return result;

  // Read the sensor.
  const auto data_bits = exchange(
      phy::Command{phy::ReadCommand{rn16->rn16,
                                    static_cast<std::uint8_t>(sensor)}},
      phy::data_response_bits());
  if (!data_bits) return result;
  if (const auto data = phy::parse_data_response(*data_bits)) {
    result.sensor_value = phy::from_milli(data->milli_value);
  }
  return result;
}

InterrogationResult LinkSimulator::uplink_once(const phy::Bits& payload) {
  InterrogationResult result;
  if (!power_up()) return result;
  result.node_powered = true;

  dsp::Workspace& ws = WorkspacePool::shared().local();
  node::UplinkFrame frame;
  frame.payload = payload;
  frame.bitrate = config_->capsule.firmware.uplink.bitrate;
  frame.blf = config_->capsule.firmware.blf;
  const Real nominal_blf = frame.blf;
  const Real nominal_bitrate = frame.bitrate;
  if (injector_.active()) {
    injector_.corrupt_frame_bits(frame.payload);
    const Real drift = injector_.clock_drift_factor();
    frame.bitrate *= drift;
    frame.blf *= drift;
  }

  const Real frame_time =
      (static_cast<Real>(payload.size()) +
       static_cast<Real>(
           phy::fm0_preamble(config_->capsule.firmware.uplink).size()) + 4.0) /
      frame.bitrate;
  auto cw = ws.real(0);
  auto carrier_at_node = ws.real(0);
  auto emission = ws.real(0);
  auto at_reader = ws.real(0);
  transmitter_.continuous_wave(frame_time, *cw);
  faulted_downlink(*cw, *carrier_at_node);
  capsule_.backscatter(frame, *carrier_at_node, ws, *emission);
  if (injector_.brownout_aborts_frame()) {
    emission->resize(static_cast<std::size_t>(
        injector_.brownout_cut() * static_cast<Real>(emission->size())));
  }
  faulted_uplink(*emission, *at_reader);

  receiver_.set_blf(nominal_blf);
  receiver_.set_bitrate(nominal_bitrate);
  const reader::UplinkDecode dec =
      receiver_.decode(*at_reader, payload.size(), ws);
  result.carrier_estimate = dec.carrier_estimate;
  result.uplink_decoded = dec.valid;
  if (dec.valid) {
    result.uplink_snr_db = dec.snr_db;  // NaN otherwise: no measurement
    result.uplink_payload = dec.payload;
  }
  return result;
}

UplinkSweepResult uplink_sweep(const SystemConfig& base,
                               const phy::Bits& payload, std::size_t trials) {
  // Waveform-level trials are heavy (each builds a full channel + capsule),
  // so shard them one per block: dynamic claiming then load-balances even
  // when decode cost varies with the noise draw. One shared snapshot feeds
  // every trial; only the seed differs.
  const SystemSnapshot snapshot = std::make_shared<const SystemConfig>(base);
  const TrialRunner runner(ThreadPool::shared(), /*block_size=*/1);
  return runner.run<UplinkSweepResult>(
      trials, base.seed,
      [&](std::size_t t, dsp::Rng&, UplinkSweepResult& acc) {
        LinkSimulator sim(snapshot, dsp::trial_seed(base.seed, t));
        const InterrogationResult r = sim.uplink_once(payload);
        ++acc.trials;
        if (r.node_powered) ++acc.powered;
        if (r.uplink_decoded) {
          ++acc.decoded;
          acc.snr_db_sum += r.uplink_snr_db;
        }
      },
      [](UplinkSweepResult& into, const UplinkSweepResult& from) {
        into.trials += from.trials;
        into.powered += from.powered;
        into.decoded += from.decoded;
        into.snr_db_sum += from.snr_db_sum;
      });
}

LinkSimulator::RangeEstimate LinkSimulator::estimate_node_distance() {
  RangeEstimate est;
  if (!power_up()) return est;

  // Delay-preserving copy of the channel config for the ranging exchange;
  // the structure itself is shared from the snapshot.
  auto abs_cfg = std::make_shared<channel::ChannelConfig>(config_->channel);
  abs_cfg->preserve_absolute_delay = true;
  const channel::ConcreteChannel abs_channel(
      std::shared_ptr<const channel::Structure>(config_, &config_->structure),
      std::move(abs_cfg));

  dsp::Workspace& ws = WorkspacePool::shared().local();
  const Real fs = config_->channel.fs;
  const Real volts_scale = config_->transmitter.tx_voltage /
                           config_->structure.coupling_voltage * 0.5;
  phy::Fm0Params line = config_->capsule.firmware.uplink;
  dsp::Rng payload_rng(seed_ ^ 0x5157);
  const phy::Bits payload = phy::random_bits(16, payload_rng);

  const Real frame_time =
      (static_cast<Real>(payload.size() + phy::fm0_preamble(line).size()) +
       4.0) /
      line.bitrate;
  // Extra room for the round trip.
  const Real margin = 2.0 * config_->structure.length /
                      std::max(config_->structure.material.cs, 500.0);
  auto cw = ws.real(0);
  auto at_node = ws.real(0);
  transmitter_.continuous_wave(frame_time + margin, *cw);
  abs_channel.downlink(*cw, rng_, *at_node);
  dsp::scale(*at_node, volts_scale);

  // The node triggers its switching when the CBW actually reaches it.
  const Real pk = dsp::peak(*at_node);
  std::size_t arrival = 0;
  while (arrival < at_node->size() &&
         std::abs((*at_node)[arrival]) < 0.25 * pk) {
    ++arrival;
  }
  auto switching = ws.real(arrival);
  std::fill(switching->begin(), switching->end(), -1.0);  // absorptive
  auto frame_wave = ws.real(0);
  phy::fm0_encode_frame(payload, line, fs, *frame_wave);
  switching->insert(switching->end(), frame_wave->begin(), frame_wave->end());
  if (switching->size() > at_node->size()) {
    switching->resize(at_node->size());
  }

  phy::BackscatterParams bp = config_->capsule.backscatter;
  bp.f_blf = config_->capsule.firmware.blf;
  auto emission = ws.real(0);
  phy::backscatter_modulate(*at_node, *switching, fs, bp, *emission);
  auto at_reader = ws.real(0);
  abs_channel.uplink(*emission, config_->transmitter.carrier.f_resonant, rng_,
                     *at_reader);

  receiver_.set_blf(bp.f_blf);
  receiver_.set_bitrate(line.bitrate);
  const reader::UplinkDecode dec =
      receiver_.decode(*at_reader, payload.size(), ws);
  if (!dec.valid) return est;
  est.valid = true;
  est.round_trip_s = dec.frame_start_s;
  const Real cs = config_->structure.material.cs > 0.0
                      ? config_->structure.material.cs
                      : config_->structure.material.cp;
  est.distance = 0.5 * dec.frame_start_s * cs;
  return est;
}

}  // namespace ecocap::core
