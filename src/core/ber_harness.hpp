#pragma once

#include <cstdint>

#include "core/thread_pool.hpp"
#include "dsp/rng.hpp"
#include "phy/fm0.hpp"

namespace ecocap::core {

using dsp::Real;

/// Uplink decoders compared in Fig. 15: the reader's coherent ML FM0
/// decoder vs the hard-decision (envelope-threshold) decoder PAB-class
/// systems use — worth a couple of dB at the same SNR.
enum class UplinkDecoder { kMlFm0, kHardDecision };

struct BerConfig {
  Real snr_db = 8.0;
  std::size_t total_bits = 20000;
  std::size_t frame_bits = 64;
  Real samples_per_bit = 32.0;
  UplinkDecoder decoder = UplinkDecoder::kMlFm0;
  std::uint64_t seed = 7;
};

struct BerResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  Real ber() const {
    return bits ? static_cast<Real>(errors) / static_cast<Real>(bits) : 0.0;
  }
};

/// Monte-Carlo BER of FM0 over an AWGN decision-domain channel (the
/// post-downconversion residual the reader actually slices). Frame sync is
/// assumed ideal — Fig. 15 measures coding/decoding efficiency, not sync.
///
/// Frames are independent trials sharded across `pool` with a
/// counter-derived RNG per frame, so the aggregate (bits, errors) is
/// bit-identical at any thread count and the sweep scales with cores.
BerResult fm0_ber_monte_carlo(const BerConfig& config, ThreadPool& pool);

/// Same, on the process-shared pool (honours ECOCAP_THREADS).
BerResult fm0_ber_monte_carlo(const BerConfig& config);

/// Strictly sequential reference implementation, kept for speedup
/// measurements against the parallel engine (same statistics, different —
/// single — RNG stream).
BerResult fm0_ber_monte_carlo_sequential(const BerConfig& config);

/// Hard-decision FM0 decode used by the PAB baseline model: sign-slice each
/// half-bit and read the mid-symbol transition.
phy::Bits fm0_hard_decode(std::span<const Real> x, Real samples_per_bit,
                          std::size_t bit_count);

}  // namespace ecocap::core
