#include "core/workspace_pool.hpp"

#include <algorithm>

namespace ecocap::core {

WorkspacePool& WorkspacePool::shared() {
  static WorkspacePool pool;
  return pool;
}

/// Ties a thread's workspace lifetime to the thread itself: the workspace
/// unregisters before it is destroyed, so shutdown of short-lived threads
/// (sanitizer runs spawn plenty) never leaves a dangling registry entry.
struct WorkspacePool::Registration {
  explicit Registration(WorkspacePool& pool) : pool_(pool) {
    pool_.enroll(&workspace_);
  }
  ~Registration() { pool_.retire(&workspace_); }
  WorkspacePool& pool_;
  dsp::Workspace workspace_;
};

dsp::Workspace& WorkspacePool::local() {
  thread_local Registration reg(*this);
  return reg.workspace_;
}

void WorkspacePool::enroll(dsp::Workspace* ws) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ws->set_pooling(pooling_);
  workspaces_.push_back(ws);
}

void WorkspacePool::retire(dsp::Workspace* ws) {
  const std::lock_guard<std::mutex> lock(mutex_);
  workspaces_.erase(
      std::remove(workspaces_.begin(), workspaces_.end(), ws),
      workspaces_.end());
}

void WorkspacePool::set_pooling(bool enabled) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pooling_ = enabled;
  for (dsp::Workspace* ws : workspaces_) ws->set_pooling(enabled);
}

bool WorkspacePool::pooling() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pooling_;
}

dsp::Workspace::Stats WorkspacePool::total_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  dsp::Workspace::Stats total;
  for (const dsp::Workspace* ws : workspaces_) {
    total.checkouts += ws->stats().checkouts;
    total.heap_allocations += ws->stats().heap_allocations;
    total.returns += ws->stats().returns;
  }
  return total;
}

void WorkspacePool::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (dsp::Workspace* ws : workspaces_) ws->reset_stats();
}

void WorkspacePool::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (dsp::Workspace* ws : workspaces_) ws->clear();
}

}  // namespace ecocap::core
