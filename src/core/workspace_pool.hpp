#pragma once

#include <mutex>
#include <vector>

#include "dsp/workspace.hpp"

namespace ecocap::core {

/// Process-wide registry of per-thread dsp::Workspace arenas, the companion
/// of core::ThreadPool for the zero-copy pipeline: every TrialRunner worker
/// (and the main thread) gets its own workspace via `local()`, so a whole
/// trial block reuses one arena with no locking on the checkout path.
///
/// `set_pooling(false)` switches every current and future workspace to the
/// allocate-per-checkout mode — the "before" baseline the e2e benchmark
/// measures against. `total_stats()` sums the counting hooks across
/// threads; the per-thread counters are unsynchronized, so read them only
/// while the pool's workers are quiescent (between parallel regions).
class WorkspacePool {
 public:
  static WorkspacePool& shared();

  /// This thread's workspace (created and registered on first use).
  dsp::Workspace& local();

  void set_pooling(bool enabled);
  bool pooling() const;

  dsp::Workspace::Stats total_stats() const;
  void reset_stats();

  /// Drop every registered thread's pooled buffers.
  void clear();

 private:
  WorkspacePool() = default;

  void enroll(dsp::Workspace* ws);
  void retire(dsp::Workspace* ws);

  struct Registration;

  mutable std::mutex mutex_;
  std::vector<dsp::Workspace*> workspaces_;
  bool pooling_ = true;
};

}  // namespace ecocap::core
