#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecocap::core {

/// Fixed-size worker pool for sharding independent Monte-Carlo work. There
/// is deliberately no work stealing and no per-task queue: a parallel_for
/// hands every worker the same claim counter, so scheduling is a single
/// fetch_add and the only shared mutable state during a job is that counter.
/// Determinism is the caller's contract — parallel_for promises nothing
/// about *which* thread runs an index, so callers must make each index's
/// work self-contained (see TrialRunner).
class ThreadPool {
 public:
  /// `workers == 0` picks the default: the ECOCAP_THREADS environment
  /// variable when set to a positive integer, else
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers participating in a job (spawned threads + the caller).
  unsigned size() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Worker count the default constructor would choose.
  static unsigned default_worker_count();

  /// Run fn(i) for every i in [0, n). Indices are claimed from a shared
  /// atomic counter; the calling thread participates, so a 1-worker pool
  /// runs everything inline. Blocks until all n calls return. The first
  /// exception thrown by fn is rethrown on the caller after the job drains.
  /// A parallel_for issued from inside a running job (nesting) executes
  /// fully inline on the calling thread — safe, but not parallel.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, built lazily with the default worker count. The
  /// harnesses share it so a sweep-of-sweeps doesn't oversubscribe.
  static ThreadPool& shared();

 private:
  struct Job;
  void worker_loop();
  static void run_job(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;       // guarded by mutex_
  std::uint64_t epoch_ = 0;  // bumped per job so workers never re-enter one
  bool stop_ = false;
};

}  // namespace ecocap::core
