#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ecocap::core {

/// What a bounded ring does when a push meets a full buffer. The policy is
/// the caller's (per push), not the ring's: one ring can serve a blocking
/// data plane and a lossy telemetry plane at once.
enum class Overflow {
  /// Refuse the push (the caller spins/yields — the sample-pipeline
  /// behaviour, where losing a block would corrupt the stream).
  kBlock,
  /// Evict the oldest unconsumed element to make room; the push always
  /// succeeds. Keeps the *newest* data under overload (telemetry,
  /// heartbeats) at bounded memory.
  kDropOldest,
  /// Discard the pushed element; the ring keeps the oldest data.
  kDropNewest,
};

/// Lock-free single-producer/single-consumer ring buffer — the coupling
/// element between the streaming transceiver's pipeline stages (the
/// `smplbuf` role in the obts-transceiver architecture ROADMAP item 1
/// names) and the runtime layer's daemon -> supervisor telemetry queues.
///
/// Concurrency contract:
///  * exactly one thread calls push-side methods (the producer) and exactly
///    one thread calls try_pop (the consumer); the two may run concurrently;
///  * every slot carries its own publication sequence (Vyukov bounded-queue
///    protocol): the producer writes the element and release-stores the
///    slot's sequence; a consumer that acquires the sequence sees the whole
///    element — a popped element is never torn;
///  * the head cursor is CAS-advanced, which is what makes the kDropOldest
///    policy safe: when the ring is full the *producer* may claim the
///    oldest slot exactly as a consumer would, racing the real consumer on
///    the CAS; whichever side wins consumes the element, the other retries.
///    With only kBlock/kDropNewest pushes the CAS is uncontended and the
///    ring behaves like the classic two-cursor SPSC queue;
///  * `close()` poisons the ring: subsequent pushes fail, pops drain the
///    remaining elements and then keep failing. Spin loops must check
///    `closed()` so a thread blocked on a full (or empty) ring exits when
///    its peer dies instead of spinning forever — the shutdown-deadlock
///    contract StreamPipeline's teardown relies on.
///
/// The cursors live on their own cache lines (`alignas(64)`) so the
/// producer's tail stores and the consumer's head stores do not false-share.
/// Capacity is rounded up to a power of two; cursors are free-running
/// 64-bit counters masked into the slot array (no wrap-around ambiguity,
/// full and empty are distinguishable without a sacrificial slot).
template <typename T>
class SpscRing {
 public:
  /// @param min_capacity elements the ring must hold; rounded up to a
  ///        power of two (>= 2). Throws std::invalid_argument on 0.
  explicit SpscRing(std::size_t min_capacity) {
    if (min_capacity == 0) {
      throw std::invalid_argument("SpscRing: capacity must be > 0");
    }
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side: move `v` into the ring. Returns false (and leaves `v`
  /// unmoved) when the ring is full or closed.
  bool try_push(T&& v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[t & mask_];
    if (slot.seq.load(std::memory_order_acquire) != t) return false;  // full
    slot.value = std::move(v);
    slot.seq.store(t + 1, std::memory_order_release);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& v) {
    T copy = v;
    return try_push(std::move(copy));
  }

  /// Producer side, policy form. Returns the number of elements *lost* by
  /// this call (0 or 1) so the caller's drop accounting stays exact:
  ///  * kBlock — behaves like try_push; a full ring loses nothing but the
  ///    push may not have happened (check with the return of pushed());
  ///    prefer try_push + an explicit spin for that case;
  ///  * kDropOldest — evicts the oldest unconsumed element when full, then
  ///    pushes; returns 1 when an eviction happened;
  ///  * kDropNewest — discards `v` when full and returns 1.
  /// A push on a closed ring discards `v` and returns 1 under either drop
  /// policy (the element is lost either way; the producer should stop).
  std::size_t push(T&& v, Overflow policy) {
    std::size_t dropped = 0;
    for (;;) {
      if (try_push(std::move(v))) return dropped;
      if (closed_.load(std::memory_order_acquire) ||
          policy == Overflow::kDropNewest) {
        return dropped + 1;
      }
      if (policy == Overflow::kBlock) return dropped;  // caller spins
      T evicted;
      if (try_pop(evicted)) ++dropped;  // lost race with the consumer: fine
    }
  }

  /// Consumer side: move the oldest element into `out`. Returns false when
  /// the ring is empty (drained, if closed).
  bool try_pop(T& out) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[h & mask_];
      const std::uint64_t s = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(s) - static_cast<std::int64_t>(h + 1);
      if (dif == 0) {
        // Claim the slot; an eviction-mode producer may race us here.
        if (head_.compare_exchange_weak(h, h + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(slot.value);
          slot.seq.store(h + capacity(), std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        h = head_.load(std::memory_order_relaxed);  // lost a race; reread
      }
    }
  }

  /// Poison the ring: wake both sides out of their spin loops. Idempotent;
  /// either side (or a supervisor) may call it.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy; exact when producer and consumer are quiescent.
  std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity(); }

 private:
  /// One element plus its publication sequence (Vyukov protocol):
  ///   seq == index                 -> slot free, producer may write
  ///   seq == index + 1             -> slot published, consumer may read
  ///   seq == index + capacity      -> slot consumed, free for the next lap
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  /// Producer cache line: the tail cursor it publishes.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  /// Consumer cache line (shared with eviction-mode producers via CAS).
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace ecocap::core
