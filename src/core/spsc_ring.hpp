#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ecocap::core {

/// Lock-free single-producer/single-consumer ring buffer — the coupling
/// element between the streaming transceiver's pipeline stages (the
/// `smplbuf` role in the obts-transceiver architecture ROADMAP item 1
/// names).
///
/// Concurrency contract:
///  * exactly one thread calls try_push (the producer) and exactly one
///    thread calls try_pop (the consumer); the two may run concurrently;
///  * the producer publishes a slot with a release store of `tail_` after
///    writing the element, and the consumer acquires `tail_` before reading
///    it — a popped element is always a whole element, never torn;
///  * symmetrically the consumer releases `head_` after moving an element
///    out, so the producer never overwrites a slot still being read.
///
/// The cursors live on their own cache lines (`alignas(64)`) so the
/// producer's tail stores and the consumer's head stores do not
/// false-share; each side additionally caches the other side's cursor and
/// refreshes it only when the ring looks full/empty, which keeps the
/// steady-state hot path free of cross-core traffic entirely.
///
/// Capacity is rounded up to a power of two; cursors are free-running
/// 64-bit counters masked into the slot array (no wrap-around ambiguity,
/// full and empty are distinguishable without a sacrificial slot).
template <typename T>
class SpscRing {
 public:
  /// @param min_capacity elements the ring must hold; rounded up to a
  ///        power of two (>= 2). Throws std::invalid_argument on 0.
  explicit SpscRing(std::size_t min_capacity) {
    if (min_capacity == 0) {
      throw std::invalid_argument("SpscRing: capacity must be > 0");
    }
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side: move `v` into the ring. Returns false (and leaves `v`
  /// unmoved) when the ring is full.
  bool try_push(T&& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= capacity()) return false;
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& v) {
    T copy = v;
    return try_push(std::move(copy));
  }

  /// Consumer side: move the oldest element into `out`. Returns false when
  /// the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy; exact when producer and consumer are quiescent.
  std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity(); }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Producer cache line: the tail cursor it publishes plus its private
  /// cache of the consumer's head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  /// Consumer cache line, symmetrically.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace ecocap::core
