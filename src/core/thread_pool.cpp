#include "core/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace ecocap::core {

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};  // workers currently inside run_job
  std::exception_ptr error;            // first failure, guarded by error_mutex
  std::mutex error_mutex;
};

unsigned ThreadPool::default_worker_count() {
  if (const char* env = std::getenv("ECOCAP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = default_worker_count();
  // The caller participates in every job, so spawn one fewer thread; a
  // single-worker pool is purely inline and thread-free.
  threads_.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

namespace {

/// True while this thread is executing a job's indices. A parallel_for
/// issued from inside a running job (e.g. an FDTD step inside a TrialRunner
/// leg) runs inline instead of re-entering the single-job pool.
thread_local bool t_in_job = false;

struct InJobScope {
  InJobScope() { t_in_job = true; }
  ~InJobScope() { t_in_job = false; }
};

}  // namespace

void ThreadPool::run_job(Job& job) {
  InJobScope scope;
  while (true) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || (job_ && epoch_ != seen_epoch); });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    run_job(*job);
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_in_job || threads_.empty() || n == 1) {
    // Nested jobs run inline: the pool handles one job at a time, and a
    // worker that blocked on a child job would deadlock the parent.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++epoch_;
  }
  wake_.notify_all();
  run_job(job);  // the caller is a worker too

  // Workers that joined must leave before the job can be torn down.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = nullptr;
    done_.wait(lock, [&] { return job.active.load(std::memory_order_acquire) == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ecocap::core
