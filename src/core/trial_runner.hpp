#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/thread_pool.hpp"
#include "dsp/rng.hpp"

namespace ecocap::core {

/// Shards N independent Monte-Carlo trials across a ThreadPool with results
/// that are bit-identical at any worker count.
///
/// Three invariants deliver that:
///  1. trial t draws randomness only from dsp::trial_rng(base_seed, t) — a
///     counter-derived stream that does not depend on which worker runs it;
///  2. trials are grouped into fixed-size blocks by index, and each block
///     accumulates into its own slot of a pre-sized vector — no worker ever
///     writes another block's slot, so no locks and no sharing;
///  3. block accumulators are merged sequentially in ascending block order,
///     so even floating-point sums associate identically every run.
/// The block decomposition depends only on (trials, block_size), never on
/// the thread count.
class TrialRunner {
 public:
  explicit TrialRunner(ThreadPool& pool, std::size_t block_size = 64)
      : pool_(&pool), block_size_(std::max<std::size_t>(block_size, 1)) {}

  /// Uses the process-shared pool.
  explicit TrialRunner(std::size_t block_size = 64)
      : TrialRunner(ThreadPool::shared(), block_size) {}

  std::size_t block_size() const { return block_size_; }
  ThreadPool& pool() const { return *pool_; }

  /// Run `trials` trials. `trial(t, rng, acc)` performs trial t and folds
  /// its outcome into the block-local accumulator; `merge(into, from)` folds
  /// one block accumulator into the running total. Acc must be
  /// default-constructible; its default state is the identity.
  template <typename Acc, typename TrialFn, typename MergeFn>
  Acc run(std::size_t trials, std::uint64_t base_seed, TrialFn&& trial,
          MergeFn&& merge) const {
    if (trials == 0) return Acc{};
    const std::size_t blocks = (trials + block_size_ - 1) / block_size_;
    std::vector<Acc> partial(blocks);
    pool_->parallel_for(blocks, [&](std::size_t b) {
      Acc acc{};
      const std::size_t lo = b * block_size_;
      const std::size_t hi = std::min(trials, lo + block_size_);
      for (std::size_t t = lo; t < hi; ++t) {
        dsp::Rng rng = dsp::trial_rng(base_seed, t);
        trial(t, rng, acc);
      }
      partial[b] = std::move(acc);
    });
    Acc total{};
    for (Acc& p : partial) merge(total, p);
    return total;
  }

 private:
  ThreadPool* pool_;
  std::size_t block_size_;
};

}  // namespace ecocap::core
