#include "core/inventory_session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ecocap::core {

InventorySession::InventorySession(Config config)
    : config_(std::move(config)),
      budget_(config_.structure),
      rng_(config_.seed) {
  config_.inventory.retry.validate();
  if (config_.supervisor.enabled) {
    supervisor_.emplace(config_.supervisor);  // ctor validates
  }
}

void InventorySession::deploy(const DeployedNode& node) {
  node::FirmwareConfig fc;
  fc.node_id = node.node_id;
  fc.uplink = config_.uplink;
  Slot slot;
  slot.info = node;
  slot.firmware =
      std::make_unique<node::Firmware>(fc, config_.seed ^ node.node_id);
  slot.firmware->power_on();  // session assumes the CBW is charging them
  nodes_.push_back(std::move(slot));
  if (supervisor_) supervisor_->track(node.node_id);
}

Real InventorySession::snr_for_distance(Real distance) const {
  // Round-trip amplitude ~ exp(-2 gamma d) -> power penalty 4 gamma d in
  // nepers = 8.686 * 4 * gamma * d dB... but the reader-node geometry only
  // doubles the one-way path; in dB: 2 * (20 log10 e) * gamma * d.
  const Real one_way_db =
      20.0 * std::log10(std::exp(1.0)) * config_.structure.effective_attenuation *
      distance;
  return config_.snr_at_contact_db - 2.0 * one_way_db;
}

bool InventorySession::node_reachable(Real distance) const {
  const auto range = budget_.max_powerup_range(config_.tx_voltage);
  return range.has_value() && *range >= distance;
}

reader::InventoryResult InventorySession::collect(
    const std::vector<std::uint8_t>& sensor_ids) {
  std::vector<reader::InventoriedNode> round;
  round.reserve(nodes_.size());
  // Ids the supervisor admitted this pass (in deployment order), so their
  // delivery outcomes can be fed back after the engine runs.
  std::vector<std::uint16_t> admitted;
  for (auto& s : nodes_) {
    if (!node_reachable(s.info.distance)) continue;  // unpowered: silent
    if (supervisor_ && !supervisor_->admit(s.info.node_id)) continue;
    reader::InventoriedNode n;
    n.firmware = s.firmware.get();
    n.snr_db = snr_for_distance(s.info.distance);
    if (supervisor_) {
      // The node's current fallback rung buys decision SNR back.
      n.snr_db += supervisor_->snr_delta_db(s.info.node_id);
      admitted.push_back(s.info.node_id);
    }
    if (interference_.active) {
      // The neighbour's carrier rides under every node's backscatter; the
      // decision statistic sees the combined noise + interference floor.
      const Real cir = interference_.model.cir_db(
          config_.structure, s.info.distance, interference_.separation_m,
          interference_.carrier_offset_hz);
      n.snr_db = channel::sinr_db(n.snr_db, cir);
    }
    n.environment = s.info.environment;
    round.push_back(n);
  }
  auto cfg = config_.inventory;
  cfg.sensors_to_read = sensor_ids;
  if (supervisor_) cfg.slot_budget = config_.supervisor.round_slot_budget;
  // The engine seed is drawn exactly once per pass, supervised or not, so
  // enabling supervision never shifts the session's draw sequence.
  reader::InventoryEngine engine(cfg, rng_.engine()());
  // Bind this pass's fault realizations to (seed, pass index). An empty
  // plan attaches nothing so the engine keeps its legacy fast path.
  fault::Injector injector(config_.fault, config_.seed, pass_++);
  if (injector.active()) engine.set_fault_injector(&injector);
  reader::InventoryResult result = engine.run(round);
  if (supervisor_) {
    for (std::size_t i = 0; i < admitted.size(); ++i) {
      const std::uint16_t id = admitted[i];
      const bool delivered =
          std::find(result.inventoried_ids.begin(),
                    result.inventoried_ids.end(),
                    id) != result.inventoried_ids.end();
      supervisor_->observe(id, delivered, round[i].snr_db);
    }
    supervisor_->observe_round(result.stats);
  }
  return result;
}

void InventorySession::set_environment(std::uint16_t node_id,
                                       const node::ConcreteEnvironment& env) {
  for (auto& s : nodes_) {
    if (s.info.node_id == node_id) s.info.environment = env;
  }
}

void InventorySession::save(dsp::ser::Writer& w) const {
  w.rng("session.rng", rng_);
  w.u64("session.pass", pass_);
  w.u64("session.nodes", nodes_.size());
  for (const auto& s : nodes_) s.firmware->save(w);
  w.u64("session.supervised", supervisor_ ? 1 : 0);
  if (supervisor_) supervisor_->save(w);
}

void InventorySession::load(dsp::ser::Reader& r) {
  r.rng("session.rng", rng_);
  pass_ = r.u64("session.pass");
  const std::uint64_t n = r.u64("session.nodes");
  if (n != nodes_.size()) {
    throw std::runtime_error("checkpoint: deployed node count mismatch");
  }
  for (auto& s : nodes_) s.firmware->load(r);
  const bool supervised = r.u64("session.supervised") != 0;
  if (supervised != supervisor_.has_value()) {
    throw std::runtime_error("checkpoint: supervisor enablement mismatch");
  }
  if (supervisor_) supervisor_->load(r);
}

}  // namespace ecocap::core
