#include "core/inventory_session.hpp"

#include <cmath>
#include <utility>

namespace ecocap::core {

InventorySession::InventorySession(Config config)
    : config_(std::move(config)),
      budget_(config_.structure),
      rng_(config_.seed) {}

void InventorySession::deploy(const DeployedNode& node) {
  node::FirmwareConfig fc;
  fc.node_id = node.node_id;
  fc.uplink = config_.uplink;
  Slot slot;
  slot.info = node;
  slot.firmware =
      std::make_unique<node::Firmware>(fc, config_.seed ^ node.node_id);
  slot.firmware->power_on();  // session assumes the CBW is charging them
  nodes_.push_back(std::move(slot));
}

Real InventorySession::snr_for_distance(Real distance) const {
  // Round-trip amplitude ~ exp(-2 gamma d) -> power penalty 4 gamma d in
  // nepers = 8.686 * 4 * gamma * d dB... but the reader-node geometry only
  // doubles the one-way path; in dB: 2 * (20 log10 e) * gamma * d.
  const Real one_way_db =
      20.0 * std::log10(std::exp(1.0)) * config_.structure.effective_attenuation *
      distance;
  return config_.snr_at_contact_db - 2.0 * one_way_db;
}

bool InventorySession::node_reachable(Real distance) const {
  const auto range = budget_.max_powerup_range(config_.tx_voltage);
  return range.has_value() && *range >= distance;
}

reader::InventoryResult InventorySession::collect(
    const std::vector<std::uint8_t>& sensor_ids) {
  std::vector<reader::InventoriedNode> round;
  round.reserve(nodes_.size());
  for (auto& s : nodes_) {
    if (!node_reachable(s.info.distance)) continue;  // unpowered: silent
    reader::InventoriedNode n;
    n.firmware = s.firmware.get();
    n.snr_db = snr_for_distance(s.info.distance);
    n.environment = s.info.environment;
    round.push_back(n);
  }
  auto cfg = config_.inventory;
  cfg.sensors_to_read = sensor_ids;
  reader::InventoryEngine engine(cfg, rng_.engine()());
  // Bind this pass's fault realizations to (seed, pass index). An empty
  // plan attaches nothing so the engine keeps its legacy fast path.
  fault::Injector injector(config_.fault, config_.seed, pass_++);
  if (injector.active()) engine.set_fault_injector(&injector);
  return engine.run(round);
}

void InventorySession::set_environment(std::uint16_t node_id,
                                       const node::ConcreteEnvironment& env) {
  for (auto& s : nodes_) {
    if (s.info.node_id == node_id) s.info.environment = env;
  }
}

}  // namespace ecocap::core
