#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "dsp/types.hpp"

namespace ecocap::core {

/// The streaming transceiver's driving clock (the `radioClock` role of the
/// obts-transceiver architecture): it owns the block cadence of the sample
/// stream and the simulated-time / wall-time bookkeeping behind the
/// real-time-factor headline metric.
///
/// The clock is purely accounting — stages advance it by the samples they
/// actually produced (`advance`), and it answers "how many simulated
/// seconds is that" and "how fast relative to the wall" at any point. It
/// never sleeps: a simulated reader is allowed to run faster than real
/// time, and `real_time_factor() >= 1` is exactly the claim that it could
/// keep up with a live ADC at `fs`.
class StreamClock {
 public:
  /// @param fs sample rate of the stream (Hz)
  /// @param block_size nominal samples per block (the cadence)
  StreamClock(dsp::Real fs, std::size_t block_size)
      : fs_(fs), block_size_(block_size), start_(Clock::now()) {
    if (fs <= 0.0 || block_size == 0) {
      throw std::invalid_argument("StreamClock: fs and block_size must be > 0");
    }
  }

  dsp::Real fs() const { return fs_; }
  std::size_t block_size() const { return block_size_; }

  /// Account `n` produced samples (one block; the final block of a segment
  /// may be short).
  void advance(std::size_t n) {
    samples_ += n;
    ++blocks_;
  }

  std::uint64_t blocks() const { return blocks_; }
  std::uint64_t samples() const { return samples_; }

  /// Arm the deadline monitor: the stream is considered "on deadline" while
  /// `wall_seconds() <= sim_seconds() * factor + grace_s`. A factor of 1 is
  /// the live-ADC contract (the pipeline keeps up with real time); larger
  /// factors tolerate slower-than-real-time hosts. Factor <= 0 disarms.
  ///
  /// Deadline accounting is *wall-clock* health telemetry for the runtime
  /// watchdog — inherently nondeterministic, so it must never feed a
  /// checkpoint or any decoded-value path.
  void arm_deadline(dsp::Real factor, dsp::Real grace_s = 0.0) {
    deadline_factor_ = factor;
    deadline_grace_s_ = grace_s;
  }

  /// Check the armed deadline at a block/poll boundary. Returns true (and
  /// counts a miss) when the stream has fallen behind its wall budget.
  bool check_deadline() {
    if (deadline_factor_ <= 0.0) return false;
    const bool missed =
        wall_seconds() > sim_seconds() * deadline_factor_ + deadline_grace_s_;
    if (missed) ++deadline_misses_;
    return missed;
  }

  /// Cumulative misses since construction / the last restart.
  std::uint64_t deadline_misses() const { return deadline_misses_; }

  /// How far wall time is ahead of the sim-time budget, seconds (<= 0 when
  /// on deadline). Health telemetry for the degradation ladder.
  dsp::Real behind_seconds() const {
    if (deadline_factor_ <= 0.0) return 0.0;
    return wall_seconds() -
           (sim_seconds() * deadline_factor_ + deadline_grace_s_);
  }

  /// Simulated stream time covered so far, seconds.
  dsp::Real sim_seconds() const {
    return static_cast<dsp::Real>(samples_) / fs_;
  }

  /// Wall time since construction (or the last restart), seconds.
  dsp::Real wall_seconds() const {
    return std::chrono::duration<dsp::Real>(Clock::now() - start_).count();
  }

  /// Simulated seconds per wall second; the headline streaming metric.
  dsp::Real real_time_factor() const {
    const dsp::Real wall = wall_seconds();
    return wall > 0.0 ? sim_seconds() / wall : 0.0;
  }

  /// Zero the sample/block counters and restart the wall clock.
  void restart() {
    samples_ = 0;
    blocks_ = 0;
    deadline_misses_ = 0;
    start_ = Clock::now();
  }

  /// Restore the deterministic counters after a checkpoint resume and give
  /// the resumed run a fresh wall-clock epoch (wall time is not — and must
  /// not be — part of any checkpoint).
  void resume_at(std::uint64_t samples, std::uint64_t blocks) {
    samples_ = samples;
    blocks_ = blocks;
    deadline_misses_ = 0;
    start_ = Clock::now();
  }

 private:
  using Clock = std::chrono::steady_clock;
  dsp::Real fs_;
  std::size_t block_size_;
  std::uint64_t samples_ = 0;
  std::uint64_t blocks_ = 0;
  dsp::Real deadline_factor_ = 0.0;
  dsp::Real deadline_grace_s_ = 0.0;
  std::uint64_t deadline_misses_ = 0;
  Clock::time_point start_;
};

}  // namespace ecocap::core
