#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "dsp/types.hpp"

namespace ecocap::core {

/// The streaming transceiver's driving clock (the `radioClock` role of the
/// obts-transceiver architecture): it owns the block cadence of the sample
/// stream and the simulated-time / wall-time bookkeeping behind the
/// real-time-factor headline metric.
///
/// The clock is purely accounting — stages advance it by the samples they
/// actually produced (`advance`), and it answers "how many simulated
/// seconds is that" and "how fast relative to the wall" at any point. It
/// never sleeps: a simulated reader is allowed to run faster than real
/// time, and `real_time_factor() >= 1` is exactly the claim that it could
/// keep up with a live ADC at `fs`.
class StreamClock {
 public:
  /// @param fs sample rate of the stream (Hz)
  /// @param block_size nominal samples per block (the cadence)
  StreamClock(dsp::Real fs, std::size_t block_size)
      : fs_(fs), block_size_(block_size), start_(Clock::now()) {
    if (fs <= 0.0 || block_size == 0) {
      throw std::invalid_argument("StreamClock: fs and block_size must be > 0");
    }
  }

  dsp::Real fs() const { return fs_; }
  std::size_t block_size() const { return block_size_; }

  /// Account `n` produced samples (one block; the final block of a segment
  /// may be short).
  void advance(std::size_t n) {
    samples_ += n;
    ++blocks_;
  }

  std::uint64_t blocks() const { return blocks_; }
  std::uint64_t samples() const { return samples_; }

  /// Simulated stream time covered so far, seconds.
  dsp::Real sim_seconds() const {
    return static_cast<dsp::Real>(samples_) / fs_;
  }

  /// Wall time since construction (or the last restart), seconds.
  dsp::Real wall_seconds() const {
    return std::chrono::duration<dsp::Real>(Clock::now() - start_).count();
  }

  /// Simulated seconds per wall second; the headline streaming metric.
  dsp::Real real_time_factor() const {
    const dsp::Real wall = wall_seconds();
    return wall > 0.0 ? sim_seconds() / wall : 0.0;
  }

  /// Zero the sample/block counters and restart the wall clock.
  void restart() {
    samples_ = 0;
    blocks_ = 0;
    start_ = Clock::now();
  }

 private:
  using Clock = std::chrono::steady_clock;
  dsp::Real fs_;
  std::size_t block_size_;
  std::uint64_t samples_ = 0;
  std::uint64_t blocks_ = 0;
  Clock::time_point start_;
};

}  // namespace ecocap::core
