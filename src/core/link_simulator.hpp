#pragma once

#include <limits>
#include <memory>
#include <optional>

#include "channel/concrete_channel.hpp"
#include "fault/fault.hpp"
#include "node/capsule.hpp"
#include "reader/receiver.hpp"
#include "reader/transmitter.hpp"

namespace ecocap::core {

using dsp::Real;

/// Everything needed to stand up one reader <-> capsule link through a
/// structure. This is the library's primary entry point: configure it, call
/// interrogate(), get decoded sensor data plus the physical diagnostics.
struct SystemConfig {
  reader::TransmitterConfig transmitter;
  reader::ReceiverConfig receiver;
  node::CapsuleConfig capsule;
  channel::Structure structure;
  channel::ChannelConfig channel;
  /// Deterministic fault-injection plan; empty (the default) is perfectly
  /// inert — the pipeline stays bit-identical to a plan-free build.
  fault::FaultPlan fault;
  std::uint64_t seed = 1;
};

/// Sensible defaults matching the paper's prototype: 230 kHz carrier, 60
/// degree PLA prism, 1 kbps FM0 uplink at a 4 kHz BLF, a 15 cm NC block at
/// 20 cm distance.
SystemConfig default_system();

/// Immutable shared snapshot of a system configuration. Monte-Carlo sweeps
/// build one snapshot and hand it to every per-trial simulator, so the
/// heavyweight members (the channel scatterer list in particular) are shared
/// instead of copied per trial.
using SystemSnapshot = std::shared_ptr<const SystemConfig>;

/// Outcome of a full interrogation round-trip at the waveform level.
struct InterrogationResult {
  bool node_powered = false;
  bool command_decoded = false;   // node decoded at least one command
  bool uplink_decoded = false;    // reader recovered the node's frame
  double cap_voltage = 0.0;       // V on the node's storage cap at the end
  /// Decision-domain SNR of the decoded uplink frame; NaN until a frame is
  /// validly decoded (an undecoded round has no SNR measurement, and the
  /// old 0.0 sentinel was indistinguishable from a genuine 0 dB link).
  double uplink_snr_db = std::numeric_limits<double>::quiet_NaN();
  double carrier_estimate = 0.0;
  phy::Bits uplink_payload;       // raw decoded payload bits
  std::optional<double> sensor_value;  // when a Read round-trip succeeded
};

/// Waveform-level single-link simulator: reader TX -> concrete channel ->
/// capsule (harvest, demodulate, firmware) -> backscatter -> channel ->
/// reader RX. One instance per experiment; deterministic under its seed.
class LinkSimulator {
 public:
  /// Owning construction: wraps the config into a private snapshot.
  explicit LinkSimulator(SystemConfig config);

  /// Shared-snapshot construction; the trial seed is `snapshot->seed`.
  explicit LinkSimulator(SystemSnapshot snapshot);

  /// Shared-snapshot construction with an explicit seed override — the
  /// per-trial form: one snapshot, many simulators, distinct seeds.
  LinkSimulator(SystemSnapshot snapshot, std::uint64_t seed);

  /// Charge-only round: send CBW for `duration` and report the capsule's
  /// harvest state.
  InterrogationResult charge(Real duration);

  /// Full protocol round: Query (Q=0 so the node answers immediately),
  /// decode RN16, then Ack + Read of the given sensor, all at the waveform
  /// level with the configured channel impairments.
  InterrogationResult interrogate(node::SensorId sensor,
                                  const node::ConcreteEnvironment& env);

  /// Raw uplink experiment: the node backscatters `payload` once powered;
  /// returns the receiver's decode and SNR (Figs. 15-18 harness).
  InterrogationResult uplink_once(const phy::Bits& payload);

  /// Time-of-flight ranging: localize the node by the round-trip delay of
  /// its backscatter (the node starts switching when the CBW reaches it,
  /// so the preamble arrives 2 d / C_s after transmission). Addresses the
  /// §3.2 problem that capsule positions inside the wall are unknown.
  struct RangeEstimate {
    bool valid = false;
    Real distance = 0.0;        // m, estimated
    Real round_trip_s = 0.0;    // measured preamble arrival time
  };
  RangeEstimate estimate_node_distance();

  const SystemConfig& config() const { return *config_; }
  std::uint64_t seed() const { return seed_; }
  node::EcoCapsule& capsule() { return capsule_; }
  reader::Receiver& receiver() { return receiver_; }
  /// Per-trial fault source bound to this simulator's seed; inert when the
  /// config's plan is empty.
  fault::Injector& injector() { return injector_; }

 private:
  /// Ensure the node is powered by streaming CBW into it.
  bool power_up();

  /// Downlink leg: propagate, scale to node volts, then apply the
  /// channel-layer faults at the node. Uplink leg: propagate, apply the
  /// channel-layer faults plus ADC saturation at the reader.
  void faulted_downlink(const dsp::Signal& tx, dsp::Signal& at_node);
  void faulted_uplink(const dsp::Signal& emission, dsp::Signal& at_reader);

  SystemSnapshot config_;
  std::uint64_t seed_ = 0;
  dsp::Rng rng_;
  reader::Transmitter transmitter_;
  reader::Receiver receiver_;
  channel::ConcreteChannel channel_;
  node::EcoCapsule capsule_;
  fault::Injector injector_;
};

/// Aggregate of many independent waveform-level uplink rounds (the Monte
/// Carlo behind Figs. 15-18 style link sweeps).
struct UplinkSweepResult {
  std::size_t trials = 0;
  std::size_t powered = 0;
  std::size_t decoded = 0;
  Real snr_db_sum = 0.0;  // over decoded trials only

  Real decode_rate() const {
    return trials ? static_cast<Real>(decoded) / static_cast<Real>(trials)
                  : 0.0;
  }
  Real mean_snr_db() const {
    return decoded ? snr_db_sum / static_cast<Real>(decoded) : 0.0;
  }
};

/// Run `trials` independent LinkSimulator::uplink_once rounds in parallel on
/// the process-shared pool. Trial t builds its own simulator seeded with
/// trial_seed(base.seed, t), so the aggregate is bit-identical regardless of
/// thread count.
UplinkSweepResult uplink_sweep(const SystemConfig& base,
                               const phy::Bits& payload, std::size_t trials);

}  // namespace ecocap::core
