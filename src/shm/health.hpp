#pragma once

#include <array>
#include <string>

#include "dsp/types.hpp"

namespace ecocap::shm {

using dsp::Real;

/// Structural health level based on pedestrian area occupancy (PAO,
/// m^2 per pedestrian) — paper §6 and Table 2 (after [40]). A is best; at
/// H <= 1 m^2/ped the bridge is overloaded and may collapse.
enum class HealthLevel { kA, kB, kC, kD, kE, kF };

char health_letter(HealthLevel level);

/// Regional level-of-service standards of Table 2.
enum class Region { kUnitedStates, kHongKong, kBangkok, kManila };

std::string region_name(Region region);

/// The five PAO thresholds for a region: level is A above thresholds[0],
/// B above thresholds[1], ... F below thresholds[4]. Values in m^2/ped.
std::array<Real, 5> pao_thresholds(Region region);

/// Grade a PAO value under a regional standard (Table 2).
HealthLevel grade_pao(Real pao, Region region);

/// Structural limit checks of the pilot footbridge (§6): the bridge is
/// considered at risk when any instantaneous threshold is exceeded.
struct BridgeLimits {
  Real max_vertical_acceleration = 0.7;   // m/s^2
  Real max_lateral_acceleration = 0.15;   // m/s^2
  Real max_steel_stress = 355.0e6;        // Pa
  Real max_midspan_deflection = 0.1083;   // m
  Real min_pao = 1.0;                     // m^2 per pedestrian
};

struct LimitCheck {
  bool vertical_ok = true;
  bool lateral_ok = true;
  bool stress_ok = true;
  bool deflection_ok = true;
  bool pao_ok = true;
  bool all_ok() const {
    return vertical_ok && lateral_ok && stress_ok && deflection_ok && pao_ok;
  }
};

LimitCheck check_limits(Real vertical_acc, Real lateral_acc, Real stress_pa,
                        Real deflection_m, Real pao,
                        const BridgeLimits& limits = {});

}  // namespace ecocap::shm
