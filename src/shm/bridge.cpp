#include "shm/bridge.hpp"

#include <algorithm>
#include <cmath>

namespace ecocap::shm {

FootbridgeModel::FootbridgeModel(Config config, std::uint64_t seed)
    : config_(std::move(config)),
      pedestrians_(config_.pedestrians, seed ^ 0xfeed),
      rng_(seed) {}

BridgeState FootbridgeModel::step(Real t_days, const WeatherSample& weather) {
  return step(t_days, weather, LoadModifiers{});
}

BridgeState FootbridgeModel::step(Real t_days, const WeatherSample& weather,
                                  const LoadModifiers& mods) {
  BridgeState state;
  state.t_days = t_days;
  state.weather = weather;

  const int total =
      pedestrians_.sample_count(t_days, weather, mods.occupancy_factor);
  state.total_pedestrians = total;

  // Distribute pedestrians over sections: the main span (sections B-D)
  // carries through-traffic; the approaches see slightly fewer.
  const std::array<Real, 5> weights{0.18, 0.22, 0.22, 0.22, 0.16};
  int assigned = 0;
  for (int s = 0; s < 5; ++s) {
    int n;
    if (s == 4) {
      n = total - assigned;
    } else {
      n = static_cast<int>(std::floor(weights[static_cast<std::size_t>(s)] *
                                      static_cast<Real>(total)));
      // Spread the rounding remainder pseudo-randomly.
      if (rng_.chance(weights[static_cast<std::size_t>(s)] * total -
                      std::floor(weights[static_cast<std::size_t>(s)] * total))) {
        ++n;
      }
    }
    n = std::max(n, 0);
    assigned += n;

    auto& sec = state.sections[static_cast<std::size_t>(s)];
    sec.pedestrians = n;
    sec.pao = pedestrian_area_occupancy(config_.geometry.section_area(), n);
    sec.walking_speed = (n > 0) ? pedestrians_.walking_speed(n, weather) : 0.0;
    sec.health = std::isinf(sec.pao)
                     ? HealthLevel::kA
                     : grade_pao(sec.pao, config_.region);

    // Structural response: footfall excitation ~ sqrt(N) (uncorrelated
    // walkers), wind buffeting ~ v^2, plus ambient noise. Mid-span sections
    // respond ~1.4x more than the approaches (mode shape).
    const Real mode_gain = (s >= 1 && s <= 3) ? 1.4 : 1.0;
    const Real wind2 = weather.wind_speed * weather.wind_speed;
    Real excitation =
        config_.footfall_accel * std::sqrt(static_cast<Real>(n)) +
        config_.wind_accel * wind2;
    // Scenario modulation, exact-identity gated: a softened structure
    // responds ~1/k harder to the same load; seismic shaking adds ground
    // motion on top. With identity modifiers neither branch executes.
    if (mods.stiffness_factor != 1.0) excitation /= mods.stiffness_factor;
    if (mods.ground_accel != 0.0) excitation += mods.ground_accel;
    sec.vertical_acceleration =
        mode_gain * (excitation + std::abs(rng_.gaussian(config_.accel_noise)));
    // Give it a random sign: the paper plots signed samples whose envelope
    // is what matters.
    if (rng_.chance(0.5)) sec.vertical_acceleration = -sec.vertical_acceleration;
    sec.lateral_acceleration = 0.18 * sec.vertical_acceleration;

    sec.stress_mpa = config_.dead_stress_mpa +
                     config_.ped_stress_mpa * static_cast<Real>(n) * mode_gain +
                     config_.wind_stress_mpa * wind2 +
                     rng_.gaussian(0.4);
    sec.deflection_m =
        config_.ped_deflection * static_cast<Real>(n) * mode_gain +
        2.0e-5 * wind2;
    if (mods.stiffness_factor != 1.0) {
      // Softening amplifies the live (load-borne) response; the dead-load
      // stress offset is a constant of the steelwork, not of its stiffness.
      const Real soften = 1.0 / mods.stiffness_factor;
      sec.stress_mpa = config_.dead_stress_mpa +
                       (sec.stress_mpa - config_.dead_stress_mpa) * soften;
      sec.deflection_m *= soften;
    }
  }
  return state;
}

void FootbridgeModel::save(dsp::ser::Writer& w) const {
  w.rng("bridge.rng", rng_);
  pedestrians_.save(w);
}

void FootbridgeModel::load(dsp::ser::Reader& r) {
  r.rng("bridge.rng", rng_);
  pedestrians_.load(r);
}

}  // namespace ecocap::shm
