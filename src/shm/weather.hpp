#pragma once

#include <vector>

#include "dsp/rng.hpp"
#include "dsp/serialize.hpp"
#include "dsp/types.hpp"

namespace ecocap::shm {

using dsp::Real;

/// Instantaneous ambient conditions at the bridge site.
struct WeatherSample {
  Real temperature_c = 28.0;
  Real humidity_pct = 75.0;
  Real pressure_kpa = 99.0;
  Real wind_speed = 3.0;    // m/s
  Real rain_mm_per_h = 0.0;
  bool storm = false;
};

/// A storm (tropical cyclone) window within the campaign.
struct StormEvent {
  Real start_day = 14.0;  // days since campaign start
  Real end_day = 22.0;
  Real peak_wind = 24.0;  // m/s sustained
};

/// Synthetic subtropical summer weather (the pilot's July-2021 campaign):
/// diurnal temperature/humidity cycles, slow pressure drift, and a
/// week-long tropical cyclone matching the paper's July 15-23 window during
/// which the acceleration/stress records show clear excursions (Fig. 21).
class WeatherModel {
 public:
  struct Config {
    Real mean_temperature = 29.0;  // degC
    Real diurnal_swing = 3.5;      // degC half-amplitude
    Real mean_humidity = 78.0;     // %
    Real mean_pressure = 99.2;     // kPa
    Real base_wind = 3.0;          // m/s
    std::vector<StormEvent> storms = {StormEvent{}};
  };

  WeatherModel(Config config, std::uint64_t seed);

  /// Sample conditions at `t_days` days since campaign start.
  WeatherSample sample(Real t_days);

  /// Checkpoint the model's mutable state (the RNG stream; the config is
  /// rebuilt from the campaign config on resume).
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  Config config_;
  dsp::Rng rng_;
};

}  // namespace ecocap::shm
