#include "shm/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace ecocap::shm {

namespace {
void accumulate(reader::InventoryStats& into,
                const reader::InventoryStats& s) {
  into.rounds += s.rounds;
  into.slots += s.slots;
  into.empty_slots += s.empty_slots;
  into.collisions += s.collisions;
  into.singleton_slots += s.singleton_slots;
  into.acked += s.acked;
  into.read_ok += s.read_ok;
  into.read_failed += s.read_failed;
  into.retries += s.retries;
  into.timeouts += s.timeouts;
  into.crc_fails += s.crc_fails;
  into.giveups += s.giveups;
  into.backoff_slots += s.backoff_slots;
}
}  // namespace

MonitoringCampaign::MonitoringCampaign(Config config)
    : config_(std::move(config)) {}

CampaignResult MonitoringCampaign::run() {
  CampaignResult result;
  const Real dt_s = config_.step_minutes * 60.0;
  result.acceleration = TimeSeries("midspan-acceleration", dt_s, "m/s^2");
  result.stress = TimeSeries("midspan-stress", dt_s, "MPa");
  result.stress_side = TimeSeries("sidespan-stress", dt_s, "MPa");
  result.humidity = TimeSeries("humidity", dt_s, "%RH");
  result.temperature = TimeSeries("air-temperature", dt_s, "degC");
  result.pressure = TimeSeries("barometric-pressure", dt_s, "kPa");
  result.pao = TimeSeries("worst-pao", dt_s, "m^2/ped");

  WeatherModel weather(config_.weather, config_.seed ^ 0x77);
  FootbridgeModel bridge(config_.bridge, config_.seed ^ 0xb1);

  // The EcoCapsule pilot deployment: capsules spread along the main span,
  // interrogated through the protocol stack every capsule_poll_hours.
  core::InventorySession::Config sess_cfg;
  sess_cfg.structure = channel::structures::s3_common_wall();
  sess_cfg.tx_voltage = 200.0;
  sess_cfg.inventory.q = 3;
  sess_cfg.inventory.retry = config_.retry;
  sess_cfg.fault = config_.fault;
  sess_cfg.seed = config_.seed ^ 0xcaf;
  core::InventorySession session(sess_cfg);
  for (int i = 0; i < config_.capsule_count; ++i) {
    core::DeployedNode n;
    n.node_id = static_cast<std::uint16_t>(0x100 + i);
    n.distance = 0.5 + 0.8 * static_cast<Real>(i);
    session.deploy(n);
  }

  // Per-channel hold state for the degradation path: (node, sensor) ->
  // (last good reading, the hour it was actually measured).
  std::map<std::pair<std::uint16_t, std::uint8_t>,
           std::pair<reader::SensorReading, Real>>
      last_good;

  const auto steps = static_cast<std::size_t>(
      config_.days * 24.0 * 60.0 / config_.step_minutes);
  const auto poll_every = static_cast<std::size_t>(
      config_.capsule_poll_hours * 60.0 / config_.step_minutes);
  const std::array<char, 5> letters{'A', 'B', 'C', 'D', 'E'};

  for (std::size_t k = 0; k < steps; ++k) {
    const Real t_days = static_cast<Real>(k) * config_.step_minutes / (24.0 * 60.0);
    const WeatherSample w = weather.sample(t_days);
    const BridgeState state = bridge.step(t_days, w);

    // The "conventional sensor" channels the paper plots.
    result.acceleration.push(state.sections[2].vertical_acceleration);
    result.stress.push(state.sections[2].stress_mpa);
    result.stress_side.push(state.sections[4].stress_mpa);
    result.humidity.push(w.humidity_pct);
    result.temperature.push(w.temperature_c);
    result.pressure.push(w.pressure_kpa);

    Real worst_pao = std::numeric_limits<Real>::infinity();
    for (int s = 0; s < 5; ++s) {
      const auto& sec = state.sections[static_cast<std::size_t>(s)];
      worst_pao = std::min(worst_pao, sec.pao);
      result.health_histogram[letters[static_cast<std::size_t>(s)]]
                             [health_letter(sec.health)]++;
      const LimitCheck check = check_limits(
          sec.vertical_acceleration, sec.lateral_acceleration,
          sec.stress_mpa * 1.0e6, sec.deflection_m,
          std::isinf(sec.pao) ? 100.0 : sec.pao);
      if (!check.all_ok()) ++result.limit_violations;
    }
    result.pao.push(std::isinf(worst_pao) ? 1000.0 : worst_pao);

    // Periodic minute report (sampled hourly to keep memory sane).
    if (k % 60 == 0) {
      std::array<SectionReport, 5> row;
      for (int s = 0; s < 5; ++s) {
        const auto& sec = state.sections[static_cast<std::size_t>(s)];
        row[static_cast<std::size_t>(s)] =
            SectionReport{letters[static_cast<std::size_t>(s)],
                          sec.pedestrians, sec.health, sec.walking_speed};
      }
      result.minute_reports.push_back(row);
    }

    // EcoCapsule interrogation: update environments from the bridge state,
    // then run a protocol-level inventory pass.
    if (poll_every > 0 && k % poll_every == 0) {
      for (int i = 0; i < config_.capsule_count; ++i) {
        node::ConcreteEnvironment env;
        env.temperature_c = w.temperature_c + 2.0;  // concrete runs warm
        env.relative_humidity = std::min<Real>(w.humidity_pct + 8.0, 100.0);
        env.acceleration = state.sections[2].vertical_acceleration;
        env.stress_mpa = state.sections[2].stress_mpa;
        env.strain_x = state.sections[2].stress_mpa * 1.0e6 / 27.8e9;
        env.strain_y = 0.4 * env.strain_x;
        session.set_environment(static_cast<std::uint16_t>(0x100 + i), env);
      }
      const std::vector<std::uint8_t> sensor_ids{
          static_cast<std::uint8_t>(node::SensorId::kAcceleration),
          static_cast<std::uint8_t>(node::SensorId::kStress)};
      const auto readings = session.collect(sensor_ids);
      result.capsule_readings.insert(result.capsule_readings.end(),
                                     readings.readings.begin(),
                                     readings.readings.end());
      accumulate(result.inventory_totals, readings.stats);

      // Graceful degradation: every (capsule, sensor) channel that has ever
      // reported gets a log entry each poll. Missing channels hold their
      // last good value and carry a staleness age for the dashboard.
      const Real now_hours = t_days * 24.0;
      for (const auto& r : readings.readings) {
        last_good[{r.node_id, r.sensor_id}] = {r, now_hours};
      }
      for (int i = 0; i < config_.capsule_count; ++i) {
        const auto node_id = static_cast<std::uint16_t>(0x100 + i);
        for (std::uint8_t sensor : sensor_ids) {
          const auto it = last_good.find({node_id, sensor});
          if (it == last_good.end()) continue;  // never reported: no value
          const Real age = now_hours - it->second.second;
          const bool stale = age > 0.0;
          result.capsule_log.push_back(
              CapsuleReading{it->second.first, stale, age});
          if (stale) {
            Real& worst = result.max_staleness_hours[node_id];
            worst = std::max(worst, age);
          }
        }
      }
    }
  }

  // Anomaly detection: rolling z-score of the acceleration envelope.
  const std::vector<Real> roll =
      result.acceleration.rolling_stddev(config_.baseline_window);
  // Baseline scale = median of the rolling stddev.
  std::vector<Real> sorted = roll;
  std::sort(sorted.begin(), sorted.end());
  const Real baseline = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  const Real short_window = 6.0 * 60.0 / config_.step_minutes;  // 6 h
  const std::vector<Real> short_roll = result.acceleration.rolling_stddev(
      static_cast<std::size_t>(short_window));

  bool in_anomaly = false;
  AnomalyWindow current;
  for (std::size_t k = 0; k < short_roll.size(); ++k) {
    const Real z = (baseline > 0.0) ? short_roll[k] / baseline : 0.0;
    const Real t_days = static_cast<Real>(k) * config_.step_minutes / (24.0 * 60.0);
    if (!in_anomaly && z > config_.zscore_threshold) {
      in_anomaly = true;
      current = AnomalyWindow{t_days, t_days, z};
    } else if (in_anomaly) {
      if (z > current.peak_zscore) current.peak_zscore = z;
      if (z < 0.7 * config_.zscore_threshold) {
        current.end_day = t_days;
        result.anomalies.push_back(current);
        in_anomaly = false;
      }
    }
  }
  if (in_anomaly) {
    current.end_day = config_.days;
    result.anomalies.push_back(current);
  }
  return result;
}

}  // namespace ecocap::shm
