#include "shm/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/workspace_pool.hpp"

namespace ecocap::shm {

namespace {

/// Checkpoint format tag; bump the version on any schema change so stale
/// files are rejected instead of misread (docs/benchmarks.md documents the
/// schema).
constexpr const char* kCheckpointHeader = "ecocap-campaign-checkpoint v1";

void accumulate(reader::InventoryStats& into,
                const reader::InventoryStats& s) {
  into.rounds += s.rounds;
  into.slots += s.slots;
  into.empty_slots += s.empty_slots;
  into.collisions += s.collisions;
  into.singleton_slots += s.singleton_slots;
  into.acked += s.acked;
  into.read_ok += s.read_ok;
  into.read_failed += s.read_failed;
  into.retries += s.retries;
  into.timeouts += s.timeouts;
  into.crc_fails += s.crc_fails;
  into.giveups += s.giveups;
  into.backoff_slots += s.backoff_slots;
  into.deadline_trips += s.deadline_trips;
}

/// (node, sensor) -> (last good reading, the hour it was measured).
using HoldMap = std::map<std::pair<std::uint16_t, std::uint8_t>,
                         std::pair<reader::SensorReading, Real>>;

void save_stats(dsp::ser::Writer& w, const reader::InventoryStats& s) {
  w.i64("stats.rounds", s.rounds);
  w.i64("stats.slots", s.slots);
  w.i64("stats.empty_slots", s.empty_slots);
  w.i64("stats.collisions", s.collisions);
  w.i64("stats.singleton_slots", s.singleton_slots);
  w.i64("stats.acked", s.acked);
  w.i64("stats.read_ok", s.read_ok);
  w.i64("stats.read_failed", s.read_failed);
  w.i64("stats.retries", s.retries);
  w.i64("stats.timeouts", s.timeouts);
  w.i64("stats.crc_fails", s.crc_fails);
  w.i64("stats.giveups", s.giveups);
  w.i64("stats.backoff_slots", s.backoff_slots);
  w.i64("stats.deadline_trips", s.deadline_trips);
}

void load_stats(dsp::ser::Reader& r, reader::InventoryStats& s) {
  s.rounds = static_cast<int>(r.i64("stats.rounds"));
  s.slots = static_cast<int>(r.i64("stats.slots"));
  s.empty_slots = static_cast<int>(r.i64("stats.empty_slots"));
  s.collisions = static_cast<int>(r.i64("stats.collisions"));
  s.singleton_slots = static_cast<int>(r.i64("stats.singleton_slots"));
  s.acked = static_cast<int>(r.i64("stats.acked"));
  s.read_ok = static_cast<int>(r.i64("stats.read_ok"));
  s.read_failed = static_cast<int>(r.i64("stats.read_failed"));
  s.retries = static_cast<int>(r.i64("stats.retries"));
  s.timeouts = static_cast<int>(r.i64("stats.timeouts"));
  s.crc_fails = static_cast<int>(r.i64("stats.crc_fails"));
  s.giveups = static_cast<int>(r.i64("stats.giveups"));
  s.backoff_slots = static_cast<int>(r.i64("stats.backoff_slots"));
  s.deadline_trips = static_cast<int>(r.i64("stats.deadline_trips"));
}

void save_series(dsp::ser::Writer& w, std::string_view key,
                 const TimeSeries& ts) {
  const auto span = ts.values();
  w.real_vec(key, std::vector<Real>(span.begin(), span.end()));
}

void load_series(dsp::ser::Reader& r, std::string_view key, TimeSeries& ts) {
  ts.set_values(r.real_vec(key));
}

void save_reading(dsp::ser::Writer& w, const reader::SensorReading& s) {
  w.u64("reading.node", s.node_id);
  w.u64("reading.sensor", s.sensor_id);
  w.real("reading.value", s.value);
}

reader::SensorReading load_reading(dsp::ser::Reader& r) {
  reader::SensorReading s;
  s.node_id = static_cast<std::uint16_t>(r.u64("reading.node"));
  s.sensor_id = static_cast<std::uint8_t>(r.u64("reading.sensor"));
  s.value = r.real("reading.value");
  return s;
}

void save_result(dsp::ser::Writer& w, const CampaignResult& res) {
  save_series(w, "series.acceleration", res.acceleration);
  save_series(w, "series.stress", res.stress);
  save_series(w, "series.stress_side", res.stress_side);
  save_series(w, "series.humidity", res.humidity);
  save_series(w, "series.temperature", res.temperature);
  save_series(w, "series.pressure", res.pressure);
  save_series(w, "series.pao", res.pao);

  w.u64("result.minute_reports", res.minute_reports.size());
  for (const auto& row : res.minute_reports) {
    for (const auto& sec : row) {
      w.i64("report.section", sec.section);
      w.i64("report.pedestrians", sec.pedestrians);
      w.i64("report.health", static_cast<std::int64_t>(sec.health));
      w.real("report.speed", sec.walking_speed);
    }
  }

  std::size_t hist_entries = 0;
  for (const auto& by_section : res.health_histogram) {
    hist_entries += by_section.second.size();
  }
  w.u64("result.health_histogram", hist_entries);
  for (const auto& [sec, m] : res.health_histogram) {
    for (const auto& [letter, count] : m) {
      w.i64("hist.section", sec);
      w.i64("hist.letter", letter);
      w.i64("hist.count", count);
    }
  }

  w.i64("result.limit_violations", res.limit_violations);

  w.u64("result.capsule_readings", res.capsule_readings.size());
  for (const auto& cr : res.capsule_readings) save_reading(w, cr);

  w.u64("result.capsule_log", res.capsule_log.size());
  for (const auto& entry : res.capsule_log) {
    save_reading(w, entry.reading);
    w.u64("log.stale", entry.stale ? 1 : 0);
    w.real("log.age_hours", entry.age_hours);
  }

  w.u64("result.max_staleness", res.max_staleness_hours.size());
  for (const auto& [node, hours] : res.max_staleness_hours) {
    w.u64("staleness.node", node);
    w.real("staleness.hours", hours);
  }

  save_stats(w, res.inventory_totals);
}

void load_result(dsp::ser::Reader& r, CampaignResult& res) {
  load_series(r, "series.acceleration", res.acceleration);
  load_series(r, "series.stress", res.stress);
  load_series(r, "series.stress_side", res.stress_side);
  load_series(r, "series.humidity", res.humidity);
  load_series(r, "series.temperature", res.temperature);
  load_series(r, "series.pressure", res.pressure);
  load_series(r, "series.pao", res.pao);

  const std::uint64_t rows = r.u64("result.minute_reports");
  res.minute_reports.clear();
  res.minute_reports.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::array<SectionReport, 5> row;
    for (auto& sec : row) {
      sec.section = static_cast<char>(r.i64("report.section"));
      sec.pedestrians = static_cast<int>(r.i64("report.pedestrians"));
      const std::int64_t h = r.i64("report.health");
      if (h < static_cast<std::int64_t>(HealthLevel::kA) ||
          h > static_cast<std::int64_t>(HealthLevel::kF)) {
        throw std::runtime_error("checkpoint: bad health level");
      }
      sec.health = static_cast<HealthLevel>(h);
      sec.walking_speed = r.real("report.speed");
    }
    res.minute_reports.push_back(row);
  }

  const std::uint64_t hist_entries = r.u64("result.health_histogram");
  res.health_histogram.clear();
  for (std::uint64_t i = 0; i < hist_entries; ++i) {
    const char sec = static_cast<char>(r.i64("hist.section"));
    const char letter = static_cast<char>(r.i64("hist.letter"));
    res.health_histogram[sec][letter] =
        static_cast<int>(r.i64("hist.count"));
  }

  res.limit_violations = static_cast<int>(r.i64("result.limit_violations"));

  const std::uint64_t readings = r.u64("result.capsule_readings");
  res.capsule_readings.clear();
  res.capsule_readings.reserve(readings);
  for (std::uint64_t i = 0; i < readings; ++i) {
    res.capsule_readings.push_back(load_reading(r));
  }

  const std::uint64_t log_entries = r.u64("result.capsule_log");
  res.capsule_log.clear();
  res.capsule_log.reserve(log_entries);
  for (std::uint64_t i = 0; i < log_entries; ++i) {
    CapsuleReading entry;
    entry.reading = load_reading(r);
    entry.stale = r.u64("log.stale") != 0;
    entry.age_hours = r.real("log.age_hours");
    res.capsule_log.push_back(entry);
  }

  const std::uint64_t stale_nodes = r.u64("result.max_staleness");
  res.max_staleness_hours.clear();
  for (std::uint64_t i = 0; i < stale_nodes; ++i) {
    const auto node = static_cast<std::uint16_t>(r.u64("staleness.node"));
    res.max_staleness_hours[node] = r.real("staleness.hours");
  }

  load_stats(r, res.inventory_totals);
}

}  // namespace

MonitoringCampaign::MonitoringCampaign(Config config)
    : config_(std::move(config)) {}

CampaignResult MonitoringCampaign::run() { return run_impl(false); }

CampaignResult MonitoringCampaign::resume() {
  if (config_.checkpoint_path.empty()) {
    throw std::runtime_error("resume: Config::checkpoint_path is empty");
  }
  return run_impl(true);
}

CampaignResult MonitoringCampaign::run_impl(bool from_checkpoint) {
  CampaignResult result;
  const Real dt_s = config_.step_minutes * 60.0;
  result.acceleration = TimeSeries("midspan-acceleration", dt_s, "m/s^2");
  result.stress = TimeSeries("midspan-stress", dt_s, "MPa");
  result.stress_side = TimeSeries("sidespan-stress", dt_s, "MPa");
  result.humidity = TimeSeries("humidity", dt_s, "%RH");
  result.temperature = TimeSeries("air-temperature", dt_s, "degC");
  result.pressure = TimeSeries("barometric-pressure", dt_s, "kPa");
  result.pao = TimeSeries("worst-pao", dt_s, "m^2/ped");

  WeatherModel weather(config_.weather, config_.seed ^ 0x77);
  FootbridgeModel bridge(config_.bridge, config_.seed ^ 0xb1);

  // The EcoCapsule pilot deployment: capsules spread along the main span,
  // interrogated through the protocol stack every capsule_poll_hours.
  core::InventorySession::Config sess_cfg;
  sess_cfg.structure = channel::structures::s3_common_wall();
  sess_cfg.tx_voltage = 200.0;
  sess_cfg.snr_at_contact_db = config_.capsule_snr_at_contact_db;
  sess_cfg.inventory.q = 3;
  sess_cfg.inventory.retry = config_.retry;
  sess_cfg.fault = config_.fault;
  sess_cfg.supervisor = config_.supervisor;
  sess_cfg.seed = config_.seed ^ 0xcaf;
  core::InventorySession session(sess_cfg);
  for (int i = 0; i < config_.capsule_count; ++i) {
    core::DeployedNode n;
    n.node_id = static_cast<std::uint16_t>(0x100 + i);
    n.distance = 0.5 + 0.8 * static_cast<Real>(i);
    session.deploy(n);
  }

  // Per-channel hold state for the degradation path.
  HoldMap last_good;
  std::size_t start_step = 0;

  if (from_checkpoint) {
    const auto content = dsp::ser::read_file(config_.checkpoint_path);
    if (!content) {
      throw std::runtime_error("resume: cannot read checkpoint " +
                               config_.checkpoint_path);
    }
    dsp::ser::Reader r(*content, kCheckpointHeader);
    // Config fingerprint: a checkpoint only resumes the campaign that
    // wrote it. Hexfloat round trips are exact, so == is the right test.
    if (r.real("config.days") != config_.days ||
        r.real("config.step_minutes") != config_.step_minutes ||
        static_cast<int>(r.i64("config.capsule_count")) !=
            config_.capsule_count ||
        r.real("config.poll_hours") != config_.capsule_poll_hours ||
        r.u64("config.seed") != config_.seed ||
        (r.u64("config.supervised") != 0) != config_.supervisor.enabled) {
      throw std::runtime_error(
          "resume: checkpoint was written by a different campaign config");
    }
    start_step = r.u64("campaign.cursor");
    load_result(r, result);
    const std::uint64_t held = r.u64("campaign.held");
    for (std::uint64_t i = 0; i < held; ++i) {
      const reader::SensorReading s = load_reading(r);
      const Real hours = r.real("held.hours");
      last_good[{s.node_id, s.sensor_id}] = {s, hours};
    }
    weather.load(r);
    bridge.load(r);
    session.load(r);
  }

  const auto steps = static_cast<std::size_t>(
      config_.days * 24.0 * 60.0 / config_.step_minutes);
  const auto poll_every = static_cast<std::size_t>(
      config_.capsule_poll_hours * 60.0 / config_.step_minutes);
  const std::size_t checkpoint_every =
      (config_.checkpoint_path.empty() || config_.checkpoint_hours <= 0.0)
          ? 0
          : static_cast<std::size_t>(config_.checkpoint_hours * 60.0 /
                                     config_.step_minutes);
  const std::array<char, 5> letters{'A', 'B', 'C', 'D', 'E'};

  if (config_.record_series) {
    // Size the sample logs once so the step loop never reallocates them
    // (the allocation-stability contract the fleet shards rely on).
    for (TimeSeries* ts :
         {&result.acceleration, &result.stress, &result.stress_side,
          &result.humidity, &result.temperature, &result.pressure,
          &result.pao}) {
      ts->reserve(steps);
    }
    result.minute_reports.reserve(steps / 60 + 1);
  }

  // State after step k-1 with cursor k resumes at step k: everything the
  // loop body mutates is serialized, so the continuation replays the exact
  // draw sequence of an uninterrupted run.
  const auto write_checkpoint = [&](std::size_t cursor) {
    dsp::ser::Writer w(kCheckpointHeader);
    w.real("config.days", config_.days);
    w.real("config.step_minutes", config_.step_minutes);
    w.i64("config.capsule_count", config_.capsule_count);
    w.real("config.poll_hours", config_.capsule_poll_hours);
    w.u64("config.seed", config_.seed);
    w.u64("config.supervised", config_.supervisor.enabled ? 1 : 0);
    w.u64("campaign.cursor", cursor);
    save_result(w, result);
    w.u64("campaign.held", last_good.size());
    for (const auto& entry : last_good) {
      save_reading(w, entry.second.first);
      w.real("held.hours", entry.second.second);
    }
    weather.save(w);
    bridge.save(w);
    session.save(w);
    if (!dsp::ser::atomic_write_file(config_.checkpoint_path, w.payload())) {
      throw std::runtime_error("checkpoint: cannot write " +
                               config_.checkpoint_path);
    }
  };

  for (std::size_t k = start_step; k < steps; ++k) {
    const Real t_days = static_cast<Real>(k) * config_.step_minutes / (24.0 * 60.0);
    const WeatherSample w = weather.sample(t_days);
    // Scenario modulation: evaluated fresh from t_days each step (pure
    // function), so resumed runs reconstruct the same modifier sequence.
    StepModifiers mods;
    if (config_.modulate) mods = config_.modulate(t_days);
    const BridgeState state = bridge.step(t_days, w, mods.load);

    // The "conventional sensor" channels the paper plots.
    if (config_.record_series) {
      result.acceleration.push(state.sections[2].vertical_acceleration);
      result.stress.push(state.sections[2].stress_mpa);
      result.stress_side.push(state.sections[4].stress_mpa);
      result.humidity.push(w.humidity_pct);
      result.temperature.push(w.temperature_c);
      result.pressure.push(w.pressure_kpa);
    }

    Real worst_pao = std::numeric_limits<Real>::infinity();
    for (int s = 0; s < 5; ++s) {
      const auto& sec = state.sections[static_cast<std::size_t>(s)];
      worst_pao = std::min(worst_pao, sec.pao);
      result.health_histogram[letters[static_cast<std::size_t>(s)]]
                             [health_letter(sec.health)]++;
      const LimitCheck check = check_limits(
          sec.vertical_acceleration, sec.lateral_acceleration,
          sec.stress_mpa * 1.0e6, sec.deflection_m,
          std::isinf(sec.pao) ? 100.0 : sec.pao);
      if (!check.all_ok()) ++result.limit_violations;
    }
    if (config_.record_series) {
      result.pao.push(std::isinf(worst_pao) ? 1000.0 : worst_pao);
    }

    if (config_.on_step) config_.on_step(k, t_days, w, state);

    // Periodic minute report (sampled hourly to keep memory sane).
    if (config_.record_series && k % 60 == 0) {
      std::array<SectionReport, 5> row;
      for (int s = 0; s < 5; ++s) {
        const auto& sec = state.sections[static_cast<std::size_t>(s)];
        row[static_cast<std::size_t>(s)] =
            SectionReport{letters[static_cast<std::size_t>(s)],
                          sec.pedestrians, sec.health, sec.walking_speed};
      }
      result.minute_reports.push_back(row);
    }

    // EcoCapsule interrogation: update environments from the bridge state,
    // then run a protocol-level inventory pass.
    if (poll_every > 0 && k % poll_every == 0) {
      // Scenario fault windows: the override plan binds to this poll's
      // injector (pass index is serialized, the plan is re-derived from
      // t_days — both resume-safe).
      if (mods.override_poll_fault) session.set_fault_plan(mods.poll_fault);
      for (int i = 0; i < config_.capsule_count; ++i) {
        node::ConcreteEnvironment env;
        env.temperature_c = w.temperature_c + 2.0;  // concrete runs warm
        env.relative_humidity = std::min<Real>(w.humidity_pct + 8.0, 100.0);
        env.acceleration = state.sections[2].vertical_acceleration;
        env.stress_mpa = state.sections[2].stress_mpa;
        env.strain_x = state.sections[2].stress_mpa * 1.0e6 / 27.8e9;
        env.strain_y = 0.4 * env.strain_x;
        session.set_environment(static_cast<std::uint16_t>(0x100 + i), env);
      }
      const std::vector<std::uint8_t> sensor_ids{
          static_cast<std::uint8_t>(node::SensorId::kAcceleration),
          static_cast<std::uint8_t>(node::SensorId::kStress)};
      const auto readings = session.collect(sensor_ids);
      if (config_.record_series) {
        result.capsule_readings.insert(result.capsule_readings.end(),
                                       readings.readings.begin(),
                                       readings.readings.end());
      }
      accumulate(result.inventory_totals, readings.stats);

      // Graceful degradation: every (capsule, sensor) channel that has ever
      // reported gets a log entry each poll. Missing channels hold their
      // last good value and carry a staleness age for the dashboard.
      const Real now_hours = t_days * 24.0;
      for (const auto& r : readings.readings) {
        last_good[{r.node_id, r.sensor_id}] = {r, now_hours};
      }
      for (int i = 0; i < config_.capsule_count; ++i) {
        const auto node_id = static_cast<std::uint16_t>(0x100 + i);
        for (std::uint8_t sensor : sensor_ids) {
          const auto it = last_good.find({node_id, sensor});
          if (it == last_good.end()) continue;  // never reported: no value
          const Real age = now_hours - it->second.second;
          const bool stale = age > 0.0;
          if (config_.record_series) {
            result.capsule_log.push_back(
                CapsuleReading{it->second.first, stale, age});
          }
          if (stale) {
            Real& worst = result.max_staleness_hours[node_id];
            worst = std::max(worst, age);
          }
        }
      }
    }

    const std::size_t cursor = k + 1;
    if (config_.stop_after_steps > 0 && cursor >= config_.stop_after_steps &&
        cursor < steps) {
      // Simulated crash: leave a final checkpoint and stop mid-campaign.
      if (!config_.checkpoint_path.empty()) write_checkpoint(cursor);
      result.completed = false;
      break;
    }
    if (checkpoint_every > 0 && cursor % checkpoint_every == 0 &&
        cursor < steps) {
      write_checkpoint(cursor);
    }
  }

  if (const auto* sup = session.supervisor()) {
    result.link_states = sup->states();
    result.supervisor_totals = sup->totals();
  }
  if (!result.completed || !config_.record_series) return result;

  // Anomaly detection: rolling z-score of the acceleration envelope. The
  // rollup scratch comes from this thread's workspace arena, so a fleet
  // shard grinding through hundreds of structures reuses the same three
  // buffers instead of re-allocating them per campaign.
  auto& ws = core::WorkspacePool::shared().local();
  const std::size_t samples = result.acceleration.size();
  auto roll = ws.real(samples);
  result.acceleration.rolling_stddev(config_.baseline_window, *roll);
  // Baseline scale = median of the rolling stddev.
  auto sorted = ws.real(samples);
  std::copy(roll->begin(), roll->end(), sorted->begin());
  std::sort(sorted->begin(), sorted->end());
  const Real baseline = sorted->empty() ? 0.0 : (*sorted)[sorted->size() / 2];
  const Real short_window = 6.0 * 60.0 / config_.step_minutes;  // 6 h
  auto short_roll = ws.real(samples);
  result.acceleration.rolling_stddev(static_cast<std::size_t>(short_window),
                                     *short_roll);

  bool in_anomaly = false;
  AnomalyWindow current;
  for (std::size_t k = 0; k < short_roll->size(); ++k) {
    const Real z = (baseline > 0.0) ? (*short_roll)[k] / baseline : 0.0;
    const Real t_days = static_cast<Real>(k) * config_.step_minutes / (24.0 * 60.0);
    if (!in_anomaly && z > config_.zscore_threshold) {
      in_anomaly = true;
      current = AnomalyWindow{t_days, t_days, z};
    } else if (in_anomaly) {
      if (z > current.peak_zscore) current.peak_zscore = z;
      if (z < 0.7 * config_.zscore_threshold) {
        current.end_day = t_days;
        result.anomalies.push_back(current);
        in_anomaly = false;
      }
    }
  }
  if (in_anomaly) {
    current.end_day = config_.days;
    result.anomalies.push_back(current);
  }
  return result;
}

}  // namespace ecocap::shm
