#include "shm/modal.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/biquad.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/window.hpp"

namespace ecocap::shm {

std::vector<Real> welch_spectrum(std::span<const Real> x, Real fs,
                                 std::size_t segment) {
  (void)fs;
  segment = dsp::next_pow2(std::max<std::size_t>(segment, 64));
  const std::size_t hop = segment / 2;
  const dsp::Signal window = dsp::make_window(dsp::WindowKind::kHann, segment);
  std::vector<Real> acc(segment / 2 + 1, 0.0);
  int frames = 0;
  for (std::size_t start = 0; start + segment <= x.size(); start += hop) {
    dsp::Signal seg(x.begin() + static_cast<std::ptrdiff_t>(start),
                    x.begin() + static_cast<std::ptrdiff_t>(start + segment));
    // Remove the mean so the DC bin does not mask low modes.
    Real mean = 0.0;
    for (Real v : seg) mean += v;
    mean /= static_cast<Real>(segment);
    for (Real& v : seg) v -= mean;
    dsp::apply_window(seg, window);
    const dsp::Signal mag = dsp::magnitude_spectrum(seg, segment);
    for (std::size_t k = 0; k < acc.size() && k < mag.size(); ++k) {
      acc[k] += mag[k] * mag[k];
    }
    ++frames;
  }
  if (frames > 0) {
    for (Real& v : acc) v = std::sqrt(v / frames);
  }
  return acc;
}

std::optional<ModalEstimate> estimate_mode(std::span<const Real> x, Real fs,
                                           Real f_lo, Real f_hi,
                                           std::size_t segment) {
  segment = dsp::next_pow2(std::max<std::size_t>(segment, 64));
  if (x.size() < segment) return std::nullopt;
  const std::vector<Real> spec = welch_spectrum(x, fs, segment);
  const Real bin_hz = fs / static_cast<Real>(segment);

  std::size_t best = 0;
  Real best_mag = -1.0;
  for (std::size_t k = 1; k + 1 < spec.size(); ++k) {
    const Real f = bin_hz * static_cast<Real>(k);
    if (f < f_lo || f > f_hi) continue;
    if (spec[k] > best_mag) {
      best_mag = spec[k];
      best = k;
    }
  }
  if (best == 0 || best_mag <= 0.0) return std::nullopt;

  // Parabolic interpolation around the peak.
  const Real a = spec[best - 1];
  const Real b = spec[best];
  const Real c = spec[best + 1];
  Real delta = 0.0;
  const Real denom = a - 2.0 * b + c;
  if (std::abs(denom) > 1e-30) {
    delta = std::clamp<Real>(0.5 * (a - c) / denom, -0.5, 0.5);
  }

  ModalEstimate est;
  est.frequency_hz = bin_hz * (static_cast<Real>(best) + delta);
  est.amplitude = b;

  // Half-power bandwidth -> damping ratio zeta ~ bw / (2 f0).
  const Real half_power = b / std::sqrt(2.0);
  std::size_t lo = best, hi = best;
  while (lo > 1 && spec[lo] > half_power) --lo;
  while (hi + 1 < spec.size() && spec[hi] > half_power) ++hi;
  const Real bw = bin_hz * static_cast<Real>(hi - lo);
  est.damping_ratio = (est.frequency_hz > 0.0)
                          ? bw / (2.0 * est.frequency_hz)
                          : 0.0;
  return est;
}

DamageIndicator assess_damage(std::span<const Real> baseline,
                              std::span<const Real> current, Real fs,
                              Real f_lo, Real f_hi, Real alarm_shift) {
  DamageIndicator d;
  const auto b = estimate_mode(baseline, fs, f_lo, f_hi);
  const auto c = estimate_mode(current, fs, f_lo, f_hi);
  if (!b || !c || b->frequency_hz <= 0.0) return d;
  d.baseline_hz = b->frequency_hz;
  d.current_hz = c->frequency_hz;
  d.frequency_shift = (c->frequency_hz - b->frequency_hz) / b->frequency_hz;
  d.stiffness_change = 2.0 * d.frequency_shift;
  d.damaged = d.frequency_shift < alarm_shift;
  return d;
}

std::vector<Real> synthesize_vibration(Real modal_hz, Real damping_ratio,
                                       Real fs, Real seconds,
                                       std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(seconds * fs);
  dsp::Rng rng(seed);
  // White-noise excitation through the mode's resonance: Q = 1 / (2 zeta).
  const Real q = 1.0 / std::max<Real>(2.0 * damping_ratio, 1e-3);
  dsp::Biquad mode = dsp::Biquad::bandpass(fs, modal_hz, q);
  std::vector<Real> out(n);
  for (auto& v : out) v = mode.process(rng.gaussian());
  return out;
}

}  // namespace ecocap::shm
