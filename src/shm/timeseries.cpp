#include "shm/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ecocap::shm {

TimeSeries::TimeSeries(std::string name, Real dt, std::string unit)
    : name_(std::move(name)), unit_(std::move(unit)), dt_(dt) {
  if (dt <= 0.0) throw std::invalid_argument("TimeSeries: dt must be > 0");
}

TimeSeries::Stats TimeSeries::stats(std::size_t first,
                                    std::size_t last) const {
  Stats s;
  last = std::min(last, values_.size());
  if (first >= last) return s;
  Real sum = 0.0;
  s.min = values_[first];
  s.max = values_[first];
  for (std::size_t i = first; i < last; ++i) {
    sum += values_[i];
    s.min = std::min(s.min, values_[i]);
    s.max = std::max(s.max, values_[i]);
  }
  const auto n = static_cast<Real>(last - first);
  s.mean = sum / n;
  Real var = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    const Real d = values_[i] - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / n);
  return s;
}

std::vector<Real> TimeSeries::rolling_stddev(std::size_t window) const {
  std::vector<Real> out(values_.size(), 0.0);
  rolling_stddev(window, out);
  return out;
}

void TimeSeries::rolling_stddev(std::size_t window,
                                std::span<Real> out) const {
  if (window == 0) throw std::invalid_argument("rolling_stddev: empty window");
  if (out.size() != values_.size()) {
    throw std::invalid_argument("rolling_stddev: out length mismatch");
  }
  Real sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    sum += values_[i];
    sum2 += values_[i] * values_[i];
    if (i >= window) {
      sum -= values_[i - window];
      sum2 -= values_[i - window] * values_[i - window];
    }
    const std::size_t n = std::min(i + 1, window);
    const Real mean = sum / static_cast<Real>(n);
    const Real var =
        std::max<Real>(sum2 / static_cast<Real>(n) - mean * mean, 0.0);
    out[i] = std::sqrt(var);
  }
}

TimeSeries TimeSeries::block_mean(std::size_t factor) const {
  if (factor == 0) throw std::invalid_argument("block_mean: factor 0");
  TimeSeries out(name_ + "-blockmean", dt_ * static_cast<Real>(factor), unit_);
  for (std::size_t i = 0; i + factor <= values_.size(); i += factor) {
    Real sum = 0.0;
    for (std::size_t j = 0; j < factor; ++j) sum += values_[i + j];
    out.push(sum / static_cast<Real>(factor));
  }
  return out;
}

}  // namespace ecocap::shm
