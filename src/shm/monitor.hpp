#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/inventory_session.hpp"
#include "shm/bridge.hpp"
#include "shm/timeseries.hpp"

namespace ecocap::shm {

/// A per-minute health report row (what the dashboard of Fig. 21(c) shows:
/// section, pedestrian count, health letter, walking speed).
struct SectionReport {
  char section = 'A';
  int pedestrians = 0;
  HealthLevel health = HealthLevel::kA;
  Real walking_speed = 0.0;
};

/// An anomaly window flagged by the detector (the July 15-23 storm shows up
/// as one of these).
struct AnomalyWindow {
  Real start_day = 0.0;
  Real end_day = 0.0;
  Real peak_zscore = 0.0;
};

/// One entry of the capsule poll log. When a node misses a poll (fault,
/// give-up, out of link budget) its last good value is held and the entry
/// is flagged stale with the age of that held value — the dashboard keeps a
/// row per capsule either way, it just greys out the stale ones.
struct CapsuleReading {
  reader::SensorReading reading;
  bool stale = false;
  Real age_hours = 0.0;  // hours since the value was actually measured
};

/// Result of a monitoring campaign.
struct CampaignResult {
  TimeSeries acceleration;   // m/s^2, mid-span sensor
  TimeSeries stress;         // MPa, mid-span sensor
  TimeSeries stress_side;    // MPa, side-span sensor
  TimeSeries humidity;       // %
  TimeSeries temperature;    // degC
  TimeSeries pressure;       // kPa
  TimeSeries pao;            // m^2/ped, worst section
  std::vector<std::array<SectionReport, 5>> minute_reports;  // sparse samples
  std::map<char, std::map<char, int>> health_histogram;  // section -> letter -> count
  std::vector<AnomalyWindow> anomalies;
  int limit_violations = 0;
  /// EcoCapsule cross-check readings collected over the protocol stack
  /// (fresh readings only — the legacy view).
  std::vector<reader::SensorReading> capsule_readings;
  /// Full poll log: one entry per deployed capsule per poll once it has
  /// reported at least once, stale entries included.
  std::vector<CapsuleReading> capsule_log;
  /// Worst staleness age seen per node over the campaign (hours); nodes
  /// that never went stale are absent.
  std::map<std::uint16_t, Real> max_staleness_hours;
  /// Aggregated inventory recovery counters over every poll.
  reader::InventoryStats inventory_totals;
  /// False when the run stopped early at Config::stop_after_steps (the
  /// simulated-crash hook); anomaly detection is skipped for partial runs.
  bool completed = true;
  /// Final per-node link-supervision state and campaign totals (empty /
  /// zero when supervision is disabled).
  std::map<std::uint16_t, reader::NodeLinkState> link_states;
  reader::SupervisorTotals supervisor_totals;
};

/// The long-term SHM campaign runner (paper §6): simulates the bridge +
/// weather + traffic minute by minute, records the sensor channels the
/// paper plots (Figs. 21, 26-36), grades per-section health every minute,
/// runs the anomaly detector, and periodically interrogates the implanted
/// EcoCapsules through the full protocol stack as a cross-check.
///
/// With `Config::checkpoint_path` set the campaign is crash-safe: the full
/// mutable state (time cursor, every RNG stream, held readings, supervisor
/// state, result accumulators) is serialized to a versioned checkpoint file
/// via write-temp-then-atomic-rename every `checkpoint_hours` of simulated
/// time. `resume()` restores the newest checkpoint and continues; because
/// the serialization is bit-exact (hexfloat reals, full RNG stream state),
/// a killed-and-resumed campaign produces byte-identical results to an
/// uninterrupted one at any ECOCAP_THREADS.
class MonitoringCampaign {
 public:
  /// Per-step observation hook: called once per simulation step, after the
  /// sections are graded, with the step index (absolute, so resumed runs
  /// report the true position), the campaign time, and the full weather +
  /// bridge snapshot. This is the ingest tap the fleet engine uses to feed
  /// its telemetry store; the hook must not call back into the campaign.
  using StepHook = std::function<void(
      std::size_t step, Real t_days, const WeatherSample& weather,
      const BridgeState& state)>;

  /// Scenario modulation for one step: structural load modifiers plus an
  /// optional per-poll fault-plan override. The hook MUST be a pure function
  /// of `t_days` (no mutable capture feeding back into the modifiers) —
  /// that is what keeps checkpoint-resumed runs bit-identical, since a
  /// resume re-evaluates the hook at exactly the remaining step times.
  struct StepModifiers {
    LoadModifiers load;
    /// When set, replaces the session's fault plan before a capsule poll at
    /// this step (scenario fault windows / seismic shaking). Unset leaves
    /// the configured `Config::fault` plan in force.
    bool override_poll_fault = false;
    fault::FaultPlan poll_fault;
  };
  using ModulationHook = std::function<StepModifiers(Real t_days)>;

  struct Config {
    FootbridgeModel::Config bridge;
    WeatherModel::Config weather;
    Real days = 31.0;              // campaign length (July 2021)
    Real step_minutes = 1.0;       // health update cadence (paper: 1 min)
    Real zscore_threshold = 3.5;   // anomaly flag level
    std::size_t baseline_window = 3 * 24 * 60;  // rolling baseline (3 days)
    int capsule_count = 5;         // EcoCapsules deployed for the pilot
    Real capsule_poll_hours = 6.0; // interrogation cadence
    /// Uplink SNR with a capsule at the reader; the wall's range law takes
    /// it down from there, so lowering this starves the deep capsules (the
    /// hostile-site scenarios the supervisor exists for).
    Real capsule_snr_at_contact_db = 24.0;
    /// Reader recovery policy and fault plan for the capsule polls; both
    /// default to off, reproducing the fault-free campaign bit-for-bit.
    reader::RetryPolicy retry;
    fault::FaultPlan fault;
    /// Adaptive link supervision for the capsule polls (off by default).
    reader::SupervisorConfig supervisor;
    /// Crash-safe checkpointing: empty disables it. The file at this path
    /// is atomically replaced every `checkpoint_hours` of simulated time.
    std::string checkpoint_path;
    Real checkpoint_hours = 24.0;
    /// Testing hook simulating a crash: stop (with a final checkpoint)
    /// after this many simulation steps. 0 = run to completion.
    std::size_t stop_after_steps = 0;
    /// Per-step observation tap (see StepHook). Default: none.
    StepHook on_step;
    /// Scenario modulation tap (see ModulationHook). Default: none, which
    /// is bit-identical to an identity hook.
    ModulationHook modulate;
    /// Sample-level result retention. When false the per-step logs —
    /// TimeSeries channels, minute reports, the capsule reading/poll logs —
    /// are not accumulated (and anomaly detection, which needs the
    /// acceleration series, is skipped). Aggregates (health histogram,
    /// limit violations, inventory totals, staleness) are always kept.
    /// Fleet shards run with this off so a thousand concurrent structures
    /// cost summary-sized memory instead of series-sized memory; the
    /// telemetry store fed by `on_step` is the sample-level view instead.
    bool record_series = true;
    std::uint64_t seed = 2021;
  };

  explicit MonitoringCampaign(Config config);

  /// Run the campaign from the start.
  CampaignResult run();

  /// Restore the checkpoint at `Config::checkpoint_path` and continue to
  /// campaign end. Throws std::runtime_error when the file is missing,
  /// corrupt, or was written by a campaign with a different configuration.
  CampaignResult resume();

 private:
  CampaignResult run_impl(bool from_checkpoint);

  Config config_;
};

}  // namespace ecocap::shm
