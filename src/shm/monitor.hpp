#pragma once

#include <map>
#include <vector>

#include "core/inventory_session.hpp"
#include "shm/bridge.hpp"
#include "shm/timeseries.hpp"

namespace ecocap::shm {

/// A per-minute health report row (what the dashboard of Fig. 21(c) shows:
/// section, pedestrian count, health letter, walking speed).
struct SectionReport {
  char section = 'A';
  int pedestrians = 0;
  HealthLevel health = HealthLevel::kA;
  Real walking_speed = 0.0;
};

/// An anomaly window flagged by the detector (the July 15-23 storm shows up
/// as one of these).
struct AnomalyWindow {
  Real start_day = 0.0;
  Real end_day = 0.0;
  Real peak_zscore = 0.0;
};

/// One entry of the capsule poll log. When a node misses a poll (fault,
/// give-up, out of link budget) its last good value is held and the entry
/// is flagged stale with the age of that held value — the dashboard keeps a
/// row per capsule either way, it just greys out the stale ones.
struct CapsuleReading {
  reader::SensorReading reading;
  bool stale = false;
  Real age_hours = 0.0;  // hours since the value was actually measured
};

/// Result of a monitoring campaign.
struct CampaignResult {
  TimeSeries acceleration;   // m/s^2, mid-span sensor
  TimeSeries stress;         // MPa, mid-span sensor
  TimeSeries stress_side;    // MPa, side-span sensor
  TimeSeries humidity;       // %
  TimeSeries temperature;    // degC
  TimeSeries pressure;       // kPa
  TimeSeries pao;            // m^2/ped, worst section
  std::vector<std::array<SectionReport, 5>> minute_reports;  // sparse samples
  std::map<char, std::map<char, int>> health_histogram;  // section -> letter -> count
  std::vector<AnomalyWindow> anomalies;
  int limit_violations = 0;
  /// EcoCapsule cross-check readings collected over the protocol stack
  /// (fresh readings only — the legacy view).
  std::vector<reader::SensorReading> capsule_readings;
  /// Full poll log: one entry per deployed capsule per poll once it has
  /// reported at least once, stale entries included.
  std::vector<CapsuleReading> capsule_log;
  /// Worst staleness age seen per node over the campaign (hours); nodes
  /// that never went stale are absent.
  std::map<std::uint16_t, Real> max_staleness_hours;
  /// Aggregated inventory recovery counters over every poll.
  reader::InventoryStats inventory_totals;
};

/// The long-term SHM campaign runner (paper §6): simulates the bridge +
/// weather + traffic minute by minute, records the sensor channels the
/// paper plots (Figs. 21, 26-36), grades per-section health every minute,
/// runs the anomaly detector, and periodically interrogates the implanted
/// EcoCapsules through the full protocol stack as a cross-check.
class MonitoringCampaign {
 public:
  struct Config {
    FootbridgeModel::Config bridge;
    WeatherModel::Config weather;
    Real days = 31.0;              // campaign length (July 2021)
    Real step_minutes = 1.0;       // health update cadence (paper: 1 min)
    Real zscore_threshold = 3.5;   // anomaly flag level
    std::size_t baseline_window = 3 * 24 * 60;  // rolling baseline (3 days)
    int capsule_count = 5;         // EcoCapsules deployed for the pilot
    Real capsule_poll_hours = 6.0; // interrogation cadence
    /// Reader recovery policy and fault plan for the capsule polls; both
    /// default to off, reproducing the fault-free campaign bit-for-bit.
    reader::RetryPolicy retry;
    fault::FaultPlan fault;
    std::uint64_t seed = 2021;
  };

  explicit MonitoringCampaign(Config config);

  CampaignResult run();

 private:
  Config config_;
};

}  // namespace ecocap::shm
