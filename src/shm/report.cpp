#include "shm/report.hpp"

#include <cstdio>

namespace ecocap::shm {

namespace {

/// printf into a std::string.
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

std::string render_dashboard(const std::array<SectionReport, 5>& sections) {
  std::string out;
  for (const auto& s : sections) {
    appendf(out, "| Section %c  No. %-3d  Health %c  Speed %.1f m/s ",
            s.section, s.pedestrians, health_letter(s.health),
            s.walking_speed);
  }
  out += "|";
  return out;
}

std::string render_campaign_report(const CampaignResult& result,
                                   Real campaign_days) {
  std::string out;
  out += "=== SHM campaign report ===\n";
  appendf(out, "duration: %.0f days, %zu samples per channel\n",
          campaign_days, result.acceleration.size());

  const auto acc = result.acceleration.stats();
  const auto st = result.stress.stats();
  appendf(out,
          "acceleration: mean %.4f m/s^2, envelope (std) %.4f, peak %.3f\n",
          acc.mean, acc.stddev, std::max(std::abs(acc.min), acc.max));
  appendf(out, "mid-span stress: mean %.1f MPa, range [%.1f, %.1f]\n",
          st.mean, st.min, st.max);

  out += "health histogram (minutes per grade):\n";
  for (const auto& [section, hist] : result.health_histogram) {
    appendf(out, "  section %c:", section);
    for (const auto& [letter, count] : hist) {
      appendf(out, " %c=%d", letter, count);
    }
    out += "\n";
  }

  if (result.anomalies.empty()) {
    out += "anomalies: none\n";
  } else {
    appendf(out, "anomalies: %zu window(s)\n", result.anomalies.size());
    for (const auto& a : result.anomalies) {
      appendf(out, "  day %.1f -> %.1f, peak z %.1f\n", a.start_day + 1.0,
              a.end_day + 1.0, a.peak_zscore);
    }
  }
  appendf(out, "limit violations: %d\n", result.limit_violations);
  appendf(out, "capsule readings collected: %zu\n",
          result.capsule_readings.size());
  if (!result.capsule_log.empty()) {
    std::size_t stale = 0;
    for (const auto& e : result.capsule_log) {
      if (e.stale) ++stale;
    }
    appendf(out, "capsule poll log: %zu entries, %zu stale\n",
            result.capsule_log.size(), stale);
    for (const auto& [node, hours] : result.max_staleness_hours) {
      appendf(out, "  node 0x%03x: worst staleness %.1f h\n", node, hours);
    }
  }
  const auto& inv = result.inventory_totals;
  if (inv.retries + inv.timeouts + inv.crc_fails + inv.backoff_slots > 0) {
    appendf(out,
            "reader recovery: %d retries, %d timeouts, %d crc fails, "
            "%d giveups, %d backoff slots\n",
            inv.retries, inv.timeouts, inv.crc_fails, inv.giveups,
            inv.backoff_slots);
  }
  appendf(out, "verdict: %s\n", campaign_verdict(result).c_str());
  return out;
}

std::string campaign_verdict(const CampaignResult& result) {
  if (result.limit_violations > 0) return "ALARM";
  if (!result.anomalies.empty()) return "WATCH";
  return "OK";
}

}  // namespace ecocap::shm
