#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dsp/types.hpp"

namespace ecocap::shm {

using dsp::Real;

/// A uniformly sampled measurement series (one sensor channel over the
/// monitoring campaign). Time is seconds since the campaign start.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::string name, Real dt, std::string unit = "");

  void push(Real value) { values_.push_back(value); }
  void reserve(std::size_t n) { values_.reserve(n); }
  /// Current heap capacity in samples — the allocation-stability tests
  /// assert it stays put across a reserved campaign's pushes.
  std::size_t capacity() const { return values_.capacity(); }
  /// Replace the sample buffer wholesale (checkpoint restore).
  void set_values(std::vector<Real> values) { values_ = std::move(values); }

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  Real dt() const { return dt_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  Real at(std::size_t i) const { return values_[i]; }
  Real time_of(std::size_t i) const { return dt_ * static_cast<Real>(i); }
  std::span<const Real> values() const { return values_; }

  /// Basic statistics over [first, last) indices (whole series by default).
  struct Stats {
    Real mean = 0.0;
    Real stddev = 0.0;
    Real min = 0.0;
    Real max = 0.0;
  };
  Stats stats(std::size_t first = 0,
              std::size_t last = static_cast<std::size_t>(-1)) const;

  /// Rolling standard deviation with the given window (same length as the
  /// series; warm-up uses the available prefix). The anomaly detector keys
  /// off this.
  std::vector<Real> rolling_stddev(std::size_t window) const;

  /// Allocation-free rollup: write the rolling stddev into `out`, which
  /// must be exactly `size()` long (lease it from a dsp::Workspace on hot
  /// paths). Throws std::invalid_argument on a length mismatch.
  void rolling_stddev(std::size_t window, std::span<Real> out) const;

  /// Down-sample by averaging blocks of `factor` samples (daily summaries).
  TimeSeries block_mean(std::size_t factor) const;

 private:
  std::string name_;
  std::string unit_;
  Real dt_ = 1.0;
  std::vector<Real> values_;
};

}  // namespace ecocap::shm
