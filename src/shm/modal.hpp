#pragma once

#include <optional>
#include <vector>

#include "shm/timeseries.hpp"

namespace ecocap::shm {

/// Modal analysis of structural vibration records. Damage (cracking,
/// corrosion-driven section loss — the degradation behind the Champlain
/// Towers collapse that motivates the paper) reduces stiffness, which shows
/// up as a drop in the structure's natural frequencies long before failure.
/// This module estimates modal frequencies from acceleration series via
/// Welch-averaged spectra and tracks their drift.
struct ModalEstimate {
  Real frequency_hz = 0.0;  // dominant modal frequency
  Real amplitude = 0.0;     // spectral peak magnitude
  Real damping_ratio = 0.0; // half-power bandwidth estimate
};

/// Welch-averaged one-sided magnitude spectrum of an acceleration record.
/// @param fs sample rate (Hz), @param segment power-of-two segment length
std::vector<Real> welch_spectrum(std::span<const Real> x, Real fs,
                                 std::size_t segment = 1024);

/// Dominant modal frequency within [f_lo, f_hi] from a Welch spectrum,
/// with parabolic peak interpolation and a half-power damping estimate.
std::optional<ModalEstimate> estimate_mode(std::span<const Real> x, Real fs,
                                           Real f_lo, Real f_hi,
                                           std::size_t segment = 1024);

/// Stiffness-change indicator between a baseline and a current record:
/// df/f ~ dk/(2k) for small changes, so `stiffness_change` ~ 2 * df/f.
/// Negative values mean softening (damage).
struct DamageIndicator {
  Real baseline_hz = 0.0;
  Real current_hz = 0.0;
  Real frequency_shift = 0.0;   // relative df/f
  Real stiffness_change = 0.0;  // ~ 2 df/f
  bool damaged = false;         // shift beyond the alarm threshold
};

DamageIndicator assess_damage(std::span<const Real> baseline,
                              std::span<const Real> current, Real fs,
                              Real f_lo, Real f_hi,
                              Real alarm_shift = -0.02);

/// Synthesize a vibration record of a single-mode structure for tests and
/// benches: white-noise-excited resonator at `modal_hz` with the given
/// damping ratio, `seconds` long at `fs`.
std::vector<Real> synthesize_vibration(Real modal_hz, Real damping_ratio,
                                       Real fs, Real seconds,
                                       std::uint64_t seed);

}  // namespace ecocap::shm
