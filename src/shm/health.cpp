#include "shm/health.hpp"

#include <stdexcept>

namespace ecocap::shm {

char health_letter(HealthLevel level) {
  switch (level) {
    case HealthLevel::kA: return 'A';
    case HealthLevel::kB: return 'B';
    case HealthLevel::kC: return 'C';
    case HealthLevel::kD: return 'D';
    case HealthLevel::kE: return 'E';
    case HealthLevel::kF: return 'F';
  }
  throw std::logic_error("health_letter: bad level");
}

std::string region_name(Region region) {
  switch (region) {
    case Region::kUnitedStates: return "United States";
    case Region::kHongKong: return "Hong Kong";
    case Region::kBangkok: return "Bangkok";
    case Region::kManila: return "Manila";
  }
  throw std::logic_error("region_name: bad region");
}

std::array<Real, 5> pao_thresholds(Region region) {
  // Table 2: level boundaries in m^2/ped, A above the first value, F below
  // the last.
  switch (region) {
    case Region::kUnitedStates:
      return {3.85, 2.30, 1.39, 0.93, 0.46};
    case Region::kHongKong:
      return {3.25, 2.16, 1.40, 0.80, 0.52};
    case Region::kBangkok:
      return {2.38, 1.60, 0.98, 0.65, 0.37};
    case Region::kManila:
      return {3.25, 2.05, 1.65, 1.25, 0.56};
  }
  throw std::logic_error("pao_thresholds: bad region");
}

HealthLevel grade_pao(Real pao, Region region) {
  if (pao < 0.0) throw std::invalid_argument("grade_pao: negative PAO");
  const auto t = pao_thresholds(region);
  if (pao > t[0]) return HealthLevel::kA;
  if (pao > t[1]) return HealthLevel::kB;
  if (pao > t[2]) return HealthLevel::kC;
  if (pao > t[3]) return HealthLevel::kD;
  if (pao > t[4]) return HealthLevel::kE;
  return HealthLevel::kF;
}

LimitCheck check_limits(Real vertical_acc, Real lateral_acc, Real stress_pa,
                        Real deflection_m, Real pao,
                        const BridgeLimits& limits) {
  LimitCheck c;
  c.vertical_ok = std::abs(vertical_acc) <= limits.max_vertical_acceleration;
  c.lateral_ok = std::abs(lateral_acc) <= limits.max_lateral_acceleration;
  c.stress_ok = std::abs(stress_pa) <= limits.max_steel_stress;
  c.deflection_ok = std::abs(deflection_m) <= limits.max_midspan_deflection;
  c.pao_ok = pao >= limits.min_pao;
  return c;
}

}  // namespace ecocap::shm
