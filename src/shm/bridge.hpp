#pragma once

#include <array>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/serialize.hpp"
#include "shm/health.hpp"
#include "shm/pedestrian.hpp"
#include "shm/weather.hpp"

namespace ecocap::shm {

/// The pilot-study footbridge (paper §6, [59]): an 84.24 m butterfly-arch
/// bridge linking two campuses — a 64.26 m main span over a highway and a
/// 19.98 m side span — monitored in five sections A..E.
struct BridgeGeometry {
  Real total_length = 84.24;   // m
  Real main_span = 64.26;      // m
  Real side_span = 19.98;      // m
  Real deck_width = 4.0;       // m walkable width
  int sections = 5;

  /// Walkable area of one section (deck split evenly).
  Real section_area() const {
    return total_length * deck_width / static_cast<Real>(sections);
  }
};

/// Instantaneous structural response at one section.
struct SectionState {
  int pedestrians = 0;
  Real pao = 0.0;               // m^2 per pedestrian (inf when empty)
  Real walking_speed = 0.0;     // m/s
  Real vertical_acceleration = 0.0;  // m/s^2 (RMS-scale excursion)
  Real lateral_acceleration = 0.0;   // m/s^2
  Real stress_mpa = 0.0;        // signed, sensor-orientation dependent
  Real deflection_m = 0.0;      // midspan deflection
  HealthLevel health = HealthLevel::kA;
};

/// Whole-bridge snapshot at one monitoring tick.
struct BridgeState {
  Real t_days = 0.0;
  WeatherSample weather;
  std::array<SectionState, 5> sections;
  int total_pedestrians = 0;
};

/// Externally-scripted load/stiffness modulation for one monitoring tick
/// (the scenario layer's tap into the structural model). The identity
/// modifiers reproduce the unmodified step bit for bit: every application
/// site is gated on an exact != comparison, so the default path executes
/// the same instruction stream as before the scenario layer existed.
struct LoadModifiers {
  /// Pedestrian arrival-rate multiplier (concert/evacuation surges).
  Real occupancy_factor = 1.0;
  /// Remaining stiffness fraction k/k0 in (0, 1]; below 1 the structure has
  /// softened (cracking, seismic damage) — live-load stress, deflection and
  /// footfall response all amplify by ~1/k.
  Real stiffness_factor = 1.0;
  /// Additive ground-motion excitation (m/s^2) — seismic shaking raises the
  /// acceleration envelope on every section.
  Real ground_accel = 0.0;

  bool identity() const {
    return occupancy_factor == 1.0 && stiffness_factor == 1.0 &&
           ground_accel == 0.0;
  }
};

/// Quasi-static structural response model of the footbridge: pedestrian
/// load and wind buffeting excite the deck's fundamental modes; the
/// response scales with sqrt(N) for uncorrelated footfalls and with wind
/// speed squared for buffeting — enough to reproduce the Fig. 21 phenomena
/// (diurnal load cycles, the July 15-23 storm excursions, health >= B).
class FootbridgeModel {
 public:
  struct Config {
    BridgeGeometry geometry;
    PedestrianModel::Config pedestrians;
    Region region = Region::kHongKong;
    Real footfall_accel = 0.004;   // m/s^2 per sqrt(pedestrian)
    Real wind_accel = 7.0e-5;      // m/s^2 per (m/s)^2 of wind
    Real dead_stress_mpa = -55.0;  // steelwork dead-load stress (signed)
    Real ped_stress_mpa = 0.05;    // per pedestrian
    Real wind_stress_mpa = 0.02;   // per (m/s)^2
    Real ped_deflection = 1.2e-4;  // m per pedestrian
    Real accel_noise = 0.002;      // sensor-scale ambient vibration
  };

  FootbridgeModel(Config config, std::uint64_t seed);

  /// Advance to `t_days` and compute the full bridge state.
  BridgeState step(Real t_days, const WeatherSample& weather);

  /// Scenario-modulated step: `mods` scales the pedestrian arrival rate,
  /// softens the structural response, and injects ground motion. Identity
  /// modifiers are bit-identical to the two-argument overload.
  BridgeState step(Real t_days, const WeatherSample& weather,
                   const LoadModifiers& mods);

  /// Checkpoint the model's mutable state (own RNG + the pedestrian
  /// model's RNG).
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

  const Config& config() const { return config_; }

 private:
  Config config_;
  PedestrianModel pedestrians_;
  dsp::Rng rng_;
};

}  // namespace ecocap::shm
