#include "shm/pedestrian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ecocap::shm {

namespace {
constexpr Real kPi = 3.14159265358979323846;

/// Double-peaked diurnal profile: morning/evening commutes plus lunch.
Real diurnal_profile(Real hour) {
  auto bump = [](Real h, Real center, Real width) {
    const Real d = (h - center) / width;
    return std::exp(-0.5 * d * d);
  };
  const Real profile = 1.0 * bump(hour, 8.5, 1.2) + 0.5 * bump(hour, 12.5, 1.0) +
                       0.9 * bump(hour, 18.0, 1.5) + 0.08;
  return profile / 1.1;  // normalize so the morning peak is ~0.95
}
}  // namespace

PedestrianModel::PedestrianModel(Config config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

Real PedestrianModel::rate_per_minute(Real t_days,
                                      const WeatherSample& weather) const {
  const Real hour = std::fmod(t_days, 1.0) * 24.0;
  // 2021-07-01 was a Thursday: day index 0 -> weekday 4 (Thu).
  const int weekday = (static_cast<int>(std::floor(t_days)) + 4) % 7;
  const bool weekend = (weekday == 6 || weekday == 0);  // Sat(6)? see below
  // weekday index: 0=Sun..6=Sat with the +4 offset: day0 -> 4 = Thursday.
  const bool is_weekend = (weekday == 0 || weekday == 6);
  (void)weekend;

  Real rate = config_.peak_rate * diurnal_profile(hour);
  if (is_weekend) rate *= config_.weekend_factor;
  rate *= config_.social_distancing;
  if (weather.storm) rate *= 0.15;             // people avoid the bridge
  if (weather.rain_mm_per_h > 2.0) rate *= 0.5;
  return rate;
}

int PedestrianModel::sample_count(Real t_days, const WeatherSample& weather,
                                  Real rate_factor) {
  const Real rate = rate_per_minute(t_days, weather);
  // Occupancy = arrival rate x crossing time (Little's law); the crossing
  // takes bridge_length / speed ~ 84 m / 1.3 m/s ~ 65 s ~ 1.08 min.
  const Real crossing_minutes = 84.24 / config_.mean_crossing_speed / 60.0;
  const Real mean_on_bridge = rate * crossing_minutes * rate_factor;
  return rng_.poisson(std::max<Real>(mean_on_bridge, 0.0));
}

Real PedestrianModel::walking_speed(int count,
                                    const WeatherSample& weather) const {
  Real speed = config_.mean_crossing_speed;
  // Crowding slows traffic (fundamental diagram, gently linearized).
  speed *= std::clamp<Real>(1.0 - 0.004 * static_cast<Real>(count), 0.3, 1.0);
  if (weather.storm) speed *= 0.8;
  return speed;
}

void PedestrianModel::save(dsp::ser::Writer& w) const {
  w.rng("pedestrians.rng", rng_);
}

void PedestrianModel::load(dsp::ser::Reader& r) {
  r.rng("pedestrians.rng", rng_);
}

Real pedestrian_area_occupancy(Real section_area, int count) {
  if (count <= 0) return std::numeric_limits<Real>::infinity();
  return section_area / static_cast<Real>(count);
}

}  // namespace ecocap::shm
