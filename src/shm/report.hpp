#pragma once

#include <string>

#include "shm/monitor.hpp"

namespace ecocap::shm {

/// Render the Fig. 21(c)-style per-section dashboard row: section letter,
/// pedestrian count, health grade, walking speed.
std::string render_dashboard(const std::array<SectionReport, 5>& sections);

/// Render a whole campaign into a human-readable report: per-day summary
/// table, health histogram, anomaly windows, limit violations, and the
/// EcoCapsule cross-check digest. This is what the pilot study's operators
/// would read every morning.
std::string render_campaign_report(const CampaignResult& result,
                                   Real campaign_days);

/// One-line campaign verdict: "OK", "WATCH" (anomalies flagged) or "ALARM"
/// (structural limit violations).
std::string campaign_verdict(const CampaignResult& result);

}  // namespace ecocap::shm
