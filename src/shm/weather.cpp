#include "shm/weather.hpp"

#include <algorithm>
#include <cmath>

namespace ecocap::shm {

namespace {
constexpr Real kPi = 3.14159265358979323846;

/// Smooth ramp in/out of a storm window (half-day shoulders).
Real storm_intensity(const StormEvent& storm, Real t_days) {
  if (t_days < storm.start_day - 0.5 || t_days > storm.end_day + 0.5) {
    return 0.0;
  }
  const Real rise =
      std::clamp<Real>((t_days - (storm.start_day - 0.5)) / 1.0, 0.0, 1.0);
  const Real fall =
      std::clamp<Real>(((storm.end_day + 0.5) - t_days) / 1.0, 0.0, 1.0);
  return std::min(rise, fall);
}
}  // namespace

WeatherModel::WeatherModel(Config config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

WeatherSample WeatherModel::sample(Real t_days) {
  WeatherSample w;
  const Real hour = std::fmod(t_days, 1.0) * 24.0;
  // Diurnal cycle peaking mid-afternoon.
  const Real diurnal = std::sin(2.0 * kPi * (hour - 9.0) / 24.0);

  Real storm = 0.0;
  for (const auto& s : config_.storms) {
    storm = std::max(storm, storm_intensity(s, t_days));
  }
  w.storm = storm > 0.3;

  w.temperature_c = config_.mean_temperature + config_.diurnal_swing * diurnal -
                    3.0 * storm + rng_.gaussian(0.3);
  w.humidity_pct = std::clamp<Real>(
      config_.mean_humidity - 6.0 * diurnal + 15.0 * storm + rng_.gaussian(1.5),
      30.0, 100.0);
  w.pressure_kpa =
      config_.mean_pressure - 1.2 * storm + 0.15 * diurnal + rng_.gaussian(0.05);

  Real peak_wind = 0.0;
  for (const auto& s : config_.storms) {
    peak_wind = std::max(peak_wind, s.peak_wind * storm_intensity(s, t_days));
  }
  w.wind_speed = std::max<Real>(
      config_.base_wind + peak_wind + rng_.gaussian(0.5 + 2.0 * storm), 0.0);
  w.rain_mm_per_h = std::max<Real>(storm * (8.0 + rng_.gaussian(3.0)), 0.0);
  return w;
}

void WeatherModel::save(dsp::ser::Writer& w) const {
  w.rng("weather.rng", rng_);
}

void WeatherModel::load(dsp::ser::Reader& r) { r.rng("weather.rng", rng_); }

}  // namespace ecocap::shm
