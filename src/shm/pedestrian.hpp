#pragma once

#include <vector>

#include "dsp/rng.hpp"
#include "dsp/serialize.hpp"
#include "dsp/types.hpp"
#include "shm/weather.hpp"

namespace ecocap::shm {

/// Pedestrian traffic generator for the footbridge (§6 / Appendix D). The
/// bridge links two campuses, so the load has commute peaks, a lunch bump,
/// a weekday/weekend split, a social-distancing scale factor (the paper
/// attributes the consistently good health grades to COVID-19 policies),
/// and suppression during storms.
class PedestrianModel {
 public:
  struct Config {
    Real peak_rate = 40.0;      // pedestrians/minute at the worst commute peak
    Real weekend_factor = 0.35;
    Real social_distancing = 0.6;  // COVID-era scale on all traffic
    Real mean_crossing_speed = 1.3;  // m/s
  };

  PedestrianModel(Config config, std::uint64_t seed);

  /// Expected arrival rate (pedestrians/minute) at `t_days` since campaign
  /// start (day 0 is a Thursday, matching 2021-07-01).
  Real rate_per_minute(Real t_days, const WeatherSample& weather) const;

  /// Sample the number of pedestrians on the bridge in a one-minute window
  /// (arrivals x crossing time), Poisson distributed. `rate_factor` scales
  /// the arrival rate (scenario surges: concerts, evacuations); 1.0 leaves
  /// the Poisson mean — and therefore the draw sequence — bit-identical.
  int sample_count(Real t_days, const WeatherSample& weather,
                   Real rate_factor = 1.0);

  /// Mean walking speed right now (slower in crowds and storms).
  Real walking_speed(int count, const WeatherSample& weather) const;

  /// Checkpoint the model's mutable state (the RNG stream).
  void save(dsp::ser::Writer& w) const;
  void load(dsp::ser::Reader& r);

 private:
  Config config_;
  mutable dsp::Rng rng_;
};

/// Walkable deck area of one bridge section (m^2) and the resulting
/// pedestrian area occupancy H = area / count (infinite when empty; the
/// paper grades empty sections A).
Real pedestrian_area_occupancy(Real section_area, int count);

}  // namespace ecocap::shm
