#pragma once

#include <vector>

#include "dsp/rng.hpp"
#include "wave/material.hpp"
#include "wave/ray_tracer.hpp"

namespace ecocap::channel {

using dsp::Real;

/// Foreign objects inside the concrete (paper §3.5): rebar, gravel and air
/// voids reflect/diffract the acoustic wave like reflectors do to RF. They
/// occupy a small volume fraction, so they perturb rather than destroy the
/// channel — and the paper notes that fine-tuning the carrier frequency
/// restores a degraded channel.
struct Scatterer {
  wave::Point2 position;   // m in the wall cross-section
  Real radius = 0.008;     // m (rebar: ~8-16 mm)
  /// Fraction of a crossing ray's amplitude removed (scattered away).
  Real blockage = 0.5;
};

/// Frequency-selective multipath perturbation from a scatterer field.
/// For a given carrier frequency the scattered contributions superpose with
/// a deterministic pseudo-random phase (a function of geometry and
/// wavelength); some frequencies fade, neighbours recover — which is what
/// makes the paper's "fine-tune the frequency" advice work.
class ScattererField {
 public:
  ScattererField(std::vector<Scatterer> scatterers, const wave::Material& medium);

  /// Generate `count` rebar-like scatterers uniformly over a wall section.
  static ScattererField random_rebar(int count, Real length, Real thickness,
                                     const wave::Material& medium,
                                     dsp::Rng& rng);

  /// Channel amplitude gain (<= 1) for a straight path from `from` to `to`
  /// at the given frequency: direct blockage by intersected scatterers plus
  /// frequency-selective interference from near-path scattered copies.
  Real path_gain(wave::Point2 from, wave::Point2 to, Real frequency) const;

  /// Search [f_lo, f_hi] in `steps` for the best carrier for this path —
  /// the §3.5 "fine-tuning" knob. Returns (frequency, gain).
  struct Tuning {
    Real frequency = 0.0;
    Real gain = 0.0;
  };
  Tuning best_frequency(wave::Point2 from, wave::Point2 to, Real f_lo,
                        Real f_hi, int steps = 41) const;

  std::size_t count() const { return scatterers_.size(); }
  const std::vector<Scatterer>& scatterers() const { return scatterers_; }

 private:
  std::vector<Scatterer> scatterers_;
  Real wave_speed_;
};

}  // namespace ecocap::channel
