#include "channel/scatterers.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ecocap::channel {

namespace {
constexpr Real kTwoPi = 6.283185307179586;

/// Distance from the segment a->b to point p.
Real segment_distance(wave::Point2 a, wave::Point2 b, wave::Point2 p) {
  const Real dx = b.x - a.x;
  const Real dy = b.y - a.y;
  const Real len2 = dx * dx + dy * dy;
  if (len2 <= 0.0) {
    return std::hypot(p.x - a.x, p.y - a.y);
  }
  Real t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp<Real>(t, 0.0, 1.0);
  return std::hypot(p.x - (a.x + t * dx), p.y - (a.y + t * dy));
}

}  // namespace

ScattererField::ScattererField(std::vector<Scatterer> scatterers,
                               const wave::Material& medium)
    : scatterers_(std::move(scatterers)),
      wave_speed_(medium.cs > 0.0 ? medium.cs : medium.cp) {}

ScattererField ScattererField::random_rebar(int count, Real length,
                                            Real thickness,
                                            const wave::Material& medium,
                                            dsp::Rng& rng) {
  std::vector<Scatterer> s;
  s.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    Scatterer r;
    r.position = wave::Point2{rng.uniform(0.0, length),
                              rng.uniform(0.1 * thickness, 0.9 * thickness)};
    r.radius = rng.uniform(0.006, 0.016);
    r.blockage = rng.uniform(0.3, 0.7);
    s.push_back(r);
  }
  return ScattererField(std::move(s), medium);
}

Real ScattererField::path_gain(wave::Point2 from, wave::Point2 to,
                               Real frequency) const {
  const Real direct_len = std::hypot(to.x - from.x, to.y - from.y);
  if (direct_len <= 0.0 || frequency <= 0.0) return 1.0;
  const Real k = kTwoPi * frequency / wave_speed_;

  // Direct component: attenuated by every scatterer the ray crosses.
  Real direct = 1.0;
  // Scattered copies: each near-path scatterer re-radiates a delayed copy;
  // its phase relative to the direct arrival is k * (detour length).
  Real sum_re = 0.0;
  Real sum_im = 0.0;

  for (const auto& s : scatterers_) {
    const Real d = segment_distance(from, to, s.position);
    if (d <= s.radius) {
      direct *= (1.0 - s.blockage);
    }
    // Scattering zone: within ~6 radii of the path, the object re-radiates
    // a weak delayed copy. A thin cylinder's scattering cross-section is a
    // small fraction of its geometric shadow; the miss distance attenuates
    // it further.
    if (d <= 6.0 * s.radius) {
      const Real d1 = std::hypot(s.position.x - from.x, s.position.y - from.y);
      const Real d2 = std::hypot(to.x - s.position.x, to.y - s.position.y);
      const Real detour = (d1 + d2) - direct_len;
      const Real cross =
          0.45 * s.blockage * s.radius / (d + 3.0 * s.radius);
      const Real phase = k * detour;
      sum_re += cross * std::cos(phase);
      sum_im += cross * std::sin(phase);
    }
  }

  // Scattered copies redistribute energy: they can fill a fade but never
  // push the channel above the unobstructed path.
  const Real re = direct + sum_re;
  const Real im = sum_im;
  return std::min<Real>(std::hypot(re, im), 1.0);
}

ScattererField::Tuning ScattererField::best_frequency(wave::Point2 from,
                                                      wave::Point2 to,
                                                      Real f_lo, Real f_hi,
                                                      int steps) const {
  Tuning best;
  for (int i = 0; i < steps; ++i) {
    const Real f =
        f_lo + (f_hi - f_lo) * static_cast<Real>(i) / std::max(steps - 1, 1);
    const Real g = path_gain(from, to, f);
    if (g > best.gain) {
      best.gain = g;
      best.frequency = f;
    }
  }
  return best;
}

}  // namespace ecocap::channel
