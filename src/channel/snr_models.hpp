#pragma once

#include <string>

#include "channel/structures.hpp"
#include "wave/prism.hpp"

namespace ecocap::channel {

/// Bandwidth-limited uplink SNR model (paper §5.3, Figs. 16/17). The
/// backscatter signal occupies a band ~ 2 * bitrate around the carrier; the
/// mechanical channel (PZT + concrete resonance) only passes a band
/// carrier_bandwidth wide. Energy falling outside is lost, so the measured
/// SNR collapses once the bitrate exceeds roughly half the channel band.
struct UplinkSnrModel {
  std::string system;
  Real snr0_db = 15.0;          // in-band SNR at low bitrate
  Real carrier_bandwidth = 20e3; // Hz passband of the mechanical channel
  Real rolloff_order = 3.0;      // Butterworth-like knee sharpness

  /// SNR (dB) at the given uplink bitrate.
  Real snr_db(Real bitrate) const;

  /// The EcoCapsule link in a given concrete: 230 kHz carrier with an
  /// effective channel Q of ~11.5 (20 kHz passband -> 10 kbps knee), and
  /// snr0 raised by the material coupling gain (UHPC/UHPFRC conduct better,
  /// the Fig. 17 finding).
  static UplinkSnrModel ecocapsule(const wave::Material& concrete);

  /// PAB underwater baseline: 15 kHz carrier, ~5.2 kHz usable band.
  static UplinkSnrModel pab();

  /// U2B wideband metamaterial baseline: a much wider band at slightly
  /// lower peak SNR — overtakes EcoCapsule past ~9 kbps (Fig. 16).
  static UplinkSnrModel u2b();
};

/// FM0 BER at a given post-processing SNR. Coherent ML decoding of FM0
/// performs close to antipodal signaling: BER ~ Q(sqrt(2 * snr)) with an
/// implementation penalty; `penalty_db` models a less capable decoder (the
/// PAB comparison curve in Fig. 15 needs ~3 dB more for the same BER).
Real fm0_ber(Real snr_db, Real penalty_db = 0.0);

/// Goodput (correct bits/s) at a bitrate under the SNR model:
/// bitrate * (1 - BER(snr(bitrate))).
Real goodput(const UplinkSnrModel& model, Real bitrate, Real penalty_db = 0.0);

/// Best achievable throughput over a bitrate sweep (Fig. 17 reproduction).
struct ThroughputResult {
  Real best_bitrate = 0.0;
  Real throughput = 0.0;
};
ThroughputResult max_throughput(const UplinkSnrModel& model,
                                Real bitrate_lo = 500.0,
                                Real bitrate_hi = 20.0e3,
                                Real penalty_db = 0.0);

/// Inter-reader interference for co-located readers on the same structure
/// (the scenario layer's multi-reader campaigns). A neighbouring reader's
/// carrier arrives at the victim's transducer attenuated only over the
/// reader separation, while the wanted backscatter pays the backscatter
/// conversion loss plus the round trip to the node — so an uncoordinated
/// neighbour a few metres away usually buries deep nodes. The victim's RX
/// chain notches its own carrier; an offset interferer falls partly outside
/// the notch, recovering `rejection_db_per_decade` per decade of offset
/// beyond `rx_notch_bw_hz`, saturating at `max_rejection_db`.
struct ReaderInterference {
  /// Conversion loss of the backscatter reflection vs a directly driven
  /// carrier (the ~10x self-interference figure of §3.4, squared to power).
  Real backscatter_loss_db = 30.0;
  Real rx_notch_bw_hz = 500.0;       // offsets inside get no extra rejection
  Real rejection_db_per_decade = 30.0;
  Real max_rejection_db = 60.0;

  /// Filter rejection (dB >= 0) of an interfering carrier at `offset_hz`
  /// from the victim's own carrier.
  Real carrier_rejection_db(Real offset_hz) const;

  /// Carrier-to-interference ratio (dB) at the victim reader for a node at
  /// `node_distance` (m) while a neighbour `separation_m` away transmits at
  /// `carrier_offset_hz`. Both paths follow the structure's range law.
  Real cir_db(const Structure& structure, Real node_distance,
              Real separation_m, Real carrier_offset_hz) const;
};

/// Combine the thermal-noise SNR with a carrier-to-interference ratio into
/// the decision SINR: powers add, so 1/sinr = 1/snr + 1/cir.
Real sinr_db(Real snr_db, Real cir_db);

/// Downlink quality vs prism incident angle (Fig. 19). The received signal
/// is the dominant transmitted mode; the co-existing secondary mode carries
/// a delayed copy of the same data (60% symbol overlap at the paper's
/// velocities) and acts as intra-symbol interference.
struct DownlinkAngleModel {
  wave::Material prism_material;
  wave::Material concrete;
  Real peak_snr_db = 15.0;   // noise-limited ceiling in the S-only window
  /// ISI amplification: a symbol-synchronous echo corrupts the decision
  /// statistic more than its raw power suggests (decision feedback).
  Real isi_boost = 3.0;
  /// Fraction of symbol overlap between the two mode copies (S-waves are
  /// ~40% slower, so ~60% of the data overlaps — paper §3.2).
  Real mode_overlap = 0.6;

  /// SNR (dB) at incident angle theta (radians). theta = 0 means direct
  /// PZT contact without a prism (only P-waves injected).
  Real snr_db(Real theta) const;

  static DownlinkAngleModel paper_default();
};

}  // namespace ecocap::channel
