#pragma once

#include <string>

#include "channel/structures.hpp"
#include "wave/prism.hpp"

namespace ecocap::channel {

/// Bandwidth-limited uplink SNR model (paper §5.3, Figs. 16/17). The
/// backscatter signal occupies a band ~ 2 * bitrate around the carrier; the
/// mechanical channel (PZT + concrete resonance) only passes a band
/// carrier_bandwidth wide. Energy falling outside is lost, so the measured
/// SNR collapses once the bitrate exceeds roughly half the channel band.
struct UplinkSnrModel {
  std::string system;
  Real snr0_db = 15.0;          // in-band SNR at low bitrate
  Real carrier_bandwidth = 20e3; // Hz passband of the mechanical channel
  Real rolloff_order = 3.0;      // Butterworth-like knee sharpness

  /// SNR (dB) at the given uplink bitrate.
  Real snr_db(Real bitrate) const;

  /// The EcoCapsule link in a given concrete: 230 kHz carrier with an
  /// effective channel Q of ~11.5 (20 kHz passband -> 10 kbps knee), and
  /// snr0 raised by the material coupling gain (UHPC/UHPFRC conduct better,
  /// the Fig. 17 finding).
  static UplinkSnrModel ecocapsule(const wave::Material& concrete);

  /// PAB underwater baseline: 15 kHz carrier, ~5.2 kHz usable band.
  static UplinkSnrModel pab();

  /// U2B wideband metamaterial baseline: a much wider band at slightly
  /// lower peak SNR — overtakes EcoCapsule past ~9 kbps (Fig. 16).
  static UplinkSnrModel u2b();
};

/// FM0 BER at a given post-processing SNR. Coherent ML decoding of FM0
/// performs close to antipodal signaling: BER ~ Q(sqrt(2 * snr)) with an
/// implementation penalty; `penalty_db` models a less capable decoder (the
/// PAB comparison curve in Fig. 15 needs ~3 dB more for the same BER).
Real fm0_ber(Real snr_db, Real penalty_db = 0.0);

/// Goodput (correct bits/s) at a bitrate under the SNR model:
/// bitrate * (1 - BER(snr(bitrate))).
Real goodput(const UplinkSnrModel& model, Real bitrate, Real penalty_db = 0.0);

/// Best achievable throughput over a bitrate sweep (Fig. 17 reproduction).
struct ThroughputResult {
  Real best_bitrate = 0.0;
  Real throughput = 0.0;
};
ThroughputResult max_throughput(const UplinkSnrModel& model,
                                Real bitrate_lo = 500.0,
                                Real bitrate_hi = 20.0e3,
                                Real penalty_db = 0.0);

/// Downlink quality vs prism incident angle (Fig. 19). The received signal
/// is the dominant transmitted mode; the co-existing secondary mode carries
/// a delayed copy of the same data (60% symbol overlap at the paper's
/// velocities) and acts as intra-symbol interference.
struct DownlinkAngleModel {
  wave::Material prism_material;
  wave::Material concrete;
  Real peak_snr_db = 15.0;   // noise-limited ceiling in the S-only window
  /// ISI amplification: a symbol-synchronous echo corrupts the decision
  /// statistic more than its raw power suggests (decision feedback).
  Real isi_boost = 3.0;
  /// Fraction of symbol overlap between the two mode copies (S-waves are
  /// ~40% slower, so ~60% of the data overlaps — paper §3.2).
  Real mode_overlap = 0.6;

  /// SNR (dB) at incident angle theta (radians). theta = 0 means direct
  /// PZT contact without a prism (only P-waves injected).
  Real snr_db(Real theta) const;

  static DownlinkAngleModel paper_default();
};

}  // namespace ecocap::channel
