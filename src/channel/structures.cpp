#include "channel/structures.hpp"

namespace ecocap::channel::structures {

Structure s1_slab() {
  Structure s;
  s.name = "S1-slab";
  s.kind = StructureKind::kSlab;
  s.material = wave::materials::normal_concrete();
  s.length = 1.50;
  s.thickness = 0.15;
  // 50 V -> 1.30 m: gamma = 0.36, C = 50 * exp(-0.36 * 1.30) = 31.3 V.
  s.effective_attenuation = 0.36;
  s.coupling_voltage = 31.3;
  s.spreading = wave::Spreading::kCylindrical;
  return s;
}

Structure s2_column() {
  Structure s;
  s.name = "S2-column";
  s.kind = StructureKind::kColumn;
  s.material = wave::materials::normal_concrete();
  s.length = 2.50;
  s.thickness = 0.70;
  // 50 V -> 0.56 m and 200 V -> 2.35 m: gamma = ln(4)/1.79 = 0.774,
  // C = 50 * exp(-0.774 * 0.56) = 32.4 V. The thick cross-section spreads
  // energy in 3-D, hence the steep decay.
  s.effective_attenuation = 0.774;
  s.coupling_voltage = 32.4;
  s.spreading = wave::Spreading::kSpherical;
  return s;
}

Structure s3_common_wall() {
  Structure s;
  s.name = "S3-common-wall";
  s.kind = StructureKind::kWall;
  s.material = wave::materials::normal_concrete();
  s.length = 20.0;
  s.thickness = 0.20;
  // 50 V -> 1.34 m: gamma = 0.35, C = 50 * exp(-0.35 * 1.34) = 31.3 V.
  // 200 V -> 5.3 m and 250 V -> 5.9 m follow, matching the ~5 m / ~6 m
  // paper anchors. The 20 cm wall waveguides the S-reflections.
  s.effective_attenuation = 0.35;
  s.coupling_voltage = 31.3;
  s.spreading = wave::Spreading::kWaveguide;
  return s;
}

Structure s4_protective_wall() {
  Structure s;
  s.name = "S4-protective-wall";
  s.kind = StructureKind::kWall;
  s.material = wave::materials::normal_concrete();
  s.length = 20.0;
  s.thickness = 0.50;
  // 50 V -> 0.60 m and 200 V -> 3.85 m: gamma = ln(4)/3.25 = 0.427,
  // C = 50 * exp(-0.427 * 0.60) = 38.7 V.
  s.effective_attenuation = 0.427;
  s.coupling_voltage = 38.7;
  s.spreading = wave::Spreading::kWaveguide;
  return s;
}

Structure pab_pool1() {
  Structure s;
  s.name = "PAB-pool-1";
  s.kind = StructureKind::kPool;
  s.material = wave::materials::water();
  s.length = 10.0;
  s.thickness = 1.5;
  // 50 V -> 0.19 m and 200 V -> 2.0 m: gamma = ln(4)/1.81 = 0.766,
  // C = 50 * exp(-0.766 * 0.19) = 43.2 V. Open water: spherical spreading
  // dominates, and the lighter medium conducts elastic energy worse than
  // concrete (the paper's finding (3)).
  s.effective_attenuation = 0.766;
  s.coupling_voltage = 43.2;
  s.spreading = wave::Spreading::kSpherical;
  return s;
}

Structure pab_pool2() {
  Structure s;
  s.name = "PAB-pool-2";
  s.kind = StructureKind::kPool;
  s.material = wave::materials::water();
  s.length = 18.0;
  s.thickness = 1.0;
  // The anomaly: 84 V barely reaches 0.23 m (poor coupling into the narrow
  // corridor) but 125 V reaches 6.5 m (corridor waveguiding makes the decay
  // nearly flat): gamma = ln(125/84)/6.27 = 0.063, C = 82.8 V.
  s.effective_attenuation = 0.063;
  s.coupling_voltage = 82.8;
  s.spreading = wave::Spreading::kWaveguide;
  return s;
}

std::vector<Structure> figure12_structures() {
  return {s1_slab(),  s2_column(), s3_common_wall(),
          s4_protective_wall(), pab_pool1(), pab_pool2()};
}

Structure test_block(const wave::Material& concrete, Real thickness) {
  Structure s;
  s.name = "block-" + concrete.name;
  s.kind = StructureKind::kSlab;
  s.material = concrete;
  s.length = 0.15;
  s.thickness = thickness;
  s.effective_attenuation = concrete.alpha_s_ref;
  s.coupling_voltage = 30.0;
  s.spreading = wave::Spreading::kCylindrical;
  return s;
}

}  // namespace ecocap::channel::structures
