#pragma once

#include <string>
#include <vector>

#include "wave/attenuation.hpp"
#include "wave/material.hpp"

namespace ecocap::channel {

using dsp::Real;

/// Kind of concrete structure (or water pool, for the PAB baseline) a link
/// runs through. The geometry class determines how energy spreads: narrow
/// walls act as waveguides and carry energy much further than thick columns
/// (the central Fig. 12 finding).
enum class StructureKind { kSlab, kColumn, kWall, kPool };

/// A test structure with its calibrated link parameters.
///
/// `effective_attenuation` and `coupling_voltage` are *effective* link
/// constants: they fold the material loss, geometric confinement and the
/// reader-to-structure coupling into the two parameters of the range law
///
///   d_max(V) = ln(V / coupling_voltage) / effective_attenuation
///
/// They are calibrated from the paper's measured Fig. 12 ranges (two points
/// per structure) because the full 3-D elastodynamics of each real structure
/// is exactly the hardware gate this reproduction substitutes; the *law*
/// (exponential decay + threshold) follows from the physics in wave/.
struct Structure {
  std::string name;
  StructureKind kind = StructureKind::kWall;
  wave::Material material;
  Real length = 1.0;       // m — maximum physical distance along the structure
  Real thickness = 0.15;   // m — across (diameter for columns, depth for pools)
  Real effective_attenuation = 0.4;  // Np/m amplitude decay of the CBW
  Real coupling_voltage = 30.0;      // V at which the power-up range is 0
  wave::Spreading spreading = wave::Spreading::kCylindrical;

  /// Is this an underwater (PAB) environment rather than concrete?
  bool is_pool() const { return kind == StructureKind::kPool; }
};

/// The paper's evaluation structures (§5.1) with parameters calibrated to
/// the Fig. 12 measurements (comments carry the anchor points).
namespace structures {

/// S1: 150 x 50 x 15 cm concrete slab. Anchor: 130 cm @ 50 V.
Structure s1_slab();

/// S2: 250 cm load-bearing column, 70 cm diameter.
/// Anchors: 56 cm @ 50 V, 235 cm @ 200 V.
Structure s2_column();

/// S3: 2000 x 2000 x 20 cm common wall.
/// Anchors: 134 cm @ 50 V, ~500 cm @ 200 V, ~6 m @ 250 V.
Structure s3_common_wall();

/// S4: 2000 x 2000 x 50 cm protective wall.
/// Anchors: 60 cm @ 50 V, 385 cm @ 200 V.
Structure s4_protective_wall();

/// PAB pool 1 (open pool). Anchors: 19 cm @ 50 V, 200 cm @ 200 V.
Structure pab_pool1();

/// PAB pool 2 (elongated corridor pool — the Fig. 12 anomaly: high coupling
/// loss but near-lossless guided propagation).
/// Anchors: 23 cm @ 84 V, 650 cm @ 125 V.
Structure pab_pool2();

/// All six in Fig. 12 order.
std::vector<Structure> figure12_structures();

/// A 15 cm test block of the given concrete (the §5.3 uplink experiments).
Structure test_block(const wave::Material& concrete, Real thickness = 0.15);

}  // namespace structures

}  // namespace ecocap::channel
