#pragma once

#include <optional>

#include "channel/structures.hpp"

namespace ecocap::channel {

/// Wireless-charging link budget (paper §3.2, §5.2). The reader injects a
/// continuous body wave at `tx_voltage`; the acoustic amplitude reaching a
/// node at distance d follows the structure's exponential range law. The
/// node powers up when the amplitude at its PZT yields at least the
/// harvester's activation voltage.
class LinkBudget {
 public:
  /// @param structure the propagation structure (see channel::structures)
  /// @param activation_voltage minimum rectified voltage that can start the
  ///        cold-start charge (0.5 V per Fig. 14)
  /// @param hra_gain receive amplitude gain of the Helmholtz resonator
  ///        array at the carrier (ablation knob; 1.0 = no HRA)
  explicit LinkBudget(Structure structure, Real activation_voltage = 0.5,
                      Real hra_gain = 1.0);

  /// Rectified voltage available at a node `distance` meters from the
  /// reader when the reader drives `tx_voltage` volts.
  Real node_voltage(Real tx_voltage, Real distance) const;

  /// Maximum distance at which a node powers up, clamped to the structure's
  /// physical length; nullopt when the node cannot power up even at contact.
  std::optional<Real> max_powerup_range(Real tx_voltage) const;

  /// Minimum TX voltage required to power a node at `distance`.
  Real required_voltage(Real distance) const;

  const Structure& structure() const { return structure_; }

 private:
  Structure structure_;
  Real activation_voltage_;
  Real hra_gain_;
};

}  // namespace ecocap::channel
