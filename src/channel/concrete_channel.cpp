#include "channel/concrete_channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"
#include "wave/attenuation.hpp"
#include "wave/snell.hpp"

namespace ecocap::channel {

namespace {
// Null-checks that must fire before the member-init list dereferences the
// snapshots (prism_ is built from structure_->material).
const Structure& require(const std::shared_ptr<const Structure>& s) {
  if (!s) throw std::invalid_argument("ConcreteChannel: null structure");
  return *s;
}
const ChannelConfig& require(const std::shared_ptr<const ChannelConfig>& c) {
  if (!c) throw std::invalid_argument("ConcreteChannel: null config");
  return *c;
}
}  // namespace

ConcreteChannel::ConcreteChannel(Structure structure, ChannelConfig config)
    : ConcreteChannel(
          std::make_shared<const Structure>(std::move(structure)),
          std::make_shared<const ChannelConfig>(std::move(config))) {}

ConcreteChannel::ConcreteChannel(std::shared_ptr<const Structure> structure,
                                 std::shared_ptr<const ChannelConfig> config)
    : structure_(std::move(structure)),
      config_(std::move(config)),
      prism_(wave::materials::pla(), require(structure_).material,
             wave::deg_to_rad(require(config_).prism_angle_deg)) {
  if (config_->fs <= 0.0 || config_->distance < 0.0) {
    throw std::invalid_argument("ConcreteChannel: invalid config");
  }
  if (!config_->scatterers.empty()) {
    scatterer_field_.emplace(config_->scatterers, structure_->material);
  }
  resonator_ = dsp::FilterCache::shared().bandpass_resonator(
      config_->fs, config_->concrete_resonance, config_->concrete_q);
  mode_taps_ = compute_mode_taps();
}

Real ConcreteChannel::scatterer_gain(Real frequency) const {
  if (!scatterer_field_) return 1.0;
  // The reader sits at x = 0 mid-thickness; the node at the configured
  // distance along the structure.
  const wave::Point2 reader{0.0, structure_->thickness / 2.0};
  const wave::Point2 node{config_->distance, structure_->thickness / 2.0};
  return scatterer_field_->path_gain(reader, node, frequency);
}

Real ConcreteChannel::path_gain() const {
  return std::exp(-structure_->effective_attenuation * config_->distance) *
         scatterer_gain(config_->carrier_for_scatterers);
}

std::vector<wave::Tap> ConcreteChannel::compute_mode_taps() const {
  std::vector<wave::Tap> taps;
  const Real gain = path_gain();
  const Real cs = structure_->material.cs > 0.0 ? structure_->material.cs
                                                : structure_->material.cp;
  const Real cp = structure_->material.cp;

  if (config_->prism_angle_deg <= 1e-9 || structure_->material.is_fluid()) {
    // Direct contact (or a fluid): a single P arrival.
    taps.push_back(wave::Tap{config_->distance / cp, gain, 0});
    return taps;
  }

  const wave::ModeAmplitudes amps = prism_.conducted_amplitudes();
  // The S copy is the intended carrier; the P copy (when the incident angle
  // is below the first critical angle) arrives earlier and carries the same
  // data — the intra-symbol interference the prism design eliminates.
  if (amps.s > 1e-6) {
    taps.push_back(wave::Tap{config_->distance / cs, amps.s * gain, 0});
  }
  if (amps.p > 1e-6) {
    taps.push_back(wave::Tap{config_->distance / cp, amps.p * gain, 0});
  }

  if (config_->use_multipath && !structure_->material.is_fluid()) {
    wave::RayTracer::Config rc;
    rc.length = structure_->length;
    rc.thickness = structure_->thickness;
    rc.frequency = config_->concrete_resonance;
    rc.rays = config_->multipath_rays;
    const wave::RayTracer tracer(structure_->material, rc);
    const Real launch = prism_.refraction().theta_s.value_or(
        wave::deg_to_rad(45.0));
    const auto ray_taps = tracer.trace(
        0.0, launch,
        wave::Point2{config_->distance, structure_->thickness / 2.0});
    // The direct mode taps above carry the calibrated total gain; the ray
    // taps add the reverberant tail, scaled to sit below the direct path.
    Real direct_amp = 0.0;
    for (const auto& t : ray_taps) direct_amp = std::max(direct_amp, std::abs(t.amplitude));
    if (direct_amp > 0.0) {
      for (const auto& t : ray_taps) {
        if (t.bounces == 0) continue;  // direct path already modeled
        taps.push_back(wave::Tap{t.delay, 0.4 * gain * t.amplitude / direct_amp,
                                 t.bounces});
      }
    }
  }

  std::sort(taps.begin(), taps.end(),
            [](const wave::Tap& a, const wave::Tap& b) {
              return a.delay < b.delay;
            });
  return taps;
}

void ConcreteChannel::apply_taps(std::span<const Real> x,
                                 const std::vector<wave::Tap>& taps,
                                 Signal& out) const {
  out.assign(x.size(), 0.0);
  if (taps.empty()) return;
  const Real base_delay =
      config_->preserve_absolute_delay ? 0.0 : taps.front().delay;
  for (const auto& t : taps) {
    const auto shift = static_cast<std::size_t>(
        std::llround((t.delay - base_delay) * config_->fs));
    for (std::size_t i = shift; i < out.size(); ++i) {
      out[i] += t.amplitude * x[i - shift];
    }
  }
}

void ConcreteChannel::apply_resonance_inplace(Signal& x) const {
  dsp::Biquad bp = resonator_->prototype;  // zero-state copy
  const Real g0 = resonator_->peak_gain;
  // Direct-form-I reads the input sample before writing the output slot, so
  // filtering in place is sample-for-sample identical to a fresh buffer.
  bp.process(std::span<const Real>(x), x);
  if (g0 > 0.0) dsp::scale(x, 1.0 / g0);
}

Signal ConcreteChannel::downlink(std::span<const Real> tx_acoustic,
                                 dsp::Rng& rng) const {
  Signal y;
  downlink(tx_acoustic, rng, y);
  return y;
}

void ConcreteChannel::downlink(std::span<const Real> tx_acoustic,
                               dsp::Rng& rng, Signal& out) const {
  apply_taps(tx_acoustic, mode_taps(), out);
  apply_resonance_inplace(out);
  dsp::add_awgn(out, config_->noise_sigma, rng);
}

Signal ConcreteChannel::uplink(std::span<const Real> node_emission,
                               Real carrier_frequency, dsp::Rng& rng) const {
  Signal y;
  uplink(node_emission, carrier_frequency, rng, y);
  return y;
}

void ConcreteChannel::uplink(std::span<const Real> node_emission,
                             Real carrier_frequency, dsp::Rng& rng,
                             Signal& out) const {
  // The uplink path carries only the S-reflections back (the node radiates
  // from inside the bulk; the prism mode split does not apply).
  const Real gain = path_gain();
  if (config_->preserve_absolute_delay) {
    const Real cs = structure_->material.cs > 0.0 ? structure_->material.cs
                                                  : structure_->material.cp;
    const auto shift = static_cast<std::size_t>(
        std::llround(config_->distance / cs * config_->fs));
    out.assign(node_emission.size() + shift, 0.0);
    for (std::size_t i = 0; i < node_emission.size(); ++i) {
      out[i + shift] = node_emission[i];
    }
  } else {
    out.assign(node_emission.begin(), node_emission.end());
  }
  dsp::scale(out, gain);
  apply_resonance_inplace(out);

  // Self-interference: the CBW leaks into the receiving PZT at an amplitude
  // config_->self_interference_gain times the *backscatter* amplitude (§3.4:
  // "10x stronger than the backscattered signals").
  const Real bs_rms = dsp::rms(out);
  dsp::Oscillator cw(config_->fs, carrier_frequency);
  // A random starting phase decorrelates SI from the carrier snapshot the
  // node reflected.
  cw.reset_phase(rng.uniform(0.0, 2.0 * dsp::kPi));
  for (Real& v : out) {
    v += cw.next(config_->self_interference_gain * bs_rms * std::sqrt(2.0));
  }
  dsp::add_awgn(out, config_->noise_sigma, rng);
}

}  // namespace ecocap::channel
