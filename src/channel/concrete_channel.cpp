#include "channel/concrete_channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dsp/oscillator.hpp"
#include "dsp/serialize.hpp"
#include "dsp/signal_ops.hpp"
#include "wave/attenuation.hpp"
#include "wave/snell.hpp"

namespace ecocap::channel {

namespace {
// Null-checks that must fire before the member-init list dereferences the
// snapshots (prism_ is built from structure_->material).
const Structure& require(const std::shared_ptr<const Structure>& s) {
  if (!s) throw std::invalid_argument("ConcreteChannel: null structure");
  return *s;
}
const ChannelConfig& require(const std::shared_ptr<const ChannelConfig>& c) {
  if (!c) throw std::invalid_argument("ConcreteChannel: null config");
  return *c;
}
}  // namespace

ConcreteChannel::ConcreteChannel(Structure structure, ChannelConfig config)
    : ConcreteChannel(
          std::make_shared<const Structure>(std::move(structure)),
          std::make_shared<const ChannelConfig>(std::move(config))) {}

ConcreteChannel::ConcreteChannel(std::shared_ptr<const Structure> structure,
                                 std::shared_ptr<const ChannelConfig> config)
    : structure_(std::move(structure)),
      config_(std::move(config)),
      prism_(wave::materials::pla(), require(structure_).material,
             wave::deg_to_rad(require(config_).prism_angle_deg)) {
  if (config_->fs <= 0.0 || config_->distance < 0.0) {
    throw std::invalid_argument("ConcreteChannel: invalid config");
  }
  if (!config_->scatterers.empty()) {
    scatterer_field_.emplace(config_->scatterers, structure_->material);
  }
  resonator_ = dsp::FilterCache::shared().bandpass_resonator(
      config_->fs, config_->concrete_resonance, config_->concrete_q);
  mode_taps_ = compute_mode_taps();
}

Real ConcreteChannel::scatterer_gain(Real frequency) const {
  if (!scatterer_field_) return 1.0;
  // The reader sits at x = 0 mid-thickness; the node at the configured
  // distance along the structure.
  const wave::Point2 reader{0.0, structure_->thickness / 2.0};
  const wave::Point2 node{config_->distance, structure_->thickness / 2.0};
  return scatterer_field_->path_gain(reader, node, frequency);
}

Real ConcreteChannel::path_gain() const {
  return std::exp(-structure_->effective_attenuation * config_->distance) *
         scatterer_gain(config_->carrier_for_scatterers);
}

std::vector<wave::Tap> ConcreteChannel::compute_mode_taps() const {
  std::vector<wave::Tap> taps;
  const Real gain = path_gain();
  const Real cs = structure_->material.cs > 0.0 ? structure_->material.cs
                                                : structure_->material.cp;
  const Real cp = structure_->material.cp;

  if (config_->prism_angle_deg <= 1e-9 || structure_->material.is_fluid()) {
    // Direct contact (or a fluid): a single P arrival.
    taps.push_back(wave::Tap{config_->distance / cp, gain, 0});
    return taps;
  }

  const wave::ModeAmplitudes amps = prism_.conducted_amplitudes();
  // The S copy is the intended carrier; the P copy (when the incident angle
  // is below the first critical angle) arrives earlier and carries the same
  // data — the intra-symbol interference the prism design eliminates.
  if (amps.s > 1e-6) {
    taps.push_back(wave::Tap{config_->distance / cs, amps.s * gain, 0});
  }
  if (amps.p > 1e-6) {
    taps.push_back(wave::Tap{config_->distance / cp, amps.p * gain, 0});
  }

  if (config_->use_multipath && !structure_->material.is_fluid()) {
    wave::RayTracer::Config rc;
    rc.length = structure_->length;
    rc.thickness = structure_->thickness;
    rc.frequency = config_->concrete_resonance;
    rc.rays = config_->multipath_rays;
    const wave::RayTracer tracer(structure_->material, rc);
    const Real launch = prism_.refraction().theta_s.value_or(
        wave::deg_to_rad(45.0));
    const auto ray_taps = tracer.trace(
        0.0, launch,
        wave::Point2{config_->distance, structure_->thickness / 2.0});
    // The direct mode taps above carry the calibrated total gain; the ray
    // taps add the reverberant tail, scaled to sit below the direct path.
    Real direct_amp = 0.0;
    for (const auto& t : ray_taps) direct_amp = std::max(direct_amp, std::abs(t.amplitude));
    if (direct_amp > 0.0) {
      for (const auto& t : ray_taps) {
        if (t.bounces == 0) continue;  // direct path already modeled
        taps.push_back(wave::Tap{t.delay, 0.4 * gain * t.amplitude / direct_amp,
                                 t.bounces});
      }
    }
  }

  std::sort(taps.begin(), taps.end(),
            [](const wave::Tap& a, const wave::Tap& b) {
              return a.delay < b.delay;
            });
  return taps;
}

void ConcreteChannel::apply_taps(std::span<const Real> x,
                                 const std::vector<wave::Tap>& taps,
                                 Signal& out) const {
  out.assign(x.size(), 0.0);
  if (taps.empty()) return;
  const Real base_delay =
      config_->preserve_absolute_delay ? 0.0 : taps.front().delay;
  for (const auto& t : taps) {
    const auto shift = static_cast<std::size_t>(
        std::llround((t.delay - base_delay) * config_->fs));
    for (std::size_t i = shift; i < out.size(); ++i) {
      out[i] += t.amplitude * x[i - shift];
    }
  }
}

void ConcreteChannel::apply_resonance_inplace(Signal& x) const {
  dsp::Biquad bp = resonator_->prototype;  // zero-state copy
  const Real g0 = resonator_->peak_gain;
  // Direct-form-I reads the input sample before writing the output slot, so
  // filtering in place is sample-for-sample identical to a fresh buffer.
  bp.process(std::span<const Real>(x), x);
  if (g0 > 0.0) dsp::scale(x, 1.0 / g0);
}

void ConcreteChannel::downlink(std::span<const Real> tx_acoustic,
                               dsp::Rng& rng, Signal& out) const {
  apply_taps(tx_acoustic, mode_taps(), out);
  apply_resonance_inplace(out);
  dsp::add_awgn(out, config_->noise_sigma, rng);
}

void ConcreteChannel::propagate_uplink(std::span<const Real> node_emission,
                                       Signal& out) const {
  // The uplink path carries only the S-reflections back (the node radiates
  // from inside the bulk; the prism mode split does not apply).
  const Real gain = path_gain();
  if (config_->preserve_absolute_delay) {
    const Real cs = structure_->material.cs > 0.0 ? structure_->material.cs
                                                  : structure_->material.cp;
    const auto shift = static_cast<std::size_t>(
        std::llround(config_->distance / cs * config_->fs));
    out.assign(node_emission.size() + shift, 0.0);
    for (std::size_t i = 0; i < node_emission.size(); ++i) {
      out[i + shift] = node_emission[i];
    }
  } else {
    out.assign(node_emission.begin(), node_emission.end());
  }
  dsp::scale(out, gain);
  apply_resonance_inplace(out);
}

void ConcreteChannel::add_uplink_si_noise(Signal& out, Real carrier_frequency,
                                          Real si_amplitude,
                                          dsp::Rng& rng) const {
  dsp::Oscillator cw(config_->fs, carrier_frequency);
  // A random starting phase decorrelates SI from the carrier snapshot the
  // node reflected.
  cw.reset_phase(rng.uniform(0.0, 2.0 * dsp::kPi));
  for (Real& v : out) {
    v += cw.next(si_amplitude);
  }
  dsp::add_awgn(out, config_->noise_sigma, rng);
}

Real ConcreteChannel::uplink_si_amplitude(Real propagated_rms) const {
  return config_->self_interference_gain * propagated_rms * std::sqrt(2.0);
}

void ConcreteChannel::uplink(std::span<const Real> node_emission,
                             Real carrier_frequency, dsp::Rng& rng,
                             Signal& out) const {
  propagate_uplink(node_emission, out);
  // Self-interference: the CBW leaks into the receiving PZT at an amplitude
  // config_->self_interference_gain times the *backscatter* amplitude (§3.4:
  // "10x stronger than the backscattered signals").
  add_uplink_si_noise(out, carrier_frequency, uplink_si_amplitude(dsp::rms(out)),
                      rng);
}

void ConcreteChannel::uplink(std::span<const Real> node_emission,
                             Real carrier_frequency, Real si_amplitude,
                             dsp::Rng& rng, Signal& out) const {
  propagate_uplink(node_emission, out);
  add_uplink_si_noise(out, carrier_frequency, si_amplitude, rng);
}

ConcreteChannel::DownlinkStream::DownlinkStream(const ConcreteChannel& channel,
                                                std::uint64_t noise_seed)
    : channel_(&channel),
      resonator_(channel.resonator_->prototype),  // zero-state copy
      rng_(noise_seed) {
  const Real base_delay = channel.config().preserve_absolute_delay
                              ? 0.0
                              : channel.mode_taps().empty()
                                    ? 0.0
                                    : channel.mode_taps().front().delay;
  for (const auto& t : channel.mode_taps()) {
    const auto shift = static_cast<std::size_t>(
        std::llround((t.delay - base_delay) * channel.config().fs));
    shifts_.push_back(shift);
    amps_.push_back(t.amplitude);
    max_shift_ = std::max(max_shift_, shift);
  }
  hist_.assign(max_shift_, 0.0);
  const Real g0 = channel.resonator_->peak_gain;
  if (g0 > 0.0) {
    resonance_scale_ = 1.0 / g0;
    has_resonance_scale_ = true;
  }
}

void ConcreteChannel::DownlinkStream::push_block(Signal& x) {
  const std::size_t n = x.size();
  if (n == 0) return;
  // Tap convolution over the carried delay line. Per output index the adds
  // happen in tap order onto a zero accumulator — the exact addition
  // sequence apply_taps performs tap-outer, so the result is bit-identical
  // at any block split.
  ext_.resize(max_shift_ + n);
  std::copy(hist_.begin(), hist_.end(), ext_.begin());
  std::copy(x.begin(), x.end(), ext_.begin() + static_cast<std::ptrdiff_t>(max_shift_));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t abs_i = pos_ + i;
    Real acc = 0.0;
    for (std::size_t k = 0; k < shifts_.size(); ++k) {
      if (shifts_[k] > abs_i) continue;  // batch starts tap k at i == shift
      acc += amps_[k] * ext_[max_shift_ + i - shifts_[k]];
    }
    x[i] = acc;
  }
  if (max_shift_ > 0) {
    std::copy(ext_.end() - static_cast<std::ptrdiff_t>(max_shift_), ext_.end(),
              hist_.begin());
  }
  pos_ += n;
  // Resonance: the same kernel invocation apply_resonance_inplace makes,
  // but on the carried biquad — direct form I state load/store makes block
  // splits invisible.
  resonator_.process(std::span<const Real>(x), x);
  if (has_resonance_scale_) dsp::scale(x, resonance_scale_);
  dsp::add_awgn(x, channel_->config().noise_sigma, rng_);
}

ConcreteChannel::UplinkStream::UplinkStream(const ConcreteChannel& channel,
                                            Real carrier_frequency,
                                            Real si_amplitude,
                                            std::uint64_t noise_seed)
    : channel_(&channel),
      gain_(channel.path_gain()),
      resonator_(channel.resonator_->prototype),  // zero-state copy
      si_(channel.config().fs, carrier_frequency),
      si_amplitude_(si_amplitude),
      rng_(noise_seed) {
  if (channel.config().preserve_absolute_delay) {
    throw std::invalid_argument(
        "UplinkStream: preserve_absolute_delay is a batch-only feature — a "
        "live stream schedules the emission later instead of padding it");
  }
  const Real g0 = channel.resonator_->peak_gain;
  if (g0 > 0.0) {
    resonance_scale_ = 1.0 / g0;
    has_resonance_scale_ = true;
  }
  // Matches the batch draw order: the SI phase is the first draw from the
  // uplink's RNG, before any noise gaussians.
  si_.reset_phase(rng_.uniform(0.0, 2.0 * dsp::kPi));
}

void ConcreteChannel::UplinkStream::push_block(Signal& x) {
  if (x.empty()) return;
  dsp::scale(x, gain_);
  resonator_.process(std::span<const Real>(x), x);
  if (has_resonance_scale_) dsp::scale(x, resonance_scale_);
  for (Real& v : x) v += si_.next(si_amplitude_);
  dsp::add_awgn(x, channel_->config().noise_sigma, rng_);
}

void ConcreteChannel::DownlinkStream::save(dsp::ser::Writer& w) const {
  w.u64("dls.pos", pos_);
  w.real_vec("dls.hist", hist_);
  resonator_.save(w);
  w.rng("dls.rng", rng_);
}

void ConcreteChannel::DownlinkStream::load(dsp::ser::Reader& r) {
  pos_ = r.u64("dls.pos");
  hist_ = r.real_vec("dls.hist");
  if (hist_.size() != max_shift_) {
    throw std::runtime_error(
        "checkpoint: downlink tap delay line length mismatch");
  }
  resonator_.load(r);
  r.rng("dls.rng", rng_);
}

void ConcreteChannel::UplinkStream::save(dsp::ser::Writer& w) const {
  resonator_.save(w);
  w.real("uls.si_phase", si_.phase());
  w.rng("uls.rng", rng_);
}

void ConcreteChannel::UplinkStream::load(dsp::ser::Reader& r) {
  resonator_.load(r);
  si_.reset_phase(r.real("uls.si_phase"));
  r.rng("uls.rng", rng_);
}

}  // namespace ecocap::channel
