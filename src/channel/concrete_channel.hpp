#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "channel/link_budget.hpp"
#include "channel/scatterers.hpp"
#include "channel/structures.hpp"
#include "dsp/biquad.hpp"
#include "dsp/filter_cache.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "wave/prism.hpp"
#include "wave/ray_tracer.hpp"

namespace ecocap::channel {

using dsp::Real;
using dsp::Signal;

/// Configuration of a waveform-level acoustic link through a structure.
struct ChannelConfig {
  Real fs = 2.0e6;                 // simulation sample rate (Hz)
  Real distance = 1.0;             // reader -> node path length (m)
  Real prism_angle_deg = 60.0;     // injection angle (0 = no prism)
  Real concrete_resonance = 230.0e3;  // Hz, center of the carrier band
  Real concrete_q = 10.0;          // resonator Q of the concrete+PZT path
  /// Acoustic noise floor at the receiving PZT, as an absolute sample
  /// standard deviation relative to a unit-amplitude carrier at 1 m.
  Real noise_sigma = 3.0e-3;
  /// Self-interference power ratio: CBW leakage + surface waves are ~10x
  /// stronger in amplitude than the backscatter at the reader RX (§3.4).
  Real self_interference_gain = 10.0;
  /// When true, convolve with ray-traced boundary-reflection taps instead
  /// of only the direct mode arrivals.
  bool use_multipath = false;
  int multipath_rays = 48;
  /// When true, keep the absolute propagation delay in the output instead
  /// of normalizing to the first arrival — required for time-of-flight
  /// ranging of nodes at unknown positions (§3.2's discovery problem).
  bool preserve_absolute_delay = false;
  /// Foreign objects inside the concrete (§3.5): when non-empty, the link
  /// gain is additionally scaled by the scatterer field's
  /// frequency-selective path gain at `carrier_for_scatterers`.
  std::vector<Scatterer> scatterers;
  Real carrier_for_scatterers = 230.0e3;
};

/// End-to-end acoustic channel through a concrete structure. Downlink takes
/// the reader's transmitted acoustic waveform and produces the waveform at
/// the node's PZT; uplink takes the node's backscatter emission and produces
/// the waveform at the reader's receiving PZT, including the CBW
/// self-interference (paper §3.2-3.4).
class ConcreteChannel {
 public:
  /// Owning construction: copies the structure and config in.
  ConcreteChannel(Structure structure, ChannelConfig config);

  /// Shared immutable snapshot construction: Monte-Carlo harnesses build
  /// one SystemConfig snapshot and alias its structure/channel members into
  /// every per-trial channel, so heavyweight fields (the scatterer list in
  /// particular) are never copied per trial.
  ConcreteChannel(std::shared_ptr<const Structure> structure,
                  std::shared_ptr<const ChannelConfig> config);

  /// Propagate the reader's acoustic output to the node, into a
  /// caller-provided buffer (resized to the input length). Applies:
  ///  * prism mode split (an early P copy + the main S copy when the
  ///    incident angle is below the first critical angle),
  ///  * the concrete/PZT band resonance ("FSK in, OOK out" physics),
  ///  * distance attenuation per the structure's range law,
  ///  * additive Gaussian acoustic noise.
  /// `out` must not alias `tx_acoustic`.
  void downlink(std::span<const Real> tx_acoustic, dsp::Rng& rng,
                Signal& out) const;

  /// Propagate the node's backscatter emission to the reader RX into a
  /// caller-provided buffer, adding the CBW self-interference at an
  /// amplitude derived from the propagated backscatter RMS (§3.4's "10x
  /// stronger"). `out` must not alias `node_emission`.
  /// @param carrier_frequency frequency of the CBW for SI synthesis
  void uplink(std::span<const Real> node_emission, Real carrier_frequency,
              dsp::Rng& rng, Signal& out) const;

  /// Uplink with an explicitly chosen self-interference amplitude instead
  /// of the RMS-derived one. This is the form the streaming pipeline uses:
  /// a live reader knows its own CBW drive level up front, whereas the RMS
  /// derivation needs the whole emission in hand. Passing
  /// `self_interference_gain * rms(propagated emission) * sqrt(2)` (see
  /// `uplink_si_amplitude`) reproduces the RMS-derived overload exactly.
  void uplink(std::span<const Real> node_emission, Real carrier_frequency,
              Real si_amplitude, dsp::Rng& rng, Signal& out) const;

  /// The SI amplitude the RMS-derived uplink would use for an emission
  /// whose *propagated* (post path-gain, post resonance) waveform has the
  /// given RMS.
  Real uplink_si_amplitude(Real propagated_rms) const;

  /// Streaming downlink: the same tap convolution → resonator → AWGN chain
  /// as the batch `downlink`, restaged as a block processor with explicit
  /// carried state (tap delay line, biquad state, noise RNG). Feeding a
  /// waveform through `push_block` in pieces of any size produces exactly
  /// the bytes the batch call produces on the concatenation, because every
  /// element is a per-sample recurrence over carried state.
  class DownlinkStream {
   public:
    /// @param channel must outlive the stream
    /// @param noise_seed seed of the stream's private AWGN draw sequence;
    ///        matching a batch call requires seeding a fresh Rng equally
    DownlinkStream(const ConcreteChannel& channel, std::uint64_t noise_seed);

    /// Transform one block in place: x is the tx acoustic waveform on
    /// entry, the at-node waveform on exit.
    void push_block(Signal& x);

    /// Absolute sample index of the next sample to be pushed.
    std::uint64_t position() const { return pos_; }

    /// Bit-exact carried-state round trip (tap delay line, biquad state,
    /// noise RNG, position); the tap geometry is config, recomputed at
    /// construction.
    void save(dsp::ser::Writer& w) const;
    void load(dsp::ser::Reader& r);

   private:
    const ConcreteChannel* channel_;
    std::vector<std::size_t> shifts_;  // per-tap delays, samples
    std::vector<Real> amps_;           // per-tap amplitudes (taps order)
    std::size_t max_shift_ = 0;
    Signal hist_;  // last max_shift_ raw inputs (the tap delay line)
    Signal ext_;   // scratch: hist_ ++ current block
    dsp::Biquad resonator_;
    Real resonance_scale_ = 1.0;
    bool has_resonance_scale_ = false;
    dsp::Rng rng_;
    std::uint64_t pos_ = 0;
  };

  /// Streaming uplink with an explicit SI amplitude (see the explicit-SI
  /// batch overload above for why streaming fixes the amplitude up front).
  /// Carried state: biquad, SI oscillator phase, noise RNG. Not available
  /// when `preserve_absolute_delay` is set (the shift-padding prepends
  /// silence, which a live stream models as scheduling, not padding) —
  /// the constructor throws.
  class UplinkStream {
   public:
    UplinkStream(const ConcreteChannel& channel, Real carrier_frequency,
                 Real si_amplitude, std::uint64_t noise_seed);

    /// Transform one block in place: x is the node emission on entry, the
    /// at-reader waveform on exit.
    void push_block(Signal& x);

    /// Bit-exact carried-state round trip (biquad, SI oscillator phase,
    /// noise RNG).
    void save(dsp::ser::Writer& w) const;
    void load(dsp::ser::Reader& r);

   private:
    const ConcreteChannel* channel_;
    Real gain_;
    dsp::Biquad resonator_;
    Real resonance_scale_ = 1.0;
    bool has_resonance_scale_ = false;
    dsp::Oscillator si_;
    Real si_amplitude_;
    dsp::Rng rng_;
  };

  /// Amplitude scale of the direct path at the configured distance (the
  /// same quantity the link budget computes, normalized to TX amplitude 1),
  /// including any scatterer-field fading at the configured carrier.
  Real path_gain() const;

  /// Scatterer fading factor alone at frequency f (1.0 when no scatterers
  /// are configured). Exposed so a reader can implement the §3.5 carrier
  /// fine-tuning against the actual deployment.
  Real scatterer_gain(Real frequency) const;

  /// The mode tap set actually used (delay seconds, amplitude). Computed
  /// once at construction (the geometry is immutable) and shared by every
  /// downlink call, so ray tracing drops out of the per-trial loop.
  const std::vector<wave::Tap>& mode_taps() const { return mode_taps_; }

  const Structure& structure() const { return *structure_; }
  const ChannelConfig& config() const { return *config_; }

 private:
  void apply_taps(std::span<const Real> x, const std::vector<wave::Tap>& taps,
                  Signal& out) const;
  void apply_resonance_inplace(Signal& x) const;
  /// Shift/copy + path gain + resonance; the deterministic half of uplink.
  void propagate_uplink(std::span<const Real> node_emission,
                        Signal& out) const;
  /// The stochastic half: SI carrier at the given amplitude, then AWGN.
  void add_uplink_si_noise(Signal& out, Real carrier_frequency,
                           Real si_amplitude, dsp::Rng& rng) const;
  std::vector<wave::Tap> compute_mode_taps() const;

  std::shared_ptr<const Structure> structure_;
  std::shared_ptr<const ChannelConfig> config_;
  wave::WavePrism prism_;
  std::optional<ScattererField> scatterer_field_;
  /// Designed once via the process-wide FilterCache; apply_resonance copies
  /// the zero-state prototype per call instead of redesigning the biquad.
  std::shared_ptr<const dsp::FilterCache::ResonatorDesign> resonator_;
  std::vector<wave::Tap> mode_taps_;
};

}  // namespace ecocap::channel
