#include "channel/snr_models.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/signal_ops.hpp"
#include "wave/snell.hpp"

namespace ecocap::channel {

Real UplinkSnrModel::snr_db(Real bitrate) const {
  // Fraction of the backscatter spectrum the channel passes: a Butterworth
  // magnitude-squared response with knee at carrier_bandwidth / 2.
  const Real knee = carrier_bandwidth / 2.0;
  const Real x = bitrate / knee;
  const Real captured = 1.0 / (1.0 + std::pow(x, 2.0 * rolloff_order));
  return snr0_db + dsp::to_db(captured);
}

UplinkSnrModel UplinkSnrModel::ecocapsule(const wave::Material& concrete) {
  UplinkSnrModel m;
  m.system = "EcoCapsule-" + concrete.name;
  // Material coupling: stronger concrete conducts elastic waves better
  // (Fig. 5 / Fig. 17). +~1.4 dB for UHPC-class strengths over NC.
  constexpr Real kRefStrength = 54.1e6;
  Real coupling_db = 0.0;
  if (concrete.compressive_strength > 0.0) {
    coupling_db =
        5.0 * std::log10(concrete.compressive_strength / kRefStrength);
  }
  m.snr0_db = 15.0 + std::min(coupling_db, 4.0);
  m.carrier_bandwidth = 20.0e3;  // 230 kHz carrier / Q ~ 11.5
  m.rolloff_order = 3.0;
  return m;
}

UplinkSnrModel UplinkSnrModel::pab() {
  UplinkSnrModel m;
  m.system = "PAB";
  m.snr0_db = 15.0;
  m.carrier_bandwidth = 5.2e3;  // 15 kHz carrier / Q ~ 2.9
  m.rolloff_order = 3.0;
  return m;
}

UplinkSnrModel UplinkSnrModel::u2b() {
  UplinkSnrModel m;
  m.system = "U2B";
  // The metamaterial transducer trades peak SNR for a much wider band.
  m.snr0_db = 13.5;
  m.carrier_bandwidth = 50.0e3;
  m.rolloff_order = 3.0;
  return m;
}

namespace {
Real q_function(Real x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }
}  // namespace

Real fm0_ber(Real snr_db, Real penalty_db) {
  const Real snr = dsp::from_db(snr_db - penalty_db);
  const Real ber = q_function(std::sqrt(2.0 * snr));
  return std::clamp<Real>(ber, 0.0, 0.5);
}

Real goodput(const UplinkSnrModel& model, Real bitrate, Real penalty_db) {
  return bitrate * (1.0 - fm0_ber(model.snr_db(bitrate), penalty_db));
}

ThroughputResult max_throughput(const UplinkSnrModel& model, Real bitrate_lo,
                                Real bitrate_hi, Real penalty_db) {
  ThroughputResult best;
  const int steps = 400;
  for (int i = 0; i <= steps; ++i) {
    const Real r =
        bitrate_lo + (bitrate_hi - bitrate_lo) * static_cast<Real>(i) / steps;
    // A practical link only counts packets that survive; approximate with a
    // 64-bit packet success probability to penalize marginal SNR operation.
    const Real ber = fm0_ber(model.snr_db(r), penalty_db);
    const Real packet_ok = std::pow(1.0 - ber, 64.0);
    const Real gp = r * packet_ok;
    if (gp > best.throughput) {
      best.throughput = gp;
      best.best_bitrate = r;
    }
  }
  return best;
}

Real ReaderInterference::carrier_rejection_db(Real offset_hz) const {
  const Real offset = std::abs(offset_hz);
  if (offset <= rx_notch_bw_hz || rx_notch_bw_hz <= 0.0) return 0.0;
  const Real decades = std::log10(offset / rx_notch_bw_hz);
  return std::min(rejection_db_per_decade * decades, max_rejection_db);
}

Real ReaderInterference::cir_db(const Structure& structure, Real node_distance,
                                Real separation_m,
                                Real carrier_offset_hz) const {
  // Amplitude decay exp(-alpha d) is 20 log10(e) * alpha * d in power dB.
  const Real db_per_m =
      20.0 * 0.43429448190325176 * structure.effective_attenuation;
  // Wanted path: backscatter conversion loss + the round trip to the node.
  const Real signal_db = -backscatter_loss_db - 2.0 * db_per_m * node_distance;
  // Interfering path: the neighbour's carrier crosses the separation once,
  // then the RX notch rejects whatever the carrier offset allows.
  const Real interferer_db =
      -db_per_m * separation_m - carrier_rejection_db(carrier_offset_hz);
  return signal_db - interferer_db;
}

Real sinr_db(Real snr_db_in, Real cir_db_in) {
  const Real inv =
      dsp::from_db(-snr_db_in) + dsp::from_db(-cir_db_in);
  return -dsp::to_db(inv);
}

Real DownlinkAngleModel::snr_db(Real theta) const {
  const Real noise = dsp::from_db(-peak_snr_db);  // vs unit signal power

  if (theta <= 1e-9) {
    // Direct contact, no prism: only P-waves, no mode interference, but the
    // P-mode attenuates more over the path (alpha_p > alpha_s) and the beam
    // only fills a narrow cone. Model as a fixed P-path deficit.
    const Real p_deficit_db = 3.0;  // calibrated to Fig. 19's ~11-12 dB
    return peak_snr_db - p_deficit_db;
  }

  const wave::ModeAmplitudes amps =
      wave::transmitted_mode_amplitudes(prism_material, concrete, theta);
  const Real a_sig = std::max(amps.p, amps.s);
  const Real a_int = std::min(amps.p, amps.s);
  constexpr Real kSMax = 0.9;  // plateau amplitude of the S mode
  if (a_sig <= 1e-9) return -20.0;  // past the second critical angle

  const Real sig = (a_sig * a_sig) / (kSMax * kSMax);  // normalized power
  const Real isi = (a_int * a_int) / (kSMax * kSMax) * mode_overlap * isi_boost;
  return dsp::to_db(sig / (isi + noise));
}

DownlinkAngleModel DownlinkAngleModel::paper_default() {
  DownlinkAngleModel m{wave::materials::pla(),
                       wave::materials::reference_concrete()};
  return m;
}

}  // namespace ecocap::channel
