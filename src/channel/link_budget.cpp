#include "channel/link_budget.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ecocap::channel {

namespace {
/// The structure calibration (coupling_voltage) is anchored to the paper's
/// prototype, whose harvester activates at 0.5 V with the standard HRA.
constexpr Real kReferenceActivation = 0.5;  // V
}  // namespace

LinkBudget::LinkBudget(Structure structure, Real activation_voltage,
                       Real hra_gain)
    : structure_(std::move(structure)),
      activation_voltage_(activation_voltage),
      hra_gain_(hra_gain) {
  if (activation_voltage <= 0.0 || hra_gain <= 0.0) {
    throw std::invalid_argument("LinkBudget: invalid thresholds");
  }
}

Real LinkBudget::node_voltage(Real tx_voltage, Real distance) const {
  if (tx_voltage < 0.0 || distance < 0.0) {
    throw std::invalid_argument("LinkBudget: negative inputs");
  }
  // At d = 0 a reader driving coupling_voltage volts delivers exactly the
  // reference activation voltage; everything scales linearly in V and
  // decays exponentially in distance.
  const Real v0 = kReferenceActivation * tx_voltage / structure_.coupling_voltage;
  return hra_gain_ * v0 *
         std::exp(-structure_.effective_attenuation * distance);
}

std::optional<Real> LinkBudget::max_powerup_range(Real tx_voltage) const {
  const Real v_contact = node_voltage(tx_voltage, 0.0);
  if (v_contact < activation_voltage_) return std::nullopt;
  const Real d =
      std::log(v_contact / activation_voltage_) / structure_.effective_attenuation;
  return std::min(d, structure_.length);
}

Real LinkBudget::required_voltage(Real distance) const {
  // Invert node_voltage(V, d) = activation_voltage.
  return activation_voltage_ / hra_gain_ * structure_.coupling_voltage /
         kReferenceActivation *
         std::exp(structure_.effective_attenuation * distance);
}

}  // namespace ecocap::channel
