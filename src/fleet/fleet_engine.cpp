#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dsp/rng.hpp"
#include "dsp/serialize.hpp"

namespace ecocap::fleet {

namespace {

constexpr const char* kCheckpointHeader = "ecocap-fleet-checkpoint v1";
constexpr const char* kAggregatesHeader = "ecocap-fleet-aggregates v1";

void save_summary(dsp::ser::Writer& w, const StructureSummary& s) {
  w.u64("s.steps", s.steps);
  w.u64("s.readings", s.readings);
  w.u64("s.capsule_reads", s.capsule_reads);
  w.i64("s.limit_violations", s.limit_violations);
  w.i64("s.anomalies", s.anomalies);
  for (const std::int64_t c : s.health_counts) w.i64("s.health", c);
  w.real("s.stress_sum", s.stress_sum);
  w.real("s.peak_acceleration", s.peak_acceleration);
  w.real("s.worst_pao", s.worst_pao);
}

StructureSummary load_summary(dsp::ser::Reader& r) {
  StructureSummary s;
  s.steps = r.u64("s.steps");
  s.readings = r.u64("s.readings");
  s.capsule_reads = r.u64("s.capsule_reads");
  s.limit_violations = r.i64("s.limit_violations");
  s.anomalies = r.i64("s.anomalies");
  for (std::int64_t& c : s.health_counts) c = r.i64("s.health");
  s.stress_sum = r.real("s.stress_sum");
  s.peak_acceleration = r.real("s.peak_acceleration");
  s.worst_pao = r.real("s.worst_pao");
  return s;
}

/// Contiguous structure block [lo, hi) owned by `shard` of `shards`.
std::pair<std::size_t, std::size_t> shard_range(std::size_t structures,
                                                std::size_t shards,
                                                std::size_t shard) {
  const std::size_t base = structures / shards;
  const std::size_t rem = structures % shards;
  const std::size_t lo = shard * base + std::min(shard, rem);
  return {lo, lo + base + (shard < rem ? 1 : 0)};
}

}  // namespace

void StructureSummary::merge(const StructureSummary& other) {
  steps += other.steps;
  readings += other.readings;
  capsule_reads += other.capsule_reads;
  limit_violations += other.limit_violations;
  anomalies += other.anomalies;
  for (std::size_t i = 0; i < health_counts.size(); ++i) {
    health_counts[i] += other.health_counts[i];
  }
  stress_sum += other.stress_sum;
  peak_acceleration = std::max(peak_acceleration, other.peak_acceleration);
  worst_pao = std::min(worst_pao, other.worst_pao);
}

std::string FleetResult::fingerprint() const {
  dsp::ser::Writer w(kAggregatesHeader);
  w.u64("fleet.completed", completed ? 1 : 0);
  w.u64("fleet.structures", structures.size());
  save_summary(w, totals);
  for (const StructureSummary& s : structures) save_summary(w, s);
  return w.payload();
}

FleetEngine::FleetEngine(Config config, core::ThreadPool& pool)
    : config_(std::move(config)), pool_(&pool) {
  if (config_.structures == 0) {
    throw std::invalid_argument("FleetEngine: structures must be > 0");
  }
  if (config_.checkpoint_every == 0) {
    throw std::invalid_argument("FleetEngine: checkpoint_every must be > 0");
  }
  if (config_.telemetry != nullptr &&
      config_.telemetry->nodes() < config_.structures * kNodesPerStructure) {
    throw std::invalid_argument(
        "FleetEngine: telemetry store is smaller than the fleet");
  }
}

FleetEngine::FleetEngine(Config config)
    : FleetEngine(std::move(config), core::ThreadPool::shared()) {}

std::size_t FleetEngine::shard_count() const {
  if (config_.shards > 0) return std::min(config_.shards, config_.structures);
  return std::min<std::size_t>(config_.structures, 32);
}

std::string FleetEngine::shard_path(std::size_t shard) const {
  return config_.checkpoint_dir + "/fleet_shard_" + std::to_string(shard) +
         ".ckpt";
}

void FleetEngine::fingerprint_config(dsp::ser::Writer& w) const {
  w.u64("fp.structures", config_.structures);
  w.u64("fp.shards", shard_count());
  w.u64("fp.seed", config_.seed);
  w.real("fp.days", config_.campaign.days);
  w.real("fp.step_minutes", config_.campaign.step_minutes);
  w.i64("fp.capsule_count", config_.campaign.capsule_count);
  w.real("fp.poll_hours", config_.campaign.capsule_poll_hours);
  w.u64("fp.supervised", config_.campaign.supervisor.enabled ? 1 : 0);
  w.u64("fp.record_series", config_.record_series ? 1 : 0);
}

void FleetEngine::check_fingerprint(dsp::ser::Reader& r) const {
  // Hexfloat round trips are exact, so == is the right comparison.
  if (r.u64("fp.structures") != config_.structures ||
      r.u64("fp.shards") != shard_count() ||
      r.u64("fp.seed") != config_.seed ||
      r.real("fp.days") != config_.campaign.days ||
      r.real("fp.step_minutes") != config_.campaign.step_minutes ||
      static_cast<int>(r.i64("fp.capsule_count")) !=
          config_.campaign.capsule_count ||
      r.real("fp.poll_hours") != config_.campaign.capsule_poll_hours ||
      (r.u64("fp.supervised") != 0) != config_.campaign.supervisor.enabled ||
      (r.u64("fp.record_series") != 0) != config_.record_series) {
    throw std::runtime_error(
        "fleet resume: checkpoint was written by a different fleet config");
  }
}

StructureSummary FleetEngine::run_structure(std::size_t s) const {
  shm::MonitoringCampaign::Config c = config_.campaign;
  c.seed = dsp::trial_seed(config_.seed, s);
  c.checkpoint_path.clear();  // fleet checkpoints at structure granularity
  c.stop_after_steps = 0;
  c.record_series = config_.record_series;

  StructureSummary sum;
  TelemetryStore* sink = config_.telemetry;
  const std::size_t node_base = s * kNodesPerStructure;
  const shm::MonitoringCampaign::StepHook user_hook = config_.campaign.on_step;
  c.on_step = [&sum, sink, node_base, &user_hook](
                  std::size_t step, Real t_days,
                  const shm::WeatherSample& weather,
                  const shm::BridgeState& state) {
    const auto t_sec = static_cast<std::uint32_t>(t_days * 86400.0 + 0.5);
    for (std::size_t i = 0; i < kNodesPerStructure; ++i) {
      const auto& sec = state.sections[i];
      if (sink != nullptr) {
        sink->append(node_base + i, t_sec,
                     static_cast<float>(sec.stress_mpa));
      }
      sum.worst_pao = std::min(sum.worst_pao, sec.pao);
    }
    sum.readings += kNodesPerStructure;
    sum.steps += 1;
    const auto& mid = state.sections[2];
    sum.stress_sum += mid.stress_mpa;
    sum.peak_acceleration =
        std::max(sum.peak_acceleration, std::abs(mid.vertical_acceleration));
    if (user_hook) user_hook(step, t_days, weather, state);
  };

  shm::MonitoringCampaign campaign(c);
  const shm::CampaignResult res = campaign.run();
  sum.limit_violations = res.limit_violations;
  sum.anomalies = static_cast<std::int64_t>(res.anomalies.size());
  sum.capsule_reads = static_cast<std::uint64_t>(
      std::max(res.inventory_totals.read_ok, 0));
  for (const auto& [section, by_letter] : res.health_histogram) {
    for (const auto& [letter, count] : by_letter) {
      const int idx = letter - 'A';
      if (idx >= 0 && idx < static_cast<int>(sum.health_counts.size())) {
        sum.health_counts[static_cast<std::size_t>(idx)] += count;
      }
    }
  }
  if (sink != nullptr) {
    for (std::size_t i = 0; i < kNodesPerStructure; ++i) {
      sink->flush(node_base + i);
    }
  }
  return sum;
}

FleetResult FleetEngine::run() { return run_impl(false); }

FleetResult FleetEngine::resume() {
  if (config_.checkpoint_dir.empty()) {
    throw std::runtime_error("fleet resume: Config::checkpoint_dir is empty");
  }
  return run_impl(true);
}

FleetResult FleetEngine::run_impl(bool from_checkpoint) {
  const std::size_t shards = shard_count();
  const bool checkpointing = !config_.checkpoint_dir.empty();

  FleetResult result;
  result.structures.resize(config_.structures);
  std::vector<std::uint8_t> structure_done(config_.structures, 0);
  std::vector<std::uint8_t> shard_stopped(shards, 0);
  std::vector<std::uint64_t> shard_resumed(shards, 0);

  pool_->parallel_for(shards, [&](std::size_t k) {
    const auto [lo, hi] = shard_range(config_.structures, shards, k);
    std::size_t done = 0;  // completed prefix length within this shard

    if (from_checkpoint) {
      if (const auto content = dsp::ser::read_file(shard_path(k))) {
        dsp::ser::Reader r(*content, kCheckpointHeader);
        check_fingerprint(r);
        if (r.u64("shard.index") != k) {
          throw std::runtime_error("fleet resume: shard index mismatch in " +
                                   shard_path(k));
        }
        done = r.u64("shard.completed");
        if (done > hi - lo) {
          throw std::runtime_error("fleet resume: corrupt completed count in " +
                                   shard_path(k));
        }
        for (std::size_t i = 0; i < done; ++i) {
          result.structures[lo + i] = load_summary(r);
          structure_done[lo + i] = 1;
        }
        shard_resumed[k] = done;
      }
    }

    const auto write_checkpoint = [&](std::size_t completed) {
      dsp::ser::Writer w(kCheckpointHeader);
      fingerprint_config(w);
      w.u64("shard.index", k);
      w.u64("shard.completed", completed);
      for (std::size_t i = 0; i < completed; ++i) {
        save_summary(w, result.structures[lo + i]);
      }
      if (!dsp::ser::atomic_write_file(shard_path(k), w.payload())) {
        throw std::runtime_error("fleet checkpoint: cannot write " +
                                 shard_path(k));
      }
    };

    std::size_t completed_this_run = 0;
    for (std::size_t s = lo + done; s < hi; ++s) {
      if (config_.stop_after_structures > 0 &&
          completed_this_run >= config_.stop_after_structures) {
        // Simulated crash: leave a final checkpoint and stop this shard.
        shard_stopped[k] = 1;
        if (checkpointing) write_checkpoint(done);
        return;
      }
      result.structures[s] = run_structure(s);
      structure_done[s] = 1;
      ++done;
      ++completed_this_run;
      if (checkpointing && (done % config_.checkpoint_every == 0 || s + 1 == hi)) {
        write_checkpoint(done);
      }
    }
  });

  // Streaming merge in ascending structure order: the one fold order every
  // thread/shard count shares, so the Real sums associate identically.
  for (std::size_t s = 0; s < config_.structures; ++s) {
    if (structure_done[s] == 0) continue;
    result.totals.merge(result.structures[s]);
    ++result.structures_completed;
  }
  for (std::size_t k = 0; k < shards; ++k) {
    result.structures_resumed += shard_resumed[k];
    if (shard_stopped[k] != 0) result.completed = false;
  }
  return result;
}

}  // namespace ecocap::fleet
