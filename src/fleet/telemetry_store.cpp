#include "fleet/telemetry_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "dsp/serialize.hpp"

namespace ecocap::fleet {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

TelemetryStore::Ring::Ring(std::size_t capacity)
    : slots(round_up_pow2(std::max<std::size_t>(capacity, 1))),
      mask(slots.size() - 1) {}

void TelemetryStore::Ring::push(std::uint64_t packed) {
  const std::uint64_t c = cursor.load(std::memory_order_relaxed);
  slots[c & mask].store(packed, std::memory_order_relaxed);
  // Publish: readers that acquire the new cursor see the slot store.
  cursor.store(c + 1, std::memory_order_release);
}

TelemetryStore::TelemetryStore(const Config& config) {
  if (config.nodes == 0) {
    throw std::invalid_argument("TelemetryStore: nodes must be > 0");
  }
  nodes_.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeSeries>(
        config.raw_capacity, config.minute_capacity, config.hour_capacity));
  }
}

std::uint64_t TelemetryStore::pack(std::uint32_t t_sec, float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return (static_cast<std::uint64_t>(t_sec) << 32) | bits;
}

TelemetryStore::Reading TelemetryStore::unpack(std::uint64_t packed) {
  Reading r;
  r.t_sec = static_cast<std::uint32_t>(packed >> 32);
  const auto bits = static_cast<std::uint32_t>(packed & 0xffffffffu);
  std::memcpy(&r.value, &bits, sizeof(r.value));
  return r;
}

void TelemetryStore::roll(Bucket& bucket, Ring& ring, std::uint32_t bucket_sec,
                          float value) {
  if (bucket.start_sec != bucket_sec) {
    if (bucket.start_sec != kNoBucket && bucket.count > 0) {
      const auto mean = static_cast<float>(
          bucket.sum / static_cast<double>(bucket.count));
      ring.push(pack(bucket.start_sec, mean));
    }
    bucket.start_sec = bucket_sec;
    bucket.sum = 0.0;
    bucket.count = 0;
  }
  bucket.sum += static_cast<double>(value);
  ++bucket.count;
}

void TelemetryStore::append(std::size_t node, std::uint32_t t_sec,
                            float value) {
  NodeSeries& n = *nodes_[node];
  n.raw.push(pack(t_sec, value));
  n.last.store(pack(t_sec, value), std::memory_order_release);
  roll(n.minute_bucket, n.minute, t_sec - t_sec % 60, value);
  roll(n.hour_bucket, n.hour, t_sec - t_sec % 3600, value);
  n.appends.fetch_add(1, std::memory_order_relaxed);
}

void TelemetryStore::flush(std::size_t node) {
  NodeSeries& n = *nodes_[node];
  const auto close = [](Bucket& bucket, Ring& ring) {
    if (bucket.start_sec != kNoBucket && bucket.count > 0) {
      const auto mean = static_cast<float>(
          bucket.sum / static_cast<double>(bucket.count));
      ring.push(pack(bucket.start_sec, mean));
    }
    bucket = Bucket{};
  };
  close(n.minute_bucket, n.minute);
  close(n.hour_bucket, n.hour);
}

std::optional<TelemetryStore::Reading> TelemetryStore::latest(
    std::size_t node) const {
  const std::uint64_t packed =
      nodes_[node]->last.load(std::memory_order_acquire);
  if (packed == kEmpty) return std::nullopt;
  return unpack(packed);
}

const TelemetryStore::Ring& TelemetryStore::ring_of(const NodeSeries& n,
                                                    Tier tier) const {
  switch (tier) {
    case Tier::kMinute:
      return n.minute;
    case Tier::kHour:
      return n.hour;
    case Tier::kRaw:
    default:
      return n.raw;
  }
}

std::size_t TelemetryStore::range(std::size_t node, Tier tier,
                                  std::uint32_t t0_sec, std::uint32_t t1_sec,
                                  std::vector<Reading>& out) const {
  const Ring& ring = ring_of(*nodes_[node], tier);
  const std::uint64_t c = ring.cursor.load(std::memory_order_acquire);
  const std::uint64_t cap = ring.slots.size();
  const std::uint64_t n = std::min(c, cap);
  std::size_t matched = 0;
  for (std::uint64_t i = c - n; i < c; ++i) {
    const Reading r =
        unpack(ring.slots[i & ring.mask].load(std::memory_order_relaxed));
    if (r.t_sec >= t0_sec && r.t_sec < t1_sec) {
      out.push_back(r);
      ++matched;
    }
  }
  return matched;
}

TelemetryStore::FleetHealth TelemetryStore::fleet_percentiles(
    std::vector<float>& scratch) const {
  scratch.clear();
  for (const auto& n : nodes_) {
    const std::uint64_t packed = n->last.load(std::memory_order_acquire);
    if (packed != kEmpty) scratch.push_back(unpack(packed).value);
  }
  FleetHealth h;
  h.nodes_reporting = scratch.size();
  if (scratch.empty()) return h;
  const auto nth = [&](double q) {
    const auto k = static_cast<std::size_t>(
        q * static_cast<double>(scratch.size() - 1) + 0.5);
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(k),
                     scratch.end());
    return scratch[k];
  };
  h.p50 = nth(0.5);
  h.p95 = nth(0.95);
  h.max = *std::max_element(scratch.begin(), scratch.end());
  return h;
}

std::uint64_t TelemetryStore::total_appends() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->appends.load(std::memory_order_relaxed);
  }
  return total;
}

bool TelemetryStore::claim_writer(std::size_t node, std::uint32_t writer_id) {
  if (writer_id == kNoOwner) {
    throw std::invalid_argument("TelemetryStore: reserved writer id");
  }
  std::uint32_t expected = kNoOwner;
  std::atomic<std::uint32_t>& owner = nodes_[node]->owner;
  return owner.compare_exchange_strong(expected, writer_id,
                                       std::memory_order_acq_rel) ||
         expected == writer_id;
}

void TelemetryStore::release_writer(std::size_t node, std::uint32_t writer_id) {
  std::uint32_t expected = writer_id;
  nodes_[node]->owner.compare_exchange_strong(expected, kNoOwner,
                                              std::memory_order_acq_rel);
}

std::optional<std::uint32_t> TelemetryStore::writer_of(std::size_t node) const {
  const std::uint32_t o = nodes_[node]->owner.load(std::memory_order_acquire);
  if (o == kNoOwner) return std::nullopt;
  return o;
}

void TelemetryStore::save_node(std::size_t node, dsp::ser::Writer& w) const {
  const NodeSeries& n = *nodes_[node];
  const auto ring = [&w](std::string_view key, const Ring& r) {
    w.u64(std::string(key) + ".cursor",
          r.cursor.load(std::memory_order_acquire));
    std::vector<std::uint64_t> raw;
    raw.reserve(r.slots.size());
    for (const auto& s : r.slots) {
      raw.push_back(s.load(std::memory_order_relaxed));
    }
    w.u64_vec(std::string(key) + ".slots", raw);
  };
  ring("ts.raw", n.raw);
  ring("ts.minute", n.minute);
  ring("ts.hour", n.hour);
  const auto bucket = [&w](std::string_view prefix, const Bucket& b) {
    w.u64(std::string(prefix) + ".start", b.start_sec);
    w.real(std::string(prefix) + ".sum", b.sum);
    w.u64(std::string(prefix) + ".count", b.count);
  };
  bucket("ts.mb", n.minute_bucket);
  bucket("ts.hb", n.hour_bucket);
  w.u64("ts.last", n.last.load(std::memory_order_acquire));
  w.u64("ts.appends", n.appends.load(std::memory_order_relaxed));
}

void TelemetryStore::load_node(std::size_t node, dsp::ser::Reader& r) {
  NodeSeries& n = *nodes_[node];
  const auto ring = [&r](std::string_view key, Ring& dst) {
    const std::uint64_t cursor = r.u64(std::string(key) + ".cursor");
    const auto slots = r.u64_vec(std::string(key) + ".slots");
    if (slots.size() != dst.slots.size()) {
      throw std::runtime_error("checkpoint: telemetry ring capacity mismatch");
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      dst.slots[i].store(slots[i], std::memory_order_relaxed);
    }
    dst.cursor.store(cursor, std::memory_order_release);
  };
  ring("ts.raw", n.raw);
  ring("ts.minute", n.minute);
  ring("ts.hour", n.hour);
  const auto bucket = [&r](std::string_view prefix, Bucket& b) {
    b.start_sec = static_cast<std::uint32_t>(
        r.u64(std::string(prefix) + ".start"));
    b.sum = r.real(std::string(prefix) + ".sum");
    b.count = static_cast<std::uint32_t>(
        r.u64(std::string(prefix) + ".count"));
  };
  bucket("ts.mb", n.minute_bucket);
  bucket("ts.hb", n.hour_bucket);
  n.last.store(r.u64("ts.last"), std::memory_order_release);
  n.appends.store(r.u64("ts.appends"), std::memory_order_relaxed);
}

void TelemetryStore::reset_node(std::size_t node) {
  NodeSeries& n = *nodes_[node];
  const auto wipe = [](Ring& ring) {
    for (auto& s : ring.slots) s.store(0, std::memory_order_relaxed);
    ring.cursor.store(0, std::memory_order_release);
  };
  wipe(n.raw);
  wipe(n.minute);
  wipe(n.hour);
  n.minute_bucket = Bucket{};
  n.hour_bucket = Bucket{};
  n.last.store(kEmpty, std::memory_order_release);
  n.appends.store(0, std::memory_order_relaxed);
}

}  // namespace ecocap::fleet
