#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "fleet/telemetry_store.hpp"
#include "shm/monitor.hpp"

namespace ecocap::fleet {

using dsp::Real;

/// Summary aggregate of one structure's monitoring campaign — everything
/// the fleet rollup keeps per structure, sized in bytes rather than in
/// series samples. Also the fleet-total accumulator (sums add, peaks max,
/// worst-case mins).
struct StructureSummary {
  std::uint64_t steps = 0;
  /// Sensor readings produced by the campaign steps (sections x steps) —
  /// the telemetry ingest count when a store is attached.
  std::uint64_t readings = 0;
  /// EcoCapsule protocol reads that decoded successfully.
  std::uint64_t capsule_reads = 0;
  std::int64_t limit_violations = 0;
  std::int64_t anomalies = 0;
  /// Section-steps graded at each health letter A..F.
  std::array<std::int64_t, 6> health_counts{};
  Real stress_sum = 0.0;  // midspan stress summed over steps (fleet mean)
  Real peak_acceleration = 0.0;
  Real worst_pao = std::numeric_limits<Real>::infinity();

  /// Fold `other` into this accumulator. Associative only in the fixed
  /// structure order the engine uses — the Real sums are floating point.
  void merge(const StructureSummary& other);
};

/// Result of a fleet run: per-structure summaries (index == structure id)
/// plus the streaming merge of them in ascending structure order, which is
/// what makes `totals` bit-identical at any thread or shard count.
struct FleetResult {
  std::vector<StructureSummary> structures;
  StructureSummary totals;
  bool completed = true;
  std::uint64_t structures_completed = 0;
  /// Structures restored from per-shard checkpoints instead of re-run.
  std::uint64_t structures_resumed = 0;

  /// Bit-exact (hexfloat) dump of totals + every per-structure summary;
  /// two runs are equivalent iff their fingerprints are byte-identical.
  std::string fingerprint() const;
};

/// City-scale sharded fleet engine: N structures x their readers/capsules,
/// each structure simulated by its own shm::MonitoringCampaign, sharded
/// across a core::ThreadPool.
///
/// ## Determinism
///
/// Structure `s` is seeded with dsp::trial_seed(Config::seed, s) and its
/// campaign touches no shared mutable state (per-thread Workspace arenas,
/// thread-safe FilterCache), so its summary depends only on `s` — never on
/// which worker or shard ran it. Summaries land in a pre-sized vector slot
/// and are merged in ascending structure order after the parallel region,
/// so `FleetResult::totals` is bit-identical at any ECOCAP_THREADS *and*
/// any shard count.
///
/// ## Sharding and checkpoints
///
/// Structures are partitioned into `Config::shards` contiguous blocks —
/// a fixed decomposition like TrialRunner's trial blocks, deliberately
/// independent of the worker count so the per-shard checkpoint files keep
/// their meaning when ECOCAP_THREADS changes between a crash and a resume.
/// Workers claim shards from the pool; each shard runs its structures
/// sequentially, reusing its worker's dsp::Workspace arena (constant
/// memory per shard: one campaign's transient state at a time, summaries
/// elsewhere), and checkpoints `<dir>/fleet_shard_<k>.ckpt` via the
/// bit-exact serializer + atomic_write_file after every
/// `checkpoint_every` completed structures. Checkpoint granularity is a
/// whole structure: resume() skips the completed prefix of each shard and
/// re-runs the rest from their campaign start, which reproduces the
/// uninterrupted fingerprint exactly because structures are independently
/// seeded.
///
/// ## Telemetry
///
/// With Config::telemetry attached, every campaign step appends one
/// reading per section to the store (global node id =
/// structure * kNodesPerStructure + section) while query threads read
/// concurrently; resumed structures are not re-ingested (their summaries
/// come from the checkpoint).
class FleetEngine {
 public:
  static constexpr std::size_t kNodesPerStructure = 5;  // sections A..E

  struct Config {
    std::size_t structures = 100;
    /// Fixed shard partition; 0 picks min(structures, 32). More shards =
    /// finer checkpoints and better load balance, more checkpoint files.
    std::size_t shards = 0;
    /// Per-structure campaign template. seed / checkpoint_path /
    /// stop_after_steps / record_series are overridden per structure;
    /// an on_step hook set here is chained after the engine's own tap.
    shm::MonitoringCampaign::Config campaign;
    std::uint64_t seed = 2026;
    /// Optional concurrent ingest sink; must have at least
    /// structures * kNodesPerStructure nodes.
    TelemetryStore* telemetry = nullptr;
    /// Per-shard crash-safe checkpoint directory; empty disables.
    std::string checkpoint_dir;
    /// Completed structures between checkpoint writes within a shard.
    std::size_t checkpoint_every = 1;
    /// Testing hook simulating a crash: each shard stops (with a final
    /// checkpoint) after completing this many structures in this run.
    /// 0 = run to completion.
    std::size_t stop_after_structures = 0;
    /// Retain per-campaign sample logs (series, anomaly detection). Off by
    /// default: fleets keep summaries + telemetry, not 1000 x 7 series.
    bool record_series = false;
  };

  FleetEngine(Config config, core::ThreadPool& pool);
  /// Uses the process-shared pool.
  explicit FleetEngine(Config config);

  /// Run the whole fleet from scratch (existing checkpoint files are
  /// overwritten as shards progress).
  FleetResult run();

  /// Restore every shard's checkpoint (shards without one start fresh) and
  /// complete the remaining structures. Throws std::runtime_error when a
  /// checkpoint was written by a different fleet configuration.
  FleetResult resume();

  /// Number of shards the current config partitions into.
  std::size_t shard_count() const;

 private:
  FleetResult run_impl(bool from_checkpoint);
  StructureSummary run_structure(std::size_t s) const;
  std::string shard_path(std::size_t shard) const;
  void fingerprint_config(dsp::ser::Writer& w) const;
  void check_fingerprint(dsp::ser::Reader& r) const;

  Config config_;
  core::ThreadPool* pool_;
};

}  // namespace ecocap::fleet
