#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace ecocap::dsp::ser {
class Writer;
class Reader;
}  // namespace ecocap::dsp::ser

namespace ecocap::fleet {

/// In-memory telemetry store for city-scale fleet serving: one ring-buffered
/// health series per node, ingested by the fleet shards while any number of
/// query threads poll building health concurrently.
///
/// ## Concurrency model (single writer per node, lock-free readers)
///
/// A node belongs to exactly one structure, and a structure's campaign runs
/// on exactly one shard at a time, so every node has at most one writer.
/// Readers never block writers and writers never block readers:
///
///  * every stored reading is one `std::atomic<std::uint64_t>` word packing
///    (t_sec : u32, value-bits : f32) — a reader either sees a whole reading
///    or a different whole reading, never a torn one;
///  * each ring publishes with a release store of its append cursor after
///    the slot store, so a reader that acquires the cursor sees every slot
///    the cursor covers;
///  * a slot being *overwritten* during a range scan yields the newer
///    reading (still whole); the embedded timestamp lets the reader filter,
///    so the worst case is a reading newer than the requested window being
///    dropped, never a corrupt value. Range results are therefore
///    individually-consistent but not guaranteed time-sorted while the
///    writer laps the reader.
///
/// There are no mutexes anywhere on the ingest or query path. The per-node
/// downsampling accumulators (`minute_sum` etc.) are writer-private plain
/// fields: cross-fleet-run handoff between threads is ordered by the
/// ThreadPool job barrier.
///
/// ## Tiers
///
/// `append` feeds three rings per node: raw (every reading), minute
/// (mean per simulated minute), hour (mean per simulated hour). Downsampled
/// entries are stamped with their bucket start time and published when the
/// bucket closes; `flush()` force-closes the open buckets at campaign end.
class TelemetryStore {
 public:
  struct Config {
    std::size_t nodes = 0;
    /// Ring capacities are rounded up to powers of two. Raw keeps the most
    /// recent window (dashboards), the downsampled tiers keep history.
    std::size_t raw_capacity = 256;
    std::size_t minute_capacity = 256;
    std::size_t hour_capacity = 64;
  };

  enum class Tier { kRaw = 0, kMinute = 1, kHour = 2 };

  /// One health reading: campaign time (seconds since campaign start) and
  /// the sensed value.
  struct Reading {
    std::uint32_t t_sec = 0;
    float value = 0.0f;
  };

  /// Fleet-wide latest-health rollup.
  struct FleetHealth {
    float p50 = 0.0f;
    float p95 = 0.0f;
    float max = 0.0f;
    std::size_t nodes_reporting = 0;
  };

  explicit TelemetryStore(const Config& config);

  std::size_t nodes() const { return nodes_.size(); }

  // -- writer API (one writer per node at a time) ---------------------------

  /// Ingest one reading for `node` at campaign time `t_sec`.
  void append(std::size_t node, std::uint32_t t_sec, float value);

  /// Close the open minute/hour buckets of `node` (campaign end).
  void flush(std::size_t node);

  // -- writer ownership (the runtime's single-writer-per-node contract) -----

  /// Claim `node` for writer `writer_id` (any caller-chosen non-~0 id, e.g.
  /// a daemon index). Returns false when another writer holds the claim —
  /// the supervisor uses this to guarantee a crashed daemon's replacement
  /// is the node's *only* writer before it resumes appending. Reclaiming
  /// with the already-owning id succeeds (a restart is a handoff to self).
  bool claim_writer(std::size_t node, std::uint32_t writer_id);

  /// Release `node`'s claim if `writer_id` holds it.
  void release_writer(std::size_t node, std::uint32_t writer_id);

  /// Current owner of `node`, or nullopt when unclaimed.
  std::optional<std::uint32_t> writer_of(std::size_t node) const;

  // -- checkpoint round trip (writer-quiescent, per node) -------------------

  /// Serialize `node`'s complete series state: every ring slot + cursor,
  /// the open downsampling buckets, the latest-reading word, and the append
  /// counter. Bit-exact, so a daemon restarted from this record re-appends
  /// into a store byte-identical to one that never crashed. The node's
  /// writer must be quiescent; concurrent *readers* are fine.
  void save_node(std::size_t node, dsp::ser::Writer& w) const;

  /// Restore `node` from a save_node record (writer-quiescent).
  void load_node(std::size_t node, dsp::ser::Reader& r);

  /// Wipe `node` back to the never-reported state (writer-quiescent) — the
  /// restart-from-scratch path when no checkpoint exists.
  void reset_node(std::size_t node);

  // -- query API (any number of threads, concurrent with ingest) ------------

  /// Most recent reading of `node`; nullopt before its first append.
  std::optional<Reading> latest(std::size_t node) const;

  /// Append every retained `tier` reading of `node` with
  /// t_sec in [t0_sec, t1_sec) to `out` (not cleared); returns the count.
  std::size_t range(std::size_t node, Tier tier, std::uint32_t t0_sec,
                    std::uint32_t t1_sec, std::vector<Reading>& out) const;

  /// Percentiles over the latest reading of every reporting node. `scratch`
  /// is caller-owned so a polling loop allocates only on its first call.
  FleetHealth fleet_percentiles(std::vector<float>& scratch) const;

  /// Total readings ingested across all nodes. Exact when writers are
  /// quiescent; a live snapshot otherwise.
  std::uint64_t total_appends() const;

 private:
  /// Single-writer multi-reader ring of packed readings.
  struct Ring {
    explicit Ring(std::size_t capacity);
    void push(std::uint64_t packed);

    std::vector<std::atomic<std::uint64_t>> slots;
    std::size_t mask = 0;
    std::atomic<std::uint64_t> cursor{0};  // total pushes, published last
  };

  /// Writer-private mean accumulator for one downsampled tier.
  struct Bucket {
    std::uint32_t start_sec = kNoBucket;
    double sum = 0.0;
    std::uint32_t count = 0;
  };

  struct NodeSeries {
    NodeSeries(std::size_t raw_cap, std::size_t min_cap, std::size_t hr_cap)
        : raw(raw_cap), minute(min_cap), hour(hr_cap) {}
    Ring raw;
    Ring minute;
    Ring hour;
    Bucket minute_bucket;
    Bucket hour_bucket;
    std::atomic<std::uint64_t> last{kEmpty};
    std::atomic<std::uint64_t> appends{0};
    std::atomic<std::uint32_t> owner{kNoOwner};
  };

  static constexpr std::uint32_t kNoBucket = 0xffffffffu;
  static constexpr std::uint32_t kNoOwner = 0xffffffffu;
  /// Impossible packed value: t_sec of kNoBucket marks "never reported".
  static constexpr std::uint64_t kEmpty = ~0ull;

  static std::uint64_t pack(std::uint32_t t_sec, float value);
  static Reading unpack(std::uint64_t packed);

  void roll(Bucket& bucket, Ring& ring, std::uint32_t bucket_sec,
            float value);
  const Ring& ring_of(const NodeSeries& n, Tier tier) const;

  std::vector<std::unique_ptr<NodeSeries>> nodes_;
};

}  // namespace ecocap::fleet
