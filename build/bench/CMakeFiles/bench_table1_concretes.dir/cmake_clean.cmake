file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_concretes.dir/bench_table1_concretes.cpp.o"
  "CMakeFiles/bench_table1_concretes.dir/bench_table1_concretes.cpp.o.d"
  "bench_table1_concretes"
  "bench_table1_concretes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_concretes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
