file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cold_start.dir/bench_fig14_cold_start.cpp.o"
  "CMakeFiles/bench_fig14_cold_start.dir/bench_fig14_cold_start.cpp.o.d"
  "bench_fig14_cold_start"
  "bench_fig14_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
