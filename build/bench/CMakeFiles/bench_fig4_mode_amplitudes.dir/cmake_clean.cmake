file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mode_amplitudes.dir/bench_fig4_mode_amplitudes.cpp.o"
  "CMakeFiles/bench_fig4_mode_amplitudes.dir/bench_fig4_mode_amplitudes.cpp.o.d"
  "bench_fig4_mode_amplitudes"
  "bench_fig4_mode_amplitudes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mode_amplitudes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
