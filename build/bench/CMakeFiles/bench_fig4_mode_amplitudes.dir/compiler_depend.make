# Empty compiler generated dependencies file for bench_fig4_mode_amplitudes.
# This may be replaced when dependencies are built.
