# Empty dependencies file for bench_fig7_ring_effect.
# This may be replaced when dependencies are built.
