# Empty compiler generated dependencies file for bench_fig5_frequency_response.
# This may be replaced when dependencies are built.
