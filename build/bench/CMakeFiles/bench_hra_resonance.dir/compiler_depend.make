# Empty compiler generated dependencies file for bench_hra_resonance.
# This may be replaced when dependencies are built.
