file(REMOVE_RECURSE
  "CMakeFiles/bench_hra_resonance.dir/bench_hra_resonance.cpp.o"
  "CMakeFiles/bench_hra_resonance.dir/bench_hra_resonance.cpp.o.d"
  "bench_hra_resonance"
  "bench_hra_resonance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hra_resonance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
