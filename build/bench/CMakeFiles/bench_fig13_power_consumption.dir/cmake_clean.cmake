file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_power_consumption.dir/bench_fig13_power_consumption.cpp.o"
  "CMakeFiles/bench_fig13_power_consumption.dir/bench_fig13_power_consumption.cpp.o.d"
  "bench_fig13_power_consumption"
  "bench_fig13_power_consumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_power_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
