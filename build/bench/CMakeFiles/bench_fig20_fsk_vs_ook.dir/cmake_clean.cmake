file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_fsk_vs_ook.dir/bench_fig20_fsk_vs_ook.cpp.o"
  "CMakeFiles/bench_fig20_fsk_vs_ook.dir/bench_fig20_fsk_vs_ook.cpp.o.d"
  "bench_fig20_fsk_vs_ook"
  "bench_fig20_fsk_vs_ook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_fsk_vs_ook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
