# Empty compiler generated dependencies file for bench_fig20_fsk_vs_ook.
# This may be replaced when dependencies are built.
