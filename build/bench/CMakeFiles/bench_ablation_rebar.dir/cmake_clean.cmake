file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rebar.dir/bench_ablation_rebar.cpp.o"
  "CMakeFiles/bench_ablation_rebar.dir/bench_ablation_rebar.cpp.o.d"
  "bench_ablation_rebar"
  "bench_ablation_rebar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rebar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
