# Empty compiler generated dependencies file for bench_ablation_rebar.
# This may be replaced when dependencies are built.
