file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_snr_vs_bitrate.dir/bench_fig16_snr_vs_bitrate.cpp.o"
  "CMakeFiles/bench_fig16_snr_vs_bitrate.dir/bench_fig16_snr_vs_bitrate.cpp.o.d"
  "bench_fig16_snr_vs_bitrate"
  "bench_fig16_snr_vs_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_snr_vs_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
