# Empty dependencies file for bench_fig16_snr_vs_bitrate.
# This may be replaced when dependencies are built.
