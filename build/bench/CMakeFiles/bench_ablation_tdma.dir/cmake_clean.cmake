file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tdma.dir/bench_ablation_tdma.cpp.o"
  "CMakeFiles/bench_ablation_tdma.dir/bench_ablation_tdma.cpp.o.d"
  "bench_ablation_tdma"
  "bench_ablation_tdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
