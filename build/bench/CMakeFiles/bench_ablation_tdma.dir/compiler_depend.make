# Empty compiler generated dependencies file for bench_ablation_tdma.
# This may be replaced when dependencies are built.
