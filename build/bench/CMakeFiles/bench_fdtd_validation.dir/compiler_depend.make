# Empty compiler generated dependencies file for bench_fdtd_validation.
# This may be replaced when dependencies are built.
