file(REMOVE_RECURSE
  "CMakeFiles/bench_fdtd_validation.dir/bench_fdtd_validation.cpp.o"
  "CMakeFiles/bench_fdtd_validation.dir/bench_fdtd_validation.cpp.o.d"
  "bench_fdtd_validation"
  "bench_fdtd_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fdtd_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
