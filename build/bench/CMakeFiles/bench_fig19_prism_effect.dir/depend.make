# Empty dependencies file for bench_fig19_prism_effect.
# This may be replaced when dependencies are built.
