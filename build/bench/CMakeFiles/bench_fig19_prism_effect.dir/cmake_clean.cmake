file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_prism_effect.dir/bench_fig19_prism_effect.cpp.o"
  "CMakeFiles/bench_fig19_prism_effect.dir/bench_fig19_prism_effect.cpp.o.d"
  "bench_fig19_prism_effect"
  "bench_fig19_prism_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_prism_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
