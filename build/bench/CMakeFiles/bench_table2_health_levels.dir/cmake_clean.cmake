file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_health_levels.dir/bench_table2_health_levels.cpp.o"
  "CMakeFiles/bench_table2_health_levels.dir/bench_table2_health_levels.cpp.o.d"
  "bench_table2_health_levels"
  "bench_table2_health_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_health_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
