file(REMOVE_RECURSE
  "CMakeFiles/bench_shell_stress.dir/bench_shell_stress.cpp.o"
  "CMakeFiles/bench_shell_stress.dir/bench_shell_stress.cpp.o.d"
  "bench_shell_stress"
  "bench_shell_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shell_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
