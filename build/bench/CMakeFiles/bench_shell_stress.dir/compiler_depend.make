# Empty compiler generated dependencies file for bench_shell_stress.
# This may be replaced when dependencies are built.
