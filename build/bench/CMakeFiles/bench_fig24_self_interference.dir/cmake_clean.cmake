file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_self_interference.dir/bench_fig24_self_interference.cpp.o"
  "CMakeFiles/bench_fig24_self_interference.dir/bench_fig24_self_interference.cpp.o.d"
  "bench_fig24_self_interference"
  "bench_fig24_self_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_self_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
