# Empty compiler generated dependencies file for bench_fig24_self_interference.
# This may be replaced when dependencies are built.
