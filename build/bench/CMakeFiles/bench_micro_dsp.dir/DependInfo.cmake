
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_dsp.cpp" "bench/CMakeFiles/bench_micro_dsp.dir/bench_micro_dsp.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_dsp.dir/bench_micro_dsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecocap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ecocap_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ecocap_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ecocap_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ecocap_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/ecocap_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ecocap_node.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ecocap_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
