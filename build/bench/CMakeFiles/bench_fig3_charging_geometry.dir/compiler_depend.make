# Empty compiler generated dependencies file for bench_fig3_charging_geometry.
# This may be replaced when dependencies are built.
