# Empty compiler generated dependencies file for bench_fig15_ber_vs_snr.
# This may be replaced when dependencies are built.
