# Empty dependencies file for bench_fig22_backscatter_waveform.
# This may be replaced when dependencies are built.
