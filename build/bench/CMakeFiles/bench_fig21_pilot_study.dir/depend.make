# Empty dependencies file for bench_fig21_pilot_study.
# This may be replaced when dependencies are built.
