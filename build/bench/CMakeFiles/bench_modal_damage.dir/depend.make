# Empty dependencies file for bench_modal_damage.
# This may be replaced when dependencies are built.
