file(REMOVE_RECURSE
  "CMakeFiles/bench_modal_damage.dir/bench_modal_damage.cpp.o"
  "CMakeFiles/bench_modal_damage.dir/bench_modal_damage.cpp.o.d"
  "bench_modal_damage"
  "bench_modal_damage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modal_damage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
