# Empty compiler generated dependencies file for bench_fig12_range_vs_voltage.
# This may be replaced when dependencies are built.
