file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_range_vs_voltage.dir/bench_fig12_range_vs_voltage.cpp.o"
  "CMakeFiles/bench_fig12_range_vs_voltage.dir/bench_fig12_range_vs_voltage.cpp.o.d"
  "bench_fig12_range_vs_voltage"
  "bench_fig12_range_vs_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_range_vs_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
