# Empty dependencies file for bench_fig18_snr_vs_position.
# This may be replaced when dependencies are built.
