file(REMOVE_RECURSE
  "CMakeFiles/building_designer.dir/building_designer.cpp.o"
  "CMakeFiles/building_designer.dir/building_designer.cpp.o.d"
  "building_designer"
  "building_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/building_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
