# Empty compiler generated dependencies file for building_designer.
# This may be replaced when dependencies are built.
