file(REMOVE_RECURSE
  "CMakeFiles/wall_inventory.dir/wall_inventory.cpp.o"
  "CMakeFiles/wall_inventory.dir/wall_inventory.cpp.o.d"
  "wall_inventory"
  "wall_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wall_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
