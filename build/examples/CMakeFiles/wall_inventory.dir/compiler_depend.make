# Empty compiler generated dependencies file for wall_inventory.
# This may be replaced when dependencies are built.
