file(REMOVE_RECURSE
  "CMakeFiles/footbridge_monitor.dir/footbridge_monitor.cpp.o"
  "CMakeFiles/footbridge_monitor.dir/footbridge_monitor.cpp.o.d"
  "footbridge_monitor"
  "footbridge_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/footbridge_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
