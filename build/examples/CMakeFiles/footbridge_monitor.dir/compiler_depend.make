# Empty compiler generated dependencies file for footbridge_monitor.
# This may be replaced when dependencies are built.
