file(REMOVE_RECURSE
  "CMakeFiles/garage_degradation.dir/garage_degradation.cpp.o"
  "CMakeFiles/garage_degradation.dir/garage_degradation.cpp.o.d"
  "garage_degradation"
  "garage_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garage_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
