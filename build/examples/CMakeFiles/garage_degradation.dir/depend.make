# Empty dependencies file for garage_degradation.
# This may be replaced when dependencies are built.
