
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/concrete_channel.cpp" "src/channel/CMakeFiles/ecocap_channel.dir/concrete_channel.cpp.o" "gcc" "src/channel/CMakeFiles/ecocap_channel.dir/concrete_channel.cpp.o.d"
  "/root/repo/src/channel/link_budget.cpp" "src/channel/CMakeFiles/ecocap_channel.dir/link_budget.cpp.o" "gcc" "src/channel/CMakeFiles/ecocap_channel.dir/link_budget.cpp.o.d"
  "/root/repo/src/channel/scatterers.cpp" "src/channel/CMakeFiles/ecocap_channel.dir/scatterers.cpp.o" "gcc" "src/channel/CMakeFiles/ecocap_channel.dir/scatterers.cpp.o.d"
  "/root/repo/src/channel/snr_models.cpp" "src/channel/CMakeFiles/ecocap_channel.dir/snr_models.cpp.o" "gcc" "src/channel/CMakeFiles/ecocap_channel.dir/snr_models.cpp.o.d"
  "/root/repo/src/channel/structures.cpp" "src/channel/CMakeFiles/ecocap_channel.dir/structures.cpp.o" "gcc" "src/channel/CMakeFiles/ecocap_channel.dir/structures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wave/CMakeFiles/ecocap_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ecocap_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
