file(REMOVE_RECURSE
  "libecocap_channel.a"
)
