file(REMOVE_RECURSE
  "CMakeFiles/ecocap_channel.dir/concrete_channel.cpp.o"
  "CMakeFiles/ecocap_channel.dir/concrete_channel.cpp.o.d"
  "CMakeFiles/ecocap_channel.dir/link_budget.cpp.o"
  "CMakeFiles/ecocap_channel.dir/link_budget.cpp.o.d"
  "CMakeFiles/ecocap_channel.dir/scatterers.cpp.o"
  "CMakeFiles/ecocap_channel.dir/scatterers.cpp.o.d"
  "CMakeFiles/ecocap_channel.dir/snr_models.cpp.o"
  "CMakeFiles/ecocap_channel.dir/snr_models.cpp.o.d"
  "CMakeFiles/ecocap_channel.dir/structures.cpp.o"
  "CMakeFiles/ecocap_channel.dir/structures.cpp.o.d"
  "libecocap_channel.a"
  "libecocap_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
