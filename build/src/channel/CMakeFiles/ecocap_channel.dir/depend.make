# Empty dependencies file for ecocap_channel.
# This may be replaced when dependencies are built.
