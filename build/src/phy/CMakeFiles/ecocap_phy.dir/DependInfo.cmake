
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/bits.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/bits.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/bits.cpp.o.d"
  "/root/repo/src/phy/carrier.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/carrier.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/carrier.cpp.o.d"
  "/root/repo/src/phy/crc.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/crc.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/crc.cpp.o.d"
  "/root/repo/src/phy/fm0.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/fm0.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/fm0.cpp.o.d"
  "/root/repo/src/phy/miller.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/miller.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/miller.cpp.o.d"
  "/root/repo/src/phy/pie.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/pie.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/pie.cpp.o.d"
  "/root/repo/src/phy/protocol.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/protocol.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/protocol.cpp.o.d"
  "/root/repo/src/phy/ring_effect.cpp" "src/phy/CMakeFiles/ecocap_phy.dir/ring_effect.cpp.o" "gcc" "src/phy/CMakeFiles/ecocap_phy.dir/ring_effect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/ecocap_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
