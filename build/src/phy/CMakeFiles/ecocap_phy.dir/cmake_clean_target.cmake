file(REMOVE_RECURSE
  "libecocap_phy.a"
)
