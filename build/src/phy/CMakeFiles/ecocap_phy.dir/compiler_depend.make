# Empty compiler generated dependencies file for ecocap_phy.
# This may be replaced when dependencies are built.
