file(REMOVE_RECURSE
  "CMakeFiles/ecocap_phy.dir/bits.cpp.o"
  "CMakeFiles/ecocap_phy.dir/bits.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/carrier.cpp.o"
  "CMakeFiles/ecocap_phy.dir/carrier.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/crc.cpp.o"
  "CMakeFiles/ecocap_phy.dir/crc.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/fm0.cpp.o"
  "CMakeFiles/ecocap_phy.dir/fm0.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/miller.cpp.o"
  "CMakeFiles/ecocap_phy.dir/miller.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/pie.cpp.o"
  "CMakeFiles/ecocap_phy.dir/pie.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/protocol.cpp.o"
  "CMakeFiles/ecocap_phy.dir/protocol.cpp.o.d"
  "CMakeFiles/ecocap_phy.dir/ring_effect.cpp.o"
  "CMakeFiles/ecocap_phy.dir/ring_effect.cpp.o.d"
  "libecocap_phy.a"
  "libecocap_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
