# Empty dependencies file for ecocap_shm.
# This may be replaced when dependencies are built.
