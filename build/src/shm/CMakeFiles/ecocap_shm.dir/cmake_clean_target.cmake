file(REMOVE_RECURSE
  "libecocap_shm.a"
)
