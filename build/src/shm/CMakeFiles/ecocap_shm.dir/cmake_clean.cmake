file(REMOVE_RECURSE
  "CMakeFiles/ecocap_shm.dir/bridge.cpp.o"
  "CMakeFiles/ecocap_shm.dir/bridge.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/health.cpp.o"
  "CMakeFiles/ecocap_shm.dir/health.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/modal.cpp.o"
  "CMakeFiles/ecocap_shm.dir/modal.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/monitor.cpp.o"
  "CMakeFiles/ecocap_shm.dir/monitor.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/pedestrian.cpp.o"
  "CMakeFiles/ecocap_shm.dir/pedestrian.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/report.cpp.o"
  "CMakeFiles/ecocap_shm.dir/report.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/timeseries.cpp.o"
  "CMakeFiles/ecocap_shm.dir/timeseries.cpp.o.d"
  "CMakeFiles/ecocap_shm.dir/weather.cpp.o"
  "CMakeFiles/ecocap_shm.dir/weather.cpp.o.d"
  "libecocap_shm.a"
  "libecocap_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
