file(REMOVE_RECURSE
  "libecocap_node.a"
)
