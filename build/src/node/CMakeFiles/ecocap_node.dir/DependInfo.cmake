
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/capsule.cpp" "src/node/CMakeFiles/ecocap_node.dir/capsule.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/capsule.cpp.o.d"
  "/root/repo/src/node/energy_manager.cpp" "src/node/CMakeFiles/ecocap_node.dir/energy_manager.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/energy_manager.cpp.o.d"
  "/root/repo/src/node/firmware.cpp" "src/node/CMakeFiles/ecocap_node.dir/firmware.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/firmware.cpp.o.d"
  "/root/repo/src/node/frontend.cpp" "src/node/CMakeFiles/ecocap_node.dir/frontend.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/frontend.cpp.o.d"
  "/root/repo/src/node/harvester.cpp" "src/node/CMakeFiles/ecocap_node.dir/harvester.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/harvester.cpp.o.d"
  "/root/repo/src/node/power_model.cpp" "src/node/CMakeFiles/ecocap_node.dir/power_model.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/power_model.cpp.o.d"
  "/root/repo/src/node/sensors.cpp" "src/node/CMakeFiles/ecocap_node.dir/sensors.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/sensors.cpp.o.d"
  "/root/repo/src/node/shell.cpp" "src/node/CMakeFiles/ecocap_node.dir/shell.cpp.o" "gcc" "src/node/CMakeFiles/ecocap_node.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/ecocap_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ecocap_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ecocap_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
