file(REMOVE_RECURSE
  "CMakeFiles/ecocap_node.dir/capsule.cpp.o"
  "CMakeFiles/ecocap_node.dir/capsule.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/energy_manager.cpp.o"
  "CMakeFiles/ecocap_node.dir/energy_manager.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/firmware.cpp.o"
  "CMakeFiles/ecocap_node.dir/firmware.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/frontend.cpp.o"
  "CMakeFiles/ecocap_node.dir/frontend.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/harvester.cpp.o"
  "CMakeFiles/ecocap_node.dir/harvester.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/power_model.cpp.o"
  "CMakeFiles/ecocap_node.dir/power_model.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/sensors.cpp.o"
  "CMakeFiles/ecocap_node.dir/sensors.cpp.o.d"
  "CMakeFiles/ecocap_node.dir/shell.cpp.o"
  "CMakeFiles/ecocap_node.dir/shell.cpp.o.d"
  "libecocap_node.a"
  "libecocap_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
