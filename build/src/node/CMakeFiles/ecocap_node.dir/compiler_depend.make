# Empty compiler generated dependencies file for ecocap_node.
# This may be replaced when dependencies are built.
