file(REMOVE_RECURSE
  "libecocap_wave.a"
)
