
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wave/attenuation.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/attenuation.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/attenuation.cpp.o.d"
  "/root/repo/src/wave/beam.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/beam.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/beam.cpp.o.d"
  "/root/repo/src/wave/body_wave.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/body_wave.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/body_wave.cpp.o.d"
  "/root/repo/src/wave/boundary.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/boundary.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/boundary.cpp.o.d"
  "/root/repo/src/wave/fdtd.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/fdtd.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/fdtd.cpp.o.d"
  "/root/repo/src/wave/frequency_response.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/frequency_response.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/frequency_response.cpp.o.d"
  "/root/repo/src/wave/helmholtz.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/helmholtz.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/helmholtz.cpp.o.d"
  "/root/repo/src/wave/material.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/material.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/material.cpp.o.d"
  "/root/repo/src/wave/prism.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/prism.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/prism.cpp.o.d"
  "/root/repo/src/wave/ray_tracer.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/ray_tracer.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/ray_tracer.cpp.o.d"
  "/root/repo/src/wave/snell.cpp" "src/wave/CMakeFiles/ecocap_wave.dir/snell.cpp.o" "gcc" "src/wave/CMakeFiles/ecocap_wave.dir/snell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/ecocap_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
