# Empty compiler generated dependencies file for ecocap_wave.
# This may be replaced when dependencies are built.
