file(REMOVE_RECURSE
  "CMakeFiles/ecocap_wave.dir/attenuation.cpp.o"
  "CMakeFiles/ecocap_wave.dir/attenuation.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/beam.cpp.o"
  "CMakeFiles/ecocap_wave.dir/beam.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/body_wave.cpp.o"
  "CMakeFiles/ecocap_wave.dir/body_wave.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/boundary.cpp.o"
  "CMakeFiles/ecocap_wave.dir/boundary.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/fdtd.cpp.o"
  "CMakeFiles/ecocap_wave.dir/fdtd.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/frequency_response.cpp.o"
  "CMakeFiles/ecocap_wave.dir/frequency_response.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/helmholtz.cpp.o"
  "CMakeFiles/ecocap_wave.dir/helmholtz.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/material.cpp.o"
  "CMakeFiles/ecocap_wave.dir/material.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/prism.cpp.o"
  "CMakeFiles/ecocap_wave.dir/prism.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/ray_tracer.cpp.o"
  "CMakeFiles/ecocap_wave.dir/ray_tracer.cpp.o.d"
  "CMakeFiles/ecocap_wave.dir/snell.cpp.o"
  "CMakeFiles/ecocap_wave.dir/snell.cpp.o.d"
  "libecocap_wave.a"
  "libecocap_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
