file(REMOVE_RECURSE
  "CMakeFiles/ecocap_baseline.dir/pab.cpp.o"
  "CMakeFiles/ecocap_baseline.dir/pab.cpp.o.d"
  "libecocap_baseline.a"
  "libecocap_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
