file(REMOVE_RECURSE
  "libecocap_baseline.a"
)
