# Empty compiler generated dependencies file for ecocap_baseline.
# This may be replaced when dependencies are built.
