# Empty compiler generated dependencies file for ecocap_core.
# This may be replaced when dependencies are built.
