file(REMOVE_RECURSE
  "libecocap_core.a"
)
