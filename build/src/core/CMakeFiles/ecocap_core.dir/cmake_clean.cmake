file(REMOVE_RECURSE
  "CMakeFiles/ecocap_core.dir/ber_harness.cpp.o"
  "CMakeFiles/ecocap_core.dir/ber_harness.cpp.o.d"
  "CMakeFiles/ecocap_core.dir/inventory_session.cpp.o"
  "CMakeFiles/ecocap_core.dir/inventory_session.cpp.o.d"
  "CMakeFiles/ecocap_core.dir/link_simulator.cpp.o"
  "CMakeFiles/ecocap_core.dir/link_simulator.cpp.o.d"
  "CMakeFiles/ecocap_core.dir/multinode_link.cpp.o"
  "CMakeFiles/ecocap_core.dir/multinode_link.cpp.o.d"
  "libecocap_core.a"
  "libecocap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
