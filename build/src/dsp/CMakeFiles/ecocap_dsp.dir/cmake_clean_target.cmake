file(REMOVE_RECURSE
  "libecocap_dsp.a"
)
