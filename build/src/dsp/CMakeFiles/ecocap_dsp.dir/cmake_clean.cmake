file(REMOVE_RECURSE
  "CMakeFiles/ecocap_dsp.dir/biquad.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/correlate.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/decimate.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/decimate.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/envelope.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/envelope.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/fft.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/fir.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/oscillator.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/oscillator.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/signal_ops.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/signal_ops.cpp.o.d"
  "CMakeFiles/ecocap_dsp.dir/window.cpp.o"
  "CMakeFiles/ecocap_dsp.dir/window.cpp.o.d"
  "libecocap_dsp.a"
  "libecocap_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
