
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/correlate.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/correlate.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/correlate.cpp.o.d"
  "/root/repo/src/dsp/decimate.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/decimate.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/decimate.cpp.o.d"
  "/root/repo/src/dsp/envelope.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/envelope.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/envelope.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/goertzel.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/goertzel.cpp.o.d"
  "/root/repo/src/dsp/oscillator.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/oscillator.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/oscillator.cpp.o.d"
  "/root/repo/src/dsp/signal_ops.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/signal_ops.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/signal_ops.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/ecocap_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/ecocap_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
