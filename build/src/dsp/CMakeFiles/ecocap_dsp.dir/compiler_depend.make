# Empty compiler generated dependencies file for ecocap_dsp.
# This may be replaced when dependencies are built.
