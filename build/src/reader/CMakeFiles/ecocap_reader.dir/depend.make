# Empty dependencies file for ecocap_reader.
# This may be replaced when dependencies are built.
