file(REMOVE_RECURSE
  "CMakeFiles/ecocap_reader.dir/inventory.cpp.o"
  "CMakeFiles/ecocap_reader.dir/inventory.cpp.o.d"
  "CMakeFiles/ecocap_reader.dir/receiver.cpp.o"
  "CMakeFiles/ecocap_reader.dir/receiver.cpp.o.d"
  "CMakeFiles/ecocap_reader.dir/transmitter.cpp.o"
  "CMakeFiles/ecocap_reader.dir/transmitter.cpp.o.d"
  "libecocap_reader.a"
  "libecocap_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocap_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
