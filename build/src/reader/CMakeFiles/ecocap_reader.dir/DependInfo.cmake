
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reader/inventory.cpp" "src/reader/CMakeFiles/ecocap_reader.dir/inventory.cpp.o" "gcc" "src/reader/CMakeFiles/ecocap_reader.dir/inventory.cpp.o.d"
  "/root/repo/src/reader/receiver.cpp" "src/reader/CMakeFiles/ecocap_reader.dir/receiver.cpp.o" "gcc" "src/reader/CMakeFiles/ecocap_reader.dir/receiver.cpp.o.d"
  "/root/repo/src/reader/transmitter.cpp" "src/reader/CMakeFiles/ecocap_reader.dir/transmitter.cpp.o" "gcc" "src/reader/CMakeFiles/ecocap_reader.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/ecocap_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ecocap_node.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ecocap_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ecocap_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ecocap_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
