file(REMOVE_RECURSE
  "libecocap_reader.a"
)
