# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_dsp_signal_ops[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_filters[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_fft[1]_include.cmake")
include("/root/repo/build/tests/test_wave_materials[1]_include.cmake")
include("/root/repo/build/tests/test_wave_snell[1]_include.cmake")
include("/root/repo/build/tests/test_wave_propagation[1]_include.cmake")
include("/root/repo/build/tests/test_phy_codes[1]_include.cmake")
include("/root/repo/build/tests/test_phy_fm0[1]_include.cmake")
include("/root/repo/build/tests/test_phy_carrier[1]_include.cmake")
include("/root/repo/build/tests/test_phy_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_node_harvester[1]_include.cmake")
include("/root/repo/build/tests/test_node_power_shell[1]_include.cmake")
include("/root/repo/build/tests/test_node_firmware[1]_include.cmake")
include("/root/repo/build/tests/test_reader[1]_include.cmake")
include("/root/repo/build/tests/test_core_link[1]_include.cmake")
include("/root/repo/build/tests/test_shm[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_wave_fdtd[1]_include.cmake")
include("/root/repo/build/tests/test_multinode[1]_include.cmake")
