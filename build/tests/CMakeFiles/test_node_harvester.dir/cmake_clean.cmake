file(REMOVE_RECURSE
  "CMakeFiles/test_node_harvester.dir/test_node_harvester.cpp.o"
  "CMakeFiles/test_node_harvester.dir/test_node_harvester.cpp.o.d"
  "test_node_harvester"
  "test_node_harvester.pdb"
  "test_node_harvester[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_harvester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
