file(REMOVE_RECURSE
  "CMakeFiles/test_phy_fm0.dir/test_phy_fm0.cpp.o"
  "CMakeFiles/test_phy_fm0.dir/test_phy_fm0.cpp.o.d"
  "test_phy_fm0"
  "test_phy_fm0.pdb"
  "test_phy_fm0[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_fm0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
