# Empty compiler generated dependencies file for test_phy_fm0.
# This may be replaced when dependencies are built.
