file(REMOVE_RECURSE
  "CMakeFiles/test_phy_codes.dir/test_phy_codes.cpp.o"
  "CMakeFiles/test_phy_codes.dir/test_phy_codes.cpp.o.d"
  "test_phy_codes"
  "test_phy_codes.pdb"
  "test_phy_codes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
