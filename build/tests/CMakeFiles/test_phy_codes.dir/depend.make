# Empty dependencies file for test_phy_codes.
# This may be replaced when dependencies are built.
