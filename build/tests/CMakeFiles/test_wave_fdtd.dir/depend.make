# Empty dependencies file for test_wave_fdtd.
# This may be replaced when dependencies are built.
