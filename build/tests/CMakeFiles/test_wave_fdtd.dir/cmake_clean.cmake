file(REMOVE_RECURSE
  "CMakeFiles/test_wave_fdtd.dir/test_wave_fdtd.cpp.o"
  "CMakeFiles/test_wave_fdtd.dir/test_wave_fdtd.cpp.o.d"
  "test_wave_fdtd"
  "test_wave_fdtd.pdb"
  "test_wave_fdtd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave_fdtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
