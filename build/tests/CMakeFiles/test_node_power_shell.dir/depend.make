# Empty dependencies file for test_node_power_shell.
# This may be replaced when dependencies are built.
