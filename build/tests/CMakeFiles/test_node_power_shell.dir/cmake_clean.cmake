file(REMOVE_RECURSE
  "CMakeFiles/test_node_power_shell.dir/test_node_power_shell.cpp.o"
  "CMakeFiles/test_node_power_shell.dir/test_node_power_shell.cpp.o.d"
  "test_node_power_shell"
  "test_node_power_shell.pdb"
  "test_node_power_shell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_power_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
