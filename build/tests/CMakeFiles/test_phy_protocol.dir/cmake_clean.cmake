file(REMOVE_RECURSE
  "CMakeFiles/test_phy_protocol.dir/test_phy_protocol.cpp.o"
  "CMakeFiles/test_phy_protocol.dir/test_phy_protocol.cpp.o.d"
  "test_phy_protocol"
  "test_phy_protocol.pdb"
  "test_phy_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
