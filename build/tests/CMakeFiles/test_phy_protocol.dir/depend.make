# Empty dependencies file for test_phy_protocol.
# This may be replaced when dependencies are built.
