# Empty compiler generated dependencies file for test_phy_carrier.
# This may be replaced when dependencies are built.
