file(REMOVE_RECURSE
  "CMakeFiles/test_phy_carrier.dir/test_phy_carrier.cpp.o"
  "CMakeFiles/test_phy_carrier.dir/test_phy_carrier.cpp.o.d"
  "test_phy_carrier"
  "test_phy_carrier.pdb"
  "test_phy_carrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_carrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
