file(REMOVE_RECURSE
  "CMakeFiles/test_wave_propagation.dir/test_wave_propagation.cpp.o"
  "CMakeFiles/test_wave_propagation.dir/test_wave_propagation.cpp.o.d"
  "test_wave_propagation"
  "test_wave_propagation.pdb"
  "test_wave_propagation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
