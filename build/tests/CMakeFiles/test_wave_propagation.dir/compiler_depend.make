# Empty compiler generated dependencies file for test_wave_propagation.
# This may be replaced when dependencies are built.
