# Empty dependencies file for test_wave_snell.
# This may be replaced when dependencies are built.
