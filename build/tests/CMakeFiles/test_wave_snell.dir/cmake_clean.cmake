file(REMOVE_RECURSE
  "CMakeFiles/test_wave_snell.dir/test_wave_snell.cpp.o"
  "CMakeFiles/test_wave_snell.dir/test_wave_snell.cpp.o.d"
  "test_wave_snell"
  "test_wave_snell.pdb"
  "test_wave_snell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave_snell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
