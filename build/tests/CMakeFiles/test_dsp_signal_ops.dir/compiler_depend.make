# Empty compiler generated dependencies file for test_dsp_signal_ops.
# This may be replaced when dependencies are built.
